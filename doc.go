// Package repro is a production-quality Go reproduction of
//
//	Mingmou Liu, Xiaoyin Pan, Yitong Yin.
//	"Randomized approximate nearest neighbor search with limited
//	adaptivity." SPAA 2016 (arXiv:1602.04421).
//
// The public API lives in package repro/anns; the experiment harness that
// regenerates the paper's theorem-level tradeoffs is repro/internal/eval,
// driven by cmd/annsbench and by the benchmarks in bench_test.go.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package repro
