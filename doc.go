// Package repro is a production-quality Go reproduction of
//
//	Mingmou Liu, Xiaoyin Pan, Yitong Yin.
//	"Randomized approximate nearest neighbor search with limited
//	adaptivity." SPAA 2016 (arXiv:1602.04421).
//
// The public API lives in package repro/anns; the experiment harness that
// regenerates the paper's theorem-level tradeoffs is repro/internal/eval,
// driven by cmd/annsbench and by the benchmarks in bench_test.go.
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// On top of the library sits a three-layer serving subsystem:
//
//   - anns.ShardedIndex (sharding layer): partitions one logical
//     database across independently seeded shards, fans each query out
//     concurrently, and merges by Hamming distance while aggregating the
//     cell-probe accounting (rounds = max over shards, probes and max
//     parallelism summed), keeping the paper's adaptivity/efficiency
//     tradeoff observable at serving scale.
//   - repro/internal/server (service layer): an HTTP API (POST
//     /v1/query, /v1/batch, /v1/near; GET /healthz, /statsz) with a
//     bounded admission queue, a fixed worker pool reusing the BatchQuery
//     pool pattern, per-request context deadlines, and atomic QPS /
//     error-rate / probe counters.
//   - cmd/annsd and cmd/annsload (load layer): the serving daemon over
//     generated or annsgen workloads, and a closed-loop / open-loop
//     (Poisson, target-QPS ramp) load harness reporting p50/p95/p99
//     latency, achieved QPS, recall, and aggregate probe accounting.
//
// See internal/server/README.md for the wire format and a copy-paste
// serving session.
package repro
