// Package repro is a production-quality Go reproduction of
//
//	Mingmou Liu, Xiaoyin Pan, Yitong Yin.
//	"Randomized approximate nearest neighbor search with limited
//	adaptivity." SPAA 2016 (arXiv:1602.04421).
//
// The public API lives in package repro/anns; the experiment harness that
// regenerates the paper's theorem-level tradeoffs is repro/internal/eval,
// driven by cmd/annsbench and by the benchmarks in bench_test.go.
// See DESIGN.md for the system inventory (§1) and for the experiment
// suite and its paper-vs-measured conventions (§4).
//
// On top of the library sits a three-layer serving subsystem:
//
//   - anns.ShardedIndex (sharding layer): partitions one logical
//     database across independently seeded shards, fans each query out
//     concurrently, and merges by Hamming distance while aggregating the
//     cell-probe accounting (rounds = max over shards, probes and max
//     parallelism summed), keeping the paper's adaptivity/efficiency
//     tradeoff observable at serving scale.
//   - repro/internal/server (service layer): an HTTP API (POST
//     /v1/query, /v1/batch, /v1/near; GET /healthz, /statsz) with a
//     bounded admission queue, a fixed worker pool reusing the BatchQuery
//     pool pattern, per-request context deadlines, and atomic QPS /
//     error-rate / probe counters.
//   - cmd/annsd and cmd/annsload (load layer): the serving daemon over
//     generated or annsgen workloads, and a closed-loop / open-loop
//     (Poisson, target-QPS ramp) load harness reporting log-bucketed
//     latency histograms (internal/stats.LogHistogram: p50/p95/p99
//     within 4.4%, exact min/max, full shape), achieved QPS, recall,
//     and aggregate probe accounting. annsload -scenario replays named
//     operation-mix scenarios (internal/workload/scenario: zipfian /
//     hotspot / sequential key popularity over reads, inserts, and
//     deletes) compiled deterministically from -lseed, so two runs —
//     or the two servers of a -compare — see byte-identical streams.
//
// # Query execution model
//
// The whole query path, from the cell-probe simulator to the HTTP
// workers, runs on pooled execution contexts and binary cell addresses,
// so a warmed query allocates nothing:
//
//   - cellprobe.Addr is the binary cell address: a typed table tag
//     (T[i], aux[i], member[B], …) plus the packed payload words of the
//     sketch or query point. It is comparable and keys the lazy oracle
//     memo directly — no string serialization anywhere on the probe path.
//   - cellprobe.QueryCtx owns one query's execution state: the staged
//     probe refs of the current round, the round's result words, the
//     Stats accounting, and (optionally) the transcript the Proposition
//     18 communication translation consumes. Algorithms stage a whole
//     round (Stage) and execute it at once (Flush), which is also how
//     limited adaptivity is enforced.
//   - core.QueryCtx wraps that with the per-level sketch scratch
//     (M_i·x, N_j·x), the shrinking-grid buffer, and the boosted-stats
//     accumulator. Contexts come from a process-wide sync.Pool; the
//     schemes' Query methods draw one per call, while the serving layers
//     (anns batch workers, the HTTP worker pool) hold one per worker via
//     anns.Scratch and thread it through every query they serve.
//
// The pooling changes no model quantity: accounting invariants are
// unchanged (per query: Rounds, Probes, ProbesPerRound, BitsRead and
// AddrBitsSent are byte-identical to the pre-pooling engine; across
// shards and boosted repetitions: rounds = max, probes = sum). Alloc
// ceilings are pinned by TestAllocs* in package anns and the before/after
// record lives in BENCH_query_engine.json.
//
// # Index lifecycle
//
// The paper's data structure is static after preprocessing, so the
// storage layer separates the three phases — build once, snapshot,
// serve anywhere (DESIGN.md §5):
//
//   - Build: anns.Build and anns.BuildSharded preprocess eagerly over a
//     worker pool (Options.BuildWorkers, default GOMAXPROCS). Every
//     component lands in flat, pointer-free storage — the database, the
//     sketch matrices, and the per-level database sketches are
//     contiguous bitvec.Blocks, and the membership tables share one
//     binary-keyed index with no per-entry key strings. Randomness is
//     split per matrix, so any worker count builds a bit-identical
//     index. core.BuildIndex stays lazy for the experiment harness.
//   - Snapshot: anns.SaveIndex/SaveSharded write the flat arrays
//     wholesale into the versioned, checksummed binary format of
//     internal/snapshot (magic, format version, paper parameters,
//     per-section lengths, CRC-32). LoadIndex/LoadSharded/LoadAny
//     verify and rebind them; a loaded index answers with results and
//     probe accounting byte-identical to the index it was saved from.
//     Version mismatches, corruption, and truncation fail loudly
//     (snapshot.ErrVersion/ErrChecksum, and the typed snapshot.ErrFormat
//     for malformed or truncated files); layout changes to existing
//     kinds bump snapshot.FormatVersion and the floor MinFormatVersion
//     (rebuild-and-re-save, never in-place migration), while additive
//     changes keep older files loading.
//   - Serve: annsctl build writes snapshots offline; annsd -snapshot
//     boots from one in milliseconds instead of re-preprocessing, annsd
//     -save-snapshot persists a fresh build, and /statsz reports
//     index_source, snapshot_version, index_load_ms, and mapped_bytes.
//     Build and load timings are recorded in BENCH_index_build.json.
//   - Zero-copy serve: anns.OpenSnapshot(path, mode) opens a snapshot
//     under an explicit anns.LoadMode — LoadHeap is the copying load
//     above, LoadMmap maps the file and serves bitvec blocks as views
//     over the mapped pages (no database/matrix/sketch copies; open is
//     gated >=100x faster than the heap load), and LoadAuto prefers
//     the mapping with a heap fallback only when the platform lacks
//     mmap (the typed FallbackReason says why). The returned Loaded
//     owns the mapping and the index borrows it: keep Loaded alive for
//     the index's lifetime and Close only after the last query (annsd
//     -mmap never closes; it verifies the checksum in the background
//     and dies on mismatch). The mutable tier stays on the heap — it
//     owns, rewrites, and frees its storage — so OpenSnapshot rejects
//     mutable snapshots toward LoadMutable. DESIGN.md §9 has the full
//     lifecycle and CRC policy.
//
// # Mutable tier
//
// anns.MutableIndex layers online inserts and deletes over the static
// core (DESIGN.md §7): inserts land in an exact brute-force memtable
// that seals into immutable mini-index segments (built with the same
// Build), deletes tombstone stable point IDs, queries fan out over
// {base, segments, memtable} and fold with MergeShardReplies (rounds =
// max, probes = sum — the same accounting the sharded tier uses), and a
// background compactor rebuilds the base from the live points and swaps
// it atomically. A CRC-framed write-ahead log makes mutations durable
// across restarts (replayed on boot, truncated on snapshot). Serve it
// with annsd -mutable -wal, drive mixed read/write load with annsload
// -write-ratio, and fold a WAL back into one snapshot offline with
// annsctl compact.
//
// # Distributed tier
//
// internal/router + cmd/annsrouter scale the same contract across
// machines (DESIGN.md §6): annsctl shard-split writes per-shard
// snapshots plus a placement manifest, each replica of a shard position
// boots one snapshot, and the router scatter-gathers with
// health-probe-driven replica membership, latency-quantile hedging, and
// bounded failover — answers stay byte-identical to a single process
// over the same corpus, accounting included. With mutable replicas
// (annsd -mutable -base-snapshot shard-s.snap -wal …) the router also
// serves writes (DESIGN.md §11): each mutation routes to the shard's
// designated primary (manifest format v2 records the designation and a
// placement epoch), the primary's WAL frame streams through the router
// to the other replicas via /v1/replicate with /v1/frames catch-up,
// -durability picks primary-fsync vs quorum acks, and a dead primary is
// replaced by the max-offset survivor with an epoch bump and an
// in-place manifest rewrite. internal/chaos + cmd/annschaos hold the
// whole tier to byte-identical answers under a seeded fault catalog —
// gray failures, partitions, corruption, WAL tears, primary kills —
// replayable from one root seed (DESIGN.md §8). OPERATIONS.md is the
// operator runbook: deploying a shard set, reading /statsz, failover
// and offset convergence, the WAL/snapshot/compaction lifecycle.
//
// # Result cache
//
// annsd -cache N (and annsrouter -cache N) put a sharded, bounded LRU
// (internal/qcache) in front of the query path, keyed by collision-free
// cellprobe.Addr fingerprints of the request — a hit answers from
// memory, bypassing admission and the worker pool, and is provably the
// reply a fresh execution would produce: entries are stamped with the
// index generation observed before execution, every mutation bumps
// anns.MutableIndex.Generation(), and stale entries become unreachable
// in O(1). /statsz reports hits, misses, hit_rate, evictions, and
// invalidations; annsload -compare proves cached and uncached servers
// byte-identical under mutation churn, and the chaos harness re-proves
// it under the gray-failure catalog. annsctl bench -cache sweeps
// zipfian skew into BENCH_cache.json, gated by benchdiff. DESIGN.md
// §10 has the key derivation and the epoch-invalidation argument.
//
// See README.md for the quickstart and binary inventory,
// internal/server/README.md for the wire format and a copy-paste
// serving session, internal/router/README.md for the distributed
// tier's failure model, and OPERATIONS.md for the operator runbook.
package repro
