// Package stats provides the summary statistics the experiment harness
// reports: means, quantiles, Wilson score intervals for success rates, and
// fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P90    float64
}

// Summarize computes a Summary. An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		v := (sumSq - sum*sum/float64(len(xs))) / float64(len(xs)-1)
		if v > 0 {
			s.Std = math.Sqrt(v)
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	return s
}

// Quantile returns the q-quantile of a sorted sample by linear
// interpolation. q is clamped into [0, 1].
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// SummarizeInts is Summarize over integer observations.
func SummarizeInts(xs []int) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f±%.2f med=%.1f p90=%.1f max=%.0f",
		s.N, s.Mean, s.Std, s.Median, s.P90, s.Max)
}

// Proportion is a success count with a Wilson 95% confidence interval.
type Proportion struct {
	Successes int
	Trials    int
}

// Rate returns the point estimate (NaN for zero trials).
func (p Proportion) Rate() float64 {
	if p.Trials == 0 {
		return math.NaN()
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson returns the 95% Wilson score interval.
func (p Proportion) Wilson() (lo, hi float64) {
	if p.Trials == 0 {
		return math.NaN(), math.NaN()
	}
	const z = 1.96
	n := float64(p.Trials)
	phat := p.Rate()
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	return center - half, center + half
}

func (p Proportion) String() string {
	lo, hi := p.Wilson()
	return fmt.Sprintf("%d/%d = %.3f [%.3f, %.3f]", p.Successes, p.Trials, p.Rate(), lo, hi)
}

// Histogram is a fixed-width histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi  float64
	Buckets []int
	Under   int
	Over    int
}

// NewHistogram creates nbuckets buckets over [lo, hi).
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if hi <= lo || nbuckets < 1 {
		panic("stats: invalid histogram range")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int, nbuckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i >= len(h.Buckets) {
			i = len(h.Buckets) - 1
		}
		h.Buckets[i]++
	}
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, b := range h.Buckets {
		t += b
	}
	return t
}
