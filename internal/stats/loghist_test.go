package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

func TestLogHistogramQuantileAccuracy(t *testing.T) {
	// Log-normal-ish latencies spanning µs..s; histogram quantiles must
	// agree with exact sorted-sample quantiles to within one bucket's
	// relative width (2^(1/16) ≈ 4.4%).
	src := rng.New(3)
	h := NewLatencyHistogram()
	xs := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		x := math.Exp(11 + 2*norm(src)) // centered near e^11 ≈ 60µs in ns
		h.Record(x)
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		exact := Quantile(xs, q)
		got := h.Quantile(q)
		relErr := math.Abs(got-exact) / exact
		if relErr > 0.05 {
			t.Errorf("q=%.3f: hist %.0f vs exact %.0f (rel err %.3f)", q, got, exact, relErr)
		}
	}
	if h.Count() != 20000 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Quantile(0)-xs[0]) > 1e-9 || math.Abs(h.Quantile(1)-xs[len(xs)-1]) > 1e-9 {
		t.Error("q=0/q=1 must be exact min/max")
	}
}

// norm produces a standard normal via Box-Muller from the seeded source.
func norm(src *rng.Source) float64 {
	u1, u2 := src.Float64(), src.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func TestLogHistogramClamping(t *testing.T) {
	h := NewLogHistogram(1e3, 1e6, 4)
	h.Record(10)   // below range
	h.Record(1e7)  // above range
	h.Record(5000) // in range
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Quantile(0); got != 10 {
		t.Errorf("min = %v, want 10", got)
	}
	if got := h.Quantile(1); got != 1e7 {
		t.Errorf("max = %v, want 1e7", got)
	}
	bs := h.NonEmpty()
	if len(bs) != 3 {
		t.Fatalf("non-empty buckets = %d, want 3 (under, mid, over)", len(bs))
	}
	if !math.IsInf(bs[2].Hi, 1) {
		t.Error("overflow bucket must have +inf upper bound")
	}
}

func TestLogHistogramMerge(t *testing.T) {
	a, b := NewLatencyHistogram(), NewLatencyHistogram()
	whole := NewLatencyHistogram()
	src := rng.New(8)
	for i := 0; i < 5000; i++ {
		x := 1e4 + 1e6*src.Float64()
		if i%2 == 0 {
			a.Record(x)
		} else {
			b.Record(x)
		}
		whole.Record(x)
	}
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%v: merged %v != whole %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-6*whole.Mean() {
		t.Errorf("merged mean %v != %v", a.Mean(), whole.Mean())
	}
}

func TestLogHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) {
		t.Error("empty histogram must report NaN")
	}
	if got := h.FormatNanos(20); got == "" {
		t.Error("empty histogram must still format")
	}
}

func TestFormatNanosRowBudget(t *testing.T) {
	h := NewLatencyHistogram()
	src := rng.New(4)
	for i := 0; i < 10000; i++ {
		h.Record(math.Exp(9 + 6*src.Float64()))
	}
	out := h.FormatNanos(12)
	rows := 0
	for _, c := range out {
		if c == '\n' {
			rows++
		}
	}
	if rows > 12 {
		t.Errorf("FormatNanos produced %d rows, budget 12:\n%s", rows, out)
	}
}
