package stats

import (
	"fmt"
	"math"
	"strings"
)

// LogHistogram is a geometric-bucket histogram for positive observations
// spanning many orders of magnitude — latencies, above all. Buckets grow by
// a fixed ratio (2^(1/perOctave)), so relative resolution is uniform: with
// 16 sub-buckets per octave every quantile is exact to within ~4.4%
// relative error, over EVERY recorded observation rather than a sample.
// This replaces sampled-quantile reporting in the load harness: recording
// is O(1) and the full distribution survives, so p50/p95/p99 and the tail
// shape come from the same structure.
type LogHistogram struct {
	lo     float64 // lower bound of bucket 0
	ratio  float64 // per-bucket growth factor
	lnR    float64 // ln(ratio), for index computation
	counts []uint64
	under  uint64 // observations below lo (recorded, counted in quantiles as lo)
	over   uint64 // observations at/above the top bound (counted as max)
	total  uint64
	sum    float64
	min    float64
	max    float64
}

// NewLogHistogram covers [lo, hi) with 2^(1/perOctave) bucket growth.
// Observations outside the range are clamped, not dropped.
func NewLogHistogram(lo, hi float64, perOctave int) *LogHistogram {
	if lo <= 0 || hi <= lo || perOctave < 1 {
		panic("stats: invalid log histogram shape")
	}
	ratio := math.Pow(2, 1/float64(perOctave))
	n := int(math.Ceil(math.Log(hi/lo)/math.Log(ratio))) + 1
	return &LogHistogram{
		lo: lo, ratio: ratio, lnR: math.Log(ratio),
		counts: make([]uint64, n),
		min:    math.Inf(1), max: math.Inf(-1),
	}
}

// NewLatencyHistogram is the harness default: 1µs to 100s in nanoseconds,
// 16 sub-buckets per octave (≤ 4.4% relative quantile error).
func NewLatencyHistogram() *LogHistogram {
	return NewLogHistogram(1e3, 1e11, 16)
}

// Record adds one observation.
func (h *LogHistogram) Record(x float64) {
	h.total++
	h.sum += x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
	if x < h.lo {
		h.under++
		return
	}
	i := int(math.Log(x/h.lo) / h.lnR)
	if i >= len(h.counts) {
		h.over++
		return
	}
	h.counts[i]++
}

// Count returns the number of recorded observations.
func (h *LogHistogram) Count() uint64 { return h.total }

// Sum returns the exact sum of all recorded observations.
func (h *LogHistogram) Sum() float64 { return h.sum }

// Mean returns the exact mean of all recorded observations.
func (h *LogHistogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.total)
}

// Min and Max are tracked exactly (not bucket-quantized).
func (h *LogHistogram) Min() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.min
}

func (h *LogHistogram) Max() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	return h.max
}

// Quantile returns the q-quantile over every recorded observation, linearly
// interpolated within the containing bucket and clamped to the exact
// observed [min, max].
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Rank in [1, total] of the observation we want.
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	cum := h.under
	if rank <= cum {
		return h.clamp(h.lo)
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if rank <= cum+c {
			bLo := h.lo * math.Pow(h.ratio, float64(i))
			bHi := bLo * h.ratio
			frac := float64(rank-cum) / float64(c)
			return h.clamp(bLo + (bHi-bLo)*frac)
		}
		cum += c
	}
	return h.max
}

func (h *LogHistogram) clamp(x float64) float64 {
	if x < h.min {
		return h.min
	}
	if x > h.max {
		return h.max
	}
	return x
}

// Bucket is one non-empty histogram cell.
type Bucket struct {
	Lo, Hi float64
	Count  uint64
}

// NonEmpty returns the non-empty buckets in increasing order, with under-
// and overflow folded into synthetic edge buckets.
func (h *LogHistogram) NonEmpty() []Bucket {
	var out []Bucket
	if h.under > 0 {
		out = append(out, Bucket{Lo: 0, Hi: h.lo, Count: h.under})
	}
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		bLo := h.lo * math.Pow(h.ratio, float64(i))
		out = append(out, Bucket{Lo: bLo, Hi: bLo * h.ratio, Count: c})
	}
	if h.over > 0 {
		top := h.lo * math.Pow(h.ratio, float64(len(h.counts)))
		out = append(out, Bucket{Lo: top, Hi: math.Inf(1), Count: h.over})
	}
	return out
}

// Clone returns an independent deep copy of h.
func (h *LogHistogram) Clone() *LogHistogram {
	c := *h
	c.counts = make([]uint64, len(h.counts))
	copy(c.counts, h.counts)
	return &c
}

// Merge folds other into h. Panics if the shapes differ.
func (h *LogHistogram) Merge(other *LogHistogram) {
	if other.lo != h.lo || other.ratio != h.ratio || len(other.counts) != len(h.counts) {
		panic("stats: merging log histograms of different shape")
	}
	if other.total == 0 {
		return
	}
	h.total += other.total
	h.sum += other.sum
	h.under += other.under
	h.over += other.over
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// FormatNanos renders the histogram assuming observations are nanoseconds,
// coalescing adjacent buckets so at most maxRows rows print. Each row shows
// the bucket bound, count, cumulative percentage, and a proportional bar.
func (h *LogHistogram) FormatNanos(maxRows int) string {
	bs := h.NonEmpty()
	if len(bs) == 0 {
		return "  (no observations)\n"
	}
	if maxRows < 1 {
		maxRows = 1
	}
	// Coalesce adjacent buckets until the row budget is met.
	for len(bs) > maxRows {
		merged := make([]Bucket, 0, (len(bs)+1)/2)
		for i := 0; i < len(bs); i += 2 {
			if i+1 < len(bs) {
				merged = append(merged, Bucket{Lo: bs[i].Lo, Hi: bs[i+1].Hi, Count: bs[i].Count + bs[i+1].Count})
			} else {
				merged = append(merged, bs[i])
			}
		}
		bs = merged
	}
	var maxCount uint64
	for _, b := range bs {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	var sb strings.Builder
	var cum uint64
	for _, b := range bs {
		cum += b.Count
		bar := int(40 * b.Count / maxCount)
		fmt.Fprintf(&sb, "  %9s..%-9s %8d %6.2f%% |%s\n",
			formatNanos(b.Lo), formatNanos(b.Hi), b.Count,
			100*float64(cum)/float64(h.total), strings.Repeat("#", bar))
	}
	return sb.String()
}

func formatNanos(ns float64) string {
	switch {
	case math.IsInf(ns, 1):
		return "inf"
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
