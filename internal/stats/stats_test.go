package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("%+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std %v", s.Std)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary nonzero")
	}
	one := Summarize([]float64{7})
	if one.Std != 0 || one.Mean != 7 {
		t.Errorf("single-sample summary %+v", one)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int{2, 4, 6})
	if s.Mean != 4 || s.N != 3 {
		t.Errorf("%+v", s)
	}
	if s.String() == "" {
		t.Error("empty string rendering")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 40}, {0.5, 20}, {0.25, 10}, {0.125, 5}, {-1, 0}, {2, 40},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile not NaN")
	}
}

func TestProportion(t *testing.T) {
	p := Proportion{Successes: 75, Trials: 100}
	if p.Rate() != 0.75 {
		t.Error("rate")
	}
	lo, hi := p.Wilson()
	if lo >= 0.75 || hi <= 0.75 {
		t.Errorf("interval [%v, %v] excludes the point estimate", lo, hi)
	}
	if lo < 0.64 || hi > 0.84 {
		t.Errorf("interval [%v, %v] implausibly wide for n=100", lo, hi)
	}
	if p.String() == "" {
		t.Error("empty rendering")
	}
	empty := Proportion{}
	if !math.IsNaN(empty.Rate()) {
		t.Error("zero-trial rate not NaN")
	}
	l2, h2 := empty.Wilson()
	if !math.IsNaN(l2) || !math.IsNaN(h2) {
		t.Error("zero-trial interval not NaN")
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	a := Proportion{Successes: 5, Trials: 10}
	b := Proportion{Successes: 500, Trials: 1000}
	al, ah := a.Wilson()
	bl, bh := b.Wilson()
	if (bh - bl) >= (ah - al) {
		t.Error("interval did not shrink with sample size")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 15} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Buckets[0] != 2 { // 0 and 1.9
		t.Errorf("bucket0 = %d", h.Buckets[0])
	}
	if h.Buckets[1] != 1 || h.Buckets[4] != 1 {
		t.Errorf("buckets %v", h.Buckets)
	}
	if h.Total() != 7 {
		t.Errorf("total %d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}
