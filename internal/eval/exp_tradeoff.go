package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/workload"
)

// tradeoffInstance builds the planted workload shared by E1–E4: chaff at
// distance ≈ d/2, one planted neighbor per query at a controlled distance,
// so the multi-way search over ball levels is exercised end to end.
func tradeoffInstance(seed uint64, d, n, q int) *workload.Instance {
	r := rng.New(seed)
	dist := d / 24
	if dist < 3 {
		dist = 3
	}
	return workload.PlantedNN(r, d, n, q, dist)
}

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Algorithm 1 round/probe tradeoff",
		Claim: "Theorem 2: k rounds, O(k·(log d)^{1/k}) total probes, ≤ τ per round",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Algorithm 2 for large k",
		Claim: "Theorem 3: O(k + ((log d)/k)^{c/k}) probes; flattens toward O(1)/round",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "Upper bounds vs the Theorem 4 lower bound",
		Claim: "Theorem 4: any k-round scheme needs Ω((1/k)(log d)^{1/k}); Algo1 is within O(k²)",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Title: "Phase transition around k = Θ(log log d / log log log d)",
		Claim: "§1: below k* probes/round must be (log log d)^Ω(1); above k*, 1 probe/round suffices",
		Run:   runE4,
	})
}

func runE1(cfg Config) []*Table {
	dims := []int{256, 1024, 4096, 16384}
	ks := []int{1, 2, 3, 4, 6, 8}
	n, q := 220, 30
	if cfg.Quick {
		dims = []int{256, 1024}
		ks = []int{1, 2, 4}
		q = 12
	}
	t := &Table{
		ID:      "E1",
		Title:   "Algorithm 1: probes vs rounds",
		Caption: "theory column is k·(log_α d)^{1/k}; the claim is bounded measured/theory ratio across the sweep",
		Headers: []string{"d", "k", "tau", "probes(mean)", "probes(max)", "bound", "theory", "meas/theory", "rounds(max)", "success"},
	}
	for _, d := range dims {
		in := tradeoffInstance(cfg.Seed, d, n, q)
		idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, Seed: cfg.Seed + 1})
		th := Theory{D: d, Gamma: 2}
		for _, k := range ks {
			a := core.NewAlgo1(idx, k)
			m := RunScheme(a, in, 2)
			theory := th.Algo1Probes(k)
			t.AddRow(d, k, a.Tau(), m.Probes.Mean, int(m.Probes.Max), a.ProbeBound(),
				theory, m.Probes.Mean/theory, m.RoundsWorst, fmt.Sprintf("%.2f", m.Success.Rate()))
		}
	}
	return []*Table{t}
}

func runE2(cfg Config) []*Table {
	d := 16384
	ks := []int{4, 6, 8, 12, 16, 20, 24}
	n, q := 220, 30
	if cfg.Quick {
		d = 1024
		ks = []int{4, 8, 12}
		q = 12
	}
	in := tradeoffInstance(cfg.Seed, d, n, q)
	th := Theory{D: d, Gamma: 2}
	t := &Table{
		ID:      "E2",
		Title:   "Algorithm 2: probes vs rounds for large k",
		Caption: "theory column is k + ((log_α d)/k)^{c/k}, c=3; algo1 column shows the scheme Algorithm 2 improves on",
		Headers: []string{"d", "k", "tau", "s", "probes(mean)", "probes(max)", "theory", "meas/theory", "algo1(mean)", "probes/round", "success"},
	}
	for _, k := range ks {
		idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, K: k, Seed: cfg.Seed + 1})
		a2 := core.NewAlgo2(idx, k)
		m2 := RunScheme(a2, in, 2)
		a1 := core.NewAlgo1(idx, k)
		m1 := RunScheme(a1, in, 2)
		theory := th.Algo2Probes(k, idx.P.CExp)
		perRound := m2.Probes.Mean / m2.Rounds.Mean
		t.AddRow(d, k, a2.Tau(), fmt.Sprintf("%.2f", a2.S()), m2.Probes.Mean, int(m2.Probes.Max),
			theory, m2.Probes.Mean/theory, m1.Probes.Mean,
			fmt.Sprintf("%.2f", perRound), fmt.Sprintf("%.2f", m2.Success.Rate()))
	}
	return []*Table{t}
}

func runE3(cfg Config) []*Table {
	dims := []int{1024, 16384, 65536}
	n, q := 200, 20
	if cfg.Quick {
		dims = []int{1024}
		q = 10
	}
	t := &Table{
		ID:      "E3",
		Title:   "Measured upper bounds vs the k-round lower bound",
		Caption: "lower = (1/k)(log_γ d)^{1/k} (Theorem 4, valid for k ≤ kmax); Theorem 2 matches it up to O(k²)",
		Headers: []string{"d", "kmax(Thm4)", "k", "lower", "algo1(mean)", "ratio", "ratio/k^2"},
	}
	for _, d := range dims {
		in := tradeoffInstance(cfg.Seed, d, n, q)
		idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, Seed: cfg.Seed + 1})
		th := Theory{D: d, Gamma: 2}
		kmax := th.LowerBoundValidK()
		// Sweep past the Theorem 4 validity cap (which is tiny at simulable
		// d) so the curve's shape is visible.
		kTop := kmax + 3
		if kTop < 4 {
			kTop = 4
		}
		for k := 1; k <= kTop; k++ {
			a := core.NewAlgo1(idx, k)
			m := RunScheme(a, in, 2)
			lower := th.LowerBound(k)
			ratio := m.Probes.Mean / lower
			t.AddRow(d, kmax, k, lower, m.Probes.Mean, ratio, ratio/float64(k*k))
		}
	}
	return []*Table{t}
}

func dedupInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func runE4(cfg Config) []*Table {
	d := 65536
	n, q := 200, 20
	if cfg.Quick {
		d = 4096
		q = 10
	}
	in := tradeoffInstance(cfg.Seed, d, n, q)
	idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, K: 8, Seed: cfg.Seed + 1})
	th := Theory{D: d, Gamma: 2}
	kStar := th.PhaseTransitionK()
	t := &Table{
		ID:    "E4",
		Title: "Phase transition in probes per round",
		Caption: fmt.Sprintf("k* = Θ(log log d/log log log d) = %d for d=%d; fully-adaptive tight bound = %.1f probes",
			kStar, d, th.FullyAdaptive()),
		Headers: []string{"scheme", "k", "probes(mean)", "rounds(mean)", "probes/round", "regime"},
	}
	ks := dedupInts([]int{1, 2, kStar, 2 * kStar, 4 * kStar})
	for _, k := range ks {
		a := core.NewAlgo1(idx, k)
		m := RunScheme(a, in, 2)
		regime := "below k*"
		if k >= kStar {
			regime = "at/above k*"
		}
		t.AddRow(a.Name(), k, m.Probes.Mean, m.Rounds.Mean,
			fmt.Sprintf("%.2f", m.Probes.Mean/m.Rounds.Mean), regime)
	}
	for _, k := range ks {
		if k < 2 {
			continue
		}
		idxK := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, K: k, Seed: cfg.Seed + 1})
		a := core.NewAlgo2(idxK, k)
		m := RunScheme(a, in, 2)
		regime := "below k*"
		if k >= kStar {
			regime = "at/above k*"
		}
		t.AddRow(a.Name(), k, m.Probes.Mean, m.Rounds.Mean,
			fmt.Sprintf("%.2f", m.Probes.Mean/m.Rounds.Mean), regime)
	}
	return []*Table{t}
}
