// Package eval is the benchmark harness: it runs the paper's schemes and
// the baselines over synthetic workloads, collects cell-probe accounting,
// and renders the experiment tables E1–E10 listed in DESIGN.md §4. Since
// the paper is a theory paper, the "figures" being regenerated are its
// theorem-level tradeoff curves; package eval also evaluates those
// closed-form bounds so that measured and predicted columns sit side by
// side.
package eval

import "math"

// Theory evaluates the closed-form bounds of the paper for one (d, γ).
type Theory struct {
	D     int
	Gamma float64
}

// logAlphaD returns log_α d = 2·log_γ d, the number of ball levels.
func (t Theory) logAlphaD() float64 {
	alpha := math.Sqrt(t.Gamma)
	return math.Log(float64(t.D)) / math.Log(alpha)
}

// Algo1Probes is Theorem 2's bound k·(log d)^{1/k} (unscaled: the constant
// is calibrated per-plot by the harness, shape is the claim).
func (t Theory) Algo1Probes(k int) float64 {
	return float64(k) * math.Pow(t.logAlphaD(), 1/float64(k))
}

// Algo2Probes is Theorem 3's bound k + ((1/k)·log d)^{c/k}.
func (t Theory) Algo2Probes(k int, c float64) float64 {
	base := t.logAlphaD() / float64(k)
	if base < 1 {
		base = 1
	}
	return float64(k) + math.Pow(base, c/float64(k))
}

// LowerBound is Theorem 4's Ω((1/k)·(log_γ d)^{1/k}).
func (t Theory) LowerBound(k int) float64 {
	logd := math.Log(float64(t.D)) / math.Log(t.Gamma)
	if logd < 1 {
		logd = 1
	}
	return math.Pow(logd, 1/float64(k)) / float64(k)
}

// FullyAdaptive is Theorem 1's Θ(log log d / log log log d) tight bound for
// unconstrained adaptivity (Chakrabarti–Regev).
func (t Theory) FullyAdaptive() float64 {
	ll := math.Log2(math.Log2(float64(t.D)))
	lll := math.Log2(ll)
	if lll < 1 {
		lll = 1
	}
	return ll / lll
}

// PhaseTransitionK is the round budget Θ(log log d / log log log d) at
// which the paper's phase transition sits.
func (t Theory) PhaseTransitionK() int {
	k := int(math.Round(t.FullyAdaptive()))
	if k < 2 {
		k = 2
	}
	return k
}

// LowerBoundValidK is Theorem 4's validity cap log log d/(2 log log log d).
func (t Theory) LowerBoundValidK() int {
	ll := math.Log2(math.Log2(float64(t.D)))
	lll := math.Log2(ll)
	if lll < 1 {
		lll = 1
	}
	k := int(math.Floor(ll / (2 * lll)))
	if k < 1 {
		k = 1
	}
	return k
}

// LSHRho is the bit-sampling exponent ρ ≈ 1/γ governing the baseline's
// n^ρ probe growth.
func (t Theory) LSHRho() float64 { return 1 / t.Gamma }
