package eval

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, a caption tying it to the
// paper claim it reproduces, column headers, and rows of formatted cells.
type Table struct {
	ID      string
	Title   string
	Caption string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v (floats get %.3g).
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Text renders the table with aligned columns for terminal output.
func (t *Table) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&sb, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s: %s\n\n", t.ID, t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&sb, "%s\n\n", t.Caption)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (cells are simple
// numerics and identifiers; no quoting needed).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Headers, ",") + "\n")
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ",") + "\n")
	}
	return sb.String()
}
