package eval

import (
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/hamming"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Metrics aggregates one scheme's behaviour over a query stream.
type Metrics struct {
	Scheme      string
	Queries     int
	Success     stats.Proportion // γ-approximate answers
	Failures    int              // no answer returned
	Violations  int              // run-time assumption-violation detections
	Degenerate  int              // answered by the degenerate-case probes
	Probes      stats.Summary
	Rounds      stats.Summary
	MaxPerRound stats.Summary // per-query max parallel probes in a round
	ApproxRatio stats.Summary // dist(answer)/dist(exact NN), failures skipped
	ProbesWorst int
	RoundsWorst int
}

// RunScheme executes the scheme over every query of the instance and
// verifies answers against the precomputed exact ground truth.
func RunScheme(s core.Scheme, in *workload.Instance, gamma float64) Metrics {
	m := Metrics{Scheme: s.Name(), Queries: len(in.Queries)}
	var probes, rounds, maxPer, ratios []float64
	for _, q := range in.Queries {
		res := s.Query(q.X)
		probes = append(probes, float64(res.Stats.Probes))
		rounds = append(rounds, float64(res.Stats.Rounds))
		maxPer = append(maxPer, float64(res.Stats.MaxProbesInRound()))
		if res.Stats.Probes > m.ProbesWorst {
			m.ProbesWorst = res.Stats.Probes
		}
		if res.Stats.Rounds > m.RoundsWorst {
			m.RoundsWorst = res.Stats.Rounds
		}
		if res.Violated {
			m.Violations++
		}
		if res.Degenerate {
			m.Degenerate++
		}
		m.Success.Trials++
		if res.Failed() {
			m.Failures++
			continue
		}
		got := bitvec.Distance(in.DB[res.Index], q.X)
		if float64(got) <= gamma*float64(q.NNDist) {
			m.Success.Successes++
		}
		if q.NNDist > 0 {
			ratios = append(ratios, float64(got)/float64(q.NNDist))
		} else if got == 0 {
			ratios = append(ratios, 1)
		}
	}
	m.Probes = stats.Summarize(probes)
	m.Rounds = stats.Summarize(rounds)
	m.MaxPerRound = stats.Summarize(maxPer)
	m.ApproxRatio = stats.Summarize(ratios)
	return m
}

// RawQuery is a schemeless runner used by baselines that do not implement
// core.Scheme (LSH, linear scan): fn answers one query and reports probes.
type RawQuery func(x bitvec.Vector) (idx, probes, rounds int)

// RunRaw executes fn over the instance's queries with the same accounting.
func RunRaw(name string, fn RawQuery, in *workload.Instance, gamma float64) Metrics {
	m := Metrics{Scheme: name, Queries: len(in.Queries)}
	var probes, rounds []float64
	for _, q := range in.Queries {
		idx, p, r := fn(q.X)
		probes = append(probes, float64(p))
		rounds = append(rounds, float64(r))
		if p > m.ProbesWorst {
			m.ProbesWorst = p
		}
		if r > m.RoundsWorst {
			m.RoundsWorst = r
		}
		m.Success.Trials++
		if idx < 0 {
			m.Failures++
			continue
		}
		got := bitvec.Distance(in.DB[idx], q.X)
		if float64(got) <= gamma*float64(q.NNDist) {
			m.Success.Successes++
		}
	}
	m.Probes = stats.Summarize(probes)
	m.Rounds = stats.Summarize(rounds)
	return m
}

// GroundTruthOK double-checks an instance's stored ground truth (tests).
func GroundTruthOK(in *workload.Instance) bool {
	for _, q := range in.Queries {
		if _, d := hamming.Nearest(in.DB, q.X); d != q.NNDist {
			return false
		}
	}
	return true
}
