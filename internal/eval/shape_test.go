package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/workload"
)

func newSeededSource(seed uint64) *rng.Source { return rng.New(seed) }

// TestTheorem2ShapeRegression is the reproduction's headline claim as a
// CI guard: Algorithm 1's measured probe count stays within a constant
// factor of k·(log_α d)^{1/k} across the (d, k) sweep. If a future change
// breaks the tradeoff — τ selection, grid arithmetic, round accounting —
// this fails before any benchmark is read.
func TestTheorem2ShapeRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	const lo, hi = 0.4, 2.0 // measured/theory must stay within [lo, hi]
	for _, d := range []int{256, 1024, 4096} {
		in := tradeoffInstance(42, d, 200, 15)
		idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, Seed: 43})
		th := Theory{D: d, Gamma: 2}
		for _, k := range []int{1, 2, 3, 4, 6} {
			a := core.NewAlgo1(idx, k)
			m := RunScheme(a, in, 2)
			ratio := m.Probes.Mean / th.Algo1Probes(k)
			if ratio < lo || ratio > hi {
				t.Errorf("d=%d k=%d: measured/theory = %.2f outside [%.1f, %.1f]",
					d, k, ratio, lo, hi)
			}
			if m.Success.Rate() < 0.75 {
				t.Errorf("d=%d k=%d: success %.2f below the 3/4 budget", d, k, m.Success.Rate())
			}
			if m.RoundsWorst > k {
				t.Errorf("d=%d k=%d: round budget exceeded (%d)", d, k, m.RoundsWorst)
			}
		}
	}
}

// TestTheorem4DominanceRegression guards the lower-bound relationship: no
// measured configuration may dip below the Theorem 4 curve (that would
// mean the simulator is miscounting probes, since the bound is proved).
func TestTheorem4DominanceRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep skipped in -short")
	}
	d := 1024
	in := tradeoffInstance(44, d, 200, 15)
	idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, Seed: 45})
	th := Theory{D: d, Gamma: 2}
	for k := 1; k <= 6; k++ {
		m := RunScheme(core.NewAlgo1(idx, k), in, 2)
		if m.Probes.Mean < th.LowerBound(k) {
			t.Errorf("k=%d: measured %.2f below the proven lower bound %.2f — probe accounting broken",
				k, m.Probes.Mean, th.LowerBound(k))
		}
	}
}

// TestLambdaOneProbeRegression pins Theorem 11's defining property.
func TestLambdaOneProbeRegression(t *testing.T) {
	r := newSeededSource(46)
	in := workload.Annulus(r, 512, 128, 40, 6, 2)
	idx := core.BuildIndex(in.DB, 512, core.Params{Gamma: 2, Seed: 47})
	s := core.NewLambda(idx)
	for _, q := range in.Queries {
		res := s.QueryNear(q.X, 6)
		if res.Stats.Probes != 1 || res.Stats.Rounds != 1 {
			t.Fatalf("lambda-ANNS used %d probes in %d rounds", res.Stats.Probes, res.Stats.Rounds)
		}
	}
}
