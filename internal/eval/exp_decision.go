package eval

import (
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "λ-ANNS with a single probe",
		Claim: "Theorem 11: λ-near neighbor search solved with 1 probe, polynomial table, success ≥ 2/3",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "Non-adaptive comparison: Algorithm 1 (k=1) vs LSH",
		Claim: "§1: LSH probes grow as n^ρ; Algorithm 1 stays O(log d) with a larger polynomial table",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Sketch approximation quality (Lemma 8)",
		Claim: "Lemma 8: B_i ⊆ C_i ⊆ B_{i+1} for all i, and the D_{i,j} leakage bounds, hold w.p. ≥ 3/4",
		Run:   runE7,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Space accounting",
		Claim: "Theorems 9/10: table size n^{O(1)}, word size O(d); the simulator touches a vanishing fraction",
		Run:   runE8,
	})
}

func runE5(cfg Config) []*Table {
	d, n, q := 1024, 256, 200
	lambda := 8
	if cfg.Quick {
		q = 60
	}
	r := rng.New(cfg.Seed)
	in := workload.Annulus(r, d, n, q, lambda, 2)
	idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, Seed: cfg.Seed + 1})
	s := core.NewLambda(idx)
	gammaLambda := 2.0 * float64(lambda)
	var yes, no stats.Proportion
	probesBad := 0
	for _, qu := range in.Queries {
		res := s.QueryNear(qu.X, float64(lambda))
		if res.Stats.Probes != 1 || res.Stats.Rounds != 1 {
			probesBad++
		}
		isYes := qu.NNDist <= lambda
		isNo := float64(qu.NNDist) > gammaLambda
		switch {
		case isYes:
			yes.Trials++
			// Correct iff a point within γλ is returned.
			if res.Index >= 0 && float64(bitvec.Distance(in.DB[res.Index], qu.X)) <= gammaLambda {
				yes.Successes++
			}
		case isNo:
			no.Trials++
			// Correct iff the scheme answers NO.
			if res.Index < 0 && res.Err == nil {
				no.Successes++
			}
		default:
			// Annulus queries between λ and γλ: any answer is acceptable.
		}
	}
	t := &Table{
		ID:      "E5",
		Title:   "λ-ANNS decision quality at exactly one probe",
		Caption: fmt.Sprintf("λ=%d, γ=2, d=%d, n=%d; every query used exactly 1 probe in 1 round (violations: %d)", lambda, d, n, probesBad),
		Headers: []string{"case", "correct", "rate", "wilson95"},
	}
	lo, hi := yes.Wilson()
	t.AddRow("YES (λ-near exists)", fmt.Sprintf("%d/%d", yes.Successes, yes.Trials),
		fmt.Sprintf("%.3f", yes.Rate()), fmt.Sprintf("[%.3f,%.3f]", lo, hi))
	lo, hi = no.Wilson()
	t.AddRow("NO (nothing within γλ)", fmt.Sprintf("%d/%d", no.Successes, no.Trials),
		fmt.Sprintf("%.3f", no.Rate()), fmt.Sprintf("[%.3f,%.3f]", lo, hi))
	return []*Table{t}
}

func runE6(cfg Config) []*Table {
	d := 1024
	ns := []int{64, 128, 256, 512, 1024}
	q := 20
	if cfg.Quick {
		ns = []int{64, 256}
		q = 10
	}
	th := Theory{D: d, Gamma: 2}
	t := &Table{
		ID:      "E6",
		Title:   "Probe cost vs database size, non-adaptive schemes",
		Caption: fmt.Sprintf("ρ = 1/γ = %.2f: LSH probes should scale ≈ n^ρ while Algorithm 1 (k=1) stays flat at ≈ log_α d; space shows the reverse tradeoff (log₂ cells)", th.LSHRho()),
		Headers: []string{"n", "lsh probes", "lsh space", "algo1 probes", "algo1 space", "lsh/algo1", "lsh success", "algo1 success"},
	}
	for _, n := range ns {
		r := rng.New(cfg.Seed + uint64(n))
		in := workload.PlantedNN(r, d, n, q, d/24)
		lsh := baseline.NewNearestLSH(r.Split(1), in.DB, d, 2)
		mLSH := RunRaw("lsh", func(x bitvec.Vector) (int, int, int) {
			idx, st := lsh.Query(x)
			return idx, st.Probes, st.Rounds
		}, in, 2)
		idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, Seed: cfg.Seed + 2})
		a1 := core.NewAlgo1(idx, 1)
		mA1 := RunScheme(a1, in, 2)
		// Space: LSH stores Σ_levels L·n entries; Algorithm 1's model table
		// is (L+1)·2^{c₁ log n} cells.
		lshSpace := math.Log2(float64(idx.Fam.L+1)) + th.LSHRho()*math.Log2(float64(n)) + math.Log2(float64(n))
		algoSpace := table.NominalLogCellsTotal(idx.Fam)
		t.AddRow(n, mLSH.Probes.Mean, fmt.Sprintf("2^%.1f", lshSpace),
			mA1.Probes.Mean, fmt.Sprintf("2^%.1f", algoSpace),
			mLSH.Probes.Mean/mA1.Probes.Mean,
			fmt.Sprintf("%.2f", mLSH.Success.Rate()), fmt.Sprintf("%.2f", mA1.Success.Rate()))
	}
	return []*Table{t}
}

// lemma8Rates measures the Lemma 8 events for one C1 setting.
type lemma8Rates struct {
	conj     stats.Proportion // Assumption 2 conjunction over all levels
	nestLow  stats.Proportion // B_i ⊆ C_i per (trial, level)
	nestHigh stats.Proportion // C_i ⊆ B_{i+1} per (trial, level)
	a3Recall stats.Proportion
	a3Leak   stats.Proportion
}

func measureLemma8(seed uint64, d, n, trials int, c1 float64) lemma8Rates {
	var out lemma8Rates
	r := rng.New(seed)
	for trial := 0; trial < trials; trial++ {
		in := workload.PlantedNN(r.Split(uint64(trial)), d, n, 1, d/24)
		x := in.Queries[0].X
		p := core.Params{Gamma: 2, C1: c1, K: 8, Seed: seed + uint64(trial)}
		idx := core.BuildIndex(in.DB, d, p)
		fam := idx.Fam
		allOK := true
		for i := 0; i <= fam.L; i++ {
			sx := fam.Accurate[i].Apply(x)
			members := idx.Tables.Ball[i].MembersOfC(sx)
			inC := make(map[int]bool, len(members))
			for _, m := range members {
				inC[m] = true
			}
			lowOK, highOK := true, true
			for zi, z := range in.DB {
				dist := float64(bitvec.Distance(z, x))
				if dist <= fam.Radius(i) && !inC[zi] {
					lowOK = false // B_i ⊄ C_i
				}
				if inC[zi] && dist > fam.Radius(i+1) {
					highOK = false // C_i ⊄ B_{i+1}
				}
			}
			out.nestLow.Trials++
			out.nestHigh.Trials++
			if lowOK {
				out.nestLow.Successes++
			}
			if highOK {
				out.nestHigh.Successes++
			}
			allOK = allOK && lowOK && highOK
		}
		out.conj.Trials++
		if allOK {
			out.conj.Successes++
		}
		// Assumption 3 on a sample of (i, j) pairs.
		cut := math.Pow(float64(n), -1/idx.P.S)
		for _, pair := range [][2]int{{fam.L / 2, fam.L / 4}, {fam.L, fam.L / 2}, {fam.L * 3 / 4, fam.L / 2}} {
			i, j := pair[0], pair[1]
			if j > i {
				continue
			}
			sx := fam.Accurate[i].Apply(x)
			cx := fam.Coarse[j].Apply(x)
			members := idx.Tables.Ball[i].MembersOfC(sx)
			inD := make(map[int]bool)
			for _, m := range members {
				if fam.InD(j, cx, fam.Coarse[j].Apply(in.DB[m])) {
					inD[m] = true
				}
			}
			bj, missing := 0, 0
			leakPool, leaked := 0, 0
			for zi, z := range in.DB {
				if float64(bitvec.Distance(z, x)) <= fam.Radius(j) {
					bj++
					if !inD[zi] {
						missing++
					}
				}
			}
			for _, m := range members {
				if float64(bitvec.Distance(in.DB[m], x)) > fam.Radius(j+1) {
					leakPool++
					if inD[m] {
						leaked++
					}
				}
			}
			out.a3Recall.Trials++
			if bj == 0 || float64(missing) <= cut*float64(bj) {
				out.a3Recall.Successes++
			}
			out.a3Leak.Trials++
			if leakPool == 0 || float64(leaked) <= cut*float64(leakPool) {
				out.a3Leak.Successes++
			}
		}
	}
	return out
}

func runE7(cfg Config) []*Table {
	d, n := 1024, 200
	trials := 16
	c1s := []float64{24, 48, 96, 192}
	if cfg.Quick {
		trials = 8
		c1s = []float64{24, 96}
	}
	t := &Table{
		ID:    "E7",
		Title: "Lemma 8 event frequencies vs the sketch-row constant c₁",
		Caption: fmt.Sprintf("d=%d n=%d trials=%d; the paper proves the conjunction ≥ 0.75 for c₁ > 64/(1−e^{(1−α)/2})² ≈ 1834 — "+
			"the measured rate crosses that budget already near c₁ ≈ 192, and per-level nesting is high throughout", d, n, trials),
		Headers: []string{"c1", "Assumption2 (conj)", "B_i⊆C_i /level", "C_i⊆B_{i+1} /level", "A3 recall", "A3 leakage"},
	}
	for _, c1 := range c1s {
		rates := measureLemma8(cfg.Seed, d, n, trials, c1)
		t.AddRow(c1,
			fmt.Sprintf("%.2f", rates.conj.Rate()),
			fmt.Sprintf("%.3f", rates.nestLow.Rate()),
			fmt.Sprintf("%.3f", rates.nestHigh.Rate()),
			fmt.Sprintf("%.2f", rates.a3Recall.Rate()),
			fmt.Sprintf("%.2f", rates.a3Leak.Rate()))
	}
	return []*Table{t}
}

func runE8(cfg Config) []*Table {
	d := 1024
	ns := []int{100, 200, 400, 800}
	q := 15
	if cfg.Quick {
		ns = []int{100, 200}
		q = 6
	}
	t := &Table{
		ID:      "E8",
		Title:   "Nominal (model) vs materialized (simulated) space",
		Caption: "nominal log₂ cells grows linearly in log n (polynomial table size); the lazy simulator touches only the probed cells",
		Headers: []string{"n", "d", "nominal log2(cells)", "poly degree (÷log2 n)", "materialized cells", "cell evals", "memo hits"},
	}
	for _, n := range ns {
		r := rng.New(cfg.Seed + uint64(n))
		in := workload.PlantedNN(r, d, n, q, d/24)
		idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, K: 4, Seed: cfg.Seed})
		a := core.NewAlgo1(idx, 3)
		for _, qu := range in.Queries {
			a.Query(qu.X)
		}
		sp := idx.Tables.Space()
		t.AddRow(n, d, sp.NominalLogCells, sp.NominalLogCells/math.Log2(float64(n)),
			sp.MaterializedWord, sp.CellEvals, sp.MemoHits)
	}
	return []*Table{t}
}
