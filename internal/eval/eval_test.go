package eval

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestTheoryCurves(t *testing.T) {
	th := Theory{D: 1 << 20, Gamma: 2}
	// Algo1 bound decreases then increases in k, minimized near log log d.
	if th.Algo1Probes(1) <= th.Algo1Probes(4) {
		t.Error("Algo1 bound not decreasing from k=1")
	}
	// Lower bound is decreasing in k.
	prev := th.LowerBound(1)
	for k := 2; k <= 6; k++ {
		cur := th.LowerBound(k)
		if cur >= prev {
			t.Fatalf("lower bound not decreasing at k=%d", k)
		}
		prev = cur
	}
	// Upper bound dominates the lower bound everywhere.
	for k := 1; k <= 8; k++ {
		if th.Algo1Probes(k) < th.LowerBound(k) {
			t.Fatalf("theory upper below lower at k=%d", k)
		}
	}
	if th.FullyAdaptive() <= 1 {
		t.Error("fully adaptive bound too small")
	}
	if th.PhaseTransitionK() < 2 {
		t.Error("phase transition k")
	}
	if th.LowerBoundValidK() < 1 {
		t.Error("valid k cap")
	}
	if th.LSHRho() != 0.5 {
		t.Error("rho")
	}
}

func TestTheoryGrowsWithDimension(t *testing.T) {
	small := Theory{D: 256, Gamma: 2}
	big := Theory{D: 1 << 20, Gamma: 2}
	for k := 1; k <= 4; k++ {
		if big.Algo1Probes(k) <= small.Algo1Probes(k) {
			t.Errorf("k=%d: bound not increasing in d", k)
		}
		if big.LowerBound(k) <= small.LowerBound(k) {
			t.Errorf("k=%d: lower bound not increasing in d", k)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registry has %d experiments, want 14 (E1-E10 + ablations E11-E13 + E14)", len(all))
	}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %d incomplete: %+v", i, e)
		}
	}
	// Ordered E1..E14.
	if all[0].ID != "E1" || all[9].ID != "E10" || all[13].ID != "E14" {
		t.Errorf("ordering: %s .. %s", all[0].ID, all[12].ID)
	}
	if _, ok := ByID("E3"); !ok {
		t.Error("ByID(E3) missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) found")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "T", Title: "demo", Caption: "cap",
		Headers: []string{"a", "b"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", 3)
	text := tab.Text()
	for _, want := range []string{"demo", "cap", "a", "2.5", "x"} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "### T: demo") {
		t.Errorf("markdown:\n%s", md)
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestRunSchemeMetrics(t *testing.T) {
	r := rng.New(9)
	in := workload.PlantedNN(r, 256, 80, 10, 8)
	idx := core.BuildIndex(in.DB, 256, core.Params{Gamma: 2, Seed: 10})
	m := RunScheme(core.NewAlgo1(idx, 2), in, 2)
	if m.Queries != 10 || m.Success.Trials != 10 {
		t.Errorf("metrics %+v", m)
	}
	if m.Probes.N != 10 || m.Probes.Mean <= 0 {
		t.Error("probe summary missing")
	}
	if m.RoundsWorst > 2 {
		t.Errorf("rounds worst %d", m.RoundsWorst)
	}
	if !GroundTruthOK(in) {
		t.Error("ground truth check failed")
	}
}

func TestRunRaw(t *testing.T) {
	r := rng.New(11)
	in := workload.PlantedNN(r, 256, 60, 8, 8)
	scan := baseline.NewLinearScan(in.DB)
	m := RunRaw("exact", func(x bitvec.Vector) (int, int, int) {
		idx, st := scan.Query(x)
		return idx, st.Probes, st.Rounds
	}, in, 2)
	if m.Success.Rate() != 1 {
		t.Errorf("exact scan success %v", m.Success.Rate())
	}
	if m.Probes.Mean != 60 {
		t.Errorf("scan probes %v", m.Probes.Mean)
	}
	if m.Scheme != "exact" {
		t.Error("scheme name lost")
	}
}

func TestExperimentsQuickMode(t *testing.T) {
	// Integration: every experiment runs in quick mode and yields at least
	// one non-empty table. This is the end-to-end harness test.
	if testing.Short() {
		t.Skip("quick-mode experiment sweep skipped in -short")
	}
	cfg := Config{Seed: 7, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Headers) == 0 || len(tab.Rows) == 0 {
					t.Errorf("table %s empty", tab.ID)
				}
				if tab.Text() == "" {
					t.Error("empty rendering")
				}
			}
		})
	}
}
