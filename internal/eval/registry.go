package eval

import (
	"fmt"
	"sort"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	Seed  uint64
	Quick bool // reduced sweeps for -short test runs
}

// Experiment is one entry of the suite defined in DESIGN.md §4.
type Experiment struct {
	ID    string
	Title string
	Claim string // the paper statement this experiment reproduces
	Run   func(cfg Config) []*Table
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("eval: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns the experiments ordered by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idOrder(out[i].ID) < idOrder(out[j].ID) })
	return out
}

func idOrder(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}
