package eval

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/lpm"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "LPM → ANNS reduction (Lemma 14/16)",
		Claim: "γ-approximate NN on the embedded instance yields exact longest-prefix-match answers",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Cell-probe → communication translation (Prop. 18)",
		Claim: "k probe rounds become 2k communication rounds with aᵢ = tᵢ⌈log s⌉, bᵢ = tᵢ·w bits",
		Run:   runE10,
	})
}

func runE9(cfg Config) []*Table {
	d, sigma, m := 16384, 4, 3
	nStrings, q := 40, 40
	if cfg.Quick {
		d, q = 4096, 15
		m = 2
	}
	r := rng.New(cfg.Seed)
	in := randomLPM(r, sigma, m, nStrings)
	rd, err := lpm.NewReduction(r.Split(1), in, d, 2)
	t := &Table{
		ID:      "E9",
		Title:   "LPM solved through the ANNS reduction",
		Caption: fmt.Sprintf("σ=%d, m=%d, n=%d strings embedded into {0,1}^%d via the γ-separated ball tree", sigma, m, nStrings, d),
		Headers: []string{"check", "result"},
	}
	if err != nil {
		t.AddRow("tree construction", "FAILED: "+err.Error())
		return []*Table{t}
	}
	if err := rd.Tree.CheckSeparation(); err != nil {
		t.AddRow("γ-separation invariant", "FAILED: "+err.Error())
		return []*Table{t}
	}
	t.AddRow("γ-separation invariant", "holds at every level")

	idx := core.BuildIndex(rd.Points, d, core.Params{Gamma: 2, Seed: cfg.Seed + 7})
	a := core.NewAlgo1(idx, 2)
	trie := lpm.NewTrie(in)
	var gapOK, match stats.Proportion
	var probes []float64
	for i := 0; i < q; i++ {
		x := randomString(r, sigma, m)
		if rd.VerifyGap(x) == nil {
			gapOK.Successes++
		}
		gapOK.Trials++
		res := a.Query(rd.QueryPoint(x))
		probes = append(probes, float64(res.Stats.Probes))
		match.Trials++
		if res.Index >= 0 {
			_, wantLCP := trie.Query(x)
			if lpm.LCP(in.DB[res.Index], x) == wantLCP {
				match.Successes++
			}
		}
	}
	t.AddRow("distance-gap property on queries", gapOK.String())
	t.AddRow("ANNS answer attains max LCP", match.String())
	t.AddRow("ANNS probes per query", stats.Summarize(probes).String())
	return []*Table{t}
}

func randomLPM(r *rng.Source, sigma, m, n int) *lpm.Instance {
	in := &lpm.Instance{Sigma: sigma, M: m}
	for i := 0; i < n; i++ {
		in.DB = append(in.DB, randomString(r, sigma, m))
	}
	return in
}

func randomString(r *rng.Source, sigma, m int) []int {
	s := make([]int, m)
	for i := range s {
		s[i] = r.Intn(sigma)
	}
	return s
}

func runE10(cfg Config) []*Table {
	d, n, q := 1024, 200, 8
	if cfg.Quick {
		q = 4
	}
	r := rng.New(cfg.Seed)
	in := tradeoffInstance(cfg.Seed, d, n, q)
	_ = r
	idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, Seed: cfg.Seed + 1})
	t := &Table{
		ID:      "E10",
		Title:   "Proposition 18 message accounting",
		Caption: "every probe round contributes one Alice message (addresses) and one Bob message (contents)",
		Headers: []string{"k", "probe rounds(max)", "comm rounds(max)", "alice bits(mean)", "bob bits(mean)", "bits/probe ≈ log s + w"},
	}
	for _, k := range []int{1, 2, 3, 4} {
		a := core.NewAlgo1(idx, k)
		var commRounds, probeRounds int
		var aliceBits, bobBits, probes float64
		for _, qu := range in.Queries {
			c := core.NewRecordingQueryCtx()
			res := a.QueryWithCtx(qu.X, c)
			tr := comm.Translate(c.Probe().Transcript())
			if tr.ProbeRounds > probeRounds {
				probeRounds = tr.ProbeRounds
			}
			if tr.CommRounds > commRounds {
				commRounds = tr.CommRounds
			}
			aliceBits += float64(tr.AliceTotal)
			bobBits += float64(tr.BobTotal)
			probes += float64(res.Stats.Probes)
		}
		nq := float64(len(in.Queries))
		t.AddRow(k, probeRounds, commRounds, aliceBits/nq, bobBits/nq,
			fmt.Sprintf("%.0f", (aliceBits+bobBits)/probes))
	}
	return []*Table{t}
}
