package eval

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/workload"
)

func bitvecDistance(a, b bitvec.Vector) int { return bitvec.Distance(a, b) }

// Ablation experiments: E11–E13 measure the design choices DESIGN.md §3
// calls out (threshold placement, randomness/boosting, approximation
// ratio), so that each interpretation or calibration decision carries its
// own evidence.

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Ablation: membership-threshold placement",
		Claim: "DESIGN.md §3.3: the midpoint reading of Definition 7's δ test is the one that works; the literal reading fails",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "Ablation: success boosting and the private-coin transform",
		Claim: "§2 / Lemma 5: parallel repetition boosts success without extra rounds; private coins cost only table size",
		Run:   runE12,
	})
	register(Experiment{
		ID:    "E13",
		Title: "Ablation: approximation ratio γ",
		Claim: "levels scale as log_√γ d, so probes fall and answers coarsen as γ grows",
		Run:   runE13,
	})
}

func runE11(cfg Config) []*Table {
	d, n, q := 1024, 260, 25
	if cfg.Quick {
		q = 10
		n = 120
	}
	// Graded ladder: planted points at distances 10, 20, 40, 80. Returning
	// a point one rung above the nearest shows as approx ratio ≈ 2, two
	// rungs ≈ 4 > γ — the workload that separates threshold placements.
	r := rng.New(cfg.Seed + 3)
	in := workload.Graded(r, d, n, q, 10, 2, 4)
	t := &Table{
		ID:    "E11",
		Title: "Threshold placement vs answer quality (graded workload)",
		Caption: "cut = f(αⁱ) + frac·δ; 'literal δ' is Definition 7 exactly as typeset — its " +
			"threshold sits below the radius-αⁱ expectation, which breaks the B_i ⊆ C_i nesting " +
			"(it acts as a re-scaled, noisier radius); the nesting columns measure Lemma 8 per level",
		Headers: []string{"cut", "success", "approx(mean)", "approx(max)", "B_i⊆C_i /level", "C_i⊆B_{i+1} /level"},
	}
	type setting struct {
		label string
		p     core.Params
	}
	settings := []setting{
		{"frac=0.25", core.Params{Gamma: 2, CutFraction: 0.25, Seed: cfg.Seed + 1}},
		{"frac=0.50 (default)", core.Params{Gamma: 2, Seed: cfg.Seed + 1}},
		{"frac=0.75", core.Params{Gamma: 2, CutFraction: 0.75, Seed: cfg.Seed + 1}},
		{"literal δ", core.Params{Gamma: 2, LiteralDeltaCut: true, Seed: cfg.Seed + 1}},
	}
	for _, s := range settings {
		idx := core.BuildIndex(in.DB, d, s.p)
		m := RunScheme(core.NewAlgo1(idx, 3), in, 2)
		low, high := nestingRates(idx, in)
		t.AddRow(s.label, fmt.Sprintf("%.2f", m.Success.Rate()),
			m.ApproxRatio.Mean, m.ApproxRatio.Max,
			fmt.Sprintf("%.3f", low), fmt.Sprintf("%.3f", high))
	}
	return []*Table{t}
}

// nestingRates measures the per-level Lemma 8 nesting events over the
// instance's queries for an already-built index.
func nestingRates(idx *core.Index, in *workload.Instance) (low, high float64) {
	fam := idx.Fam
	var lowOK, highOK, total int
	for qi, qu := range in.Queries {
		if qi >= 6 { // a handful of queries suffices for the rate
			break
		}
		for i := 0; i <= fam.L; i++ {
			sx := fam.Accurate[i].Apply(qu.X)
			members := idx.Tables.Ball[i].MembersOfC(sx)
			inC := make(map[int]bool, len(members))
			for _, m := range members {
				inC[m] = true
			}
			lOK, hOK := true, true
			for zi, z := range in.DB {
				dist := float64(bitvecDistance(z, qu.X))
				if dist <= fam.Radius(i) && !inC[zi] {
					lOK = false
				}
				if inC[zi] && dist > fam.Radius(i+1) {
					hOK = false
				}
			}
			total++
			if lOK {
				lowOK++
			}
			if hOK {
				highOK++
			}
		}
	}
	return float64(lowOK) / float64(total), float64(highOK) / float64(total)
}

func runE12(cfg Config) []*Table {
	d, n, q := 512, 150, 40
	if cfg.Quick {
		q = 16
	}
	// Deliberately weak sketches (small c₁) so single-copy success is
	// visibly below 1 and boosting has something to amplify.
	weak := 6.0
	r := rng.New(cfg.Seed)
	in := workload.PlantedNN(r, d, n, q, d/24)
	factory := func(seed uint64) (core.Scheme, *core.Index) {
		idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, C1: weak, C2: weak, Seed: seed})
		return core.NewAlgo1(idx, 2), idx
	}
	t := &Table{
		ID:      "E12",
		Title:   "Boosting and private coins at weak constants (c₁ = 6)",
		Caption: "repetitions multiply probes and table size but not rounds; the private-coin transform leaves all query costs unchanged",
		Headers: []string{"scheme", "success", "probes(mean)", "rounds(max)", "table copies"},
	}
	for _, reps := range []int{1, 2, 3, 5} {
		var s core.Scheme
		if reps == 1 {
			s, _ = factory(cfg.Seed + 10)
		} else {
			s = core.NewBoosted(reps, cfg.Seed+10, factory)
		}
		m := RunScheme(s, in, 2)
		t.AddRow(fmt.Sprintf("boosted r=%d", reps), fmt.Sprintf("%.2f", m.Success.Rate()),
			m.Probes.Mean, m.RoundsWorst, reps)
	}
	pc := core.NewPrivateCoin(3, cfg.Seed+10, cfg.Seed+99, factory)
	m := RunScheme(pc, in, 2)
	t.AddRow("private-coin ℓ=3", fmt.Sprintf("%.2f", m.Success.Rate()),
		m.Probes.Mean, m.RoundsWorst, pc.Copies())
	return []*Table{t}
}

func runE13(cfg Config) []*Table {
	d, n, q := 1024, 200, 25
	if cfg.Quick {
		q = 10
	}
	t := &Table{
		ID:      "E13",
		Title:   "Approximation ratio vs probe cost and answer quality",
		Caption: "levels L = ⌈log_√γ d⌉ shrink with γ; probes follow, approximation ratios loosen but stay within γ",
		Headers: []string{"gamma", "levels", "probes(mean, k=3)", "success", "approx ratio (mean)", "approx ratio (max)"},
	}
	for _, gamma := range []float64{1.5, 2, 4, 9} {
		r := rng.New(cfg.Seed + uint64(gamma*10))
		in := workload.PlantedNN(r, d, n, q, d/24)
		idx := core.BuildIndex(in.DB, d, core.Params{Gamma: gamma, Seed: cfg.Seed + 2})
		m := RunScheme(core.NewAlgo1(idx, 3), in, gamma)
		t.AddRow(gamma, idx.Fam.L+1, m.Probes.Mean, fmt.Sprintf("%.2f", m.Success.Rate()),
			m.ApproxRatio.Mean, m.ApproxRatio.Max)
	}
	return []*Table{t}
}
