package eval

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/lpm"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "LPM upper bounds vs the ANNS-reduction route",
		Claim: "§4: LPM is the problem the lower bound is proved against; its own trie-walk (m probes) and binary-search (log m probes) schemes bracket the reduction through ANNS",
		Run:   runE14,
	})
}

func runE14(cfg Config) []*Table {
	sigma, m, nStrings, q := 4, 3, 40, 40
	d := 16384
	if cfg.Quick {
		d, m, q = 4096, 2, 15
	}
	r := rng.New(cfg.Seed)
	in := &lpm.Instance{Sigma: sigma, M: m}
	for i := 0; i < nStrings; i++ {
		s := make([]int, m)
		for j := range s {
			s[j] = r.Intn(sigma)
		}
		in.DB = append(in.DB, s)
	}
	queries := make([][]int, q)
	for i := range queries {
		x := make([]int, m)
		for j := range x {
			x[j] = r.Intn(sigma)
		}
		queries[i] = x
	}

	t := &Table{
		ID:      "E14",
		Title:   "Three routes to the same LPM answers",
		Caption: fmt.Sprintf("σ=%d m=%d n=%d; 'correct' = answer attains the maximal LCP (trie ground truth)", sigma, m, nStrings),
		Headers: []string{"scheme", "correct", "probes(mean)", "probes(max)", "rounds(max)", "adaptivity"},
	}

	pt := lpm.NewPrefixTable(in, nil)
	type row struct {
		name       string
		query      func(x []int) (int, int, int) // answer, probes, rounds
		adaptivity string
	}
	walk := &lpm.WalkScheme{T: pt}
	bin := &lpm.BinSearchScheme{T: pt}
	rows := []row{
		{"trie walk", func(x []int) (int, int, int) {
			a, st := walk.Query(x)
			return a, st.Probes, st.Rounds
		}, "fully adaptive (1 probe/round)"},
		{"prefix binary search", func(x []int) (int, int, int) {
			a, st := bin.Query(x)
			return a, st.Probes, st.Rounds
		}, "fully adaptive (1 probe/round)"},
	}

	// The reduction route: embed into ANNS, answer with Algorithm 1 (k=2).
	rd, err := lpm.NewReduction(r.Split(9), in, d, 2)
	if err == nil {
		idx := core.BuildIndex(rd.Points, d, core.Params{Gamma: 2, Seed: cfg.Seed + 7})
		a1 := core.NewAlgo1(idx, 2)
		rows = append(rows, row{"via ANNS reduction (Algo1 k=2)", func(x []int) (int, int, int) {
			res := a1.Query(rd.QueryPoint(x))
			return res.Index, res.Stats.Probes, res.Stats.Rounds
		}, "2 rounds (limited)"})
	}

	trie := lpm.NewTrie(in)
	for _, rw := range rows {
		var correct stats.Proportion
		var probes []float64
		maxProbes, maxRounds := 0, 0
		for _, x := range queries {
			ans, p, rd := rw.query(x)
			probes = append(probes, float64(p))
			if p > maxProbes {
				maxProbes = p
			}
			if rd > maxRounds {
				maxRounds = rd
			}
			correct.Trials++
			_, wantLCP := trie.Query(x)
			if ans >= 0 && lpm.LCP(in.DB[ans], x) == wantLCP {
				correct.Successes++
			}
		}
		t.AddRow(rw.name, fmt.Sprintf("%.2f", correct.Rate()),
			stats.Summarize(probes).Mean, maxProbes, maxRounds, rw.adaptivity)
	}
	return []*Table{t}
}
