// Package rng provides seeded, splittable randomness for the reproduction.
//
// Every randomized component in the repository draws from an rng.Source so
// that (a) experiments are reproducible from a single seed, and (b) the
// public-coin presentation of the paper — the table oracles and the
// cell-probing algorithm sharing one random string — is literal: both sides
// are handed the same Source-derived stream.
//
// The generator is PCG-XSH-RR 64/32 implemented locally (stdlib only, and
// math/rand's global state would break splittability).
package rng

import "math/bits"

// Source is a deterministic pseudo-random stream.
type Source struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// New returns a Source seeded from seed with a fixed stream id.
func New(seed uint64) *Source {
	return NewStream(seed, 0xda3e39cb94b95bdb)
}

// NewStream returns a Source with an explicit stream selector, allowing
// many independent streams from one seed.
func NewStream(seed, stream uint64) *Source {
	s := &Source{inc: stream<<1 | 1}
	s.state = 0
	s.Uint32()
	s.state += seed
	s.Uint32()
	return s
}

// Split derives an independent child stream labelled by tag. Splitting is
// deterministic: the same parent seed and tag always yield the same child.
func (s *Source) Split(tag uint64) *Source {
	// Mix the tag through SplitMix64 so adjacent tags decorrelate.
	z := tag + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return NewStream(s.peek()^z, z|1)
}

// peek mixes current state without advancing it, for Split derivation.
func (s *Source) peek() uint64 {
	return s.state * pcgMult
}

// Uint32 returns the next 32 random bits.
func (s *Source) Uint32() uint32 {
	old := s.state
	s.state = old*pcgMult + s.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint(old >> 59)
	return bits.RotateLeft32(xorshifted, -int(rot))
}

// Uint64 returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	return uint64(s.Uint32())<<32 | uint64(s.Uint32())
}

// Intn returns a uniform integer in [0, n). Panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := uint64(n)
	x := s.Uint64()
	hi, lo := bits.Mul64(x, v)
	if lo < v {
		thresh := -v % v
		for lo < thresh {
			x = s.Uint64()
			hi, lo = bits.Mul64(x, v)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm fills a permutation of [0, n) into a fresh slice (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct integers from [0, n) in increasing order.
// Panics if k > n. Uses Floyd's algorithm: O(k) expected time.
func (s *Source) Sample(n, k int) []int {
	if k > n {
		panic("rng: Sample k > n")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := s.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	// Floyd yields an unordered set; sort small k by insertion.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Binomial draws from Binomial(n, p) by inversion for small n·p and by
// direct trials otherwise. Exact distribution is not load-bearing anywhere;
// it is used by workload generators.
func (s *Source) Binomial(n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			k++
		}
	}
	return k
}
