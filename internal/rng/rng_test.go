package rng

import "testing"

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/64 times", same)
	}
}

func TestSplitDeterministicAndIndependent(t *testing.T) {
	a1 := New(7).Split(3)
	a2 := New(7).Split(3)
	b := New(7).Split(4)
	for i := 0; i < 50; i++ {
		x := a1.Uint64()
		if x != a2.Uint64() {
			t.Fatal("same split tag diverged")
		}
		if x == b.Uint64() {
			t.Fatal("adjacent split tags correlated")
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	a.Split(1)
	a.Split(2)
	for i := 0; i < 20; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10) value %d appeared %d/10000 times", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / 10000; mean < 0.47 || mean > 0.53 {
		t.Errorf("Float64 mean %v far from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(13)
	if r.Bernoulli(0) {
		t.Error("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Error("Bernoulli(1) returned false")
	}
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	if hits < 2200 || hits > 2800 {
		t.Errorf("Bernoulli(0.25) hit %d/10000", hits)
	}
}

func TestPerm(t *testing.T) {
	r := New(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm invalid at %d", v)
		}
		seen[v] = true
	}
}

func TestSample(t *testing.T) {
	r := New(19)
	for trial := 0; trial < 50; trial++ {
		s := r.Sample(30, 7)
		if len(s) != 7 {
			t.Fatalf("Sample returned %d items", len(s))
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatalf("Sample not strictly increasing: %v", s)
			}
		}
		for _, v := range s {
			if v < 0 || v >= 30 {
				t.Fatalf("Sample out of range: %v", s)
			}
		}
	}
	full := r.Sample(5, 5)
	if len(full) != 5 {
		t.Errorf("Sample(n, n) returned %v", full)
	}
}

func TestSamplePanicsWhenKTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestBinomialMoments(t *testing.T) {
	r := New(23)
	sum := 0
	for i := 0; i < 2000; i++ {
		sum += r.Binomial(40, 0.3)
	}
	mean := float64(sum) / 2000
	if mean < 11 || mean > 13 {
		t.Errorf("Binomial(40, .3) mean %v, want ≈ 12", mean)
	}
}

func TestUint32Distribution(t *testing.T) {
	r := New(29)
	var ones int
	for i := 0; i < 1000; i++ {
		v := r.Uint32()
		for b := 0; b < 32; b++ {
			if v&(1<<uint(b)) != 0 {
				ones++
			}
		}
	}
	total := 1000 * 32
	if ones < total*45/100 || ones > total*55/100 {
		t.Errorf("bit bias: %d/%d ones", ones, total)
	}
}
