// Package chaos is the deterministic fault-injection harness for the
// distributed tier: an in-process cluster builder that stands up real
// shard servers behind a real router with every replica fronted by a
// fault-injecting proxy, a catalog of adversary strategies, and an
// experiment runner whose whole trial matrix derives from one root seed
// so any failing run replays from its seed alone. See DESIGN.md §8.
package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultMode selects what the proxy does to traffic. Except for
// FaultPartition, /healthz always passes through clean — the gray
// failures the router's probe-vs-request separation exists for.
type FaultMode int

const (
	// FaultNone forwards everything untouched.
	FaultNone FaultMode = iota
	// FaultSlow delays every /v1/* response by Fault.Delay.
	FaultSlow
	// FaultGrayHang holds /v1/* requests open until the client gives up;
	// /healthz stays green.
	FaultGrayHang
	// FaultGray500 answers /v1/* with 500; /healthz stays green.
	FaultGray500
	// FaultCorrupt forwards /v1/* but mangles the 200 body (first byte
	// flipped, last byte dropped) so it never decodes; /healthz stays
	// green.
	FaultCorrupt
	// FaultDrop severs /v1/* connections without writing a response;
	// /healthz stays green.
	FaultDrop
	// FaultPartition severs every connection, /healthz included — the
	// replica looks unreachable.
	FaultPartition
)

func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultSlow:
		return "slow"
	case FaultGrayHang:
		return "gray-hang"
	case FaultGray500:
		return "gray-500"
	case FaultCorrupt:
		return "corrupt"
	case FaultDrop:
		return "drop"
	case FaultPartition:
		return "partition"
	}
	return fmt.Sprintf("FaultMode(%d)", int(m))
}

// Fault is one armed fault: a mode plus its parameters.
type Fault struct {
	Mode  FaultMode
	Delay time.Duration // FaultSlow: added response latency
}

// Proxy is a seeded fault-injecting reverse proxy in front of one
// replica. It forwards HTTP requests to the backend verbatim until a
// fault is armed with SetFault; faults are scoped per the FaultMode
// docs. Injected() counts requests a non-None fault touched.
type Proxy struct {
	backend string // backend base URL
	ln      net.Listener
	srv     *http.Server
	client  *http.Client

	mu    sync.Mutex
	fault Fault

	injected atomic.Int64
}

// NewProxy starts a proxy on a fresh loopback port in front of backend
// (a base URL like "http://127.0.0.1:4123").
func NewProxy(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		backend: strings.TrimSuffix(backend, "/"),
		ln:      ln,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
		}},
	}
	p.srv = &http.Server{Handler: http.HandlerFunc(p.serve)}
	go p.srv.Serve(ln)
	return p, nil
}

// URL returns the proxy's base URL — what the router is pointed at.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// SetFault arms (or, with the zero Fault, clears) the injected fault.
func (p *Proxy) SetFault(f Fault) {
	p.mu.Lock()
	p.fault = f
	p.mu.Unlock()
}

// Injected returns how many requests a non-None fault has touched.
func (p *Proxy) Injected() int64 { return p.injected.Load() }

// Close stops listening and tears down in-flight connections.
func (p *Proxy) Close() error {
	p.srv.Close()
	return nil
}

func (p *Proxy) serve(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	f := p.fault
	p.mu.Unlock()

	if f.Mode == FaultPartition {
		p.injected.Add(1)
		sever(w)
		return
	}
	// Everything except /v1/* (health probes, stats scrapes) passes
	// clean under every other mode: these are gray failures by design.
	if !strings.HasPrefix(r.URL.Path, "/v1/") {
		p.forward(w, r, false)
		return
	}
	switch f.Mode {
	case FaultNone:
		p.forward(w, r, false)
	case FaultSlow:
		p.injected.Add(1)
		select {
		case <-time.After(f.Delay):
		case <-r.Context().Done():
			return
		}
		p.forward(w, r, false)
	case FaultGrayHang:
		p.injected.Add(1)
		<-r.Context().Done() // hold until the client tears the attempt down
	case FaultGray500:
		p.injected.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"chaos: injected 500"}`)
	case FaultCorrupt:
		p.injected.Add(1)
		p.forward(w, r, true)
	case FaultDrop:
		p.injected.Add(1)
		sever(w)
	}
}

// forward relays the request to the backend, optionally corrupting a
// 200 body. Corruption flips the first byte and drops the last, which
// deterministically breaks JSON decoding — the point is a frame the
// receiver must detect, not a subtly plausible one.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, corrupt bool) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.backend+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		sever(w) // backend unreachable: look like a dead replica, not a 502
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		sever(w)
		return
	}
	if corrupt && resp.StatusCode == http.StatusOK && len(body) > 1 {
		body[0] ^= 0xFF
		body = body[:len(body)-1]
	}
	for k, vs := range resp.Header {
		if k == "Content-Length" {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// sever closes the client connection without an HTTP response, so the
// client sees a transport error (connection reset / EOF).
func sever(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("chaos: response writer is not hijackable")
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0) // RST, not FIN: an abrupt sever, like a kill -9
	}
	conn.Close()
}
