package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/segment"
	"repro/internal/server"
	"repro/internal/workload"
)

// The adversary catalog (DESIGN.md §8.2). Each strategy faults exactly
// one replica (or, for wal-tear, one mutable primary); with every shape
// required to keep >= 2 replicas per shard, the cluster always holds a
// clean copy of every shard, so the zero-wrong-answer invariant is the
// router's to keep, not the adversary's to grant.
const (
	StrategySlow        = "slow"         // seeded added latency; hedges should win
	StrategyGrayHang    = "gray-hang"    // healthz green, queries hang
	StrategyGray500     = "gray-500"     // healthz green, queries 500
	StrategyCorrupt     = "corrupt"      // healthz green, 200 bodies mangled
	StrategyDrop        = "drop"         // healthz green, query connections severed
	StrategyPartition   = "partition"    // everything severed, healed mid-trial
	StrategyWALTear     = "wal-tear"     // torn/corrupt WAL tail across a kill -9
	StrategyPrimaryKill = "primary-kill" // write primary dies mid-stream; promotion must cover
)

// Strategies returns the full catalog, in canonical order.
func Strategies() []string {
	return []string{
		StrategySlow, StrategyGrayHang, StrategyGray500,
		StrategyCorrupt, StrategyDrop, StrategyPartition, StrategyWALTear,
		StrategyPrimaryKill,
	}
}

type strategy interface {
	name() string
	run(t *trial) error
}

func strategyByName(name string) (strategy, error) {
	switch name {
	case StrategySlow:
		return proxyStrategy{label: name, mode: FaultSlow}, nil
	case StrategyGrayHang:
		return proxyStrategy{label: name, mode: FaultGrayHang, expectEvict: true}, nil
	case StrategyGray500:
		return proxyStrategy{label: name, mode: FaultGray500, expectEvict: true}, nil
	case StrategyCorrupt:
		return proxyStrategy{label: name, mode: FaultCorrupt, expectEvict: true}, nil
	case StrategyDrop:
		return proxyStrategy{label: name, mode: FaultDrop, expectEvict: true}, nil
	case StrategyPartition:
		return proxyStrategy{label: name, mode: FaultPartition, expectEvict: true, heal: true}, nil
	case StrategyWALTear:
		return walTearStrategy{}, nil
	case StrategyPrimaryKill:
		return primaryKillStrategy{}, nil
	}
	return nil, fmt.Errorf("chaos: unknown strategy %q (catalog: %v)", name, Strategies())
}

// trial is one running trial's state: its seed-derived randomness and
// the result halves the strategy fills in.
type trial struct {
	cfg      ExperimentConfig
	cluster  *Cluster
	shape    Shape
	seed     uint64
	r        *rng.Source
	inv      TrialInvariants
	meas     TrialMeasured
	client   *http.Client
	refURL   string
	routeURL string
}

func runTrial(cfg ExperimentConfig, cluster *Cluster, shape Shape, s strategy, trialIdx int, seed uint64) (*ExperimentResult, error) {
	t := &trial{
		cfg:     cfg,
		cluster: cluster,
		shape:   shape,
		seed:    seed,
		r:       rng.New(seed),
		client:  &http.Client{},
		inv: TrialInvariants{
			Strategy:      s.name(),
			Shape:         shape.String(),
			Trial:         trialIdx,
			Seed:          seed,
			TargetShard:   -1,
			TargetReplica: -1,
			Queries:       cfg.Queries,
		},
		meas: TrialMeasured{DetectionLatencyMS: -1, SpanDetectionLatencyMS: -1, ReadmissionMS: -1},
	}
	start := time.Now()
	err := s.run(t)
	t.meas.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{Invariants: t.inv, Measured: t.meas}, nil
}

// ---- shared compare fold ----

// postJSON posts body and returns status plus the raw answer bytes.
func (t *trial) postJSON(url string, body any) (int, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := t.client.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// compareQuery issues one query to both the faulted deployment and the
// unfaulted reference and requires byte-identical 200 answers — the
// same fold `annsload -compare` applies. A transport error reaching
// either side is a harness failure (returned), not a wrong answer; a
// non-200 or differing body is the invariant violation being hunted.
// counted selects whether this comparison is one of the trial's planned
// Queries (detection-pressure queries are compared but not counted, so
// the invariant half of the result stays timing-independent).
func (t *trial) compareQuery(aURL, bURL string, q workload.Query, opIdx int, counted bool) error {
	req := server.QueryRequest{Point: server.EncodePoint(q.X)}
	sa, rawA, err := t.postJSON(aURL+"/v1/query", req)
	if err != nil {
		return fmt.Errorf("querying faulted deployment: %w", err)
	}
	sb, rawB, err := t.postJSON(bURL+"/v1/query", req)
	if err != nil {
		return fmt.Errorf("querying reference: %w", err)
	}
	if sa == http.StatusOK && sb == http.StatusOK && bytes.Equal(rawA, rawB) {
		return nil
	}
	t.inv.WrongAnswers++
	if t.inv.FirstDivergence == "" {
		t.inv.FirstDivergence = fmt.Sprintf(
			"op %d (counted=%v): point=%s: faulted answered %d %s, reference %d %s",
			opIdx, counted, req.Point, sa, bytes.TrimSpace(rawA), sb, bytes.TrimSpace(rawB))
	}
	return nil
}

// ---- replica state recorder ----

type stateEvent struct {
	at    time.Time
	shard int
	url   string
	state string
}

type stateRecorder struct {
	mu     sync.Mutex
	events []stateEvent
}

func (rec *stateRecorder) hook(shard int, url, state, reason string) {
	rec.mu.Lock()
	rec.events = append(rec.events, stateEvent{at: time.Now(), shard: shard, url: url, state: state})
	rec.mu.Unlock()
}

// firstTransition returns the first recorded transition of url into
// state at or after since.
func (rec *stateRecorder) firstTransition(url, state string, since time.Time) (time.Time, bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, e := range rec.events {
		if e.url == url && e.state == state && !e.at.Before(since) {
			return e.at, true
		}
	}
	return time.Time{}, false
}

// firstShardState returns the first recorded transition of any replica
// of shard into state at or after since (promotion events carry the
// promoted survivor's URL, which the caller doesn't know in advance).
func (rec *stateRecorder) firstShardState(shard int, state string, since time.Time) (time.Time, bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, e := range rec.events {
		if e.shard == shard && e.state == state && !e.at.Before(since) {
			return e.at, true
		}
	}
	return time.Time{}, false
}

// counts tallies evictions, evictions of replicas other than targetURL
// (false evictions), and readmissions across the whole trial.
func (rec *stateRecorder) counts(targetURL string) (evictions, falseEvictions, readmissions int64) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, e := range rec.events {
		switch e.state {
		case router.StateEvicted:
			evictions++
			if e.url != targetURL {
				falseEvictions++
			}
		case router.StateHealthy:
			readmissions++
		}
	}
	return
}

// ---- trace recorder ----

// traceRecorder collects every finished trace the trial's router emits
// (via obs.TracerConfig.OnTrace). The span stream is a second,
// independent witness to the incident: detection latency must be
// re-derivable from the emitted spans alone, without the health-state
// hook.
type traceRecorder struct {
	mu   sync.Mutex
	recs []obs.TraceRecord
}

func (rec *traceRecorder) hook(r obs.TraceRecord) {
	rec.mu.Lock()
	rec.recs = append(rec.recs, r)
	rec.mu.Unlock()
}

// firstEvictedSpan returns the earliest instant at or after since that
// any span recorded eviction pressure against url — an RPC attempt
// whose outcome carries the "-evicted" suffix, meaning that failure
// crossed the router's eviction threshold. The instant is the trace
// root plus the span's start offset plus its duration: when the failed
// attempt finished and the eviction landed.
func (rec *traceRecorder) firstEvictedSpan(url string, since time.Time) (time.Time, bool) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var best time.Time
	found := false
	for _, r := range rec.recs {
		for _, s := range r.Spans {
			if s.Replica != url || !strings.HasSuffix(s.Outcome, "-evicted") {
				continue
			}
			at := r.Start.Add(time.Duration(s.StartUS+s.DurUS) * time.Microsecond)
			if at.Before(since) {
				continue
			}
			if !found || at.Before(best) {
				best, found = at, true
			}
		}
	}
	return best, found
}

// ---- proxy-fault strategies ----

// proxyStrategy is the shared flow for every fault injected at a
// replica's proxy: warm up clean, arm the fault on a seeded target,
// compare the planned queries against the reference, wait for the
// router to detect (when the fault warrants eviction), optionally heal
// and wait for readmission, then collect the health-state accounting.
type proxyStrategy struct {
	label       string
	mode        FaultMode
	expectEvict bool
	heal        bool
}

func (ps proxyStrategy) name() string { return ps.label }

func (ps proxyStrategy) run(t *trial) error {
	c := t.cluster
	rec := &stateRecorder{}
	traces := &traceRecorder{}
	rt, err := router.New(c.RouterConfig(rec.hook, traces.hook))
	if err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: rt.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	t.routeURL = "http://" + ln.Addr().String()
	t.refURL = c.RefURL

	queryAt := func(i int) workload.Query { return c.Inst.Queries[i%len(c.Inst.Queries)] }
	for i := 0; i < t.cfg.Warmup; i++ {
		if err := t.compareQuery(t.routeURL, t.refURL, queryAt(i), i, false); err != nil {
			return err
		}
	}

	ts, tr := t.r.Intn(t.shape.Shards), t.r.Intn(t.shape.Replicas)
	t.inv.TargetShard, t.inv.TargetReplica = ts, tr
	target := c.Proxies[ts][tr]
	injected0 := target.Injected()
	fault := Fault{Mode: ps.mode}
	if ps.mode == FaultSlow {
		fault.Delay = time.Duration(40+t.r.Intn(80)) * time.Millisecond
	}
	armedAt := time.Now()
	target.SetFault(fault)

	for i := 0; i < t.cfg.Queries; i++ {
		if err := t.compareQuery(t.routeURL, t.refURL, queryAt(i), i, true); err != nil {
			return err
		}
	}

	// Detection: with the fault armed, keep comparison pressure on until
	// the router evicts the target (or a generous deadline passes — a
	// missed detection shows up as -1, not a harness error).
	if ps.expectEvict {
		deadline := time.Now().Add(5 * time.Second)
		for i := 0; ; i++ {
			if at, ok := rec.firstTransition(target.URL(), router.StateEvicted, armedAt); ok {
				t.meas.DetectionLatencyMS = float64(at.Sub(armedAt).Microseconds()) / 1000
				break
			}
			if time.Now().After(deadline) {
				break
			}
			if err := t.compareQuery(t.routeURL, t.refURL, queryAt(i), t.cfg.Queries+i, false); err != nil {
				return err
			}
			time.Sleep(5 * time.Millisecond)
		}
	} else if at, ok := rec.firstTransition(target.URL(), router.StateEvicted, armedAt); ok {
		// Not required (e.g. slow), but the hedge-loss pressure path may
		// legitimately evict a consistently slow replica — record it.
		t.meas.DetectionLatencyMS = float64(at.Sub(armedAt).Microseconds()) / 1000
	}

	if ps.heal {
		healedAt := time.Now()
		target.SetFault(Fault{})
		deadline := healedAt.Add(5 * time.Second)
		for {
			if at, ok := rec.firstTransition(target.URL(), router.StateHealthy, healedAt); ok {
				t.meas.ReadmissionMS = float64(at.Sub(healedAt).Microseconds()) / 1000
				break
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		// Post-heal, the whole replica set serves again: answers must
		// still fold byte-identically.
		for i := 0; i < t.cfg.Warmup; i++ {
			if err := t.compareQuery(t.routeURL, t.refURL, queryAt(i), 2*t.cfg.Queries+i, false); err != nil {
				return err
			}
		}
	}

	st := rt.Stats()
	for _, ss := range st.ShardStats {
		t.meas.Hedges += ss.Hedges
		t.meas.HedgeWins += ss.HedgeWins
		t.meas.Failovers += ss.Failovers
	}
	t.meas.Evictions, t.meas.FalseEvictions, t.meas.Readmissions = rec.counts(target.URL())
	t.meas.FaultsInjected = target.Injected() - injected0
	// The same incident, attributed from the span stream alone: the
	// first "*-evicted" RPC span against the target is when the router
	// condemned it, no health-state hook consulted.
	if at, ok := traces.firstEvictedSpan(target.URL(), armedAt); ok {
		t.meas.SpanDetectionLatencyMS = float64(at.Sub(armedAt).Microseconds()) / 1000
	}
	return nil
}

// ---- WAL-tear strategy ----

// walTearStrategy is the durability adversary: a mutable primary
// acknowledges K synchronous writes over the wire, dies (kill -9 —
// every acked record is already fsynced), its WAL tail gains the crash
// artifact of an in-flight unacked append (torn or corrupt frame, per
// the seed), and the reboot must replay exactly the K acked writes and
// answer queries byte-identically to a reference that applied the same
// K writes directly. Lost acked writes and divergent answers are the
// gated invariants.
type walTearStrategy struct{}

func (walTearStrategy) name() string { return StrategyWALTear }

func (walTearStrategy) run(t *trial) error {
	dir, err := os.MkdirTemp("", "chaos-waltear-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	d := t.cfg.Dim
	spec := workload.Spec{Kind: "planted", D: d, N: t.cfg.N, Q: t.cfg.Queries, Dist: d / 10, Seed: t.seed}
	inst, err := spec.Generate()
	if err != nil {
		return err
	}
	opts := anns.Options{Dimension: d, Rounds: 2, Seed: t.seed}
	buildBase := func() (*anns.Index, error) {
		pts := make([]anns.Point, len(inst.DB))
		copy(pts, inst.DB)
		return anns.Build(pts, opts)
	}
	walPath := filepath.Join(dir, "primary.wal")
	mcfg := anns.MutableConfig{MemtableCap: 4, Synchronous: true, WALPath: walPath, WALSyncEvery: 1}

	base, err := buildBase()
	if err != nil {
		return err
	}
	mut, err := anns.NewMutable(base, mcfg)
	if err != nil {
		return err
	}
	primary, err := serveIndex(mut, d, t.cfg.CacheEntries)
	if err != nil {
		mut.Close()
		return err
	}

	// K acked writes over the wire: each 200 carries the durability
	// promise the reboot is held to.
	k := 6 + t.r.Intn(6)
	t.inv.AckedWrites = k
	wr := rng.NewStream(t.seed, 0x1a11)
	newPts := make([]anns.Point, 0, k)
	ids := make([]uint64, 0, k)
	for i := 0; i < k; i++ {
		p := anns.Point(hamming.Random(wr, d))
		status, raw, err := t.postJSON(primary.url()+"/v1/insert", server.InsertRequest{Point: server.EncodePoint(p)})
		if err != nil {
			primary.close()
			mut.Close()
			return err
		}
		if status != http.StatusOK {
			primary.close()
			mut.Close()
			return fmt.Errorf("insert %d rejected: %d %s", i, status, raw)
		}
		var ack server.InsertResponse
		if err := json.Unmarshal(raw, &ack); err != nil {
			primary.close()
			mut.Close()
			return err
		}
		newPts = append(newPts, p)
		ids = append(ids, ack.ID)
	}

	// kill -9: tear the process down and append the crash artifact an
	// interrupted in-flight append would have left.
	primary.close()
	if err := mut.Close(); err != nil {
		return err
	}
	tear := segment.AppendTornFrame
	if t.r.Intn(2) == 1 {
		tear = segment.AppendCorruptFrame
	}
	if err := tear(walPath); err != nil {
		return err
	}

	// Reboot: bit-identical base rebuild + WAL replay.
	base2, err := buildBase()
	if err != nil {
		return err
	}
	mut2, err := anns.NewMutable(base2, mcfg)
	if err != nil {
		return fmt.Errorf("reboot after injected tail: %w", err)
	}
	defer mut2.Close()
	if replayed := mut2.MutableStats().WALReplayed; replayed < k {
		t.inv.AckedWritesLost = k - replayed
	}
	rebooted, err := serveIndex(mut2, d, t.cfg.CacheEntries)
	if err != nil {
		return err
	}
	defer rebooted.close()

	// Reference: the same acked ops applied directly, no WAL, no crash.
	// Deterministic ID assignment means it must agree with the acked IDs.
	base3, err := buildBase()
	if err != nil {
		return err
	}
	ref, err := anns.NewMutable(base3, anns.MutableConfig{MemtableCap: 4, Synchronous: true})
	if err != nil {
		return err
	}
	defer ref.Close()
	for i, p := range newPts {
		id, err := ref.Insert(p)
		if err != nil {
			return err
		}
		if id != ids[i] {
			return fmt.Errorf("reference assigned id %d to insert %d, primary acked %d (nondeterministic ids break the compare fold)", id, i, ids[i])
		}
	}
	refSrv, err := serveIndex(ref, d, 0)
	if err != nil {
		return err
	}
	defer refSrv.close()

	// Compare: the planned queries, then every acked point (whose answer
	// is its own ID — the sharpest probe for a silently dropped write).
	for i := 0; i < t.cfg.Queries; i++ {
		q := inst.Queries[i%len(inst.Queries)]
		if err := t.compareQuery(rebooted.url(), refSrv.url(), q, i, true); err != nil {
			return err
		}
	}
	for i, p := range newPts {
		q := workload.Query{X: p}
		if err := t.compareQuery(rebooted.url(), refSrv.url(), q, t.cfg.Queries+i, false); err != nil {
			return err
		}
	}
	return nil
}
