package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
)

// Seed derivation (DESIGN.md §8.3): every random decision in an
// experiment — corpus contents, fault targets, injected delays, write
// counts — derives from the one root seed through a labeled splitmix64
// chain, so a failing trial replays from (root seed, shape, strategy,
// trial index) alone, and the derivation is stable under reordering or
// subsetting the strategy and shape lists (labels, not list positions,
// feed the chain).

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// deriveSeed folds the labels into root through splitmix64.
func deriveSeed(root uint64, labels ...string) uint64 {
	h := root
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h = splitmix64(h ^ uint64(l[i]))
		}
		h = splitmix64(h ^ 0x5eed1abe1) // label separator: ("ab","c") ≠ ("a","bc")
	}
	return h
}

// ExperimentConfig drives one experiment: the full cross product of
// Shapes × Strategies × Trials, all derived from RootSeed.
type ExperimentConfig struct {
	// RootSeed is the experiment's only entropy source.
	RootSeed uint64 `json:"root_seed"`
	// Trials is the per-(shape, strategy) trial count. Default 3.
	Trials int `json:"trials"`
	// Strategies names the adversaries to run (see Strategies() for the
	// catalog). Default: the full catalog.
	Strategies []string `json:"strategies"`
	// Shapes lists the cluster topologies. Default: 2x2.
	Shapes []Shape `json:"shapes"`
	// Dim/N are the corpus dimension and size. Defaults 64 / 48.
	Dim int `json:"dim"`
	N   int `json:"n"`
	// Queries is the planned compared-query count per trial. Default 24.
	Queries int `json:"queries"`
	// Warmup is the pre-fault compared-query count per trial (fills the
	// router's latency window so hedge delays are warm). Default 8.
	Warmup int `json:"warmup"`
	// MaxFalseEvictionRate is the gate threshold on false evictions per
	// trial. Default 0.5 — lenient, because a saturated CI runner can
	// legitimately starve a healthy replica past the eviction threshold;
	// the hard invariants are wrong answers and acked-write loss.
	MaxFalseEvictionRate float64 `json:"max_false_eviction_rate"`
	// CacheEntries enables the epoch-invalidated query-result cache on
	// every faulted-side server (replicas, wal-tear primaries); 0 keeps
	// it off. The reference oracle always runs uncached, so the
	// byte-identity invariant also proves no fault sequence can make the
	// cache serve a stale or wrong reply.
	CacheEntries int `json:"cache_entries"`
}

func (c ExperimentConfig) withDefaults() ExperimentConfig {
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if len(c.Strategies) == 0 {
		c.Strategies = Strategies()
	}
	if len(c.Shapes) == 0 {
		c.Shapes = []Shape{{Shards: 2, Replicas: 2}}
	}
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.N == 0 {
		c.N = 48
	}
	if c.Queries == 0 {
		c.Queries = 24
	}
	if c.Warmup == 0 {
		c.Warmup = 8
	}
	if c.MaxFalseEvictionRate == 0 {
		c.MaxFalseEvictionRate = 0.5
	}
	return c
}

// TrialInvariants is the deterministic half of a trial's result: every
// field is a pure function of the trial seed (plus the correctness
// invariants, which must be zero). Re-running an experiment with the
// same root seed must reproduce the invariants byte-identically —
// that's the replayability acceptance check — while wall-clock-shaped
// observations live in TrialMeasured.
type TrialInvariants struct {
	Strategy string `json:"strategy"`
	Shape    string `json:"shape"`
	Trial    int    `json:"trial"`
	Seed     uint64 `json:"seed"`
	// TargetShard/TargetReplica locate the faulted replica (-1/-1 for
	// strategies without a cluster target, e.g. wal-tear).
	TargetShard   int `json:"target_shard"`
	TargetReplica int `json:"target_replica"`
	// Queries is the planned compared-query count (pressure queries
	// issued while waiting for detection are extra and not counted).
	Queries int `json:"queries"`
	// WrongAnswers counts compared queries where the faulted cluster's
	// answer differed byte-for-byte from the unfaulted reference. The
	// invariant is zero; FirstDivergence carries the first counterexample.
	WrongAnswers    int    `json:"wrong_answers"`
	FirstDivergence string `json:"first_divergence,omitempty"`
	// AckedWrites is how many writes were acknowledged before the
	// injected crash; AckedWritesLost how many of those the reboot
	// failed to replay. The invariant is zero lost.
	AckedWrites     int `json:"acked_writes"`
	AckedWritesLost int `json:"acked_writes_lost"`
}

// TrialMeasured is the wall-clock half of a trial's result: real
// latencies and scheduler-dependent counters. Excluded from the
// replayability check.
type TrialMeasured struct {
	// DetectionLatencyMS is fault-arm → target-eviction (-1 when the
	// strategy does not expect an eviction or none was observed).
	DetectionLatencyMS float64 `json:"detection_latency_ms"`
	// SpanDetectionLatencyMS re-derives the same incident from the
	// emitted trace spans alone: fault-arm → the first RPC span against
	// the target whose outcome carries the "-evicted" suffix (-1 when no
	// such span was emitted). Agreement with DetectionLatencyMS within
	// scheduler noise is the observability acceptance check.
	SpanDetectionLatencyMS float64 `json:"span_detection_latency_ms"`
	// ReadmissionMS is heal → target-readmission (-1 when not waited on).
	ReadmissionMS  float64 `json:"readmission_ms"`
	Evictions      int64   `json:"evictions"`
	FalseEvictions int64   `json:"false_evictions"` // evictions of unfaulted replicas
	Readmissions   int64   `json:"readmissions"`
	Hedges         int64   `json:"hedges"`
	HedgeWins      int64   `json:"hedge_wins"`
	Failovers      int64   `json:"failovers"`
	// Promotions counts write-primary promotions the router performed
	// (primary-kill trials expect exactly one).
	Promotions int64 `json:"promotions,omitempty"`
	// FaultsInjected is how many requests the armed fault touched.
	FaultsInjected int64   `json:"faults_injected"`
	DurationMS     float64 `json:"duration_ms"`
}

// ExperimentResult is one trial's full record.
type ExperimentResult struct {
	Invariants TrialInvariants `json:"invariants"`
	Measured   TrialMeasured   `json:"measured"`
}

// Summary is the matrix rollup the gate reads.
type Summary struct {
	Trials            int     `json:"trials"`
	WrongAnswers      int     `json:"wrong_answers"`
	AckedWrites       int     `json:"acked_writes"`
	AckedWritesLost   int     `json:"acked_writes_lost"`
	Evictions         int64   `json:"evictions"`
	FalseEvictions    int64   `json:"false_evictions"`
	FalseEvictionRate float64 `json:"false_eviction_rate"` // false evictions per trial
	Readmissions      int64   `json:"readmissions"`
	Promotions        int64   `json:"promotions"`
	Hedges            int64   `json:"hedges"`
	HedgeWins         int64   `json:"hedge_wins"`
	HedgeWinRate      float64 `json:"hedge_win_rate"`
	// MeanDetectionMS averages over trials that observed an eviction.
	MeanDetectionMS float64 `json:"mean_detection_ms"`
}

// Matrix is a whole experiment's output — what cmd/annschaos writes as
// CHAOS_RESULTS.json.
type Matrix struct {
	RootSeed uint64             `json:"root_seed"`
	Config   ExperimentConfig   `json:"config"`
	Results  []ExperimentResult `json:"results"`
	Summary  Summary            `json:"summary"`
}

// InvariantsJSON is the canonical byte image of the matrix's
// deterministic half: re-running with the same root seed must
// reproduce these bytes exactly.
func (m *Matrix) InvariantsJSON() []byte {
	inv := make([]TrialInvariants, len(m.Results))
	for i, r := range m.Results {
		inv[i] = r.Invariants
	}
	out, err := json.MarshalIndent(struct {
		RootSeed   uint64            `json:"root_seed"`
		Invariants []TrialInvariants `json:"invariants"`
	}{m.RootSeed, inv}, "", "  ")
	if err != nil {
		panic(err) // static schema: cannot fail
	}
	return out
}

// Gate returns the violated invariants (empty = pass): any wrong
// answer, any acked-write loss, or a false-eviction rate above the
// configured threshold.
func (m *Matrix) Gate() []string {
	var v []string
	if m.Summary.WrongAnswers > 0 {
		v = append(v, fmt.Sprintf("wrong answers: %d (invariant: 0)", m.Summary.WrongAnswers))
	}
	if m.Summary.AckedWritesLost > 0 {
		v = append(v, fmt.Sprintf("acked writes lost: %d of %d (invariant: 0)",
			m.Summary.AckedWritesLost, m.Summary.AckedWrites))
	}
	if max := m.Config.MaxFalseEvictionRate; m.Summary.FalseEvictionRate > max {
		v = append(v, fmt.Sprintf("false-eviction rate %.3f exceeds threshold %.3f",
			m.Summary.FalseEvictionRate, max))
	}
	return v
}

// Run executes the experiment: for each shape it builds one shared
// cluster, then runs every strategy × trial against it (wal-tear
// builds its own per-trial mutable fixture instead). logf, when
// non-nil, receives progress lines.
func Run(cfg ExperimentConfig, logf func(format string, args ...any)) (*Matrix, error) {
	cfg = cfg.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	strats := make([]strategy, len(cfg.Strategies))
	for i, name := range cfg.Strategies {
		s, err := strategyByName(name)
		if err != nil {
			return nil, err
		}
		strats[i] = s
	}
	m := &Matrix{RootSeed: cfg.RootSeed, Config: cfg}
	for _, shape := range cfg.Shapes {
		dir, err := os.MkdirTemp("", "chaos-cluster-*")
		if err != nil {
			return nil, err
		}
		clusterSeed := deriveSeed(cfg.RootSeed, "cluster", shape.String())
		cluster, err := BuildCluster(dir, shape, clusterSeed, cfg.Dim, cfg.N, cfg.Queries, cfg.CacheEntries)
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("chaos: building %s cluster: %w", shape, err)
		}
		logf("cluster %s up: n=%d, %d backends + reference", shape, cfg.N, shape.Shards*shape.Replicas)
		for _, s := range strats {
			for trial := 0; trial < cfg.Trials; trial++ {
				seed := deriveSeed(cfg.RootSeed, shape.String(), s.name(), strconv.Itoa(trial))
				res, err := runTrial(cfg, cluster, shape, s, trial, seed)
				cluster.ClearFaults()
				if err != nil {
					cluster.Close()
					os.RemoveAll(dir)
					return nil, fmt.Errorf("chaos: %s/%s trial %d (seed %d): %w",
						shape, s.name(), trial, seed, err)
				}
				m.Results = append(m.Results, *res)
				logf("  %-10s %s trial %d: wrong=%d lost=%d detect=%.1fms evict=%d false=%d hedgewins=%d/%d (%.0fms)",
					s.name(), shape, trial,
					res.Invariants.WrongAnswers, res.Invariants.AckedWritesLost,
					res.Measured.DetectionLatencyMS, res.Measured.Evictions,
					res.Measured.FalseEvictions, res.Measured.HedgeWins, res.Measured.Hedges,
					res.Measured.DurationMS)
			}
		}
		cluster.Close()
		os.RemoveAll(dir)
	}
	m.Summary = summarize(m)
	return m, nil
}

func summarize(m *Matrix) Summary {
	s := Summary{Trials: len(m.Results)}
	detected := 0
	var detectSum float64
	for _, r := range m.Results {
		s.WrongAnswers += r.Invariants.WrongAnswers
		s.AckedWrites += r.Invariants.AckedWrites
		s.AckedWritesLost += r.Invariants.AckedWritesLost
		s.Evictions += r.Measured.Evictions
		s.FalseEvictions += r.Measured.FalseEvictions
		s.Readmissions += r.Measured.Readmissions
		s.Promotions += r.Measured.Promotions
		s.Hedges += r.Measured.Hedges
		s.HedgeWins += r.Measured.HedgeWins
		if r.Measured.DetectionLatencyMS >= 0 {
			detected++
			detectSum += r.Measured.DetectionLatencyMS
		}
	}
	if s.Trials > 0 {
		s.FalseEvictionRate = float64(s.FalseEvictions) / float64(s.Trials)
	}
	if s.Hedges > 0 {
		s.HedgeWinRate = float64(s.HedgeWins) / float64(s.Hedges)
	}
	if detected > 0 {
		s.MeanDetectionMS = detectSum / float64(detected)
	}
	return s
}
