package chaos

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/workload"
)

// primaryKillStrategy is the replicated-write adversary (DESIGN.md
// §11): a routed S×R *mutable* cluster accepts acked writes streaming
// through the router, then the target shard's write primary dies
// mid-stream — a real server teardown, connections refuse from then on
// — and the router must promote the max-offset survivor and keep the
// stream going. The gated invariants: zero acked writes lost (measured
// at the engines — every surviving shard replica set holds every acked
// mutation routed to it) and every post-kill answer byte-identical to a
// single MutableSharded process fed exactly the acked stream.
//
// Unlike the query-path strategies, each trial builds its own cluster:
// mutable state cannot be shared across trials, and the fault is a
// process death, not a proxy mode. Writes run under primary durability
// so the post-kill stream exercises promotion (quorum with the common
// R=2 would leave the degraded shard write-unavailable by design —
// that trade is OPERATIONS.md material, not a chaos invariant).
type primaryKillStrategy struct{}

func (primaryKillStrategy) name() string { return StrategyPrimaryKill }

func (primaryKillStrategy) run(t *trial) error {
	dir, err := os.MkdirTemp("", "chaos-primarykill-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	d := t.cfg.Dim
	S, R := t.shape.Shards, t.shape.Replicas
	spec := workload.Spec{Kind: "planted", D: d, N: t.cfg.N, Q: t.cfg.Queries, Dist: d / 10, Seed: t.seed}
	inst, err := spec.Generate()
	if err != nil {
		return err
	}
	opts := anns.Options{Dimension: d, Rounds: 2, Seed: t.seed}
	mcfg := anns.MutableConfig{MemtableCap: 4, Synchronous: true, WALSyncEvery: 1}

	// Replica r of shard s: an independent build of the same sharded
	// index (same spec ⇒ same corpus) over its own WAL — the layout
	// `annsd -mutable -base-snapshot -wal` serves in production.
	urls := make([][]string, S)
	backends := make([][]*backendServer, S)
	mxs := make([][]*anns.MutableIndex, S)
	seeds := make([]uint64, S)
	for s := 0; s < S; s++ {
		urls[s] = make([]string, R)
		backends[s] = make([]*backendServer, R)
		mxs[s] = make([]*anns.MutableIndex, R)
	}
	defer func() {
		for s := range backends {
			for r := range backends[s] {
				if backends[s][r] != nil {
					backends[s][r].close()
				}
				if mxs[s][r] != nil {
					mxs[s][r].Close()
				}
			}
		}
	}()
	for r := 0; r < R; r++ {
		pts := make([]anns.Point, len(inst.DB))
		copy(pts, inst.DB)
		sx, err := anns.BuildSharded(pts, S, opts)
		if err != nil {
			return err
		}
		for s := 0; s < S; s++ {
			c := mcfg
			c.WALPath = filepath.Join(dir, fmt.Sprintf("wal-%d-%d", s, r))
			mx, err := anns.NewMutable(sx.Shard(s), c)
			if err != nil {
				return err
			}
			mxs[s][r] = mx
			b, err := serveIndex(mx, d, t.cfg.CacheEntries)
			if err != nil {
				return err
			}
			backends[s][r] = b
			urls[s][r] = b.url()
			if r == 0 {
				seeds[s] = sx.Shard(s).Options().Seed
			}
		}
	}

	// Reference: one MutableSharded process fed exactly the acked stream.
	pts := make([]anns.Point, len(inst.DB))
	copy(pts, inst.DB)
	ref, err := anns.BuildMutableSharded(pts, S, opts, anns.MutableConfig{MemtableCap: 4, Synchronous: true})
	if err != nil {
		return err
	}
	defer ref.Close()
	refSrv, err := serveIndex(ref, d, 0)
	if err != nil {
		return err
	}
	defer refSrv.close()
	t.refURL = refSrv.url()

	rec := &stateRecorder{}
	rt, err := router.New(router.Config{
		Dimension:      d,
		N:              len(inst.DB),
		Replicas:       urls,
		ShardSeeds:     seeds,
		Durability:     router.DurabilityPrimary,
		DefaultTimeout: 5 * time.Second,
		RequestTimeout: 300 * time.Millisecond,
		ProbeInterval:  25 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		EvictAfter:     2,
		BackoffBase:    50 * time.Millisecond,
		BackoffMax:     500 * time.Millisecond,
		HedgeCold:      10 * time.Millisecond,
		HedgeMin:       time.Millisecond,
		OnReplicaState: rec.hook,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: rt.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	t.routeURL = "http://" + ln.Addr().String()

	queryAt := func(i int) workload.Query { return inst.Queries[i%len(inst.Queries)] }
	for i := 0; i < t.cfg.Warmup; i++ {
		if err := t.compareQuery(t.routeURL, t.refURL, queryAt(i), i, false); err != nil {
			return err
		}
	}

	// ackOne pushes one insert until the router acks it. The retry is
	// safe *in this trial* because the only injected failure is a
	// connection-refused primary — nothing applied, the router never
	// auto-retries, and the global counter hasn't advanced. Every 200 is
	// mirrored into the reference, which must assign the same global ID.
	wr := rng.NewStream(t.seed, 0x9111)
	ackedPerShard := make([]int, S)
	var ackedPts []anns.Point
	ackOne := func() error {
		p := anns.Point(hamming.Random(wr, d))
		deadline := time.Now().Add(5 * time.Second)
		for {
			status, raw, err := t.postJSON(t.routeURL+"/v1/insert", server.InsertRequest{Point: server.EncodePoint(p)})
			if err != nil {
				return err
			}
			if status == http.StatusOK {
				var ack server.InsertResponse
				if err := json.Unmarshal(raw, &ack); err != nil {
					return err
				}
				id, err := ref.Insert(p)
				if err != nil {
					return err
				}
				if id != ack.ID {
					return fmt.Errorf("reference assigned id %d, router acked %d (nondeterministic ids break the compare fold)", id, ack.ID)
				}
				ackedPerShard[int(ack.ID%uint64(S))]++
				ackedPts = append(ackedPts, p)
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("insert never acked: last status %d %s", status, raw)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	k := S * (3 + t.r.Intn(3))
	for i := 0; i < k; i++ {
		if err := ackOne(); err != nil {
			return err
		}
	}

	// Kill the target shard's primary. Everything acked so far is on the
	// survivors too — the relay runs before the ack — so nothing may be
	// lost. The next shard write 502s (never blindly retried by the
	// router), the client retries, and the retry rides the promotion.
	ts := t.r.Intn(S)
	t.inv.TargetShard, t.inv.TargetReplica = ts, 0
	killedURL := urls[ts][0]
	killAt := time.Now()
	backends[ts][0].close()
	backends[ts][0] = nil

	k2 := S * (3 + t.r.Intn(3))
	for i := 0; i < k2; i++ {
		if err := ackOne(); err != nil {
			return err
		}
	}
	t.inv.AckedWrites = k + k2

	if at, ok := rec.firstShardState(ts, router.StatePromoted, killAt); ok {
		t.meas.DetectionLatencyMS = float64(at.Sub(killAt).Microseconds()) / 1000
	}

	// Post-kill: the planned queries (counted), then every acked point —
	// whose nearest neighbor is itself, the sharpest probe for a
	// silently dropped write — all byte-identical to the reference.
	for i := 0; i < t.cfg.Queries; i++ {
		if err := t.compareQuery(t.routeURL, t.refURL, queryAt(i), i, true); err != nil {
			return err
		}
	}
	for i, p := range ackedPts {
		if err := t.compareQuery(t.routeURL, t.refURL, workload.Query{X: p}, t.cfg.Queries+i, false); err != nil {
			return err
		}
	}

	// Zero acked-write loss, measured at the engines: for every shard
	// the best surviving replica's applied offset must cover every acked
	// mutation routed there.
	for s := 0; s < S; s++ {
		var best uint64
		for r := 0; r < R; r++ {
			if backends[s][r] == nil {
				continue // the killed primary doesn't get to vote
			}
			if off := mxs[s][r].ReplicationOffset(); off > best {
				best = off
			}
		}
		if lost := ackedPerShard[s] - int(best); lost > 0 {
			t.inv.AckedWritesLost += lost
		}
	}

	st := rt.Stats()
	for _, ss := range st.ShardStats {
		t.meas.Hedges += ss.Hedges
		t.meas.HedgeWins += ss.HedgeWins
		t.meas.Failovers += ss.Failovers
	}
	t.meas.Promotions = st.Promotions
	if st.Promotions == 0 || st.Epoch == 0 {
		return fmt.Errorf("primary killed but promotions=%d epoch=%d", st.Promotions, st.Epoch)
	}
	t.meas.Evictions, t.meas.FalseEvictions, t.meas.Readmissions = rec.counts(killedURL)
	return nil
}
