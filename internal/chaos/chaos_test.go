package chaos

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testConfig is the smallest matrix that still exercises a gray
// failure, a corruption failure, and the durability adversary.
func testConfig(rootSeed uint64) ExperimentConfig {
	return ExperimentConfig{
		RootSeed:   rootSeed,
		Trials:     2,
		Strategies: []string{StrategyGray500, StrategyCorrupt, StrategyWALTear},
		Shapes:     []Shape{{Shards: 1, Replicas: 2}},
		Dim:        64,
		N:          32,
		Queries:    6,
		Warmup:     2,
	}
}

// TestExperimentDeterminism is the replayability acceptance check: the
// same root seed must reproduce the invariant half of the matrix
// byte-identically, and a different root seed must not.
func TestExperimentDeterminism(t *testing.T) {
	first, err := Run(testConfig(7), t.Logf)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if v := first.Gate(); len(v) != 0 {
		t.Fatalf("gate violations: %v", v)
	}
	if got := len(first.Results); got != 6 {
		t.Fatalf("got %d results, want 6 (3 strategies x 2 trials)", got)
	}
	again, err := Run(testConfig(7), nil)
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	a, b := first.InvariantsJSON(), again.InvariantsJSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("same root seed did not replay byte-identically:\nfirst:\n%s\nreplay:\n%s", a, b)
	}
	other, err := Run(testConfig(8), nil)
	if err != nil {
		t.Fatalf("different-seed run: %v", err)
	}
	if bytes.Equal(a, other.InvariantsJSON()) {
		t.Fatalf("different root seeds produced identical invariants — seed is not feeding the trials")
	}
}

// TestExperimentInvariantFields pins what a passing matrix must claim:
// zero wrong answers everywhere, every wal-tear trial acking writes and
// losing none, and every proxy trial naming a real target.
func TestExperimentInvariantFields(t *testing.T) {
	m, err := Run(testConfig(21), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range m.Results {
		inv := r.Invariants
		if inv.WrongAnswers != 0 || inv.FirstDivergence != "" {
			t.Errorf("%s trial %d: %d wrong answers (%s)", inv.Strategy, inv.Trial, inv.WrongAnswers, inv.FirstDivergence)
		}
		if inv.Strategy == StrategyWALTear {
			if inv.AckedWrites < 6 {
				t.Errorf("wal-tear trial %d acked only %d writes", inv.Trial, inv.AckedWrites)
			}
			if inv.AckedWritesLost != 0 {
				t.Errorf("wal-tear trial %d lost %d acked writes", inv.Trial, inv.AckedWritesLost)
			}
			if inv.TargetShard != -1 || inv.TargetReplica != -1 {
				t.Errorf("wal-tear trial %d has a cluster target %d/%d, want -1/-1", inv.Trial, inv.TargetShard, inv.TargetReplica)
			}
			continue
		}
		if inv.TargetShard < 0 || inv.TargetReplica < 0 {
			t.Errorf("%s trial %d has no target", inv.Strategy, inv.Trial)
		}
		// Gray failures must be detected and the detection timed.
		if r.Measured.DetectionLatencyMS < 0 {
			t.Errorf("%s trial %d: fault never detected", inv.Strategy, inv.Trial)
		}
		if r.Measured.FaultsInjected == 0 {
			t.Errorf("%s trial %d: fault armed but never touched a request", inv.Strategy, inv.Trial)
		}
	}
	if m.Summary.Trials != len(m.Results) {
		t.Errorf("summary counted %d trials, want %d", m.Summary.Trials, len(m.Results))
	}
	if m.Summary.Evictions == 0 {
		t.Errorf("matrix observed no evictions at all — detection machinery not exercised")
	}
}

// TestExperimentWithCache runs the same gray-failure catalog with the
// epoch-invalidated result cache enabled on every faulted-side server
// (the reference oracle stays uncached). The gate must stay clean —
// zero wrong answers means no fault sequence made the cache serve a
// reply a fresh execution wouldn't — and the invariant half of the
// matrix must be byte-identical to the uncached run of the same root
// seed, pinning that the cache is invisible to correctness.
func TestExperimentWithCache(t *testing.T) {
	cfg := testConfig(33)
	uncached, err := Run(cfg, nil)
	if err != nil {
		t.Fatalf("uncached run: %v", err)
	}
	cfg.CacheEntries = 128
	cached, err := Run(cfg, t.Logf)
	if err != nil {
		t.Fatalf("cached run: %v", err)
	}
	if v := cached.Gate(); len(v) != 0 {
		t.Fatalf("cached gate violations: %v", v)
	}
	for _, r := range cached.Results {
		if r.Invariants.WrongAnswers != 0 || r.Invariants.FirstDivergence != "" {
			t.Errorf("%s trial %d with cache: %d wrong answers (%s)",
				r.Invariants.Strategy, r.Invariants.Trial, r.Invariants.WrongAnswers, r.Invariants.FirstDivergence)
		}
		if r.Invariants.AckedWritesLost != 0 {
			t.Errorf("%s trial %d with cache lost %d acked writes",
				r.Invariants.Strategy, r.Invariants.Trial, r.Invariants.AckedWritesLost)
		}
	}
	a, b := uncached.InvariantsJSON(), cached.InvariantsJSON()
	if !bytes.Equal(a, b) {
		t.Fatalf("enabling the cache changed the invariant half of the matrix:\nuncached:\n%s\ncached:\n%s", a, b)
	}
}

// TestExperimentPrimaryKill runs the replicated-write adversary: a
// routed 2x2 mutable cluster takes acked writes, loses the target
// shard's primary mid-stream, and must promote a survivor with zero
// acked-write loss and byte-identical post-kill answers.
func TestExperimentPrimaryKill(t *testing.T) {
	cfg := ExperimentConfig{
		RootSeed:   13,
		Trials:     2,
		Strategies: []string{StrategyPrimaryKill},
		Shapes:     []Shape{{Shards: 2, Replicas: 2}},
		Dim:        64,
		N:          32,
		Queries:    6,
		Warmup:     2,
	}
	m, err := Run(cfg, t.Logf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if v := m.Gate(); len(v) != 0 {
		t.Fatalf("gate violations: %v", v)
	}
	for _, r := range m.Results {
		inv := r.Invariants
		if inv.WrongAnswers != 0 || inv.FirstDivergence != "" {
			t.Errorf("trial %d: %d wrong answers (%s)", inv.Trial, inv.WrongAnswers, inv.FirstDivergence)
		}
		if inv.AckedWrites < 2*3*2 { // S * 3 minimum, pre- and post-kill
			t.Errorf("trial %d acked only %d writes", inv.Trial, inv.AckedWrites)
		}
		if inv.AckedWritesLost != 0 {
			t.Errorf("trial %d lost %d acked writes", inv.Trial, inv.AckedWritesLost)
		}
		if inv.TargetReplica != 0 {
			t.Errorf("trial %d targeted replica %d, want the primary (0)", inv.Trial, inv.TargetReplica)
		}
		if r.Measured.Promotions != 1 {
			t.Errorf("trial %d performed %d promotions, want exactly 1", inv.Trial, r.Measured.Promotions)
		}
		if r.Measured.DetectionLatencyMS <= 0 {
			t.Errorf("trial %d: promotion never observed (detection latency %v)", inv.Trial, r.Measured.DetectionLatencyMS)
		}
	}
	if m.Summary.Promotions != int64(len(m.Results)) {
		t.Errorf("summary counted %d promotions over %d trials", m.Summary.Promotions, len(m.Results))
	}

	// Replayability holds for the write path too.
	again, err := Run(cfg, nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !bytes.Equal(m.InvariantsJSON(), again.InvariantsJSON()) {
		t.Fatalf("same root seed did not replay byte-identically:\n%s\nvs\n%s", m.InvariantsJSON(), again.InvariantsJSON())
	}
}

func TestDeriveSeedLabeling(t *testing.T) {
	if deriveSeed(1, "a", "bc") == deriveSeed(1, "ab", "c") {
		t.Fatal("label boundaries do not feed the derivation")
	}
	if deriveSeed(1, "x") == deriveSeed(2, "x") {
		t.Fatal("root seed does not feed the derivation")
	}
	if deriveSeed(1, "x") != deriveSeed(1, "x") {
		t.Fatal("derivation is not a pure function")
	}
}

func TestParseShape(t *testing.T) {
	sh, err := ParseShape("3x2")
	if err != nil || sh.Shards != 3 || sh.Replicas != 2 {
		t.Fatalf("ParseShape(3x2) = %v, %v", sh, err)
	}
	for _, bad := range []string{"", "3", "x", "0x2", "2x1", "2x0"} {
		if _, err := ParseShape(bad); err == nil {
			t.Errorf("ParseShape(%q) accepted", bad)
		}
	}
}

func TestStrategyCatalog(t *testing.T) {
	for _, name := range Strategies() {
		s, err := strategyByName(name)
		if err != nil {
			t.Fatalf("catalog strategy %q unresolvable: %v", name, err)
		}
		if s.name() != name {
			t.Fatalf("strategy %q reports name %q", name, s.name())
		}
	}
	if _, err := strategyByName("meteor-strike"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// TestProxyFaultModes drives each fault mode against a live backend and
// checks the wire-visible behavior the router is supposed to survive.
func TestProxyFaultModes(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/healthz" {
			io.WriteString(w, `{"status":"ok"}`)
			return
		}
		io.WriteString(w, `{"answer":42}`)
	}))
	defer backend.Close()
	p, err := NewProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	client := &http.Client{Timeout: 2 * time.Second}
	get := func(path string) (int, string, error) {
		resp, err := client.Get(p.URL() + path)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), nil
	}

	// Clean pass-through.
	if code, body, err := get("/v1/query"); err != nil || code != 200 || body != `{"answer":42}` {
		t.Fatalf("unfaulted proxy: %d %q %v", code, body, err)
	}

	p.SetFault(Fault{Mode: FaultGray500})
	if code, _, err := get("/v1/query"); err != nil || code != 500 {
		t.Fatalf("gray-500 /v1: %d %v, want 500", code, err)
	}
	if code, _, err := get("/healthz"); err != nil || code != 200 {
		t.Fatalf("gray-500 /healthz: %d %v, want a clean 200 (gray by design)", code, err)
	}

	p.SetFault(Fault{Mode: FaultCorrupt})
	if code, body, err := get("/v1/query"); err != nil || code != 200 || body == `{"answer":42}` || body == "" {
		t.Fatalf("corrupt /v1: %d %q %v, want a mangled 200 body", code, body, err)
	}
	if _, body, _ := get("/healthz"); body != `{"status":"ok"}` {
		t.Fatalf("corrupt /healthz body %q, want untouched", body)
	}

	p.SetFault(Fault{Mode: FaultDrop})
	if _, _, err := get("/v1/query"); err == nil {
		t.Fatal("drop /v1: got a response, want a severed connection")
	}
	if code, _, err := get("/healthz"); err != nil || code != 200 {
		t.Fatalf("drop /healthz: %d %v, want 200", code, err)
	}

	p.SetFault(Fault{Mode: FaultPartition})
	if _, _, err := get("/healthz"); err == nil {
		t.Fatal("partition /healthz: got a response, want a severed connection")
	}

	p.SetFault(Fault{Mode: FaultSlow, Delay: 50 * time.Millisecond})
	start := time.Now()
	code, body, err := get("/v1/query")
	if err != nil || code != 200 || body != `{"answer":42}` {
		t.Fatalf("slow /v1: %d %q %v", code, body, err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("slow /v1 answered in %v, want >= 50ms", d)
	}

	p.SetFault(Fault{}) // cleared
	if code, body, err := get("/v1/query"); err != nil || code != 200 || body != `{"answer":42}` {
		t.Fatalf("cleared proxy: %d %q %v", code, body, err)
	}
	if n := p.Injected(); n < 5 {
		t.Fatalf("Injected() = %d, want >= 5", n)
	}

	if !strings.Contains(FaultGrayHang.String(), "gray") {
		t.Fatalf("FaultGrayHang.String() = %q", FaultGrayHang.String())
	}
}
