package chaos

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/anns"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/workload"
)

// Shape is one cluster topology: S shard positions × R replicas each.
type Shape struct {
	Shards   int
	Replicas int
}

func (s Shape) String() string { return fmt.Sprintf("%dx%d", s.Shards, s.Replicas) }

// ParseShape parses "SxR" (e.g. "2x2", "3x2").
func ParseShape(str string) (Shape, error) {
	var sh Shape
	if _, err := fmt.Sscanf(strings.TrimSpace(str), "%dx%d", &sh.Shards, &sh.Replicas); err != nil {
		return sh, fmt.Errorf("chaos: shape %q is not SxR: %w", str, err)
	}
	if sh.Shards < 1 || sh.Replicas < 2 {
		return sh, fmt.Errorf("chaos: shape %q needs >=1 shard and >=2 replicas (a fault targets one replica; the others must be able to cover)", str)
	}
	return sh, nil
}

// Cluster is one in-process distributed deployment: the shard-split
// snapshot+manifest on disk, S×R real shard servers each booted from
// its shard's snapshot, one fault proxy in front of every replica, and
// an unfaulted reference server over the equivalent single-process
// ShardedIndex. The reference is the oracle for the zero-wrong-answer
// invariant: router answers must match it byte-for-byte, the same fold
// equivalence TestRouterMatchesSingleProcess pins.
//
// The cluster is stateless across query-path trials (shard servers
// serve immutable snapshots), so one cluster is shared by every trial
// of a shape; each trial gets its own Router (fresh health state and
// counters) and arms faults on the shared proxies, clearing them after.
type Cluster struct {
	Shape    Shape
	Dim      int
	Seed     uint64
	Inst     *workload.Instance
	Manifest *router.Manifest

	backends []*backendServer // all replica servers plus the reference
	Proxies  [][]*Proxy       // [shard][replica]
	RefURL   string
}

// backendServer is one HTTP server over one index.
type backendServer struct {
	srv *server.Server
	hs  *http.Server
	ln  net.Listener
}

func (b *backendServer) url() string { return "http://" + b.ln.Addr().String() }

func (b *backendServer) close() {
	b.hs.Close()
	b.srv.Close()
}

// serveIndex boots one shard-server over ix on a fresh loopback port.
// cacheEntries > 0 puts a result cache in front of the server's query
// path — the faulted side of an experiment runs cached while the
// reference oracle stays uncached, so every compared answer also proves
// the cache never serves a reply a fresh execution wouldn't.
func serveIndex(ix server.Searcher, dim, cacheEntries int) (*backendServer, error) {
	srv, err := server.New(ix, server.Config{Dimension: dim, Workers: 2, CacheEntries: cacheEntries})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &backendServer{srv: srv, hs: hs, ln: ln}, nil
}

// BuildCluster stands up one deployment in dir: it generates the seeded
// corpus, builds the sharded index, writes per-shard snapshots plus the
// placement manifest (the `annsctl shard-split` layout), boots every
// replica from its snapshot file, and fronts each with a Proxy. n and q
// size the corpus and the ground-truth query stream; the planted-NN
// workload keeps every query's right answer unambiguous. cacheEntries
// enables the epoch-invalidated result cache on every replica (0 =
// off); the reference oracle always runs uncached, so the byte-identity
// invariant doubles as a stale-reply check on the cache.
func BuildCluster(dir string, shape Shape, seed uint64, dim, n, q, cacheEntries int) (*Cluster, error) {
	spec := workload.Spec{Kind: "planted", D: dim, N: n, Q: q, Dist: dim / 10, Seed: seed}
	inst, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	pts := make([]anns.Point, len(inst.DB))
	copy(pts, inst.DB)
	sx, err := anns.BuildSharded(pts, shape.Shards, anns.Options{Dimension: dim, Rounds: 2, Seed: seed})
	if err != nil {
		return nil, err
	}

	// The shard-split layout: one snapshot per shard + manifest.json.
	m := &router.Manifest{
		FormatVersion: router.ManifestVersion,
		Placement:     router.PlacementRoundRobin,
		Shards:        sx.Shards(),
		N:             sx.Len(),
		Dimension:     dim,
		Seed:          sx.Options().Seed,
	}
	for s := 0; s < sx.Shards(); s++ {
		name := fmt.Sprintf("shard-%d.snap", s)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if err := anns.SaveIndex(f, sx.Shard(s)); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		m.Files = append(m.Files, router.ManifestShard{
			Shard: s, Path: name, N: sx.Shard(s).Len(), Seed: sx.Shard(s).Options().Seed,
		})
	}
	mpath := filepath.Join(dir, "manifest.json")
	if err := router.WriteManifest(mpath, m); err != nil {
		return nil, err
	}
	loaded, err := router.LoadManifest(mpath)
	if err != nil {
		return nil, err
	}

	c := &Cluster{Shape: shape, Dim: dim, Seed: seed, Inst: inst, Manifest: loaded}
	fail := func(err error) (*Cluster, error) {
		c.Close()
		return nil, err
	}
	// Every replica boots from its shard's snapshot file — the same
	// build→split→load→serve lifecycle a real deployment runs.
	for s := 0; s < shape.Shards; s++ {
		var row []*Proxy
		for r := 0; r < shape.Replicas; r++ {
			f, err := os.Open(loaded.ShardPath(mpath, s))
			if err != nil {
				return fail(err)
			}
			ix, err := anns.LoadIndex(f)
			f.Close()
			if err != nil {
				return fail(err)
			}
			b, err := serveIndex(ix, dim, cacheEntries)
			if err != nil {
				return fail(err)
			}
			c.backends = append(c.backends, b)
			p, err := NewProxy(b.url())
			if err != nil {
				return fail(err)
			}
			row = append(row, p)
		}
		c.Proxies = append(c.Proxies, row)
	}
	ref, err := serveIndex(sx, dim, 0)
	if err != nil {
		return fail(err)
	}
	c.backends = append(c.backends, ref)
	c.RefURL = ref.url()
	return c, nil
}

// ClearFaults disarms every proxy (between trials).
func (c *Cluster) ClearFaults() {
	for _, row := range c.Proxies {
		for _, p := range row {
			p.SetFault(Fault{})
		}
	}
}

// RouterConfig is the trial-tuned router over the cluster's proxies:
// tight probe/backoff cadence so detection and readmission happen in
// milliseconds, a sub-second attempt timeout so hung replicas fail
// over inside a trial, and an aggressive cold hedge so slow-replica
// trials exercise hedging. onTrace, when non-nil, turns on per-request
// tracing and receives every finished trace — the harness uses the
// span stream to re-derive eviction detection latency independently of
// the OnReplicaState hook (same incident, two witnesses).
func (c *Cluster) RouterConfig(onState func(shard int, url, state, reason string), onTrace func(obs.TraceRecord)) router.Config {
	var urls [][]string
	sizes := make([]int, c.Shape.Shards)
	seeds := make([]uint64, c.Shape.Shards)
	for s, row := range c.Proxies {
		var rs []string
		for _, p := range row {
			rs = append(rs, p.URL())
		}
		urls = append(urls, rs)
		sizes[s] = c.Manifest.Files[s].N
		seeds[s] = c.Manifest.Files[s].Seed
	}
	return router.Config{
		Dimension:      c.Dim,
		N:              c.Manifest.N,
		Replicas:       urls,
		ShardSizes:     sizes,
		ShardSeeds:     seeds,
		DefaultTimeout: 5 * time.Second,
		RequestTimeout: 300 * time.Millisecond,
		ProbeInterval:  25 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		EvictAfter:     2,
		BackoffBase:    50 * time.Millisecond,
		BackoffMax:     500 * time.Millisecond,
		HedgeCold:      10 * time.Millisecond,
		HedgeMin:       1 * time.Millisecond,
		OnReplicaState: onState,
		Trace:          obs.TracerConfig{OnTrace: onTrace},
	}
}

// Close tears down every server and proxy.
func (c *Cluster) Close() {
	for _, row := range c.Proxies {
		for _, p := range row {
			p.Close()
		}
	}
	for _, b := range c.backends {
		b.close()
	}
}
