package sketch

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func TestNewBernoulliShape(t *testing.T) {
	r := rng.New(1)
	m := NewBernoulli(r, 32, 200, 0.1)
	if m.NumRows != 32 || m.Dim != 200 {
		t.Fatalf("shape %dx%d", m.NumRows, m.Dim)
	}
	for i := 0; i < 32; i++ {
		row := m.Row(i)
		for b := 200; b < len(row)*64; b++ {
			if row.Get(b) {
				t.Fatalf("row %d has bit %d beyond dimension", i, b)
			}
		}
	}
}

func TestNewBernoulliDensity(t *testing.T) {
	r := rng.New(2)
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5} {
		m := NewBernoulli(r, 64, 1000, p)
		total := 0
		for i := 0; i < m.NumRows; i++ {
			total += m.Row(i).PopCount()
		}
		got := float64(total) / float64(64*1000)
		if math.Abs(got-p) > 0.03*math.Max(1, p/0.1) {
			t.Errorf("p=%v: measured density %v", p, got)
		}
	}
}

func TestNewBernoulliPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewBernoulli(rng.New(1), 0, 10, 0.1) },
		func() { NewBernoulli(rng.New(1), 10, 0, 0.1) },
		func() { NewBernoulli(rng.New(1), 10, 10, 0) },
		func() { NewBernoulli(rng.New(1), 10, 10, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid matrix construction did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestApplyLinearity(t *testing.T) {
	// Sketching is linear over GF(2): M(x ⊕ y) = Mx ⊕ My. This is the
	// property that turns point distance into sketch distance.
	r := rng.New(3)
	m := NewBernoulli(r, 48, 300, 0.2)
	for trial := 0; trial < 20; trial++ {
		x := hamming.Random(r, 300)
		y := hamming.Random(r, 300)
		lhs := m.Apply(x.Clone().Xor(y))
		rhs := m.Apply(x).Xor(m.Apply(y))
		if !bitvec.Equal(lhs, rhs) {
			t.Fatal("Apply not linear over GF(2)")
		}
	}
}

func TestApplyZero(t *testing.T) {
	r := rng.New(4)
	m := NewBernoulli(r, 16, 100, 0.3)
	if !m.Apply(bitvec.New(100)).IsZero() {
		t.Error("sketch of zero vector not zero")
	}
}

func TestExpectedFractionFormula(t *testing.T) {
	// Monte-Carlo check: fraction of differing sketch bits between points
	// at distance D matches ½(1−(1−2p)^D).
	r := rng.New(5)
	const d, rows, dist = 600, 400, 40
	p := 0.02
	m := NewBernoulli(r, rows, d, p)
	x := hamming.Random(r, d)
	y := hamming.AtDistance(r, x, d, dist)
	got := float64(bitvec.Distance(m.Apply(x), m.Apply(y))) / rows
	want := ExpectedFraction(p, dist)
	if math.Abs(got-want) > 0.08 {
		t.Errorf("sketch distance fraction %v, expected %v", got, want)
	}
}

func TestExpectedFractionProperties(t *testing.T) {
	// Increasing in distance, bounded by 1/2, zero at distance 0.
	if ExpectedFraction(0.1, 0) != 0 {
		t.Error("f(0) != 0")
	}
	prev := 0.0
	for dist := 1.0; dist < 200; dist *= 2 {
		f := ExpectedFraction(0.05, dist)
		if f < prev || f > 0.5 {
			t.Fatalf("f not monotone into [0, .5]: f(%v)=%v", dist, f)
		}
		prev = f
	}
}

func TestDeltaIsGapBetweenExpectations(t *testing.T) {
	// δ(β,α) = f(αβ) − f(β) with p = 1/(4β) (DESIGN.md §3.3).
	for _, beta := range []float64{1, 2, 8, 64, 1024} {
		alpha := math.Sqrt2
		p := 1 / (4 * beta)
		want := ExpectedFraction(p, alpha*beta) - ExpectedFraction(p, beta)
		got := Delta(beta, alpha)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("beta=%v: Delta=%v, gap=%v", beta, got, want)
		}
		if got <= 0 {
			t.Errorf("beta=%v: Delta not positive", beta)
		}
	}
}

func TestNewFamilyStructure(t *testing.T) {
	f := NewFamily(Params{D: 1024, N: 256, Gamma: 2, S: 2, Seed: 9})
	alpha := math.Sqrt2
	if math.Abs(f.Alpha-alpha) > 1e-12 {
		t.Errorf("alpha = %v", f.Alpha)
	}
	wantL := int(math.Ceil(math.Log(1024) / math.Log(alpha)))
	if f.L != wantL {
		t.Errorf("L = %d, want %d", f.L, wantL)
	}
	if len(f.Accurate) != f.L+1 || len(f.Coarse) != f.L+1 {
		t.Fatal("family level count wrong")
	}
	if f.CoarseRows() >= f.AccurateRows() {
		t.Errorf("coarse rows %d not smaller than accurate %d (s=2)", f.CoarseRows(), f.AccurateRows())
	}
	// Radii grow geometrically and top exceeds d.
	if f.Radius(f.L) < 1024 {
		t.Errorf("top radius %v below d", f.Radius(f.L))
	}
}

func TestNewFamilyNoCoarse(t *testing.T) {
	f := NewFamily(Params{D: 256, N: 128, Gamma: 2, Seed: 1})
	if f.Coarse != nil {
		t.Error("coarse family built without S")
	}
	if f.CoarseRows() != 0 {
		t.Error("CoarseRows nonzero without coarse family")
	}
	defer func() {
		if recover() == nil {
			t.Error("CoarseThreshold without coarse family did not panic")
		}
	}()
	f.CoarseThreshold(0)
}

func TestNewFamilyPanics(t *testing.T) {
	for _, p := range []Params{
		{D: 1024, N: 256, Gamma: 1},
		{D: 1, N: 256, Gamma: 2},
		{D: 1024, N: 1, Gamma: 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFamily(%+v) did not panic", p)
				}
			}()
			NewFamily(p)
		}()
	}
}

func TestThresholdSeparatesScales(t *testing.T) {
	// The membership cut must sit strictly between the expected sketch
	// fractions at radius αⁱ and αⁱ⁺¹ — that is what yields
	// B_i ⊆ C_i ⊆ B_{i+1} with concentration.
	f := NewFamily(Params{D: 4096, N: 512, Gamma: 2, Seed: 11})
	rows := float64(f.AccurateRows())
	for i := 0; i <= f.L; i++ {
		beta := f.Radius(i)
		p := 1 / (4 * beta)
		lo := ExpectedFraction(p, beta) * rows
		hi := ExpectedFraction(p, f.Radius(i+1)) * rows
		thr := float64(f.AccurateThreshold(i))
		if thr <= lo-1 || thr >= hi {
			t.Errorf("level %d: threshold %v outside (%v, %v)", i, thr, lo, hi)
		}
	}
}

func TestInCMatchesThreshold(t *testing.T) {
	f := NewFamily(Params{D: 512, N: 128, Gamma: 2, S: 1.5, Seed: 13})
	r := rng.New(14)
	x := hamming.Random(r, 512)
	z := hamming.AtDistance(r, x, 512, 16)
	i := 8
	sx := f.Accurate[i].Apply(x)
	sz := f.Accurate[i].Apply(z)
	want := bitvec.Distance(sx, sz) <= f.AccurateThreshold(i)
	if f.InC(i, sx, sz) != want {
		t.Error("InC disagrees with threshold")
	}
	cx := f.Coarse[i].Apply(x)
	cz := f.Coarse[i].Apply(z)
	wantD := bitvec.Distance(cx, cz) <= f.CoarseThreshold(i)
	if f.InD(i, cx, cz) != wantD {
		t.Error("InD disagrees with threshold")
	}
}

func TestFamilyClassificationQuality(t *testing.T) {
	// Points well inside radius αⁱ are (almost always) in C_i; points well
	// outside αⁱ⁺¹ are (almost always) out.
	f := NewFamily(Params{D: 2048, N: 256, Gamma: 2, Seed: 15})
	r := rng.New(16)
	x := hamming.Random(r, 2048)
	i := 12 // radius α^12 = 64
	near := int(f.Radius(i) / 2)
	far := int(f.Radius(i+1) * 2)
	sx := f.Accurate[i].Apply(x)
	nearIn, farIn := 0, 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		zn := hamming.AtDistance(r, x, 2048, near)
		zf := hamming.AtDistance(r, x, 2048, far)
		if f.InC(i, sx, f.Accurate[i].Apply(zn)) {
			nearIn++
		}
		if f.InC(i, sx, f.Accurate[i].Apply(zf)) {
			farIn++
		}
	}
	if nearIn < trials*9/10 {
		t.Errorf("near points classified in only %d/%d", nearIn, trials)
	}
	if farIn > trials/10 {
		t.Errorf("far points classified in %d/%d", farIn, trials)
	}
}

func TestCutFractionMovesThreshold(t *testing.T) {
	base := Params{D: 1024, N: 256, Gamma: 2, Seed: 50}
	var prev int
	for i, frac := range []float64{0.25, 0.5, 0.75} {
		p := base
		p.CutFraction = frac
		f := NewFamily(p)
		thr := f.AccurateThreshold(10)
		if i > 0 && thr < prev {
			t.Errorf("threshold not monotone in CutFraction at frac=%v", frac)
		}
		prev = thr
	}
	// Zero CutFraction means 0.5.
	def := NewFamily(base)
	explicit := base
	explicit.CutFraction = 0.5
	if def.AccurateThreshold(10) != NewFamily(explicit).AccurateThreshold(10) {
		t.Error("default CutFraction is not 0.5")
	}
}

func TestLiteralDeltaCutBelowExpectation(t *testing.T) {
	p := Params{D: 1024, N: 256, Gamma: 2, Seed: 51, LiteralDeltaCut: true}
	f := NewFamily(p)
	rows := float64(f.AccurateRows())
	for _, i := range []int{4, 8, 12} {
		beta := f.Radius(i)
		expAtBeta := ExpectedFraction(1/(4*beta), beta) * rows
		if thr := float64(f.AccurateThreshold(i)); thr >= expAtBeta {
			t.Errorf("level %d: literal threshold %v not below expectation %v", i, thr, expAtBeta)
		}
	}
}

func TestFamilyDeterministicInSeed(t *testing.T) {
	p := Params{D: 512, N: 128, Gamma: 2, S: 1, Seed: 77}
	a := NewFamily(p)
	b := NewFamily(p)
	for i := 0; i <= a.L; i++ {
		for row := 0; row < a.AccurateRows(); row++ {
			if !bitvec.Equal(a.Accurate[i].Row(row), b.Accurate[i].Row(row)) {
				t.Fatal("same seed produced different matrices")
			}
		}
	}
}
