package sketch

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func BenchmarkApply1024x96(b *testing.B) {
	r := rng.New(1)
	m := NewBernoulli(r, 96, 1024, 0.05)
	x := hamming.Random(r, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Apply(x)
	}
}

func BenchmarkApply16384x192(b *testing.B) {
	r := rng.New(2)
	m := NewBernoulli(r, 192, 16384, 0.01)
	x := hamming.Random(r, 16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Apply(x)
	}
}

// BenchmarkApplyBatch8x4096x256 measures the blocked batch kernel against
// a matrix too large for L1 (256 rows × 4096 bits = 128 KiB), the regime
// the row-load amortization targets. Compare per-query cost against
// BenchmarkApplySingle8x4096x256.
func BenchmarkApplyBatch8x4096x256(b *testing.B) {
	r := rng.New(9)
	m := NewBernoulli(r, 256, 4096, 0.01)
	const batch = 8
	xs := make([]bitvec.Vector, batch)
	dsts := make([]bitvec.Vector, batch)
	for q := range xs {
		xs[q] = hamming.Random(r, 4096)
		dsts[q] = bitvec.New(m.NumRows)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ApplyBatchInto(dsts, xs)
	}
}

func BenchmarkApplySingle8x4096x256(b *testing.B) {
	r := rng.New(9)
	m := NewBernoulli(r, 256, 4096, 0.01)
	const batch = 8
	xs := make([]bitvec.Vector, batch)
	dsts := make([]bitvec.Vector, batch)
	for q := range xs {
		xs[q] = hamming.Random(r, 4096)
		dsts[q] = bitvec.New(m.NumRows)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := range xs {
			m.ApplyInto(dsts[q], xs[q])
		}
	}
}

func BenchmarkNewBernoulliSparse(b *testing.B) {
	r := rng.New(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewBernoulli(r, 96, 16384, 1.0/4096)
	}
}

func BenchmarkNewFamily(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewFamily(Params{D: 1024, N: 256, Gamma: 2, S: 1.5, Seed: uint64(i)})
	}
}
