package sketch

import (
	"testing"

	"repro/internal/hamming"
	"repro/internal/rng"
)

func BenchmarkApply1024x96(b *testing.B) {
	r := rng.New(1)
	m := NewBernoulli(r, 96, 1024, 0.05)
	x := hamming.Random(r, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Apply(x)
	}
}

func BenchmarkApply16384x192(b *testing.B) {
	r := rng.New(2)
	m := NewBernoulli(r, 192, 16384, 0.01)
	x := hamming.Random(r, 16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Apply(x)
	}
}

func BenchmarkNewBernoulliSparse(b *testing.B) {
	r := rng.New(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewBernoulli(r, 96, 16384, 1.0/4096)
	}
}

func BenchmarkNewFamily(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewFamily(Params{D: 1024, N: 256, Gamma: 2, S: 1.5, Seed: uint64(i)})
	}
}
