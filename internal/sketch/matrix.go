// Package sketch implements the randomized dimension-reduction substrate of
// Definition 7 in the paper: for each distance scale αⁱ a random Boolean
// matrix whose entries are i.i.d. Bernoulli(1/(4αⁱ)), applied to points over
// GF(2). The accurate matrices M_i (c₁·log n rows) define the ball
// approximations C_i, and the coarse matrices N_j ((c₂/s)·log n rows) define
// the weak approximations D_{i,j} used by Algorithm 2.
package sketch

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// Matrix is a random Boolean matrix with dense bit-packed rows stored in
// one flat bitvec.Block (row-major contiguous words, no nested slices),
// so a matrix serializes to and from a snapshot wholesale.
type Matrix struct {
	NumRows int
	Dim     int
	P       float64 // per-entry Bernoulli parameter the matrix was drawn with
	block   bitvec.Block
}

// NewBernoulli draws a rows×d matrix with i.i.d. Bernoulli(p) entries from
// the given source. Rows are sampled by geometric gap skipping, so sparse
// scales (large αⁱ) cost O(d·p) per row rather than O(d).
func NewBernoulli(r *rng.Source, numRows, d int, p float64) *Matrix {
	if numRows <= 0 || d <= 0 {
		panic(fmt.Sprintf("sketch: invalid matrix shape %dx%d", numRows, d))
	}
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("sketch: invalid Bernoulli parameter %v", p))
	}
	m := &Matrix{NumRows: numRows, Dim: d, P: p, block: bitvec.NewBlock(numRows, d)}
	logq := math.Log1p(-p) // ln(1-p) < 0
	for i := 0; i < numRows; i++ {
		row := m.block.Row(i)
		if p >= 0.2 {
			// Dense regime: direct per-bit sampling is cheaper than skipping.
			for j := 0; j < d; j++ {
				if r.Bernoulli(p) {
					row.Set(j, true)
				}
			}
		} else {
			for j := skip(r, logq); j < d; j += 1 + skip(r, logq) {
				row.Set(j, true)
			}
		}
	}
	return m
}

// MatrixFromBlock rebinds a matrix to an already-materialized row block
// (the snapshot load path). The block must hold numRows rows of
// Words(d) words.
func MatrixFromBlock(numRows, d int, p float64, block bitvec.Block) (*Matrix, error) {
	if block.RowWords != bitvec.Words(d) || block.Rows() != numRows {
		return nil, fmt.Errorf("sketch: block is %dx%d words, want %dx%d for a %dx%d matrix",
			block.Rows(), block.RowWords, numRows, bitvec.Words(d), numRows, d)
	}
	return &Matrix{NumRows: numRows, Dim: d, P: p, block: block}, nil
}

// Block exposes the flat row storage (shared, not copied) for snapshot
// serialization.
func (m *Matrix) Block() bitvec.Block { return m.block }

// skip draws a geometric gap: the number of failures before the next
// success of a Bernoulli(p) process, where logq = ln(1-p).
func skip(r *rng.Source, logq float64) int {
	u := r.Float64()
	if u == 0 {
		u = 0.5
	}
	g := math.Log(u) / logq
	if g >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int(g)
}

// Row returns row i (a view into the flat block; callers must not mutate it).
func (m *Matrix) Row(i int) bitvec.Vector { return m.block.Row(i) }

// Apply computes y = Mx over GF(2): bit i of the result is the parity of
// the AND of row i with x. The result has m.NumRows bits.
func (m *Matrix) Apply(x bitvec.Vector) bitvec.Vector {
	return m.ApplyInto(bitvec.New(m.NumRows), x)
}

// ApplyInto computes y = Mx into dst, reusing dst's storage (the query
// hot path applies sketches into per-level scratch buffers). dst must
// have Words(m.NumRows) words. Each output word is accumulated in a
// register — 64 row parities OR'd together — and written once, which
// folds the zeroing into the kernel (no separate clearing pass, no
// per-bit read-modify-write on dst).
func (m *Matrix) ApplyInto(dst bitvec.Vector, x bitvec.Vector) bitvec.Vector {
	row := 0
	for o := range dst {
		end := row + 64
		if end > m.NumRows {
			end = m.NumRows
		}
		var w uint64
		for bit := uint(0); row < end; row, bit = row+1, bit+1 {
			w |= uint64(bitvec.Parity(m.block.Row(row), x)) << bit
		}
		dst[o] = w
	}
	return dst
}

// batchWidth is the register-blocking factor of ApplyBatchInto: each
// matrix row word is loaded once and folded against this many queries.
// Four keeps the accumulators and slice bases within the general-purpose
// register budget on amd64/arm64.
const batchWidth = 4

// ApplyBatchInto computes dsts[q] = M·xs[q] for every q, equivalent to
// len(xs) independent ApplyInto calls but traversing the matrix once per
// batchWidth queries instead of once per query: the dominant cost on
// large matrices is streaming the rows through the cache hierarchy, and
// the blocked loop amortizes each row-word load across the block.
// len(dsts) must equal len(xs); shapes follow the ApplyInto contract.
func (m *Matrix) ApplyBatchInto(dsts, xs []bitvec.Vector) {
	if len(dsts) != len(xs) {
		panic(fmt.Sprintf("sketch: batch shape mismatch: %d dsts, %d queries", len(dsts), len(xs)))
	}
	base := 0
	for ; base+batchWidth <= len(xs); base += batchWidth {
		m.applyBlock4(dsts[base:base+batchWidth], xs[base:base+batchWidth])
	}
	for ; base < len(xs); base++ {
		m.ApplyInto(dsts[base], xs[base])
	}
}

// ApplyBlockInto computes dst.Row(i) = M·src.Row(i) for every row of src
// through the blocked kernel — the build-path form of ApplyBatchInto,
// used when a whole database block is sketched at once. dst must have
// src.Rows() rows of Words(m.NumRows) words.
func (m *Matrix) ApplyBlockInto(dst, src bitvec.Block) {
	n := src.Rows()
	if dst.Rows() != n {
		panic(fmt.Sprintf("sketch: block shape mismatch: %d dst rows, %d src rows", dst.Rows(), n))
	}
	var ds, ss [batchWidth]bitvec.Vector
	i := 0
	for ; i+batchWidth <= n; i += batchWidth {
		for j := 0; j < batchWidth; j++ {
			ds[j] = dst.Row(i + j)
			ss[j] = src.Row(i + j)
		}
		m.applyBlock4(ds[:], ss[:])
	}
	for ; i < n; i++ {
		m.ApplyInto(dst.Row(i), src.Row(i))
	}
}

// applyBlock4 is the register-blocked inner kernel: exactly batchWidth
// queries, accumulators and slice bases hoisted into locals so each matrix
// row word is loaded once and folded against all four queries.
func (m *Matrix) applyBlock4(dsts, xs []bitvec.Vector) {
	x0, x1, x2, x3 := xs[0], xs[1], xs[2], xs[3]
	d0, d1, d2, d3 := dsts[0], dsts[1], dsts[2], dsts[3]
	row := 0
	for o := range d0 {
		end := row + 64
		if end > m.NumRows {
			end = m.NumRows
		}
		var w0, w1, w2, w3 uint64
		for bit := uint(0); row < end; row, bit = row+1, bit+1 {
			r := m.block.Row(row)
			// Reslicing the queries to the row length lets the compiler
			// drop the four bounds checks in the fold loop.
			y0, y1, y2, y3 := x0[:len(r)], x1[:len(r)], x2[:len(r)], x3[:len(r)]
			var f0, f1, f2, f3 uint64
			for j, rj := range r {
				f0 ^= rj & y0[j]
				f1 ^= rj & y1[j]
				f2 ^= rj & y2[j]
				f3 ^= rj & y3[j]
			}
			w0 |= uint64(bits.OnesCount64(f0)&1) << bit
			w1 |= uint64(bits.OnesCount64(f1)&1) << bit
			w2 |= uint64(bits.OnesCount64(f2)&1) << bit
			w3 |= uint64(bits.OnesCount64(f3)&1) << bit
		}
		d0[o], d1[o], d2[o], d3[o] = w0, w1, w2, w3
	}
}

// SketchDistance returns the Hamming distance between two sketches. It is a
// convenience alias that documents intent at call sites.
func SketchDistance(a, b bitvec.Vector) int { return bitvec.Distance(a, b) }

// ExpectedFraction returns the expected normalized sketch distance between
// two points at Hamming distance dist, for a matrix drawn with parameter p:
// each row's parity bits differ independently with probability
// ½(1 − (1−2p)^dist).
func ExpectedFraction(p float64, dist float64) float64 {
	return 0.5 * (1 - math.Pow(1-2*p, dist))
}

// Delta is the paper's δ(β, α): with p = 1/(4β), it equals the gap between
// the expected normalized sketch distances at point distances αβ and β,
//
//	δ(β,α) = ½(1−1/(2β))^β · [1 − (1−1/(2β))^{(α−1)β}]
//	       = f(αβ) − f(β)   where f(D) = ½(1 − (1−1/(2β))^D).
func Delta(beta, alpha float64) float64 {
	base := 1 - 1/(2*beta)
	return 0.5 * math.Pow(base, beta) * (1 - math.Pow(base, (alpha-1)*beta))
}
