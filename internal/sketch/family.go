package sketch

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/par"
	"repro/internal/rng"
)

// Params configures a sketch family for one (d, n, γ) problem instance.
// C1 and C2 are the paper's c₁, c₂ from Definition 7 — there they must
// exceed 64/(1−e^{(1−α)/2})² for the union bound; here they are calibrated
// empirically (see DESIGN.md §3.2) and validated by experiment E7.
type Params struct {
	D     int     // dimension of the Hamming cube
	N     int     // database size (rows scale with log n)
	Gamma float64 // approximation ratio γ > 1 (α = √γ)
	C1    float64 // accurate-sketch row multiplier: rows = C1·log₂(n)
	C2    float64 // coarse-sketch row multiplier: rows = C2·log₂(n)/S
	S     float64 // Algorithm 2's s parameter; <= 0 means no coarse family
	Seed  uint64  // public randomness shared by prober and tables

	// CutFraction places the membership threshold at f(αⁱ) + CutFraction·δ
	// between the expected sketch fractions at radii αⁱ and αⁱ⁺¹.
	// Zero selects the default 0.5 (midpoint). Exposed for the threshold
	// ablation (experiment E11).
	CutFraction float64
	// LiteralDeltaCut reproduces the paper's Definition 7 test exactly as
	// written — threshold δ(αⁱ,α)·rows, *below* the expectation at radius
	// αⁱ — for the ablation documenting why the midpoint reading is the
	// correct one (DESIGN.md §3.3).
	LiteralDeltaCut bool
}

// DefaultC1 and DefaultC2 are the calibrated row multipliers. They keep the
// measured Assumption 2/3 failure rate well under the paper's 1/4 budget at
// the scales the harness runs (experiment E7).
const (
	DefaultC1 = 24.0
	DefaultC2 = 24.0
)

// Family holds the per-level matrices of Definition 7: Accurate[i] = M_i
// and Coarse[j] = N_j for 0 <= i, j <= L, where L = ⌈log_α d⌉.
//
// The family is the *public randomness* of the schemes: the same Family
// value is handed to the table oracles (to build cell contents) and to the
// cell-probing algorithm (to compute addresses M_i·x), exactly as in the
// paper's public-coin presentation.
type Family struct {
	P        Params
	Alpha    float64
	L        int // top level; Radius(L) >= d
	Accurate []*Matrix
	Coarse   []*Matrix // nil when P.S <= 0
}

// NewFamily draws the full matrix family from the seed in p.
func NewFamily(p Params) *Family { return NewFamilyParallel(p, 1) }

// NewFamilyParallel draws the same family as NewFamily across a worker
// pool: every matrix comes from its own rng.Split child (splitting does
// not advance the parent source), so the draw is bit-identical for any
// worker count and any completion order.
func NewFamilyParallel(p Params, workers int) *Family {
	f := newFamilyShell(p)
	p = f.P
	root := rng.New(p.Seed)
	accRows := rowCount(p.C1, p.N)
	f.Accurate = make([]*Matrix, f.L+1)
	var coarseRows int
	if p.S > 0 {
		coarseRows = rowCount(p.C2/p.S, p.N)
		f.Coarse = make([]*Matrix, f.L+1)
	}
	tasks := len(f.Accurate) + len(f.Coarse)
	par.Do(workers, tasks, func(t int) {
		if t <= f.L {
			prob := 1 / (4 * f.Radius(t))
			f.Accurate[t] = NewBernoulli(root.Split(uint64(t)), accRows, p.D, prob)
		} else {
			j := t - f.L - 1
			prob := 1 / (4 * f.Radius(j))
			f.Coarse[j] = NewBernoulli(root.Split(1<<32|uint64(j)), coarseRows, p.D, prob)
		}
	})
	return f
}

// newFamilyShell validates and normalizes p and derives alpha and L.
func newFamilyShell(p Params) *Family {
	if p.Gamma <= 1 {
		panic(fmt.Sprintf("sketch: gamma must exceed 1, got %v", p.Gamma))
	}
	if p.D < 2 || p.N < 2 {
		panic(fmt.Sprintf("sketch: degenerate instance d=%d n=%d", p.D, p.N))
	}
	if p.C1 <= 0 {
		p.C1 = DefaultC1
	}
	if p.C2 <= 0 {
		p.C2 = DefaultC2
	}
	alpha := math.Sqrt(p.Gamma)
	L := int(math.Ceil(math.Log(float64(p.D)) / math.Log(alpha)))
	if L < 1 {
		L = 1
	}
	return &Family{P: p, Alpha: alpha, L: L}
}

// Shape describes the derived geometry of the family NewFamily would
// build for p: the level count, the per-level Bernoulli scale base, and
// the row counts. The snapshot layer uses it to validate section lengths
// and to rebind loaded matrix blocks without drawing anything.
type Shape struct {
	L          int     // top level
	Alpha      float64 // per-level radius base (radius(i) = Alpha^i)
	AccRows    int     // rows of every accurate matrix M_i
	CoarseRows int     // rows of every coarse matrix N_j (0 when S <= 0)
}

// ShapeOf computes the family shape for p (after the same normalization
// NewFamily applies).
func ShapeOf(p Params) Shape {
	f := newFamilyShell(p)
	sh := Shape{L: f.L, Alpha: f.Alpha, AccRows: rowCount(f.P.C1, f.P.N)}
	if f.P.S > 0 {
		sh.CoarseRows = rowCount(f.P.C2/f.P.S, f.P.N)
	}
	return sh
}

// Prob returns the Bernoulli parameter matrices at level i are drawn
// with: 1/(4·αⁱ).
func (sh Shape) Prob(i int) float64 { return 1 / (4 * math.Pow(sh.Alpha, float64(i))) }

// NewFamilyFromMatrices rebinds a family to already-materialized matrices
// (the snapshot load path). The matrices must have the shapes NewFamily
// would have drawn for p; coarse may be nil when p.S <= 0.
func NewFamilyFromMatrices(p Params, accurate, coarse []*Matrix) (*Family, error) {
	f := newFamilyShell(p)
	if len(accurate) != f.L+1 {
		return nil, fmt.Errorf("sketch: %d accurate matrices, want %d", len(accurate), f.L+1)
	}
	if f.P.S > 0 && len(coarse) != f.L+1 {
		return nil, fmt.Errorf("sketch: %d coarse matrices, want %d", len(coarse), f.L+1)
	}
	if f.P.S <= 0 && len(coarse) != 0 {
		return nil, fmt.Errorf("sketch: %d coarse matrices for a family with S <= 0", len(coarse))
	}
	for i, m := range accurate {
		if m.Dim != p.D {
			return nil, fmt.Errorf("sketch: accurate matrix %d has dim %d, want %d", i, m.Dim, p.D)
		}
	}
	for j, m := range coarse {
		if m.Dim != p.D {
			return nil, fmt.Errorf("sketch: coarse matrix %d has dim %d, want %d", j, m.Dim, p.D)
		}
	}
	f.Accurate = accurate
	f.Coarse = coarse
	return f, nil
}

func rowCount(mult float64, n int) int {
	rows := int(math.Ceil(mult * math.Log2(float64(n))))
	if rows < 4 {
		rows = 4
	}
	return rows
}

// Radius returns αⁱ, the ball radius of level i.
func (f *Family) Radius(i int) float64 { return math.Pow(f.Alpha, float64(i)) }

// AccurateRows returns the number of rows of every M_i.
func (f *Family) AccurateRows() int { return f.Accurate[0].NumRows }

// CoarseRows returns the number of rows of every N_j (0 if no coarse family).
func (f *Family) CoarseRows() int {
	if f.Coarse == nil {
		return 0
	}
	return f.Coarse[0].NumRows
}

// AccurateThreshold returns the integer sketch-distance cut for membership
// in C_i: dist(M_i x, M_i z) <= AccurateThreshold(i) classifies z as within
// radius ~αⁱ of x. The cut sits at the midpoint f(αⁱ) + δ(αⁱ,α)/2 between
// the expected fractions at radii αⁱ and αⁱ⁺¹ (DESIGN.md §3.3).
func (f *Family) AccurateThreshold(i int) int {
	return f.thresholdFor(f.Radius(i), f.AccurateRows())
}

// CoarseThreshold is the analogous cut for the coarse matrices N_j,
// defining membership in D_{i,j}.
func (f *Family) CoarseThreshold(j int) int {
	if f.Coarse == nil {
		panic("sketch: no coarse family configured (Params.S <= 0)")
	}
	return f.thresholdFor(f.Radius(j), f.CoarseRows())
}

func (f *Family) thresholdFor(beta float64, rows int) int {
	if f.P.LiteralDeltaCut {
		return int(math.Floor(Delta(beta, f.Alpha) * float64(rows)))
	}
	frac := f.P.CutFraction
	if frac == 0 {
		frac = 0.5
	}
	p := 1 / (4 * beta)
	cut := ExpectedFraction(p, beta) + frac*Delta(beta, f.Alpha)
	return int(math.Floor(cut * float64(rows)))
}

// InC reports whether sketchZ is classified as a member of C_i relative to
// the query sketch sketchX (both under M_i).
func (f *Family) InC(i int, sketchX, sketchZ bitvec.Vector) bool {
	return bitvec.DistanceAtMost(sketchX, sketchZ, f.AccurateThreshold(i))
}

// InD reports whether coarse sketches classify z within level j, the
// D_{i,j} membership test of Definition 7 (the C_i restriction is applied
// by the caller, which intersects with the accurate test).
func (f *Family) InD(j int, coarseX, coarseZ bitvec.Vector) bool {
	return bitvec.DistanceAtMost(coarseX, coarseZ, f.CoarseThreshold(j))
}

// NominalTableCells returns the paper's nominal cell count for one ball
// table T_i: 2^{c₁·log₂ n} = n^{c₁} addresses, in the log₂ domain to avoid
// overflow. Used only for space accounting (experiment E8).
func (f *Family) NominalTableCells() float64 {
	return float64(f.AccurateRows())
}
