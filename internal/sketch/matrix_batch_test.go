package sketch

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

// oracleApply is the pre-kernel reference: per-row Parity, per-bit Set,
// explicit zeroing. The word-accumulating ApplyInto must match it exactly.
func oracleApply(m *Matrix, x bitvec.Vector) bitvec.Vector {
	dst := bitvec.New(m.NumRows)
	for i := 0; i < m.NumRows; i++ {
		if bitvec.Parity(m.Row(i), x) == 1 {
			dst.Set(i, true)
		}
	}
	return dst
}

func TestApplyIntoMatchesOracle(t *testing.T) {
	r := rng.New(77)
	for _, shape := range []struct{ rows, d int }{
		{1, 1}, {7, 64}, {63, 100}, {64, 128}, {65, 129}, {96, 1024}, {192, 257}, {300, 4096},
	} {
		m := NewBernoulli(r, shape.rows, shape.d, 0.05)
		for trial := 0; trial < 4; trial++ {
			x := hamming.Random(r, shape.d)
			want := oracleApply(m, x)
			got := m.Apply(x)
			if !bitvec.Equal(got, want) {
				t.Fatalf("%dx%d trial %d: ApplyInto diverges from oracle", shape.rows, shape.d, trial)
			}
		}
	}
}

// TestApplyIntoFoldsZeroing checks the documented contract that dst is
// fully overwritten: stale garbage in dst must not survive.
func TestApplyIntoFoldsZeroing(t *testing.T) {
	r := rng.New(78)
	m := NewBernoulli(r, 100, 512, 0.1)
	x := hamming.Random(r, 512)
	dst := bitvec.New(m.NumRows)
	for i := range dst {
		dst[i] = ^uint64(0)
	}
	m.ApplyInto(dst, x)
	if !bitvec.Equal(dst, oracleApply(m, x)) {
		t.Fatal("stale dst contents leaked through ApplyInto")
	}
	if got := dst.TruncateToDim(m.NumRows); !bitvec.Equal(got, dst) {
		t.Fatal("ApplyInto set bits beyond NumRows")
	}
}

// TestApplyBatchIntoQuickCheck is the satellite quick-check: for random
// shapes and batch sizes (covering the blocked body, the scalar tail, and
// the empty batch), ApplyBatchInto must equal B independent ApplyInto
// calls.
func TestApplyBatchIntoQuickCheck(t *testing.T) {
	r := rng.New(79)
	for trial := 0; trial < 60; trial++ {
		rows := 1 + int(r.Uint64()%200)
		d := 1 + int(r.Uint64()%2048)
		b := int(r.Uint64() % 11) // 0..10: tails of every length mod batchWidth
		m := NewBernoulli(r, rows, d, 0.07)
		xs := make([]bitvec.Vector, b)
		dsts := make([]bitvec.Vector, b)
		want := make([]bitvec.Vector, b)
		for q := 0; q < b; q++ {
			xs[q] = hamming.Random(r, d)
			dsts[q] = bitvec.New(rows)
			for i := range dsts[q] {
				dsts[q][i] = ^uint64(0) // stale garbage must be overwritten
			}
			want[q] = m.ApplyInto(bitvec.New(rows), xs[q])
		}
		m.ApplyBatchInto(dsts, xs)
		for q := 0; q < b; q++ {
			if !bitvec.Equal(dsts[q], want[q]) {
				t.Fatalf("trial %d (%dx%d, batch %d): query %d diverges from independent ApplyInto",
					trial, rows, d, b, q)
			}
		}
	}
}

func TestApplyBatchIntoShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on len(dsts) != len(xs)")
		}
	}()
	r := rng.New(80)
	m := NewBernoulli(r, 8, 64, 0.1)
	m.ApplyBatchInto(make([]bitvec.Vector, 2), make([]bitvec.Vector, 3))
}

// TestApplyBlockIntoQuickCheck pins the build-path block form against
// per-row ApplyInto across random shapes, including row counts in every
// residue class of the block width.
func TestApplyBlockIntoQuickCheck(t *testing.T) {
	r := rng.New(81)
	for trial := 0; trial < 40; trial++ {
		rows := 1 + int(r.Uint64()%150)
		d := 1 + int(r.Uint64()%1024)
		n := int(r.Uint64() % 23) // 0..22 database rows
		m := NewBernoulli(r, rows, d, 0.08)
		src := bitvec.NewBlock(n, d)
		for i := 0; i < n; i++ {
			copy(src.Row(i), hamming.Random(r, d))
		}
		dst := bitvec.NewBlock(n, rows)
		m.ApplyBlockInto(dst, src)
		for i := 0; i < n; i++ {
			want := m.ApplyInto(bitvec.New(rows), src.Row(i))
			if !bitvec.Equal(dst.Row(i), want) {
				t.Fatalf("trial %d (%dx%d, n=%d): row %d diverges", trial, rows, d, n, i)
			}
		}
	}
}

func TestApplyBlockIntoShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on dst.Rows() != src.Rows()")
		}
	}()
	r := rng.New(82)
	m := NewBernoulli(r, 8, 64, 0.1)
	m.ApplyBlockInto(bitvec.NewBlock(2, 8), bitvec.NewBlock(3, 64))
}
