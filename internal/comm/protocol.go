// Package comm implements the communication-complexity substrate of the
// paper's lower bound (§4.2): two-party protocols with per-round message
// size vectors (Definition 17), the translation from cell-probing schemes
// to protocols (Proposition 18), the message-switching transformation
// (Lemma 20) executed concretely on finite protocols, and a finite-domain
// Newman sampling (the Lemma 5 public→private coin step).
//
// The round-elimination *lemma* itself is a probabilistic existence
// argument, not an algorithm; what is executable about it — protocol
// representation, size accounting, the switching transformation, and
// distributional error measurement — is implemented and tested here, and
// the lower bound it yields is exposed to the harness as a theory curve.
package comm

import (
	"fmt"
)

// Deterministic is a deterministic alternating protocol on finite input
// spaces: Alice holds x ∈ [NX], Bob holds y ∈ [NY]. Messages alternate
// starting with the first entry of Msgs; sizes are in bits and messages
// are integers in [0, 2^bits). Output is computed by Alice from x and the
// full transcript.
type Deterministic struct {
	NX, NY int
	// AliceStarts selects who sends Msgs[0].
	AliceStarts bool
	// Bits[i] is the size of the i-th message in bits.
	Bits []int
	// Msg[i] computes the i-th message from the sender's input and the
	// transcript so far (messages 0..i-1).
	Msg []func(own int, transcript []int) int
	// Output computes Alice's answer from x and the full transcript.
	Output func(x int, transcript []int) int
}

// Validate checks structural consistency.
func (p *Deterministic) Validate() error {
	if len(p.Bits) != len(p.Msg) {
		return fmt.Errorf("comm: %d sizes but %d message functions", len(p.Bits), len(p.Msg))
	}
	for i, b := range p.Bits {
		if b < 0 || b > 62 {
			return fmt.Errorf("comm: message %d size %d out of simulable range", i, b)
		}
	}
	if p.Output == nil {
		return fmt.Errorf("comm: missing output function")
	}
	return nil
}

// senderIsAlice reports whether message i is Alice's.
func (p *Deterministic) senderIsAlice(i int) bool {
	if p.AliceStarts {
		return i%2 == 0
	}
	return i%2 == 1
}

// Run executes the protocol and returns Alice's output and the transcript.
func (p *Deterministic) Run(x, y int) (out int, transcript []int) {
	transcript = make([]int, 0, len(p.Msg))
	for i, f := range p.Msg {
		own := y
		if p.senderIsAlice(i) {
			own = x
		}
		m := f(own, transcript)
		if max := 1 << uint(p.Bits[i]); m < 0 || m >= max {
			panic(fmt.Sprintf("comm: message %d value %d exceeds %d bits", i, m, p.Bits[i]))
		}
		transcript = append(transcript, m)
	}
	return p.Output(x, transcript), transcript
}

// TotalBits returns the total communication in bits.
func (p *Deterministic) TotalBits() int {
	t := 0
	for _, b := range p.Bits {
		t += b
	}
	return t
}

// AliceBits and BobBits split TotalBits by sender.
func (p *Deterministic) AliceBits() int {
	t := 0
	for i, b := range p.Bits {
		if p.senderIsAlice(i) {
			t += b
		}
	}
	return t
}

// BobBits returns Bob's share of the communication.
func (p *Deterministic) BobBits() int { return p.TotalBits() - p.AliceBits() }

// Problem is a finite communication problem: Correct reports whether
// answer z is acceptable for inputs (x, y). (Data-structure problems are
// relations, so multiple answers may be correct.)
type Problem struct {
	NX, NY  int
	Correct func(x, y, z int) bool
}

// Err measures the distributional error of p on the uniform distribution
// over X×Y (the measure the round-elimination argument manipulates).
func Err(p *Deterministic, prob Problem) float64 {
	bad := 0
	for x := 0; x < prob.NX; x++ {
		for y := 0; y < prob.NY; y++ {
			out, _ := p.Run(x, y)
			if !prob.Correct(x, y, out) {
				bad++
			}
		}
	}
	return float64(bad) / float64(prob.NX*prob.NY)
}

// ErrOn measures error on an explicit distribution over input pairs.
func ErrOn(p *Deterministic, prob Problem, pairs [][2]int) float64 {
	if len(pairs) == 0 {
		return 0
	}
	bad := 0
	for _, xy := range pairs {
		out, _ := p.Run(xy[0], xy[1])
		if !prob.Correct(xy[0], xy[1], out) {
			bad++
		}
	}
	return float64(bad) / float64(len(pairs))
}
