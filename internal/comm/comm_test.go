package comm

import (
	"testing"

	"repro/internal/cellprobe"
)

// eqProblem: Alice and Bob hold 3-bit values; Alice must output 1 iff they
// are equal. A 2-message protocol solves it exactly.
func eqProblem() Problem {
	return Problem{NX: 8, NY: 8, Correct: func(x, y, z int) bool {
		want := 0
		if x == y {
			want = 1
		}
		return z == want
	}}
}

// eqProtocol is the trivial ⟨(3),(3),2⟩ᴬ protocol: Alice sends x, Bob
// echoes y... actually Bob sends whether they match is impossible (he does
// not know the answer semantics); Bob sends y and Alice compares.
func eqProtocol() *Deterministic {
	return &Deterministic{
		NX: 8, NY: 8, AliceStarts: true,
		Bits: []int{3, 3},
		Msg: []func(int, []int) int{
			func(x int, _ []int) int { return x },
			func(y int, _ []int) int { return y },
		},
		Output: func(x int, tr []int) int {
			if x == tr[1] {
				return 1
			}
			return 0
		},
	}
}

func TestRunAndErr(t *testing.T) {
	p := eqProtocol()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	out, tr := p.Run(5, 5)
	if out != 1 || len(tr) != 2 {
		t.Fatalf("Run(5,5) = %d, tr %v", out, tr)
	}
	out, _ = p.Run(5, 6)
	if out != 0 {
		t.Fatal("Run(5,6) = 1")
	}
	if e := Err(p, eqProblem()); e != 0 {
		t.Errorf("exact protocol has error %v", e)
	}
}

func TestErrOnDistribution(t *testing.T) {
	// A broken protocol that always outputs 1 errs exactly on unequal pairs.
	p := eqProtocol()
	p.Output = func(int, []int) int { return 1 }
	pairs := [][2]int{{1, 1}, {1, 2}, {3, 3}, {4, 5}}
	if e := ErrOn(p, eqProblem(), pairs); e != 0.5 {
		t.Errorf("ErrOn = %v, want 0.5", e)
	}
	if ErrOn(p, eqProblem(), nil) != 0 {
		t.Error("empty distribution not 0")
	}
}

func TestBitAccounting(t *testing.T) {
	p := &Deterministic{
		NX: 2, NY: 2, AliceStarts: true,
		Bits: []int{3, 5, 2, 7},
		Msg: []func(int, []int) int{
			func(int, []int) int { return 0 },
			func(int, []int) int { return 0 },
			func(int, []int) int { return 0 },
			func(int, []int) int { return 0 },
		},
		Output: func(int, []int) int { return 0 },
	}
	if p.TotalBits() != 17 || p.AliceBits() != 5 || p.BobBits() != 12 {
		t.Errorf("bits: total=%d alice=%d bob=%d", p.TotalBits(), p.AliceBits(), p.BobBits())
	}
	// Bob-first protocol flips the split.
	p.AliceStarts = false
	if p.AliceBits() != 12 || p.BobBits() != 5 {
		t.Error("bob-first split wrong")
	}
}

func TestValidateRejects(t *testing.T) {
	p := eqProtocol()
	p.Bits = []int{4}
	if p.Validate() == nil {
		t.Error("mismatched sizes accepted")
	}
	p = eqProtocol()
	p.Bits[0] = 63
	if p.Validate() == nil {
		t.Error("oversized message accepted")
	}
	p = eqProtocol()
	p.Output = nil
	if p.Validate() == nil {
		t.Error("missing output accepted")
	}
}

func TestRunPanicsOnOversizedMessage(t *testing.T) {
	p := eqProtocol()
	p.Msg[0] = func(int, []int) int { return 8 } // needs 4 bits, declared 3
	defer func() {
		if recover() == nil {
			t.Fatal("oversized message did not panic")
		}
	}()
	p.Run(0, 0)
}

// TestSwitchFirstMessageEquivalence is the central Lemma 20 check: the
// switched protocol computes the identical output on *every* input pair,
// with one fewer round and the stated size trade.
func TestSwitchFirstMessageEquivalence(t *testing.T) {
	p := eqProtocol()
	q, err := SwitchFirstMessage(p)
	if err != nil {
		t.Fatal(err)
	}
	if q.AliceStarts {
		t.Error("switched protocol still Alice-first")
	}
	if len(q.Msg) != len(p.Msg) {
		// 2-message original: Bob's packed opening + Alice's merged m1.
		t.Logf("message counts: %d -> %d", len(p.Msg), len(q.Msg))
	}
	if q.Bits[0] != p.Bits[1]*(1<<uint(p.Bits[0])) {
		t.Errorf("opening size %d, want b1·2^a1 = %d", q.Bits[0], p.Bits[1]*(1<<uint(p.Bits[0])))
	}
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			wantOut, _ := p.Run(x, y)
			gotOut, _ := q.Run(x, y)
			if wantOut != gotOut {
				t.Fatalf("outputs differ at (%d,%d): %d vs %d", x, y, wantOut, gotOut)
			}
		}
	}
}

// TestSwitchFourMessageProtocol exercises the reconstruction path for a
// protocol with messages after the merged pair.
func TestSwitchFourMessageProtocol(t *testing.T) {
	// Problem: output (x + y) mod 4, via a chatty 4-message protocol whose
	// later messages depend on the earlier transcript.
	p := &Deterministic{
		NX: 4, NY: 4, AliceStarts: true,
		Bits: []int{2, 2, 2, 2},
		Msg: []func(int, []int) int{
			func(x int, _ []int) int { return x },
			func(y int, tr []int) int { return (y + tr[0]) % 4 },
			func(x int, tr []int) int { return (x ^ tr[1]) % 4 },
			func(y int, tr []int) int { return (y + tr[2]) % 4 },
		},
		Output: func(x int, tr []int) int { return (x + tr[3] + tr[1]) % 4 },
	}
	q, err := SwitchFirstMessage(p)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 4; x++ {
		for y := 0; y < 4; y++ {
			wantOut, _ := p.Run(x, y)
			gotOut, _ := q.Run(x, y)
			if wantOut != gotOut {
				t.Fatalf("outputs differ at (%d,%d): %d vs %d", x, y, wantOut, gotOut)
			}
		}
	}
	// One less message.
	if len(q.Msg) != len(p.Msg)-1 {
		t.Errorf("switched protocol has %d messages, want %d", len(q.Msg), len(p.Msg)-1)
	}
}

func TestSwitchRejects(t *testing.T) {
	p := eqProtocol()
	p.AliceStarts = false
	if _, err := SwitchFirstMessage(p); err == nil {
		t.Error("Bob-first protocol accepted")
	}
	big := eqProtocol()
	big.Bits = []int{20, 20}
	if _, err := SwitchFirstMessage(big); err == nil {
		t.Error("untabulatable sizes accepted")
	}
}

// TestClaim26ZeroCommunicationLPM verifies the paper's terminal claim: a
// protocol with no communication solving LPM over Σ with |DB| = 1 succeeds
// with probability at most 1/|Σ| — exhaustively, for every deterministic
// zero-communication strategy on a small alphabet.
func TestClaim26ZeroCommunicationLPM(t *testing.T) {
	const sigma = 5
	// LPM with m=1, n=1: Bob holds one symbol y, Alice holds x; the correct
	// answer is y itself (the only database string). Alice must output y
	// without communication. Any deterministic Alice is a function of x
	// only; over uniform y, each x succeeds on exactly one y.
	prob := Problem{NX: sigma, NY: sigma, Correct: func(x, y, z int) bool { return z == y }}
	for strategy := 0; strategy < sigma; strategy++ {
		strategy := strategy
		p := &Deterministic{
			NX: sigma, NY: sigma, AliceStarts: true,
			Bits:   nil,
			Msg:    nil,
			Output: func(x int, _ []int) int { return (x + strategy) % sigma },
		}
		if e := Err(p, prob); e < 1-1.0/sigma-1e-12 {
			t.Errorf("strategy %d: error %v below 1 − 1/|Σ|", strategy, e)
		}
	}
}

func TestTranslateAccounting(t *testing.T) {
	o1 := cellprobe.NewOracle(cellprobe.GenericTag(1), 10, 64, nil, func(cellprobe.Addr) cellprobe.Word { return cellprobe.EmptyWord })
	o2 := cellprobe.NewOracle(cellprobe.GenericTag(2), 6.2, 32, nil, func(cellprobe.Addr) cellprobe.Word { return cellprobe.EmptyWord })
	addr := func(t cellprobe.Tag, v uint64) cellprobe.Addr { return cellprobe.VecAddr(t, []uint64{v}) }
	p := cellprobe.NewRecordingQueryCtx(2)
	p.Round([]cellprobe.Ref{{Table: o1, Addr: addr(o1.Tag(), 1)}, {Table: o2, Addr: addr(o2.Tag(), 2)}})
	p.Round([]cellprobe.Ref{{Table: o1, Addr: addr(o1.Tag(), 3)}})
	tr := Translate(p.Transcript())
	if tr.ProbeRounds != 2 || tr.CommRounds != 4 {
		t.Errorf("rounds: %+v", tr)
	}
	// Round 0: addresses 10 + 7 bits; contents 64 + 32 bits.
	if tr.A[0] != 17 || tr.B[0] != 96 {
		t.Errorf("round 0 sizes a=%d b=%d", tr.A[0], tr.B[0])
	}
	if tr.A[1] != 10 || tr.B[1] != 64 {
		t.Errorf("round 1 sizes a=%d b=%d", tr.A[1], tr.B[1])
	}
	if tr.AliceTotal != 27 || tr.BobTotal != 160 {
		t.Errorf("totals %d/%d", tr.AliceTotal, tr.BobTotal)
	}
}

func TestNewmanSample(t *testing.T) {
	// Family of protocols: protocol s computes equality correctly except on
	// the single diagonal input (s mod 8), mimicking seed-dependent error.
	prob := eqProblem()
	var family []*Deterministic
	for s := 0; s < 40; s++ {
		s := s
		p := eqProtocol()
		p.Output = func(x int, tr []int) int {
			if x == s%8 && tr[1] == s%8 {
				return 0 // err on this diagonal point
			}
			if x == tr[1] {
				return 1
			}
			return 0
		}
		family = append(family, p)
	}
	seeds := make([]int, 40)
	for i := range seeds {
		seeds[i] = i
	}
	// Each input pair errs on at most ⌈40/8⌉ = 5 of 40 protocols, so a
	// sample of 8 with target error 1/2 must verify.
	chosen := NewmanSample(family, prob, seeds, 8, 0.5)
	if chosen == nil {
		t.Fatal("Newman sample failed")
	}
	if len(chosen) != 8 {
		t.Errorf("sample size %d", len(chosen))
	}
	// Impossible target: every protocol errs somewhere, target 0 fails.
	if NewmanSample(family, prob, seeds, 8, 0) != nil {
		t.Error("zero-error sample accepted")
	}
	if NewmanSample(family, prob, seeds, 100, 0.5) != nil {
		t.Error("oversized sample accepted")
	}
}
