package comm

import "fmt"

// SwitchFirstMessage is Lemma 20 (the message switching lemma), executed
// concretely: given a deterministic ⟨A,B,2k⟩ᴬ-protocol (Alice speaks
// first), produce an equivalent ⟨A′,B′,2k−1⟩ᴮ-protocol in which Bob opens
// by sending his round-1 responses to *all* 2^{a₁} possible Alice
// messages (b₁·2^{a₁} bits), after which Alice — who can now compute
// Bob's reply locally — merges her first two messages into one.
//
// The transformed protocol computes exactly the same output on every
// input pair; the cost is the message-size trade the lemma states:
// A′ = (a₁+a₂, a₃, …), B′ = (b₁·2^{a₁}, b₂, …).
func SwitchFirstMessage(p *Deterministic) (*Deterministic, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.AliceStarts {
		return nil, fmt.Errorf("comm: switching needs an Alice-first protocol")
	}
	if len(p.Msg) < 2 {
		return nil, fmt.Errorf("comm: switching needs at least two messages")
	}
	a1 := p.Bits[0]
	b1 := p.Bits[1]
	if a1+b1 > 24 || b1*(1<<uint(a1)) > 60 {
		return nil, fmt.Errorf("comm: first-round sizes a1=%d b1=%d too large to tabulate", a1, b1)
	}
	numA := 1 << uint(a1)
	bigB := b1 * numA // Bob's new opening message size in bits

	rest := []int{}
	if len(p.Bits) > 3 {
		rest = p.Bits[3:]
	}
	q := &Deterministic{
		NX: p.NX, NY: p.NY,
		AliceStarts: false,
		Bits:        append([]int{bigB, a1 + p.bitsAt(2)}, rest...),
	}
	// decodeBob extracts Bob's original round-1 reply to Alice message ma
	// from the packed opening message.
	decodeBob := func(packed, ma int) int {
		return (packed >> uint(ma*b1)) & ((1 << uint(b1)) - 1)
	}
	// Bob's opening: tabulate his original first response for every
	// possible Alice message.
	q.Msg = append(q.Msg, func(y int, _ []int) int {
		packed := 0
		for ma := 0; ma < numA; ma++ {
			r := p.Msg[1](y, []int{ma})
			packed |= r << uint(ma*b1)
		}
		return packed
	})
	// Alice's merged message: her original m1, concatenated with her
	// original m2 computed using Bob's (now locally known) reply.
	q.Msg = append(q.Msg, func(x int, tr []int) int {
		m1 := p.Msg[0](x, nil)
		if len(p.Msg) == 2 {
			return m1
		}
		r1 := decodeBob(tr[0], m1)
		m2 := p.Msg[2](x, []int{m1, r1})
		return m1 | m2<<uint(a1)
	})
	// Remaining messages: reconstruct the original transcript prefix from
	// the packed opening plus merged message, then defer to the original.
	reconstruct := func(tr []int) []int {
		m1 := tr[1] & ((1 << uint(a1)) - 1)
		r1 := decodeBob(tr[0], m1)
		orig := []int{m1, r1}
		if len(p.Msg) > 2 {
			orig = append(orig, tr[1]>>uint(a1))
		}
		orig = append(orig, tr[2:]...)
		return orig
	}
	for i := 3; i < len(p.Msg); i++ {
		i := i
		q.Msg = append(q.Msg, func(own int, tr []int) int {
			return p.Msg[i](own, reconstruct(tr)[:i])
		})
	}
	q.Output = func(x int, tr []int) int {
		return p.Output(x, reconstruct(tr))
	}
	return q, nil
}

// bitsAt returns p.Bits[i], or 0 past the end (used when the original
// protocol has exactly two messages).
func (p *Deterministic) bitsAt(i int) int {
	if i >= len(p.Bits) {
		return 0
	}
	return p.Bits[i]
}
