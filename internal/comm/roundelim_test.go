package comm

import (
	"testing"

	"repro/internal/lpm"
	"repro/internal/rng"
)

func randStrings(r *rng.Source, sigma, m, n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		s := make([]int, m)
		for j := range s {
			s[j] = r.Intn(sigma)
		}
		out[i] = s
	}
	return out
}

func shortInstance(db [][]int, sigma int) *lpm.Instance {
	return &lpm.Instance{Sigma: sigma, M: len(db[0]), DB: db}
}

// TestPartICorrectnessTransfer: solving the embedded long instance with an
// exact solver and projecting yields exact short LPM answers — the
// property Part I's proof needs from the construction of Q′′.
func TestPartICorrectnessTransfer(t *testing.T) {
	r := rng.New(1)
	const sigma, blockLen, p = 3, 2, 4
	for _, i := range []int{1, 2, 4} {
		e, err := NewPartIEmbedding(r.Split(uint64(i)), p, i, blockLen, sigma)
		if err != nil {
			t.Fatal(err)
		}
		db := randStrings(r, sigma, blockLen, 12)
		in := shortInstance(db, sigma)
		for q := 0; q < 30; q++ {
			x := randStrings(r, sigma, blockLen, 1)[0]
			ans := e.Solve(TrieSolver, x, db)
			if !in.IsCorrect(x, ans) {
				t.Fatalf("i=%d: embedded answer %d has LCP %d, best %d",
					i, ans, lpm.LCP(db[ans], x), in.BestLCP(x))
			}
		}
	}
}

// TestPartIEmbeddingShape: embedded strings have length p·blockLen, share
// the prefix, and index alignment holds.
func TestPartIEmbeddingShape(t *testing.T) {
	r := rng.New(2)
	e, err := NewPartIEmbedding(r, 3, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	db := randStrings(r, 4, 2, 5)
	long := e.EmbedDB(db)
	if len(long) != len(db) {
		t.Fatal("embedding changed database size")
	}
	for _, y := range long {
		if len(y) != 3*2 {
			t.Fatalf("long string length %d", len(y))
		}
		// Prefix block (i−1 = 1 block) is shared.
		for j := 0; j < 2; j++ {
			if y[j] != e.Prefix[0][j] {
				t.Fatal("prefix not shared")
			}
		}
	}
	x := []int{1, 0}
	lx := e.EmbedQuery(x)
	if len(lx) != 6 || lx[2] != 1 || lx[3] != 0 {
		t.Fatalf("query embedding wrong: %v", lx)
	}
}

func TestPartIRejectsBadPosition(t *testing.T) {
	r := rng.New(3)
	if _, err := NewPartIEmbedding(r, 3, 0, 2, 3); err == nil {
		t.Error("position 0 accepted")
	}
	if _, err := NewPartIEmbedding(r, 3, 4, 2, 3); err == nil {
		t.Error("position past p accepted")
	}
}

// TestPartIICorrectnessTransfer: mixing the live database among decoys and
// prefixing the query with the live symbol transfers exact answers — the
// Q′ construction of Part II.
func TestPartIICorrectnessTransfer(t *testing.T) {
	r := rng.New(4)
	const sigma, m, q, nShort = 6, 3, 4, 8
	for slot := 0; slot < q; slot++ {
		e, err := NewPartIIEmbedding(r.Split(uint64(slot)), q, slot, nShort, m, sigma)
		if err != nil {
			t.Fatal(err)
		}
		db := randStrings(r, sigma, m, nShort)
		in := shortInstance(db, sigma)
		for qi := 0; qi < 25; qi++ {
			x := randStrings(r, sigma, m, 1)[0]
			ans, err := e.Solve(TrieSolver, x, db)
			if err != nil {
				t.Fatalf("slot %d: %v", slot, err)
			}
			if !in.IsCorrect(x, ans) {
				t.Fatalf("slot %d: answer %d has LCP %d, best %d",
					slot, ans, lpm.LCP(db[ans], x), in.BestLCP(x))
			}
		}
	}
}

// TestPartIIDetectsWrongSlotAnswers: a solver that returns a decoy string
// is flagged (the proof charges this to the long protocol's error).
func TestPartIIDetectsWrongSlotAnswers(t *testing.T) {
	r := rng.New(5)
	e, err := NewPartIIEmbedding(r, 3, 1, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	db := randStrings(r, 5, 2, 4)
	bad := LPMSolver(func(x []int, long [][]int) int { return 0 }) // always slot 0
	if _, err := bad.solveVia(e, db); err == nil {
		t.Error("decoy answer not flagged")
	}
}

// solveVia is a tiny helper so the test reads naturally.
func (s LPMSolver) solveVia(e *PartIIEmbedding, db [][]int) (int, error) {
	x := []int{0, 0}
	return e.Solve(s, x, db)
}

func TestPartIIRejects(t *testing.T) {
	r := rng.New(6)
	if _, err := NewPartIIEmbedding(r, 4, 0, 3, 2, 3); err == nil {
		t.Error("sigma < q accepted")
	}
	if _, err := NewPartIIEmbedding(r, 3, 3, 3, 2, 5); err == nil {
		t.Error("slot out of range accepted")
	}
}

// TestComposedRoundElimination: chain Part I then Part II — the shape of
// one full round-elimination step (LPM_{m,n} → LPM_{m/p,n} → reduce string
// length by the prefix symbol) — and verify exact transfer end to end.
func TestComposedRoundElimination(t *testing.T) {
	r := rng.New(7)
	const sigma, blockLen, p, q = 6, 2, 3, 3
	// Short instance: strings of length blockLen over sigma.
	db := randStrings(r, sigma, blockLen, 6)
	in := shortInstance(db, sigma)
	partII, err := NewPartIIEmbedding(r.Split(1), q, 1, len(db), blockLen, sigma)
	if err != nil {
		t.Fatal(err)
	}
	partI, err := NewPartIEmbedding(r.Split(2), p, 2, blockLen+1, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// The composed solver: short query → Part II embed (adds prefix
	// symbol) → Part I embed (pads to p blocks) → trie on the big instance.
	for qi := 0; qi < 20; qi++ {
		x := randStrings(r, sigma, blockLen, 1)[0]
		ans, err := partII.Solve(func(x2 []int, db2 [][]int) int {
			return partI.Solve(TrieSolver, x2, db2)
		}, x, db)
		if err != nil {
			t.Fatal(err)
		}
		if !in.IsCorrect(x, ans) {
			t.Fatalf("composed answer %d not a valid LPM answer", ans)
		}
	}
}

// TestTrieSolverIsExact anchors the reference solver itself.
func TestTrieSolverIsExact(t *testing.T) {
	r := rng.New(8)
	db := randStrings(r, 4, 3, 10)
	in := shortInstance(db, 4)
	for qi := 0; qi < 30; qi++ {
		x := randStrings(r, 4, 3, 1)[0]
		if !in.IsCorrect(x, TrieSolver(x, db)) {
			t.Fatal("TrieSolver returned a non-maximal-LCP answer")
		}
	}
}
