package comm

import (
	"fmt"

	"repro/internal/lpm"
	"repro/internal/rng"
)

// This file implements the *constructive* halves of the round elimination
// lemma for LPM (Lemma 19): the input-embedding protocols Q′′ (Part I) and
// Q′ (Part II) of §4.2. The lemma's existential steps (choosing the pair
// (i, σ) by averaging, Yao's min-max) pick parameters; given parameters,
// the embeddings below are concrete protocol transformations, and the
// tests verify the correctness-transfer property the proofs rely on:
// running the big protocol on embedded inputs and projecting the answer
// solves the small LPM instance.
//
// Strings are over a finite alphabet, represented as []int as in package
// lpm. A "protocol" here is abstracted to an answering oracle
// func(x, db) answer — the embeddings are input transformations and are
// independent of how the big instance is solved (the paper applies them to
// communication protocols; we apply them to any solver, including actual
// cell-probing schemes).

// LPMSolver answers LPM instances: given query x and database db (both of
// strings over the same alphabet), return the index of a database string
// with maximal LCP.
type LPMSolver func(x []int, db [][]int) int

// TrieSolver is the reference LPMSolver.
func TrieSolver(x []int, db [][]int) int {
	in := &lpm.Instance{Sigma: maxSymbol(db, x) + 1, M: len(db[0]), DB: db}
	idx, _ := lpm.NewTrie(in).Query(x)
	return idx
}

func maxSymbol(db [][]int, x []int) int {
	m := 0
	for _, s := range db {
		for _, c := range s {
			if c > m {
				m = c
			}
		}
	}
	for _, c := range x {
		if c > m {
			m = c
		}
	}
	return m
}

// PartIEmbedding is the Part I (query-side) reduction: solve
// LPM_{m/p, n} using a solver for LPM_{m, n}. Alice's short query x is
// embedded as σ ‖ x ‖ X_{i+1} … X_p (prefix σ of i−1 blocks, then x, then
// random suffix blocks), and every database string y as σ ‖ y ‖ s^{p−i}
// (the same prefix, then the fixed filler block s). The answer block at
// position i of the returned string is the LPM answer for the short
// instance.
type PartIEmbedding struct {
	P         int     // blocks per long string
	I         int     // the block position carrying the live instance (1-based)
	BlockLen  int     // symbols per block (m/p)
	Sigma     int     // alphabet size
	Prefix    [][]int // the fixed prefix σ: I−1 blocks
	Filler    []int   // the fixed block s for Bob's suffix
	SuffixRng *rng.Source
}

// NewPartIEmbedding draws a random prefix and filler, mirroring the
// averaging step's choice of (i, σ).
func NewPartIEmbedding(r *rng.Source, p, i, blockLen, sigma int) (*PartIEmbedding, error) {
	if i < 1 || i > p {
		return nil, fmt.Errorf("comm: block position %d outside [1, %d]", i, p)
	}
	e := &PartIEmbedding{P: p, I: i, BlockLen: blockLen, Sigma: sigma, SuffixRng: r.Split(1)}
	for b := 0; b < i-1; b++ {
		e.Prefix = append(e.Prefix, randomBlock(r, blockLen, sigma))
	}
	e.Filler = randomBlock(r, blockLen, sigma)
	return e, nil
}

func randomBlock(r *rng.Source, blockLen, sigma int) []int {
	b := make([]int, blockLen)
	for j := range b {
		b[j] = r.Intn(sigma)
	}
	return b
}

// EmbedQuery builds x̃ = σ ‖ x ‖ X_{i+1} … X_p with fresh random suffix
// blocks (Alice's private coins in the proof).
func (e *PartIEmbedding) EmbedQuery(x []int) []int {
	out := make([]int, 0, e.P*e.BlockLen)
	for _, b := range e.Prefix {
		out = append(out, b...)
	}
	out = append(out, x...)
	for b := e.I; b < e.P; b++ {
		out = append(out, randomBlock(e.SuffixRng, e.BlockLen, e.Sigma)...)
	}
	return out
}

// EmbedDB builds ỹ = σ ‖ y ‖ s^{p−i} for every database string.
func (e *PartIEmbedding) EmbedDB(db [][]int) [][]int {
	out := make([][]int, len(db))
	for i, y := range db {
		long := make([]int, 0, e.P*e.BlockLen)
		for _, b := range e.Prefix {
			long = append(long, b...)
		}
		long = append(long, y...)
		for b := e.I; b < e.P; b++ {
			long = append(long, e.Filler...)
		}
		out[i] = long
	}
	return out
}

// Solve answers the short instance through the long-instance solver.
// The returned index refers to the short database (embedding preserves
// indices).
func (e *PartIEmbedding) Solve(solver LPMSolver, x []int, db [][]int) int {
	return solver(e.EmbedQuery(x), e.EmbedDB(db))
}

// PartIIEmbedding is the Part II (database-side) reduction: solve
// LPM_{m−1, n/q} using a solver for LPM_{m, n}. The short database is
// prefixed with a distinguished symbol s_i; q−1 decoy databases are
// prefixed with the other distinguished symbols and mixed in. A query is
// prefixed with s_i; the long answer falls in the live sub-database
// because s_i matches only its strings' first symbol.
type PartIIEmbedding struct {
	Q       int       // number of sub-databases mixed together
	I       int       // the live slot (0-based)
	Symbols []int     // q distinct first symbols s_1..s_q
	Decoys  [][][]int // q databases; slot I is replaced by the live one
}

// NewPartIIEmbedding draws decoy databases (Bob's private coins in the
// proof) of the given shape.
func NewPartIIEmbedding(r *rng.Source, q, i, nShort, mShort, sigma int) (*PartIIEmbedding, error) {
	if sigma < q {
		return nil, fmt.Errorf("comm: need |Σ| ≥ q distinct prefix symbols (%d < %d)", sigma, q)
	}
	if i < 0 || i >= q {
		return nil, fmt.Errorf("comm: live slot %d outside [0, %d)", i, q)
	}
	e := &PartIIEmbedding{Q: q, I: i}
	for s := 0; s < q; s++ {
		e.Symbols = append(e.Symbols, s)
	}
	for s := 0; s < q; s++ {
		var db [][]int
		for j := 0; j < nShort; j++ {
			db = append(db, randomBlock(r.Split(uint64(s*1000+j)), mShort, sigma))
		}
		e.Decoys = append(e.Decoys, db)
	}
	return e, nil
}

// EmbedDB mixes the live short database into the decoys: sub-database s
// holds strings s_s ‖ y. Returns the long database plus the index range
// [lo, hi) occupied by the live strings.
func (e *PartIIEmbedding) EmbedDB(db [][]int) (long [][]int, lo, hi int) {
	for s := 0; s < e.Q; s++ {
		src := e.Decoys[s]
		if s == e.I {
			src = db
			lo = len(long)
			hi = lo + len(db)
		}
		for _, y := range src {
			long = append(long, append([]int{e.Symbols[s]}, y...))
		}
	}
	return long, lo, hi
}

// EmbedQuery prefixes x with the live slot's symbol.
func (e *PartIIEmbedding) EmbedQuery(x []int) []int {
	return append([]int{e.Symbols[e.I]}, x...)
}

// Solve answers the short instance through the long-instance solver,
// mapping the long answer index back into the short database.
func (e *PartIIEmbedding) Solve(solver LPMSolver, x []int, db [][]int) (int, error) {
	long, lo, hi := e.EmbedDB(db)
	ans := solver(e.EmbedQuery(x), long)
	if ans < lo || ans >= hi {
		// The long answer's first symbol must be s_i (the live prefix
		// matches at least one symbol; decoys match zero) — anything else
		// means the long solver erred.
		return -1, fmt.Errorf("comm: long answer %d outside live range [%d, %d)", ans, lo, hi)
	}
	return ans - lo, nil
}
