package comm

import (
	"repro/internal/cellprobe"
)

// Translation is the result of Proposition 18: a k-round cell-probing
// execution rendered as a 2k-round communication protocol. Alice (the
// cell-probing algorithm) sends the addresses of round i's t_i probes
// (a_i = t_i·⌈log₂ s⌉ bits); Bob (the table) replies with the contents
// (b_i = t_i·w bits).
type Translation struct {
	ProbeRounds int     // k
	CommRounds  int     // 2k
	A           []int64 // Alice's per-round message sizes in bits
	B           []int64 // Bob's per-round message sizes in bits
	AliceTotal  int64
	BobTotal    int64
}

// Translate converts a recorded probe transcript into the Proposition 18
// message-size accounting. Each probed table contributes ⌈log₂ cells⌉
// address bits and its word size in content bits. Transcript entries carry
// their table directly, so no ID-string directory is needed.
func Translate(entries []cellprobe.TranscriptEntry) Translation {
	var tr Translation
	byRound := map[int][]cellprobe.TranscriptEntry{}
	maxRound := -1
	for _, e := range entries {
		byRound[e.Round] = append(byRound[e.Round], e)
		if e.Round > maxRound {
			maxRound = e.Round
		}
	}
	tr.ProbeRounds = maxRound + 1
	tr.CommRounds = 2 * tr.ProbeRounds
	for r := 0; r <= maxRound; r++ {
		var aBits, bBits int64
		for _, e := range byRound[r] {
			aBits += int64(ceilLogCells(e.Table))
			bBits += int64(e.Table.WordBits())
		}
		tr.A = append(tr.A, aBits)
		tr.B = append(tr.B, bBits)
		tr.AliceTotal += aBits
		tr.BobTotal += bBits
	}
	return tr
}

func ceilLogCells(t cellprobe.Table) int {
	lc := t.NominalLogCells()
	c := int(lc)
	if float64(c) < lc {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// NewmanSample demonstrates the finite-domain content of Newman's theorem
// (used by Lemma 5): given a public-coin protocol presented as a family of
// deterministic protocols indexed by seed, find a small multiset of seeds
// whose majority vote has error ≤ targetErr on *every* input pair.
// Returns the chosen seeds, or nil if the sample budget fails (callers
// retry with more seeds, mirroring the probabilistic argument).
func NewmanSample(protocols []*Deterministic, prob Problem, seeds []int, sampleSize int, targetErr float64) []int {
	if sampleSize > len(seeds) || sampleSize < 1 {
		return nil
	}
	chosen := seeds[:sampleSize]
	// Verify: for every input pair, the fraction of chosen seeds erring
	// must be ≤ targetErr.
	for x := 0; x < prob.NX; x++ {
		for y := 0; y < prob.NY; y++ {
			bad := 0
			for _, s := range chosen {
				out, _ := protocols[s].Run(x, y)
				if !prob.Correct(x, y, out) {
					bad++
				}
			}
			if float64(bad) > targetErr*float64(sampleSize) {
				return nil
			}
		}
	}
	return chosen
}
