package table

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
)

// pointKeyIndex is the binary-keyed membership index: it maps a packed
// point to its first occurrence in the database block via open addressing
// over a flat power-of-two slot array. Keys are never materialized — a
// probe hashes and compares the candidate's words in place (whether they
// arrive as a block row or as a cell-address payload), so building and
// querying the index allocates no per-entry strings, unlike the
// map[string]int it replaced.
//
// The slot array is built lazily on the first probe: it is the only
// O(n·d) derived structure on the load path, and hashing every database
// row up front is what would keep a zero-copy mmap open from being O(1)
// in the database size (DESIGN.md §9.1). Deferring it changes nothing
// observable — the build is a pure function of the block, costs no
// cell probes, and the warmed probe path stays allocation-free.
type pointKeyIndex struct {
	block *bitvec.Block
	ready atomic.Bool // slots/mask published (release store, acquire load)
	mu    sync.Mutex
	slots []uint32 // database index + 1; 0 marks an empty slot
	mask  uint32
}

// newPointKeyIndex prepares an index over block; rows are hashed on the
// first probe, not here. Duplicate points keep the lowest index (first
// occurrence wins, matching the map-based semantics).
func newPointKeyIndex(block *bitvec.Block) *pointKeyIndex {
	return &pointKeyIndex{block: block}
}

// init builds the slot array once, on the first probe. Concurrent
// probers block until the build is published; after that the check is
// one atomic load.
func (pi *pointKeyIndex) init() {
	if pi.ready.Load() {
		return
	}
	pi.mu.Lock()
	defer pi.mu.Unlock()
	if pi.ready.Load() {
		return
	}
	n := pi.block.Rows()
	capacity := 1 << bits.Len(uint(2*n))
	if capacity < 16 {
		capacity = 16
	}
	pi.slots = make([]uint32, capacity)
	pi.mask = uint32(capacity - 1)
	for i := 0; i < n; i++ {
		pi.insert(i)
	}
	pi.ready.Store(true)
}

func (pi *pointKeyIndex) insert(i int) {
	row := pi.block.Row(i)
	for s := uint32(row.Hash()) & pi.mask; ; s = (s + 1) & pi.mask {
		v := pi.slots[s]
		if v == 0 {
			pi.slots[s] = uint32(i) + 1
			return
		}
		if bitvec.Equal(pi.block.Row(int(v-1)), row) {
			return
		}
	}
}

// lookup returns the index of the database point equal to x.
func (pi *pointKeyIndex) lookup(x bitvec.Vector) (int, bool) {
	if len(x) != pi.block.RowWords {
		return -1, false
	}
	pi.init()
	for s := uint32(x.Hash()) & pi.mask; ; s = (s + 1) & pi.mask {
		v := pi.slots[s]
		if v == 0 {
			return -1, false
		}
		if bitvec.Equal(pi.block.Row(int(v-1)), x) {
			return int(v - 1), true
		}
	}
}

// lookupAddr is lookup keyed on a cell-address payload, hashing and
// comparing the payload words in place (no reconstruction, no allocation).
func (pi *pointKeyIndex) lookupAddr(a *cellprobe.Addr) (int, bool) {
	if a.Len() != pi.block.RowWords {
		return -1, false
	}
	pi.init()
	h := bitvec.HashSeed()
	for i := 0; i < a.Len(); i++ {
		h = bitvec.HashWord(h, a.Word(i))
	}
	for s := uint32(h) & pi.mask; ; s = (s + 1) & pi.mask {
		v := pi.slots[s]
		if v == 0 {
			return -1, false
		}
		if rowEqualsAddr(pi.block.Row(int(v-1)), a) {
			return int(v - 1), true
		}
	}
}

func rowEqualsAddr(row bitvec.Vector, a *cellprobe.Addr) bool {
	for i := range row {
		if row[i] != a.Word(i) {
			return false
		}
	}
	return true
}

// addrDistanceAtMost reports whether the Hamming distance between the
// address payload (a packed vector) and row is at most t, word by word
// with early cutoff — the allocation-free form of bitvec.DistanceAtMost
// for one side living in an Addr.
func addrDistanceAtMost(a *cellprobe.Addr, row bitvec.Vector, t int) bool {
	n := 0
	for i := range row {
		n += bits.OnesCount64(a.Word(i) ^ row[i])
		if n > t {
			return false
		}
	}
	return true
}
