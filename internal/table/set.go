package table

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/par"
	"repro/internal/sketch"
)

// Set bundles every table the schemes probe for one (database, family)
// pair: the ball tables T_0..T_L, the auxiliary tables of Algorithm 2 (when
// the family has a coarse component), and the two degenerate-case
// membership tables. Storage is flat throughout — the database, the
// per-level sketches of the database, and the membership key index all
// live in contiguous backing arrays — so a Set materializes across a
// worker pool (Materialize) and round-trips through a snapshot wholesale
// (SketchBlocks/CoarseBlocks to save, NewSetFromBlocks to load).
type Set struct {
	Fam     *sketch.Family
	DBBlock bitvec.Block // the database, one flat array
	Meter   *cellprobe.Meter

	Ball  []*BallTable
	Aux   []*AuxTable // nil when Fam.Coarse == nil
	Exact *Membership
	Near  *Membership

	keys *pointKeyIndex

	// Row views of DBBlock (navigation convenience), built once on first
	// use: the header slice is O(n) to materialize, which would otherwise
	// be paid by every zero-copy snapshot open (DESIGN.md §9.1).
	vecOnce sync.Once
	vecs    []bitvec.Vector

	// Per-level coarse sketches of the database, N_j·z, flat per level and
	// materialized on first use (or up front by Materialize/the loader).
	coarseMu    []sync.Mutex
	coarseReady []atomic.Bool
	coarse      []bitvec.Block
}

// NewSet builds all tables for the database under the shared family. The
// points are copied into a flat block; per-level sketches stay lazy (use
// Materialize for the eager parallel build).
func NewSet(fam *sketch.Family, db []bitvec.Vector) *Set {
	return newSet(fam, bitvec.BlockOf(db))
}

// NewSetFromBlock is NewSet over an already-flat database block (adopted,
// not copied).
func NewSetFromBlock(fam *sketch.Family, db bitvec.Block) *Set {
	return newSet(fam, db)
}

func newSet(fam *sketch.Family, db bitvec.Block) *Set {
	s := &Set{Fam: fam, DBBlock: db, Meter: &cellprobe.Meter{}}
	s.keys = newPointKeyIndex(&s.DBBlock)
	s.Ball = make([]*BallTable, fam.L+1)
	for i := 0; i <= fam.L; i++ {
		s.Ball[i] = NewBallTable(fam, &s.DBBlock, i, s.Meter)
	}
	if fam.Coarse != nil {
		s.Aux = make([]*AuxTable, fam.L+1)
		for i := 0; i <= fam.L; i++ {
			s.Aux[i] = newAuxTable(s, i, s.Meter)
		}
		s.coarseMu = make([]sync.Mutex, fam.L+1)
		s.coarseReady = make([]atomic.Bool, fam.L+1)
		s.coarse = make([]bitvec.Block, fam.L+1)
	}
	s.Exact = NewMembership(&s.DBBlock, s.keys, fam.P.D, 0, s.Meter)
	s.Near = NewMembership(&s.DBBlock, s.keys, fam.P.D, 1, s.Meter)
	return s
}

// NewSetFromBlocks rebinds a Set to already-materialized storage — the
// snapshot load path. ball holds one sketch block per level; coarse is
// empty or one block per level. Only shapes are validated (contents are
// covered by the snapshot checksum); the membership key index is rebuilt
// from the database block, the one derived structure cheap enough to not
// be worth a format section.
func NewSetFromBlocks(fam *sketch.Family, db bitvec.Block, ball, coarse []bitvec.Block) (*Set, error) {
	if len(ball) != fam.L+1 {
		return nil, fmt.Errorf("table: %d ball sketch blocks, want %d", len(ball), fam.L+1)
	}
	if fam.Coarse == nil && len(coarse) != 0 {
		return nil, fmt.Errorf("table: %d coarse blocks for a family with no coarse component", len(coarse))
	}
	if fam.Coarse != nil && len(coarse) != fam.L+1 {
		return nil, fmt.Errorf("table: %d coarse blocks, want %d", len(coarse), fam.L+1)
	}
	n := db.Rows()
	s := newSet(fam, db)
	accWords := bitvec.Words(fam.AccurateRows())
	for i, b := range ball {
		if b.RowWords != accWords || b.Rows() != n {
			return nil, fmt.Errorf("table: ball sketch block %d is %dx%d words, want %dx%d",
				i, b.Rows(), b.RowWords, n, accWords)
		}
		s.Ball[i].adoptSketches(b)
	}
	if fam.Coarse != nil {
		coarseWords := bitvec.Words(fam.CoarseRows())
		for j, b := range coarse {
			if b.RowWords != coarseWords || b.Rows() != n {
				return nil, fmt.Errorf("table: coarse sketch block %d is %dx%d words, want %dx%d",
					j, b.Rows(), b.RowWords, n, coarseWords)
			}
			s.coarse[j] = b
			s.coarseReady[j].Store(true)
		}
	}
	return s, nil
}

// Vectors returns per-row views of the database block, materializing the
// header slice once on first use.
func (s *Set) Vectors() []bitvec.Vector {
	s.vecOnce.Do(func() { s.vecs = s.DBBlock.Vectors() })
	return s.vecs
}

// Materialize eagerly computes every lazily-built component — the per-level
// accurate and coarse sketches of the database — across a worker pool.
// One task per (family, level); after it returns, queries trigger no
// sketch builds and a snapshot save copies nothing.
func (s *Set) Materialize(workers int) {
	tasks := len(s.Ball)
	if s.Fam.Coarse != nil {
		tasks += len(s.coarse)
	}
	par.Do(workers, tasks, func(t int) {
		if t < len(s.Ball) {
			s.Ball[t].ensureSketches()
		} else {
			s.coarseDBSketches(t - len(s.Ball))
		}
	})
}

// SketchBlocks materializes and returns the per-level accurate sketch
// blocks (shared storage) — the snapshot save path.
func (s *Set) SketchBlocks() []bitvec.Block {
	out := make([]bitvec.Block, len(s.Ball))
	for i, b := range s.Ball {
		out[i] = b.SketchBlock()
	}
	return out
}

// CoarseBlocks materializes and returns the per-level coarse sketch
// blocks (empty when the family has no coarse component).
func (s *Set) CoarseBlocks() []bitvec.Block {
	if s.Fam.Coarse == nil {
		return nil
	}
	out := make([]bitvec.Block, len(s.coarse))
	for j := range s.coarse {
		out[j] = s.coarseDBSketches(j)
	}
	return out
}

// sizeCut returns the Algorithm 2 size threshold n^{-1/s}·|C| as an integer
// cut: |D| > cut means D is "large".
func (s *Set) sizeCut(cSize int) int {
	sv := s.Fam.P.S
	if sv <= 0 {
		sv = 1
	}
	return int(math.Floor(math.Pow(float64(s.Fam.P.N), -1/sv) * float64(cSize)))
}

// coarseDBSketches returns the flat block of N_level·z over every database
// point, computed once per level on first use.
func (s *Set) coarseDBSketches(level int) bitvec.Block {
	if s.coarseReady[level].Load() {
		return s.coarse[level]
	}
	s.coarseMu[level].Lock()
	defer s.coarseMu[level].Unlock()
	if s.coarseReady[level].Load() {
		return s.coarse[level]
	}
	m := s.Fam.Coarse[level]
	sk := bitvec.NewBlock(s.DBBlock.Rows(), m.NumRows)
	m.ApplyBlockInto(sk, s.DBBlock)
	s.coarse[level] = sk
	s.coarseReady[level].Store(true)
	return sk
}

// SpaceReport summarizes nominal (model) and simulated (materialized) space.
type SpaceReport struct {
	NominalLogCells  float64 // log₂ of total model cell count over all tables
	MaterializedWord int     // cells actually evaluated by the simulator
	CellEvals        int64
	MemoHits         int64
}

// Space computes the space accounting used by experiment E8.
func (s *Set) Space() SpaceReport {
	logs := make([]float64, 0, 2*len(s.Ball)+2)
	materialized := 0
	add := func(t cellprobe.Table) {
		logs = append(logs, t.NominalLogCells())
		if o, ok := t.(*cellprobe.Oracle); ok {
			materialized += o.MemoSize()
		}
	}
	for _, b := range s.Ball {
		add(b.Table())
	}
	for _, a := range s.Aux {
		if a != nil {
			add(a.Table())
		}
	}
	add(s.Exact.Table())
	add(s.Near.Table())
	return SpaceReport{
		NominalLogCells:  logSumExp2(logs),
		MaterializedWord: materialized,
		CellEvals:        s.Meter.CellEvals(),
		MemoHits:         s.Meter.MemoHits(),
	}
}

// logSumExp2 returns log₂(Σ 2^{x}) over the inputs, stably.
func logSumExp2(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp2(x - m)
	}
	return m + math.Log2(sum)
}
