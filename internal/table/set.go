package table

import (
	"math"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/sketch"
)

// Set bundles every table the schemes probe for one (database, family)
// pair: the ball tables T_0..T_L, the auxiliary tables of Algorithm 2 (when
// the family has a coarse component), and the two degenerate-case
// membership tables. It also owns the lazily computed per-level coarse
// sketches of the database that the auxiliary oracles share.
type Set struct {
	Fam   *sketch.Family
	DB    []bitvec.Vector
	Meter *cellprobe.Meter

	Ball  []*BallTable
	Aux   []*AuxTable // nil when Fam.Coarse == nil
	Exact *Membership
	Near  *Membership

	coarseMu  sync.Mutex
	coarseOne []sync.Once
	coarseDB  [][]bitvec.Vector
}

// NewSet builds all tables for the database under the shared family.
func NewSet(fam *sketch.Family, db []bitvec.Vector) *Set {
	s := &Set{Fam: fam, DB: db, Meter: &cellprobe.Meter{}}
	s.Ball = make([]*BallTable, fam.L+1)
	for i := 0; i <= fam.L; i++ {
		s.Ball[i] = NewBallTable(fam, db, i, s.Meter)
	}
	if fam.Coarse != nil {
		s.Aux = make([]*AuxTable, fam.L+1)
		for i := 0; i <= fam.L; i++ {
			s.Aux[i] = newAuxTable(s, i, s.Meter)
		}
		s.coarseOne = make([]sync.Once, fam.L+1)
		s.coarseDB = make([][]bitvec.Vector, fam.L+1)
	}
	s.Exact = NewMembership(db, fam.P.D, 0, s.Meter)
	s.Near = NewMembership(db, fam.P.D, 1, s.Meter)
	return s
}

// sizeCut returns the Algorithm 2 size threshold n^{-1/s}·|C| as an integer
// cut: |D| > cut means D is "large".
func (s *Set) sizeCut(cSize int) int {
	sv := s.Fam.P.S
	if sv <= 0 {
		sv = 1
	}
	return int(math.Floor(math.Pow(float64(s.Fam.P.N), -1/sv) * float64(cSize)))
}

// coarseDBSketches returns N_level·z for every database point, computed
// once per level on first use.
func (s *Set) coarseDBSketches(level int) []bitvec.Vector {
	s.coarseOne[level].Do(func() {
		m := s.Fam.Coarse[level]
		sk := make([]bitvec.Vector, len(s.DB))
		for i, z := range s.DB {
			sk[i] = m.Apply(z)
		}
		s.coarseMu.Lock()
		s.coarseDB[level] = sk
		s.coarseMu.Unlock()
	})
	s.coarseMu.Lock()
	defer s.coarseMu.Unlock()
	return s.coarseDB[level]
}

// SpaceReport summarizes nominal (model) and simulated (materialized) space.
type SpaceReport struct {
	NominalLogCells  float64 // log₂ of total model cell count over all tables
	MaterializedWord int     // cells actually evaluated by the simulator
	CellEvals        int64
	MemoHits         int64
}

// Space computes the space accounting used by experiment E8.
func (s *Set) Space() SpaceReport {
	logs := make([]float64, 0, 2*len(s.Ball)+2)
	materialized := 0
	add := func(t cellprobe.Table) {
		logs = append(logs, t.NominalLogCells())
		if o, ok := t.(*cellprobe.Oracle); ok {
			materialized += o.MemoSize()
		}
	}
	for _, b := range s.Ball {
		add(b.Table())
	}
	for _, a := range s.Aux {
		if a != nil {
			add(a.Table())
		}
	}
	add(s.Exact.Table())
	add(s.Near.Table())
	return SpaceReport{
		NominalLogCells:  logSumExp2(logs),
		MaterializedWord: materialized,
		CellEvals:        s.Meter.CellEvals(),
		MemoHits:         s.Meter.MemoHits(),
	}
}

// logSumExp2 returns log₂(Σ 2^{x}) over the inputs, stably.
func logSumExp2(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Exp2(x - m)
	}
	return m + math.Log2(sum)
}
