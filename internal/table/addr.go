// Package table implements the paper's table structures on top of the
// cell-probe oracle machinery:
//
//   - BallTable: the tables T_0 … T_{⌈log_α d⌉} of Theorem 9, whose cell at
//     address j stores some database point z with dist(j, M_i z) below the
//     level threshold, or EMPTY;
//   - AuxTable: Algorithm 2's auxiliary tables T̃_{i,j}, whose cells answer
//     "which of these coarse sets D_{i,·} is large relative to C_i";
//   - Membership tables for the two degenerate cases (x ∈ B, and x within
//     distance 1 of B), standing in for the paper's perfect hashing.
//
// Cells are computed lazily (see package cellprobe); the content of every
// cell is exactly what the paper's preprocessing would have stored.
package table

import (
	"encoding/binary"
	"fmt"
)

// addrWriter serializes structured addresses (the auxiliary tables'
// ⟨levels, sketches⟩ payload) into opaque address strings.
type addrWriter struct{ buf []byte }

func (w *addrWriter) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	w.buf = append(w.buf, tmp[:n]...)
}

func (w *addrWriter) bytes(b string) {
	w.uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

func (w *addrWriter) String() string { return string(w.buf) }

// addrReader parses addresses written by addrWriter.
type addrReader struct {
	buf string
	pos int
}

func (r *addrReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint([]byte(r.buf[r.pos:]))
	if n <= 0 {
		return 0, fmt.Errorf("table: malformed address varint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *addrReader) bytes() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if r.pos+int(n) > len(r.buf) {
		return "", fmt.Errorf("table: truncated address payload at %d", r.pos)
	}
	s := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return s, nil
}

func (r *addrReader) done() bool { return r.pos == len(r.buf) }
