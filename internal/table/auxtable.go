package table

import (
	"repro/internal/bitvec"
	"repro/internal/cellprobe"
)

// AuxTable implements Algorithm 2's auxiliary tables T̃_{i,·} for one level
// i. In the paper there is a table T̃_{i,j} for every accurate sketch value
// j ∈ {0,1}^{c₁ log n}; here j is folded into the cell address (addressing
// a table and addressing memory are the same thing in the model), so one
// oracle serves the whole family at level i.
//
// Address layout (see DESIGN.md §3, substitution note): the payload carries
// ⟨j, w₀, (level₁, w₁), …, (level_{w₀}, w_{w₀})⟩ where j = M_i x,
// w_q = N_{level_q} x, packed word-aligned: the words of j, one count word,
// then per group member one level word followed by the words of the coarse
// sketch. Carrying the explicit level grid instead of the paper's ⟨l, u⟩
// pair removes a rounding mismatch between the table's and the algorithm's
// grid formulas while keeping the address space within the same
// poly(n)·polylog(d) cell budget.
//
// The cell content is the paper's: the smallest q ≤ w₀ such that
// |D_{i,level_q}| > n^{-1/s}·|C_i|, or the "none" sentinel otherwise
// (paper: s+1; here Int(0), which the algorithm treats identically).
type AuxTable struct {
	Level  int
	set    *Set
	oracle *cellprobe.Oracle
}

func newAuxTable(set *Set, level int, meter *cellprobe.Meter) *AuxTable {
	t := &AuxTable{Level: level, set: set}
	fam := set.Fam
	// Nominal cells: accurate sketch j (c₁ log n bits) × up to s coarse
	// sketches ((c₂/s) log n bits each) × level indices (≤ log₂(L+1) bits
	// each) × the count w₀. This is the model's poly(n) accounting.
	s := int(fam.P.S)
	if s < 1 {
		s = 1
	}
	logCells := float64(fam.AccurateRows()) +
		float64(s*fam.CoarseRows()) +
		float64(s+1)*log2ceil(fam.L+2)
	t.oracle = cellprobe.NewOracleEval(
		cellprobe.AuxTag(level),
		logCells,
		bitsForSmallInt(s+2),
		meter,
		t,
	)
	return t
}

func log2ceil(n int) float64 {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	if b < 1 {
		b = 1
	}
	return float64(b)
}

func bitsForSmallInt(max int) int {
	return int(log2ceil(max + 1))
}

// Table returns the cell-probe view.
func (t *AuxTable) Table() cellprobe.Table { return t.oracle }

// AuxQuery is one group of Algorithm 2's first shrinking-phase round: the
// query sketch under M_level plus up to s (level, coarse-sketch) pairs.
type AuxQuery struct {
	SketchX bitvec.Vector   // M_level · x
	Levels  []int           // grid levels ρ(r) for this group, low to high
	Coarse  []bitvec.Vector // N_{Levels[q]} · x, parallel to Levels
}

// Address packs q into the binary cell address probed by the algorithm.
// The builder lives on the caller's stack, so address construction
// allocates nothing while the payload fits the inline capacity.
func (t *AuxTable) Address(q AuxQuery) cellprobe.Addr {
	if len(q.Levels) != len(q.Coarse) {
		panic("table: AuxQuery levels/coarse length mismatch")
	}
	var b cellprobe.AddrBuilder
	b.Reset(cellprobe.AuxTag(t.Level))
	b.Vec(q.SketchX)
	b.Uint(uint64(len(q.Levels)))
	for i, lv := range q.Levels {
		b.Uint(uint64(lv))
		b.Vec(q.Coarse[i])
	}
	return b.Addr()
}

// eval computes the stored content for an address: it reconstructs the
// sets C_i and D_{i,level_q} from the database and the public randomness,
// then applies the size test of the table-construction step of §3.2.
// Malformed payloads (impossible for algorithm-built addresses) yield the
// "none" sentinel defensively. Runs only on memo misses.
func (t *AuxTable) EvalCell(addr cellprobe.Addr) cellprobe.Word {
	fam := t.set.Fam
	jWords := bitvec.Words(fam.AccurateRows())
	cWords := bitvec.Words(fam.CoarseRows())
	if addr.Len() < jWords+1 {
		return cellprobe.IntWord(0)
	}
	payload := addr.AppendPayload(nil)
	j := bitvec.Vector(payload[:jWords])
	count := payload[jWords]
	if count > uint64(addr.Len()) || addr.Len() != jWords+1+int(count)*(1+cWords) {
		return cellprobe.IntWord(0)
	}
	// Reconstruct C_i = {z : dist(j, M_i z) ≤ θ_i}.
	ball := t.set.Ball[t.Level]
	members := ball.MembersOfC(j)
	cSize := len(members)
	cut := t.set.sizeCut(cSize)
	pos := jWords + 1
	for q := uint64(1); q <= count; q++ {
		lv := payload[pos]
		wq := bitvec.Vector(payload[pos+1 : pos+1+cWords])
		pos += 1 + cWords
		if int(lv) > fam.L {
			return cellprobe.IntWord(0)
		}
		dSize := t.dSize(members, int(lv), wq)
		if dSize > cut {
			return cellprobe.IntWord(int(q))
		}
	}
	return cellprobe.IntWord(0) // none: every tested D is small
}

// dSize computes |D_{i,level}| = |{z ∈ C_i : dist(w, N_level z) ≤ θ'_level}|.
func (t *AuxTable) dSize(cMembers []int, level int, w bitvec.Vector) int {
	fam := t.set.Fam
	thr := fam.CoarseThreshold(level)
	sketches := t.set.coarseDBSketches(level)
	n := 0
	for _, idx := range cMembers {
		if bitvec.DistanceAtMost(w, sketches.Row(idx), thr) {
			n++
		}
	}
	return n
}
