package table

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
)

// AuxTable implements Algorithm 2's auxiliary tables T̃_{i,·} for one level
// i. In the paper there is a table T̃_{i,j} for every accurate sketch value
// j ∈ {0,1}^{c₁ log n}; here j is folded into the cell address (addressing
// a table and addressing memory are the same thing in the model), so one
// oracle serves the whole family at level i.
//
// Address layout (see DESIGN.md §3, substitution note): the cell address
// carries ⟨j, w₀, (level₁, w₁), …, (level_{w₀}, w_{w₀})⟩ where j = M_i x,
// w_q = N_{level_q} x. Carrying the explicit level grid instead of the
// paper's ⟨l, u⟩ pair removes a rounding mismatch between the table's and
// the algorithm's grid formulas while keeping the address space within the
// same poly(n)·polylog(d) cell budget.
//
// The cell content is the paper's: the smallest q ≤ w₀ such that
// |D_{i,level_q}| > n^{-1/s}·|C_i|, or the "none" sentinel otherwise
// (paper: s+1; here Int(0), which the algorithm treats identically).
type AuxTable struct {
	Level  int
	set    *Set
	oracle *cellprobe.Oracle
}

func newAuxTable(set *Set, level int, meter *cellprobe.Meter) *AuxTable {
	t := &AuxTable{Level: level, set: set}
	fam := set.Fam
	// Nominal cells: accurate sketch j (c₁ log n bits) × up to s coarse
	// sketches ((c₂/s) log n bits each) × level indices (≤ log₂(L+1) bits
	// each) × the count w₀. This is the model's poly(n) accounting.
	s := int(fam.P.S)
	if s < 1 {
		s = 1
	}
	logCells := float64(fam.AccurateRows()) +
		float64(s*fam.CoarseRows()) +
		float64(s+1)*log2ceil(fam.L+2)
	t.oracle = cellprobe.NewOracle(
		fmt.Sprintf("aux[%d]", level),
		logCells,
		bitsForSmallInt(s+2),
		meter,
		t.eval,
	)
	return t
}

func log2ceil(n int) float64 {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	if b < 1 {
		b = 1
	}
	return float64(b)
}

func bitsForSmallInt(max int) int {
	return int(log2ceil(max + 1))
}

// Table returns the cell-probe view.
func (t *AuxTable) Table() cellprobe.Table { return t.oracle }

// AuxQuery is one group of Algorithm 2's first shrinking-phase round: the
// query sketch under M_level plus up to s (level, coarse-sketch) pairs.
type AuxQuery struct {
	SketchX bitvec.Vector   // M_level · x
	Levels  []int           // grid levels ρ(r) for this group, low to high
	Coarse  []bitvec.Vector // N_{Levels[q]} · x, parallel to Levels
}

// Address serializes q into the cell address probed by the algorithm.
func (t *AuxTable) Address(q AuxQuery) string {
	if len(q.Levels) != len(q.Coarse) {
		panic("table: AuxQuery levels/coarse length mismatch")
	}
	var w addrWriter
	w.bytes(q.SketchX.Key())
	w.uvarint(uint64(len(q.Levels)))
	for i, lv := range q.Levels {
		w.uvarint(uint64(lv))
		w.bytes(q.Coarse[i].Key())
	}
	return w.String()
}

// eval computes the stored content for an address: it reconstructs the
// sets C_i and D_{i,level_q} from the database and the public randomness,
// then applies the size test of the table-construction step of §3.2.
func (t *AuxTable) eval(addr string) cellprobe.Word {
	fam := t.set.Fam
	r := &addrReader{buf: addr}
	jKey, err := r.bytes()
	if err != nil {
		return cellprobe.IntWord(0)
	}
	j, err := bitvec.FromKey(jKey, fam.AccurateRows())
	if err != nil {
		return cellprobe.IntWord(0)
	}
	count, err := r.uvarint()
	if err != nil {
		return cellprobe.IntWord(0)
	}
	// Reconstruct C_i = {z : dist(j, M_i z) ≤ θ_i}.
	ball := t.set.Ball[t.Level]
	members := ball.MembersOfC(j)
	cSize := len(members)
	cut := t.set.sizeCut(cSize)
	for q := uint64(1); q <= count; q++ {
		lv, err := r.uvarint()
		if err != nil {
			return cellprobe.IntWord(0)
		}
		wKey, err := r.bytes()
		if err != nil {
			return cellprobe.IntWord(0)
		}
		wq, err := bitvec.FromKey(wKey, fam.CoarseRows())
		if err != nil {
			return cellprobe.IntWord(0)
		}
		if int(lv) > fam.L {
			return cellprobe.IntWord(0)
		}
		dSize := t.dSize(members, int(lv), wq)
		if dSize > cut {
			return cellprobe.IntWord(int(q))
		}
	}
	if !r.done() {
		return cellprobe.IntWord(0)
	}
	return cellprobe.IntWord(0) // none: every tested D is small
}

// dSize computes |D_{i,level}| = |{z ∈ C_i : dist(w, N_level z) ≤ θ'_level}|.
func (t *AuxTable) dSize(cMembers []int, level int, w bitvec.Vector) int {
	fam := t.set.Fam
	thr := fam.CoarseThreshold(level)
	sketches := t.set.coarseDBSketches(level)
	n := 0
	for _, idx := range cMembers {
		if bitvec.DistanceAtMost(w, sketches[idx], thr) {
			n++
		}
	}
	return n
}
