package table

import (
	"repro/internal/bitvec"
	"repro/internal/cellprobe"
)

// Membership handles the two degenerate cases of §3.1: "is x a database
// point" and "is x within Hamming distance 1 of the database". The paper
// solves each with perfect hashing on a table of quadratic size and one
// probe; here the oracle plays the perfectly-hashed table — the address is
// the query point itself (packed words, no serialization), the cell holds
// the matching database point or EMPTY. Both radii share the Set's binary
// pointKeyIndex over the flat database block, so neither building nor
// probing the tables materializes a key.
type Membership struct {
	radius int // 0: exact membership; 1: the N₁(B) neighborhood
	db     *bitvec.Block
	index  *pointKeyIndex
	oracle *cellprobe.Oracle
}

// NewMembership builds the degenerate-case table for radius 0 or 1 over
// the flat database block, sharing the Set-owned key index.
func NewMembership(db *bitvec.Block, keys *pointKeyIndex, d, radius int, meter *cellprobe.Meter) *Membership {
	if radius != 0 && radius != 1 {
		panic("table: membership radius must be 0 or 1")
	}
	tag := cellprobe.MemberTag(radius)
	m := &Membership{radius: radius, db: db, index: keys}
	// Perfect hashing of n keys needs O(n²) cells (or O(n) with two levels);
	// we account the classic quadratic-size FKS top level. For radius 1 the
	// key set is N₁(B) with at most (d+1)n points.
	logCells := 2 * log2ceil(db.Rows()+1)
	if radius == 1 {
		logCells = 2 * (log2ceil(db.Rows()+1) + log2ceil(d+1))
	}
	m.oracle = cellprobe.NewOracleEval(tag, logCells, wordBitsForPoint(d), meter, m)
	return m
}

// Table returns the cell-probe view.
func (m *Membership) Table() cellprobe.Table { return m.oracle }

// Address returns the cell address for query x: the point's words.
func (m *Membership) Address(x bitvec.Vector) cellprobe.Addr {
	return cellprobe.VecAddr(cellprobe.MemberTag(m.radius), x)
}

// EvalCell implements cellprobe.Evaler; it runs only on memo misses. The key lookup and the radius-1 scan
// both compare the address payload words in place, so even a miss
// allocates nothing.
func (m *Membership) EvalCell(addr cellprobe.Addr) cellprobe.Word {
	if addr.Len() != m.db.RowWords {
		// Malformed addresses do not occur in the model; EMPTY defensively.
		return cellprobe.EmptyWord
	}
	if i, ok := m.index.lookupAddr(&addr); ok {
		return cellprobe.PointWord(i)
	}
	if m.radius == 0 {
		return cellprobe.EmptyWord
	}
	// Radius 1: the cell for x stores any z ∈ B with dist(x, z) ≤ 1. A scan
	// with early cutoff reproduces what preprocessing would store.
	for i, n := 0, m.db.Rows(); i < n; i++ {
		if addrDistanceAtMost(&addr, m.db.Row(i), 1) {
			return cellprobe.PointWord(i)
		}
	}
	return cellprobe.EmptyWord
}
