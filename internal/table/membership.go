package table

import (
	"repro/internal/bitvec"
	"repro/internal/cellprobe"
)

// Membership handles the two degenerate cases of §3.1: "is x a database
// point" and "is x within Hamming distance 1 of the database". The paper
// solves each with perfect hashing on a table of quadratic size and one
// probe; here the oracle plays the perfectly-hashed table — the address is
// the query point itself (packed words, no serialization), the cell holds
// the matching database point or EMPTY.
type Membership struct {
	radius int // 0: exact membership; 1: the N₁(B) neighborhood
	db     []bitvec.Vector
	index  map[string]int // packed point bytes -> database index
	oracle *cellprobe.Oracle
}

// NewMembership builds the degenerate-case table for radius 0 or 1.
func NewMembership(db []bitvec.Vector, d, radius int, meter *cellprobe.Meter) *Membership {
	if radius != 0 && radius != 1 {
		panic("table: membership radius must be 0 or 1")
	}
	tag := cellprobe.MemberTag(radius)
	m := &Membership{radius: radius, db: db, index: make(map[string]int, len(db))}
	for i, z := range db {
		// bitvec.Key and the Addr payload share the little-endian byte
		// image, so eval can key the map from either side. A string key
		// costs d/8 bytes per point instead of an Addr's fixed inline
		// array; the hot probe path never touches this map (the oracle
		// memo, keyed on Addr, answers repeat probes).
		if _, dup := m.index[z.Key()]; !dup {
			m.index[z.Key()] = i
		}
	}
	// Perfect hashing of n keys needs O(n²) cells (or O(n) with two levels);
	// we account the classic quadratic-size FKS top level. For radius 1 the
	// key set is N₁(B) with at most (d+1)n points.
	logCells := 2 * log2ceil(len(db)+1)
	if radius == 1 {
		logCells = 2 * (log2ceil(len(db)+1) + log2ceil(d+1))
	}
	m.oracle = cellprobe.NewOracle(tag, logCells, wordBitsForPoint(d), meter, m.eval)
	return m
}

// Table returns the cell-probe view.
func (m *Membership) Table() cellprobe.Table { return m.oracle }

// Address returns the cell address for query x: the point's words.
func (m *Membership) Address(x bitvec.Vector) cellprobe.Addr {
	return cellprobe.VecAddr(cellprobe.MemberTag(m.radius), x)
}

// eval runs only on memo misses, so packing the payload bytes and
// reconstructing x may allocate.
func (m *Membership) eval(addr cellprobe.Addr) cellprobe.Word {
	if i, ok := m.index[payloadKey(addr)]; ok {
		return cellprobe.PointWord(i)
	}
	if m.radius == 0 {
		return cellprobe.EmptyWord
	}
	// Radius 1: the cell for x stores any z ∈ B with dist(x, z) ≤ 1. A scan
	// with early cutoff reproduces what preprocessing would store.
	if len(m.db) == 0 || addr.Len() != len(m.db[0]) {
		return cellprobe.EmptyWord
	}
	x := bitvec.Vector(addr.AppendPayload(nil))
	for i, z := range m.db {
		if bitvec.DistanceAtMost(x, z, 1) {
			return cellprobe.PointWord(i)
		}
	}
	return cellprobe.EmptyWord
}

// payloadKey renders an address payload as the same little-endian byte
// string bitvec.Key produces for the underlying vector.
func payloadKey(a cellprobe.Addr) string {
	buf := make([]byte, 0, a.Len()*8)
	for i := 0; i < a.Len(); i++ {
		w := a.Word(i)
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(w>>uint(s)))
		}
	}
	return string(buf)
}
