package table

import (
	"repro/internal/bitvec"
	"repro/internal/cellprobe"
)

// Membership handles the two degenerate cases of §3.1: "is x a database
// point" and "is x within Hamming distance 1 of the database". The paper
// solves each with perfect hashing on a table of quadratic size and one
// probe; here the oracle plays the perfectly-hashed table — the address is
// the query point, the cell holds the matching database point or EMPTY.
type Membership struct {
	radius int // 0: exact membership; 1: the N₁(B) neighborhood
	db     []bitvec.Vector
	index  map[string]int // exact point -> database index
	oracle *cellprobe.Oracle
}

// NewMembership builds the degenerate-case table for radius 0 or 1.
func NewMembership(db []bitvec.Vector, d, radius int, meter *cellprobe.Meter) *Membership {
	if radius != 0 && radius != 1 {
		panic("table: membership radius must be 0 or 1")
	}
	m := &Membership{radius: radius, db: db, index: make(map[string]int, len(db))}
	for i, z := range db {
		if _, dup := m.index[z.Key()]; !dup {
			m.index[z.Key()] = i
		}
	}
	id := "member[B]"
	// Perfect hashing of n keys needs O(n²) cells (or O(n) with two levels);
	// we account the classic quadratic-size FKS top level. For radius 1 the
	// key set is N₁(B) with at most (d+1)n points.
	logCells := 2 * log2ceil(len(db)+1)
	if radius == 1 {
		id = "member[N1(B)]"
		logCells = 2 * (log2ceil(len(db)+1) + log2ceil(d+1))
	}
	m.oracle = cellprobe.NewOracle(id, logCells, wordBitsForPoint(d), meter, m.eval)
	return m
}

// Table returns the cell-probe view.
func (m *Membership) Table() cellprobe.Table { return m.oracle }

// Address returns the cell address for query x.
func (m *Membership) Address(x bitvec.Vector) string { return x.Key() }

func (m *Membership) eval(addr string) cellprobe.Word {
	if i, ok := m.index[addr]; ok {
		return cellprobe.PointWord(i)
	}
	if m.radius == 0 {
		return cellprobe.EmptyWord
	}
	// Radius 1: the cell for x stores any z ∈ B with dist(x, z) ≤ 1. A scan
	// with early cutoff reproduces what preprocessing would store.
	x, err := bitvec.FromKey(addr, wordBitsFromKeyLen(len(addr)))
	if err != nil {
		return cellprobe.EmptyWord
	}
	for i, z := range m.db {
		if bitvec.DistanceAtMost(x, z, 1) {
			return cellprobe.PointWord(i)
		}
	}
	return cellprobe.EmptyWord
}

// wordBitsFromKeyLen recovers a bit length compatible with a Key string of
// the given byte length (keys are whole 64-bit words).
func wordBitsFromKeyLen(n int) int { return n * 8 }
