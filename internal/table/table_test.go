package table

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/sketch"
)

func testFamily(t *testing.T, d, n int, s float64) (*sketch.Family, []bitvec.Vector) {
	t.Helper()
	fam := sketch.NewFamily(sketch.Params{D: d, N: n, Gamma: 2, S: s, Seed: 3})
	r := rng.New(4)
	db := make([]bitvec.Vector, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	return fam, db
}

// TestAddressIdentity checks that cell identity is exactly (tag, payload):
// the same sketch addresses the same cell across calls, different levels
// address different tables, and the typed tags carry the table labels.
func TestAddressIdentity(t *testing.T) {
	fam, db := testFamily(t, 256, 30, 1)
	set := NewSet(fam, db)
	sx := fam.Accurate[2].Apply(db[0])
	a1 := set.Ball[2].AddressOfSketch(sx)
	a2 := set.Ball[2].AddressOfSketch(sx.Clone())
	if a1 != a2 {
		t.Error("identical sketches produced different addresses")
	}
	if a1.Tag() != cellprobe.BallTag(2) || set.Ball[2].Table().ID() != "T[2]" {
		t.Errorf("ball tag/ID wrong: %v %q", a1.Tag(), set.Ball[2].Table().ID())
	}
	if set.Ball[3].AddressOfSketch(sx) == a1 {
		t.Error("different levels share an address")
	}
	if set.Aux[2].Table().ID() != "aux[2]" {
		t.Error(set.Aux[2].Table().ID())
	}
	if set.Exact.Table().ID() != "member[B]" || set.Near.Table().ID() != "member[N1(B)]" {
		t.Errorf("membership IDs %q %q", set.Exact.Table().ID(), set.Near.Table().ID())
	}
	if set.Exact.Address(db[0]) == set.Near.Address(db[0]) {
		t.Error("the two membership tables share an address space")
	}
}

func TestBallTableCellSemantics(t *testing.T) {
	// The cell at the query's own sketch address must contain a point iff
	// C_i is nonempty, and the stored point must be within the threshold.
	fam, db := testFamily(t, 512, 60, 0)
	set := NewSet(fam, db)
	r := rng.New(9)
	x := hamming.AtDistance(r, db[7], 512, 10)
	for _, i := range []int{3, 8, fam.L} {
		bt := set.Ball[i]
		sx := fam.Accurate[i].Apply(x)
		w := bt.Table().Lookup(bt.AddressOfSketch(sx))
		members := bt.MembersOfC(sx)
		if len(members) == 0 {
			if w.Kind != cellprobe.Empty {
				t.Errorf("level %d: cell non-empty but C empty", i)
			}
			continue
		}
		if w.Kind != cellprobe.Point {
			t.Errorf("level %d: cell EMPTY but |C|=%d", i, len(members))
			continue
		}
		thr := fam.AccurateThreshold(i)
		zs := bt.DBSketch(w.Index)
		if bitvec.Distance(sx, zs) > thr {
			t.Errorf("level %d: stored point at sketch distance %d > %d",
				i, bitvec.Distance(sx, zs), thr)
		}
	}
}

func TestBallTableEmptyForFarAddress(t *testing.T) {
	fam, db := testFamily(t, 512, 40, 0)
	set := NewSet(fam, db)
	// A random address at a small level has (whp) no nearby db sketch.
	r := rng.New(10)
	addr := set.Ball[0].AddressOfSketch(hamming.Random(r, fam.AccurateRows()))
	w := set.Ball[0].Table().Lookup(addr)
	if w.Kind != cellprobe.Empty {
		// Not impossible, but wildly unlikely: treat as failure.
		t.Errorf("random address at level 0 matched point %v", w)
	}
	// Malformed (wrong payload length) address is EMPTY by convention.
	bogus := cellprobe.VecAddr(cellprobe.BallTag(0), []uint64{1})
	if got := set.Ball[0].Table().Lookup(bogus); got.Kind != cellprobe.Empty {
		t.Error("malformed address not EMPTY")
	}
}

func TestBallTableCountAndMembersAgree(t *testing.T) {
	fam, db := testFamily(t, 256, 50, 0)
	set := NewSet(fam, db)
	r := rng.New(11)
	x := hamming.Random(r, 256)
	for i := 0; i <= fam.L; i += 5 {
		sx := fam.Accurate[i].Apply(x)
		if got, want := set.Ball[i].CountC(sx), len(set.Ball[i].MembersOfC(sx)); got != want {
			t.Errorf("level %d: CountC=%d, len(Members)=%d", i, got, want)
		}
	}
}

func TestMembershipExact(t *testing.T) {
	fam, db := testFamily(t, 256, 30, 0)
	set := NewSet(fam, db)
	m := set.Exact
	for i, z := range db {
		w := m.Table().Lookup(m.Address(z))
		if w.Kind != cellprobe.Point {
			t.Fatalf("db point %d not found", i)
		}
		if !bitvec.Equal(db[w.Index], z) {
			t.Fatalf("membership returned wrong point for %d", i)
		}
	}
	r := rng.New(12)
	x := hamming.Random(r, 256)
	if w := m.Table().Lookup(m.Address(x)); w.Kind != cellprobe.Empty {
		t.Error("random point claimed to be a member")
	}
}

func TestMembershipNear(t *testing.T) {
	fam, db := testFamily(t, 256, 30, 0)
	set := NewSet(fam, db)
	m := set.Near
	r := rng.New(13)
	// Distance 1 from db[5]: must hit.
	x := hamming.AtDistance(r, db[5], 256, 1)
	w := m.Table().Lookup(m.Address(x))
	if w.Kind != cellprobe.Point {
		t.Fatal("distance-1 neighbor not found")
	}
	if bitvec.Distance(db[w.Index], x) > 1 {
		t.Errorf("near membership returned point at distance %d", bitvec.Distance(db[w.Index], x))
	}
	// Exact member also hits.
	if w := m.Table().Lookup(m.Address(db[5])); w.Kind != cellprobe.Point {
		t.Error("member itself not found in near table")
	}
	// Far point misses.
	far := hamming.AtDistance(r, db[5], 256, 100)
	if w := m.Table().Lookup(m.Address(far)); w.Kind != cellprobe.Empty {
		t.Error("far point found in near table")
	}
}

func TestMembershipRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid radius did not panic")
		}
	}()
	NewMembership(nil, nil, 16, 2, nil)
}

func TestAuxTableMatchesDirectComputation(t *testing.T) {
	fam, db := testFamily(t, 512, 80, 2)
	set := NewSet(fam, db)
	r := rng.New(14)
	x := hamming.AtDistance(r, db[3], 512, 20)
	u := fam.L - 2
	aux := set.Aux[u]
	sx := fam.Accurate[u].Apply(x)
	levels := []int{u / 4, u / 2, 3 * u / 4}
	q := AuxQuery{SketchX: sx, Levels: levels}
	for _, lv := range levels {
		q.Coarse = append(q.Coarse, fam.Coarse[lv].Apply(x))
	}
	w := aux.Table().Lookup(aux.Address(q))
	if w.Kind != cellprobe.Int {
		t.Fatalf("aux cell kind %v", w.Kind)
	}
	// Direct recomputation of the table-construction rule.
	members := set.Ball[u].MembersOfC(sx)
	cut := set.sizeCut(len(members))
	want := 0
	for qi, lv := range levels {
		dSize := 0
		cx := fam.Coarse[lv].Apply(x)
		for _, mIdx := range members {
			if fam.InD(lv, cx, fam.Coarse[lv].Apply(db[mIdx])) {
				dSize++
			}
		}
		if dSize > cut {
			want = qi + 1
			break
		}
	}
	if w.Value != want {
		t.Errorf("aux cell = %d, direct computation = %d", w.Value, want)
	}
}

func TestAuxTableMalformedAddress(t *testing.T) {
	fam, db := testFamily(t, 256, 20, 1)
	set := NewSet(fam, db)
	junk := cellprobe.VecAddr(cellprobe.AuxTag(2), []uint64{7})
	if w := set.Aux[2].Table().Lookup(junk); w.Kind != cellprobe.Int || w.Value != 0 {
		t.Errorf("malformed aux address returned %v", w)
	}
	// Truncated group payload: count promises more pairs than present.
	var b cellprobe.AddrBuilder
	b.Reset(cellprobe.AuxTag(2))
	b.Vec(bitvec.New(fam.AccurateRows()))
	b.Uint(3)
	if w := set.Aux[2].Table().Lookup(b.Addr()); w.Kind != cellprobe.Int || w.Value != 0 {
		t.Errorf("truncated aux address returned %v", w)
	}
}

func TestAuxQueryLengthMismatchPanics(t *testing.T) {
	fam, db := testFamily(t, 256, 20, 1)
	set := NewSet(fam, db)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched AuxQuery did not panic")
		}
	}()
	set.Aux[1].Address(AuxQuery{SketchX: bitvec.New(fam.AccurateRows()), Levels: []int{1}})
}

func TestSetSpaceReport(t *testing.T) {
	fam, db := testFamily(t, 256, 40, 1)
	set := NewSet(fam, db)
	sp0 := set.Space()
	if sp0.MaterializedWord != 0 {
		t.Errorf("fresh set materialized %d cells", sp0.MaterializedWord)
	}
	// Touch some cells.
	r := rng.New(15)
	x := hamming.Random(r, 256)
	for i := 0; i <= fam.L; i += 3 {
		bt := set.Ball[i]
		bt.Table().Lookup(bt.Address(x))
	}
	sp := set.Space()
	if sp.MaterializedWord == 0 || sp.CellEvals == 0 {
		t.Error("touched cells not reported")
	}
	if sp.NominalLogCells <= float64(fam.AccurateRows()) {
		t.Errorf("nominal log cells %v suspiciously small", sp.NominalLogCells)
	}
}

func TestSizeCut(t *testing.T) {
	fam, db := testFamily(t, 256, 100, 2)
	set := NewSet(fam, db)
	// n^{-1/2} * 100 = 10.
	if got := set.sizeCut(100); got != 10 {
		t.Errorf("sizeCut(100) = %d, want 10", got)
	}
	if got := set.sizeCut(0); got != 0 {
		t.Errorf("sizeCut(0) = %d", got)
	}
}

// TestWordSizeBudget audits Theorems 9/10's word-size claim across every
// table in a set: all words are O(d) bits — concretely, at most d+1 for
// point-bearing cells and O(log s) for auxiliary integer cells.
func TestWordSizeBudget(t *testing.T) {
	fam, db := testFamily(t, 512, 60, 2)
	set := NewSet(fam, db)
	budget := fam.P.D + 1
	for _, b := range set.Ball {
		if w := b.Table().WordBits(); w > budget {
			t.Errorf("%s word size %d > %d", b.Table().ID(), w, budget)
		}
	}
	for _, a := range set.Aux {
		if w := a.Table().WordBits(); w > budget {
			t.Errorf("%s word size %d > %d", a.Table().ID(), w, budget)
		}
		// Aux cells store an index in [0, s+1]: a handful of bits.
		if w := a.Table().WordBits(); w > 16 {
			t.Errorf("%s aux word size %d implausibly large", a.Table().ID(), w)
		}
	}
	if w := set.Exact.Table().WordBits(); w > budget {
		t.Errorf("exact membership word size %d > %d", w, budget)
	}
	if w := set.Near.Table().WordBits(); w > budget {
		t.Errorf("near membership word size %d > %d", w, budget)
	}
}

func TestCoarseSketchesMemoized(t *testing.T) {
	fam, db := testFamily(t, 256, 30, 1)
	set := NewSet(fam, db)
	a := set.coarseDBSketches(2)
	b := set.coarseDBSketches(2)
	if &a.Words[0] != &b.Words[0] {
		t.Error("coarse sketches recomputed")
	}
	if a.Rows() != len(db) {
		t.Error("wrong sketch count")
	}
}
