// Package table implements the paper's table structures on top of the
// cell-probe oracle machinery:
//
//   - BallTable: the tables T_0 … T_{⌈log_α d⌉} of Theorem 9, whose cell at
//     address j stores some database point z with dist(j, M_i z) below the
//     level threshold, or EMPTY;
//   - AuxTable: Algorithm 2's auxiliary tables T̃_{i,j}, whose cells answer
//     "which of these coarse sets D_{i,·} is large relative to C_i";
//   - Membership tables for the two degenerate cases (x ∈ B, and x within
//     distance 1 of B), standing in for the paper's perfect hashing.
//
// Cells are computed lazily (see package cellprobe); the content of every
// cell is exactly what the paper's preprocessing would have stored. All
// addresses are binary cellprobe.Addr values — a typed table tag plus the
// packed payload words — built directly from the query's sketch words with
// no string serialization on the probe path.
package table

import (
	"math"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/sketch"
)

// BallTable is one of the tables T_i of Theorem 9. Its address space is
// {0,1}^{c₁ log n} (every possible value of the sketch M_i·x); the cell at
// address j stores a database point z with dist(j, M_i z) ≤ θ_i if one
// exists, and EMPTY otherwise. Probing T_i[M_i x] therefore returns a point
// of C_i (the sketch approximation of the ball B_i) or certifies C_i = ∅.
type BallTable struct {
	Level  int
	fam    *sketch.Family
	db     []bitvec.Vector
	oracle *cellprobe.Oracle

	sketchOnce sync.Once
	dbSketches []bitvec.Vector // M_i z for every database point, built lazily
}

// NewBallTable builds T_level for the database under the shared family.
func NewBallTable(fam *sketch.Family, db []bitvec.Vector, level int, meter *cellprobe.Meter) *BallTable {
	t := &BallTable{Level: level, fam: fam, db: db}
	rows := fam.AccurateRows()
	// Model accounting: 2^{rows} cells, each one word of O(d) bits (a point).
	t.oracle = cellprobe.NewOracle(
		cellprobe.BallTag(level),
		float64(rows),
		wordBitsForPoint(fam.P.D),
		meter,
		t.eval,
	)
	return t
}

func wordBitsForPoint(d int) int {
	// A cell stores either EMPTY or one d-bit point; one extra bit tags the
	// two cases. Word size is O(d) as in Theorems 9/10.
	return d + 1
}

// Table returns the cell-probe view of this table.
func (t *BallTable) Table() cellprobe.Table { return t.oracle }

// Address returns the address the algorithm probes for query x: the sketch
// M_level·x, packed. It computes the sketch; callers that already hold one
// (the schemes' per-query scratch) use AddressOfSketch.
func (t *BallTable) Address(x bitvec.Vector) cellprobe.Addr {
	return t.AddressOfSketch(t.fam.Accurate[t.Level].Apply(x))
}

// AddressOfSketch returns the address for an already-computed sketch: the
// sketch words become the payload directly, with no serialization.
func (t *BallTable) AddressOfSketch(sk bitvec.Vector) cellprobe.Addr {
	return cellprobe.VecAddr(cellprobe.BallTag(t.Level), sk)
}

func (t *BallTable) ensureSketches() {
	t.sketchOnce.Do(func() {
		m := t.fam.Accurate[t.Level]
		t.dbSketches = make([]bitvec.Vector, len(t.db))
		for i, z := range t.db {
			t.dbSketches[i] = m.Apply(z)
		}
	})
}

// eval computes the cell content the preprocessing stage would store at
// address addr: an arbitrary (here: first) database point whose sketch is
// within the level threshold of addr, else EMPTY. It runs only on memo
// misses, so reconstructing the sketch vector may allocate.
func (t *BallTable) eval(addr cellprobe.Addr) cellprobe.Word {
	t.ensureSketches()
	if addr.Len() != bitvec.Words(t.fam.AccurateRows()) {
		// Malformed addresses do not occur in the model (every bit string of
		// the right length is a valid address); treat as EMPTY defensively.
		return cellprobe.EmptyWord
	}
	j := bitvec.Vector(addr.AppendPayload(nil))
	thr := t.fam.AccurateThreshold(t.Level)
	for i, zs := range t.dbSketches {
		if bitvec.DistanceAtMost(j, zs, thr) {
			return cellprobe.PointWord(i)
		}
	}
	return cellprobe.EmptyWord
}

// MembersOfC returns the indices of all database points in C_level for the
// given query sketch. This is *not* a model operation — it is used by tests
// and by the Lemma 8 validation experiment (E7).
func (t *BallTable) MembersOfC(sketchX bitvec.Vector) []int {
	t.ensureSketches()
	thr := t.fam.AccurateThreshold(t.Level)
	var out []int
	for i, zs := range t.dbSketches {
		if bitvec.DistanceAtMost(sketchX, zs, thr) {
			out = append(out, i)
		}
	}
	return out
}

// CountC returns |C_level| for the given query sketch (test/validation use).
func (t *BallTable) CountC(sketchX bitvec.Vector) int {
	t.ensureSketches()
	thr := t.fam.AccurateThreshold(t.Level)
	n := 0
	for _, zs := range t.dbSketches {
		if bitvec.DistanceAtMost(sketchX, zs, thr) {
			n++
		}
	}
	return n
}

// DBSketch exposes the memoized sketch of database point i (package-internal
// plumbing for the auxiliary tables, which intersect with C_level).
func (t *BallTable) DBSketch(i int) bitvec.Vector {
	t.ensureSketches()
	return t.dbSketches[i]
}

// NominalLogCellsTotal returns log₂ of the combined cell count of all L+1
// ball tables, for the space experiment: (L+1)·2^{c₁ log n} cells.
func NominalLogCellsTotal(fam *sketch.Family) float64 {
	return float64(fam.AccurateRows()) + math.Log2(float64(fam.L+1))
}
