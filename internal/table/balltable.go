// Package table implements the paper's table structures on top of the
// cell-probe oracle machinery:
//
//   - BallTable: the tables T_0 … T_{⌈log_α d⌉} of Theorem 9, whose cell at
//     address j stores some database point z with dist(j, M_i z) below the
//     level threshold, or EMPTY;
//   - AuxTable: Algorithm 2's auxiliary tables T̃_{i,j}, whose cells answer
//     "which of these coarse sets D_{i,·} is large relative to C_i";
//   - Membership tables for the two degenerate cases (x ∈ B, and x within
//     distance 1 of B), standing in for the paper's perfect hashing.
//
// Cells are computed lazily (see package cellprobe); the content of every
// cell is exactly what the paper's preprocessing would have stored. All
// addresses are binary cellprobe.Addr values — a typed table tag plus the
// packed payload words — built directly from the query's sketch words with
// no string serialization on the probe path.
//
// Every index component is stored flat and pointer-free: the database, the
// per-level database sketches, and the membership key index all live in
// contiguous backing arrays (bitvec.Block, []uint32 slots), so a Set can
// be materialized in parallel, written to a snapshot wholesale, and
// rebound to loaded arrays without per-entry work (see internal/snapshot).
package table

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/sketch"
)

// BallTable is one of the tables T_i of Theorem 9. Its address space is
// {0,1}^{c₁ log n} (every possible value of the sketch M_i·x); the cell at
// address j stores a database point z with dist(j, M_i z) ≤ θ_i if one
// exists, and EMPTY otherwise. Probing T_i[M_i x] therefore returns a point
// of C_i (the sketch approximation of the ball B_i) or certifies C_i = ∅.
type BallTable struct {
	Level  int
	fam    *sketch.Family
	db     *bitvec.Block
	oracle *cellprobe.Oracle

	mu    sync.Mutex
	ready atomic.Bool
	sk    bitvec.Block // M_level·z for every database point, flat
}

// NewBallTable builds T_level for the database under the shared family.
func NewBallTable(fam *sketch.Family, db *bitvec.Block, level int, meter *cellprobe.Meter) *BallTable {
	t := &BallTable{Level: level, fam: fam, db: db}
	rows := fam.AccurateRows()
	// Model accounting: 2^{rows} cells, each one word of O(d) bits (a point).
	t.oracle = cellprobe.NewOracleEval(
		cellprobe.BallTag(level),
		float64(rows),
		wordBitsForPoint(fam.P.D),
		meter,
		t,
	)
	return t
}

func wordBitsForPoint(d int) int {
	// A cell stores either EMPTY or one d-bit point; one extra bit tags the
	// two cases. Word size is O(d) as in Theorems 9/10.
	return d + 1
}

// Table returns the cell-probe view of this table.
func (t *BallTable) Table() cellprobe.Table { return t.oracle }

// Address returns the address the algorithm probes for query x: the sketch
// M_level·x, packed. It computes the sketch; callers that already hold one
// (the schemes' per-query scratch) use AddressOfSketch.
func (t *BallTable) Address(x bitvec.Vector) cellprobe.Addr {
	return t.AddressOfSketch(t.fam.Accurate[t.Level].Apply(x))
}

// AddressOfSketch returns the address for an already-computed sketch: the
// sketch words become the payload directly, with no serialization.
func (t *BallTable) AddressOfSketch(sk bitvec.Vector) cellprobe.Addr {
	return cellprobe.VecAddr(cellprobe.BallTag(t.Level), sk)
}

// ensureSketches materializes the flat sketch block on first use (the
// lazy path; the parallel build and the snapshot load fill it up front).
func (t *BallTable) ensureSketches() {
	if t.ready.Load() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ready.Load() {
		return
	}
	m := t.fam.Accurate[t.Level]
	sk := bitvec.NewBlock(t.db.Rows(), m.NumRows)
	m.ApplyBlockInto(sk, *t.db)
	t.sk = sk
	t.ready.Store(true)
}

// adoptSketches rebinds the table to an already-materialized sketch block
// (the snapshot load path). The block must hold one row of
// Words(AccurateRows()) words per database point.
func (t *BallTable) adoptSketches(sk bitvec.Block) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sk = sk
	t.ready.Store(true)
}

// SketchBlock materializes (if needed) and returns the flat per-point
// sketch block, shared not copied — the snapshot save path.
func (t *BallTable) SketchBlock() bitvec.Block {
	t.ensureSketches()
	return t.sk
}

// eval computes the cell content the preprocessing stage would store at
// address addr: an arbitrary (here: first) database point whose sketch is
// within the level threshold of addr, else EMPTY. It runs only on memo
// misses and compares the address payload against the flat sketch block
// in place, so even a miss allocates nothing.
// EvalCell implements cellprobe.Evaler: it computes the stored content
// for an address on memo misses.
func (t *BallTable) EvalCell(addr cellprobe.Addr) cellprobe.Word {
	t.ensureSketches()
	if addr.Len() != bitvec.Words(t.fam.AccurateRows()) {
		// Malformed addresses do not occur in the model (every bit string of
		// the right length is a valid address); treat as EMPTY defensively.
		return cellprobe.EmptyWord
	}
	thr := t.fam.AccurateThreshold(t.Level)
	for i, n := 0, t.db.Rows(); i < n; i++ {
		if addrDistanceAtMost(&addr, t.sk.Row(i), thr) {
			return cellprobe.PointWord(i)
		}
	}
	return cellprobe.EmptyWord
}

// MembersOfC returns the indices of all database points in C_level for the
// given query sketch. This is *not* a model operation — it is used by tests
// and by the Lemma 8 validation experiment (E7).
func (t *BallTable) MembersOfC(sketchX bitvec.Vector) []int {
	t.ensureSketches()
	thr := t.fam.AccurateThreshold(t.Level)
	var out []int
	for i, n := 0, t.db.Rows(); i < n; i++ {
		if bitvec.DistanceAtMost(sketchX, t.sk.Row(i), thr) {
			out = append(out, i)
		}
	}
	return out
}

// CountC returns |C_level| for the given query sketch (test/validation use).
func (t *BallTable) CountC(sketchX bitvec.Vector) int {
	t.ensureSketches()
	thr := t.fam.AccurateThreshold(t.Level)
	n := 0
	for i, rows := 0, t.db.Rows(); i < rows; i++ {
		if bitvec.DistanceAtMost(sketchX, t.sk.Row(i), thr) {
			n++
		}
	}
	return n
}

// DBSketch exposes the memoized sketch of database point i (package-internal
// plumbing for the auxiliary tables, which intersect with C_level).
func (t *BallTable) DBSketch(i int) bitvec.Vector {
	t.ensureSketches()
	return t.sk.Row(i)
}

// NominalLogCellsTotal returns log₂ of the combined cell count of all L+1
// ball tables, for the space experiment: (L+1)·2^{c₁ log n} cells.
func NominalLogCellsTotal(fam *sketch.Family) float64 {
	return float64(fam.AccurateRows()) + math.Log2(float64(fam.L+1))
}
