package server

import (
	"encoding/base64"
	"fmt"

	"repro/anns"
	"repro/internal/bitvec"
)

// The wire format is JSON over HTTP. Points travel as standard base64 of
// their packed little-endian byte image: bit i of the point is bit i%8 of
// byte i/8, exactly the layout of anns.NewPointFromBytes and
// bitvec.Vector.Key. Every answer carries the same stats schema the CLI
// tools print: index, distance, rounds, probes, max_parallel.

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	// Point is the base64-encoded packed query point.
	Point string `json:"point"`
	// TimeoutMS overrides the server's default per-request deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// NearRequest is the body of POST /v1/near (the λ-near-neighbor decision).
type NearRequest struct {
	Point     string  `json:"point"`
	Lambda    float64 `json:"lambda"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Points    []string `json:"points"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

// QueryResponse is one query's answer in the shared stats schema. A
// failed query carries its accounting plus a non-empty Error and
// Index = -1 (for /v1/near, Index = -1 with empty Error is the NO answer).
type QueryResponse struct {
	Index       int    `json:"index"`
	Distance    int    `json:"distance"`
	Rounds      int    `json:"rounds"`
	Probes      int    `json:"probes"`
	MaxParallel int    `json:"max_parallel"`
	Error       string `json:"error,omitempty"`
}

// BatchResponse is the body answering POST /v1/batch, results in input
// order.
type BatchResponse struct {
	Results []QueryResponse `json:"results"`
}

// InsertRequest is the body of POST /v1/insert (mutable tier only).
type InsertRequest struct {
	// Point is the base64-encoded packed point to insert.
	Point string `json:"point"`
}

// InsertResponse acknowledges an insert with the point's assigned
// stable ID (the handle /v1/delete takes, and the value Result.Index
// reports when this point answers a query). On a WAL-backed server the
// insert is durable when this response is written. Offset is the
// replication offset after this insert — the sequence number the op's
// frame carries on the wire (present only on replicating tiers).
type InsertResponse struct {
	ID     uint64 `json:"id"`
	Offset uint64 `json:"offset,omitempty"`
}

// DeleteRequest is the body of POST /v1/delete. ID is a pointer so a
// missing field is distinguishable from id 0.
type DeleteRequest struct {
	ID *uint64 `json:"id"`
}

// DeleteResponse reports whether the ID named a live point. Offset is
// the replication offset after the delete (unchanged when Deleted is
// false — a dead target gains no WAL record and no frame).
type DeleteResponse struct {
	Deleted bool   `json:"deleted"`
	Offset  uint64 `json:"offset,omitempty"`
}

// ReplicateRequest is the body of POST /v1/replicate: Frames is standard
// base64 of concatenated CRC-framed WAL records (byte-identical to the
// on-disk WAL format, §7), the first of which carries sequence number
// From+1 — i.e. the sender believes the receiver's applied offset is
// From.
type ReplicateRequest struct {
	From   uint64 `json:"from"`
	Frames string `json:"frames"`
}

// ReplicateResponse reports the replica's applied offset after the call.
// On 409 (replication gap) Offset tells the relay where to resume the
// catch-up read; on 200 it equals From + the number of frames sent.
type ReplicateResponse struct {
	Offset uint64 `json:"offset"`
	Error  string `json:"error,omitempty"`
}

// FramesRequest is the body of POST /v1/frames: the catch-up read for
// the WAL records after applied offset From, up to MaxBytes of whole
// frames (0 for no bound).
type FramesRequest struct {
	From     uint64 `json:"from"`
	MaxBytes int    `json:"max_bytes,omitempty"`
}

// FramesResponse carries Count frames as base64 of their concatenated
// wire bytes, plus the primary's applied offset at read time (so the
// caller knows whether another round is needed).
type FramesResponse struct {
	Frames string `json:"frames,omitempty"`
	Count  int    `json:"count"`
	Offset uint64 `json:"offset"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// MutableStats is /statsz's delta-tier block (present only when the
// served index is mutable), mirroring anns.MutableStats.
type MutableStats struct {
	LiveN            int    `json:"live_n"`
	Memtable         int    `json:"memtable"`
	SealedSegments   int    `json:"sealed_segments"`
	SegmentsBuilt    int64  `json:"segments_built"`
	Compactions      int64  `json:"compactions"`
	Tombstones       int    `json:"tombstones"`
	NextID           uint64 `json:"next_id"`
	WALReplayed      int    `json:"wal_replayed"`
	WALBytes         int64  `json:"wal_bytes"`
	LastCompactError string `json:"last_compact_error,omitempty"`
	// Generation is the tier's index generation: it advances on every
	// mutation that can change a query's folded reply, and is the result
	// cache's invalidation epoch.
	Generation uint64 `json:"generation"`
	// ReplicationOffset is the count of mutations applied since the base —
	// the sequence number of the last applied WAL frame (§11). Two
	// replicas at the same offset hold byte-identical state.
	ReplicationOffset uint64 `json:"replication_offset"`
}

// Health is the body of GET /healthz. Seed is the served index's build
// seed (0 when unknown): shards of one logical index carry distinct
// derived seeds, so a router can verify a replica serves the shard its
// position claims, not just an index of the right shape.
// NextID and ReplicationOffset are present only on mutable servers: a
// router uses them to seed global ID assignment and to rank replicas by
// replication progress (promotion picks the max offset). They are
// pointers so an immutable server is distinguishable from a mutable one
// at offset 0.
type Health struct {
	Status            string  `json:"status"`
	N                 int     `json:"n"`
	Shards            int     `json:"shards"`
	Dim               int     `json:"dim"`
	Seed              uint64  `json:"seed,omitempty"`
	UptimeMS          int64   `json:"uptime_ms"`
	NextID            *uint64 `json:"next_id,omitempty"`
	ReplicationOffset *uint64 `json:"replication_offset,omitempty"`
}

// StatsSnapshot is the body of GET /statsz: monotonic totals since start
// plus derived rates. cmd/annsquery prints the same schema so CLI and
// server reports line up field for field.
type StatsSnapshot struct {
	UptimeMS         int64   `json:"uptime_ms"`
	Queries          int64   `json:"queries"`
	Batches          int64   `json:"batches"`
	Near             int64   `json:"near"`
	Errors           int64   `json:"errors"`
	Rejected         int64   `json:"rejected"`
	DeadlineExceeded int64   `json:"deadline_exceeded"`
	Probes           int64   `json:"probes"`
	Rounds           int64   `json:"rounds"`
	MaxRounds        int64   `json:"max_rounds"`
	MaxParallel      int64   `json:"max_parallel"`
	QPS              float64 `json:"qps"`
	ErrorRate        float64 `json:"error_rate"`
	QueueLen         int     `json:"queue_len"`
	Workers          int     `json:"workers"`
	// Index provenance (the build→snapshot→serve lifecycle): how the
	// served index came to be and how long bringing it up took.
	IndexSource     string `json:"index_source"`
	SnapshotVersion uint32 `json:"snapshot_version,omitempty"`
	IndexLoadMS     int64  `json:"index_load_ms"`
	MappedBytes     int64  `json:"mapped_bytes,omitempty"`
	// Mutation counters (zero on immutable servers) and, when the served
	// index is a mutable tier, its internal state.
	Inserts        int64 `json:"inserts"`
	Deletes        int64 `json:"deletes"`
	MutationErrors int64 `json:"mutation_errors,omitempty"`
	// Replication counters: frames applied via /v1/replicate and
	// replication-surface errors (gaps, diverged streams, bad blobs).
	ReplicatedFrames  int64         `json:"replicated_frames,omitempty"`
	ReplicationErrors int64         `json:"replication_errors,omitempty"`
	Mutable           *MutableStats `json:"mutable,omitempty"`
	// Cache is the result-cache block (present only when Config.CacheEntries
	// enabled one).
	Cache *CacheStats `json:"cache,omitempty"`
}

// EncodePoint serializes a point into the wire encoding.
func EncodePoint(p anns.Point) string {
	return base64.StdEncoding.EncodeToString([]byte(bitvec.Vector(p).Key()))
}

// DecodePoint parses the wire encoding back into a point of dimension d.
// The encoded image must be exactly Words(d)*8 bytes — a longer payload
// is rejected rather than silently truncated, so a client built for the
// wrong dimension gets a 400 instead of plausible wrong answers.
func DecodePoint(enc string, d int) (anns.Point, error) {
	raw, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		return nil, fmt.Errorf("server: point is not valid base64: %w", err)
	}
	if want := bitvec.Words(d) * 8; len(raw) != want {
		return nil, fmt.Errorf("server: point image is %d bytes, want %d for dimension %d",
			len(raw), want, d)
	}
	return anns.NewPointFromBytes(raw, d)
}

// toResponse converts an API result + error into the wire schema.
func toResponse(res anns.Result, err error) QueryResponse {
	out := QueryResponse{
		Index:       res.Index,
		Distance:    res.Distance,
		Rounds:      res.Rounds,
		Probes:      res.Probes,
		MaxParallel: res.MaxParallel,
	}
	if err != nil {
		out.Error = err.Error()
	}
	return out
}
