package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/anns"
	"repro/internal/rng"
	"repro/internal/workload"
)

const testDim = 128

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *workload.Instance) {
	t.Helper()
	r := rng.New(31)
	inst := workload.PlantedNN(r, testDim, 40, 8, 6)
	pts := make([]anns.Point, len(inst.DB))
	copy(pts, inst.DB)
	idx, err := anns.BuildSharded(pts, 2, anns.Options{Dimension: testDim, Rounds: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Dimension == 0 {
		cfg.Dimension = testDim
	}
	srv, err := New(idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs, inst
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestQueryEndpoint(t *testing.T) {
	_, hs, inst := newTestServer(t, Config{})
	// Query with a database point itself: the answer must be exact.
	resp, body := post(t, hs.URL+"/v1/query", QueryRequest{Point: EncodePoint(inst.DB[3])})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Error != "" {
		t.Skipf("query failed (allowed with scheme probability): %s", qr.Error)
	}
	if qr.Index < 0 || qr.Probes < 1 || qr.Rounds < 1 || qr.MaxParallel < 1 {
		t.Errorf("implausible answer: %+v", qr)
	}
}

func TestQueryMalformed(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
	}{
		{"not json", "{nope"},
		{"bad base64", `{"point":"!!!"}`},
		{"wrong dimension", `{"point":"AAAA"}`},
		{"empty", `{}`},
	}
	for _, c := range cases {
		resp, err := http.Post(hs.URL+"/v1/query", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		if e.Error == "" {
			t.Errorf("%s: no error message", c.name)
		}
	}
	// Wrong method gets rejected by the mux.
	resp, err := http.Get(hs.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query: status %d, want 405", resp.StatusCode)
	}
}

func TestNearEndpoint(t *testing.T) {
	_, hs, inst := newTestServer(t, Config{})
	resp, body := post(t, hs.URL+"/v1/near", NearRequest{Point: EncodePoint(inst.DB[0]), Lambda: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	// A database point is at distance 0 <= lambda; expect YES (whp).
	if qr.Error == "" && qr.Index < 0 {
		t.Logf("near said NO for a member point (allowed with scheme probability)")
	}

	resp, _ = post(t, hs.URL+"/v1/near", NearRequest{Point: EncodePoint(inst.DB[0]), Lambda: 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("lambda=0: status %d, want 400", resp.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, hs, inst := newTestServer(t, Config{MaxBatch: 4})
	points := []string{
		EncodePoint(inst.Queries[0].X),
		EncodePoint(inst.Queries[1].X),
		EncodePoint(inst.Queries[2].X),
	}
	resp, body := post(t, hs.URL+"/v1/batch", BatchRequest{Points: points})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("%d results, want 3", len(br.Results))
	}
	for i, r := range br.Results {
		if r.Error == "" && (r.Probes < 1 || r.Rounds < 1) {
			t.Errorf("result %d: no accounting: %+v", i, r)
		}
	}

	resp, _ = post(t, hs.URL+"/v1/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}
	five := []string{points[0], points[0], points[0], points[0], points[0]}
	resp, _ = post(t, hs.URL+"/v1/batch", BatchRequest{Points: five})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", resp.StatusCode)
	}
	resp, _ = post(t, hs.URL+"/v1/batch", BatchRequest{Points: []string{"@@"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad point in batch: status %d, want 400", resp.StatusCode)
	}
}

// slowSearcher blocks each query, for deadline and admission tests.
type slowSearcher struct {
	d time.Duration
}

func (s slowSearcher) Query(anns.Point) (anns.Result, error) {
	time.Sleep(s.d)
	return anns.Result{Index: 0, Distance: 0, Rounds: 1, Probes: 1, MaxParallel: 1}, nil
}

func (s slowSearcher) QueryNear(anns.Point, float64) (anns.Result, error) {
	return s.Query(nil)
}

func (s slowSearcher) BatchQueryContext(ctx context.Context, xs []anns.Point, workers int) []anns.BatchResult {
	out := make([]anns.BatchResult, len(xs))
	for i := range out {
		res, err := s.Query(nil)
		out[i] = anns.BatchResult{Result: res, Err: err}
	}
	return out
}

func (s slowSearcher) Len() int { return 2 }

func TestDeadlineExceeded(t *testing.T) {
	srv, err := New(slowSearcher{d: 300 * time.Millisecond}, Config{
		Dimension: testDim, Workers: 1, QueueDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()

	x := anns.NewPoint(make([]bool, testDim))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupy the single worker
		defer wg.Done()
		post(t, hs.URL+"/v1/query", QueryRequest{Point: EncodePoint(x), TimeoutMS: 2000})
	}()
	time.Sleep(50 * time.Millisecond)
	resp, body := post(t, hs.URL+"/v1/query", QueryRequest{Point: EncodePoint(x), TimeoutMS: 20})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	wg.Wait()
	if snap := srv.Stats(); snap.DeadlineExceeded < 1 {
		t.Errorf("deadline_exceeded = %d, want >= 1", snap.DeadlineExceeded)
	}
}

func TestQueueFull(t *testing.T) {
	srv, err := New(slowSearcher{d: 400 * time.Millisecond}, Config{
		Dimension: testDim, Workers: 1, QueueDepth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()

	x := EncodePoint(anns.NewPoint(make([]bool, testDim)))
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // fill worker + queue slot
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, hs.URL+"/v1/query", QueryRequest{Point: x, TimeoutMS: 3000})
		}()
		time.Sleep(50 * time.Millisecond)
	}
	resp, body := post(t, hs.URL+"/v1/query", QueryRequest{Point: x, TimeoutMS: 3000})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
	wg.Wait()
	if snap := srv.Stats(); snap.Rejected < 1 {
		t.Errorf("rejected = %d, want >= 1", snap.Rejected)
	}
}

func TestHealthAndStats(t *testing.T) {
	srv, hs, inst := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if h.Status != "ok" || h.N != len(inst.DB) || h.Dim != testDim || h.Shards != 2 {
		t.Errorf("health %+v", h)
	}

	for i := 0; i < 4; i++ {
		post(t, hs.URL+"/v1/query", QueryRequest{Point: EncodePoint(inst.Queries[i].X)})
	}
	resp, err = http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap StatsSnapshot
	json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if snap.Queries != 4 {
		t.Errorf("queries = %d, want 4", snap.Queries)
	}
	if snap.Probes < 4 || snap.MaxParallel < 1 {
		t.Errorf("accounting missing: %+v", snap)
	}
	if got := srv.Stats(); got.Queries != snap.Queries {
		t.Errorf("Stats() and /statsz disagree: %d vs %d", got.Queries, snap.Queries)
	}
}

func TestPointCodecRoundTrip(t *testing.T) {
	r := rng.New(9)
	for _, d := range []int{2, 63, 64, 65, 300} {
		bits := make([]bool, d)
		for i := range bits {
			bits[i] = r.Intn(2) == 1
		}
		p := anns.NewPoint(bits)
		got, err := DecodePoint(EncodePoint(p), d)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		for i := range bits {
			if got.Get(i) != bits[i] {
				t.Fatalf("d=%d: bit %d flipped in transit", d, i)
			}
		}
	}
	if _, err := DecodePoint("AAAA", 300); err == nil {
		t.Error("decoded a too-short point")
	}
	if _, err := DecodePoint("!not-base64!", 8); err == nil {
		t.Error("decoded invalid base64")
	}
}

func TestStatsSchemaMatchesWire(t *testing.T) {
	// The CLI (cmd/annsquery) prints this schema; pin the field names.
	raw, err := json.Marshal(StatsSnapshot{})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		"queries", "errors", "probes", "rounds", "max_rounds", "max_parallel",
		"qps", "error_rate", "rejected", "deadline_exceeded",
	} {
		if !bytes.Contains(raw, []byte(fmt.Sprintf("%q", field))) {
			t.Errorf("stats schema lost field %q: %s", field, raw)
		}
	}
}

// panicSearcher simulates an index bug: the pool must survive it.
type panicSearcher struct{}

func (panicSearcher) Query(anns.Point) (anns.Result, error)              { panic("index bug") }
func (panicSearcher) QueryNear(anns.Point, float64) (anns.Result, error) { panic("index bug") }
func (panicSearcher) BatchQueryContext(context.Context, []anns.Point, int) []anns.BatchResult {
	panic("index bug")
}
func (panicSearcher) Len() int { return 2 }

func TestWorkerSurvivesPanic(t *testing.T) {
	srv, err := New(panicSearcher{}, Config{Dimension: testDim, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer srv.Close()

	x := EncodePoint(anns.NewPoint(make([]bool, testDim)))
	for i := 0; i < 3; i++ { // repeat: a dead worker would hang request 2+
		resp, body := post(t, hs.URL+"/v1/query", QueryRequest{Point: x, TimeoutMS: 2000})
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d (%s), want 500", i, resp.StatusCode, body)
		}
	}
	if snap := srv.Stats(); snap.Errors < 3 {
		t.Errorf("errors = %d, want >= 3", snap.Errors)
	}
}

func TestDecodePointExactLength(t *testing.T) {
	// 24 bytes encode d in (128, 192]; a 192-bit image must not decode
	// as a 128-bit point.
	img := base64.StdEncoding.EncodeToString(make([]byte, 24))
	if _, err := DecodePoint(img, 128); err == nil {
		t.Error("oversized point image silently accepted")
	}
	if _, err := DecodePoint(img, 192); err != nil {
		t.Errorf("exact-size image rejected: %v", err)
	}
}
