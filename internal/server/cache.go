package server

import (
	"math"

	"repro/anns"
	"repro/internal/cellprobe"
	"repro/internal/qcache"
)

// Result caching (DESIGN.md §10).
//
// The serving layer can put a qcache.Cache in front of the worker pool:
// a hit answers from memory without touching the admission queue, the
// index, or a worker scratch — under zipfian traffic that is most
// requests. Three properties make this safe:
//
//   - The key is a collision-free fingerprint of the request: the packed
//     query point words (the full input, not a digest) under a tag that
//     separates /v1/query from /v1/near, plus the λ bits for near. Two
//     requests share a key exactly when the index would compute
//     byte-identical answers for them.
//   - Query execution is deterministic given index state, so a cached
//     reply IS the reply a fresh execution would produce at the same
//     generation.
//   - Every entry is stamped with the index generation observed before
//     the query ran; a mutation bumps the generation, making all older
//     entries unreachable (see internal/qcache).
//
// Failed queries are never cached (errors may be transient); the NO
// answer of /v1/near is a successful deterministic reply and is cached.

// Cache key tags: the tag separates request kinds so a /v1/query for
// point x never collides with a /v1/near for the same x.
const (
	cacheKindQuery = 1
	cacheKindNear  = 2
)

// generationer is the optional epoch surface: *anns.MutableIndex
// implements it; immutable indexes do not and are served at a constant
// generation 0 (their cache entries never invalidate — nothing mutates).
type generationer interface {
	Generation() uint64
}

// generation returns the served index's current epoch.
func (s *Server) generation() uint64 {
	if s.gen != nil {
		return s.gen.Generation()
	}
	return 0
}

// QueryCacheKey fingerprints a /v1/query request. Exported so the router
// tier caches under the exact same key derivation — one fingerprint
// definition for the whole serving stack.
func QueryCacheKey(x anns.Point) cellprobe.Addr {
	return cellprobe.VecAddr(cellprobe.GenericTag(cacheKindQuery), x)
}

// NearCacheKey fingerprints a /v1/near request: λ's bit pattern followed
// by the point words.
func NearCacheKey(x anns.Point, lambda float64) cellprobe.Addr {
	var b cellprobe.AddrBuilder
	b.Reset(cellprobe.GenericTag(cacheKindNear))
	b.Uint(math.Float64bits(lambda))
	b.Vec(x)
	return b.Addr()
}

// cacheGet consults the cache for key at the current generation,
// returning the reply to re-serve and the generation to stamp on a miss's
// eventual Put. The generation is captured BEFORE the query executes: if
// a mutation lands mid-query the stored reply is tagged with the older
// epoch and post-mutation readers miss (the safe direction).
func (s *Server) cacheGet(key cellprobe.Addr) (resp QueryResponse, gen uint64, ok bool) {
	if s.cache == nil {
		return QueryResponse{}, 0, false
	}
	gen = s.generation()
	v, hit := s.cache.Get(key, gen)
	if !hit {
		return QueryResponse{}, gen, false
	}
	return v.(QueryResponse), gen, true
}

// cachePut stores a successful reply stamped with the pre-execution
// generation. Error replies are not cached.
func (s *Server) cachePut(key cellprobe.Addr, gen uint64, resp QueryResponse) {
	if s.cache == nil || resp.Error != "" {
		return
	}
	s.cache.Put(key, gen, resp)
}

// CacheStats is /statsz's result-cache block (present only when the
// cache is enabled).
type CacheStats struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	Entries       int     `json:"entries"`
	Capacity      int     `json:"capacity"`
	HitRate       float64 `json:"hit_rate"`
}

// CacheStatsOf snapshots a cache into the wire block (nil for a disabled
// cache). Exported so the router serves the same /statsz cache schema.
func CacheStatsOf(c *qcache.Cache) *CacheStats {
	if c == nil {
		return nil
	}
	st := c.Stats()
	return &CacheStats{
		Hits:          st.Hits,
		Misses:        st.Misses,
		Evictions:     st.Evictions,
		Invalidations: st.Invalidations,
		Entries:       st.Entries,
		Capacity:      st.Capacity,
		HitRate:       st.HitRate(),
	}
}
