package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/workload"
	"repro/internal/workload/scenario"
)

// newCachedMutableServer serves a synchronous mutable tier with the
// result cache enabled.
func newCachedMutableServer(t *testing.T, cacheEntries int) (*Server, *httptest.Server, *workload.Instance) {
	t.Helper()
	r := rng.New(31)
	inst := workload.PlantedNN(r, testDim, 40, 8, 6)
	pts := make([]anns.Point, len(inst.DB))
	copy(pts, inst.DB)
	base, err := anns.Build(pts, anns.Options{Dimension: testDim, Rounds: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mx, err := anns.NewMutable(base, anns.MutableConfig{Synchronous: true, MemtableCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(mx, Config{Dimension: testDim, CacheEntries: cacheEntries})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
		mx.Close()
	})
	return srv, hs, inst
}

func TestCacheHitServesIdenticalBytes(t *testing.T) {
	srv, hs, inst := newCachedMutableServer(t, 64)
	q := QueryRequest{Point: EncodePoint(inst.Queries[0].X)}

	resp, first := post(t, hs.URL+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d %s", resp.StatusCode, first)
	}
	resp, second := post(t, hs.URL+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second query: %d %s", resp.StatusCode, second)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cached reply differs from computed reply:\n%s\n%s", first, second)
	}
	st := srv.Stats()
	if st.Cache == nil {
		t.Fatal("cache stats block missing")
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache counters after repeat query: %+v", st.Cache)
	}
	if st.Queries != 2 {
		t.Fatalf("queries = %d, want 2 (hits still count)", st.Queries)
	}
}

func TestCacheDisabledByDefault(t *testing.T) {
	srv, hs, inst := newMutableTestServer(t)
	q := QueryRequest{Point: EncodePoint(inst.Queries[0].X)}
	post(t, hs.URL+"/v1/query", q)
	post(t, hs.URL+"/v1/query", q)
	if st := srv.Stats(); st.Cache != nil {
		t.Fatalf("cache block present without CacheEntries: %+v", st.Cache)
	}
}

// TestCacheInvalidatedByMutation pins the epoch contract end to end: a
// cached reply must become unreachable the moment any mutation lands,
// and the post-mutation reply must reflect the new index state.
func TestCacheInvalidatedByMutation(t *testing.T) {
	srv, hs, _ := newCachedMutableServer(t, 64)
	r := rng.New(77)
	x := hamming.Random(r, testDim)
	q := QueryRequest{Point: EncodePoint(x)}

	post(t, hs.URL+"/v1/query", q) // populate
	post(t, hs.URL+"/v1/query", q) // hit

	// Insert a planted point nearer than anything in the DB.
	planted := hamming.AtDistance(r, x, testDim, 1)
	resp, body := post(t, hs.URL+"/v1/insert", InsertRequest{Point: EncodePoint(planted)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, body)
	}
	var ins InsertResponse
	json.Unmarshal(body, &ins)

	// The stale cached answer (without the planted point) must NOT be
	// served: the generation bump makes it unreachable.
	resp, body = post(t, hs.URL+"/v1/query", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-insert query: %d %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Index != int(ins.ID) || qr.Distance != 1 {
		t.Fatalf("stale reply served after insert: %+v (want index %d at distance 1)", qr, ins.ID)
	}
	st := srv.Stats()
	if st.Cache.Invalidations == 0 {
		t.Fatalf("no invalidations counted: %+v", st.Cache)
	}
	if st.Mutable == nil || st.Mutable.Generation == 0 {
		t.Fatalf("generation missing from mutable block: %+v", st.Mutable)
	}
}

func TestCacheNearPath(t *testing.T) {
	srv, hs, inst := newCachedMutableServer(t, 64)
	x := inst.Queries[0].X
	near := NearRequest{Point: EncodePoint(x), Lambda: 8}

	resp, first := post(t, hs.URL+"/v1/near", near)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("near: %d %s", resp.StatusCode, first)
	}
	_, second := post(t, hs.URL+"/v1/near", near)
	if !bytes.Equal(first, second) {
		t.Fatalf("cached near reply differs:\n%s\n%s", first, second)
	}
	// A different λ for the same point is a different key, not a hit.
	hitsBefore := srv.Stats().Cache.Hits
	post(t, hs.URL+"/v1/near", NearRequest{Point: EncodePoint(x), Lambda: 9})
	if hits := srv.Stats().Cache.Hits; hits != hitsBefore {
		t.Fatalf("λ=9 hit the λ=8 entry (hits %d -> %d)", hitsBefore, hits)
	}
	// /v1/query for the same point is a different key space than /v1/near.
	post(t, hs.URL+"/v1/query", QueryRequest{Point: EncodePoint(x)})
	st := srv.Stats().Cache
	if st.Hits != hitsBefore {
		t.Fatalf("query hit a near entry: %+v", st)
	}
}

// TestCacheChurnByteIdentical is the churn_test.go pattern lifted to the
// serving layer: one fixed-seed mutation stream driven against a cached
// and an uncached server over the same synchronous mutable tier
// construction. After EVERY operation both servers must answer the full
// query set byte-identically — the cache may only change how a reply is
// computed, never the reply. The scenario registry supplies the stream, so
// this is also an integration test of scenario determinism.
func TestCacheChurnByteIdentical(t *testing.T) {
	const d = 128
	build := func(cacheEntries int) (*httptest.Server, *anns.MutableIndex) {
		r := rng.New(31)
		inst := workload.PlantedNN(r, d, 30, 6, 5)
		pts := make([]anns.Point, len(inst.DB))
		copy(pts, inst.DB)
		base, err := anns.Build(pts, anns.Options{Dimension: d, Rounds: 2, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		mx, err := anns.NewMutable(base, anns.MutableConfig{
			Synchronous: true, MemtableCap: 6, CompactEvery: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(mx, Config{Dimension: d, CacheEntries: cacheEntries})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
			mx.Close()
		})
		return hs, mx
	}
	cached, _ := build(128)
	plain, _ := build(0)

	r := rng.New(99)
	queries := make([]string, 24)
	for i := range queries {
		queries[i] = EncodePoint(hamming.Random(r, d))
	}
	fresh := make([]anns.Point, 60)
	for i := range fresh {
		fresh[i] = hamming.Random(r, d)
	}

	sc, err := scenario.Get("constant-occupancy")
	if err != nil {
		t.Fatal(err)
	}
	ops := sc.Ops(120, scenario.Config{Seed: 7, Theta: 0.99, QueryKeys: len(queries), WriteKeys: len(fresh)})

	askBoth := func(opIdx int, path string, req any) {
		t.Helper()
		respA, bodyA := post(t, cached.URL+path, req)
		respB, bodyB := post(t, plain.URL+path, req)
		if respA.StatusCode != respB.StatusCode || !bytes.Equal(bodyA, bodyB) {
			t.Fatalf("op %d: %s diverged\ncached: %d %s\nplain:  %d %s",
				opIdx, path, respA.StatusCode, bodyA, respB.StatusCode, bodyB)
		}
	}

	var insertedIDs []uint64
	nextInsert := 0
	for i, op := range ops {
		switch op.Kind {
		case scenario.OpInsert:
			p := fresh[nextInsert%len(fresh)]
			nextInsert++
			askBoth(i, "/v1/insert", InsertRequest{Point: EncodePoint(p)})
			// Both servers assign IDs deterministically from the base size up.
			insertedIDs = append(insertedIDs, uint64(30+len(insertedIDs)))
		case scenario.OpDelete:
			if len(insertedIDs) == 0 {
				continue
			}
			id := insertedIDs[op.Key%len(insertedIDs)]
			askBoth(i, "/v1/delete", DeleteRequest{ID: &id})
		case scenario.OpRead:
			askBoth(i, "/v1/query", QueryRequest{Point: queries[op.Key]})
		}
		// After every op, a sweep of the full query set must agree.
		if i%17 == 0 {
			for _, q := range queries {
				askBoth(i, "/v1/query", QueryRequest{Point: q})
			}
		}
	}
	// Full final sweep.
	for _, q := range queries {
		askBoth(len(ops), "/v1/query", QueryRequest{Point: q})
	}
}
