package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/anns"
)

// rawQuery posts one query without test-fatal plumbing (safe to call
// from helper goroutines).
func rawQuery(baseURL string, x anns.Point) (int, error) {
	body, err := json.Marshal(QueryRequest{Point: EncodePoint(x)})
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(baseURL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// TestCloseDrainsAdmissionQueue pins the graceful-shutdown contract:
// every task admitted before Close executes; none is orphaned to resolve
// via its deadline. (That orphaning is what made SIGTERM teardown in the
// CI smoke timing-dependent.)
func TestCloseDrainsAdmissionQueue(t *testing.T) {
	s, _, _ := newTestServer(t, Config{Workers: 1, QueueDepth: 64})

	// Stall the single worker so tasks pile up behind it, then queue a
	// burst directly (the handlers' admit path wraps the same channel).
	release := make(chan struct{})
	gate := &task{ctx: context.Background(), done: make(chan struct{}),
		run: func(*anns.Scratch) { <-release }}
	s.queue <- gate

	const burst = 16
	var ran atomic.Int64
	tasks := make([]*task, burst)
	for i := range tasks {
		tasks[i] = &task{ctx: context.Background(), done: make(chan struct{}),
			run: func(*anns.Scratch) { ran.Add(1) }}
		s.queue <- tasks[i]
	}

	closed := make(chan struct{})
	go func() {
		s.Close() // blocks until the pool drains and exits
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a task was still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return after the worker unblocked")
	}

	if got := ran.Load(); got != burst {
		t.Fatalf("%d of %d queued tasks ran after Close", got, burst)
	}
	for i, tk := range tasks {
		select {
		case <-tk.done:
			if !tk.ran {
				t.Errorf("task %d drained but not marked ran", i)
			}
		default:
			t.Errorf("task %d never completed", i)
		}
	}
}

// TestShutdownAnswersInFlight drives a real request that is mid-queue
// when Shutdown starts and requires it to be answered, not cut off.
func TestShutdownAnswersInFlight(t *testing.T) {
	s, ts, inst := newTestServer(t, Config{Workers: 1, QueueDepth: 64})

	release := make(chan struct{})
	gate := &task{ctx: context.Background(), done: make(chan struct{}),
		run: func(*anns.Scratch) { <-release }}
	s.queue <- gate

	type answer struct {
		code int
		err  error
	}
	got := make(chan answer, 1)
	go func() {
		code, err := rawQuery(ts.URL, inst.Queries[0].X)
		got <- answer{code, err}
	}()
	// Wait until the request is queued behind the gate.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queue) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // let Shutdown begin draining the listener
	close(release)

	a := <-got
	if a.err != nil || a.code != 200 {
		t.Fatalf("in-flight request during Shutdown: code=%d err=%v, want 200", a.code, a.err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}
