package server

import (
	"time"

	"repro/internal/obs"
)

// buildRegistry wires /metricsz: every /statsz field as a func-backed
// series reading the same atomics, plus the per-stage latency histograms
// /statsz cannot express. Metric naming follows DESIGN.md §12:
// anns_<noun>_total for counters, anns_<noun> for gauges,
// anns_stage_seconds{stage=...} for the stage histograms.
func (s *Server) buildRegistry() {
	reg := obs.NewRegistry()
	s.reg = reg

	counter := func(name, help string, v func() int64) {
		reg.CounterFunc(name, help, nil, func() float64 { return float64(v()) })
	}
	counter("anns_queries_total", "Point queries served (including cache hits).", s.m.queries.Load)
	counter("anns_near_total", "Near (lambda) queries served.", s.m.near.Load)
	counter("anns_batches_total", "Batch requests served.", s.m.batches.Load)
	counter("anns_errors_total", "Query executions that returned an error.", s.m.errors.Load)
	counter("anns_rejected_total", "Requests rejected with a full admission queue.", s.m.rejected.Load)
	counter("anns_deadline_exceeded_total", "Requests that hit their deadline before execution finished.", s.m.deadline.Load)
	counter("anns_probes_total", "Cells probed across all queries.", s.m.probes.Load)
	counter("anns_rounds_total", "Probing rounds across all queries.", s.m.rounds.Load)
	counter("anns_inserts_total", "Accepted inserts.", s.m.inserts.Load)
	counter("anns_deletes_total", "Accepted deletes.", s.m.deletes.Load)
	counter("anns_mutation_errors_total", "Failed mutations.", s.m.mutErrors.Load)
	counter("anns_replicated_frames_total", "WAL frames applied from replication.", s.m.replFrames.Load)
	counter("anns_replication_errors_total", "Replication frames rejected.", s.m.replErrors.Load)

	reg.GaugeFunc("anns_uptime_seconds", "Process uptime.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("anns_max_rounds", "Max probing rounds seen on one query.", nil,
		func() float64 { return float64(s.m.maxRounds.Load()) })
	reg.GaugeFunc("anns_max_parallel", "Max intra-query parallelism seen.", nil,
		func() float64 { return float64(s.m.maxParallel.Load()) })
	reg.GaugeFunc("anns_queue_depth", "Tasks waiting in the admission queue.", nil,
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("anns_workers", "Worker pool size.", nil,
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("anns_index_points", "Points in the served index.", nil,
		func() float64 { return float64(s.idx.Len()) })
	reg.GaugeFunc("anns_index_load_seconds", "Build or snapshot-load duration.",
		obs.Labels{"source": s.cfg.Index.Source},
		func() float64 { return s.cfg.Index.LoadDuration.Seconds() })
	if s.cfg.Index.MappedBytes > 0 {
		reg.GaugeFunc("anns_mapped_bytes", "Bytes mmapped for zero-copy serving.", nil,
			func() float64 { return float64(s.cfg.Index.MappedBytes) })
	}

	if s.cache != nil {
		cacheCounter := func(name, help string, v func(CacheStats) uint64) {
			reg.CounterFunc(name, help, nil, func() float64 {
				if cs := CacheStatsOf(s.cache); cs != nil {
					return float64(v(*cs))
				}
				return 0
			})
		}
		cacheCounter("anns_cache_hits_total", "Result-cache hits.", func(c CacheStats) uint64 { return c.Hits })
		cacheCounter("anns_cache_misses_total", "Result-cache misses.", func(c CacheStats) uint64 { return c.Misses })
		cacheCounter("anns_cache_evictions_total", "Result-cache LRU evictions.", func(c CacheStats) uint64 { return c.Evictions })
		cacheCounter("anns_cache_invalidations_total", "Result-cache generation invalidations.", func(c CacheStats) uint64 { return c.Invalidations })
		reg.GaugeFunc("anns_cache_entries", "Live result-cache entries.", nil, func() float64 {
			if cs := CacheStatsOf(s.cache); cs != nil {
				return float64(cs.Entries)
			}
			return 0
		})
		reg.GaugeFunc("anns_cache_capacity", "Result-cache capacity.", nil, func() float64 {
			if cs := CacheStatsOf(s.cache); cs != nil {
				return float64(cs.Capacity)
			}
			return 0
		})
	}

	if ms, ok := s.idx.(mutableStatser); ok {
		mg := func(name, help string, v func() float64) { reg.GaugeFunc(name, help, nil, v) }
		mg("anns_mutable_live_points", "Live (non-tombstoned) points.", func() float64 { return float64(ms.MutableStats().LiveN) })
		mg("anns_mutable_memtable_points", "Points in the active memtable.", func() float64 { return float64(ms.MutableStats().Memtable) })
		mg("anns_mutable_sealed_segments", "Sealed immutable segments.", func() float64 { return float64(ms.MutableStats().Sealed) })
		mg("anns_mutable_tombstones", "Tombstoned IDs awaiting compaction.", func() float64 { return float64(ms.MutableStats().Tombstones) })
		mg("anns_mutable_generation", "Index mutation epoch.", func() float64 { return float64(ms.MutableStats().Generation) })
		mg("anns_replication_offset", "Highest applied WAL offset.", func() float64 { return float64(ms.MutableStats().ReplicationOffset) })
		mg("anns_wal_bytes", "WAL size on disk.", func() float64 { return float64(ms.MutableStats().WALBytes) })
		reg.CounterFunc("anns_segments_built_total", "Segments sealed and built.", nil,
			func() float64 { return float64(ms.MutableStats().SegmentsBuilt) })
		reg.CounterFunc("anns_compactions_total", "Completed compactions.", nil,
			func() float64 { return float64(ms.MutableStats().Compactions) })
	}

	s.hWait = reg.Histogram("anns_stage_seconds", "Per-stage serving latency.", obs.Labels{"stage": "admission_wait"})
	s.hExec = reg.Histogram("anns_stage_seconds", "Per-stage serving latency.", obs.Labels{"stage": "execute"})
	s.hCache = reg.Histogram("anns_stage_seconds", "Per-stage serving latency.", obs.Labels{"stage": "cache_lookup"})
}
