package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/workload"
)

// newMutableTestServer serves a synchronous mutable tier over a small
// planted workload.
func newMutableTestServer(t *testing.T) (*Server, *httptest.Server, *workload.Instance) {
	t.Helper()
	r := rng.New(31)
	inst := workload.PlantedNN(r, testDim, 40, 8, 6)
	pts := make([]anns.Point, len(inst.DB))
	copy(pts, inst.DB)
	base, err := anns.Build(pts, anns.Options{Dimension: testDim, Rounds: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mx, err := anns.NewMutable(base, anns.MutableConfig{Synchronous: true, MemtableCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(mx, Config{Dimension: testDim})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
		mx.Close()
	})
	return srv, hs, inst
}

func TestInsertDeleteEndpoints(t *testing.T) {
	_, hs, inst := newMutableTestServer(t)
	r := rng.New(77)
	x := hamming.Random(r, testDim)
	planted := hamming.AtDistance(r, x, testDim, 2)

	resp, body := post(t, hs.URL+"/v1/insert", InsertRequest{Point: EncodePoint(planted)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, body)
	}
	var ins InsertResponse
	if err := json.Unmarshal(body, &ins); err != nil {
		t.Fatal(err)
	}
	if ins.ID != uint64(len(inst.DB)) {
		t.Fatalf("first insert got id %d, want %d", ins.ID, len(inst.DB))
	}

	// The fresh point must answer a query for its neighborhood.
	resp, body = post(t, hs.URL+"/v1/query", QueryRequest{Point: EncodePoint(x)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Index != int(ins.ID) || qr.Distance != 2 {
		t.Fatalf("inserted point did not win the query: %+v", qr)
	}

	// Delete it; deleting again reports false.
	id := ins.ID
	resp, body = post(t, hs.URL+"/v1/delete", DeleteRequest{ID: &id})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	var del DeleteResponse
	if err := json.Unmarshal(body, &del); err != nil || !del.Deleted {
		t.Fatalf("delete: %+v err=%v", del, err)
	}
	if _, body = post(t, hs.URL+"/v1/delete", DeleteRequest{ID: &id}); string(body) == "" {
		t.Fatal("empty re-delete body")
	} else {
		json.Unmarshal(body, &del)
		if del.Deleted {
			t.Fatal("re-delete reported true")
		}
	}
	resp, body = post(t, hs.URL+"/v1/query", QueryRequest{Point: EncodePoint(x)})
	json.Unmarshal(body, &qr)
	if qr.Index == int(ins.ID) {
		t.Fatalf("tombstoned point still answers: %+v", qr)
	}

	// Malformed bodies.
	if resp, _ := post(t, hs.URL+"/v1/insert", InsertRequest{Point: "!!"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad insert point: %d", resp.StatusCode)
	}
	if resp, _ := post(t, hs.URL+"/v1/delete", map[string]any{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing delete id: %d", resp.StatusCode)
	}
}

func TestMutationStatsSurface(t *testing.T) {
	srv, hs, _ := newMutableTestServer(t)
	r := rng.New(9)
	for i := 0; i < 10; i++ { // seals one segment at cap 8
		if resp, body := post(t, hs.URL+"/v1/insert", InsertRequest{Point: EncodePoint(hamming.Random(r, testDim))}); resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: %d %s", i, resp.StatusCode, body)
		}
	}
	id := uint64(1)
	post(t, hs.URL+"/v1/delete", DeleteRequest{ID: &id})

	snap := srv.Stats()
	if snap.Inserts != 10 || snap.Deletes != 1 || snap.MutationErrors != 0 {
		t.Fatalf("mutation counters: %+v", snap)
	}
	if snap.Mutable == nil {
		t.Fatal("mutable stats block missing")
	}
	m := snap.Mutable
	if m.SealedSegments != 1 || m.Memtable != 2 || m.Tombstones != 1 || m.SegmentsBuilt != 1 {
		t.Fatalf("mutable block: %+v", m)
	}
	// The wire schema must carry the block.
	resp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Mutable == nil || wire.Mutable.SealedSegments != 1 || wire.Inserts != 10 {
		t.Fatalf("statsz wire: %+v", wire)
	}
}

// TestMutationsOnImmutableServer pins the typed 501: static serving
// processes refuse mutations without breaking the read path.
func TestMutationsOnImmutableServer(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{})
	resp, body := post(t, hs.URL+"/v1/insert", InsertRequest{Point: EncodePoint(make(anns.Point, 2))})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("insert on immutable: %d %s", resp.StatusCode, body)
	}
	id := uint64(0)
	if resp, _ = post(t, hs.URL+"/v1/delete", DeleteRequest{ID: &id}); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("delete on immutable: %d", resp.StatusCode)
	}
}
