package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/workload"
)

// newReplicaPair serves a WAL-backed primary and a WAL-less replica over
// the same base build, the minimal topology the replication endpoints
// exist for.
func newReplicaPair(t *testing.T) (primary, replica *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	r := rng.New(31)
	inst := workload.PlantedNN(r, testDim, 40, 8, 6)
	build := func() *anns.Index {
		pts := make([]anns.Point, len(inst.DB))
		copy(pts, inst.DB)
		ix, err := anns.Build(pts, anns.Options{Dimension: testDim, Rounds: 2, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	serve := func(wal string) *httptest.Server {
		mx, err := anns.NewMutable(build(), anns.MutableConfig{Synchronous: true, MemtableCap: 8, WALPath: wal})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(mx, Config{Dimension: testDim})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
			mx.Close()
		})
		return hs
	}
	return serve(filepath.Join(dir, "primary.wal")), serve("")
}

// TestReplicateEndpoints drives the full relay loop over HTTP: mutate
// the primary, read its frames via /v1/frames, apply them to the replica
// via /v1/replicate, and require convergent offsets and byte-identical
// answers — plus the 409-gap and duplicate-delivery contracts the router
// relies on.
func TestReplicateEndpoints(t *testing.T) {
	primary, replica := newReplicaPair(t)
	r := rng.New(77)

	var lastOffset uint64
	for i := 0; i < 12; i++ {
		resp, body := post(t, primary.URL+"/v1/insert", InsertRequest{Point: EncodePoint(hamming.Random(r, testDim))})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: %d %s", i, resp.StatusCode, body)
		}
		var ins InsertResponse
		if err := json.Unmarshal(body, &ins); err != nil {
			t.Fatal(err)
		}
		if ins.Offset != uint64(i+1) {
			t.Fatalf("insert %d acked offset %d, want %d", i, ins.Offset, i+1)
		}
		lastOffset = ins.Offset
	}
	id := uint64(41)
	resp, body := post(t, primary.URL+"/v1/delete", DeleteRequest{ID: &id})
	var del DeleteResponse
	if err := json.Unmarshal(body, &del); err != nil || !del.Deleted {
		t.Fatalf("delete: %d %s (%v)", resp.StatusCode, body, err)
	}
	if del.Offset != lastOffset+1 {
		t.Fatalf("delete acked offset %d, want %d", del.Offset, lastOffset+1)
	}
	total := del.Offset

	// Frames from beyond a replica's offset are a 409 gap carrying the
	// replica's applied offset, and apply nothing.
	fetch := func(from uint64, maxBytes int) FramesResponse {
		t.Helper()
		resp, body := post(t, primary.URL+"/v1/frames", FramesRequest{From: from, MaxBytes: maxBytes})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("frames from %d: %d %s", from, resp.StatusCode, body)
		}
		var fr FramesResponse
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		return fr
	}
	fr := fetch(3, 0)
	if fr.Count != int(total-3) || fr.Offset != total {
		t.Fatalf("frames from 3: count=%d offset=%d, want %d/%d", fr.Count, fr.Offset, total-3, total)
	}
	resp, body = post(t, replica.URL+"/v1/replicate", ReplicateRequest{From: 3, Frames: fr.Frames})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("gap relay: %d %s, want 409", resp.StatusCode, body)
	}
	var rr ReplicateResponse
	if err := json.Unmarshal(body, &rr); err != nil || rr.Offset != 0 {
		t.Fatalf("gap answer must carry the replica offset 0: %+v (%v)", rr, err)
	}

	// The real relay: everything from 0, twice — the second delivery is a
	// duplicate and must be a clean no-op at the same offset.
	fr = fetch(0, 0)
	if fr.Count != int(total) {
		t.Fatalf("frames from 0: count=%d, want %d", fr.Count, total)
	}
	for pass := 0; pass < 2; pass++ {
		resp, body = post(t, replica.URL+"/v1/replicate", ReplicateRequest{From: 0, Frames: fr.Frames})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("relay pass %d: %d %s", pass, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &rr); err != nil || rr.Offset != total {
			t.Fatalf("relay pass %d: offset %d, want %d (%v)", pass, rr.Offset, total, err)
		}
	}

	// An empty steady-state poll answers 200 with zero frames.
	if fr = fetch(total, 0); fr.Count != 0 || fr.Frames != "" {
		t.Fatalf("caught-up fetch: %+v", fr)
	}

	// Byte-identical serving: every query answers the same on both sides.
	qr := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		q := QueryRequest{Point: EncodePoint(hamming.Random(qr, testDim))}
		_, pb := post(t, primary.URL+"/v1/query", q)
		_, rb := post(t, replica.URL+"/v1/query", q)
		if string(pb) != string(rb) {
			t.Fatalf("query %d diverged:\nprimary %s\nreplica %s", trial, pb, rb)
		}
	}

	// Health reports write progress on both sides.
	hr, err := http.Get(replica.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h Health
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.ReplicationOffset == nil || *h.ReplicationOffset != total || h.NextID == nil {
		t.Fatalf("replica healthz missing write progress: %+v", h)
	}
}

// TestReplicateOnImmutableServer pins the typed 501s.
func TestReplicateOnImmutableServer(t *testing.T) {
	_, hs, _ := newTestServer(t, Config{})
	if resp, _ := post(t, hs.URL+"/v1/replicate", ReplicateRequest{}); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("replicate on immutable: %d", resp.StatusCode)
	}
	if resp, _ := post(t, hs.URL+"/v1/frames", FramesRequest{}); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("frames on immutable: %d", resp.StatusCode)
	}
}

// TestReplicateRejectsGarbage: a blob that does not decode as CRC-framed
// WAL records is a 400, applies nothing, and counts a replication error.
func TestReplicateRejectsGarbage(t *testing.T) {
	_, replica := newReplicaPair(t)
	if resp, _ := post(t, replica.URL+"/v1/replicate", ReplicateRequest{From: 0, Frames: "AAAA"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage frames: %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(t, replica.URL+"/v1/replicate", ReplicateRequest{From: 0, Frames: "!!"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-base64 frames: %d, want 400", resp.StatusCode)
	}
}
