package server

import (
	"net/http"

	"repro/anns"
)

// Mutator is the optional mutation surface: *anns.MutableIndex
// implements it, the static index kinds do not. The server registers
// the mutation endpoints unconditionally and answers 501 when the
// served index is immutable, so clients get a typed error instead of a
// bare 404.
type Mutator interface {
	Insert(p anns.Point) (uint64, error)
	Delete(id uint64) (bool, error)
}

// mutableStatser exposes the delta tier's counters for /statsz.
type mutableStatser interface {
	MutableStats() anns.MutableStats
}

// handleInsert serves POST /v1/insert. Mutations do not pass the query
// admission queue: they are serialized by the index's own write lock
// (and bounded by WAL fsync latency), while the queue's job is to
// protect the query worker pool. A WAL-backed insert is durable when
// the 200 is written.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	mut, ok := s.idx.(Mutator)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, ErrorResponse{Error: "served index is immutable (start annsd with -mutable)"})
		return
	}
	var req InsertRequest
	if !readBody(w, r, &req) {
		return
	}
	x, err := DecodePoint(req.Point, s.cfg.Dimension)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	id, err := mut.Insert(x)
	if err != nil {
		s.m.mutErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	s.m.inserts.Add(1)
	resp := InsertResponse{ID: id}
	// The post-insert replication offset is the sequence number this op's
	// frame carries when relayed (writes through the router are
	// serialized, so offset-after == this op's seq).
	if rep, ok := s.idx.(Replicator); ok {
		resp.Offset = rep.ReplicationOffset()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDelete serves POST /v1/delete.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	mut, ok := s.idx.(Mutator)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, ErrorResponse{Error: "served index is immutable (start annsd with -mutable)"})
		return
	}
	var req DeleteRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.ID == nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "missing id"})
		return
	}
	deleted, err := mut.Delete(*req.ID)
	if err != nil {
		s.m.mutErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	s.m.deletes.Add(1)
	resp := DeleteResponse{Deleted: deleted}
	if rep, ok := s.idx.(Replicator); ok {
		resp.Offset = rep.ReplicationOffset()
	}
	writeJSON(w, http.StatusOK, resp)
}
