package server

import (
	"encoding/base64"
	"errors"
	"net/http"

	"repro/anns"
	"repro/internal/segment"
)

// Replication endpoints (DESIGN.md §11). A replica's mutations arrive as
// WAL frames relayed by the router: POST /v1/replicate applies a run of
// frames at explicit sequence numbers, POST /v1/frames serves a
// primary's WAL records for replica catch-up. Both answer 501 when the
// served index does not support the surface, exactly like the mutation
// endpoints, so a misconfigured relay target fails loudly and typed.

// Replicator is the replica-side apply surface; *anns.MutableIndex
// implements it. Frame application is the same deterministic state
// transition a local mutation performs, so equal offsets mean
// byte-identical index state.
type Replicator interface {
	ApplyReplicated(seq uint64, op segment.Op) error
	ReplicationOffset() uint64
}

// WALFramer is the primary-side catch-up feed; *anns.MutableIndex
// implements it when configured with a WAL.
type WALFramer interface {
	WALFrames(from uint64, maxBytes int) ([]byte, int, error)
}

// handleReplicate serves POST /v1/replicate: a blob of concatenated WAL
// frames whose first frame carries sequence number from+1. Application
// is transactional per frame, idempotent per offset (a duplicate run is
// a no-op), and strict about order: a gap answers 409 with the replica's
// applied offset so the relay can fetch what is missing from the
// primary's /v1/frames and retry; a diverged stream (wrong insert ID,
// dead delete target) answers 500 and applies nothing further.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	rep, ok := s.idx.(Replicator)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, ErrorResponse{Error: "served index does not accept replicated frames (start annsd with -mutable)"})
		return
	}
	var req ReplicateRequest
	if !readBody(w, r, &req) {
		return
	}
	raw, err := base64.StdEncoding.DecodeString(req.Frames)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "frames are not valid base64: " + err.Error()})
		return
	}
	ops, err := segment.DecodeFrames(raw, s.cfg.Dimension)
	if err != nil {
		s.m.replErrors.Add(1)
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	for i, op := range ops {
		seq := req.From + uint64(i) + 1
		if err := rep.ApplyReplicated(seq, op); err != nil {
			s.m.replErrors.Add(1)
			code := http.StatusInternalServerError
			if errors.Is(err, anns.ErrReplicationGap) {
				code = http.StatusConflict
			}
			writeJSON(w, code, ReplicateResponse{Offset: rep.ReplicationOffset(), Error: err.Error()})
			return
		}
		s.m.replFrames.Add(1)
	}
	writeJSON(w, http.StatusOK, ReplicateResponse{Offset: rep.ReplicationOffset()})
}

// handleFrames serves POST /v1/frames: whole WAL frames for the records
// after applied offset `from`, bounded by max_bytes (at least one frame
// when any exist). The router uses it to catch a lagging or late-joining
// replica up to the primary before resuming relay.
func (s *Server) handleFrames(w http.ResponseWriter, r *http.Request) {
	fr, ok := s.idx.(WALFramer)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, ErrorResponse{Error: "served index has no WAL to stream (start annsd with -mutable -wal)"})
		return
	}
	var req FramesRequest
	if !readBody(w, r, &req) {
		return
	}
	var offset uint64
	if rep, ok := s.idx.(Replicator); ok {
		offset = rep.ReplicationOffset()
	}
	if req.From == offset {
		// Nothing after `from`: an empty answer, not an error — the relay
		// polls this in steady state when a replica is already caught up.
		writeJSON(w, http.StatusOK, FramesResponse{Offset: offset})
		return
	}
	blob, n, err := fr.WALFrames(req.From, req.MaxBytes)
	if err != nil {
		s.m.replErrors.Add(1)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, FramesResponse{
		Frames: base64.StdEncoding.EncodeToString(blob),
		Count:  n,
		Offset: offset,
	})
}
