// Package server is the query-serving layer of the reproduction: an HTTP
// front end over an anns.Index or anns.ShardedIndex with a bounded
// admission queue, a fixed worker pool, per-request deadlines, and atomic
// serving metrics.
//
// The three-layer serving subsystem (see README.md):
//
//	anns.ShardedIndex   sharding: fan-out + Hamming-distance merge
//	internal/server     admission queue, workers, deadlines, /statsz
//	cmd/annsd+annsload  process entry points and load harness
//
// Endpoints: POST /v1/query, POST /v1/batch, POST /v1/near,
// GET /healthz, GET /statsz. Bodies and answers are JSON (wire.go).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/anns"
	"repro/internal/cellprobe"
	"repro/internal/obs"
	"repro/internal/qcache"
)

// Searcher is the index surface the server needs; both *anns.Index and
// *anns.ShardedIndex satisfy it.
type Searcher interface {
	Query(x anns.Point) (anns.Result, error)
	QueryNear(x anns.Point, lambda float64) (anns.Result, error)
	BatchQueryContext(ctx context.Context, xs []anns.Point, workers int) []anns.BatchResult
	Len() int
}

// scratchSearcher is the optional zero-allocation query surface: each pool
// worker owns one anns.Scratch for its lifetime and threads it through
// every single-point query it serves, so steady-state request execution
// reuses one pooled context per worker instead of per call. Both
// *anns.Index and *anns.ShardedIndex implement it.
type scratchSearcher interface {
	QueryScratch(x anns.Point, sc *anns.Scratch) (anns.Result, error)
	QueryNearScratch(x anns.Point, lambda float64, sc *anns.Scratch) (anns.Result, error)
}

// query runs one point query, preferring the worker's scratch path.
func (s *Server) query(sc *anns.Scratch, x anns.Point) (anns.Result, error) {
	if ss, ok := s.idx.(scratchSearcher); ok && sc != nil {
		return ss.QueryScratch(x, sc)
	}
	return s.idx.Query(x)
}

// queryNear is the λ-ANNS counterpart of query.
func (s *Server) queryNear(sc *anns.Scratch, x anns.Point, lambda float64) (anns.Result, error) {
	if ss, ok := s.idx.(scratchSearcher); ok && sc != nil {
		return ss.QueryNearScratch(x, lambda, sc)
	}
	return s.idx.QueryNear(x, lambda)
}

// Config tunes the serving layer. Zero values select the defaults noted
// on each field.
type Config struct {
	// Dimension is the Hamming dimension queries must decode to. Required.
	Dimension int
	// Workers is the request worker pool size. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; a request arriving with the
	// queue full is rejected with 503. Default 1024.
	QueueDepth int
	// BatchWorkers is the intra-batch pool each /v1/batch request uses.
	// Default GOMAXPROCS.
	BatchWorkers int
	// MaxBatch caps len(points) of one /v1/batch request. Default 4096.
	MaxBatch int
	// DefaultTimeout is the per-request deadline when the request does not
	// set timeout_ms. Default 2s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines. Default 30s.
	MaxTimeout time.Duration
	// CacheEntries bounds the query-result cache (cache.go); 0 (the
	// default) disables caching. Hits are answered without entering the
	// admission queue and invalidate by index generation, so enabling the
	// cache never changes an answer — only how it is computed.
	CacheEntries int
	// Index describes where the served index came from (built in-process
	// or loaded from a snapshot); surfaced verbatim on /statsz.
	Index IndexInfo
	// Trace configures request tracing and the slow-query log (obs). The
	// zero value disables emission; incoming X-Anns-Trace headers are
	// still honored so an upstream router always gets its spans back.
	Trace obs.TracerConfig
}

// IndexInfo is the provenance of the served index: the build→snapshot→
// serve lifecycle's answer to "what is this process serving and how fast
// did it come up".
type IndexInfo struct {
	// Source is "built" (preprocessed in-process), "snapshot" (heap-loaded
	// from a file), or "mmap" (zero-copy mapped from a file).
	Source string
	// SnapshotVersion is the snapshot format version served (0 when built).
	SnapshotVersion uint32
	// LoadDuration is how long the build or the snapshot load took.
	LoadDuration time.Duration
	// Path is the snapshot file (empty when built).
	Path string
	// MappedBytes is the mapping length when Source is "mmap" (0
	// otherwise).
	MappedBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.Index.Source == "" {
		c.Index.Source = "built"
	}
	return c
}

// task is one admitted unit of work: run executes on a pool worker with
// the worker's own query scratch (and must not block on the requester),
// done is closed when the task has been executed or skipped. ran is
// written by the worker before closing done, so readers that observed the
// close may read it without further synchronization.
type task struct {
	ctx  context.Context
	run  func(sc *anns.Scratch)
	done chan struct{}
	ran  bool

	// Stage timing, written by the worker before done closes (same
	// synchronization contract as ran): when the task was enqueued, when
	// execution began, and how long each stage took.
	enq       time.Time
	execStart time.Time
	wait      time.Duration
	exec      time.Duration
}

// metrics is the server's atomic counter block, exported via /statsz.
type metrics struct {
	queries, batches, near      atomic.Int64
	errors, rejected, deadline  atomic.Int64
	probes, rounds              atomic.Int64
	maxRounds, maxParallel      atomic.Int64
	inserts, deletes, mutErrors atomic.Int64
	replFrames, replErrors      atomic.Int64
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// record folds one answered query into the counters.
func (m *metrics) record(res anns.Result, err error) {
	m.probes.Add(int64(res.Probes))
	m.rounds.Add(int64(res.Rounds))
	atomicMax(&m.maxRounds, int64(res.Rounds))
	atomicMax(&m.maxParallel, int64(res.MaxParallel))
	if err != nil {
		m.errors.Add(1)
	}
}

// Server is the HTTP serving layer. Construct with New, expose with
// Handler or ListenAndServe, and stop with Close/Shutdown.
type Server struct {
	cfg   Config
	idx   Searcher
	mux   *http.ServeMux
	queue chan *task
	quit  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
	start time.Time
	m     metrics

	cache *qcache.Cache // nil when Config.CacheEntries == 0
	gen   generationer  // nil when the index is immutable (epoch 0)

	reg    *obs.Registry
	tracer *obs.Tracer
	// Per-stage latency histograms (exact LogHistogram distributions,
	// exposed on /metricsz): admission-queue wait, index execution, and
	// cache lookup.
	hWait, hExec, hCache *obs.Histogram

	httpMu sync.Mutex
	httpS  *http.Server
}

// New builds a Server over idx and starts its worker pool.
func New(idx Searcher, cfg Config) (*Server, error) {
	if idx == nil {
		return nil, errors.New("server: nil Searcher")
	}
	cfg = cfg.withDefaults()
	if cfg.Dimension < 2 {
		return nil, errors.New("server: Config.Dimension must be at least 2")
	}
	s := &Server{
		cfg:   cfg,
		idx:   idx,
		mux:   http.NewServeMux(),
		queue: make(chan *task, cfg.QueueDepth),
		quit:  make(chan struct{}),
		start: time.Now(),
		cache: qcache.New(cfg.CacheEntries),
	}
	if g, ok := idx.(generationer); ok {
		s.gen = g
	}
	s.tracer = obs.NewTracer(cfg.Trace)
	s.buildRegistry()
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/near", s.handleNear)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/insert", s.handleInsert)
	s.mux.HandleFunc("POST /v1/delete", s.handleDelete)
	s.mux.HandleFunc("POST /v1/replicate", s.handleReplicate)
	s.mux.HandleFunc("POST /v1/frames", s.handleFrames)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	s.mux.Handle("GET /metricsz", s.reg)
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

func (s *Server) worker() {
	defer s.wg.Done()
	// One scratch per worker, reused across every request the worker
	// serves: the query execution model's per-worker context reuse.
	sc := anns.NewScratch()
	for {
		select {
		case t := <-s.queue:
			s.runTask(t, sc)
		case <-s.quit:
			// Drain: admitted work is a promise to the requester, so on
			// shutdown the pool finishes everything already queued instead
			// of abandoning it to per-request deadlines (which made CI
			// teardown timing-dependent). New admissions stopped with the
			// listener; the queue only shrinks here.
			for {
				select {
				case t := <-s.queue:
					s.runTask(t, sc)
				default:
					return
				}
			}
		}
	}
}

// runTask executes one admitted task. A panic inside the index must not
// kill the pool worker or leave the requester hung on done, so it is
// recovered here and surfaces as a counted error (the requester sees it
// as t.ran == false with a live context, i.e. a 500).
func (s *Server) runTask(t *task, sc *anns.Scratch) {
	defer close(t.done)
	defer func() {
		if r := recover(); r != nil {
			s.m.errors.Add(1)
		}
	}()
	t.execStart = time.Now()
	t.wait = t.execStart.Sub(t.enq)
	s.hWait.Observe(t.wait)
	if t.ctx.Err() == nil {
		t.run(sc)
		t.exec = time.Since(t.execStart)
		s.hExec.Observe(t.exec)
		t.ran = true
	}
}

// Handler returns the HTTP handler (for httptest and custom servers).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown or a listener error.
func (s *Server) ListenAndServe(addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.mux}
	s.httpMu.Lock()
	s.httpS = hs
	s.httpMu.Unlock()
	err := hs.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully stops serving: it closes the listener to new
// requests, waits (up to ctx) for in-flight HTTP requests — and hence
// the admitted tasks they are blocked on — to finish, then stops the
// worker pool, which drains anything still queued. After Shutdown
// returns every admitted request has been answered, which is what makes
// SIGTERM teardown (and the distributed smoke's `kill`) deterministic.
func (s *Server) Shutdown(ctx context.Context) error {
	s.httpMu.Lock()
	hs := s.httpS
	s.httpMu.Unlock()
	var err error
	if hs != nil {
		err = hs.Shutdown(ctx)
	}
	s.Close()
	return err
}

// Close stops the worker pool after draining the admission queue: every
// task queued before Close is executed (or skipped via its own expired
// deadline), never orphaned. Safe to call more than once.
func (s *Server) Close() {
	s.once.Do(func() { close(s.quit) })
	s.wg.Wait()
}

// timeout resolves the per-request deadline from the optional timeout_ms.
func (s *Server) timeout(ms int) time.Duration {
	return ClampTimeout(ms, s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
}

// ClampTimeout resolves a client-requested timeout_ms against a default
// and a cap. Exported so the router front end applies the exact same
// deadline semantics as this server — one clamp, two tiers.
func ClampTimeout(ms int, def, max time.Duration) time.Duration {
	if ms <= 0 {
		return def
	}
	d := time.Duration(ms) * time.Millisecond
	if d > max {
		return max
	}
	return d
}

// MaxBodyBytes caps request bodies on every serving endpoint; the
// router enforces the same limit so a request accepted at the front is
// never rejected at a shard for size.
const MaxBodyBytes = 64 << 20

// WriteJSON writes v as the JSON answer with the given status code.
// Shared by both serving tiers so the error schema and content type
// cannot drift apart.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeJSON(w http.ResponseWriter, code int, v any) { WriteJSON(w, code, v) }

func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return false
	}
	return true
}

// admit queues run under a deadline of d and waits for it to finish.
// It writes the 503/504 error answers itself and reports whether the
// caller may write the success answer. When tr is non-nil the admission
// wait and execution stages are appended to it as spans.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, d time.Duration, tr *obs.Trace, run func(ctx context.Context, sc *anns.Scratch)) bool {
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()
	t := &task{ctx: ctx, run: func(sc *anns.Scratch) { run(ctx, sc) }, done: make(chan struct{}), enq: time.Now()}
	select {
	case s.queue <- t:
	default:
		s.m.rejected.Add(1)
		tr.Add("admit", "", "rejected", time.Now(), 0)
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "admission queue full"})
		return false
	}
	select {
	case <-t.done:
		// A worker may dequeue a task whose deadline already passed and
		// skip it; that close races with ctx.Done below, so only t.ran
		// distinguishes an answered request from an expired one.
		if t.ran {
			tr.Add("admission_wait", "", "ok", t.enq, t.wait)
			tr.Add("execute", "", "ok", t.execStart, t.exec)
			return true
		}
	case <-ctx.Done():
	}
	if err := ctx.Err(); err != nil {
		s.m.deadline.Add(1)
		tr.Add("admit", "", "deadline", t.enq, time.Since(t.enq))
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: err.Error()})
	} else {
		// done closed, not ran, context live: the task panicked.
		tr.Add("execute", "", "panic", t.execStart, 0)
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "internal error"})
	}
	return false
}

// beginTrace starts a trace for one request: adopting the upstream
// router's X-Anns-Trace when present (so spans always flow back to the
// tier assembling the timeline), else minting one locally when this
// server's own tracer is on.
func (s *Server) beginTrace(r *http.Request, start time.Time) *obs.Trace {
	if id := r.Header.Get(obs.TraceHeader); id != "" {
		return obs.NewTrace(id, start)
	}
	return s.tracer.Begin("", start)
}

// finishTrace emits tr and, when the request carried an upstream trace
// header, returns the collected spans on the response so the router can
// rebase them into its own timeline. Must run before the response body
// is written.
func (s *Server) finishTrace(w http.ResponseWriter, r *http.Request, tr *obs.Trace, start time.Time) {
	if tr == nil {
		return
	}
	if r.Header.Get(obs.TraceHeader) != "" {
		if enc := obs.EncodeSpans(tr.Spans()); enc != "" {
			w.Header().Set(obs.SpansHeader, enc)
		}
	}
	s.tracer.Finish(tr, r.URL.Path, time.Since(start))
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := s.beginTrace(r, start)
	var req QueryRequest
	if !readBody(w, r, &req) {
		return
	}
	x, err := DecodePoint(req.Point, s.cfg.Dimension)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	key := QueryCacheKey(x)
	cached, gen, ok := s.lookupCache(key, tr)
	if ok {
		// A hit bypasses the admission queue and the worker pool entirely;
		// it still counts as a served query, but adds no probe/round
		// accounting — no cells were probed.
		s.m.queries.Add(1)
		s.finishTrace(w, r, tr, start)
		writeJSON(w, http.StatusOK, cached)
		return
	}
	var resp QueryResponse
	if !s.admit(w, r, s.timeout(req.TimeoutMS), tr, func(_ context.Context, sc *anns.Scratch) {
		res, qerr := s.query(sc, x)
		s.m.queries.Add(1)
		s.m.record(res, qerr)
		resp = toResponse(res, qerr)
	}) {
		return
	}
	s.cachePut(key, gen, resp)
	s.finishTrace(w, r, tr, start)
	writeJSON(w, http.StatusOK, resp)
}

// lookupCache is cacheGet plus stage accounting: the lookup latency
// lands in the cache_lookup histogram and, when traced, a span.
func (s *Server) lookupCache(key cellprobe.Addr, tr *obs.Trace) (QueryResponse, uint64, bool) {
	if s.cache == nil {
		return QueryResponse{}, 0, false
	}
	cStart := time.Now()
	resp, gen, ok := s.cacheGet(key)
	d := time.Since(cStart)
	s.hCache.Observe(d)
	outcome := "miss"
	if ok {
		outcome = "hit"
	}
	tr.Add("cache_lookup", "", outcome, cStart, d)
	return resp, gen, ok
}

func (s *Server) handleNear(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := s.beginTrace(r, start)
	var req NearRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.Lambda <= 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "lambda must be positive"})
		return
	}
	x, err := DecodePoint(req.Point, s.cfg.Dimension)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	key := NearCacheKey(x, req.Lambda)
	cached, gen, ok := s.lookupCache(key, tr)
	if ok {
		s.m.near.Add(1)
		s.finishTrace(w, r, tr, start)
		writeJSON(w, http.StatusOK, cached)
		return
	}
	var resp QueryResponse
	if !s.admit(w, r, s.timeout(req.TimeoutMS), tr, func(_ context.Context, sc *anns.Scratch) {
		res, qerr := s.queryNear(sc, x, req.Lambda)
		s.m.near.Add(1)
		s.m.record(res, qerr)
		resp = toResponse(res, qerr)
	}) {
		return
	}
	s.cachePut(key, gen, resp)
	s.finishTrace(w, r, tr, start)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tr := s.beginTrace(r, start)
	var req BatchRequest
	if !readBody(w, r, &req) {
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "empty points"})
		return
	}
	if len(req.Points) > s.cfg.MaxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			ErrorResponse{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Points), s.cfg.MaxBatch)})
		return
	}
	xs := make([]anns.Point, len(req.Points))
	for i, enc := range req.Points {
		x, err := DecodePoint(enc, s.cfg.Dimension)
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				ErrorResponse{Error: fmt.Sprintf("point %d: %v", i, err)})
			return
		}
		xs[i] = x
	}
	var resp BatchResponse
	if !s.admit(w, r, s.timeout(req.TimeoutMS), tr, func(ctx context.Context, _ *anns.Scratch) {
		batch := s.idx.BatchQueryContext(ctx, xs, s.cfg.BatchWorkers)
		s.m.batches.Add(1)
		resp.Results = make([]QueryResponse, len(batch))
		executed := int64(0)
		for i, b := range batch {
			resp.Results[i] = toResponse(b.Result, b.Err)
			// Slots the deadline cancelled before dispatch never ran a
			// query; charging them to errors would corrupt error_rate
			// (the scheme's failure probability, not load shedding).
			if errors.Is(b.Err, context.Canceled) || errors.Is(b.Err, context.DeadlineExceeded) {
				continue
			}
			executed++
			s.m.record(b.Result, b.Err)
		}
		s.m.queries.Add(executed)
	}) {
		return
	}
	s.finishTrace(w, r, tr, start)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:   "ok",
		N:        s.idx.Len(),
		Shards:   1,
		Dim:      s.cfg.Dimension,
		UptimeMS: time.Since(s.start).Milliseconds(),
	}
	if sh, ok := s.idx.(interface{ Shards() int }); ok {
		h.Shards = sh.Shards()
	}
	// The build seed identifies *which* index this process serves (shards
	// derive distinct seeds), letting a router cross-check that a replica
	// actually holds the shard its position is assigned — same-size
	// shards are indistinguishable by n alone.
	if o, ok := s.idx.(interface{ Options() anns.Options }); ok {
		h.Seed = o.Options().Seed
	}
	// Mutable servers additionally report write progress: the router seeds
	// its global ID counter from NextID and ranks replicas for promotion
	// by ReplicationOffset.
	if ms, ok := s.idx.(mutableStatser); ok {
		st := ms.MutableStats()
		h.NextID = &st.NextID
		h.ReplicationOffset = &st.ReplicationOffset
	}
	writeJSON(w, http.StatusOK, h)
}

// Stats returns the current counter snapshot (also served at /statsz).
func (s *Server) Stats() StatsSnapshot {
	up := time.Since(s.start)
	snap := StatsSnapshot{
		UptimeMS:          up.Milliseconds(),
		Queries:           s.m.queries.Load(),
		Batches:           s.m.batches.Load(),
		Near:              s.m.near.Load(),
		Errors:            s.m.errors.Load(),
		Rejected:          s.m.rejected.Load(),
		DeadlineExceeded:  s.m.deadline.Load(),
		Probes:            s.m.probes.Load(),
		Rounds:            s.m.rounds.Load(),
		MaxRounds:         s.m.maxRounds.Load(),
		MaxParallel:       s.m.maxParallel.Load(),
		QueueLen:          len(s.queue),
		Workers:           s.cfg.Workers,
		IndexSource:       s.cfg.Index.Source,
		SnapshotVersion:   s.cfg.Index.SnapshotVersion,
		IndexLoadMS:       s.cfg.Index.LoadDuration.Milliseconds(),
		MappedBytes:       s.cfg.Index.MappedBytes,
		Inserts:           s.m.inserts.Load(),
		Deletes:           s.m.deletes.Load(),
		MutationErrors:    s.m.mutErrors.Load(),
		ReplicatedFrames:  s.m.replFrames.Load(),
		ReplicationErrors: s.m.replErrors.Load(),
		Cache:             CacheStatsOf(s.cache),
	}
	if ms, ok := s.idx.(mutableStatser); ok {
		st := ms.MutableStats()
		snap.Mutable = &MutableStats{
			LiveN:             st.LiveN,
			Memtable:          st.Memtable,
			SealedSegments:    st.Sealed,
			SegmentsBuilt:     st.SegmentsBuilt,
			Compactions:       st.Compactions,
			Tombstones:        st.Tombstones,
			NextID:            st.NextID,
			WALReplayed:       st.WALReplayed,
			WALBytes:          st.WALBytes,
			LastCompactError:  st.LastCompactError,
			Generation:        st.Generation,
			ReplicationOffset: st.ReplicationOffset,
		}
	}
	if sec := up.Seconds(); sec > 0 {
		snap.QPS = float64(snap.Queries+snap.Near) / sec
	}
	if total := snap.Queries + snap.Near; total > 0 {
		snap.ErrorRate = float64(snap.Errors) / float64(total)
	}
	return snap
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
