package snapshot

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrMmapUnavailable is returned by MapFile when the platform has no
// memory-mapping support (or the test hook disables it). Auto-mode
// loaders treat it — like any MapFile error — as a reason to fall back
// to the heap decoder, never as a fatal load failure.
var ErrMmapUnavailable = errors.New("snapshot: mmap unavailable on this platform")

// forceMmapUnavailable makes MapFile fail with ErrMmapUnavailable
// regardless of platform: the test hook behind fallback-path coverage.
var forceMmapUnavailable atomic.Bool

// SetMmapUnavailableForTest forces (or restores) MapFile availability.
// Tests that flip it must restore it with defer; production code never
// calls it.
func SetMmapUnavailableForTest(unavailable bool) {
	forceMmapUnavailable.Store(unavailable)
}

// Mapped is a read-only memory mapping of a snapshot file. Its bytes
// back every zero-copy view a ByteDecoder hands out, so it must stay
// open for the lifetime of any index loaded from it; Close unmaps and
// invalidates all such views (touching them afterwards faults).
type Mapped struct {
	data   []byte
	path   string
	closed atomic.Bool
}

// MapFile maps path read-only. The caller owns the mapping and must
// Close it; errors (including ErrMmapUnavailable on platforms without
// mmap) leave nothing to clean up.
func MapFile(path string) (*Mapped, error) {
	if forceMmapUnavailable.Load() {
		return nil, fmt.Errorf("%w (forced by test hook)", ErrMmapUnavailable)
	}
	data, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	return &Mapped{data: data, path: path}, nil
}

// Bytes returns the mapped image. Callers must not mutate it and must
// not retain it past Close.
func (m *Mapped) Bytes() []byte { return m.data }

// Len returns the mapped length in bytes.
func (m *Mapped) Len() int { return len(m.data) }

// Path returns the mapped file's path.
func (m *Mapped) Path() string { return m.path }

// VerifyChecksum computes the CRC-32 over the whole mapped image and
// compares it to the trailer. It touches every page, so it costs what a
// heap load costs in I/O — run it off the boot path.
func (m *Mapped) VerifyChecksum() error { return verifyImageChecksum(m.data) }

// Close unmaps the file. Safe to call twice; every view handed out by a
// ByteDecoder over this mapping becomes invalid.
func (m *Mapped) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	data := m.data
	m.data = nil
	return unmapFile(data)
}

// Decoder returns a ByteDecoder positioned at the mapping's body.
func (m *Mapped) Decoder() (*ByteDecoder, error) { return NewByteDecoder(m.data) }
