package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// The codec is a checksummed little-endian binary stream:
//
//	magic [8]byte  "ANNSSNAP"
//	version u32    FormatVersion
//	kind    u32    KindCore | KindIndex | KindSharded
//	body           kind-specific scalars, section tables, raw word arrays
//	crc     u32    IEEE CRC-32 of everything before it
//
// Word arrays are padded to an 8-byte file offset and written wholesale
// (raw little-endian uint64s), so the body is one sequential scan on
// either side and a loaded section is a single allocation that the
// per-level views subslice — the mmap-friendly layout the flat index
// storage makes possible.

const (
	// FormatVersion is the current snapshot format version. Writers
	// always emit it; readers accept it and every version in
	// [MinFormatVersion, FormatVersion] whose byte layout is a strict
	// subset of the current one. The policy is documented in DESIGN.md
	// §5: a change to an existing kind's byte layout bumps the version
	// AND raises MinFormatVersion (no in-place migration — rebuild or
	// re-save), while a purely additive change (a new kind, as v2's
	// KindMutable) bumps only FormatVersion so older files keep loading.
	FormatVersion = 2

	// MinFormatVersion is the oldest version this build still reads.
	// v1 files differ from v2 only in not being able to contain
	// KindMutable bodies, so they load unchanged.
	MinFormatVersion = 1

	magic = "ANNSSNAP"
)

// Top-level snapshot kinds.
const (
	// KindCore is a single core.Index.
	KindCore uint32 = 1
	// KindIndex is an anns.Index: serving options plus one core index per
	// boosted repetition.
	KindIndex uint32 = 2
	// KindSharded is an anns.ShardedIndex: options, the shard partition,
	// and one embedded index per shard.
	KindSharded uint32 = 3
	// KindMutable is an anns.MutableIndex: the mutable tier's full state
	// — serving options, the rebuilt base with its ID mapping, sealed
	// segments (indexed or raw), the memtable, and live tombstones.
	// Introduced in format v2.
	KindMutable uint32 = 4
)

// Sentinel errors. Load wraps them with context; test with errors.Is.
var (
	ErrBadMagic = errors.New("snapshot: not a snapshot file (bad magic)")
	ErrVersion  = errors.New("snapshot: unsupported format version")
	ErrChecksum = errors.New("snapshot: checksum mismatch (corrupted file)")
	ErrFormat   = errors.New("snapshot: malformed snapshot")
)

const wordChunk = 8192 // words encoded/decoded per buffer fill (64 KiB)

// Encoder writes one snapshot stream. Errors are sticky: check Err (or
// Close's return) once at the end.
type Encoder struct {
	bw  *bufio.Writer
	crc hash.Hash32
	w   io.Writer // bw teed with crc
	buf []byte
	n   int64
	err error
}

// NewEncoder starts a snapshot of the given kind on w.
func NewEncoder(w io.Writer, kind uint32) *Encoder {
	bw := bufio.NewWriterSize(w, 1<<20)
	e := &Encoder{bw: bw, crc: crc32.NewIEEE(), buf: make([]byte, 8*wordChunk)}
	e.w = io.MultiWriter(bw, e.crc)
	e.write([]byte(magic))
	e.U32(FormatVersion)
	e.U32(kind)
	return e
}

func (e *Encoder) write(p []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(p)
	e.n += int64(len(p))
}

// U32 writes a 32-bit unsigned integer.
func (e *Encoder) U32(v uint32) {
	binary.LittleEndian.PutUint32(e.buf[:4], v)
	e.write(e.buf[:4])
}

// U64 writes a 64-bit unsigned integer.
func (e *Encoder) U64(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:8], v)
	e.write(e.buf[:8])
}

// F64 writes a float64 by bit image.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool writes a boolean as one byte.
func (e *Encoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf[0] = b
	e.write(e.buf[:1])
}

// Words writes a raw word array (no length prefix — lengths live in the
// section tables), preceded by padding to an 8-byte file offset.
func (e *Encoder) Words(ws []uint64) {
	e.align()
	for len(ws) > 0 && e.err == nil {
		chunk := ws
		if len(chunk) > wordChunk {
			chunk = chunk[:wordChunk]
		}
		for i, w := range chunk {
			binary.LittleEndian.PutUint64(e.buf[8*i:], w)
		}
		e.write(e.buf[:8*len(chunk)])
		ws = ws[len(chunk):]
	}
}

func (e *Encoder) align() {
	if pad := int(e.n & 7); pad != 0 {
		for i := 0; i < 8-pad; i++ {
			e.buf[i] = 0
		}
		e.write(e.buf[:8-pad])
	}
}

// Err returns the first error encountered.
func (e *Encoder) Err() error { return e.err }

// Close writes the checksum trailer and flushes. The Encoder must not be
// used afterwards.
func (e *Encoder) Close() error {
	if e.err != nil {
		return e.err
	}
	sum := e.crc.Sum32()
	binary.LittleEndian.PutUint32(e.buf[:4], sum)
	if _, err := e.bw.Write(e.buf[:4]); err != nil {
		return err
	}
	return e.bw.Flush()
}

// Decoder is the reading side of the codec. Two implementations exist:
// StreamDecoder copies every section into fresh heap allocations from any
// io.Reader and verifies the checksum inline; ByteDecoder walks an
// in-memory byte image (typically an mmap-ed file) and hands out
// zero-copy word views into it. Decode* functions are written against
// this interface so both paths share one format walk.
type Decoder interface {
	// Kind returns the snapshot kind declared in the header.
	Kind() uint32
	// Version returns the format version declared in the header.
	Version() uint32
	U32() uint32
	U64() uint64
	F64() float64
	Bool() bool
	// WordsInto fills dst with the next word array (always a copy).
	WordsInto(dst []uint64)
	// WordsView returns the next n-word array, borrowing the decoder's
	// backing storage when it can (ByteDecoder on a little-endian host
	// with 8-byte-aligned data) and allocating a copy otherwise. Callers
	// must treat the result as immutable: it may alias a shared mapping.
	WordsView(n uint64) []uint64
	// SkipWords discards a word array without materializing it.
	SkipWords(n uint64)
	// Err returns the first error encountered.
	Err() error
	// Close finishes the walk: StreamDecoder verifies the checksum
	// trailer, ByteDecoder verifies the cursor consumed the body exactly
	// (its checksum policy is documented on the type).
	Close() error
	// Bytes returns the number of body bytes consumed so far.
	Bytes() int64
}

// StreamDecoder reads one snapshot stream from an io.Reader, verifying
// the checksum on Close. It is the heap load path: every word array is
// copied into fresh allocations.
type StreamDecoder struct {
	br      *bufio.Reader
	crc     hash.Hash32
	r       io.Reader // br teed through crc
	buf     []byte
	n       int64
	kind    uint32
	version uint32
	err     error
}

// NewDecoder reads and validates the stream header. The reported kind
// selects which Decode* calls may follow.
func NewDecoder(r io.Reader) (*StreamDecoder, error) {
	d := &StreamDecoder{br: bufio.NewReaderSize(r, 1<<20), crc: crc32.NewIEEE(), buf: make([]byte, 8*wordChunk)}
	d.r = io.TeeReader(d.br, d.crc)
	head := make([]byte, len(magic))
	if err := d.read(head); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBadMagic, err)
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	d.version = d.U32()
	if d.err == nil && (d.version < MinFormatVersion || d.version > FormatVersion) {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d..%d",
			ErrVersion, d.version, MinFormatVersion, FormatVersion)
	}
	d.kind = d.U32()
	if d.err != nil {
		return nil, d.err
	}
	return d, nil
}

// Kind returns the snapshot kind declared in the header.
func (d *StreamDecoder) Kind() uint32 { return d.kind }

// Version returns the format version declared in the header.
func (d *StreamDecoder) Version() uint32 { return d.version }

func (d *StreamDecoder) read(p []byte) error {
	if d.err != nil {
		return d.err
	}
	_, err := io.ReadFull(d.r, p)
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		// Truncation is a malformed file, so the error is typed ErrFormat
		// (while still matching io.ErrUnexpectedEOF for callers that care
		// about the mechanism): a zero-length or shorter-than-header file
		// must not surface as a bare io error.
		d.err = fmt.Errorf("%w: truncated file: %w", ErrFormat, err)
		return d.err
	}
	d.n += int64(len(p))
	return nil
}

// U32 reads a 32-bit unsigned integer.
func (d *StreamDecoder) U32() uint32 {
	if d.read(d.buf[:4]) != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(d.buf[:4])
}

// U64 reads a 64-bit unsigned integer.
func (d *StreamDecoder) U64() uint64 {
	if d.read(d.buf[:8]) != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(d.buf[:8])
}

// F64 reads a float64.
func (d *StreamDecoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a boolean.
func (d *StreamDecoder) Bool() bool {
	if d.read(d.buf[:1]) != nil {
		return false
	}
	return d.buf[0] != 0
}

// WordsInto fills dst from the stream (after alignment padding). The
// caller sizes dst from a validated section table, so a hostile length
// never reaches an allocation.
func (d *StreamDecoder) WordsInto(dst []uint64) {
	d.alignRead()
	for len(dst) > 0 && d.err == nil {
		chunk := len(dst)
		if chunk > wordChunk {
			chunk = wordChunk
		}
		if d.read(d.buf[:8*chunk]) != nil {
			return
		}
		for i := 0; i < chunk; i++ {
			dst[i] = binary.LittleEndian.Uint64(d.buf[8*i:])
		}
		dst = dst[chunk:]
	}
}

// WordsView returns the next n-word array as a fresh allocation — the
// stream path always copies. The caller's section table validated n.
func (d *StreamDecoder) WordsView(n uint64) []uint64 {
	out := make([]uint64, n)
	d.WordsInto(out)
	return out
}

// SkipWords discards a word array without materializing it (Inspect).
func (d *StreamDecoder) SkipWords(n uint64) {
	d.alignRead()
	for n > 0 && d.err == nil {
		chunk := uint64(wordChunk)
		if chunk > n {
			chunk = n
		}
		if d.read(d.buf[:8*chunk]) != nil {
			return
		}
		n -= chunk
	}
}

func (d *StreamDecoder) alignRead() {
	if pad := int(d.n & 7); pad != 0 {
		d.read(d.buf[:8-pad])
	}
}

// Err returns the first error encountered.
func (d *StreamDecoder) Err() error { return d.err }

// Close reads the checksum trailer and verifies it against everything
// read so far. It must be called after the body has been fully consumed.
func (d *StreamDecoder) Close() error {
	if d.err != nil {
		return d.err
	}
	want := d.crc.Sum32()
	var tr [4]byte
	if _, err := io.ReadFull(d.br, tr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("%w: truncated file: %w", ErrFormat, err)
	}
	if got := binary.LittleEndian.Uint32(tr[:]); got != want {
		return ErrChecksum
	}
	return nil
}

// Bytes returns the number of body bytes consumed so far (Inspect).
func (d *StreamDecoder) Bytes() int64 { return d.n }
