package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// TestTruncationIsTypedErrFormat pins that degenerate files — zero
// bytes, or shorter than the magic+version+kind header — surface as the
// typed ErrFormat (possibly alongside ErrBadMagic), never as a bare io
// error: callers dispatch on the sentinel errors, and a 0-byte file
// (a crashed save, an empty mount) must land in the "malformed" branch.
func TestTruncationIsTypedErrFormat(t *testing.T) {
	cases := map[string][]byte{
		"zero-length":    {},
		"partial-magic":  []byte(magic[:5]),
		"magic-only":     []byte(magic),
		"partial-header": append([]byte(magic), 2, 0), // half a version field
	}
	for name, raw := range cases {
		if _, err := NewDecoder(bytes.NewReader(raw)); !errors.Is(err, ErrFormat) {
			t.Errorf("NewDecoder(%s): got %v, want ErrFormat", name, err)
		}
		if _, err := Inspect(bytes.NewReader(raw)); !errors.Is(err, ErrFormat) {
			t.Errorf("Inspect(%s): got %v, want ErrFormat", name, err)
		}
		if _, err := LoadCore(bytes.NewReader(raw)); !errors.Is(err, ErrFormat) {
			t.Errorf("LoadCore(%s): got %v, want ErrFormat", name, err)
		}
	}
	// A wrong (non-truncated) magic stays ErrBadMagic, not plain ErrFormat.
	junk := []byte("NOTASNAPxxxxxxxxxxxx")
	if _, err := NewDecoder(bytes.NewReader(junk)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("junk magic: got %v, want ErrBadMagic", err)
	}
}

// asVersion rewrites a snapshot's header version and fixes the CRC
// trailer so the stream stays internally consistent.
func asVersion(raw []byte, v uint32) []byte {
	out := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(out[len(magic):], v)
	sum := crc32.ChecksumIEEE(out[:len(out)-4])
	binary.LittleEndian.PutUint32(out[len(out)-4:], sum)
	return out
}

// TestV1SnapshotsStillLoad pins the backward-compat promise of the v2
// bump: the v1 byte layout is a strict subset of v2 (v2 only adds
// KindMutable), so a v1 file must decode unchanged and report its own
// version from Inspect.
func TestV1SnapshotsStillLoad(t *testing.T) {
	raw := asVersion(savedBytes(t), 1)
	idx, err := LoadCore(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("LoadCore(v1): %v", err)
	}
	if idx == nil || idx.N() != 16 {
		t.Fatalf("v1 load produced a wrong index")
	}
	info, err := Inspect(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Inspect(v1): %v", err)
	}
	if info.Version != 1 {
		t.Errorf("Inspect reports version %d for a v1 file", info.Version)
	}
	// Future versions are still refused.
	if _, err := LoadCore(bytes.NewReader(asVersion(savedBytes(t), FormatVersion+1))); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: got %v, want ErrVersion", err)
	}
}
