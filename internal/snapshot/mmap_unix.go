//go:build unix

package snapshot

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only via mmap(2). A zero-length file maps to an
// empty (non-nil) slice so the caller's envelope validation produces the
// right typed error instead of an mmap failure.
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return []byte{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("snapshot: %s is %d bytes, too large to map", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("snapshot: mmap %s: %w", path, err)
	}
	return data, nil
}

func unmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
