//go:build !unix

package snapshot

// mapFile on platforms without a wired-up mmap implementation reports
// ErrMmapUnavailable; auto-mode loaders fall back to the heap decoder.
func mapFile(path string) ([]byte, error) {
	return nil, ErrMmapUnavailable
}

func unmapFile(data []byte) error { return nil }
