package snapshot

import (
	"fmt"
	"io"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/sketch"
	"repro/internal/table"
)

// Section tags of a core-index body, in file order. The flat storage
// refactor makes each section one contiguous word array: all levels of a
// family (matrices or database sketches) share a single backing array on
// both sides of the stream.
const (
	SecDB           uint32 = 1 // the database points, n rows
	SecAccMatrix    uint32 = 2 // accurate matrices M_0..M_L, row-major
	SecCoarseMatrix uint32 = 3 // coarse matrices N_0..N_L
	SecAccSketch    uint32 = 4 // per-level accurate sketches of the database
	SecCoarseSketch uint32 = 5 // per-level coarse sketches of the database
)

// SectionName renders a section tag for inspection output.
func SectionName(tag uint32) string {
	switch tag {
	case SecDB:
		return "db"
	case SecAccMatrix:
		return "acc-matrices"
	case SecCoarseMatrix:
		return "coarse-matrices"
	case SecAccSketch:
		return "acc-sketches"
	case SecCoarseSketch:
		return "coarse-sketches"
	default:
		return fmt.Sprintf("sec[%d]", tag)
	}
}

// Sanity ceilings on header-declared shapes, so a malformed or hostile
// header cannot drive section-size arithmetic into overflow or absurd
// allocations — or the family-shape derivation into a panic — before
// the checksum is ever seen.
const (
	maxDim          = 1 << 22
	maxN            = 1 << 32
	maxK            = 1 << 16
	maxMult         = 1 << 12 // |C1|, |C2|, |S| ceiling (defaults are ~24)
	maxLevels       = 1 << 12 // L ceiling (L grows with log_α d)
	maxRows         = 1 << 24 // per-matrix row ceiling
	maxSectionWords = 1 << 31 // 16 GiB per section, far above real snapshots
)

// coreHeader is the decoded scalar prefix of a core-index body.
type coreHeader struct {
	p        core.Params
	d, n     int
	shape    sketch.Shape
	sections []Section
}

// Section is one entry of a body's section table: a tag plus the payload
// length in 64-bit words.
type Section struct {
	Tag   uint32
	Words uint64
}

// expectedSections computes the section table implied by a header; the
// one on the wire must match exactly.
func (h *coreHeader) expectedSections() []Section {
	dw := uint64(bitvec.Words(h.d))
	n := uint64(h.n)
	levels := uint64(h.shape.L + 1)
	accW := uint64(bitvec.Words(h.shape.AccRows))
	out := []Section{
		{SecDB, n * dw},
		{SecAccMatrix, levels * uint64(h.shape.AccRows) * dw},
		{SecAccSketch, levels * n * accW},
	}
	if h.shape.CoarseRows > 0 {
		coarseW := uint64(bitvec.Words(h.shape.CoarseRows))
		out = append(out,
			Section{SecCoarseMatrix, levels * uint64(h.shape.CoarseRows) * dw},
			Section{SecCoarseSketch, levels * n * coarseW},
		)
	}
	return out
}

// EncodeCore writes one core.Index body onto an open encoder. Lazily
// built components are materialized first, so the saved index is always
// complete.
func EncodeCore(e *Encoder, idx *core.Index) {
	p := idx.P
	e.F64(p.Gamma)
	e.F64(p.C1)
	e.F64(p.C2)
	e.F64(p.CExp)
	e.U64(uint64(p.K))
	e.F64(p.S)
	e.U64(p.Seed)
	e.F64(p.CutFraction)
	e.Bool(p.LiteralDeltaCut)
	e.U64(uint64(idx.D))
	e.U64(uint64(idx.N()))
	sh := sketch.ShapeOf(p.SketchParams(idx.D, idx.N()))
	e.U64(uint64(sh.L))
	e.U64(uint64(sh.AccRows))
	e.U64(uint64(sh.CoarseRows))

	ball := idx.Tables.SketchBlocks()
	coarse := idx.Tables.CoarseBlocks()
	h := coreHeader{p: p, d: idx.D, n: idx.N(), shape: sh}
	secs := h.expectedSections()
	e.U32(uint32(len(secs)))
	for _, s := range secs {
		e.U32(s.Tag)
		e.U64(s.Words)
	}
	e.Words(idx.Tables.DBBlock.Words)
	for _, m := range idx.Fam.Accurate {
		e.Words(m.Block().Words)
	}
	for _, b := range ball {
		e.Words(b.Words)
	}
	if sh.CoarseRows > 0 {
		for _, m := range idx.Fam.Coarse {
			e.Words(m.Block().Words)
		}
		for _, b := range coarse {
			e.Words(b.Words)
		}
	}
}

// decodeCoreHeader reads and validates the scalar prefix and section
// table of a core body.
func decodeCoreHeader(d Decoder) (*coreHeader, error) {
	var p core.Params
	p.Gamma = d.F64()
	p.C1 = d.F64()
	p.C2 = d.F64()
	p.CExp = d.F64()
	p.K = int(d.U64())
	p.S = d.F64()
	p.Seed = d.U64()
	p.CutFraction = d.F64()
	p.LiteralDeltaCut = d.Bool()
	dd := d.U64()
	n := d.U64()
	fileL := d.U64()
	fileAccRows := d.U64()
	fileCoarseRows := d.U64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	// Every bound here guards a downstream computation: n >= 2 and
	// gamma > 1 keep the family-shape derivation from panicking, the
	// multiplier and shape ceilings keep row counts and the section-size
	// products finite and allocatable. NaNs fail the range comparisons.
	if dd < 2 || dd > maxDim || n < 2 || n > maxN || p.K < 1 || p.K > maxK ||
		!(p.Gamma > 1) || p.Gamma > float64(maxDim) ||
		!(p.C1 >= 0 && p.C1 <= maxMult) || !(p.C2 >= 0 && p.C2 <= maxMult) ||
		!(p.S >= -maxMult && p.S <= maxMult) {
		return nil, fmt.Errorf("%w: implausible header (d=%d n=%d k=%d gamma=%v c1=%v c2=%v s=%v)",
			ErrFormat, dd, n, p.K, p.Gamma, p.C1, p.C2, p.S)
	}
	h := &coreHeader{p: p, d: int(dd), n: int(n)}
	h.shape = sketch.ShapeOf(p.SketchParams(h.d, h.n))
	if h.shape.L > maxLevels || h.shape.AccRows > maxRows || h.shape.CoarseRows > maxRows {
		return nil, fmt.Errorf("%w: implausible family shape (L=%d rows=%d/%d)",
			ErrFormat, h.shape.L, h.shape.AccRows, h.shape.CoarseRows)
	}
	if int(fileL) != h.shape.L || int(fileAccRows) != h.shape.AccRows || int(fileCoarseRows) != h.shape.CoarseRows {
		return nil, fmt.Errorf("%w: header shape (L=%d rows=%d/%d) disagrees with parameters (L=%d rows=%d/%d)",
			ErrFormat, fileL, fileAccRows, fileCoarseRows, h.shape.L, h.shape.AccRows, h.shape.CoarseRows)
	}
	want := h.expectedSections()
	for _, s := range want {
		if s.Words > maxSectionWords {
			return nil, fmt.Errorf("%w: section %s wants %d words", ErrFormat, SectionName(s.Tag), s.Words)
		}
	}
	count := d.U32()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if int(count) != len(want) {
		return nil, fmt.Errorf("%w: %d sections, want %d", ErrFormat, count, len(want))
	}
	h.sections = make([]Section, count)
	for i := range h.sections {
		h.sections[i] = Section{Tag: d.U32(), Words: d.U64()}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	for i, s := range h.sections {
		if s != want[i] {
			return nil, fmt.Errorf("%w: section %d is %s/%d words, want %s/%d",
				ErrFormat, i, SectionName(s.Tag), s.Words, SectionName(want[i].Tag), want[i].Words)
		}
	}
	return h, nil
}

// DecodeCore reads one core.Index body from an open decoder, rebinding
// the flat word arrays without any per-entry work: one WordsView per
// section (zero-copy on the mmap path, one allocation on the stream
// path), per-level views subsliced out of it.
func DecodeCore(d Decoder) (*core.Index, error) {
	h, err := decodeCoreHeader(d)
	if err != nil {
		return nil, err
	}
	sp := h.p.SketchParams(h.d, h.n)
	levels := h.shape.L + 1

	db := bitvec.Block{RowWords: bitvec.Words(h.d), Words: d.WordsView(h.sections[0].Words)}
	accMat := bitvec.Block{RowWords: bitvec.Words(h.d), Words: d.WordsView(h.sections[1].Words)}
	if err := d.Err(); err != nil {
		return nil, err
	}
	accurate := make([]*sketch.Matrix, levels)
	for i := range accurate {
		m, err := sketch.MatrixFromBlock(h.shape.AccRows, h.d, h.shape.Prob(i),
			accMat.Slice(i*h.shape.AccRows, (i+1)*h.shape.AccRows))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		accurate[i] = m
	}

	accSk := bitvec.Block{RowWords: bitvec.Words(h.shape.AccRows), Words: d.WordsView(h.sections[2].Words)}
	if err := d.Err(); err != nil {
		return nil, err
	}
	ball := make([]bitvec.Block, levels)
	for i := range ball {
		ball[i] = accSk.Slice(i*h.n, (i+1)*h.n)
	}

	var coarse []*sketch.Matrix
	var coarseSk []bitvec.Block
	if h.shape.CoarseRows > 0 {
		coarseMat := bitvec.Block{RowWords: bitvec.Words(h.d), Words: d.WordsView(h.sections[3].Words)}
		if err := d.Err(); err != nil {
			return nil, err
		}
		coarse = make([]*sketch.Matrix, levels)
		for j := range coarse {
			m, err := sketch.MatrixFromBlock(h.shape.CoarseRows, h.d, h.shape.Prob(j),
				coarseMat.Slice(j*h.shape.CoarseRows, (j+1)*h.shape.CoarseRows))
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrFormat, err)
			}
			coarse[j] = m
		}
		coarseBlock := bitvec.Block{RowWords: bitvec.Words(h.shape.CoarseRows), Words: d.WordsView(h.sections[4].Words)}
		if err := d.Err(); err != nil {
			return nil, err
		}
		coarseSk = make([]bitvec.Block, levels)
		for j := range coarseSk {
			coarseSk[j] = coarseBlock.Slice(j*h.n, (j+1)*h.n)
		}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}

	fam, err := sketch.NewFamilyFromMatrices(sp, accurate, coarse)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	ts, err := table.NewSetFromBlocks(fam, db, ball, coarseSk)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return core.NewIndexFromParts(h.p, h.d, fam, ts), nil
}

// inspectCore reads a core body's headers and skips its payload.
func inspectCore(d Decoder) (CoreInfo, error) {
	h, err := decodeCoreHeader(d)
	if err != nil {
		return CoreInfo{}, err
	}
	for _, s := range h.sections {
		d.SkipWords(s.Words)
	}
	if err := d.Err(); err != nil {
		return CoreInfo{}, err
	}
	return CoreInfo{
		D: h.d, N: h.n, K: h.p.K,
		Gamma: h.p.Gamma, S: h.p.S, Seed: h.p.Seed,
		L: h.shape.L, AccRows: h.shape.AccRows, CoarseRows: h.shape.CoarseRows,
		Sections: h.sections,
	}, nil
}

// SaveCore writes a standalone core-index snapshot to w.
func SaveCore(w io.Writer, idx *core.Index) error {
	e := NewEncoder(w, KindCore)
	EncodeCore(e, idx)
	return e.Close()
}

// LoadCore reads a standalone core-index snapshot from r, verifying the
// checksum before handing the index out.
func LoadCore(r io.Reader) (*core.Index, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	if d.Kind() != KindCore {
		return nil, fmt.Errorf("%w: kind %d is not a core-index snapshot", ErrFormat, d.Kind())
	}
	idx, err := DecodeCore(d)
	if err != nil {
		return nil, err
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	return idx, nil
}
