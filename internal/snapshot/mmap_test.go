package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// saveTempCore writes a core snapshot to a temp file and returns its path
// and raw bytes.
func saveTempCore(t *testing.T, idx *core.Index) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveCore(&buf, idx); err != nil {
		t.Fatalf("SaveCore: %v", err)
	}
	path := filepath.Join(t.TempDir(), "core.snap")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

// TestByteDecoderMatchesStreamDecoder loads the same core snapshot through
// both decoders and pins identical query results and accounting.
func TestByteDecoderMatchesStreamDecoder(t *testing.T) {
	idx, queries := testIndex(t, 48, 128, 2, 21)
	path, raw := saveTempCore(t, idx)

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	heap, err := LoadCore(f)
	if err != nil {
		t.Fatalf("stream LoadCore: %v", err)
	}

	bd, err := NewByteDecoder(raw)
	if err != nil {
		t.Fatalf("NewByteDecoder: %v", err)
	}
	if bd.Kind() != KindCore {
		t.Fatalf("kind = %d, want KindCore", bd.Kind())
	}
	mapped, err := DecodeCore(bd)
	if err != nil {
		t.Fatalf("byte DecodeCore: %v", err)
	}
	if err := bd.Close(); err != nil {
		t.Fatalf("structural close: %v", err)
	}
	if bd.BorrowedBytes() == 0 {
		t.Fatal("zero-copy path not exercised: no bytes borrowed")
	}
	if bd.CopiedBytes() != 0 {
		t.Fatalf("aligned little-endian image still copied %d bytes", bd.CopiedBytes())
	}

	s1 := core.NewAlgo1(heap, 2)
	s2 := core.NewAlgo1(mapped, 2)
	for _, q := range queries {
		sameResult(t, "byte-vs-stream", s1.Query(q), s2.Query(q))
	}
}

// TestByteDecoderUnalignedFallsBackToCopy hands the decoder an image at an
// odd base address: every section must be copied (no zero-copy views),
// with identical decoded contents.
func TestByteDecoderUnalignedFallsBackToCopy(t *testing.T) {
	idx, queries := testIndex(t, 32, 96, 2, 22)
	_, raw := saveTempCore(t, idx)

	backing := make([]byte, len(raw)+1)
	copy(backing[1:], raw)
	misaligned := backing[1:]

	bd, err := NewByteDecoder(misaligned)
	if err != nil {
		t.Fatalf("NewByteDecoder: %v", err)
	}
	decoded, err := DecodeCore(bd)
	if err != nil {
		t.Fatalf("DecodeCore on misaligned image: %v", err)
	}
	if err := bd.Close(); err != nil {
		t.Fatal(err)
	}
	if hostLittleEndian && bd.BorrowedBytes() != 0 {
		t.Fatalf("misaligned image still borrowed %d bytes", bd.BorrowedBytes())
	}
	if bd.CopiedBytes() == 0 {
		t.Fatal("copy fallback not exercised")
	}
	s1 := core.NewAlgo1(idx, 2)
	s2 := core.NewAlgo1(decoded, 2)
	for _, q := range queries {
		sameResult(t, "misaligned", s1.Query(q), s2.Query(q))
	}
}

// TestMapFileRoundtrip maps a real file and decodes through the mapping.
func TestMapFileRoundtrip(t *testing.T) {
	idx, queries := testIndex(t, 32, 96, 2, 23)
	path, _ := saveTempCore(t, idx)

	m, err := MapFile(path)
	if err != nil {
		if errors.Is(err, ErrMmapUnavailable) {
			t.Skip("mmap unavailable on this platform")
		}
		t.Fatalf("MapFile: %v", err)
	}
	defer m.Close()
	if err := m.VerifyChecksum(); err != nil {
		t.Fatalf("VerifyChecksum: %v", err)
	}
	d, err := m.Decoder()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeCore(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	s1 := core.NewAlgo1(idx, 2)
	s2 := core.NewAlgo1(decoded, 2)
	for _, q := range queries {
		sameResult(t, "mapped", s1.Query(q), s2.Query(q))
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMapFileForcedUnavailable covers the test hook and the typed error.
func TestMapFileForcedUnavailable(t *testing.T) {
	SetMmapUnavailableForTest(true)
	defer SetMmapUnavailableForTest(false)
	_, err := MapFile("irrelevant")
	if !errors.Is(err, ErrMmapUnavailable) {
		t.Fatalf("err = %v, want ErrMmapUnavailable", err)
	}
}

// TestByteDecoderChecksumPolicy pins the documented split: a payload flip
// passes the structural walk but fails VerifyChecksum; header corruption
// fails immediately with typed errors.
func TestByteDecoderChecksumPolicy(t *testing.T) {
	idx, _ := testIndex(t, 32, 96, 2, 24)
	_, raw := saveTempCore(t, idx)

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40 // payload bit, not header, not trailer
	bd, err := NewByteDecoder(flipped)
	if err != nil {
		t.Fatalf("structural open rejected payload corruption: %v", err)
	}
	if _, err := DecodeCore(bd); err != nil {
		// Acceptable: the flip may land in a scalar header region.
		t.Logf("corruption caught structurally: %v", err)
	}
	if err := bd.VerifyChecksum(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("VerifyChecksum = %v, want ErrChecksum", err)
	}

	badMagic := append([]byte(nil), raw...)
	badMagic[0] ^= 0xff
	if _, err := NewByteDecoder(badMagic); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: err = %v", err)
	}

	badVer := append([]byte(nil), raw...)
	badVer[8] = 0xee
	if _, err := NewByteDecoder(badVer); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: err = %v", err)
	}

	if _, err := NewByteDecoder(raw[:10]); !errors.Is(err, ErrFormat) {
		t.Fatalf("short image: err = %v", err)
	}

	// Truncated body: structural close must fail with ErrFormat.
	trunc := append([]byte(nil), raw[:len(raw)/2]...)
	trunc = append(trunc, raw[len(raw)-4:]...) // keep a 4-byte trailer
	bd, err = NewByteDecoder(trunc)
	if err != nil {
		t.Fatalf("NewByteDecoder on truncated body: %v", err)
	}
	if _, err := DecodeCore(bd); err == nil {
		if err := bd.Close(); err == nil {
			t.Fatal("truncated body decoded and closed cleanly")
		}
	} else if !errors.Is(err, ErrFormat) {
		t.Fatalf("truncated body: err = %v, want ErrFormat", err)
	}
}

// TestInspectFileMmapAndFallback pins InspectFile's provenance fields on
// both paths.
func TestInspectFileMmapAndFallback(t *testing.T) {
	idx, _ := testIndex(t, 32, 96, 2, 25)
	path, raw := saveTempCore(t, idx)

	info, err := InspectFile(path)
	if err != nil {
		t.Fatalf("InspectFile: %v", err)
	}
	if info.Source != "mmap" {
		t.Fatalf("Source = %q, want mmap", info.Source)
	}
	if info.MappedBytes != int64(len(raw)) {
		t.Fatalf("MappedBytes = %d, want %d", info.MappedBytes, len(raw))
	}
	if info.FallbackReason != "" {
		t.Fatalf("unexpected FallbackReason %q", info.FallbackReason)
	}

	SetMmapUnavailableForTest(true)
	defer SetMmapUnavailableForTest(false)
	info, err = InspectFile(path)
	if err != nil {
		t.Fatalf("InspectFile (fallback): %v", err)
	}
	if info.Source != "stream" || info.FallbackReason == "" {
		t.Fatalf("fallback info = source %q, reason %q", info.Source, info.FallbackReason)
	}
	if info.MappedBytes != 0 {
		t.Fatalf("fallback MappedBytes = %d", info.MappedBytes)
	}
}
