package snapshot

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"
)

// hostLittleEndian reports whether uint64 loads read the format's byte
// order directly — the precondition for pointer-casting mapped sections.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ByteDecoder walks a complete snapshot image held in memory — in
// practice a Mapped file — and implements Decoder with zero-copy word
// views: on a little-endian host, WordsView pointer-casts the section
// bytes into a []uint64 aliasing the image (the format pads every word
// array to an 8-byte file offset, and page-aligned mappings keep that
// alignment in memory). On a big-endian host, or when the image was
// handed in at an unaligned base address, WordsView transparently copies
// instead — same results, no zero-copy.
//
// Checksum policy: NewByteDecoder and the section walk validate
// structure (magic, version, headers, section tables, exact total
// length), and Close verifies the cursor consumed the body exactly — but
// the CRC trailer is NOT verified against the payload, because touching
// every page would forfeit the O(µs) open that zero-copy exists for.
// Callers needing full integrity run VerifyChecksum (on the decoder or
// the Mapped file) explicitly; the serving daemon does so asynchronously
// after boot.
type ByteDecoder struct {
	data    []byte // full image including magic and CRC trailer
	off     int    // cursor; an absolute offset into data
	limit   int    // body end: len(data) - 4 (CRC trailer)
	kind    uint32
	version uint32
	err     error

	borrowed int64 // bytes handed out as zero-copy views
	copied   int64 // bytes that had to be copied (alignment/endianness)
}

// NewByteDecoder validates the envelope of a complete in-memory snapshot
// image and positions the cursor at the body.
func NewByteDecoder(data []byte) (*ByteDecoder, error) {
	if len(data) < len(magic)+4+4+4 { // magic + version + kind + trailer
		return nil, fmt.Errorf("%w: %d-byte image is shorter than the envelope", ErrFormat, len(data))
	}
	d := &ByteDecoder{data: data, limit: len(data) - 4}
	if string(data[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	d.off = len(magic)
	d.version = d.U32()
	if d.version < MinFormatVersion || d.version > FormatVersion {
		return nil, fmt.Errorf("%w: file has version %d, this build reads %d..%d",
			ErrVersion, d.version, MinFormatVersion, FormatVersion)
	}
	d.kind = d.U32()
	if d.err != nil {
		return nil, d.err
	}
	return d, nil
}

// Kind returns the snapshot kind declared in the header.
func (d *ByteDecoder) Kind() uint32 { return d.kind }

// Version returns the format version declared in the header.
func (d *ByteDecoder) Version() uint32 { return d.version }

// take advances the cursor over n body bytes, failing with ErrFormat if
// they would run into the CRC trailer.
func (d *ByteDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off > d.limit-n {
		d.err = fmt.Errorf("%w: truncated file: body read of %d bytes at offset %d exceeds %d-byte body",
			ErrFormat, n, d.off, d.limit)
		return nil
	}
	p := d.data[d.off : d.off+n]
	d.off += n
	return p
}

// U32 reads a 32-bit unsigned integer.
func (d *ByteDecoder) U32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

// U64 reads a 64-bit unsigned integer.
func (d *ByteDecoder) U64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// F64 reads a float64.
func (d *ByteDecoder) F64() float64 {
	return math.Float64frombits(d.U64())
}

// Bool reads a boolean.
func (d *ByteDecoder) Bool() bool {
	p := d.take(1)
	return p != nil && p[0] != 0
}

func (d *ByteDecoder) alignRead() {
	if pad := d.off & 7; pad != 0 {
		d.take(8 - pad)
	}
}

// wordPayload positions the cursor past the alignment padding and
// returns the n*8 raw bytes of the next word array.
func (d *ByteDecoder) wordPayload(n uint64) []byte {
	d.alignRead()
	if n > uint64(d.limit)/8 { // keep n*8 from overflowing int
		d.take(d.limit + 1) // force the typed truncation error
		return nil
	}
	return d.take(int(n * 8))
}

// WordsInto fills dst from the image (always a copy).
func (d *ByteDecoder) WordsInto(dst []uint64) {
	p := d.wordPayload(uint64(len(dst)))
	if p == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
}

// WordsView returns the next n-word array. On a little-endian host with
// the payload 8-byte-aligned in memory it is a zero-copy pointer cast
// into the image; otherwise it allocates and copies. Callers must treat
// the result as immutable and must not use it after the backing mapping
// is closed.
func (d *ByteDecoder) WordsView(n uint64) []uint64 {
	p := d.wordPayload(n)
	if p == nil || n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&p[0]))&7 == 0 {
		d.borrowed += int64(len(p))
		return unsafe.Slice((*uint64)(unsafe.Pointer(&p[0])), n)
	}
	d.copied += int64(len(p))
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return out
}

// SkipWords discards a word array — an O(1) cursor advance, which is
// what makes Inspect on a mapped snapshot a pure header walk.
func (d *ByteDecoder) SkipWords(n uint64) {
	d.wordPayload(n)
}

// Err returns the first error encountered.
func (d *ByteDecoder) Err() error { return d.err }

// Close verifies the body was consumed exactly: the cursor must have
// landed on the CRC trailer. See the type comment for why the trailer
// itself is not verified here.
func (d *ByteDecoder) Close() error {
	if d.err != nil {
		return d.err
	}
	if d.off != d.limit {
		return fmt.Errorf("%w: body ends at offset %d, trailer at %d", ErrFormat, d.off, d.limit)
	}
	return nil
}

// Bytes returns the number of bytes consumed so far.
func (d *ByteDecoder) Bytes() int64 { return int64(d.off) }

// BorrowedBytes returns how many payload bytes were handed out as
// zero-copy views into the image (0 when every section was copied).
func (d *ByteDecoder) BorrowedBytes() int64 { return d.borrowed }

// CopiedBytes returns how many payload bytes WordsView had to copy
// because of alignment or endianness.
func (d *ByteDecoder) CopiedBytes() int64 { return d.copied }

// VerifyChecksum computes the CRC-32 of the whole body and compares it
// against the trailer — the full-integrity check the zero-copy open
// deliberately defers.
func (d *ByteDecoder) VerifyChecksum() error {
	return verifyImageChecksum(d.data)
}

// verifyImageChecksum checks the CRC trailer of a complete snapshot image.
func verifyImageChecksum(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("%w: truncated file", ErrFormat)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return ErrChecksum
	}
	return nil
}
