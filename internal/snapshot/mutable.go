package snapshot

import (
	"fmt"

	"repro/internal/bitvec"
)

// KindMutable body layout (format v2). Package anns owns the encode and
// decode of the live structures (anns/mutable_snapshot.go); this file is
// the format layer's independent walk of the same byte layout, so
// Inspect can summarize a mutable snapshot — segment and tombstone
// counts included — without importing the public API package. The two
// must agree; TestInspectMutable in package anns pins them together.
//
//	envelope   IndexOptions (the tier's serving/build options)
//	scalars    nextID u64, segSeq u64, epoch u64
//	base       hasBase u64 (0|1); if 1:
//	             count u64, ids word-array [count]
//	             index body (IndexOptions + Repetitions × core body)
//	segments   count u64; per segment:
//	             seq u64, points u64, ids word-array [points],
//	             built u64 (0|1);
//	             if built: index body, else: raw point word-array
//	             [points × Words(d)]
//	memtable   count u64, ids word-array [count],
//	           raw point word-array [count × Words(d)]
//	tombstones count u64, ids word-array [count] (ascending)
const mutableLayoutDoc = 0 // (doc anchor; no runtime content)

// maxSegments caps the declared sealed-segment count: segments are
// bounded by compaction in any live system, so thousands already means
// a corrupt header.
const maxSegments = 1 << 20

// MaxPlausibleN and MaxPlausibleSegments export the header-plausibility
// ceilings for package anns's KindMutable decoder, so LoadMutable fails
// a corrupt header with ErrFormat at exactly the bounds Inspect
// enforces — never with an absurd allocation.
const (
	MaxPlausibleN        = maxN
	MaxPlausibleSegments = maxSegments
)

// inspectIndexBody walks one embedded index body (envelope + one core
// per repetition), appending core summaries to info.
func inspectIndexBody(d Decoder, info *Info, what string) (IndexOptions, int, error) {
	opts, err := DecodeIndexOptions(d)
	if err != nil {
		return opts, 0, err
	}
	n := 0
	for rep := 0; rep < opts.Repetitions; rep++ {
		ci, err := inspectCore(d)
		if err != nil {
			return opts, 0, fmt.Errorf("%s repetition %d: %w", what, rep, err)
		}
		n = ci.N
		info.Cores = append(info.Cores, ci)
	}
	return opts, n, nil
}

// inspectMutable walks a KindMutable body, skipping payload arrays.
func inspectMutable(d Decoder, info *Info) error {
	opts, err := DecodeIndexOptions(d)
	if err != nil {
		return err
	}
	info.Options = &opts
	ptWords := uint64(bitvec.Words(opts.Dimension))
	mi := &MutableInfo{NextID: d.U64()}
	_ = d.U64() // segSeq
	_ = d.U64() // epoch
	hasBase := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if hasBase > 1 {
		return fmt.Errorf("%w: mutable base flag is %d", ErrFormat, hasBase)
	}
	if hasBase == 1 {
		count := d.U64()
		if err := d.Err(); err != nil {
			return err
		}
		if count > maxN {
			return fmt.Errorf("%w: mutable base claims %d rows", ErrFormat, count)
		}
		d.SkipWords(count)
		_, n, err := inspectIndexBody(d, info, "base")
		if err != nil {
			return err
		}
		if n != int(count) {
			return fmt.Errorf("%w: base holds %d points but maps %d ids", ErrFormat, n, count)
		}
		mi.Base = int(count)
	}
	nsegs := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if nsegs > maxSegments {
		return fmt.Errorf("%w: mutable body claims %d segments", ErrFormat, nsegs)
	}
	mi.Segments = int(nsegs)
	for s := uint64(0); s < nsegs; s++ {
		_ = d.U64() // seq
		points := d.U64()
		if err := d.Err(); err != nil {
			return err
		}
		if points > maxN {
			return fmt.Errorf("%w: segment %d claims %d points", ErrFormat, s, points)
		}
		d.SkipWords(points)
		built := d.U64()
		if err := d.Err(); err != nil {
			return err
		}
		switch built {
		case 1:
			if _, _, err := inspectIndexBody(d, info, fmt.Sprintf("segment %d", s)); err != nil {
				return err
			}
		case 0:
			mi.RawSegments++
			d.SkipWords(points * ptWords)
		default:
			return fmt.Errorf("%w: segment %d built flag is %d", ErrFormat, s, built)
		}
		mi.SegmentPoints += int(points)
	}
	memCount := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if memCount > maxN {
		return fmt.Errorf("%w: memtable claims %d entries", ErrFormat, memCount)
	}
	mi.Memtable = int(memCount)
	d.SkipWords(memCount)
	d.SkipWords(memCount * ptWords)
	tombs := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if tombs > maxN {
		return fmt.Errorf("%w: %d tombstones", ErrFormat, tombs)
	}
	mi.Tombstones = int(tombs)
	d.SkipWords(tombs)
	if err := d.Err(); err != nil {
		return err
	}
	info.Mutable = mi
	info.N = mi.Base + mi.SegmentPoints + mi.Memtable - mi.Tombstones
	return nil
}
