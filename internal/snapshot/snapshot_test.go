package snapshot

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func testIndex(t testing.TB, n, d, k int, seed uint64) (*core.Index, []bitvec.Vector) {
	t.Helper()
	r := rng.New(seed)
	db := make([]bitvec.Vector, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	queries := make([]bitvec.Vector, 32)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, db[i%n], d, 1+i%(d/4))
	}
	return core.BuildIndex(db, d, core.Params{Gamma: 2, K: k, Seed: seed}), queries
}

func roundtrip(t testing.TB, idx *core.Index) *core.Index {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveCore(&buf, idx); err != nil {
		t.Fatalf("SaveCore: %v", err)
	}
	loaded, err := LoadCore(&buf)
	if err != nil {
		t.Fatalf("LoadCore: %v", err)
	}
	return loaded
}

// sameResult compares the full outcome of one query execution, including
// the cell-probe accounting (rounds, probes, bits read, address bits).
func sameResult(t *testing.T, label string, a, b core.Result) {
	t.Helper()
	if a.Index != b.Index || a.Degenerate != b.Degenerate || a.Violated != b.Violated {
		t.Fatalf("%s: answer diverged: built (idx=%d deg=%v) vs loaded (idx=%d deg=%v)",
			label, a.Index, a.Degenerate, b.Index, b.Degenerate)
	}
	as, bs := a.Stats, b.Stats
	if as.Rounds != bs.Rounds || as.Probes != bs.Probes ||
		as.BitsRead != bs.BitsRead || as.AddrBitsSent != bs.AddrBitsSent {
		t.Fatalf("%s: accounting diverged: built (r=%d p=%d bits=%d addr=%d) vs loaded (r=%d p=%d bits=%d addr=%d)",
			label, as.Rounds, as.Probes, as.BitsRead, as.AddrBitsSent,
			bs.Rounds, bs.Probes, bs.BitsRead, bs.AddrBitsSent)
	}
}

// TestCoreRoundtripAlgo1 pins the losslessness contract on the simple
// scheme: a loaded index answers with identical results and identical
// probe accounting.
func TestCoreRoundtripAlgo1(t *testing.T) {
	idx, queries := testIndex(t, 48, 128, 2, 7)
	loaded := roundtrip(t, idx)
	s1 := core.NewAlgo1(idx, 2)
	s2 := core.NewAlgo1(loaded, 2)
	for i, q := range queries {
		sameResult(t, "algo1", s1.Query(q), s2.Query(q))
		_ = i
	}
}

// TestCoreRoundtripAlgo2 does the same through the auxiliary tables.
func TestCoreRoundtripAlgo2(t *testing.T) {
	idx, queries := testIndex(t, 48, 128, 8, 11)
	loaded := roundtrip(t, idx)
	s1 := core.NewAlgo2(idx, 8)
	s2 := core.NewAlgo2(loaded, 8)
	for _, q := range queries {
		sameResult(t, "algo2", s1.Query(q), s2.Query(q))
	}
}

// TestCoreRoundtripBoosted pins the accounting contract (including
// BitsRead) through the boosted parallel-repetition merge.
func TestCoreRoundtripBoosted(t *testing.T) {
	idxA, queries := testIndex(t, 48, 128, 2, 17)
	idxB, _ := testIndex(t, 48, 128, 2, 18)
	loadedA, loadedB := roundtrip(t, idxA), roundtrip(t, idxB)
	built := core.NewBoostedOver(
		[]core.Scheme{core.NewAlgo1(idxA, 2), core.NewAlgo1(idxB, 2)},
		[]*core.Index{idxA, idxB})
	loaded := core.NewBoostedOver(
		[]core.Scheme{core.NewAlgo1(loadedA, 2), core.NewAlgo1(loadedB, 2)},
		[]*core.Index{loadedA, loadedB})
	for _, q := range queries {
		sameResult(t, "boosted", built.Query(q), loaded.Query(q))
	}
}

// TestCoreRoundtripLambda covers the 1-probe λ-ANNS path.
func TestCoreRoundtripLambda(t *testing.T) {
	idx, queries := testIndex(t, 48, 128, 2, 13)
	loaded := roundtrip(t, idx)
	s1 := core.NewLambda(idx)
	s2 := core.NewLambda(loaded)
	for _, q := range queries {
		sameResult(t, "lambda", s1.QueryNear(q, 16), s2.QueryNear(q, 16))
	}
}

// TestRoundtripProperty is the testing/quick sweep: random small
// instances round-trip losslessly under random query points.
func TestRoundtripProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep")
	}
	check := func(seedLo uint16, nRaw, dRaw uint8) bool {
		n := 8 + int(nRaw)%24
		d := 32 + 8*(int(dRaw)%6)
		seed := uint64(seedLo)
		r := rng.New(seed ^ 0xabcdef)
		db := make([]bitvec.Vector, n)
		for i := range db {
			db[i] = hamming.Random(r, d)
		}
		idx := core.BuildIndex(db, d, core.Params{Gamma: 2, K: 2, Seed: seed})
		var buf bytes.Buffer
		if err := SaveCore(&buf, idx); err != nil {
			t.Logf("save: %v", err)
			return false
		}
		loaded, err := LoadCore(&buf)
		if err != nil {
			t.Logf("load: %v", err)
			return false
		}
		s1 := core.NewAlgo1(idx, 2)
		s2 := core.NewAlgo1(loaded, 2)
		for i := 0; i < 8; i++ {
			q := hamming.AtDistance(r, db[i%n], d, 1+i)
			a, b := s1.Query(q), s2.Query(q)
			if a.Index != b.Index || a.Stats.Probes != b.Stats.Probes ||
				a.Stats.Rounds != b.Stats.Rounds || a.Stats.BitsRead != b.Stats.BitsRead {
				t.Logf("diverged on n=%d d=%d seed=%d query %d", n, d, seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func savedBytes(t *testing.T) []byte {
	t.Helper()
	idx, _ := testIndex(t, 16, 64, 2, 3)
	var buf bytes.Buffer
	if err := SaveCore(&buf, idx); err != nil {
		t.Fatalf("SaveCore: %v", err)
	}
	return buf.Bytes()
}

func TestLoadRejectsBadMagic(t *testing.T) {
	raw := savedBytes(t)
	raw[0] ^= 0xff
	if _, err := LoadCore(bytes.NewReader(raw)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	raw := savedBytes(t)
	raw[8] = 0xfe // version field follows the 8-byte magic
	if _, err := LoadCore(bytes.NewReader(raw)); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	raw := savedBytes(t)
	// Flip one bit deep in a payload section: every scalar still parses,
	// so only the checksum can catch it.
	raw[len(raw)-100] ^= 0x10
	if _, err := LoadCore(bytes.NewReader(raw)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	raw := savedBytes(t)
	for _, cut := range []int{4, 40, len(raw) / 2, len(raw) - 2} {
		if _, err := LoadCore(bytes.NewReader(raw[:cut])); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: got %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestLoadRejectsHostileHeaders pins that implausible scalar headers are
// refused with ErrFormat before any shape derivation or allocation can
// panic: n below the degenerate-instance floor, and multipliers driving
// the row counts (hence section sizes) to absurdity.
func TestLoadRejectsHostileHeaders(t *testing.T) {
	patch := func(mutate func(e *Encoder)) []byte {
		var buf bytes.Buffer
		e := NewEncoder(&buf, KindCore)
		mutate(e)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	scalars := func(gamma, c1, c2, s float64, k, d, n uint64) func(*Encoder) {
		return func(e *Encoder) {
			e.F64(gamma)
			e.F64(c1)
			e.F64(c2)
			e.F64(3) // CExp
			e.U64(k)
			e.F64(s)
			e.U64(1) // Seed
			e.F64(0) // CutFraction
			e.Bool(false)
			e.U64(d)
			e.U64(n)
			e.U64(1) // L
			e.U64(4) // AccRows
			e.U64(4) // CoarseRows
			e.U32(0) // empty section table (never reached)
		}
	}
	cases := map[string][]byte{
		"n=1":       patch(scalars(2, 0, 0, 1, 2, 16, 1)),
		"huge-c1":   patch(scalars(2, 1e17, 0, 1, 2, 2, 2)),
		"nan-c2":    patch(scalars(2, 0, math.NaN(), 1, 2, 16, 16)),
		"gamma~1":   patch(scalars(1+1e-15, 0, 0, 1, 2, 1<<20, 16)),
		"nan-gamma": patch(scalars(math.NaN(), 0, 0, 1, 2, 16, 16)),
	}
	for name, raw := range cases {
		if _, err := LoadCore(bytes.NewReader(raw)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: got %v, want ErrFormat", name, err)
		}
	}
}

func TestInspectCore(t *testing.T) {
	raw := savedBytes(t)
	info, err := Inspect(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Kind != KindCore || info.Version != FormatVersion {
		t.Errorf("kind=%d version=%d", info.Kind, info.Version)
	}
	if info.N != 16 || len(info.Cores) != 1 || info.Cores[0].D != 64 {
		t.Errorf("core summary wrong: %+v", info)
	}
	if info.Bytes != int64(len(raw)) {
		t.Errorf("Bytes = %d, file is %d", info.Bytes, len(raw))
	}
	// Sections must cover both families (normalized params ⇒ coarse exists).
	if len(info.Cores[0].Sections) != 5 {
		t.Errorf("got %d sections, want 5", len(info.Cores[0].Sections))
	}
	if _, err := Inspect(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("Inspect accepted a truncated file")
	}
}
