// Package snapshot is the versioned on-disk format of the index storage
// layer: build an index once (anywhere), serialize every flat backing
// array wholesale, and load it near-instantly on any serving host.
//
// A snapshot is a checksummed little-endian stream (see codec.go): magic,
// format version, a kind tag, kind-specific scalar headers with explicit
// per-section lengths, the raw word arrays, and a CRC-32 trailer. The
// payload is exactly the index's flat storage — the database block, the
// sketch-matrix blocks, and the per-level database-sketch blocks — so
// saving copies no per-entry structures and loading is one sequential
// read per section plus a cheap rebuild of the membership key index.
//
// Three kinds exist: a bare core.Index (KindCore), an anns.Index envelope
// (KindIndex: serving options + one core body per boosted repetition),
// and an anns.ShardedIndex envelope (KindSharded: options, the shard
// partition, and one embedded index envelope per shard). The envelopes'
// scalar layouts live here so Inspect can walk any snapshot without
// importing the public API package; package anns owns the conversion to
// and from its Options type.
//
// Versioning policy: FormatVersion identifies the byte layout, readers
// accept exactly their own version (ErrVersion otherwise), and any layout
// change bumps it — snapshots are cheap to regenerate from the build
// path, so there are no in-place migrations.
//
// Known tradeoff: every core body is self-contained, so a boosted index
// stores its (identical) database section once per repetition. The
// per-repetition payload is dominated by the seed-specific matrices and
// sketches (levels × rows words per point vs. one point image), so the
// duplication stays a small fraction of the file; keeping bodies
// self-contained is what lets one decoder serve all three kinds.
package snapshot

import (
	"fmt"
	"io"
	"os"
)

// IndexOptions is the serialized envelope of an anns.Index: the mirror of
// anns.Options that the format layer owns (so Inspect needs no dependency
// on the public API package).
type IndexOptions struct {
	Dimension      int
	Gamma          float64
	Rounds         int
	Algorithm      int
	Repetitions    int
	Seed           uint64
	RowsMultiplier float64
}

// EncodeIndexOptions writes the envelope scalars of a KindIndex or
// KindSharded body.
func EncodeIndexOptions(e *Encoder, o IndexOptions) {
	e.U64(uint64(o.Dimension))
	e.F64(o.Gamma)
	e.U64(uint64(o.Rounds))
	e.U64(uint64(o.Algorithm))
	e.U64(uint64(o.Repetitions))
	e.U64(o.Seed)
	e.F64(o.RowsMultiplier)
}

// DecodeIndexOptions mirrors EncodeIndexOptions, with the same plausibility
// ceilings the core header enforces.
func DecodeIndexOptions(d Decoder) (IndexOptions, error) {
	o := IndexOptions{
		Dimension:   int(d.U64()),
		Gamma:       d.F64(),
		Rounds:      int(d.U64()),
		Algorithm:   int(d.U64()),
		Repetitions: int(d.U64()),
		Seed:        d.U64(),
	}
	o.RowsMultiplier = d.F64()
	if err := d.Err(); err != nil {
		return o, err
	}
	if o.Dimension < 2 || o.Dimension > maxDim || o.Rounds < 1 || o.Rounds > maxK ||
		o.Repetitions < 1 || o.Repetitions > maxK || !(o.Gamma > 1) {
		return o, fmt.Errorf("%w: implausible index options (d=%d k=%d reps=%d gamma=%v)",
			ErrFormat, o.Dimension, o.Rounds, o.Repetitions, o.Gamma)
	}
	return o, nil
}

// CoreInfo summarizes one embedded core-index body.
type CoreInfo struct {
	D, N, K    int
	Gamma, S   float64
	Seed       uint64
	L          int
	AccRows    int
	CoarseRows int
	Sections   []Section
}

// Words returns the total payload words of the body.
func (c CoreInfo) Words() uint64 {
	var total uint64
	for _, s := range c.Sections {
		total += s.Words
	}
	return total
}

// Info is Inspect's summary of a snapshot file.
type Info struct {
	Version uint32
	Kind    uint32
	// Options is the serving envelope (nil for KindCore).
	Options *IndexOptions
	// Shards is the shard count (0 unless KindSharded).
	Shards int
	// N is the logical database size (summed over shards; live points
	// for KindMutable).
	N int
	// Cores lists every embedded core-index body, in file order.
	Cores []CoreInfo
	// Mutable summarizes the delta tier (nil unless KindMutable).
	Mutable *MutableInfo
	// Bytes is the total stream length including magic and trailer.
	Bytes int64
	// Source records how the snapshot was walked: "stream" (heap
	// decoder) or "mmap" (zero-copy byte decoder). Inspect over a plain
	// io.Reader always reports "stream"; InspectFile reports the path it
	// actually took.
	Source string
	// MappedBytes is the mapping length when Source is "mmap" (0
	// otherwise).
	MappedBytes int64
	// FallbackReason is set when InspectFile wanted the mmap path but
	// fell back to the stream decoder (unsupported platform, map
	// failure).
	FallbackReason string
}

// MutableInfo is Inspect's summary of a KindMutable body's delta tier.
type MutableInfo struct {
	// NextID is the next point ID the tier would assign.
	NextID uint64
	// Base is the rebuilt base index's row count (0 when the tier has no
	// base yet).
	Base int
	// Segments is the sealed segment count; RawSegments of those had no
	// mini-index built when the snapshot was taken (they reload as
	// scan-only segments).
	Segments, RawSegments int
	// SegmentPoints is the total point count across sealed segments.
	SegmentPoints int
	// Memtable is the unsealed in-memory entry count.
	Memtable int
	// Tombstones is the number of deletes not yet applied by compaction.
	Tombstones int
}

// KindName renders a snapshot kind for inspection output.
func KindName(kind uint32) string {
	switch kind {
	case KindCore:
		return "core-index"
	case KindIndex:
		return "index"
	case KindSharded:
		return "sharded-index"
	case KindMutable:
		return "mutable-index"
	default:
		return fmt.Sprintf("kind[%d]", kind)
	}
}

// Inspect reads a snapshot's headers and section tables, skipping the
// payload arrays, and verifies the checksum over the whole stream. It
// never materializes an index, so it is cheap even on huge snapshots.
func Inspect(r io.Reader) (*Info, error) {
	d, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	info, err := inspectBody(d)
	if err != nil {
		return nil, err
	}
	info.Source = "stream"
	return info, nil
}

// InspectFile inspects the snapshot at path, preferring the mmap walk
// (O(1) section skips — a pure header walk — plus an explicit full
// checksum verification) and falling back to the stream decoder with a
// recorded reason when the file cannot be mapped.
func InspectFile(path string) (*Info, error) {
	m, err := MapFile(path)
	if err != nil {
		f, oerr := os.Open(path)
		if oerr != nil {
			return nil, oerr
		}
		defer f.Close()
		info, ierr := Inspect(f)
		if ierr != nil {
			return nil, ierr
		}
		info.FallbackReason = err.Error()
		return info, nil
	}
	defer m.Close()
	// Inspect promises "checksum ok" on success, so the mmap walk —
	// whose Close is structural only — verifies the trailer explicitly.
	if err := m.VerifyChecksum(); err != nil {
		return nil, err
	}
	d, err := m.Decoder()
	if err != nil {
		return nil, err
	}
	info, err := inspectBody(d)
	if err != nil {
		return nil, err
	}
	info.Source = "mmap"
	info.MappedBytes = int64(m.Len())
	return info, nil
}

// inspectBody walks the body of an opened decoder of any kind.
func inspectBody(d Decoder) (*Info, error) {
	info := &Info{Version: d.Version(), Kind: d.Kind()}
	switch d.Kind() {
	case KindMutable:
		if err := inspectMutable(d, info); err != nil {
			return nil, err
		}
	case KindCore:
		ci, err := inspectCore(d)
		if err != nil {
			return nil, err
		}
		info.Cores = []CoreInfo{ci}
		info.N = ci.N
	case KindIndex, KindSharded:
		opts, err := DecodeIndexOptions(d)
		if err != nil {
			return nil, err
		}
		info.Options = &opts
		shards := 1
		if d.Kind() == KindSharded {
			shards = int(d.U64())
			info.N = int(d.U64())
			if err := d.Err(); err != nil {
				return nil, err
			}
			if shards < 1 || shards > maxK || info.N < 1 || info.N > maxN {
				return nil, fmt.Errorf("%w: implausible shard header (shards=%d n=%d)", ErrFormat, shards, info.N)
			}
			info.Shards = shards
		}
		for s := 0; s < shards; s++ {
			if d.Kind() == KindSharded {
				_ = d.U64() // shard seed
				members := d.U64()
				if err := d.Err(); err != nil {
					return nil, err
				}
				if members > uint64(info.N) {
					return nil, fmt.Errorf("%w: shard %d claims %d members of %d points", ErrFormat, s, members, info.N)
				}
				d.SkipWords(members)
			}
			for rep := 0; rep < info.Options.Repetitions; rep++ {
				ci, err := inspectCore(d)
				if err != nil {
					return nil, fmt.Errorf("shard %d repetition %d: %w", s, rep, err)
				}
				info.Cores = append(info.Cores, ci)
			}
		}
		if d.Kind() == KindIndex && len(info.Cores) > 0 {
			info.N = info.Cores[0].N
		}
	default:
		return nil, fmt.Errorf("%w: unknown snapshot kind %d", ErrFormat, d.Kind())
	}
	if err := d.Close(); err != nil {
		return nil, err
	}
	info.Bytes = d.Bytes() + 4 // header and body are counted as read; + CRC trailer
	return info, nil
}
