// Package segment holds the building blocks of the mutable index tier
// (DESIGN.md §7): a bounded in-memory memtable of freshly inserted
// points, a growable dense-ID bitmap used for liveness and tombstone
// sets, and a CRC-framed write-ahead log that makes mutations durable
// across restarts. The tier itself — sealing memtables into immutable
// mini-indexes, fanning queries out over {base, segments, memtable},
// and compacting back into the static core — is assembled in the public
// anns package (anns.MutableIndex); this package stays below it so the
// storage primitives carry no dependency on the query schemes.
package segment

import "math/bits"

// IDSet is a growable bitmap over the dense uint64 point-ID space the
// mutable tier allocates (IDs are assigned sequentially from 0, so a
// bitmap is both the cheapest and the fastest representation; a million
// live IDs cost 128 KiB). The zero value is empty and ready to use.
// An IDSet is not safe for concurrent use; the mutable tier guards its
// sets with the index lock.
type IDSet struct {
	words []uint64
	count int
}

// NewIDSet returns an empty set.
func NewIDSet() *IDSet { return &IDSet{} }

func (s *IDSet) grow(word int) {
	if word < len(s.words) {
		return
	}
	next := make([]uint64, word+1+word/2)
	copy(next, s.words)
	s.words = next
}

// Add inserts id, reporting whether it was absent.
func (s *IDSet) Add(id uint64) bool {
	w, b := int(id>>6), uint64(1)<<(id&63)
	s.grow(w)
	if s.words[w]&b != 0 {
		return false
	}
	s.words[w] |= b
	s.count++
	return true
}

// Remove deletes id, reporting whether it was present.
func (s *IDSet) Remove(id uint64) bool {
	w, b := int(id>>6), uint64(1)<<(id&63)
	if w >= len(s.words) || s.words[w]&b == 0 {
		return false
	}
	s.words[w] &^= b
	s.count--
	return true
}

// Has reports membership.
func (s *IDSet) Has(id uint64) bool {
	w := int(id >> 6)
	return w < len(s.words) && s.words[w]&(1<<(id&63)) != 0
}

// Len returns the number of members.
func (s *IDSet) Len() int { return s.count }

// Clone returns an independent copy.
func (s *IDSet) Clone() *IDSet {
	return &IDSet{words: append([]uint64(nil), s.words...), count: s.count}
}

// AndNot removes every member of o from s (s = s \ o). The compactor
// uses this to retire exactly the tombstones it applied, leaving any
// tombstone that arrived during the rebuild in force.
func (s *IDSet) AndNot(o *IDSet) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
	count := 0
	for _, w := range s.words {
		count += bits.OnesCount64(w)
	}
	s.count = count
}

// Each calls f for every member in ascending order.
func (s *IDSet) Each(f func(id uint64)) {
	for wi, w := range s.words {
		for w != 0 {
			f(uint64(wi)<<6 + uint64(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}
