package segment

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/bitvec"
)

func testOps(dim, n int) []Op {
	words := bitvec.Words(dim)
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			ops = append(ops, Op{Kind: OpDelete, ID: uint64(i / 4)})
			continue
		}
		pt := make(bitvec.Vector, words)
		for w := range pt {
			pt[w] = uint64(i+1) * 0x9e3779b97f4a7c15 >> uint(w%8)
		}
		ops = append(ops, Op{Kind: OpInsert, ID: uint64(100 + i), Point: pt})
	}
	return ops
}

// TestEncodeFrameMatchesWALAppend pins the wire/disk identity the whole
// replication design rests on: the frame EncodeFrame produces for an Op
// is byte-for-byte the frame WAL.Append writes for the same Op.
func TestEncodeFrameMatchesWALAppend(t *testing.T) {
	const dim = 128
	path := filepath.Join(t.TempDir(), "a.wal")
	w, _, err := OpenWAL(path, dim, 1, func(Op) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	ops := testOps(dim, 9)
	var want []byte
	for _, op := range ops {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
		fr, err := EncodeFrame(op, dim)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, fr...)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, n, err := ReadWALFrames(path, dim, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ops) {
		t.Fatalf("read %d frames, want %d", n, len(ops))
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("WAL bytes differ from EncodeFrame bytes (%d vs %d bytes)", len(got), len(want))
	}
}

// TestDecodeFramesRoundTrip proves encode→concat→decode is lossless and
// that every corruption class is a loud error, never a silent truncation.
func TestDecodeFramesRoundTrip(t *testing.T) {
	const dim = 96
	ops := testOps(dim, 7)
	var blob []byte
	for _, op := range ops {
		fr, err := EncodeFrame(op, dim)
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, fr...)
	}
	got, err := DecodeFrames(blob, dim)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ops) {
		t.Fatalf("decoded %d ops, want %d", len(got), len(ops))
	}
	for i, op := range got {
		if op.Kind != ops[i].Kind || op.ID != ops[i].ID {
			t.Fatalf("op %d: got kind=%d id=%d, want kind=%d id=%d", i, op.Kind, op.ID, ops[i].Kind, ops[i].ID)
		}
		if op.Kind == OpInsert && !bitvec.Equal(op.Point, ops[i].Point) {
			t.Fatalf("op %d: point round-trip mismatch", i)
		}
	}

	// Truncation, trailing garbage, and a flipped payload bit must all
	// fail with ErrWAL — a replication blob claims applied state.
	for name, mangled := range map[string][]byte{
		"torn tail":        blob[:len(blob)-3],
		"trailing garbage": append(append([]byte{}, blob...), 0xAB, 0xCD),
		"flipped bit": func() []byte {
			b := append([]byte{}, blob...)
			b[walFrameLen+2] ^= 0x10
			return b
		}(),
	} {
		if _, err := DecodeFrames(mangled, dim); !errors.Is(err, ErrWAL) {
			t.Fatalf("%s: got %v, want ErrWAL", name, err)
		}
	}
	if out, err := DecodeFrames(nil, dim); err != nil || out != nil {
		t.Fatalf("empty blob: got %v ops, err %v", out, err)
	}
}

// TestReadWALFramesFromOffset covers the catch-up read: skipping applied
// records, the byte budget (whole frames only, at least one), the
// too-far offset error, and stopping cleanly at an injected torn tail.
func TestReadWALFramesFromOffset(t *testing.T) {
	const dim = 64
	path := filepath.Join(t.TempDir(), "b.wal")
	w, _, err := OpenWAL(path, dim, 1, func(Op) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	ops := testOps(dim, 12)
	for _, op := range ops {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	for from := 0; from <= len(ops); from++ {
		blob, n, err := ReadWALFrames(path, dim, uint64(from), 0)
		if err != nil {
			t.Fatalf("from=%d: %v", from, err)
		}
		if n != len(ops)-from {
			t.Fatalf("from=%d: got %d frames, want %d", from, n, len(ops)-from)
		}
		decoded, err := DecodeFrames(blob, dim)
		if err != nil {
			t.Fatalf("from=%d: %v", from, err)
		}
		for i, op := range decoded {
			if op.ID != ops[from+i].ID || op.Kind != ops[from+i].Kind {
				t.Fatalf("from=%d op %d: got id=%d, want id=%d", from, i, op.ID, ops[from+i].ID)
			}
		}
	}

	// Byte budget: a single frame is at most walFrameLen+9+8*words bytes;
	// asking for one byte must still deliver exactly one whole frame.
	blob, n, err := ReadWALFrames(path, dim, 0, 1)
	if err != nil || n != 1 {
		t.Fatalf("maxBytes=1: n=%d err=%v", n, err)
	}
	if _, err := DecodeFrames(blob, dim); err != nil {
		t.Fatalf("maxBytes=1 blob does not decode: %v", err)
	}

	if _, _, err := ReadWALFrames(path, dim, uint64(len(ops))+3, 0); err == nil {
		t.Fatal("offset beyond the log must error")
	}

	// A torn in-flight append at the tail is not part of replicated
	// state: the read stops before it without error.
	if err := AppendTornFrame(path); err != nil {
		t.Fatal(err)
	}
	_, n, err = ReadWALFrames(path, dim, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ops)-4 {
		t.Fatalf("after torn tail: got %d frames, want %d", n, len(ops)-4)
	}
}
