package segment

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func collectOps(t *testing.T, path string, dim int) ([]Op, *WAL, int) {
	t.Helper()
	var ops []Op
	w, replayed, err := OpenWAL(path, dim, 1, func(op Op) error {
		ops = append(ops, op)
		return nil
	})
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return ops, w, replayed
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	const d = 192
	r := rng.New(3)
	_, w, replayed := collectOps(t, path, d)
	if replayed != 0 {
		t.Fatalf("fresh log replayed %d records", replayed)
	}
	var want []Op
	for i := 0; i < 10; i++ {
		op := Op{Kind: OpInsert, ID: uint64(1000 + i), Point: hamming.Random(r, d)}
		if i%4 == 3 {
			op = Op{Kind: OpDelete, ID: uint64(1000 + i - 1)}
		}
		if err := w.Append(op); err != nil {
			t.Fatalf("Append: %v", err)
		}
		want = append(want, op)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, w2, replayed := collectOps(t, path, d)
	defer w2.Close()
	if replayed != len(want) {
		t.Fatalf("replayed %d records, want %d", replayed, len(want))
	}
	for i, op := range want {
		g := got[i]
		if g.Kind != op.Kind || g.ID != op.ID {
			t.Fatalf("record %d: got %+v, want %+v", i, g, op)
		}
		if op.Kind == OpInsert && bitvec.Distance(g.Point, op.Point) != 0 {
			t.Fatalf("record %d: point corrupted", i)
		}
	}
}

// TestWALTornTail pins crash recovery: a partial trailing record (the
// shape a kill -9 mid-append leaves) is dropped and the file truncated,
// while every record before it replays.
func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	const d = 64
	r := rng.New(5)
	_, w, _ := collectOps(t, path, d)
	for i := 0; i < 5; i++ {
		if err := w.Append(Op{Kind: OpInsert, ID: uint64(i), Point: hamming.Random(r, d)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	for _, cut := range []int{1, 5, 12} { // inside frame header, payload, crc
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		torn := filepath.Join(t.TempDir(), "torn.log")
		if err := os.WriteFile(torn, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ops, w2, replayed := collectOps(t, torn, d)
		if replayed != 4 || len(ops) != 4 {
			t.Fatalf("cut %d: replayed %d records, want 4", cut, replayed)
		}
		// The torn tail must be gone: appends after recovery replay cleanly.
		if err := w2.Append(Op{Kind: OpDelete, ID: 3}); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		ops, w3, _ := collectOps(t, torn, d)
		w3.Close()
		if len(ops) != 5 || ops[4].Kind != OpDelete || ops[4].ID != 3 {
			t.Fatalf("cut %d: post-recovery log replays %d ops: %+v", cut, len(ops), ops)
		}
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	const d = 64
	r := rng.New(9)
	_, w, _ := collectOps(t, path, d)
	for i := 0; i < 3; i++ {
		if err := w.Append(Op{Kind: OpInsert, ID: uint64(i), Point: hamming.Random(r, d)}); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, _ := os.ReadFile(path)
	raw[len(raw)-20] ^= 0xff // flip a bit in the last record's payload
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	ops, w2, replayed := collectOps(t, path, d)
	w2.Close()
	if replayed != 2 || len(ops) != 2 {
		t.Fatalf("replayed %d records past corruption, want 2", replayed)
	}
}

func TestWALRejectsWrongDimensionAndMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	_, w, _ := collectOps(t, path, 64)
	w.Close()
	if _, _, err := OpenWAL(path, 128, 1, func(Op) error { return nil }); !errors.Is(err, ErrWAL) {
		t.Fatalf("wrong dimension: got %v, want ErrWAL", err)
	}
	bad := filepath.Join(dir, "bad.log")
	if err := os.WriteFile(bad, []byte("NOTAWAL!morebytesfollowhere"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(bad, 64, 1, func(Op) error { return nil }); !errors.Is(err, ErrWAL) {
		t.Fatalf("bad magic: got %v, want ErrWAL", err)
	}
}

func TestWALTruncateResets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	const d = 64
	r := rng.New(11)
	_, w, _ := collectOps(t, path, d)
	for i := 0; i < 4; i++ {
		if err := w.Append(Op{Kind: OpInsert, ID: uint64(i), Point: hamming.Random(r, d)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(); err != nil {
		t.Fatalf("Truncate: %v", err)
	}
	if w.Size() != int64(walHeaderLen) {
		t.Fatalf("Size after truncate = %d, want %d", w.Size(), walHeaderLen)
	}
	// Post-truncate appends land in the reset log.
	if err := w.Append(Op{Kind: OpInsert, ID: 77, Point: hamming.Random(r, d)}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	ops, w2, _ := collectOps(t, path, d)
	w2.Close()
	if len(ops) != 1 || ops[0].ID != 77 {
		t.Fatalf("after truncate, log replays %+v", ops)
	}
}

// TestInjectedCrashArtifacts pins the chaos harness's WAL injection
// points: AppendTornFrame and AppendCorruptFrame append exactly the
// tail shapes a kill -9 leaves, replay drops them (and only them), and
// the truncation heals the log for subsequent appends.
func TestInjectedCrashArtifacts(t *testing.T) {
	const d = 64
	r := rng.New(9)
	for _, inject := range []struct {
		name string
		fn   func(string) error
	}{
		{"torn", AppendTornFrame},
		{"corrupt", AppendCorruptFrame},
	} {
		t.Run(inject.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.log")
			_, w, _ := collectOps(t, path, d)
			for i := 0; i < 6; i++ {
				if err := w.Append(Op{Kind: OpInsert, ID: uint64(i), Point: hamming.Random(r, d)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			goodSize, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := inject.fn(path); err != nil {
				t.Fatalf("inject: %v", err)
			}
			if st, _ := os.Stat(path); st.Size() <= goodSize.Size() {
				t.Fatal("injection appended nothing")
			}
			ops, w2, replayed := collectOps(t, path, d)
			if replayed != 6 || len(ops) != 6 {
				t.Fatalf("replayed %d records after %s tail, want all 6 acked", replayed, inject.name)
			}
			if st, _ := os.Stat(path); st.Size() != goodSize.Size() {
				t.Fatalf("recovery left %d bytes, want truncation back to %d", st.Size(), goodSize.Size())
			}
			if err := w2.Append(Op{Kind: OpDelete, ID: 2}); err != nil {
				t.Fatal(err)
			}
			w2.Close()
			ops, w3, _ := collectOps(t, path, d)
			w3.Close()
			if len(ops) != 7 || ops[6].Kind != OpDelete {
				t.Fatalf("post-recovery append lost: %d ops", len(ops))
			}
		})
	}
}
