package segment

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func TestIDSetBasics(t *testing.T) {
	s := NewIDSet()
	if s.Has(0) || s.Len() != 0 {
		t.Fatal("zero set not empty")
	}
	for _, id := range []uint64{0, 1, 63, 64, 1000, 1 << 20} {
		if !s.Add(id) {
			t.Errorf("Add(%d) reported already present", id)
		}
		if s.Add(id) {
			t.Errorf("second Add(%d) reported absent", id)
		}
		if !s.Has(id) {
			t.Errorf("Has(%d) false after Add", id)
		}
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	if !s.Remove(64) || s.Remove(64) || s.Has(64) {
		t.Error("Remove(64) misbehaved")
	}
	if s.Remove(2) {
		t.Error("Remove of absent id reported present")
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d after removal, want 5", s.Len())
	}
	var got []uint64
	s.Each(func(id uint64) { got = append(got, id) })
	want := []uint64{0, 1, 63, 1000, 1 << 20}
	if len(got) != len(want) {
		t.Fatalf("Each visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Each visited %v, want %v (ascending)", got, want)
		}
	}
}

func TestIDSetAndNotClone(t *testing.T) {
	s := NewIDSet()
	for id := uint64(0); id < 200; id += 2 {
		s.Add(id)
	}
	snap := s.Clone()
	s.Add(1001)
	if snap.Has(1001) {
		t.Fatal("Clone aliases the original")
	}
	drop := NewIDSet()
	for id := uint64(0); id < 100; id += 2 {
		drop.Add(id)
	}
	drop.Add(9999) // absent from s: AndNot must ignore it
	s.AndNot(drop)
	if s.Len() != 51 { // 100..198 even (50) + 1001
		t.Fatalf("Len after AndNot = %d, want 51", s.Len())
	}
	if s.Has(42) || !s.Has(100) || !s.Has(1001) {
		t.Error("AndNot removed the wrong members")
	}
}

func TestMemtableScanExact(t *testing.T) {
	r := rng.New(7)
	const d, n = 128, 40
	m := NewMemtable()
	pts := make([]bitvec.Vector, n)
	for i := 0; i < n; i++ {
		pts[i] = hamming.Random(r, d)
		m.Append(uint64(100+i), pts[i])
	}
	dead := NewIDSet()
	dead.Add(100 + 3)
	for trial := 0; trial < 20; trial++ {
		x := hamming.Random(r, d)
		res := m.Scan(x, dead)
		if !res.Found || res.Scanned != n {
			t.Fatalf("scan: %+v", res)
		}
		// Reference: exact nearest over live entries, first-wins ties.
		bestPos, bestDist := -1, -1
		for i, p := range pts {
			if i == 3 {
				continue
			}
			dist := bitvec.Distance(p, x)
			if bestPos < 0 || dist < bestDist {
				bestPos, bestDist = i, dist
			}
		}
		if res.Pos != bestPos || res.Dist != bestDist || res.ID != uint64(100+bestPos) {
			t.Fatalf("scan %+v, want pos=%d dist=%d", res, bestPos, bestDist)
		}
	}
	// All-dead and empty scans report not-found with honest accounting.
	all := NewIDSet()
	for i := 0; i < n; i++ {
		all.Add(uint64(100 + i))
	}
	if res := m.Scan(pts[0], all); res.Found || res.Scanned != n {
		t.Fatalf("all-dead scan: %+v", res)
	}
	if res := NewMemtable().Scan(pts[0], nil); res.Found || res.Scanned != 0 {
		t.Fatalf("empty scan: %+v", res)
	}
}
