package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/bitvec"
)

// Frame streaming (DESIGN.md §11). Replication ships the WAL's own
// record framing over the wire: a frame on the wire is byte-identical
// to the frame on disk (length u32 | crc u32 | payload), and the
// encoding is a pure function of the Op, so any party holding the Op —
// the primary that logged it, or the router that relayed it — produces
// the same bytes. EncodeFrame/DecodeFrames are that codec, strict where
// replay is forgiving: a torn or corrupt frame arriving over the wire
// is a protocol error, not a crash artifact to truncate.

// EncodeFrame returns the exact on-disk/on-wire frame bytes for one
// mutation at the given dimension: length, CRC-32 of the payload, then
// the payload (op, id, and for inserts the point words).
func EncodeFrame(op Op, dim int) ([]byte, error) {
	ptWords := bitvec.Words(dim)
	length := 9
	if op.Kind == OpInsert {
		if len(op.Point) != ptWords {
			return nil, fmt.Errorf("segment: frame insert point has %d words, want %d", len(op.Point), ptWords)
		}
		length += 8 * ptWords
	} else if op.Kind != OpDelete {
		return nil, fmt.Errorf("%w: unknown op kind %d", ErrWAL, op.Kind)
	}
	buf := make([]byte, walFrameLen+length)
	payload := buf[walFrameLen:]
	payload[0] = op.Kind
	binary.LittleEndian.PutUint64(payload[1:], op.ID)
	if op.Kind == OpInsert {
		for i, word := range op.Point {
			binary.LittleEndian.PutUint64(payload[9+8*i:], word)
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(length))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	return buf, nil
}

// DecodeFrames decodes a contiguous run of frames. Unlike boot replay —
// which truncates a torn tail because the mutation was never
// acknowledged — a replication blob must be whole: any torn, corrupt,
// or trailing bytes are an ErrWAL-tagged error, because the sender
// claimed these frames were applied somewhere.
func DecodeFrames(data []byte, dim int) ([]Op, error) {
	ptWords := bitvec.Words(dim)
	scratch := WAL{dim: dim, ptWords: ptWords}
	var ops []Op
	for off := 0; off < len(data); {
		if len(data)-off < walFrameLen {
			return nil, fmt.Errorf("%w: torn frame header at byte %d", ErrWAL, off)
		}
		length := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length < 9 || int(length) > 9+8*ptWords {
			return nil, fmt.Errorf("%w: implausible frame length %d at byte %d", ErrWAL, length, off)
		}
		if len(data)-off-walFrameLen < int(length) {
			return nil, fmt.Errorf("%w: torn frame payload at byte %d", ErrWAL, off)
		}
		payload := data[off+walFrameLen : off+walFrameLen+int(length)]
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, fmt.Errorf("%w: frame checksum mismatch at byte %d", ErrWAL, off)
		}
		op, err := scratch.decode(payload)
		if err != nil {
			return nil, fmt.Errorf("%w: undecodable frame at byte %d", ErrWAL, off)
		}
		ops = append(ops, op)
		off += walFrameLen + int(length)
	}
	return ops, nil
}

// ReadWALFrames reads raw frame bytes out of the WAL file at path,
// skipping the first `from` records, returning at most maxBytes of
// whole frames (at least one frame when any is available, even if it
// alone exceeds maxBytes) plus the count of frames returned. This is
// the primary-side catch-up read: a replica at applied offset `from`
// (relative to the log's base) is fed the records it is missing, as
// the exact bytes the primary fsynced. Reading stops cleanly at a torn
// tail — those bytes were never acknowledged and will be truncated by
// the next replay — and maxBytes <= 0 means no byte bound.
func ReadWALFrames(path string, dim int, from uint64, maxBytes int) ([]byte, int, error) {
	ptWords := bitvec.Words(dim)
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	head := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(f, head); err != nil {
		return nil, 0, fmt.Errorf("%w: short header in %s", ErrWAL, path)
	}
	if string(head[:len(walMagic)]) != walMagic {
		return nil, 0, fmt.Errorf("%w: bad magic in %s", ErrWAL, path)
	}
	if v := binary.LittleEndian.Uint32(head[len(walMagic):]); v != walVersion {
		return nil, 0, fmt.Errorf("%w: version %d, this build reads %d", ErrWAL, v, walVersion)
	}
	if d := binary.LittleEndian.Uint32(head[len(walMagic)+4:]); int(d) != dim {
		return nil, 0, fmt.Errorf("%w: log holds dimension-%d points, want %d", ErrWAL, d, dim)
	}
	var out []byte
	count := 0
	frame := make([]byte, walFrameLen)
	payload := make([]byte, 9+8*ptWords)
	for {
		if _, err := io.ReadFull(f, frame); err != nil {
			break // clean EOF or torn header
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if length < 9 || int(length) > len(payload) {
			break // torn or corrupt: unacknowledged tail
		}
		p := payload[:length]
		if _, err := io.ReadFull(f, p); err != nil {
			break
		}
		if crc32.ChecksumIEEE(p) != sum {
			break
		}
		if from > 0 {
			from--
			continue
		}
		if count > 0 && maxBytes > 0 && len(out)+walFrameLen+int(length) > maxBytes {
			break
		}
		out = append(out, frame...)
		out = append(out, p...)
		count++
	}
	if from > 0 {
		return nil, 0, fmt.Errorf("segment: WAL %s holds fewer records than the requested offset (short by %d)", path, from)
	}
	return out, count, nil
}
