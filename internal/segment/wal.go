package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"repro/internal/bitvec"
)

// The write-ahead log makes mutations durable between snapshots: every
// insert/delete is framed, checksummed, and (by default) fsynced before
// the in-memory state changes, and boot replays the log over the last
// snapshot. The file layout (DESIGN.md §7):
//
//	header  "ANNSWAL\x01" [8]byte, version u32 (=1), dim u32
//	record  length u32, crc u32 (IEEE CRC-32 of the payload), payload
//	payload op u8 (1=insert, 2=delete), id u64,
//	        then for inserts the point's raw little-endian words
//	        (bitvec.Words(dim) × 8 bytes)
//
// Replay stops at the first torn or corrupt frame and truncates the file
// there: a crash mid-append leaves a torn tail, and dropping it is the
// correct recovery (the mutation was never acknowledged). Truncate
// resets the log to just its header once a snapshot has captured the
// state the log described.

const (
	walMagic   = "ANNSWAL\x01"
	walVersion = 1

	// OpInsert and OpDelete are the record kinds.
	OpInsert byte = 1
	OpDelete byte = 2

	walHeaderLen = len(walMagic) + 8 // magic + version + dim
	walFrameLen  = 8                 // length + crc
)

// ErrWAL tags malformed write-ahead logs (bad magic, wrong version or
// dimension). Torn tails are not errors — they are truncated silently.
var ErrWAL = errors.New("segment: malformed WAL")

// Op is one logical mutation, as appended and as replayed.
type Op struct {
	Kind  byte
	ID    uint64
	Point bitvec.Vector // inserts only
}

// WAL is an append-only mutation log bound to one file and dimension.
// Appends are not safe for concurrent use; the mutable tier serializes
// them under its index lock. Size alone is safe to read concurrently
// (the tier's stats path reads it under a shared lock while a snapshot
// persist may be truncating under another).
type WAL struct {
	f         *os.File
	dim       int
	ptWords   int
	syncEvery int
	sinceSync int
	size      atomic.Int64
	buf       []byte
}

// OpenWAL opens (or creates) the log at path for points of the given
// dimension, replays every intact record through apply in file order,
// truncates any torn tail, and leaves the file positioned for appends.
// syncEvery is the fsync cadence: 1 fsyncs every record (the durable
// default), n > 1 every n-th record, and 0 never (the OS decides).
// It returns the opened log and the number of records replayed.
func OpenWAL(path string, dim, syncEvery int, apply func(Op) error) (*WAL, int, error) {
	if dim < 2 {
		return nil, 0, fmt.Errorf("segment: WAL dimension must be at least 2, got %d", dim)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	w := &WAL{f: f, dim: dim, ptWords: bitvec.Words(dim), syncEvery: syncEvery}
	w.buf = make([]byte, walFrameLen+1+8+8*w.ptWords)
	replayed, err := w.replay(apply)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return w, replayed, nil
}

// replay validates the header (writing a fresh one into an empty file),
// applies every intact record, and truncates the file after the last one.
func (w *WAL) replay(apply func(Op) error) (int, error) {
	st, err := w.f.Stat()
	if err != nil {
		return 0, err
	}
	if st.Size() == 0 {
		return 0, w.writeHeader()
	}
	head := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(w.f, head); err != nil {
		// Shorter than a header: a crash while creating the log. Start over.
		return 0, w.reset()
	}
	if string(head[:len(walMagic)]) != walMagic {
		return 0, fmt.Errorf("%w: bad magic in %s", ErrWAL, w.f.Name())
	}
	if v := binary.LittleEndian.Uint32(head[len(walMagic):]); v != walVersion {
		return 0, fmt.Errorf("%w: version %d, this build reads %d", ErrWAL, v, walVersion)
	}
	if d := binary.LittleEndian.Uint32(head[len(walMagic)+4:]); int(d) != w.dim {
		return 0, fmt.Errorf("%w: log holds dimension-%d points, index wants %d", ErrWAL, d, w.dim)
	}
	good := int64(walHeaderLen)
	replayed := 0
	var frame [walFrameLen]byte
	for {
		if _, err := io.ReadFull(w.f, frame[:]); err != nil {
			break // torn frame header (or clean EOF)
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if int(length) > len(w.buf) || length < 9 {
			break // implausible length: torn or corrupt
		}
		payload := w.buf[:length]
		if _, err := io.ReadFull(w.f, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		op, err := w.decode(payload)
		if err != nil {
			break
		}
		if err := apply(op); err != nil {
			return replayed, fmt.Errorf("segment: WAL replay record %d: %w", replayed, err)
		}
		replayed++
		good += walFrameLen + int64(length)
	}
	if err := w.f.Truncate(good); err != nil {
		return replayed, err
	}
	if _, err := w.f.Seek(good, io.SeekStart); err != nil {
		return replayed, err
	}
	w.size.Store(good)
	return replayed, nil
}

func (w *WAL) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return w.writeHeader()
}

func (w *WAL) writeHeader() error {
	head := make([]byte, walHeaderLen)
	copy(head, walMagic)
	binary.LittleEndian.PutUint32(head[len(walMagic):], walVersion)
	binary.LittleEndian.PutUint32(head[len(walMagic)+4:], uint32(w.dim))
	if _, err := w.f.Write(head); err != nil {
		return err
	}
	w.size.Store(int64(walHeaderLen))
	return w.f.Sync()
}

func (w *WAL) decode(payload []byte) (Op, error) {
	op := Op{Kind: payload[0], ID: binary.LittleEndian.Uint64(payload[1:9])}
	switch op.Kind {
	case OpDelete:
		if len(payload) != 9 {
			return op, ErrWAL
		}
	case OpInsert:
		if len(payload) != 9+8*w.ptWords {
			return op, ErrWAL
		}
		pt := make(bitvec.Vector, w.ptWords)
		for i := range pt {
			pt[i] = binary.LittleEndian.Uint64(payload[9+8*i:])
		}
		op.Point = pt
	default:
		return op, ErrWAL
	}
	return op, nil
}

// Append frames, writes, and (per the sync cadence) fsyncs one record.
// The mutation is durable when Append returns under syncEvery == 1.
func (w *WAL) Append(op Op) error {
	length := 9
	if op.Kind == OpInsert {
		if len(op.Point) != w.ptWords {
			return fmt.Errorf("segment: WAL insert point has %d words, want %d", len(op.Point), w.ptWords)
		}
		length += 8 * w.ptWords
	}
	buf := w.buf[:walFrameLen+length]
	payload := buf[walFrameLen:]
	payload[0] = op.Kind
	binary.LittleEndian.PutUint64(payload[1:], op.ID)
	if op.Kind == OpInsert {
		for i, word := range op.Point {
			binary.LittleEndian.PutUint64(payload[9+8*i:], word)
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(length))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(buf); err != nil {
		return err
	}
	w.size.Add(int64(len(buf)))
	w.sinceSync++
	if w.syncEvery > 0 && w.sinceSync >= w.syncEvery {
		w.sinceSync = 0
		return w.f.Sync()
	}
	return nil
}

// Truncate resets the log to an empty (header-only) state. Called after
// a snapshot has durably captured everything the log described.
func (w *WAL) Truncate() error {
	return w.reset()
}

// Size returns the current file size in bytes.
func (w *WAL) Size() int64 { return w.size.Load() }

// Sync forces an fsync regardless of cadence.
func (w *WAL) Sync() error { return w.f.Sync() }

// Close syncs and closes the file.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
