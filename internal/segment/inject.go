package segment

import (
	"encoding/binary"
	"hash/crc32"
	"os"
)

// Crash-artifact injection for the chaos harness (internal/chaos) and
// recovery tests. A process killed mid-Append leaves one of two shapes
// at the log's tail: a frame header whose promised payload never made
// it to disk (torn), or a fully written frame whose payload bytes are
// not what the checksum was computed over (corrupt — a lost sector or
// an interrupted overwrite). Both describe mutations that were never
// acknowledged, so replay must drop them and everything after; these
// helpers append exactly those shapes to a closed WAL file so recovery
// tests can assert that contract without staging a real crash.

// AppendTornFrame appends a plausible frame header followed by fewer
// payload bytes than the header promises — the artifact of a crash
// between the header write and the payload write.
func AppendTornFrame(path string) error {
	// A delete-op length (9 bytes) is always plausible, but only 4
	// payload bytes follow.
	frame := make([]byte, walFrameLen+4)
	binary.LittleEndian.PutUint32(frame[:4], 9)
	binary.LittleEndian.PutUint32(frame[4:8], 0x7e5707a9)
	frame[walFrameLen] = OpDelete
	return appendRaw(path, frame)
}

// AppendCorruptFrame appends a complete, well-formed frame whose CRC
// does not match its payload — the artifact of payload bytes damaged
// after the header was committed.
func AppendCorruptFrame(path string) error {
	payload := make([]byte, 9)
	payload[0] = OpDelete
	binary.LittleEndian.PutUint64(payload[1:], 12345)
	frame := make([]byte, walFrameLen+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload)^0xFFFFFFFF)
	copy(frame[walFrameLen:], payload)
	return appendRaw(path, frame)
}

func appendRaw(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
