package segment

import (
	"repro/internal/bitvec"
)

// Memtable is the in-memory delta tier: freshly inserted points with
// their assigned IDs, queried by exact brute-force Hamming scan until
// the memtable seals into an immutable segment. The scan reads every
// entry, so its cell-probe accounting is honest and deterministic:
// one round, Len() probes. Entries are append-only; deletes tombstone
// (the scan skips members of the caller's dead set) and are physically
// dropped only at compaction.
//
// A sealed memtable doubles as the raw storage of a segment whose
// mini-index has not been built yet, so the same Scan serves both the
// active memtable and not-yet-indexed segments.
//
// A Memtable is not safe for concurrent mutation; the mutable tier
// guards appends with its index lock.
type Memtable struct {
	ids []uint64
	pts []bitvec.Vector
}

// NewMemtable returns an empty memtable.
func NewMemtable() *Memtable { return &Memtable{} }

// NewMemtableFrom rebuilds a memtable from parallel id/point slices (the
// snapshot load path). The slices are retained.
func NewMemtableFrom(ids []uint64, pts []bitvec.Vector) *Memtable {
	if len(ids) != len(pts) {
		panic("segment: ids and points length mismatch")
	}
	return &Memtable{ids: ids, pts: pts}
}

// Append adds one point under the given ID. The point is retained, not
// copied.
func (m *Memtable) Append(id uint64, p bitvec.Vector) {
	m.ids = append(m.ids, id)
	m.pts = append(m.pts, p)
}

// Len returns the number of entries (including tombstoned ones — they
// leave only at compaction).
func (m *Memtable) Len() int { return len(m.ids) }

// IDs returns the entry IDs in insertion order. The slice is owned by
// the memtable; callers must not mutate it.
func (m *Memtable) IDs() []uint64 { return m.ids }

// Points returns the entries in insertion order (same ownership rule).
func (m *Memtable) Points() []bitvec.Vector { return m.pts }

// ScanResult is one exact scan's answer and accounting.
type ScanResult struct {
	// Found reports whether any live entry exists; ID/Pos/Dist are only
	// meaningful when it is set.
	Found bool
	// ID is the winning entry's point ID, Pos its position in the
	// memtable, Dist its exact Hamming distance to the query. Ties break
	// to the earliest-inserted (lowest-position) entry.
	ID   uint64
	Pos  int
	Dist int
	// Scanned is the number of entries examined — the probe count the
	// model charges for the brute-force tier (every entry is read, dead
	// or not, in one parallel round).
	Scanned int
}

// Scan returns the exact nearest live entry to x, skipping entries whose
// ID is in dead (nil means nothing is dead).
func (m *Memtable) Scan(x bitvec.Vector, dead *IDSet) ScanResult {
	out := ScanResult{Scanned: len(m.ids), Pos: -1, Dist: -1}
	for i, p := range m.pts {
		if dead != nil && dead.Has(m.ids[i]) {
			continue
		}
		d := bitvec.Distance(p, x)
		if !out.Found || d < out.Dist {
			out.Found = true
			out.ID, out.Pos, out.Dist = m.ids[i], i, d
		}
	}
	return out
}
