package lpm

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// Reduction is Lemma 14's mapping from an LPM instance to an ANNS instance:
// database string i embeds to the center of the depth-M ball reached by
// walking the γ-separated tree along the string's symbols, and a query
// string embeds the same way.
//
// Correctness transfer (the property the paper's reduction rests on): if
// the best LCP with the query is t, the exact nearest embedded point lies
// within the common depth-t ball (distance ≤ 2·rad_t) while every string
// diverging earlier, at depth t' < t, sits in a different ball of the
// depth-(t'+1) γ-separated family (distance > γ·2·rad_{t'+1} ≥ γ·2·rad_t).
// Hence any γ-approximate nearest neighbor of the embedded query is an
// *exact* LPM answer.
type Reduction struct {
	Tree   *BallTree
	In     *Instance
	D      int
	Points []bitvec.Vector // Points[i] = embedding of In.DB[i]
}

// NewReduction embeds the instance into {0,1}^d. The dimension must
// satisfy d/(8γ)^M ≥ 1; larger d gives more slack for center sampling.
func NewReduction(r *rng.Source, in *Instance, d int, gamma float64) (*Reduction, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	tree, err := NewBallTree(r, d, gamma, in.Sigma, in.M)
	if err != nil {
		return nil, err
	}
	rd := &Reduction{Tree: tree, In: in, D: d}
	for _, s := range in.DB {
		rd.Points = append(rd.Points, tree.Embed(s))
	}
	return rd, nil
}

// QueryPoint embeds a query string.
func (rd *Reduction) QueryPoint(x []int) bitvec.Vector { return rd.Tree.Embed(x) }

// VerifyGap checks, for one query, the distance-gap property stated above
// against the actual embedded points — the invariant tests and E9 assert.
func (rd *Reduction) VerifyGap(x []int) error {
	best := rd.In.BestLCP(x)
	px := rd.QueryPoint(x)
	// Radius of depth-t balls.
	radAt := func(t int) float64 {
		r := float64(rd.D) / 2
		for i := 0; i < t; i++ {
			r /= rd.Tree.Shrink
		}
		return r
	}
	for i, s := range rd.In.DB {
		l := LCP(s, x)
		dist := float64(bitvec.Distance(px, rd.Points[i]))
		if l == len(x) && dist != 0 {
			// Full-prefix matches may still differ beyond M in the paper's
			// unbounded strings; with equal length they embed identically.
			return fmt.Errorf("lpm: full match %d embedded at distance %v", i, dist)
		}
		if dist > 2*radAt(l) {
			return fmt.Errorf("lpm: string %d (lcp=%d) at distance %v > diameter %v",
				i, l, dist, 2*radAt(l))
		}
		if l < best {
			if dist <= rd.Tree.Gamma*2*radAt(l+1) {
				return fmt.Errorf("lpm: string %d (lcp=%d < best %d) at distance %v not separated (need > %v)",
					i, l, best, dist, rd.Tree.Gamma*2*radAt(l+1))
			}
		}
	}
	return nil
}
