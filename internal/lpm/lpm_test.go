package lpm

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

func distanceBetween(a, b bitvec.Vector) int { return bitvec.Distance(a, b) }

func randInstance(r *rng.Source, sigma, m, n int) *Instance {
	in := &Instance{Sigma: sigma, M: m}
	for i := 0; i < n; i++ {
		s := make([]int, m)
		for j := range s {
			s[j] = r.Intn(sigma)
		}
		in.DB = append(in.DB, s)
	}
	return in
}

func TestLCP(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 3},
		{[]int{1, 2, 3}, []int{1, 2, 4}, 2},
		{[]int{1}, []int{2}, 0},
		{[]int{}, []int{1}, 0},
		{[]int{1, 2}, []int{1, 2, 3}, 2},
	}
	for _, c := range cases {
		if got := LCP(c.a, c.b); got != c.want {
			t.Errorf("LCP(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := &Instance{Sigma: 3, M: 2, DB: [][]int{{0, 2}, {1, 1}}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	badLen := &Instance{Sigma: 3, M: 2, DB: [][]int{{0}}}
	if badLen.Validate() == nil {
		t.Error("wrong length accepted")
	}
	badSym := &Instance{Sigma: 3, M: 2, DB: [][]int{{0, 3}}}
	if badSym.Validate() == nil {
		t.Error("out-of-alphabet symbol accepted")
	}
}

func TestTrieMatchesBruteForce(t *testing.T) {
	r := rng.New(70)
	for trial := 0; trial < 20; trial++ {
		in := randInstance(r, 3, 5, 30)
		trie := NewTrie(in)
		for q := 0; q < 20; q++ {
			x := make([]int, 5)
			for j := range x {
				x[j] = r.Intn(3)
			}
			idx, lcp := trie.Query(x)
			if lcp != in.BestLCP(x) {
				t.Fatalf("trie LCP %d, brute %d", lcp, in.BestLCP(x))
			}
			if !in.IsCorrect(x, idx) {
				t.Fatalf("trie answer %d not a valid LPM answer", idx)
			}
		}
	}
}

func TestIsCorrectRejects(t *testing.T) {
	in := &Instance{Sigma: 2, M: 3, DB: [][]int{{0, 0, 0}, {1, 1, 1}}}
	x := []int{0, 0, 1}
	if !in.IsCorrect(x, 0) {
		t.Error("correct answer rejected")
	}
	if in.IsCorrect(x, 1) {
		t.Error("wrong answer accepted")
	}
	if in.IsCorrect(x, -1) || in.IsCorrect(x, 5) {
		t.Error("out-of-range index accepted")
	}
}

func TestBallTreeConstruction(t *testing.T) {
	r := rng.New(71)
	tree, err := NewBallTree(r, 8192, 2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckSeparation(); err != nil {
		t.Fatal(err)
	}
	// Shape: depth-3 complete 4-ary tree.
	var count func(n *BallNode) int
	count = func(n *BallNode) int {
		if n.Children == nil {
			return 1
		}
		total := 0
		for _, c := range n.Children {
			total += count(c)
		}
		return total
	}
	if got := count(tree.Root); got != 64 {
		t.Errorf("leaf count %d, want 64", got)
	}
}

func TestBallTreeNesting(t *testing.T) {
	r := rng.New(72)
	tree, err := NewBallTree(r, 4096, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var walk func(n *BallNode)
	walk = func(n *BallNode) {
		for _, c := range n.Children {
			// Child ball inside parent: centerDist + childRad <= parentRad.
			cd := distanceBetween(n.Center, c.Center)
			if float64(cd)+c.Radius > n.Radius {
				t.Errorf("child not nested: centerDist %d + rad %.1f > parent %.1f",
					cd, c.Radius, n.Radius)
			}
			walk(c)
		}
	}
	walk(tree.Root)
}

func TestBallTreeInfeasibleDepth(t *testing.T) {
	r := rng.New(73)
	if _, err := NewBallTree(r, 256, 2, 4, 5); err == nil {
		t.Error("geometrically infeasible tree accepted")
	}
	if _, err := NewBallTree(r, 256, 1, 4, 1); err == nil {
		t.Error("gamma <= 1 accepted")
	}
}

func TestWalkAndEmbed(t *testing.T) {
	r := rng.New(74)
	tree, err := NewBallTree(r, 4096, 2, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := tree.Walk([]int{1, 2})
	if len(path) != 3 {
		t.Fatalf("path length %d", len(path))
	}
	if path[2] != tree.Root.Children[1].Children[2] {
		t.Error("walk took wrong branch")
	}
	emb := tree.Embed([]int{1, 2})
	if distanceBetween(emb, path[2].Center) != 0 {
		t.Error("embed is not the leaf center")
	}
}

func TestReductionGapProperty(t *testing.T) {
	r := rng.New(75)
	in := randInstance(r, 3, 2, 15)
	rd, err := NewReduction(r.Split(1), in, 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 25; q++ {
		x := make([]int, 2)
		for j := range x {
			x[j] = r.Intn(3)
		}
		if err := rd.VerifyGap(x); err != nil {
			t.Errorf("gap property: %v", err)
		}
	}
}

func TestReductionNearestIsLPMAnswer(t *testing.T) {
	r := rng.New(76)
	in := randInstance(r, 4, 3, 25)
	rd, err := NewReduction(r.Split(2), in, 16384, 2)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 20; q++ {
		x := make([]int, 3)
		for j := range x {
			x[j] = r.Intn(4)
		}
		px := rd.QueryPoint(x)
		// Exact nearest embedded point must be an exact LPM answer.
		best, bestDist := 0, distanceBetween(px, rd.Points[0])
		for i := 1; i < len(rd.Points); i++ {
			if d := distanceBetween(px, rd.Points[i]); d < bestDist {
				best, bestDist = i, d
			}
		}
		if !in.IsCorrect(x, best) {
			t.Errorf("nearest embedded point %d is not an LPM answer for %v", best, x)
		}
	}
}

func TestReductionRejectsInvalidInstance(t *testing.T) {
	r := rng.New(77)
	bad := &Instance{Sigma: 2, M: 2, DB: [][]int{{0, 5}}}
	if _, err := NewReduction(r, bad, 4096, 2); err == nil {
		t.Error("invalid instance accepted")
	}
}
