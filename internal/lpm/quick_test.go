package lpm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// stringPair generates two strings over a small alphabet for LCP
// property tests.
type stringPair struct{ A, B []int }

func (stringPair) Generate(r *rand.Rand, _ int) reflect.Value {
	mk := func() []int {
		s := make([]int, 6)
		for i := range s {
			s[i] = r.Intn(3)
		}
		return s
	}
	return reflect.ValueOf(stringPair{A: mk(), B: mk()})
}

func TestQuickLCPSymmetric(t *testing.T) {
	f := func(p stringPair) bool { return LCP(p.A, p.B) == LCP(p.B, p.A) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLCPBoundedAndExact(t *testing.T) {
	f := func(p stringPair) bool {
		l := LCP(p.A, p.B)
		if l < 0 || l > len(p.A) {
			return false
		}
		for i := 0; i < l; i++ {
			if p.A[i] != p.B[i] {
				return false
			}
		}
		return l == len(p.A) || l == len(p.B) || p.A[l] != p.B[l]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLCPSelf(t *testing.T) {
	f := func(p stringPair) bool { return LCP(p.A, p.A) == len(p.A) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// instanceAndQuery generates a whole LPM instance plus query.
type instanceAndQuery struct {
	In *Instance
	X  []int
}

func (instanceAndQuery) Generate(r *rand.Rand, _ int) reflect.Value {
	const sigma, m = 3, 4
	in := &Instance{Sigma: sigma, M: m}
	n := 2 + r.Intn(20)
	for i := 0; i < n; i++ {
		s := make([]int, m)
		for j := range s {
			s[j] = r.Intn(sigma)
		}
		in.DB = append(in.DB, s)
	}
	x := make([]int, m)
	for j := range x {
		x[j] = r.Intn(sigma)
	}
	return reflect.ValueOf(instanceAndQuery{In: in, X: x})
}

// TestQuickTrieAlwaysCorrect: the trie's answer is always a valid LPM
// answer and its reported LCP equals the brute-force maximum.
func TestQuickTrieAlwaysCorrect(t *testing.T) {
	f := func(iq instanceAndQuery) bool {
		idx, lcp := NewTrie(iq.In).Query(iq.X)
		return iq.In.IsCorrect(iq.X, idx) && lcp == iq.In.BestLCP(iq.X)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSchemesMatchTrie: both cell-probe schemes attain the maximal
// LCP on arbitrary instances.
func TestQuickSchemesMatchTrie(t *testing.T) {
	f := func(iq instanceAndQuery) bool {
		pt := NewPrefixTable(iq.In, nil)
		walk := &WalkScheme{T: pt}
		bin := &BinSearchScheme{T: pt}
		want := iq.In.BestLCP(iq.X)
		wAns, _ := walk.Query(iq.X)
		bAns, _ := bin.Query(iq.X)
		return LCP(iq.In.DB[wAns], iq.X) == want && LCP(iq.In.DB[bAns], iq.X) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
