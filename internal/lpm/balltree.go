package lpm

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

// BallTree is the recursive γ-separated family of Hamming balls of
// Lemma 16: a σ-ary tree of depth `depth` whose depth-t nodes are balls of
// radius d/shrink^t, children nested inside their parent, and every level
// a γ-separated family (pairwise point-to-point distance across distinct
// balls exceeds γ times any ball's diameter at that level).
type BallTree struct {
	D      int
	Gamma  float64
	Sigma  int
	Depth  int
	Shrink float64
	Root   *BallNode
}

// BallNode is one Hamming ball in the tree.
type BallNode struct {
	Center   bitvec.Vector
	Radius   float64
	Children []*BallNode // nil at leaves; length Sigma otherwise
}

// NewBallTree constructs the tree, rejection-sampling child centers until
// each sibling family is γ-separated (as Lemma 15 guarantees exists; at
// our scales a handful of retries suffice). Returns an error if the
// requested depth is geometrically infeasible for dimension d.
func NewBallTree(r *rng.Source, d int, gamma float64, sigma, depth int) (*BallTree, error) {
	if gamma <= 1 {
		return nil, fmt.Errorf("lpm: gamma must exceed 1")
	}
	shrink := 8 * gamma // the paper's per-level radius factor
	// Leaf radius d/shrink^depth must stay ≥ 1 for balls to be nontrivial
	// (the paper keeps it ≥ d^0.995 for its asymptotic regime).
	rad := float64(d)
	for t := 0; t < depth; t++ {
		rad /= shrink
	}
	if rad < 1 {
		return nil, fmt.Errorf("lpm: depth %d too large for d=%d (leaf radius %.2f < 1)", depth, d, rad)
	}
	tree := &BallTree{D: d, Gamma: gamma, Sigma: sigma, Depth: depth, Shrink: shrink}
	root := &BallNode{Center: hamming.Random(r, d), Radius: float64(d) / 2}
	tree.Root = root
	if err := tree.grow(r, root, depth); err != nil {
		return nil, err
	}
	return tree, nil
}

func (t *BallTree) grow(r *rng.Source, node *BallNode, levels int) error {
	if levels == 0 {
		return nil
	}
	childRad := node.Radius / t.Shrink
	// Separation requirement between distinct sibling balls: point-to-point
	// distance > γ · diameter = γ·2·childRad, i.e. center distance
	// > 2·childRad·(γ+1).
	minCenterDist := int(2*childRad*(t.Gamma+1)) + 1
	// Children must nest inside the parent: centers within R − childRad.
	off := int(node.Radius - childRad)
	if off < minCenterDist/2 {
		return fmt.Errorf("lpm: ball at radius %.1f cannot host %d separated children", node.Radius, t.Sigma)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		centers := make([]bitvec.Vector, t.Sigma)
		for i := range centers {
			centers[i] = hamming.AtDistance(r, node.Center, t.D, off/2+r.Intn(off/2+1))
		}
		if separated(centers, minCenterDist) {
			node.Children = make([]*BallNode, t.Sigma)
			for i, c := range centers {
				node.Children[i] = &BallNode{Center: c, Radius: childRad}
				if err := t.grow(r, node.Children[i], levels-1); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return fmt.Errorf("lpm: could not separate %d children at radius %.1f after %d attempts",
		t.Sigma, childRad, maxAttempts)
}

func separated(centers []bitvec.Vector, minDist int) bool {
	for i := 0; i < len(centers); i++ {
		for j := i + 1; j < len(centers); j++ {
			if bitvec.DistanceAtMost(centers[i], centers[j], minDist-1) {
				return false
			}
		}
	}
	return true
}

// Walk follows the symbol string from the root and returns the node path
// (path[0] = root, path[t] = node reached after t symbols).
func (t *BallTree) Walk(s []int) []*BallNode {
	path := []*BallNode{t.Root}
	node := t.Root
	for _, c := range s {
		if node.Children == nil {
			break
		}
		if c < 0 || c >= len(node.Children) {
			panic(fmt.Sprintf("lpm: symbol %d outside branching %d", c, len(node.Children)))
		}
		node = node.Children[c]
		path = append(path, node)
	}
	return path
}

// Embed maps a string to the center of the ball reached by walking it.
func (t *BallTree) Embed(s []int) bitvec.Vector {
	path := t.Walk(s)
	return path[len(path)-1].Center
}

// CheckSeparation verifies the γ-separation invariant at every level by
// exhaustive pairwise comparison; used by tests and the E9 experiment.
func (t *BallTree) CheckSeparation() error {
	level := []*BallNode{t.Root}
	for depth := 0; len(level) > 0; depth++ {
		var next []*BallNode
		for _, n := range level {
			next = append(next, n.Children...)
		}
		if len(next) > 1 {
			// All balls at one depth share a radius. Point-to-point distance
			// across distinct balls is at least centerDist − 2·rad, which
			// must exceed γ·(2·rad): centers ≥ 2·rad·(γ+1) apart.
			rad := next[0].Radius
			need := 2 * rad * (t.Gamma + 1)
			for i := 0; i < len(next); i++ {
				for j := i + 1; j < len(next); j++ {
					cd := bitvec.Distance(next[i].Center, next[j].Center)
					if float64(cd) < need {
						return fmt.Errorf("lpm: depth %d balls %d,%d too close: center dist %d, need %.1f",
							depth+1, i, j, cd, need)
					}
				}
			}
		}
		level = next
	}
	return nil
}
