package lpm

import (
	"fmt"
	"math"

	"repro/internal/cellprobe"
)

// Cell-probe schemes for LPM itself. The paper's lower bound (Theorem 24
// via Lemma 14) is proved against LPM, so the repository also provides the
// standard upper bounds for it in the same instrumented model:
//
//   - WalkScheme: the trie walk — m rounds of 1 probe (fully adaptive,
//     cheap table);
//   - BinSearchScheme: binary search over prefix lengths — ⌈log₂(m+1)⌉
//     rounds of 1 probe (prefix existence is monotone in length), the
//     classic exponential-table LPM scheme whose round structure the
//     reduction transports to ANNS.
//
// Both are built on a prefix table: the cell at address ⟨t, x[:t]⟩ stores
// a database string with prefix x[:t] if one exists, else EMPTY.

// PrefixTable is the shared oracle table: address = packed prefix words,
// content = representative database index or EMPTY.
type PrefixTable struct {
	in     *Instance
	trie   *Trie
	oracle *cellprobe.Oracle
}

// NewPrefixTable builds the prefix table for an instance.
func NewPrefixTable(in *Instance, meter *cellprobe.Meter) *PrefixTable {
	t := &PrefixTable{in: in, trie: NewTrie(in)}
	// Nominal cells: Σ^m prefixes per length, m+1 lengths: (m+1)·|Σ|^m.
	logCells := float64(in.M)*math.Log2(float64(in.Sigma)) + math.Log2(float64(in.M+1))
	if logCells < 1 {
		logCells = 1
	}
	wordBits := bitsFor(len(in.DB) + 1)
	t.oracle = cellprobe.NewOracleEval(cellprobe.PrefixTag(), logCells, wordBits, meter, t)
	return t
}

func bitsFor(n int) int {
	b := 1
	for v := 2; v < n; v <<= 1 {
		b++
	}
	return b
}

// Address packs the prefix x[:t] into a binary address: a length word
// followed by one word per symbol.
func (t *PrefixTable) Address(x []int, length int) cellprobe.Addr {
	var b cellprobe.AddrBuilder
	b.Reset(cellprobe.PrefixTag())
	b.Uint(uint64(length))
	for _, c := range x[:length] {
		b.Uint(uint64(c))
	}
	return b.Addr()
}

func (t *PrefixTable) EvalCell(addr cellprobe.Addr) cellprobe.Word {
	if addr.Len() < 1 {
		return cellprobe.EmptyWord
	}
	length := int(addr.Word(0))
	if length < 0 || addr.Len() != 1+length {
		return cellprobe.EmptyWord
	}
	prefix := make([]int, length)
	for i := 0; i < length; i++ {
		prefix[i] = int(addr.Word(1 + i))
	}
	idx, lcp := t.trie.Query(prefix)
	if lcp != length {
		return cellprobe.EmptyWord
	}
	return cellprobe.PointWord(idx)
}

// Table exposes the cell-probe view.
func (t *PrefixTable) Table() cellprobe.Table { return t.oracle }

// WalkScheme answers LPM by walking prefix lengths 1, 2, …, m until the
// first EMPTY cell: fully adaptive, at most m rounds of one probe.
type WalkScheme struct {
	T *PrefixTable
}

// Query returns (answer index, stats). The answer is the representative
// of the longest existing prefix (the root representative when even the
// first symbol misses).
func (s *WalkScheme) Query(x []int) (int, cellprobe.Stats) {
	p := cellprobe.NewQueryCtx(0)
	best := s.rootRepresentative()
	for t := 1; t <= len(x); t++ {
		p.Stage(s.T.Table(), s.T.Address(x, t))
		words, err := p.Flush()
		if err != nil || words[0].Kind != cellprobe.Point {
			break
		}
		best = words[0].Index
	}
	return best, p.Stats()
}

func (s *WalkScheme) rootRepresentative() int {
	if len(s.T.in.DB) == 0 {
		return -1
	}
	return 0
}

// BinSearchScheme answers LPM by binary search over the prefix length:
// "some database string has prefix x[:t]" is monotone (downward closed)
// in t, so ⌈log₂(m+1)⌉ adaptive probes find the maximal t.
type BinSearchScheme struct {
	T *PrefixTable
}

// Query returns (answer index, stats).
func (s *BinSearchScheme) Query(x []int) (int, cellprobe.Stats) {
	p := cellprobe.NewQueryCtx(0)
	lo, hi := 0, len(x) // invariant: prefix length lo exists, hi+1 doesn't
	best := s.rootRep()
	for lo < hi {
		mid := (lo + hi + 1) / 2
		p.Stage(s.T.Table(), s.T.Address(x, mid))
		words, err := p.Flush()
		if err != nil {
			return best, p.Stats()
		}
		if words[0].Kind == cellprobe.Point {
			best = words[0].Index
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return best, p.Stats()
}

func (s *BinSearchScheme) rootRep() int {
	if len(s.T.in.DB) == 0 {
		return -1
	}
	return 0
}

// ProbeBoundBinSearch is the ⌈log₂(m+1)⌉ probe bound of the binary-search
// scheme, for tests and reports.
func ProbeBoundBinSearch(m int) int {
	return int(math.Ceil(math.Log2(float64(m + 1))))
}

// String renders a scheme description for reports.
func (s *BinSearchScheme) String() string {
	return fmt.Sprintf("lpm-binsearch(m=%d, ≤%d probes)", s.T.in.M, ProbeBoundBinSearch(s.T.in.M))
}
