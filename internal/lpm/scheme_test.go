package lpm

import (
	"testing"

	"repro/internal/cellprobe"
	"repro/internal/rng"
)

func TestPrefixTableCells(t *testing.T) {
	in := &Instance{Sigma: 3, M: 3, DB: [][]int{{0, 1, 2}, {0, 2, 2}, {1, 0, 0}}}
	pt := NewPrefixTable(in, nil)
	// Existing prefixes return a string carrying that prefix.
	cases := []struct {
		prefix []int
		exists bool
	}{
		{[]int{0}, true},
		{[]int{0, 1}, true},
		{[]int{0, 1, 2}, true},
		{[]int{1, 0, 0}, true},
		{[]int{2}, false},
		{[]int{0, 0}, false},
		{[]int{1, 1}, false},
	}
	for _, c := range cases {
		w := pt.Table().Lookup(pt.Address(c.prefix, len(c.prefix)))
		if c.exists {
			if w.Kind != cellprobe.Point {
				t.Errorf("prefix %v: EMPTY, want a point", c.prefix)
				continue
			}
			if LCP(in.DB[w.Index], c.prefix) != len(c.prefix) {
				t.Errorf("prefix %v: representative %d does not carry it", c.prefix, w.Index)
			}
		} else if w.Kind != cellprobe.Empty {
			t.Errorf("prefix %v: got %v, want EMPTY", c.prefix, w)
		}
	}
	// Malformed addresses (length word promising more symbols than
	// present) are EMPTY.
	bad := cellprobe.VecAddr(cellprobe.PrefixTag(), []uint64{5, 1})
	if w := pt.Table().Lookup(bad); w.Kind != cellprobe.Empty {
		t.Error("malformed address not EMPTY")
	}
}

func TestWalkSchemeExact(t *testing.T) {
	r := rng.New(10)
	in := randInstance(r, 4, 5, 25)
	pt := NewPrefixTable(in, nil)
	s := &WalkScheme{T: pt}
	for q := 0; q < 40; q++ {
		x := make([]int, 5)
		for j := range x {
			x[j] = r.Intn(4)
		}
		ans, st := s.Query(x)
		if !in.IsCorrect(x, ans) {
			t.Fatalf("walk answer %d not maximal-LCP for %v", ans, x)
		}
		// Probes = LCP+1 (the failing step) capped at m.
		want := in.BestLCP(x) + 1
		if want > 5 {
			want = 5
		}
		if st.Probes != want {
			t.Errorf("walk probes %d, want %d", st.Probes, want)
		}
		if st.Rounds != st.Probes {
			t.Error("walk not one probe per round")
		}
	}
}

func TestBinSearchSchemeExactAndLogarithmic(t *testing.T) {
	r := rng.New(11)
	in := randInstance(r, 3, 8, 30)
	pt := NewPrefixTable(in, nil)
	s := &BinSearchScheme{T: pt}
	bound := ProbeBoundBinSearch(8)
	for q := 0; q < 40; q++ {
		x := make([]int, 8)
		for j := range x {
			x[j] = r.Intn(3)
		}
		ans, st := s.Query(x)
		if !in.IsCorrect(x, ans) {
			t.Fatalf("binsearch answer %d not maximal-LCP for %v", ans, x)
		}
		if st.Probes > bound {
			t.Errorf("binsearch used %d probes > bound %d", st.Probes, bound)
		}
		if st.Rounds != st.Probes {
			t.Error("binsearch not one probe per round")
		}
	}
	if s.String() == "" {
		t.Error("empty description")
	}
}

func TestSchemesAgree(t *testing.T) {
	r := rng.New(12)
	in := randInstance(r, 5, 6, 40)
	pt := NewPrefixTable(in, nil)
	walk := &WalkScheme{T: pt}
	bin := &BinSearchScheme{T: pt}
	trie := NewTrie(in)
	for q := 0; q < 30; q++ {
		x := make([]int, 6)
		for j := range x {
			x[j] = r.Intn(5)
		}
		wAns, _ := walk.Query(x)
		bAns, _ := bin.Query(x)
		_, wantLCP := trie.Query(x)
		if LCP(in.DB[wAns], x) != wantLCP || LCP(in.DB[bAns], x) != wantLCP {
			t.Fatalf("schemes disagree with trie on %v", x)
		}
	}
}

func TestProbeBoundBinSearch(t *testing.T) {
	cases := []struct{ m, want int }{{1, 1}, {3, 2}, {7, 3}, {8, 4}, {100, 7}}
	for _, c := range cases {
		if got := ProbeBoundBinSearch(c.m); got != c.want {
			t.Errorf("bound(%d) = %d, want %d", c.m, got, c.want)
		}
	}
}
