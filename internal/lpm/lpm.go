// Package lpm implements the longest-prefix-match substrate of the paper's
// lower bound (§4.1): the LPM problem itself (Definition 13), a trie-based
// reference solver, the γ-separated Hamming-ball tree of Lemma 15/16, and
// the reduction mapping LPM instances to ANNS instances (Lemma 14).
//
// The paper's tree has ⌈2^{d^0.99}⌉ children per node; at simulable scale
// the branching σ and the per-level radius shrink factor are configurable,
// and the construction *verifies* the γ-separation invariant it needs
// (rejection-sampling centers until the family separates). See DESIGN.md
// §3.5 for why this preserves the behaviour the reduction depends on.
package lpm

import (
	"fmt"
)

// Instance is one LPM problem instance: n strings of length M over the
// alphabet {0, …, Sigma−1}.
type Instance struct {
	Sigma int
	M     int
	DB    [][]int
}

// Validate checks the instance's shape.
func (in *Instance) Validate() error {
	for i, s := range in.DB {
		if len(s) != in.M {
			return fmt.Errorf("lpm: string %d has length %d, want %d", i, len(s), in.M)
		}
		for j, c := range s {
			if c < 0 || c >= in.Sigma {
				return fmt.Errorf("lpm: string %d symbol %d out of alphabet: %d", i, j, c)
			}
		}
	}
	return nil
}

// LCP returns the length of the longest common prefix of a and b.
func LCP(a, b []int) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// BestLCP returns the maximum LCP of x with any database string.
func (in *Instance) BestLCP(x []int) int {
	best := 0
	for _, s := range in.DB {
		if l := LCP(s, x); l > best {
			best = l
		}
	}
	return best
}

// IsCorrect reports whether answer index i is a valid LPM answer for x:
// DB[i] attains the maximum LCP.
func (in *Instance) IsCorrect(x []int, i int) bool {
	if i < 0 || i >= len(in.DB) {
		return false
	}
	return LCP(in.DB[i], x) == in.BestLCP(x)
}

// Trie is the reference LPM solver: a σ-ary trie over the database.
type Trie struct {
	children map[int]*Trie
	anyLeaf  int // index of some database string passing through this node
}

// NewTrie builds the trie for the instance.
func NewTrie(in *Instance) *Trie {
	root := &Trie{children: map[int]*Trie{}, anyLeaf: -1}
	for i, s := range in.DB {
		node := root
		if node.anyLeaf < 0 {
			node.anyLeaf = i
		}
		for _, c := range s {
			child, ok := node.children[c]
			if !ok {
				child = &Trie{children: map[int]*Trie{}, anyLeaf: i}
				node.children[c] = child
			}
			node = child
		}
	}
	return root
}

// Query returns the index of a database string with maximal LCP with x,
// and the LCP length.
func (t *Trie) Query(x []int) (idx, lcp int) {
	node := t
	for _, c := range x {
		child, ok := node.children[c]
		if !ok {
			break
		}
		node = child
		lcp++
	}
	return node.anyLeaf, lcp
}
