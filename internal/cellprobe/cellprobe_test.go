package cellprobe

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestWordString(t *testing.T) {
	if EmptyWord.String() != "EMPTY" {
		t.Error(EmptyWord.String())
	}
	if PointWord(3).String() != "point(3)" {
		t.Error(PointWord(3).String())
	}
	if IntWord(7).String() != "int(7)" {
		t.Error(IntWord(7).String())
	}
}

func TestOracleMemoizesAndMeters(t *testing.T) {
	var meter Meter
	evals := 0
	o := NewOracle("t", 10, 8, &meter, func(addr string) Word {
		evals++
		return IntWord(len(addr))
	})
	if w := o.Lookup("abc"); w.Value != 3 {
		t.Fatalf("lookup = %v", w)
	}
	o.Lookup("abc")
	o.Lookup("abcd")
	if evals != 2 {
		t.Errorf("fn evaluated %d times, want 2", evals)
	}
	if meter.CellEvals() != 2 || meter.MemoHits() != 1 {
		t.Errorf("meter evals=%d hits=%d", meter.CellEvals(), meter.MemoHits())
	}
	if o.MemoSize() != 2 {
		t.Errorf("memo size %d", o.MemoSize())
	}
	if o.ID() != "t" || o.NominalLogCells() != 10 || o.WordBits() != 8 {
		t.Error("oracle metadata wrong")
	}
}

func TestOracleConcurrentLookups(t *testing.T) {
	o := NewOracle("t", 4, 8, nil, func(addr string) Word { return IntWord(len(addr)) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				addr := fmt.Sprintf("a%d", i%10)
				if w := o.Lookup(addr); w.Value != len(addr) {
					t.Errorf("bad value %v for %q", w, addr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestProberRoundAccounting(t *testing.T) {
	o := NewOracle("t", 6.5, 33, nil, func(addr string) Word { return EmptyWord })
	p := NewProber(3)
	refs := []Ref{{o, "a"}, {o, "b"}, {o, "c"}}
	if _, err := p.Round(refs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Round(refs[:1]); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Rounds != 2 || st.Probes != 4 {
		t.Errorf("stats %+v", st)
	}
	if len(st.ProbesPerRound) != 2 || st.ProbesPerRound[0] != 3 || st.ProbesPerRound[1] != 1 {
		t.Errorf("per-round %v", st.ProbesPerRound)
	}
	if st.MaxProbesInRound() != 3 {
		t.Errorf("max per round %d", st.MaxProbesInRound())
	}
	if st.BitsRead != 4*33 {
		t.Errorf("bits read %d", st.BitsRead)
	}
	// ceil(6.5) = 7 address bits per probe.
	if st.AddrBitsSent != 4*7 {
		t.Errorf("addr bits %d", st.AddrBitsSent)
	}
}

func TestProberEnforcesRoundBudget(t *testing.T) {
	o := NewOracle("t", 4, 8, nil, func(string) Word { return EmptyWord })
	p := NewProber(2)
	for i := 0; i < 2; i++ {
		if _, err := p.Round([]Ref{{o, "x"}}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := p.Round([]Ref{{o, "x"}})
	if !errors.Is(err, ErrRoundsExhausted) {
		t.Fatalf("expected ErrRoundsExhausted, got %v", err)
	}
	// Stats unchanged by the failed attempt.
	if p.Stats().Rounds != 2 {
		t.Error("failed round counted")
	}
}

func TestProberUnlimited(t *testing.T) {
	o := NewOracle("t", 4, 8, nil, func(string) Word { return EmptyWord })
	p := NewProber(0)
	for i := 0; i < 50; i++ {
		if _, err := p.Round([]Ref{{o, "x"}}); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().Rounds != 50 {
		t.Error("unlimited prober miscounted")
	}
	if p.RoundsLeft() < 1<<30 {
		t.Error("unlimited RoundsLeft too small")
	}
}

func TestProberRejectsEmptyRound(t *testing.T) {
	p := NewProber(2)
	if _, err := p.Round(nil); err == nil {
		t.Fatal("empty round accepted")
	}
}

func TestProberRoundsLeft(t *testing.T) {
	o := NewOracle("t", 4, 8, nil, func(string) Word { return EmptyWord })
	p := NewProber(3)
	if p.RoundsLeft() != 3 {
		t.Error("initial RoundsLeft")
	}
	p.Round([]Ref{{o, "x"}})
	if p.RoundsLeft() != 2 {
		t.Error("RoundsLeft after one round")
	}
}

func TestRecordingProberTranscript(t *testing.T) {
	o := NewOracle("tab", 4, 8, nil, func(addr string) Word { return IntWord(len(addr)) })
	p := NewRecordingProber(2)
	p.Round([]Ref{{o, "aa"}, {o, "b"}})
	p.Round([]Ref{{o, "ccc"}})
	tr := p.Transcript()
	if len(tr) != 3 {
		t.Fatalf("transcript length %d", len(tr))
	}
	if tr[0].Round != 0 || tr[2].Round != 1 {
		t.Error("round tags wrong")
	}
	if tr[0].TableID != "tab" || tr[0].Addr != "aa" || tr[0].Content.Value != 2 {
		t.Errorf("entry %+v", tr[0])
	}
	// Non-recording prober keeps no transcript.
	q := NewProber(2)
	q.Round([]Ref{{o, "x"}})
	if q.Transcript() != nil {
		t.Error("non-recording prober has transcript")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Rounds: 2, Probes: 5, ProbesPerRound: []int{3, 2}, BitsRead: 50, AddrBitsSent: 20}
	b := Stats{Rounds: 3, Probes: 4, ProbesPerRound: []int{1, 1, 2}, BitsRead: 40, AddrBitsSent: 12}
	a.Add(b)
	if a.Rounds != 3 || a.Probes != 9 || a.BitsRead != 90 || a.AddrBitsSent != 32 {
		t.Errorf("after add: %+v", a)
	}
	want := []int{4, 3, 2}
	for i, w := range want {
		if a.ProbesPerRound[i] != w {
			t.Errorf("per-round[%d] = %d, want %d", i, a.ProbesPerRound[i], w)
		}
	}
}

func TestCeilLog(t *testing.T) {
	cases := []struct {
		in   float64
		want int
	}{{0.3, 1}, {1, 1}, {1.5, 2}, {7, 7}, {7.01, 8}}
	for _, c := range cases {
		if got := ceilLog(c.in); got != c.want {
			t.Errorf("ceilLog(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
