package cellprobe

import (
	"errors"
	"sync"
	"testing"
)

// wordAddr builds a one-word test address on the generic test table.
func wordAddr(v uint64) Addr { return VecAddr(GenericTag(0), []uint64{v}) }

func TestWordString(t *testing.T) {
	if EmptyWord.String() != "EMPTY" {
		t.Error(EmptyWord.String())
	}
	if PointWord(3).String() != "point(3)" {
		t.Error(PointWord(3).String())
	}
	if IntWord(7).String() != "int(7)" {
		t.Error(IntWord(7).String())
	}
}

func TestTagStrings(t *testing.T) {
	cases := []struct {
		tag  Tag
		want string
	}{
		{BallTag(3), "T[3]"},
		{AuxTag(2), "aux[2]"},
		{MemberTag(0), "member[B]"},
		{MemberTag(1), "member[N1(B)]"},
		{PrefixTag(), "lpm-prefix"},
		{GenericTag(7), "tbl[7]"},
	}
	for _, c := range cases {
		if got := c.tag.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.tag, got, c.want)
		}
	}
}

func TestAddrInlineAndOverflow(t *testing.T) {
	short := []uint64{1, 2, 3}
	a := VecAddr(BallTag(1), short)
	if a.Len() != 3 || a.Word(0) != 1 || a.Word(2) != 3 {
		t.Fatalf("inline addr %+v", a)
	}
	b := VecAddr(BallTag(1), short)
	if a != b {
		t.Fatal("identical inline addresses compare unequal")
	}
	if VecAddr(BallTag(2), short) == a {
		t.Fatal("tag not part of identity")
	}

	long := make([]uint64, AddrWords+3)
	for i := range long {
		long[i] = uint64(i * 7)
	}
	la := VecAddr(AuxTag(0), long)
	lb := VecAddr(AuxTag(0), long)
	if la != lb {
		t.Fatal("identical overflow addresses compare unequal")
	}
	if la.Len() != len(long) {
		t.Fatalf("overflow len %d", la.Len())
	}
	for i, w := range long {
		if la.Word(i) != w {
			t.Fatalf("overflow word %d = %d, want %d", i, la.Word(i), w)
		}
	}
	got := la.AppendPayload(nil)
	for i, w := range long {
		if got[i] != w {
			t.Fatalf("AppendPayload[%d] = %d, want %d", i, got[i], w)
		}
	}
}

func TestAddrBuilderMatchesVecAddr(t *testing.T) {
	words := []uint64{9, 8, 7, 6}
	var b AddrBuilder
	b.Reset(AuxTag(4))
	b.Vec(words[:2])
	b.Uint(words[2])
	b.Uint(words[3])
	if b.Addr() != VecAddr(AuxTag(4), words) {
		t.Fatal("builder and VecAddr disagree on inline payload")
	}
	// Overflow path: builder and VecAddr must still agree.
	long := make([]uint64, AddrWords+5)
	for i := range long {
		long[i] = uint64(i) * 13
	}
	b.Reset(AuxTag(4))
	b.Vec(long)
	if b.Addr() != VecAddr(AuxTag(4), long) {
		t.Fatal("builder and VecAddr disagree on overflow payload")
	}
	// A builder reset after overflow must produce clean inline addresses.
	b.Reset(BallTag(0))
	b.Uint(5)
	if b.Addr() != VecAddr(BallTag(0), []uint64{5}) {
		t.Fatal("builder dirty after overflow reset")
	}
}

func TestOracleMemoizesAndMeters(t *testing.T) {
	var meter Meter
	evals := 0
	o := NewOracle(GenericTag(1), 10, 8, &meter, func(addr Addr) Word {
		evals++
		return IntWord(int(addr.Word(0)))
	})
	if w := o.Lookup(wordAddr(3)); w.Value != 3 {
		t.Fatalf("lookup = %v", w)
	}
	o.Lookup(wordAddr(3))
	o.Lookup(wordAddr(4))
	if evals != 2 {
		t.Errorf("fn evaluated %d times, want 2", evals)
	}
	if meter.CellEvals() != 2 || meter.MemoHits() != 1 {
		t.Errorf("meter evals=%d hits=%d", meter.CellEvals(), meter.MemoHits())
	}
	if o.MemoSize() != 2 {
		t.Errorf("memo size %d", o.MemoSize())
	}
	if o.ID() != "tbl[1]" || o.Tag() != GenericTag(1) || o.NominalLogCells() != 10 || o.WordBits() != 8 {
		t.Error("oracle metadata wrong")
	}
}

func TestOracleConcurrentLookups(t *testing.T) {
	o := NewOracle(GenericTag(0), 4, 8, nil, func(addr Addr) Word { return IntWord(int(addr.Word(0))) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := uint64(i % 10)
				if w := o.Lookup(wordAddr(v)); w.Value != int(v) {
					t.Errorf("bad value %v for %d", w, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestQueryCtxRoundAccounting(t *testing.T) {
	o := NewOracle(GenericTag(0), 6.5, 33, nil, func(Addr) Word { return EmptyWord })
	c := NewQueryCtx(3)
	c.Stage(o, wordAddr(1))
	c.Stage(o, wordAddr(2))
	c.Stage(o, wordAddr(3))
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	c.Stage(o, wordAddr(1))
	if _, err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Rounds != 2 || st.Probes != 4 {
		t.Errorf("stats %+v", st)
	}
	if len(st.ProbesPerRound) != 2 || st.ProbesPerRound[0] != 3 || st.ProbesPerRound[1] != 1 {
		t.Errorf("per-round %v", st.ProbesPerRound)
	}
	if st.MaxProbesInRound() != 3 {
		t.Errorf("max per round %d", st.MaxProbesInRound())
	}
	if st.BitsRead != 4*33 {
		t.Errorf("bits read %d", st.BitsRead)
	}
	// ceil(6.5) = 7 address bits per probe.
	if st.AddrBitsSent != 4*7 {
		t.Errorf("addr bits %d", st.AddrBitsSent)
	}
}

func TestQueryCtxEnforcesRoundBudget(t *testing.T) {
	o := NewOracle(GenericTag(0), 4, 8, nil, func(Addr) Word { return EmptyWord })
	c := NewQueryCtx(2)
	for i := 0; i < 2; i++ {
		if _, err := c.Round([]Ref{{o, wordAddr(0)}}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Round([]Ref{{o, wordAddr(0)}})
	if !errors.Is(err, ErrRoundsExhausted) {
		t.Fatalf("expected ErrRoundsExhausted, got %v", err)
	}
	// Stats unchanged by the failed attempt, and the staged refs were
	// discarded (a later legal round must not replay them).
	if c.Stats().Rounds != 2 {
		t.Error("failed round counted")
	}
}

func TestQueryCtxUnlimited(t *testing.T) {
	o := NewOracle(GenericTag(0), 4, 8, nil, func(Addr) Word { return EmptyWord })
	c := NewQueryCtx(0)
	for i := 0; i < 50; i++ {
		if _, err := c.Round([]Ref{{o, wordAddr(0)}}); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Rounds != 50 {
		t.Error("unlimited ctx miscounted")
	}
	if c.RoundsLeft() < 1<<30 {
		t.Error("unlimited RoundsLeft too small")
	}
}

func TestQueryCtxRejectsEmptyRound(t *testing.T) {
	c := NewQueryCtx(2)
	if _, err := c.Flush(); err == nil {
		t.Fatal("empty round accepted")
	}
}

func TestQueryCtxRoundsLeft(t *testing.T) {
	o := NewOracle(GenericTag(0), 4, 8, nil, func(Addr) Word { return EmptyWord })
	c := NewQueryCtx(3)
	if c.RoundsLeft() != 3 {
		t.Error("initial RoundsLeft")
	}
	c.Round([]Ref{{o, wordAddr(0)}})
	if c.RoundsLeft() != 2 {
		t.Error("RoundsLeft after one round")
	}
}

func TestQueryCtxReuseAfterReset(t *testing.T) {
	o := NewOracle(GenericTag(0), 4, 8, nil, func(Addr) Word { return EmptyWord })
	c := NewQueryCtx(2)
	c.Round([]Ref{{o, wordAddr(0)}, {o, wordAddr(1)}})
	c.Reset(1)
	if st := c.Stats(); st.Rounds != 0 || st.Probes != 0 || len(st.ProbesPerRound) != 0 {
		t.Fatalf("stats survived reset: %+v", st)
	}
	if _, err := c.Round([]Ref{{o, wordAddr(2)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Round([]Ref{{o, wordAddr(3)}}); !errors.Is(err, ErrRoundsExhausted) {
		t.Fatalf("budget not re-armed by reset: %v", err)
	}
}

func TestStatsClone(t *testing.T) {
	s := Stats{Rounds: 2, Probes: 3, ProbesPerRound: []int{2, 1}}
	cl := s.Clone()
	s.ProbesPerRound[0] = 99
	if cl.ProbesPerRound[0] != 2 {
		t.Error("clone aliases source")
	}
}

func TestRecordingQueryCtxTranscript(t *testing.T) {
	o := NewOracle(GenericTag(3), 4, 8, nil, func(addr Addr) Word { return IntWord(int(addr.Word(0))) })
	c := NewRecordingQueryCtx(2)
	c.Round([]Ref{{o, wordAddr(2)}, {o, wordAddr(1)}})
	c.Round([]Ref{{o, wordAddr(3)}})
	tr := c.Transcript()
	if len(tr) != 3 {
		t.Fatalf("transcript length %d", len(tr))
	}
	if tr[0].Round != 0 || tr[2].Round != 1 {
		t.Error("round tags wrong")
	}
	if tr[0].Table.ID() != "tbl[3]" || tr[0].Addr != wordAddr(2) || tr[0].Content.Value != 2 {
		t.Errorf("entry %+v", tr[0])
	}
	// Non-recording ctx keeps no transcript.
	q := NewQueryCtx(2)
	q.Round([]Ref{{o, wordAddr(0)}})
	if q.Transcript() != nil {
		t.Error("non-recording ctx has transcript")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Rounds: 2, Probes: 5, ProbesPerRound: []int{3, 2}, BitsRead: 50, AddrBitsSent: 20}
	b := Stats{Rounds: 3, Probes: 4, ProbesPerRound: []int{1, 1, 2}, BitsRead: 40, AddrBitsSent: 12}
	a.Add(b)
	if a.Rounds != 3 || a.Probes != 9 || a.BitsRead != 90 || a.AddrBitsSent != 32 {
		t.Errorf("after add: %+v", a)
	}
	want := []int{4, 3, 2}
	for i, w := range want {
		if a.ProbesPerRound[i] != w {
			t.Errorf("per-round[%d] = %d, want %d", i, a.ProbesPerRound[i], w)
		}
	}
}

func TestCeilLog(t *testing.T) {
	cases := []struct {
		in   float64
		want int
	}{{0.3, 1}, {1, 1}, {1.5, 2}, {7, 7}, {7.01, 8}}
	for _, c := range cases {
		if got := ceilLog(c.in); got != c.want {
			t.Errorf("ceilLog(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}
