package cellprobe

import (
	"errors"
	"fmt"
)

// ErrRoundsExhausted is returned by QueryCtx.Flush when the algorithm
// attempts more rounds than its adaptivity budget k allows.
var ErrRoundsExhausted = errors.New("cellprobe: round budget exhausted")

// Ref addresses one cell: a table and a binary address within it.
type Ref struct {
	Table Table
	Addr  Addr
}

// Stats is the model-level accounting of one query execution.
type Stats struct {
	Rounds         int   // rounds of parallel probes used
	Probes         int   // total cell-probes
	ProbesPerRound []int // per-round parallel probe counts
	BitsRead       int64 // Σ wordBits over probed cells (communication view)
	AddrBitsSent   int64 // Σ ⌈log₂ cells⌉ over probes (Prop. 18 Alice side)
}

// MaxProbesInRound returns the largest single-round probe count.
func (s Stats) MaxProbesInRound() int {
	m := 0
	for _, p := range s.ProbesPerRound {
		if p > m {
			m = p
		}
	}
	return m
}

// Add accumulates other into s (for aggregating boosted / repeated runs).
func (s *Stats) Add(other Stats) {
	if other.Rounds > s.Rounds {
		s.Rounds = other.Rounds
	}
	s.Probes += other.Probes
	s.BitsRead += other.BitsRead
	s.AddrBitsSent += other.AddrBitsSent
	for i, p := range other.ProbesPerRound {
		if i < len(s.ProbesPerRound) {
			s.ProbesPerRound[i] += p
		} else {
			s.ProbesPerRound = append(s.ProbesPerRound, p)
		}
	}
}

// Clone returns a copy of s whose ProbesPerRound no longer aliases s.
// Query entry points that release a pooled context call this to detach the
// accounting they hand back.
func (s Stats) Clone() Stats {
	if s.ProbesPerRound != nil {
		s.ProbesPerRound = append([]int(nil), s.ProbesPerRound...)
	}
	return s
}

// reset clears the accounting while keeping the per-round slice capacity.
func (s *Stats) reset() {
	ppr := s.ProbesPerRound[:0]
	*s = Stats{ProbesPerRound: ppr}
}

// TranscriptEntry records one probe for the communication translation
// (Proposition 18) and for debugging.
type TranscriptEntry struct {
	Round   int
	Table   Table
	Addr    Addr
	Content Word
}

// QueryCtx is the per-query execution context: it mediates all table
// access of a cell-probing algorithm, enforces limited adaptivity (the
// algorithm stages a whole round of probes at once, so intra-round probes
// cannot depend on each other by construction, and no more than k rounds
// are allowed), and owns every buffer the execution needs — the staged
// probe refs, the round's result words, the per-round accounting, and the
// optional transcript. A context is created once per request (or drawn
// from a pool) and reused across rounds and across queries via Reset, so
// steady-state query execution allocates nothing.
type QueryCtx struct {
	k      int // 0 means unlimited (fully adaptive accounting only)
	stats  Stats
	record bool

	transcript []TranscriptEntry
	pending    []Ref  // probes staged for the next Flush
	words      []Word // result buffer, overwritten by each Flush
}

// NewQueryCtx returns a context with a round budget of k (0 = unlimited).
func NewQueryCtx(k int) *QueryCtx {
	return &QueryCtx{k: k}
}

// NewRecordingQueryCtx additionally keeps a full transcript, which the
// communication-protocol translation consumes. Recording contexts are for
// diagnostics: appending transcript entries allocates.
func NewRecordingQueryCtx(k int) *QueryCtx {
	return &QueryCtx{k: k, record: true}
}

// Reset prepares the context for a fresh query under round budget k,
// keeping every buffer's capacity (and the recording mode it was
// constructed with).
func (c *QueryCtx) Reset(k int) {
	c.k = k
	c.stats.reset()
	c.transcript = c.transcript[:0]
	c.pending = c.pending[:0]
}

// RoundBudget returns k (0 = unlimited).
func (c *QueryCtx) RoundBudget() int { return c.k }

// RoundsLeft returns how many rounds remain (MaxInt-ish when unlimited).
func (c *QueryCtx) RoundsLeft() int {
	if c.k == 0 {
		return int(^uint(0) >> 1)
	}
	return c.k - c.stats.Rounds
}

// Stage adds one probe to the pending round. Nothing is read until Flush.
func (c *QueryCtx) Stage(t Table, a Addr) {
	c.pending = append(c.pending, Ref{Table: t, Addr: a})
}

// Flush executes the staged round of parallel probes and returns the
// contents in staging order. The returned slice is owned by the context
// and is overwritten by the next Flush; callers must consume it (or copy
// the words out) before starting another round. An empty round is
// rejected: the model has no zero-probe rounds.
func (c *QueryCtx) Flush() ([]Word, error) {
	if len(c.pending) == 0 {
		return nil, errors.New("cellprobe: empty probe round")
	}
	if c.k > 0 && c.stats.Rounds >= c.k {
		c.pending = c.pending[:0]
		return nil, fmt.Errorf("%w: budget k=%d", ErrRoundsExhausted, c.k)
	}
	refs := c.pending
	round := c.stats.Rounds
	c.stats.Rounds++
	c.stats.Probes += len(refs)
	c.stats.ProbesPerRound = append(c.stats.ProbesPerRound, len(refs))
	if cap(c.words) < len(refs) {
		c.words = make([]Word, len(refs))
	}
	c.words = c.words[:len(refs)]
	for i := range refs {
		r := &refs[i]
		c.words[i] = r.Table.Lookup(r.Addr)
		c.stats.BitsRead += int64(r.Table.WordBits())
		c.stats.AddrBitsSent += int64(ceilLog(r.Table.NominalLogCells()))
		if c.record {
			c.transcript = append(c.transcript, TranscriptEntry{
				Round:   round,
				Table:   r.Table,
				Addr:    r.Addr,
				Content: c.words[i],
			})
		}
	}
	c.pending = c.pending[:0]
	return c.words, nil
}

// Round stages refs and flushes them as one round: the convenience form
// for callers that already hold a ref slice.
func (c *QueryCtx) Round(refs []Ref) ([]Word, error) {
	c.pending = append(c.pending, refs...)
	return c.Flush()
}

func ceilLog(logCells float64) int {
	c := int(logCells)
	if float64(c) < logCells {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Stats returns the accumulated accounting. The ProbesPerRound slice
// aliases context-owned memory; callers that outlive the context (or
// release it to a pool) must Clone it first.
func (c *QueryCtx) Stats() Stats { return c.stats }

// Transcript returns the recorded probe sequence (nil unless recording).
// The slice is reset by the next Reset.
func (c *QueryCtx) Transcript() []TranscriptEntry { return c.transcript }
