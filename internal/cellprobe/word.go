// Package cellprobe implements Yao's cell-probe model with the paper's
// limited-adaptivity refinement (§2): a data structure is a code mapping
// databases to tables of s cells of w bits, and a k-round cell-probing
// algorithm submits batches of parallel probes, where probes within one
// round may depend only on the query and on contents retrieved in earlier
// rounds.
//
// Tables are represented as oracles: a cell's content is a deterministic
// function of (database, public randomness, address), so the simulator
// evaluates cells on demand and memoizes them, keyed on the binary Addr.
// Nominal model sizes are reported separately (see DESIGN.md §3.1). Probe
// and round accounting is exact and limited adaptivity is *enforced*: the
// QueryCtx hands back an entire round's contents at once (Stage/Flush) and
// refuses probes after the round budget is exhausted.
package cellprobe

import "fmt"

// Kind discriminates cell contents.
type Kind uint8

const (
	// Empty is the paper's EMPTY symbol: no database point matches the cell.
	Empty Kind = iota
	// Point means the cell stores a database point (by index; in the model
	// the cell stores the d-bit point itself, within the O(d) word size).
	Point
	// Int means the cell stores a small integer (Algorithm 2's auxiliary
	// tables store an index in [1, s+1]).
	Int
)

// Word is the content of one table cell.
type Word struct {
	Kind  Kind
	Index int // database point index when Kind == Point
	Value int // integer payload when Kind == Int
}

// EmptyWord is the EMPTY cell content.
var EmptyWord = Word{Kind: Empty}

// PointWord returns a cell storing database point idx.
func PointWord(idx int) Word { return Word{Kind: Point, Index: idx} }

// IntWord returns a cell storing the integer v.
func IntWord(v int) Word { return Word{Kind: Int, Value: v} }

func (w Word) String() string {
	switch w.Kind {
	case Empty:
		return "EMPTY"
	case Point:
		return fmt.Sprintf("point(%d)", w.Index)
	case Int:
		return fmt.Sprintf("int(%d)", w.Value)
	default:
		return fmt.Sprintf("word(kind=%d)", w.Kind)
	}
}
