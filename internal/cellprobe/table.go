package cellprobe

import "sync"

// Table is a table structure in the cell-probe model: a code assigning a
// word to every address of its address space. Implementations must be safe
// for concurrent Lookup calls (queries probe in parallel).
type Table interface {
	// Tag is the table's typed identity (class + level), embedded in every
	// address probed against it.
	Tag() Tag
	// ID renders the tag for transcripts and reports (e.g. "T[3]").
	ID() string
	// Lookup returns the content of the cell at addr. The payload encoding
	// is table specific; addresses are opaque to the prober.
	Lookup(addr Addr) Word
	// NominalLogCells returns log₂ of the table's cell count in the model
	// (the paper's n^{O(1)} accounting), independent of how many cells the
	// simulator ever evaluates.
	NominalLogCells() float64
	// WordBits returns the model word size w of this table in bits.
	WordBits() int
}

// Meter counts simulation-side work that is *not* a model quantity: how
// many distinct cells were lazily evaluated and how many were served from
// the memo. Experiment E8 reports these against the nominal sizes.
type Meter struct {
	mu        sync.Mutex
	cellEvals int64
	memoHits  int64
}

// CellEvals returns the number of distinct lazy cell evaluations.
func (m *Meter) CellEvals() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cellEvals
}

// MemoHits returns the number of lookups served from the memo.
func (m *Meter) MemoHits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.memoHits
}

func (m *Meter) addEval() {
	m.mu.Lock()
	m.cellEvals++
	m.mu.Unlock()
}

func (m *Meter) addHit() {
	m.mu.Lock()
	m.memoHits++
	m.mu.Unlock()
}

// Evaler computes a cell's content from its address. Implementations
// must be deterministic — the result represents what the preprocessing
// stage would have stored in that cell.
type Evaler interface {
	EvalCell(addr Addr) Word
}

// funcEvaler adapts a plain function to Evaler for NewOracle.
type funcEvaler struct {
	fn func(addr Addr) Word
}

func (f funcEvaler) EvalCell(addr Addr) Word { return f.fn(addr) }

// Oracle is a Table whose cells are computed on demand by a pure function
// of the address and memoized. The memo is keyed directly on the binary
// Addr (comparable, no string round-trips), so steady-state lookups
// allocate nothing; the map itself is made on the first miss, keeping a
// freshly opened index's table scaffolding allocation-light (a snapshot
// open builds O(L·shards) oracles before the first query arrives).
type Oracle struct {
	tag      Tag
	logCells float64
	wordBits int
	ev       Evaler
	meter    *Meter

	mu   sync.RWMutex
	memo map[Addr]Word // nil until the first miss
}

// NewOracle builds an oracle-backed table over a plain function. meter
// may be nil.
func NewOracle(tag Tag, logCells float64, wordBits int, meter *Meter, fn func(addr Addr) Word) *Oracle {
	return NewOracleEval(tag, logCells, wordBits, meter, funcEvaler{fn})
}

// NewOracleEval is NewOracle over an Evaler value: the tables package
// passes its table types directly (a pointer in an interface), avoiding
// the per-oracle method-value closure a func parameter would allocate.
func NewOracleEval(tag Tag, logCells float64, wordBits int, meter *Meter, ev Evaler) *Oracle {
	return &Oracle{
		tag:      tag,
		logCells: logCells,
		wordBits: wordBits,
		ev:       ev,
		meter:    meter,
	}
}

// Tag implements Table.
func (o *Oracle) Tag() Tag { return o.tag }

// ID implements Table.
func (o *Oracle) ID() string { return o.tag.String() }

// NominalLogCells implements Table.
func (o *Oracle) NominalLogCells() float64 { return o.logCells }

// WordBits implements Table.
func (o *Oracle) WordBits() int { return o.wordBits }

// Lookup implements Table, evaluating and memoizing the cell on first use.
func (o *Oracle) Lookup(addr Addr) Word {
	o.mu.RLock()
	w, ok := o.memo[addr]
	o.mu.RUnlock()
	if ok {
		if o.meter != nil {
			o.meter.addHit()
		}
		return w
	}
	w = o.ev.EvalCell(addr)
	o.mu.Lock()
	// Another goroutine may have raced us; determinism makes that benign.
	if o.memo == nil {
		o.memo = make(map[Addr]Word)
	}
	o.memo[addr] = w
	o.mu.Unlock()
	if o.meter != nil {
		o.meter.addEval()
	}
	return w
}

// MemoSize returns the number of materialized cells.
func (o *Oracle) MemoSize() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.memo)
}
