package cellprobe

import "sync"

// Table is a table structure in the cell-probe model: a code assigning a
// word to every address of its address space. Implementations must be safe
// for concurrent Lookup calls (queries probe in parallel).
type Table interface {
	// Tag is the table's typed identity (class + level), embedded in every
	// address probed against it.
	Tag() Tag
	// ID renders the tag for transcripts and reports (e.g. "T[3]").
	ID() string
	// Lookup returns the content of the cell at addr. The payload encoding
	// is table specific; addresses are opaque to the prober.
	Lookup(addr Addr) Word
	// NominalLogCells returns log₂ of the table's cell count in the model
	// (the paper's n^{O(1)} accounting), independent of how many cells the
	// simulator ever evaluates.
	NominalLogCells() float64
	// WordBits returns the model word size w of this table in bits.
	WordBits() int
}

// Meter counts simulation-side work that is *not* a model quantity: how
// many distinct cells were lazily evaluated and how many were served from
// the memo. Experiment E8 reports these against the nominal sizes.
type Meter struct {
	mu        sync.Mutex
	cellEvals int64
	memoHits  int64
}

// CellEvals returns the number of distinct lazy cell evaluations.
func (m *Meter) CellEvals() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cellEvals
}

// MemoHits returns the number of lookups served from the memo.
func (m *Meter) MemoHits() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.memoHits
}

func (m *Meter) addEval() {
	m.mu.Lock()
	m.cellEvals++
	m.mu.Unlock()
}

func (m *Meter) addHit() {
	m.mu.Lock()
	m.memoHits++
	m.mu.Unlock()
}

// Oracle is a Table whose cells are computed on demand by a pure function
// of the address and memoized. The function must be deterministic — it
// represents the content the preprocessing stage would have stored. The
// memo is keyed directly on the binary Addr (comparable, no string
// round-trips), so steady-state lookups allocate nothing.
type Oracle struct {
	tag      Tag
	logCells float64
	wordBits int
	fn       func(addr Addr) Word
	meter    *Meter

	mu   sync.RWMutex
	memo map[Addr]Word
}

// NewOracle builds an oracle-backed table. meter may be nil.
func NewOracle(tag Tag, logCells float64, wordBits int, meter *Meter, fn func(addr Addr) Word) *Oracle {
	return &Oracle{
		tag:      tag,
		logCells: logCells,
		wordBits: wordBits,
		fn:       fn,
		meter:    meter,
		memo:     make(map[Addr]Word),
	}
}

// Tag implements Table.
func (o *Oracle) Tag() Tag { return o.tag }

// ID implements Table.
func (o *Oracle) ID() string { return o.tag.String() }

// NominalLogCells implements Table.
func (o *Oracle) NominalLogCells() float64 { return o.logCells }

// WordBits implements Table.
func (o *Oracle) WordBits() int { return o.wordBits }

// Lookup implements Table, evaluating and memoizing the cell on first use.
func (o *Oracle) Lookup(addr Addr) Word {
	o.mu.RLock()
	w, ok := o.memo[addr]
	o.mu.RUnlock()
	if ok {
		if o.meter != nil {
			o.meter.addHit()
		}
		return w
	}
	w = o.fn(addr)
	o.mu.Lock()
	// Another goroutine may have raced us; determinism makes that benign.
	o.memo[addr] = w
	o.mu.Unlock()
	if o.meter != nil {
		o.meter.addEval()
	}
	return w
}

// MemoSize returns the number of materialized cells.
func (o *Oracle) MemoSize() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.memo)
}
