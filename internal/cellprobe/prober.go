package cellprobe

import (
	"errors"
	"fmt"
)

// ErrRoundsExhausted is returned by Prober.Round when the algorithm
// attempts more rounds than its adaptivity budget k allows.
var ErrRoundsExhausted = errors.New("cellprobe: round budget exhausted")

// Ref addresses one cell: a table and an address within it.
type Ref struct {
	Table Table
	Addr  string
}

// Stats is the model-level accounting of one query execution.
type Stats struct {
	Rounds         int   // rounds of parallel probes used
	Probes         int   // total cell-probes
	ProbesPerRound []int // per-round parallel probe counts
	BitsRead       int64 // Σ wordBits over probed cells (communication view)
	AddrBitsSent   int64 // Σ ⌈log₂ cells⌉ over probes (Prop. 18 Alice side)
}

// MaxProbesInRound returns the largest single-round probe count.
func (s Stats) MaxProbesInRound() int {
	m := 0
	for _, p := range s.ProbesPerRound {
		if p > m {
			m = p
		}
	}
	return m
}

// Add accumulates other into s (for aggregating boosted / repeated runs).
func (s *Stats) Add(other Stats) {
	if other.Rounds > s.Rounds {
		s.Rounds = other.Rounds
	}
	s.Probes += other.Probes
	s.BitsRead += other.BitsRead
	s.AddrBitsSent += other.AddrBitsSent
	for i, p := range other.ProbesPerRound {
		if i < len(s.ProbesPerRound) {
			s.ProbesPerRound[i] += p
		} else {
			s.ProbesPerRound = append(s.ProbesPerRound, p)
		}
	}
}

// TranscriptEntry records one probe for the communication translation
// (Proposition 18) and for debugging.
type TranscriptEntry struct {
	Round   int
	TableID string
	Addr    string
	Content Word
}

// Prober mediates all table access of a cell-probing algorithm and
// enforces limited adaptivity: the algorithm submits a whole round of
// probes at once (so intra-round probes cannot depend on each other by
// construction) and no more than k rounds are allowed.
type Prober struct {
	k          int // 0 means unlimited (fully adaptive accounting only)
	stats      Stats
	record     bool
	transcript []TranscriptEntry
}

// NewProber returns a prober with a round budget of k (0 = unlimited).
func NewProber(k int) *Prober {
	return &Prober{k: k}
}

// NewRecordingProber additionally keeps a full transcript, which the
// communication-protocol translation consumes.
func NewRecordingProber(k int) *Prober {
	return &Prober{k: k, record: true}
}

// RoundBudget returns k (0 = unlimited).
func (p *Prober) RoundBudget() int { return p.k }

// RoundsLeft returns how many rounds remain (MaxInt-ish when unlimited).
func (p *Prober) RoundsLeft() int {
	if p.k == 0 {
		return int(^uint(0) >> 1)
	}
	return p.k - p.stats.Rounds
}

// Round executes one round of parallel probes and returns the contents in
// the same order as refs. An empty refs slice is rejected: the model has no
// zero-probe rounds.
func (p *Prober) Round(refs []Ref) ([]Word, error) {
	if len(refs) == 0 {
		return nil, errors.New("cellprobe: empty probe round")
	}
	if p.k > 0 && p.stats.Rounds >= p.k {
		return nil, fmt.Errorf("%w: budget k=%d", ErrRoundsExhausted, p.k)
	}
	round := p.stats.Rounds
	p.stats.Rounds++
	p.stats.Probes += len(refs)
	p.stats.ProbesPerRound = append(p.stats.ProbesPerRound, len(refs))
	out := make([]Word, len(refs))
	for i, r := range refs {
		out[i] = r.Table.Lookup(r.Addr)
		p.stats.BitsRead += int64(r.Table.WordBits())
		p.stats.AddrBitsSent += int64(ceilLog(r.Table.NominalLogCells()))
		if p.record {
			p.transcript = append(p.transcript, TranscriptEntry{
				Round:   round,
				TableID: r.Table.ID(),
				Addr:    r.Addr,
				Content: out[i],
			})
		}
	}
	return out, nil
}

func ceilLog(logCells float64) int {
	c := int(logCells)
	if float64(c) < logCells {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Stats returns the accumulated accounting.
func (p *Prober) Stats() Stats { return p.stats }

// Transcript returns the recorded probe sequence (nil unless recording).
func (p *Prober) Transcript() []TranscriptEntry { return p.transcript }
