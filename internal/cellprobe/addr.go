package cellprobe

import "fmt"

// TableClass is the typed identity of a table structure. Together with a
// level it forms a Tag, which replaces the formatted string IDs the oracle
// layer used to carry: oracle identity and transcript labels no longer
// depend on fmt.Sprintf output.
type TableClass uint8

const (
	// TableGeneric is for tests and ad-hoc tables with no paper role.
	TableGeneric TableClass = iota
	// TableBall is a ball table T_i of Theorem 9.
	TableBall
	// TableAux is an auxiliary table T̃_i of Algorithm 2.
	TableAux
	// TableMember is a degenerate-case membership table of §3.1; the tag
	// level carries the radius (0: x ∈ B, 1: x ∈ N₁(B)).
	TableMember
	// TablePrefix is the LPM prefix table of the §4 lower-bound machinery.
	TablePrefix
)

// Tag identifies one table: a class plus a level. It is comparable and is
// embedded in every Addr, so cell identity is (tag, payload) with no string
// round-trips.
type Tag struct {
	Class TableClass
	Level int32
}

// BallTag returns the tag of ball table T_level.
func BallTag(level int) Tag { return Tag{Class: TableBall, Level: int32(level)} }

// AuxTag returns the tag of auxiliary table T̃_level.
func AuxTag(level int) Tag { return Tag{Class: TableAux, Level: int32(level)} }

// MemberTag returns the tag of the radius-0 or radius-1 membership table.
func MemberTag(radius int) Tag { return Tag{Class: TableMember, Level: int32(radius)} }

// PrefixTag returns the tag of the LPM prefix table.
func PrefixTag() Tag { return Tag{Class: TablePrefix} }

// GenericTag returns an ad-hoc tag for tests and demos.
func GenericTag(n int) Tag { return Tag{Class: TableGeneric, Level: int32(n)} }

// String renders the tag with the labels transcripts and reports use.
func (t Tag) String() string {
	switch t.Class {
	case TableBall:
		return fmt.Sprintf("T[%d]", t.Level)
	case TableAux:
		return fmt.Sprintf("aux[%d]", t.Level)
	case TableMember:
		if t.Level == 0 {
			return "member[B]"
		}
		return "member[N1(B)]"
	case TablePrefix:
		return "lpm-prefix"
	default:
		return fmt.Sprintf("tbl[%d]", t.Level)
	}
}

// AddrWords is the inline payload capacity of an Addr in 64-bit words.
// Payloads that fit (sketch addresses, query points up to 1024 bits, small
// auxiliary groups) are stored by value and cost no allocation; longer
// payloads spill to a packed string, which allocates once per address
// construction but stays comparable.
const AddrWords = 16

// Addr is a binary cell address: the owning table's tag plus a packed,
// word-aligned payload. Addr is comparable — it is used directly as the
// oracle memo key — and carries no heap references for inline payloads, so
// building one on the query hot path allocates nothing.
type Addr struct {
	tag  Tag
	n    uint16            // payload length in words
	word [AddrWords]uint64 // inline payload (words [n:] are zero)
	ext  string            // packed payload when n > AddrWords ("" otherwise)
}

// Tag returns the owning table's tag.
func (a *Addr) Tag() Tag { return a.tag }

// Len returns the payload length in 64-bit words.
func (a *Addr) Len() int { return int(a.n) }

// Word returns payload word i.
func (a *Addr) Word(i int) uint64 {
	if i < 0 || i >= int(a.n) {
		panic(fmt.Sprintf("cellprobe: address word %d out of range [0,%d)", i, a.n))
	}
	if a.ext != "" {
		return extWord(a.ext, i)
	}
	return a.word[i]
}

// AppendPayload appends the payload words to dst and returns it. Used by
// table eval functions to reconstruct structured addresses on memo misses.
func (a *Addr) AppendPayload(dst []uint64) []uint64 {
	for i := 0; i < int(a.n); i++ {
		dst = append(dst, a.Word(i))
	}
	return dst
}

// String renders the address for transcripts and debugging.
func (a Addr) String() string {
	return fmt.Sprintf("%s@%d words", a.tag, a.n)
}

func extWord(ext string, i int) uint64 {
	var w uint64
	for s := 0; s < 8; s++ {
		w |= uint64(ext[i*8+s]) << uint(8*s)
	}
	return w
}

// maxAddrWords bounds a payload to what the uint16 length field can
// carry: 65535 words = ~4.2M bits, far beyond any simulable dimension.
const maxAddrWords = 1<<16 - 1

func checkAddrLen(n int) {
	if n > maxAddrWords {
		panic(fmt.Sprintf("cellprobe: address payload of %d words exceeds the %d-word limit", n, maxAddrWords))
	}
}

// VecAddr returns the address whose payload is the given word slice (a
// packed bit vector: a sketch M_i·x or a query point). Zero-allocation when
// the payload fits the inline capacity.
func VecAddr(tag Tag, words []uint64) Addr {
	checkAddrLen(len(words))
	a := Addr{tag: tag, n: uint16(len(words))}
	if len(words) <= AddrWords {
		copy(a.word[:], words)
		return a
	}
	a.ext = packWords(words)
	return a
}

func packWords(words []uint64) string {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		for s := 0; s < 8; s++ {
			buf[i*8+s] = byte(w >> uint(8*s))
		}
	}
	return string(buf)
}

// AddrBuilder assembles a structured multi-field address (the auxiliary
// tables' ⟨j, w₀, (level, w)…⟩ payload) word by word. The zero value is
// ready after Reset; it lives on the caller's stack and allocates only if
// the payload overflows the inline capacity.
type AddrBuilder struct {
	tag  Tag
	n    int
	word [AddrWords]uint64
	over []uint64 // all payload words, allocated on overflow only
}

// Reset starts a new address for the table identified by tag.
func (b *AddrBuilder) Reset(tag Tag) {
	b.tag = tag
	b.n = 0
	b.word = [AddrWords]uint64{}
	b.over = b.over[:0]
}

// Uint appends one word.
func (b *AddrBuilder) Uint(v uint64) {
	if b.n < AddrWords && len(b.over) == 0 {
		b.word[b.n] = v
		b.n++
		return
	}
	if len(b.over) == 0 {
		b.over = append(b.over, b.word[:b.n]...)
	}
	b.over = append(b.over, v)
	b.n++
}

// Vec appends a packed bit vector's words.
func (b *AddrBuilder) Vec(words []uint64) {
	for _, w := range words {
		b.Uint(w)
	}
}

// Addr finalizes the address.
func (b *AddrBuilder) Addr() Addr {
	checkAddrLen(b.n)
	if len(b.over) > 0 {
		return Addr{tag: b.tag, n: uint16(b.n), ext: packWords(b.over)}
	}
	return Addr{tag: b.tag, n: uint16(b.n), word: b.word}
}
