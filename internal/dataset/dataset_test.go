package dataset

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/rng"
	"repro/internal/workload"
)

func TestWriteReadRoundTrip(t *testing.T) {
	r := rng.New(1)
	in := workload.PlantedNN(r, 192, 40, 8, 9)
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != in.Name || got.D != in.D {
		t.Errorf("header mismatch: %s vs %s", got, in)
	}
	if len(got.DB) != len(in.DB) || len(got.Queries) != len(in.Queries) {
		t.Fatal("size mismatch")
	}
	for i := range in.DB {
		if !bitvec.Equal(got.DB[i], in.DB[i]) {
			t.Fatalf("db point %d differs", i)
		}
	}
	for i := range in.Queries {
		if !bitvec.Equal(got.Queries[i].X, in.Queries[i].X) ||
			got.Queries[i].NNDist != in.Queries[i].NNDist ||
			got.Queries[i].NNIndex != in.Queries[i].NNIndex {
			t.Fatalf("query %d differs", i)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	r := rng.New(2)
	in := workload.Uniform(r, 128, 20, 4)
	path := filepath.Join(t.TempDir(), "ds.bin")
	if err := Save(path, in); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.DB) != 20 || len(got.Queries) != 4 {
		t.Error("load shape wrong")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a gob"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	in := workload.Uniform(rng.New(3), 64, 5, 1)
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	// Corrupt the magic inside the gob payload.
	data := bytes.Replace(buf.Bytes(), []byte("repro-anns-dataset-v1"), []byte("repro-anns-dataset-v9"), 1)
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.bin")); err == nil {
		t.Error("missing file accepted")
	}
}
