// Package dataset serializes workload instances so that the generation
// (cmd/annsgen) and querying (cmd/annsquery) tools can hand datasets to
// each other and to external users. The format is gob with a small header
// wrapper; Save/Load round-trip workload.Instance exactly.
package dataset

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/bitvec"
	"repro/internal/workload"
)

// magic guards against feeding arbitrary gob streams to Load.
const magic = "repro-anns-dataset-v1"

// file is the on-disk representation.
type file struct {
	Magic   string
	Name    string
	D       int
	DB      [][]uint64
	Queries []query
}

type query struct {
	X       []uint64
	NNIndex int
	NNDist  int
}

// Write serializes the instance to w.
func Write(w io.Writer, in *workload.Instance) error {
	f := file{Magic: magic, Name: in.Name, D: in.D}
	for _, p := range in.DB {
		f.DB = append(f.DB, p)
	}
	for _, q := range in.Queries {
		f.Queries = append(f.Queries, query{X: q.X, NNIndex: q.NNIndex, NNDist: q.NNDist})
	}
	return gob.NewEncoder(w).Encode(f)
}

// Read deserializes an instance from r.
func Read(r io.Reader) (*workload.Instance, error) {
	var f file
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if f.Magic != magic {
		return nil, fmt.Errorf("dataset: bad magic %q", f.Magic)
	}
	if f.D <= 0 {
		return nil, fmt.Errorf("dataset: invalid dimension %d", f.D)
	}
	in := &workload.Instance{Name: f.Name, D: f.D}
	words := bitvec.Words(f.D)
	for i, p := range f.DB {
		if len(p) != words {
			return nil, fmt.Errorf("dataset: point %d has %d words, want %d", i, len(p), words)
		}
		in.DB = append(in.DB, bitvec.Vector(p))
	}
	for i, q := range f.Queries {
		if len(q.X) != words {
			return nil, fmt.Errorf("dataset: query %d has %d words, want %d", i, len(q.X), words)
		}
		if q.NNIndex < -1 || q.NNIndex >= len(f.DB) {
			return nil, fmt.Errorf("dataset: query %d ground-truth index %d out of range", i, q.NNIndex)
		}
		in.Queries = append(in.Queries, workload.Query{
			X: bitvec.Vector(q.X), NNIndex: q.NNIndex, NNDist: q.NNDist,
		})
	}
	return in, nil
}

// Save writes the instance to a file path.
func Save(path string, in *workload.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := Write(bw, in); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads an instance from a file path.
func Load(path string) (*workload.Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}
