// Package bitvec provides packed bit vectors over {0,1}^d with the
// operations the ANNS schemes need on their hot path: Hamming distance via
// XOR+popcount, single-bit mutation, equality, and hashing.
//
// A Vector is a slice of 64-bit words. Bits beyond the dimension are kept
// zero by every exported operation; this invariant is what makes Equal and
// Hash well defined.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// Vector is a packed bit vector. The dimension is carried by the caller;
// all vectors participating in one operation must share it.
type Vector []uint64

// Words returns the number of 64-bit words needed for d bits.
func Words(d int) int {
	if d < 0 {
		panic("bitvec: negative dimension")
	}
	return (d + 63) / 64
}

// New returns an all-zero vector of dimension d.
func New(d int) Vector {
	return make(Vector, Words(d))
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Get reports bit i.
func (v Vector) Get(i int) bool {
	return v[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i to b.
func (v Vector) Set(i int, b bool) {
	if b {
		v[i>>6] |= 1 << uint(i&63)
	} else {
		v[i>>6] &^= 1 << uint(i&63)
	}
}

// Flip inverts bit i.
func (v Vector) Flip(i int) {
	v[i>>6] ^= 1 << uint(i&63)
}

// PopCount returns the number of set bits.
func (v Vector) PopCount() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}

// Distance returns the Hamming distance between v and u.
// The two vectors must have the same length.
//
// The loop is unrolled 4 words at a time with independent accumulators so
// the popcounts pipeline (and the compiler can keep the bounds checks out
// of the inner loop); vectors under 4 words take the scalar tail only.
func Distance(v, u Vector) int {
	if len(v) != len(u) {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", len(v), len(u)))
	}
	var n0, n1, n2, n3 int
	i := 0
	for ; i+4 <= len(v); i += 4 {
		a := v[i : i+4 : i+4]
		b := u[i : i+4 : i+4]
		n0 += bits.OnesCount64(a[0] ^ b[0])
		n1 += bits.OnesCount64(a[1] ^ b[1])
		n2 += bits.OnesCount64(a[2] ^ b[2])
		n3 += bits.OnesCount64(a[3] ^ b[3])
	}
	n := n0 + n1 + n2 + n3
	for ; i < len(v); i++ {
		n += bits.OnesCount64(v[i] ^ u[i])
	}
	return n
}

// DistanceAtMost reports whether Distance(v, u) <= t, short-circuiting as
// soon as the running count exceeds t. It is the hot-path form used by
// lazy table-cell evaluation. The threshold check runs once per 4-word
// group, not per word, keeping the common early-exit while letting the
// popcounts pipeline.
func DistanceAtMost(v, u Vector, t int) bool {
	n := 0
	i := 0
	for ; i+4 <= len(v); i += 4 {
		a := v[i : i+4 : i+4]
		b := u[i : i+4 : i+4]
		n += bits.OnesCount64(a[0]^b[0]) + bits.OnesCount64(a[1]^b[1]) +
			bits.OnesCount64(a[2]^b[2]) + bits.OnesCount64(a[3]^b[3])
		if n > t {
			return false
		}
	}
	for ; i < len(v); i++ {
		n += bits.OnesCount64(v[i] ^ u[i])
		if n > t {
			return false
		}
	}
	return true
}

// Xor sets v to v XOR u in place and returns v.
func (v Vector) Xor(u Vector) Vector {
	for i := range v {
		v[i] ^= u[i]
	}
	return v
}

// And sets v to v AND u in place and returns v.
func (v Vector) And(u Vector) Vector {
	for i := range v {
		v[i] &= u[i]
	}
	return v
}

// AndPopCount returns PopCount(v AND u) without allocating.
// It is the inner product kernel for sketch application, unrolled the same
// way as Distance.
func AndPopCount(v, u Vector) int {
	var n0, n1, n2, n3 int
	i := 0
	for ; i+4 <= len(v); i += 4 {
		a := v[i : i+4 : i+4]
		b := u[i : i+4 : i+4]
		n0 += bits.OnesCount64(a[0] & b[0])
		n1 += bits.OnesCount64(a[1] & b[1])
		n2 += bits.OnesCount64(a[2] & b[2])
		n3 += bits.OnesCount64(a[3] & b[3])
	}
	n := n0 + n1 + n2 + n3
	for ; i < len(v); i++ {
		n += bits.OnesCount64(v[i] & u[i])
	}
	return n
}

// Parity returns the GF(2) inner product <v, u> = popcount(v AND u) mod 2.
// Parity of a sum of popcounts equals the popcount of the XOR-fold, so one
// OnesCount64 at the end replaces one per word.
func Parity(v, u Vector) int {
	var f0, f1, f2, f3 uint64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		a := v[i : i+4 : i+4]
		b := u[i : i+4 : i+4]
		f0 ^= a[0] & b[0]
		f1 ^= a[1] & b[1]
		f2 ^= a[2] & b[2]
		f3 ^= a[3] & b[3]
	}
	f := f0 ^ f1 ^ f2 ^ f3
	for ; i < len(v); i++ {
		f ^= v[i] & u[i]
	}
	return bits.OnesCount64(f) & 1
}

// Equal reports whether v and u are identical bit vectors.
func Equal(v, u Vector) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if v[i] != u[i] {
			return false
		}
	}
	return true
}

// IsZero reports whether every bit is 0.
func (v Vector) IsZero() bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}

// Key returns the vector contents as a string usable as a map key.
// The encoding is the little-endian byte image of the words.
func (v Vector) Key() string {
	var sb strings.Builder
	sb.Grow(len(v) * 8)
	for _, w := range v {
		for s := 0; s < 64; s += 8 {
			sb.WriteByte(byte(w >> uint(s)))
		}
	}
	return sb.String()
}

// FromKey reconstructs a vector from the string produced by Key. nbits is
// the dimension the vector was created with; the key must contain exactly
// Words(nbits)*8 bytes.
func FromKey(key string, nbits int) (Vector, error) {
	want := Words(nbits) * 8
	if len(key) != want {
		return nil, fmt.Errorf("bitvec: key length %d, want %d for %d bits", len(key), want, nbits)
	}
	v := New(nbits)
	for i := range v {
		var w uint64
		for s := 0; s < 8; s++ {
			w |= uint64(key[i*8+s]) << uint(8*s)
		}
		v[i] = w
	}
	return v, nil
}

// TruncateToDim zeroes any bits at positions >= d. Operations that write
// whole words (e.g. filling from a random source) must call this to
// restore the trailing-zero invariant.
func (v Vector) TruncateToDim(d int) Vector {
	if d&63 != 0 && len(v) > 0 {
		v[len(v)-1] &= (1 << uint(d&63)) - 1
	}
	return v
}

// String renders the first min(d, 64*len(v)) bits as '0'/'1' with the
// lowest index first. Intended for tests and debugging of small vectors.
func (v Vector) String() string {
	var sb strings.Builder
	for i := 0; i < len(v)*64; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// FromString parses a '0'/'1' string produced by String (or hand written in
// tests), lowest index first.
func FromString(s string) (Vector, error) {
	v := New(len(s))
	for i, c := range s {
		switch c {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return nil, fmt.Errorf("bitvec: invalid character %q at %d", c, i)
		}
	}
	return v, nil
}
