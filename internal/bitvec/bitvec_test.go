package bitvec

import (
	"testing"
)

func TestWords(t *testing.T) {
	cases := []struct{ d, want int }{
		{0, 0}, {1, 1}, {63, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3},
	}
	for _, c := range cases {
		if got := Words(c.d); got != c.want {
			t.Errorf("Words(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestWordsPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Words(-1) did not panic")
		}
	}()
	Words(-1)
}

func TestSetGetFlip(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if v.Get(i) {
			t.Errorf("fresh vector has bit %d set", i)
		}
		v.Set(i, true)
		if !v.Get(i) {
			t.Errorf("Set(%d) did not stick", i)
		}
		v.Flip(i)
		if v.Get(i) {
			t.Errorf("Flip(%d) did not clear", i)
		}
		v.Flip(i)
		if !v.Get(i) {
			t.Errorf("double Flip(%d) did not set", i)
		}
		v.Set(i, false)
		if v.Get(i) {
			t.Errorf("Set(%d, false) did not clear", i)
		}
	}
}

func TestPopCountAndDistance(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(3, true)
	a.Set(64, true)
	a.Set(99, true)
	b.Set(3, true)
	b.Set(65, true)
	if got := a.PopCount(); got != 3 {
		t.Errorf("PopCount = %d, want 3", got)
	}
	// Differ at 64, 65, 99.
	if got := Distance(a, b); got != 3 {
		t.Errorf("Distance = %d, want 3", got)
	}
	if Distance(a, a) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestDistancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Distance on mismatched lengths did not panic")
		}
	}()
	Distance(New(64), New(128))
}

func TestDistanceAtMost(t *testing.T) {
	a := New(256)
	b := New(256)
	for i := 0; i < 10; i++ {
		b.Set(i*20, true)
	}
	for thr := 0; thr < 12; thr++ {
		want := Distance(a, b) <= thr
		if got := DistanceAtMost(a, b, thr); got != want {
			t.Errorf("DistanceAtMost(thr=%d) = %v, want %v", thr, got, want)
		}
	}
}

func TestXorAndParity(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(1, true)
	a.Set(69, true)
	b.Set(1, true)
	b.Set(5, true)
	c := a.Clone().Xor(b)
	if c.Get(1) || !c.Get(5) || !c.Get(69) {
		t.Errorf("xor wrong: %v", c)
	}
	// Parity of overlap: a AND b = {1} -> odd.
	if Parity(a, b) != 1 {
		t.Error("Parity(a,b) != 1")
	}
	b.Set(69, true)
	if Parity(a, b) != 0 {
		t.Error("Parity after adding overlap bit != 0")
	}
}

func TestAndPopCount(t *testing.T) {
	a := New(128)
	b := New(128)
	for i := 0; i < 128; i += 2 {
		a.Set(i, true)
	}
	for i := 0; i < 128; i += 4 {
		b.Set(i, true)
	}
	if got := AndPopCount(a, b); got != 32 {
		t.Errorf("AndPopCount = %d, want 32", got)
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New(90)
	a.Set(89, true)
	b := a.Clone()
	if !Equal(a, b) {
		t.Error("clone not equal")
	}
	b.Flip(0)
	if Equal(a, b) {
		t.Error("mutated clone still equal")
	}
	if Equal(New(64), New(128)) {
		t.Error("different lengths equal")
	}
}

func TestIsZero(t *testing.T) {
	v := New(100)
	if !v.IsZero() {
		t.Error("fresh vector not zero")
	}
	v.Set(77, true)
	if v.IsZero() {
		t.Error("vector with bit set is zero")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	v := New(130)
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	got, err := FromKey(v.Key(), 130)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(v, got) {
		t.Errorf("roundtrip mismatch: %v vs %v", v, got)
	}
}

func TestFromKeyRejectsBadLength(t *testing.T) {
	if _, err := FromKey("short", 130); err == nil {
		t.Error("FromKey accepted wrong-length key")
	}
}

func TestHashDistinguishes(t *testing.T) {
	a := New(64)
	b := New(64)
	b.Set(13, true)
	if a.Hash() == b.Hash() {
		t.Error("hash collision on trivially different vectors")
	}
	if a.Hash() != New(64).Hash() {
		t.Error("hash not deterministic")
	}
}

func TestTruncateToDim(t *testing.T) {
	v := Vector{^uint64(0), ^uint64(0)}
	v.TruncateToDim(70)
	if got := v.PopCount(); got != 70 {
		t.Errorf("after truncate PopCount = %d, want 70", got)
	}
	// Multiple of 64: no-op.
	w := Vector{^uint64(0)}
	w.TruncateToDim(64)
	if w.PopCount() != 64 {
		t.Error("TruncateToDim(64) clobbered bits")
	}
}

func TestStringAndFromString(t *testing.T) {
	s := "0110000000000000000000000000000000000000000000000000000000000001"
	v, err := FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Get(1) || !v.Get(2) || !v.Get(63) || v.Get(0) {
		t.Errorf("FromString bits wrong: %v", v)
	}
	if v.String() != s {
		t.Errorf("String roundtrip: %q", v.String())
	}
	if _, err := FromString("01x"); err == nil {
		t.Error("FromString accepted invalid char")
	}
}
