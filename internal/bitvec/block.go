package bitvec

import "fmt"

// Block is a flat, pointer-free matrix of packed bit vectors: n rows of
// RowWords words each, stored in one contiguous []uint64 backing array.
// It is the storage substrate of the index components (database points,
// per-level database sketches, sketch-matrix rows): no per-row headers,
// no nested slices, so a Block can be written to or read from a snapshot
// wholesale and shared between levels as subslices of one allocation.
type Block struct {
	RowWords int      // words per row
	Words    []uint64 // len = Rows()*RowWords, row-major
}

// NewBlock returns an all-zero block of n rows of d bits each.
func NewBlock(n, d int) Block {
	w := Words(d)
	return Block{RowWords: w, Words: make([]uint64, n*w)}
}

// BlockOf copies the given vectors into a fresh contiguous block. All
// vectors must share one length; an empty slice yields an empty block.
func BlockOf(vs []Vector) Block {
	if len(vs) == 0 {
		return Block{}
	}
	b := Block{RowWords: len(vs[0]), Words: make([]uint64, len(vs)*len(vs[0]))}
	for i, v := range vs {
		if len(v) != b.RowWords {
			panic(fmt.Sprintf("bitvec: BlockOf row %d has %d words, want %d", i, len(v), b.RowWords))
		}
		copy(b.Words[i*b.RowWords:], v)
	}
	return b
}

// Rows returns the number of rows.
func (b *Block) Rows() int {
	if b.RowWords == 0 {
		return 0
	}
	return len(b.Words) / b.RowWords
}

// Row returns row i as a Vector view into the backing array (no copy;
// mutations write through).
func (b *Block) Row(i int) Vector {
	return Vector(b.Words[i*b.RowWords : (i+1)*b.RowWords])
}

// SetRow copies v into row i.
func (b *Block) SetRow(i int, v Vector) {
	if len(v) != b.RowWords {
		panic(fmt.Sprintf("bitvec: SetRow got %d words, want %d", len(v), b.RowWords))
	}
	copy(b.Words[i*b.RowWords:(i+1)*b.RowWords], v)
}

// Vectors returns per-row Vector views of the block (one slice header per
// row, all sharing the contiguous backing array). Navigation convenience
// for APIs that traffic in []Vector; the storage stays flat.
func (b *Block) Vectors() []Vector {
	out := make([]Vector, b.Rows())
	for i := range out {
		out[i] = b.Row(i)
	}
	return out
}

// Slice returns rows [lo, hi) as a block sharing the backing array.
func (b *Block) Slice(lo, hi int) Block {
	return Block{RowWords: b.RowWords, Words: b.Words[lo*b.RowWords : hi*b.RowWords]}
}

// The incremental hash primitives below expose Vector.Hash word by word,
// so a hash can be computed over any word sequence (a block row, an
// address payload) without materializing a Vector. HashFinish after
// HashWord over a vector's words equals that vector's Hash.

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashSeed returns the initial incremental hash state.
func HashSeed() uint64 { return fnvOffset }

// HashWord folds one 64-bit word into the state, byte by byte
// (little-endian), matching Vector.Hash.
func HashWord(h, w uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (w >> uint(s)) & 0xff
		h *= fnvPrime
	}
	return h
}

// Hash returns a 64-bit FNV-1a hash of the vector contents. Suitable for
// map keys via Key, and for the membership tables' bucket addressing.
func (v Vector) Hash() uint64 {
	h := HashSeed()
	for _, w := range v {
		h = HashWord(h, w)
	}
	return h
}
