package bitvec

import "testing"

func TestBlockRoundtrip(t *testing.T) {
	vs := []Vector{{1, 2}, {3, 4}, {5, 6}}
	b := BlockOf(vs)
	if b.Rows() != 3 || b.RowWords != 2 {
		t.Fatalf("block shape %dx%d", b.Rows(), b.RowWords)
	}
	for i, v := range vs {
		if !Equal(b.Row(i), v) {
			t.Errorf("row %d = %v, want %v", i, b.Row(i), v)
		}
	}
	// Rows are views: SetRow writes through the backing array.
	b.SetRow(1, Vector{7, 8})
	if b.Words[2] != 7 || b.Words[3] != 8 {
		t.Errorf("SetRow did not write the backing array: %v", b.Words)
	}
	views := b.Vectors()
	views[0][0] = 9
	if b.Words[0] != 9 {
		t.Error("Vectors() returned copies, want views")
	}
}

func TestBlockSliceShares(t *testing.T) {
	b := NewBlock(4, 128)
	s := b.Slice(1, 3)
	if s.Rows() != 2 {
		t.Fatalf("slice rows = %d", s.Rows())
	}
	s.Row(0)[0] = 42
	if b.Row(1)[0] != 42 {
		t.Error("Slice does not share the backing array")
	}
}

func TestBlockOfRejectsRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged BlockOf did not panic")
		}
	}()
	BlockOf([]Vector{{1}, {2, 3}})
}

// TestIncrementalHashMatchesVectorHash pins the contract the binary-keyed
// membership index relies on: hashing an address payload word by word
// equals hashing the equivalent vector.
func TestIncrementalHashMatchesVectorHash(t *testing.T) {
	v := Vector{0xdeadbeef, 0x12345678abcdef00, 7}
	h := HashSeed()
	for _, w := range v {
		h = HashWord(h, w)
	}
	if h != v.Hash() {
		t.Errorf("incremental hash %x != Vector.Hash %x", h, v.Hash())
	}
}
