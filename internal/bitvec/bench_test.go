package bitvec

import (
	"testing"
)

func benchVectors(d int) (Vector, Vector) {
	a, b := New(d), New(d)
	for i := 0; i < d; i += 3 {
		a.Set(i, true)
	}
	for i := 0; i < d; i += 5 {
		b.Set(i, true)
	}
	return a, b
}

func BenchmarkDistance1024(b *testing.B) {
	x, y := benchVectors(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}

func BenchmarkDistance65536(b *testing.B) {
	x, y := benchVectors(65536)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}

func BenchmarkDistanceAtMostEarlyExit(b *testing.B) {
	x, y := benchVectors(65536)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		DistanceAtMost(x, y, 16) // fails fast: answer ≫ 16
	}
}

func BenchmarkParity(b *testing.B) {
	x, y := benchVectors(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parity(x, y)
	}
}

func BenchmarkKey(b *testing.B) {
	x, _ := benchVectors(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Key()
	}
}
