package bitvec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genVector produces a random Vector of the given word length for
// testing/quick generators.
func genVector(r *rand.Rand, words, dim int) Vector {
	v := make(Vector, words)
	for i := range v {
		v[i] = r.Uint64()
	}
	return v.TruncateToDim(dim)
}

const (
	qWords = 3
	qDim   = 170
)

// triple is a generator of three same-dimension vectors.
type triple struct{ A, B, C Vector }

func (triple) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(triple{
		A: genVector(r, qWords, qDim),
		B: genVector(r, qWords, qDim),
		C: genVector(r, qWords, qDim),
	})
}

func TestQuickMetricAxioms(t *testing.T) {
	// Hamming distance is a metric: identity, symmetry, triangle.
	f := func(tr triple) bool {
		dAB := Distance(tr.A, tr.B)
		dBA := Distance(tr.B, tr.A)
		dAC := Distance(tr.A, tr.C)
		dCB := Distance(tr.C, tr.B)
		return Distance(tr.A, tr.A) == 0 &&
			dAB == dBA &&
			(dAB != 0 || Equal(tr.A, tr.B)) &&
			dAB <= dAC+dCB
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceIsXorPopcount(t *testing.T) {
	f := func(tr triple) bool {
		return Distance(tr.A, tr.B) == tr.A.Clone().Xor(tr.B).PopCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickXorInvolution(t *testing.T) {
	f := func(tr triple) bool {
		return Equal(tr.A.Clone().Xor(tr.B).Xor(tr.B), tr.A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickParityBilinear(t *testing.T) {
	// <r, a⊕b> = <r,a> ⊕ <r,b> — the property sketch application relies on.
	f := func(tr triple) bool {
		lhs := Parity(tr.C, tr.A.Clone().Xor(tr.B))
		rhs := Parity(tr.C, tr.A) ^ Parity(tr.C, tr.B)
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyRoundTrip(t *testing.T) {
	f := func(tr triple) bool {
		v, err := FromKey(tr.A.Key(), qDim)
		return err == nil && Equal(v, tr.A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	f := func(tr triple) bool {
		if Equal(tr.A, tr.B) {
			return tr.A.Key() == tr.B.Key()
		}
		return tr.A.Key() != tr.B.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDistanceAtMostAgrees(t *testing.T) {
	f := func(tr triple, thr uint8) bool {
		lim := int(thr % 180)
		return DistanceAtMost(tr.A, tr.B, lim) == (Distance(tr.A, tr.B) <= lim)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFlipChangesDistanceByOne(t *testing.T) {
	f := func(tr triple, pos uint8) bool {
		i := int(pos) % qDim
		before := Distance(tr.A, tr.B)
		b := tr.B.Clone()
		b.Flip(i)
		after := Distance(tr.A, b)
		return after == before+1 || after == before-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
