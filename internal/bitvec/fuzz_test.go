package bitvec

import (
	"encoding/binary"
	"testing"
)

// oracleDistance is the bit-by-bit reference the unrolled kernels are
// pinned to: walk every bit position through Get.
func oracleDistance(v, u Vector) int {
	n := 0
	for i := 0; i < len(v)*64; i++ {
		if v.Get(i) != u.Get(i) {
			n++
		}
	}
	return n
}

func oracleAndPopCount(v, u Vector) int {
	n := 0
	for i := 0; i < len(v)*64; i++ {
		if v.Get(i) && u.Get(i) {
			n++
		}
	}
	return n
}

func vectorsFromBytes(data []byte) (Vector, Vector) {
	// Split the corpus bytes into two equal-length word slices. Odd
	// leftover bytes pad with zeros, exercising partial trailing words.
	half := len(data) / 2
	a, b := data[:half], data[half:half*2]
	words := (half + 7) / 8
	v := make(Vector, words)
	u := make(Vector, words)
	var buf [8]byte
	for i := 0; i < words; i++ {
		copy(buf[:], padSlice(a, i*8))
		v[i] = binary.LittleEndian.Uint64(buf[:])
		copy(buf[:], padSlice(b, i*8))
		u[i] = binary.LittleEndian.Uint64(buf[:])
	}
	return v, u
}

func padSlice(b []byte, off int) []byte {
	if off >= len(b) {
		return nil
	}
	end := off + 8
	if end > len(b) {
		end = len(b)
	}
	return b[off:end]
}

// FuzzDistanceParity pins the unrolled Distance / DistanceAtMost /
// AndPopCount / Parity kernels to the bit-by-bit oracle across arbitrary
// word contents and lengths (including the 0..3-word scalar tails and the
// 4-word unrolled body).
func FuzzDistanceParity(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0xff}, uint16(1))
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0xaa, 0x55}, uint16(7))
	f.Add(make([]byte, 128), uint16(64))
	seed := make([]byte, 9*8*2) // 9 words each: unrolled body + tail
	for i := range seed {
		seed[i] = byte(i*37 + 11)
	}
	f.Add(seed, uint16(200))
	f.Fuzz(func(t *testing.T, data []byte, tRaw uint16) {
		v, u := vectorsFromBytes(data)
		wantDist := oracleDistance(v, u)
		if got := Distance(v, u); got != wantDist {
			t.Fatalf("Distance = %d, oracle = %d (words=%d)", got, wantDist, len(v))
		}
		wantAnd := oracleAndPopCount(v, u)
		if got := AndPopCount(v, u); got != wantAnd {
			t.Fatalf("AndPopCount = %d, oracle = %d (words=%d)", got, wantAnd, len(v))
		}
		if got, want := Parity(v, u), wantAnd&1; got != want {
			t.Fatalf("Parity = %d, oracle = %d (words=%d)", got, want, len(v))
		}
		// Exercise thresholds below, at, and above the true distance, plus
		// the fuzzed one.
		for _, thr := range []int{wantDist - 1, wantDist, wantDist + 1, int(tRaw)} {
			if thr < 0 {
				continue
			}
			if got, want := DistanceAtMost(v, u, thr), wantDist <= thr; got != want {
				t.Fatalf("DistanceAtMost(t=%d) = %v, want %v (dist=%d, words=%d)",
					thr, got, want, wantDist, len(v))
			}
		}
	})
}
