// Package obs is the observability layer shared by both serving tiers:
// a dependency-free Prometheus-text-exposition registry (counters,
// gauges, and a histogram adapter over internal/stats.LogHistogram)
// served at GET /metricsz, plus cross-tier request tracing (trace IDs,
// span records, sampled/slow-query emission through log/slog).
//
// The registry deliberately reads, it does not own: counters and gauges
// are func-backed series evaluated at scrape time against the serving
// layers' existing atomic counter blocks, so /metricsz and /statsz can
// never disagree about a total — they load the same atomics. Only the
// per-stage latency histograms are owned here (the counter blocks have
// no distribution state to borrow). See DESIGN.md §12.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is one series' constant label set, rendered sorted by key.
type Labels map[string]string

func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l[k]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel applies the exposition-format label escapes: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series is one sample line: either func-backed (counter/gauge) or an
// owned histogram.
type series struct {
	labels string // pre-rendered `{k="v",...}` or ""
	value  func() float64
	hist   *Histogram
}

// family is one metric name: its HELP/TYPE header and ordered series.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry is an ordered collection of metric families rendered in the
// Prometheus text exposition format. Registration order is exposition
// order, so scrapes are byte-stable for a fixed registry and state.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) add(name, help, typ string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.typ, typ))
	}
	f.series = append(f.series, s)
}

// CounterFunc registers a monotonically increasing series whose value is
// read at scrape time. labels may be nil.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, "counter", &series{labels: labels.render(), value: fn})
}

// GaugeFunc registers a point-in-time series read at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, "gauge", &series{labels: labels.render(), value: fn})
}

// RegisterHistogram attaches an existing latency histogram as one series
// of the named family (per-stage and per-shard histograms share a family
// under distinct labels).
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	r.add(name, help, "histogram", &series{labels: labels.render(), hist: h})
}

// Histogram creates, registers, and returns an owned latency histogram
// series (observations in nanoseconds, exposed in seconds).
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	h := NewHistogram()
	r.RegisterHistogram(name, help, labels, h)
	return h
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip representation, no exponent surprises for the
// integer-valued counters the serving tiers mostly export.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histLabels splices extra le= style pairs into a pre-rendered label set.
func histLabels(base, extra string) string {
	if base == "" {
		return "{" + extra + "}"
	}
	return base[:len(base)-1] + "," + extra + "}"
}

// Render renders the full exposition. Families print in registration
// order; histogram series expand into cumulative le buckets plus _sum
// and _count.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var sb strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			if s.hist == nil {
				fmt.Fprintf(&sb, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
				continue
			}
			snap := s.hist.export()
			for i, b := range snap.Buckets {
				le := strconv.FormatFloat(b.LE, 'g', -1, 64)
				fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name,
					histLabels(s.labels, `le="`+le+`"`), snap.Cumulative[i])
			}
			fmt.Fprintf(&sb, "%s_bucket%s %d\n", f.name, histLabels(s.labels, `le="+Inf"`), snap.Count)
			fmt.Fprintf(&sb, "%s_sum%s %s\n", f.name, s.labels, formatValue(snap.SumSeconds))
			fmt.Fprintf(&sb, "%s_count%s %d\n", f.name, s.labels, snap.Count)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ServeHTTP serves the exposition (GET /metricsz).
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.Render(w)
}
