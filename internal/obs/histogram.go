package obs

import (
	"math"
	"sync"
	"time"

	"repro/internal/stats"
)

// exportBounds are the coarse cumulative le= bounds (in seconds) the
// exposition folds the fine geometric buckets into. The underlying
// LogHistogram keeps 16 sub-buckets per octave for exact quantiles; the
// scrape surface uses a conventional Prometheus ladder so dashboards and
// alert rules stay portable.
var exportBounds = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a concurrency-safe latency histogram: a mutex-wrapped
// stats.LogHistogram recording nanoseconds. It backs both the /metricsz
// histogram series and the exact per-shard quantiles in /statsz.
type Histogram struct {
	mu sync.Mutex
	h  *stats.LogHistogram
}

// NewHistogram returns an empty latency histogram (1µs..100s range).
func NewHistogram() *Histogram {
	return &Histogram{h: stats.NewLatencyHistogram()}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(float64(d.Nanoseconds())) }

// ObserveNanos records one observation in nanoseconds.
func (h *Histogram) ObserveNanos(ns float64) {
	h.mu.Lock()
	h.h.Record(ns)
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Count()
}

// QuantileMS returns the q-quantile in milliseconds, or 0 when empty
// (never NaN — the value feeds JSON marshalling in /statsz).
func (h *Histogram) QuantileMS(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.h.Count() == 0 {
		return 0
	}
	return h.h.Quantile(q) / 1e6
}

// Merge folds other into h. The clone-then-merge split keeps the two
// locks from ever being held together, so concurrent A.Merge(B) and
// B.Merge(A) cannot deadlock.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	snap := other.h.Clone()
	other.mu.Unlock()
	h.mu.Lock()
	h.h.Merge(snap)
	h.mu.Unlock()
}

// histSnapshot is one scrape's view: coarse cumulative buckets plus the
// exact sum and count.
type histSnapshot struct {
	Buckets    []struct{ LE float64 }
	Cumulative []uint64
	SumSeconds float64
	Count      uint64
}

// export folds the fine buckets into the coarse exposition ladder. Each
// fine bucket [Lo,Hi) is attributed to the smallest coarse bound ≥ Hi
// (its observations are all certainly ≤ that bound); overflow counts go
// to +Inf only.
func (h *Histogram) export() histSnapshot {
	h.mu.Lock()
	fine := h.h.NonEmpty()
	sum := h.h.Sum()
	count := h.h.Count()
	h.mu.Unlock()

	perBound := make([]uint64, len(exportBounds))
	for _, b := range fine {
		if math.IsInf(b.Hi, 1) {
			continue // overflow: lands in +Inf via Count
		}
		hiSec := b.Hi / 1e9
		placed := false
		for i, le := range exportBounds {
			if hiSec <= le {
				perBound[i] += b.Count
				placed = true
				break
			}
		}
		if !placed {
			// Above the top coarse bound but below histogram overflow:
			// counted only in +Inf.
			continue
		}
	}
	snap := histSnapshot{
		Buckets:    make([]struct{ LE float64 }, len(exportBounds)),
		Cumulative: make([]uint64, len(exportBounds)),
		SumSeconds: sum / 1e9,
		Count:      count,
	}
	var cum uint64
	for i, le := range exportBounds {
		cum += perBound[i]
		snap.Buckets[i].LE = le
		snap.Cumulative[i] = cum
	}
	return snap
}
