package obs

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
)

// NewLogger is the daemons' structured log: JSON records on w (stderr in
// production). One line per record keeps the slow-query log greppable
// and machine-parseable (CI asserts on it).
func NewLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// PprofMux returns a mux serving net/http/pprof under /debug/pprof/,
// for the daemons' -debug-addr listener. Kept off the serving mux so
// profiling endpoints are never exposed on the query port.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
