package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Header names for cross-tier trace propagation. The trace ID travels on
// the request; span records travel back on the response. Both are
// out-of-band: JSON bodies are untouched, so enabling tracing cannot
// perturb answers or accounting (`annsload -compare` stays byte-clean).
const (
	TraceHeader = "X-Anns-Trace"
	SpansHeader = "X-Anns-Spans"
)

// Span is one timed stage of a request: admission wait, execution, a
// cache lookup, one shard RPC attempt, or the merge. Offsets are
// microseconds relative to the trace root so a cross-process timeline
// needs no clock agreement beyond the root's own monotonic reading.
type Span struct {
	Stage   string `json:"stage"`
	Replica string `json:"replica,omitempty"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Outcome string `json:"outcome"`
}

// Trace collects spans for one request. A nil *Trace is a valid no-op
// receiver, so call sites stay unconditional and the untraced fast path
// costs one nil check.
type Trace struct {
	id    string
	start time.Time
	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace rooted at start (the request's arrival instant
// on whichever clock the caller runs — wall or virtual).
func NewTrace(id string, start time.Time) *Trace {
	return &Trace{id: id, start: start}
}

// ID returns the trace ID, or "" for a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the root instant.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// Add appends one span. start must come from the same clock as the root.
func (t *Trace) Add(stage, replica, outcome string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.AddSpan(Span{
		Stage:   stage,
		Replica: replica,
		StartUS: start.Sub(t.start).Microseconds(),
		DurUS:   dur.Microseconds(),
		Outcome: outcome,
	})
}

// AddSpan appends a pre-built span (used when rebasing remote spans).
func (t *Trace) AddSpan(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns the collected spans sorted by (start, stage, replica) —
// a deterministic timeline regardless of goroutine completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartUS != out[j].StartUS {
			return out[i].StartUS < out[j].StartUS
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Replica < out[j].Replica
	})
	return out
}

// EncodeSpans serializes spans for the response header (compact JSON).
func EncodeSpans(spans []Span) string {
	if len(spans) == 0 {
		return ""
	}
	b, err := json.Marshal(spans)
	if err != nil {
		return ""
	}
	return string(b)
}

// DecodeSpans parses a spans header; malformed input yields nil (a
// missing timeline, never a failed request).
func DecodeSpans(s string) []Span {
	if s == "" {
		return nil
	}
	var out []Span
	if err := json.Unmarshal([]byte(s), &out); err != nil {
		return nil
	}
	return out
}

// TraceRecord is one finished trace as handed to OnTrace and the log.
type TraceRecord struct {
	ID    string
	Route string
	Start time.Time
	Dur   time.Duration
	Spans []Span
}

// TracerConfig configures trace creation and emission for one daemon.
type TracerConfig struct {
	// Seed feeds trace-ID derivation; fixed seeds give reproducible IDs.
	Seed uint64
	// Sample is the fraction of requests traced and logged (0..1).
	Sample float64
	// SlowQuery, when >0, logs any request at or above this duration in
	// full regardless of sampling.
	SlowQuery time.Duration
	// Logger receives trace/slow_query records; nil disables logging.
	Logger *slog.Logger
	// OnTrace, when set, observes every finished trace (chaos harness,
	// tests). Traces are created whenever OnTrace is set even if neither
	// Sample nor SlowQuery would emit them.
	OnTrace func(TraceRecord)
}

// Tracer mints trace IDs and decides which finished traces to emit.
type Tracer struct {
	cfg     TracerConfig
	mu      sync.Mutex
	counter uint64
}

// NewTracer returns a tracer for cfg.
func NewTracer(cfg TracerConfig) *Tracer {
	return &Tracer{cfg: cfg}
}

// Enabled reports whether this tracer ever wants a trace built. When
// false, request paths skip span collection entirely (beyond honoring
// an incoming TraceHeader from an upstream tier).
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	return t.cfg.Sample > 0 || t.cfg.SlowQuery > 0 || t.cfg.OnTrace != nil
}

// splitmix64 is the same mixing function the chaos harness uses for seed
// derivation: cheap, well-distributed, and deterministic.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NextID mints a fresh trace ID: splitmix64 over seed⊕counter, rendered
// as 16 lowercase hex digits. With a fixed seed the ID sequence is fully
// deterministic.
func (t *Tracer) NextID() string {
	t.mu.Lock()
	t.counter++
	n := t.counter
	t.mu.Unlock()
	return fmt.Sprintf("%016x", splitmix64(t.cfg.Seed^n))
}

// sampled decides from the ID alone whether this trace is in the sample:
// the low 53 bits, scaled to [0,1), compared against Sample. Determinism
// falls out — the same ID always makes the same decision on every tier.
func (t *Tracer) sampled(id string) bool {
	if t.cfg.Sample >= 1 {
		return true
	}
	if t.cfg.Sample <= 0 {
		return false
	}
	v, err := strconv.ParseUint(id, 16, 64)
	if err != nil {
		return false
	}
	const mask = 1<<53 - 1
	return float64(splitmix64(v)&mask)/float64(1<<53) < t.cfg.Sample
}

// Begin returns a trace for a request, or nil when tracing is off. id may
// be "" to mint a fresh one (router ingress); a non-empty id adopts the
// upstream tier's (shard honoring the router's header).
func (t *Tracer) Begin(id string, start time.Time) *Trace {
	if t == nil || !t.Enabled() {
		return nil
	}
	if id == "" {
		id = t.NextID()
	}
	return NewTrace(id, start)
}

// Finish emits the trace: a "slow_query" record when dur ≥ SlowQuery, a
// "trace" record when sampled, and always to OnTrace when set.
func (t *Tracer) Finish(tr *Trace, route string, dur time.Duration) {
	if t == nil || tr == nil {
		return
	}
	spans := tr.Spans()
	rec := TraceRecord{ID: tr.id, Route: route, Start: tr.start, Dur: dur, Spans: spans}
	if t.cfg.OnTrace != nil {
		t.cfg.OnTrace(rec)
	}
	if t.cfg.Logger == nil {
		return
	}
	slow := t.cfg.SlowQuery > 0 && dur >= t.cfg.SlowQuery
	if !slow && !t.sampled(tr.id) {
		return
	}
	msg := "trace"
	if slow {
		msg = "slow_query"
	}
	t.cfg.Logger.Info(msg,
		slog.String("trace_id", tr.id),
		slog.String("route", route),
		slog.Float64("dur_ms", float64(dur.Microseconds())/1000),
		slog.Any("spans", spans),
	)
}
