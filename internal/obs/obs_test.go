package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	var queries float64 = 42
	r.CounterFunc("anns_queries_total", "Total queries.", nil, func() float64 { return queries })
	r.GaugeFunc("anns_in_flight", "In-flight requests.", Labels{"tier": "router"}, func() float64 { return 3 })
	h := r.Histogram("anns_stage_seconds", "Per-stage latency.", Labels{"stage": "exec"})
	h.Observe(2 * time.Millisecond)
	h.Observe(30 * time.Millisecond)

	req := httptest.NewRequest("GET", "/metricsz", nil)
	w := httptest.NewRecorder()
	r.ServeHTTP(w, req)

	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# HELP anns_queries_total Total queries.",
		"# TYPE anns_queries_total counter",
		"anns_queries_total 42",
		`anns_in_flight{tier="router"} 3`,
		"# TYPE anns_stage_seconds histogram",
		`anns_stage_seconds_bucket{stage="exec",le="0.0025"} 1`,
		`anns_stage_seconds_bucket{stage="exec",le="+Inf"} 2`,
		`anns_stage_seconds_count{stage="exec"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n%s", want, body)
		}
	}
	// _sum must be the exact ns sum scaled to seconds.
	if !strings.Contains(body, `anns_stage_seconds_sum{stage="exec"} 0.032`) {
		t.Errorf("exposition missing exact sum\n%s", body)
	}
}

func TestRegistryExpositionByteStable(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("a_total", "A.", Labels{"b": "1", "a": "2"}, func() float64 { return 7 })
	r.Histogram("lat_seconds", "Lat.", nil).Observe(time.Millisecond)
	var b1, b2 strings.Builder
	if err := r.Render(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("two scrapes of unchanged state differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	// Labels render sorted by key.
	if !strings.Contains(b1.String(), `a_total{a="2",b="1"} 7`) {
		t.Fatalf("labels not sorted:\n%s", b1.String())
	}
}

func TestHistogramQuantileEmptyIsZero(t *testing.T) {
	h := NewHistogram()
	if got := h.QuantileMS(0.99); got != 0 {
		t.Fatalf("empty QuantileMS = %v, want 0 (must stay JSON-marshalable)", got)
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram()
	// 1..1000 ms, one observation each: p50 ≈ 500ms, p99 ≈ 990ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.QuantileMS(0.50)
	if p50 < 450 || p50 > 550 {
		t.Errorf("p50 = %v, want ≈500", p50)
	}
	p99 := h.QuantileMS(0.99)
	if p99 < 930 || p99 > 1000 {
		t.Errorf("p99 = %v, want ≈990", p99)
	}
}

// Satellite 1: Quantile under concurrent Observe must be race-free and
// land inside the observed range.
func TestHistogramQuantileUnderConcurrency(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(time.Duration(1+(g*5000+i)%100) * time.Millisecond)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 2000; i++ {
			if q := h.QuantileMS(0.95); q != 0 && (q < 0.5 || q > 110) {
				t.Errorf("mid-flight p95 = %v outside observed range", q)
				return
			}
		}
	}()
	wg.Wait()
	<-stop
	if got := h.Count(); got != 20000 {
		t.Fatalf("Count = %d, want 20000", got)
	}
}

// Satellite 1: Merge while both sides take concurrent writes must not
// race or lose the merged counts.
func TestHistogramMergeUnderConcurrency(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	var wg sync.WaitGroup
	for _, h := range []*Histogram{a, b} {
		wg.Add(1)
		go func(h *Histogram) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				h.Observe(time.Duration(1+i%50) * time.Millisecond)
			}
		}(h)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			a.Merge(b)
		}
	}()
	wg.Wait()
	// After the dust settles a holds its own 2000 plus 50 point-in-time
	// snapshots of b; exact totals depend on interleaving but must be at
	// least a's own writes and internally consistent with a final merge.
	before := a.Count()
	a.Merge(b)
	if a.Count() != before+b.Count() {
		t.Fatalf("final merge added %d, want %d", a.Count()-before, b.Count())
	}
	if q := a.QuantileMS(0.5); q < 0.5 || q > 55 {
		t.Fatalf("post-merge p50 = %v outside observed range", q)
	}
}

func TestTracerDeterministicIDs(t *testing.T) {
	a := NewTracer(TracerConfig{Seed: 42, Sample: 1})
	b := NewTracer(TracerConfig{Seed: 42, Sample: 1})
	for i := 0; i < 5; i++ {
		ia, ib := a.NextID(), b.NextID()
		if ia != ib {
			t.Fatalf("ID %d: %q vs %q — same seed must give same sequence", i, ia, ib)
		}
		if len(ia) != 16 {
			t.Fatalf("ID %q not 16 hex digits", ia)
		}
	}
	c := NewTracer(TracerConfig{Seed: 43, Sample: 1})
	if a.NextID() == c.NextID() {
		t.Fatal("different seeds gave identical IDs")
	}
}

func TestTracerSamplingConsistentPerID(t *testing.T) {
	tr := NewTracer(TracerConfig{Seed: 7, Sample: 0.5})
	id := tr.NextID()
	first := tr.sampled(id)
	for i := 0; i < 10; i++ {
		if tr.sampled(id) != first {
			t.Fatal("sampling decision for a fixed ID flip-flopped")
		}
	}
	// Rate sanity: of 2000 IDs roughly half sample in.
	in := 0
	for i := 0; i < 2000; i++ {
		if tr.sampled(tr.NextID()) {
			in++
		}
	}
	if in < 800 || in > 1200 {
		t.Fatalf("sample=0.5 admitted %d/2000", in)
	}
}

func TestTraceSpansSortedAndNilSafe(t *testing.T) {
	var nilTrace *Trace
	nilTrace.Add("exec", "", "ok", time.Now(), time.Millisecond) // must not panic
	if nilTrace.Spans() != nil || nilTrace.ID() != "" {
		t.Fatal("nil trace must be inert")
	}

	base := time.Unix(0, 0)
	tr := NewTrace("abc", base)
	tr.Add("merge", "", "ok", base.Add(30*time.Millisecond), time.Millisecond)
	tr.Add("rpc", "b", "ok", base.Add(10*time.Millisecond), 20*time.Millisecond)
	tr.Add("rpc", "a", "lost-hedge", base.Add(10*time.Millisecond), 20*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Replica != "a" || spans[1].Replica != "b" || spans[2].Stage != "merge" {
		t.Fatalf("spans not in (start, stage, replica) order: %+v", spans)
	}
}

func TestEncodeDecodeSpansRoundTrip(t *testing.T) {
	spans := []Span{
		{Stage: "rpc", Replica: "http://x", StartUS: 10, DurUS: 20, Outcome: "ok"},
		{Stage: "merge", StartUS: 30, DurUS: 1, Outcome: "ok"},
	}
	enc := EncodeSpans(spans)
	got := DecodeSpans(enc)
	if len(got) != 2 || got[0] != spans[0] || got[1] != spans[1] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if DecodeSpans("not json") != nil {
		t.Fatal("malformed spans header must decode to nil")
	}
	if EncodeSpans(nil) != "" {
		t.Fatal("no spans must encode to empty header")
	}
}

func TestTracerBeginGating(t *testing.T) {
	off := NewTracer(TracerConfig{})
	if off.Enabled() || off.Begin("", time.Now()) != nil {
		t.Fatal("tracer with no sink must be disabled")
	}
	var got []TraceRecord
	on := NewTracer(TracerConfig{Seed: 1, OnTrace: func(r TraceRecord) { got = append(got, r) }})
	tr := on.Begin("fixed-id", time.Unix(0, 0))
	if tr == nil || tr.ID() != "fixed-id" {
		t.Fatalf("Begin must adopt the provided ID, got %v", tr.ID())
	}
	tr.Add("exec", "", "ok", time.Unix(0, 0), time.Millisecond)
	on.Finish(tr, "/v1/query", 2*time.Millisecond)
	if len(got) != 1 || got[0].ID != "fixed-id" || len(got[0].Spans) != 1 {
		t.Fatalf("OnTrace record = %+v", got)
	}
}
