package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// PrivateCoin realizes Lemma 5 / Proposition 6 at simulable scale: a
// public-coin scheme becomes a standard (private-coin) one by storing one
// table per possible value of an ℓ-bit random string and letting the
// querier pick the sub-table with its own private randomness.
//
// The paper's ℓ = log(log|A| + log|B| + O(1)) comes from Newman's theorem:
// a small multiset of shared random strings suffices to keep the error
// bounded on every input. Here the multiset is 2^ℓ independently drawn
// sketch families; the table size multiplies by 2^ℓ (the Proposition 6
// O(dn) factor) while rounds and probes are untouched — which the tests
// and experiment E12 verify.
type PrivateCoin struct {
	copies  []Scheme
	indexes []*Index
	coins   *rng.Source
	name    string
}

// NewPrivateCoin draws 2^ell public-coin copies via the factory (seeded
// baseSeed, baseSeed+1, …) and a private coin stream for query-time
// selection.
func NewPrivateCoin(ell int, baseSeed uint64, privateSeed uint64, factory SchemeFactory) *PrivateCoin {
	if ell < 0 || ell > 12 {
		panic("core: PrivateCoin needs 0 <= ell <= 12 at simulable scale")
	}
	pc := &PrivateCoin{coins: rng.New(privateSeed)}
	n := 1 << uint(ell)
	for i := 0; i < n; i++ {
		s, idx := factory(baseSeed + uint64(i))
		pc.copies = append(pc.copies, s)
		pc.indexes = append(pc.indexes, idx)
	}
	pc.name = fmt.Sprintf("private-coin(%s, ell=%d)", pc.copies[0].Name(), ell)
	return pc
}

// Name implements Scheme.
func (pc *PrivateCoin) Name() string { return pc.name }

// Rounds implements Scheme.
func (pc *PrivateCoin) Rounds() int { return pc.copies[0].Rounds() }

// Query implements Scheme: the private coins select the sub-table; the
// probe/round accounting is exactly the chosen copy's (selecting a
// sub-table is address arithmetic, not a probe).
func (pc *PrivateCoin) Query(x bitvec.Vector) Result {
	return pc.copies[pc.coins.Intn(len(pc.copies))].Query(x)
}

// Copies returns the number of stored sub-tables (the table-size factor).
func (pc *PrivateCoin) Copies() int { return len(pc.copies) }

// NominalLogCells reports log₂ of the combined table size: the paper's
// s·2^ℓ accounting.
func (pc *PrivateCoin) NominalLogCells() float64 {
	return pc.indexes[0].Tables.Space().NominalLogCells + log2int(len(pc.copies))
}

func log2int(n int) float64 {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return float64(b)
}

var _ Scheme = (*PrivateCoin)(nil)
