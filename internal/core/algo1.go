package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
)

// Algo1 is the simple k-round scheme of Theorem 9 (Algorithm 1 in the
// paper): a τ-way search over the ⌈log_α d⌉+1 ball levels. It maintains
// thresholds l < u with the invariant C_l = ∅ and C_u ≠ ∅; each shrinking
// round probes τ−1 grid levels in parallel and narrows [l, u] by a factor
// ~τ, and the completion round scans the remaining gap. Any point found in
// the first nonempty level C_i with C_{i−1} = ∅ is a γ-approximate nearest
// neighbor (Assumption 2: B_i ⊆ C_i ⊆ B_{i+1}).
type Algo1 struct {
	idx *Index
	k   int
	tau int

	// firstGrid is the deterministic first-round probe grid: with l=0,
	// u=L fixed at entry, the first round's levels depend only on (L, τ,
	// k), never on the query. PrimeBatch exploits this to precompute the
	// grid's query sketches for a whole batch with the blocked kernel.
	firstGrid []int
}

// NewAlgo1 builds the scheme with round budget k ≥ 1 on the shared index.
// τ is the smallest integer ≥ 2 with τ·(τ/2)^{k−1} ≥ ⌈log_α d⌉, realizing
// the paper's τ = Θ((log d)^{1/k}).
func NewAlgo1(idx *Index, k int) *Algo1 {
	if k < 1 {
		panic("core: Algo1 needs k >= 1")
	}
	a := &Algo1{idx: idx, k: k, tau: algo1Tau(idx.Fam.L, k)}
	l, u := 0, idx.Fam.L
	a.firstGrid = make([]int, 0, u-l)
	if u-l < a.tau || k <= 1 { // mirrors QueryWithCtx's first-round test
		for i := l + 1; i <= u; i++ {
			a.firstGrid = append(a.firstGrid, i)
		}
	} else {
		a.firstGrid = appendShrinkGrid(a.firstGrid, l, u, a.tau)
	}
	return a
}

func algo1Tau(levels, k int) int {
	if k == 1 {
		// No shrinking rounds: the completion round scans every level.
		return levels + 1
	}
	for tau := 2; ; tau++ {
		// τ·(τ/2)^{k−1} ≥ levels, computed in floats to avoid overflow.
		prod := float64(tau)
		for i := 1; i < k; i++ {
			prod *= float64(tau) / 2
			if prod >= float64(levels) {
				break
			}
		}
		if prod >= float64(levels) {
			return tau
		}
	}
}

// Name implements Scheme.
func (a *Algo1) Name() string { return fmt.Sprintf("algo1(k=%d)", a.k) }

// Rounds implements Scheme.
func (a *Algo1) Rounds() int { return a.k }

// Tau exposes the per-round parallelism for the tradeoff experiments.
func (a *Algo1) Tau() int { return a.tau }

// ProbeBound returns the scheme's worst-case probe count
// (τ−1)(k−1) + τ + 2, the quantity Theorem 9 bounds by O(k(log d)^{1/k}).
func (a *Algo1) ProbeBound() int {
	if a.k == 1 {
		return a.idx.Fam.L + 2
	}
	return (a.tau-1)*(a.k-1) + a.tau + 2
}

// Query implements Scheme via a pooled execution context.
func (a *Algo1) Query(x bitvec.Vector) Result {
	return queryPooled(func(c *QueryCtx) Result { return a.QueryWithCtx(x, c) })
}

// QueryWithCtx runs the algorithm on a caller-supplied execution context
// (pooled by the serving layers; recording for the communication
// translation). The Result's Stats alias context-owned memory.
func (a *Algo1) QueryWithCtx(x bitvec.Vector, c *QueryCtx) Result {
	idx := a.idx
	c.begin(idx, x, a.k)
	cp := c.cp
	l, u := 0, idx.Fam.L
	first := true

	for {
		completion := u-l < a.tau || cp.RoundsLeft() <= 1
		if first {
			stageDegenerate(cp, idx, x)
		}
		grid := c.grid[:0]
		if completion {
			for i := l + 1; i <= u; i++ {
				grid = append(grid, i)
			}
		} else {
			grid = appendShrinkGrid(grid, l, u, a.tau)
		}
		c.grid = grid
		for _, i := range grid {
			bt := idx.Tables.Ball[i]
			cp.Stage(bt.Table(), bt.AddressOfSketch(c.sk.accurate(i)))
		}
		words, err := cp.Flush()
		if err != nil {
			return Result{Index: -1, Stats: cp.Stats(), Err: err}
		}
		if first {
			if ans, ok := degenerateAnswer(words[0], words[1]); ok {
				return Result{Index: ans, Stats: cp.Stats(), Degenerate: true}
			}
			words = words[2:]
			first = false
		}
		if completion {
			for _, w := range words {
				if w.Kind == cellprobe.Point {
					return Result{Index: w.Index, Stats: cp.Stats()}
				}
			}
			return Result{Index: -1, Stats: cp.Stats(), Violated: true, Err: errNoAnswer(l, u)}
		}
		// Shrinking round: r* is the smallest grid position with a nonempty
		// level; the gap collapses to (ρ(r*−1), ρ(r*)].
		rStar := len(grid) // == τ−1 positions; τ means "none nonempty"
		for gi, w := range words {
			if w.Kind == cellprobe.Point {
				rStar = gi
				break
			}
		}
		var newL, newU int
		if rStar == len(grid) {
			newL, newU = grid[len(grid)-1], u
		} else if rStar == 0 {
			newL, newU = l, grid[0]
		} else {
			newL, newU = grid[rStar-1], grid[rStar]
		}
		if newL < l || newU > u || newL >= newU {
			return Result{Index: -1, Stats: cp.Stats(), Violated: true,
				Err: fmt.Errorf("core: invariant broke: [%d,%d] -> [%d,%d]", l, u, newL, newU)}
		}
		l, u = newL, newU
	}
}

// PrimeBatch implements BatchPrimer. The first round of Algorithm 1
// probes a fixed level grid (see firstGrid), so its query sketches
// M_i·x can be computed for B queries at once with the matrix walked a
// single time per level (sketch.Matrix.ApplyBatchInto). Sketching is the
// querier's own work in the cell-probe model — it touches no tables and
// costs no probes — so primed and unprimed executions are bit-identical
// in both answers and accounting.
//
// dsts is caller scratch with len(dsts) >= len(ctxs); ctxs[q] must next
// run this scheme on xs[q] (same backing array) for the priming to take.
func (a *Algo1) PrimeBatch(ctxs []*QueryCtx, xs []bitvec.Vector, dsts []bitvec.Vector) {
	fam := a.idx.Fam
	dsts = dsts[:len(ctxs)]
	for q, c := range ctxs {
		c.sk.prime(fam, xs[q])
	}
	for _, i := range a.firstGrid {
		for q, c := range ctxs {
			dsts[q] = c.sk.accBuf(i)
		}
		fam.Accurate[i].ApplyBatchInto(dsts, xs[:len(ctxs)])
		for _, c := range ctxs {
			c.sk.accOK[i] = true
		}
	}
}

// appendShrinkGrid appends the probe levels ρ(r) = ⌊l + r(u−l)/τ⌋ for
// r = 1..τ−1 to dst (the context's grid scratch). The guard u−l ≥ τ makes
// consecutive grid points distinct.
func appendShrinkGrid(dst []int, l, u, tau int) []int {
	for r := 1; r <= tau-1; r++ {
		dst = append(dst, l+r*(u-l)/tau)
	}
	return dst
}
