package core

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func privateCoinFactory(t *testing.T, d int, db []bitvec.Vector) SchemeFactory {
	t.Helper()
	return func(seed uint64) (Scheme, *Index) {
		idx := BuildIndex(db, d, Params{Gamma: 2, Seed: seed})
		return NewAlgo1(idx, 2), idx
	}
}

func TestPrivateCoinStructure(t *testing.T) {
	r := rng.New(200)
	db := make([]bitvec.Vector, 60)
	for i := range db {
		db[i] = hamming.Random(r, 256)
	}
	pc := NewPrivateCoin(2, 300, 400, privateCoinFactory(t, 256, db))
	if pc.Copies() != 4 {
		t.Errorf("copies = %d, want 2^2", pc.Copies())
	}
	if pc.Rounds() != 2 {
		t.Errorf("rounds = %d", pc.Rounds())
	}
	if pc.Name() == "" {
		t.Error("empty name")
	}
	// Table size accounting: base + ell bits.
	base, _ := privateCoinFactory(t, 256, db)(300)
	_ = base
	single := BuildIndex(db, 256, Params{Gamma: 2, Seed: 300})
	if got, want := pc.NominalLogCells(), single.Tables.Space().NominalLogCells+2; got < want-0.5 || got > want+0.5 {
		t.Errorf("nominal log cells %v, want ≈ %v", got, want)
	}
}

func TestPrivateCoinQueryCostsMatchPublicCoin(t *testing.T) {
	// Lemma 5's point: rounds and probes are untouched by the transform.
	r := rng.New(201)
	db := make([]bitvec.Vector, 80)
	for i := range db {
		db[i] = hamming.Random(r, 512)
	}
	pc := NewPrivateCoin(2, 500, 501, privateCoinFactory(t, 512, db))
	pub, _ := privateCoinFactory(t, 512, db)(500)
	pubScheme := pub.(*Algo1)
	ok := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		x := hamming.AtDistance(r, db[trial], 512, 20)
		res := pc.Query(x)
		if res.Stats.Rounds > 2 {
			t.Fatalf("private-coin used %d rounds", res.Stats.Rounds)
		}
		if res.Stats.Probes > pubScheme.ProbeBound() {
			t.Fatalf("private-coin used %d probes > public bound %d",
				res.Stats.Probes, pubScheme.ProbeBound())
		}
		if !res.Failed() && hamming.IsApproxNearest(db, x, db[res.Index], 2) {
			ok++
		}
	}
	if ok < trials*3/4 {
		t.Errorf("private-coin correct on %d/%d", ok, trials)
	}
}

func TestPrivateCoinUsesDifferentCopies(t *testing.T) {
	r := rng.New(202)
	db := make([]bitvec.Vector, 40)
	for i := range db {
		db[i] = hamming.Random(r, 256)
	}
	pc := NewPrivateCoin(3, 600, 601, privateCoinFactory(t, 256, db))
	// With 8 copies and many queries, at least two distinct probe counts
	// or answers should appear for a fixed query... probe counts may tie;
	// instead check the selection stream itself is non-constant by
	// querying many times and watching for any variation in stats.
	x := hamming.AtDistance(r, db[7], 256, 30)
	seen := map[int]bool{}
	for i := 0; i < 32; i++ {
		res := pc.Query(x)
		seen[res.Stats.Probes] = true
	}
	// Not a hard guarantee, but 8 independent families almost surely
	// disagree somewhere in probe counts over 32 draws.
	if len(seen) < 2 {
		t.Log("all copies gave identical probe counts (possible but unlikely); not failing")
	}
}

func TestPrivateCoinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized ell did not panic")
		}
	}()
	NewPrivateCoin(13, 1, 2, nil)
}

func TestLiteralDeltaCutBreaksLowerNesting(t *testing.T) {
	// The ablation's mechanism, as a unit test: with the literal Definition
	// 7 threshold, points at distance exactly αⁱ are mostly *excluded* from
	// C_i (threshold below their expected sketch distance), while the
	// midpoint reading includes them.
	r := rng.New(203)
	db := make([]bitvec.Vector, 50)
	for i := range db {
		db[i] = hamming.Random(r, 1024)
	}
	x := hamming.Random(r, 1024)
	level := 12 // radius α^12 = 64
	radius := 64
	// Plant points at exactly the level radius.
	for i := 0; i < 10; i++ {
		db[i] = hamming.AtDistance(r, x, 1024, radius)
	}
	count := func(p Params) int {
		idx := BuildIndex(db, 1024, p)
		sx := idx.Fam.Accurate[level].Apply(x)
		n := 0
		for _, m := range idx.Tables.Ball[level].MembersOfC(sx) {
			if m < 10 {
				n++
			}
		}
		return n
	}
	mid := count(Params{Gamma: 2, Seed: 204})
	lit := count(Params{Gamma: 2, Seed: 204, LiteralDeltaCut: true})
	if mid < 8 {
		t.Errorf("midpoint cut captured only %d/10 boundary points", mid)
	}
	if lit >= mid {
		t.Errorf("literal cut captured %d ≥ midpoint's %d — expected exclusion", lit, mid)
	}
}

func TestCutFractionMonotone(t *testing.T) {
	// Larger cut fraction ⇒ looser threshold ⇒ larger C_i.
	r := rng.New(205)
	db := make([]bitvec.Vector, 60)
	for i := range db {
		db[i] = hamming.Random(r, 512)
	}
	x := hamming.Random(r, 512)
	sizes := []int{}
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		idx := BuildIndex(db, 512, Params{Gamma: 2, Seed: 206, CutFraction: frac})
		sx := idx.Fam.Accurate[idx.Fam.L-1].Apply(x)
		sizes = append(sizes, idx.Tables.Ball[idx.Fam.L-1].CountC(sx))
	}
	if sizes[0] > sizes[1] || sizes[1] > sizes[2] {
		t.Errorf("C sizes not monotone in cut fraction: %v", sizes)
	}
}
