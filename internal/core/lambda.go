package core

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
)

// Lambda is the folklore 1-probe scheme of Theorem 11 for the approximate
// λ-near neighbor *search* problem λ-ANNS: given λ, probe the single cell
// T_i[M_i x] at level i = ⌈log_α λ⌉. If some database point lies within
// distance λ of x then B_i ≠ ∅, so (Assumption 2) C_i ≠ ∅ and the cell
// holds a point at distance ≤ αⁱ⁺¹ ≤ γλ; if no point lies within γλ then
// B_{i+1} = ∅ ⊇ C_i and the cell is EMPTY.
type Lambda struct {
	idx *Index
}

// NewLambda builds the 1-probe scheme over the shared index.
func NewLambda(idx *Index) *Lambda { return &Lambda{idx: idx} }

// Name implements Scheme.
func (s *Lambda) Name() string { return "lambda-anns" }

// Rounds implements Scheme (always one round).
func (s *Lambda) Rounds() int { return 1 }

// Level returns the probed level i = ⌈log_α λ⌉ clamped into [0, L].
func (s *Lambda) Level(lambda float64) int {
	if lambda < 1 {
		lambda = 1
	}
	i := int(math.Ceil(math.Log(lambda) / math.Log(s.idx.Fam.Alpha)))
	if i < 0 {
		i = 0
	}
	if i > s.idx.Fam.L {
		i = s.idx.Fam.L
	}
	return i
}

// QueryNear answers the λ-ANNS problem with exactly one cell-probe.
// Index ≥ 0 means "a point within γλ was found"; Index < 0 with nil Err is
// the legitimate NO answer (no λ-near neighbor exists, up to the scheme's
// error probability).
func (s *Lambda) QueryNear(x bitvec.Vector, lambda float64) Result {
	return queryPooled(func(c *QueryCtx) Result { return s.QueryNearWithCtx(x, lambda, c) })
}

// QueryNearWithCtx is QueryNear on a caller-supplied execution context.
// The Result's Stats alias context-owned memory.
func (s *Lambda) QueryNearWithCtx(x bitvec.Vector, lambda float64, c *QueryCtx) Result {
	c.begin(s.idx, x, 1)
	cp := c.cp
	i := s.Level(lambda)
	bt := s.idx.Tables.Ball[i]
	cp.Stage(bt.Table(), bt.AddressOfSketch(c.sk.accurate(i)))
	words, err := cp.Flush()
	if err != nil {
		return Result{Index: -1, Stats: cp.Stats(), Err: err}
	}
	if words[0].Kind == cellprobe.Point {
		return Result{Index: words[0].Index, Stats: cp.Stats()}
	}
	return Result{Index: -1, Stats: cp.Stats()}
}

// Query implements Scheme by treating λ = 1; full ANNS callers should use
// Algo1/Algo2, but the interface conformance keeps reporting uniform.
func (s *Lambda) Query(x bitvec.Vector) Result { return s.QueryNear(x, 1) }

// QueryWithCtx implements CtxScheme with the same λ = 1 convention.
func (s *Lambda) QueryWithCtx(x bitvec.Vector, c *QueryCtx) Result {
	return s.QueryNearWithCtx(x, 1, c)
}

var _ CtxScheme = (*Lambda)(nil)

// String renders the decision semantics for documentation/tests.
func (s *Lambda) String() string {
	return fmt.Sprintf("lambda-anns(gamma=%v, levels=%d)", s.idx.P.Gamma, s.idx.Fam.L+1)
}
