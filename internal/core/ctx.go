package core

import (
	"sync"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/sketch"
)

// QueryCtx is the pooled per-query execution context of the schemes: it
// bundles the cell-probe context (staged refs, round accounting,
// transcript) with every scrap of scratch memory one query execution
// needs — the per-level query sketches M_i·x and N_j·x, the shrinking
// grid, the auxiliary-group coarse slice, and the boosted-stats
// accumulator. A context is acquired once per request (AcquireQueryCtx)
// and threaded through every layer; at steady state a query allocates
// nothing.
//
// A context is not safe for concurrent use; concurrent queries each take
// their own from the pool.
type QueryCtx struct {
	cp *cellprobe.QueryCtx

	sk     sketchScratch
	grid   []int           // shrinking/completion grid scratch
	coarse []bitvec.Vector // aux-group coarse sketch scratch (Algo2)
	agg    cellprobe.Stats // boosted repetition accumulator
}

// NewQueryCtx returns a fresh, reusable context. Callers that issue many
// queries (batch workers, server workers) hold one and pass it to the
// schemes' QueryWithCtx entry points.
func NewQueryCtx() *QueryCtx {
	return &QueryCtx{cp: cellprobe.NewQueryCtx(0)}
}

// NewRecordingQueryCtx returns a context whose cell-probe layer keeps a
// full transcript (Probe().Transcript()), for the communication
// translation and debugging. Recording contexts are not pooled.
func NewRecordingQueryCtx() *QueryCtx {
	return &QueryCtx{cp: cellprobe.NewRecordingQueryCtx(0)}
}

// Probe exposes the cell-probe context (stats, transcript, round budget).
// The slices it hands out are reused by the next query on this context.
func (c *QueryCtx) Probe() *cellprobe.QueryCtx { return c.cp }

// begin rebinds the context to one (index, query, budget) execution.
func (c *QueryCtx) begin(idx *Index, x bitvec.Vector, k int) {
	c.cp.Reset(k)
	c.sk.bind(idx.Fam, x)
}

// queryCtxPool recycles contexts across queries and goroutines. The
// scratch inside adapts to whatever index it is bound to, so one pool
// serves all indexes (boosted repetitions, shards) in the process.
var queryCtxPool = sync.Pool{New: func() any { return NewQueryCtx() }}

// AcquireQueryCtx takes a context from the shared pool.
func AcquireQueryCtx() *QueryCtx {
	return queryCtxPool.Get().(*QueryCtx)
}

// ReleaseQueryCtx returns a context to the pool. The caller must have
// detached (Clone) any Stats slice it intends to keep.
func ReleaseQueryCtx(c *QueryCtx) {
	if c == nil || c.cp == nil {
		return
	}
	queryCtxPool.Put(c)
}

// sketchScratch caches the per-level query sketches M_i·x (and N_j·x when
// present) for one query execution, in buffers that survive across
// queries. Computing them is the algorithm's own work (it owns x and the
// public randomness) and costs no probes; recomputation is avoided within
// a query, reallocation across queries.
type sketchScratch struct {
	fam      *sketch.Family
	x        bitvec.Vector
	acc      []bitvec.Vector
	accOK    []bool
	coarse   []bitvec.Vector
	coarseOK []bool

	// primedFam/primedX record a pending PrimeBatch precomputation: the
	// next bind with exactly this (family, query) pair keeps the accurate
	// sketches already in acc instead of resetting accOK. One-shot — bind
	// always clears the mark, so a context reused for an unrelated query
	// never serves stale sketches.
	primedFam *sketch.Family
	primedX   bitvec.Vector
}

func (s *sketchScratch) bind(fam *sketch.Family, x bitvec.Vector) {
	s.shape(fam)
	keep := s.primedFam == fam && len(x) > 0 &&
		len(s.primedX) == len(x) && &s.primedX[0] == &x[0]
	s.primedFam, s.primedX = nil, nil
	s.x = x
	for i := range s.accOK {
		if !keep {
			s.accOK[i] = false
		}
		s.coarseOK[i] = false
	}
}

// shape sizes the per-level buffers for fam, invalidating everything when
// the family changes.
func (s *sketchScratch) shape(fam *sketch.Family) {
	n := fam.L + 1
	if s.fam != fam || len(s.acc) != n {
		s.fam = fam
		s.acc = resizeVecs(s.acc, n)
		s.accOK = resizeBools(s.accOK, n)
		s.coarse = resizeVecs(s.coarse, n)
		s.coarseOK = resizeBools(s.coarseOK, n)
	}
}

// prime prepares the scratch for a forthcoming bind to (fam, x): buffers
// are shaped, every sketch is invalidated, and the pair is remembered so
// that bind preserves whatever accurate sketches PrimeBatch fills in
// between. Identity of x is by backing array — the batch layer passes the
// same slice to prime and to the query.
func (s *sketchScratch) prime(fam *sketch.Family, x bitvec.Vector) {
	s.shape(fam)
	for i := range s.accOK {
		s.accOK[i] = false
		s.coarseOK[i] = false
	}
	s.primedFam, s.primedX = fam, x
}

// accBuf returns level i's accurate-sketch buffer, sized for the bound
// family, without computing anything — the PrimeBatch destination.
func (s *sketchScratch) accBuf(i int) bitvec.Vector {
	if len(s.acc[i]) != bitvec.Words(s.fam.AccurateRows()) {
		s.acc[i] = bitvec.New(s.fam.AccurateRows())
	}
	return s.acc[i]
}

func resizeVecs(v []bitvec.Vector, n int) []bitvec.Vector {
	if cap(v) < n {
		return make([]bitvec.Vector, n)
	}
	return v[:n]
}

func resizeBools(v []bool, n int) []bool {
	if cap(v) < n {
		return make([]bool, n)
	}
	return v[:n]
}

// accurate returns M_i·x, computing it into the level's reusable buffer
// on first use within the current query.
func (s *sketchScratch) accurate(i int) bitvec.Vector {
	if !s.accOK[i] {
		s.fam.Accurate[i].ApplyInto(s.accBuf(i), s.x)
		s.accOK[i] = true
	}
	return s.acc[i]
}

// coarseAt returns N_j·x under the same reuse discipline.
func (s *sketchScratch) coarseAt(j int) bitvec.Vector {
	if s.fam.Coarse == nil {
		panic("core: scheme needs a coarse sketch family (Params.S > 0)")
	}
	if !s.coarseOK[j] {
		want := bitvec.Words(s.fam.CoarseRows())
		if len(s.coarse[j]) != want {
			s.coarse[j] = bitvec.New(s.fam.CoarseRows())
		}
		s.fam.Coarse[j].ApplyInto(s.coarse[j], s.x)
		s.coarseOK[j] = true
	}
	return s.coarse[j]
}
