package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
)

// Boosted amplifies a scheme's success probability by independent parallel
// repetition (§2): because the correctness of candidate answers is
// monotone once the query is known — nearer is never worse — running R
// independent copies in parallel and keeping the returned point closest to
// x turns success probability p into 1−(1−p)^R, without adding rounds.
//
// Independence requires independent public randomness, so a Boosted scheme
// owns R full indexes built from distinct seeds; this multiplies space by
// R, matching the paper's "polynomial addition to the table size".
type Boosted struct {
	schemes []Scheme
	indexes []*Index
	name    string
}

// SchemeFactory builds one repetition from a seed.
type SchemeFactory func(seed uint64) (Scheme, *Index)

// NewBoosted builds R independent repetitions using the factory with seeds
// baseSeed, baseSeed+1, ….
func NewBoosted(r int, baseSeed uint64, factory SchemeFactory) *Boosted {
	if r < 1 {
		panic("core: Boosted needs r >= 1")
	}
	b := &Boosted{}
	for i := 0; i < r; i++ {
		s, idx := factory(baseSeed + uint64(i))
		b.schemes = append(b.schemes, s)
		b.indexes = append(b.indexes, idx)
	}
	b.name = fmt.Sprintf("boosted(%s, r=%d)", b.schemes[0].Name(), r)
	return b
}

// NewBoostedOver wraps already-built repetitions (parallel build or
// snapshot load): schemes[i] must run over indexes[i].
func NewBoostedOver(schemes []Scheme, indexes []*Index) *Boosted {
	if len(schemes) < 1 || len(schemes) != len(indexes) {
		panic("core: NewBoostedOver needs matching non-empty schemes and indexes")
	}
	b := &Boosted{schemes: schemes, indexes: indexes}
	b.name = fmt.Sprintf("boosted(%s, r=%d)", schemes[0].Name(), len(schemes))
	return b
}

// Reps returns the repetition count.
func (b *Boosted) Reps() int { return len(b.indexes) }

// Name implements Scheme.
func (b *Boosted) Name() string { return b.name }

// Index returns repetition i's index. Callers that need one shared index
// for auxiliary schemes (the λ-ANNS path, space accounting) reuse
// Index(0) instead of building the seed-0 index a second time.
func (b *Boosted) Index(i int) *Index { return b.indexes[i] }

// Rounds implements Scheme: repetitions run in parallel, so the round
// count is the maximum over copies.
func (b *Boosted) Rounds() int {
	r := 0
	for _, s := range b.schemes {
		if s.Rounds() > r {
			r = s.Rounds()
		}
	}
	return r
}

// Query implements Scheme via a pooled execution context.
func (b *Boosted) Query(x bitvec.Vector) Result {
	return queryPooled(func(c *QueryCtx) Result { return b.QueryWithCtx(x, c) })
}

// QueryWithCtx implements CtxScheme: the repetitions run serially on the
// *same* context (each rebinds the sketch scratch to its own index), and
// their results merge by keeping the candidate closest to x. Stats are
// merged as parallel composition — probes add, rounds take the maximum —
// into the context's accumulator, so the merge allocates nothing at
// steady state.
func (b *Boosted) QueryWithCtx(x bitvec.Vector, c *QueryCtx) Result {
	best := Result{Index: -1}
	bestDist := -1
	c.agg = cellprobe.Stats{ProbesPerRound: c.agg.ProbesPerRound[:0]}
	for i, s := range b.schemes {
		var r Result
		if cs, ok := s.(CtxScheme); ok {
			r = cs.QueryWithCtx(x, c)
		} else {
			r = s.Query(x)
		}
		// r.Stats alias the context, which the next repetition resets:
		// fold them into the accumulator before continuing.
		c.agg.Add(r.Stats)
		best.Degenerate = best.Degenerate || r.Degenerate
		best.Violated = best.Violated || r.Violated
		if r.Index >= 0 {
			d := bitvec.Distance(b.indexes[i].DBRow(r.Index), x)
			if bestDist < 0 || d < bestDist {
				bestDist = d
				best.Index = r.Index
				best.Err = nil
			}
		} else if best.Index < 0 && best.Err == nil {
			best.Err = r.Err
		}
	}
	best.Stats = c.agg
	return best
}

var _ CtxScheme = (*Boosted)(nil)
