package core

import (
	"fmt"

	"repro/internal/bitvec"
)

// Boosted amplifies a scheme's success probability by independent parallel
// repetition (§2): because the correctness of candidate answers is
// monotone once the query is known — nearer is never worse — running R
// independent copies in parallel and keeping the returned point closest to
// x turns success probability p into 1−(1−p)^R, without adding rounds.
//
// Independence requires independent public randomness, so a Boosted scheme
// owns R full indexes built from distinct seeds; this multiplies space by
// R, matching the paper's "polynomial addition to the table size".
type Boosted struct {
	schemes []Scheme
	dbs     [][]bitvec.Vector
	name    string
}

// SchemeFactory builds one repetition from a seed.
type SchemeFactory func(seed uint64) (Scheme, *Index)

// NewBoosted builds R independent repetitions using the factory with seeds
// baseSeed, baseSeed+1, ….
func NewBoosted(r int, baseSeed uint64, factory SchemeFactory) *Boosted {
	if r < 1 {
		panic("core: Boosted needs r >= 1")
	}
	b := &Boosted{}
	for i := 0; i < r; i++ {
		s, idx := factory(baseSeed + uint64(i))
		b.schemes = append(b.schemes, s)
		b.dbs = append(b.dbs, idx.DB)
	}
	b.name = fmt.Sprintf("boosted(%s, r=%d)", b.schemes[0].Name(), r)
	return b
}

// Name implements Scheme.
func (b *Boosted) Name() string { return b.name }

// Rounds implements Scheme: repetitions run in parallel, so the round
// count is the maximum over copies.
func (b *Boosted) Rounds() int {
	r := 0
	for _, s := range b.schemes {
		if s.Rounds() > r {
			r = s.Rounds()
		}
	}
	return r
}

// Query implements Scheme: it merges the repetitions' results, keeping the
// candidate closest to x. Stats are merged as parallel composition: probes
// add, rounds take the maximum.
func (b *Boosted) Query(x bitvec.Vector) Result {
	best := Result{Index: -1}
	bestDist := -1
	for i, s := range b.schemes {
		r := s.Query(x)
		if i == 0 {
			best.Stats = r.Stats
		} else {
			best.Stats.Add(r.Stats)
		}
		best.Degenerate = best.Degenerate || r.Degenerate
		best.Violated = best.Violated || r.Violated
		if r.Index >= 0 {
			d := bitvec.Distance(b.dbs[i][r.Index], x)
			if bestDist < 0 || d < bestDist {
				bestDist = d
				best.Index = r.Index
				best.Err = nil
			}
		} else if best.Index < 0 && best.Err == nil {
			best.Err = r.Err
		}
	}
	return best
}

var _ Scheme = (*Boosted)(nil)
