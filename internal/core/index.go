// Package core implements the paper's cell-probing schemes:
//
//   - Algo1: the simple k-round scheme of Theorem 2/9, O(k·(log d)^{1/k})
//     probes for every k ≥ 1;
//   - Algo2: the sophisticated scheme of Theorem 3/10 for larger k,
//     O(k + ((log d)/k)^{c/k}) probes, using the coarse approximations
//     D_{i,j} through the auxiliary tables;
//   - Lambda: the folklore 1-probe scheme for approximate λ-near neighbor
//     search of Theorem 11;
//   - Boosted: success amplification by independent parallel repetition
//     (§2, public-coin remark), preserving the number of rounds.
//
// All schemes are public-coin: the sketch family drawn from Params.Seed is
// shared between the table oracles and the querier, exactly as in §3's
// presentation; Lemma 5 / Proposition 6 convert this to a private-coin
// scheme with an O(dn) table blowup, which we account analytically.
package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/sketch"
	"repro/internal/table"
)

// Params configures an index. Zero values select documented defaults.
type Params struct {
	Gamma float64 // approximation ratio γ > 1 (default 2)
	C1    float64 // accurate sketch rows multiplier (default sketch.DefaultC1)
	C2    float64 // coarse sketch rows multiplier (default sketch.DefaultC2)
	CExp  float64 // Algorithm 2's constant c > 2 (default 3)
	K     int     // round budget for the schemes built on this index (default 2)
	S     float64 // Algorithm 2's s; 0 derives it from K and CExp per §3.2
	Seed  uint64  // public randomness seed

	// CutFraction and LiteralDeltaCut are forwarded to the sketch family
	// for the threshold-placement ablation (sketch.Params documentation).
	CutFraction     float64
	LiteralDeltaCut bool
}

func (p Params) withDefaults() Params {
	if p.Gamma == 0 {
		p.Gamma = 2
	}
	if p.CExp == 0 {
		p.CExp = 3
	}
	if p.K == 0 {
		p.K = 2
	}
	if p.S == 0 {
		// s = (1/4 − 1/(2c))·k − 1/4, clamped to ≥ 1 so that small round
		// budgets (below the paper's k > 5c²/(c−2) regime) still run; with
		// s = 1 Algorithm 2 degrades gracefully toward Algorithm 1.
		p.S = (0.25-1/(2*p.CExp))*float64(p.K) - 0.25
		if p.S < 1 {
			p.S = 1
		}
	}
	return p
}

// Index is the preprocessed data structure: the database, the public
// sketch family, and every table the schemes probe.
type Index struct {
	P Params
	D int
	// DB holds per-point views of the database when the index was built
	// from a caller's slice (free — it is that slice). Snapshot-loaded
	// indexes leave it nil and serve rows straight from the flat block;
	// use DBRow/DBVectors/N, which handle both.
	DB     []bitvec.Vector
	Fam    *sketch.Family
	Tables *table.Set
}

// N returns the database size.
func (ix *Index) N() int { return ix.Tables.DBBlock.Rows() }

// DBRow returns database point i without materializing the per-row
// header slice — a view of the caller's slice or of the flat block
// (which on the mmap path is the snapshot file itself).
func (ix *Index) DBRow(i int) bitvec.Vector {
	if ix.DB != nil {
		return ix.DB[i]
	}
	return ix.Tables.DBBlock.Row(i)
}

// DBVectors returns per-point views of the whole database, materializing
// the header slice once for snapshot-loaded indexes.
func (ix *Index) DBVectors() []bitvec.Vector {
	if ix.DB != nil {
		return ix.DB
	}
	return ix.Tables.Vectors()
}

// BuildIndex preprocesses the database of d-dimensional points. The
// per-level database sketches stay lazy (computed on first probe), which
// suits the experiment harness; serving callers use BuildIndexParallel.
func BuildIndex(db []bitvec.Vector, d int, p Params) *Index {
	if len(db) == 0 {
		panic("core: empty database")
	}
	p = p.withDefaults()
	fam := sketch.NewFamily(p.SketchParams(d, len(db)))
	return &Index{P: p, D: d, DB: db, Fam: fam, Tables: table.NewSet(fam, db)}
}

// BuildIndexParallel is the eager build path: it draws the sketch family
// and materializes every per-level database sketch block across a worker
// pool (workers <= 1 runs the same eager build sequentially — the
// benchmark baseline). The resulting index answers its first query at
// steady-state cost and snapshots without further computation.
func BuildIndexParallel(db []bitvec.Vector, d int, p Params, workers int) *Index {
	if len(db) == 0 {
		panic("core: empty database")
	}
	p = p.withDefaults()
	fam := sketch.NewFamilyParallel(p.SketchParams(d, len(db)), workers)
	ts := table.NewSet(fam, db)
	ts.Materialize(workers)
	return &Index{P: p, D: d, DB: db, Fam: fam, Tables: ts}
}

// NewIndexFromParts assembles an index around an already-built family and
// table set — the snapshot load path. p must be normalized (a saved
// index's P always is); the database is the table set's flat block.
func NewIndexFromParts(p Params, d int, fam *sketch.Family, ts *table.Set) *Index {
	return &Index{P: p, D: d, Fam: fam, Tables: ts}
}

// SketchParams maps index parameters to the sketch substrate's (used
// by the snapshot layer to rebuild families from saved parameters).
func (p Params) SketchParams(d, n int) sketch.Params {
	return sketch.Params{
		D: d, N: n, Gamma: p.Gamma,
		C1: p.C1, C2: p.C2, S: p.S, Seed: p.Seed,
		CutFraction: p.CutFraction, LiteralDeltaCut: p.LiteralDeltaCut,
	}
}

// Result is the outcome of one query execution.
type Result struct {
	Index      int             // returned database point index; -1 on failure
	Stats      cellprobe.Stats // probe/round accounting
	Degenerate bool            // answered by a degenerate-case membership probe
	Violated   bool            // a run-time check caught an assumption violation
	Err        error
}

// Failed reports whether the scheme produced no answer.
func (r Result) Failed() bool { return r.Index < 0 || r.Err != nil }

// Scheme is a cell-probing scheme over a shared index.
type Scheme interface {
	// Query answers one query point.
	Query(x bitvec.Vector) Result
	// Name identifies the scheme in reports.
	Name() string
	// Rounds returns the scheme's round budget k.
	Rounds() int
}

// CtxScheme is a Scheme that supports pooled execution contexts: the
// serving layers acquire one QueryCtx per worker (or per request) and
// thread it through every query instead of allocating per probe. The
// returned Result's Stats alias context-owned memory; callers that
// outlive the context must Clone them.
type CtxScheme interface {
	Scheme
	QueryWithCtx(x bitvec.Vector, c *QueryCtx) Result
}

// BatchPrimer is a CtxScheme whose first probe round is query-independent,
// so a batch of queries can have that round's sketches precomputed with
// the register-blocked kernel (one matrix traversal feeds the whole
// batch) before the per-query executions run. Priming is a pure
// optimization: answers and cell-probe accounting are unchanged.
//
// Contract: after PrimeBatch(ctxs, xs, dsts), the caller runs
// QueryWithCtx(xs[q], ctxs[q]) for each q — same query slice, same
// context. dsts is caller scratch with len(dsts) >= len(ctxs).
type BatchPrimer interface {
	CtxScheme
	PrimeBatch(ctxs []*QueryCtx, xs []bitvec.Vector, dsts []bitvec.Vector)
}

// queryPooled runs one CtxScheme query on a pool-acquired context and
// detaches the stats — the implementation behind every Scheme.Query.
func queryPooled(run func(c *QueryCtx) Result) Result {
	c := AcquireQueryCtx()
	res := run(c)
	res.Stats = res.Stats.Clone()
	ReleaseQueryCtx(c)
	return res
}

// stageDegenerate stages the two first-round membership probes of §3.1.
func stageDegenerate(cp *cellprobe.QueryCtx, idx *Index, x bitvec.Vector) {
	cp.Stage(idx.Tables.Exact.Table(), idx.Tables.Exact.Address(x))
	cp.Stage(idx.Tables.Near.Table(), idx.Tables.Near.Address(x))
}

// degenerateAnswer inspects the two membership words; ok reports a hit.
func degenerateAnswer(exact, near cellprobe.Word) (idx int, ok bool) {
	if exact.Kind == cellprobe.Point {
		return exact.Index, true
	}
	if near.Kind == cellprobe.Point {
		return near.Index, true
	}
	return -1, false
}

// errNoAnswer is produced when the completion round finds every probed
// level EMPTY — possible only when the sketch assumptions failed.
func errNoAnswer(l, u int) error {
	return fmt.Errorf("core: completion found no nonempty level in (%d, %d]", l, u)
}
