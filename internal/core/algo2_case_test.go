package core

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/workload"
)

// TestAlgo2ExercisesPhases verifies that on a large enough instance the
// shrinking phases actually run (the algorithm is not just a completion
// scan) and that the case distribution is sane: every completed query ends
// in exactly one completion, and phases occurred.
func TestAlgo2ExercisesPhases(t *testing.T) {
	r := rng.New(400)
	const d, n = 16384, 150
	in := workload.PlantedNN(r, d, n, 20, d/32)
	idx := BuildIndex(in.DB, d, Params{Gamma: 2, K: 12, Seed: 401})
	a := NewAlgo2(idx, 12)
	answered := 0
	for _, qu := range in.Queries {
		res := a.Query(qu.X)
		if !res.Failed() && !res.Degenerate {
			answered++
		}
	}
	c := a.Cases()
	if c.Completions == 0 {
		t.Fatal("no completions recorded")
	}
	phases := c.Case1 + c.Case2 + c.Case3
	if phases == 0 {
		t.Errorf("no shrinking phases ran at d=%d, k=12 (tau=%d)", d, a.Tau())
	}
	t.Logf("cases: %+v over %d answered queries", c, answered)
}

// TestAlgo2Case3OnClusters drives the |C_u|-shrinking branch: clustered
// databases make |B_i| jump by large factors, which is when some
// D_{u,ρ(r)} holds a large fraction of C_u at a small level and the
// follow-up probe finds C_{ρ(r*−1)−1} nonempty.
func TestAlgo2Case3OnClusters(t *testing.T) {
	r := rng.New(402)
	const d, n = 16384, 160
	in := workload.Clustered(r, d, n, 25, 3, d/64)
	idx := BuildIndex(in.DB, d, Params{Gamma: 2, K: 12, Seed: 403})
	a := NewAlgo2(idx, 12)
	for _, qu := range in.Queries {
		a.Query(qu.X)
	}
	c := a.Cases()
	t.Logf("clustered cases: %+v", c)
	if c.Case1+c.Case2+c.Case3 == 0 {
		t.Error("no phases ran on the clustered workload")
	}
	// Correctness still holds on the clustered workload.
	ok := 0
	for _, qu := range in.Queries {
		res := a.Query(qu.X)
		if !res.Failed() && hamming.IsApproxNearest(in.DB, qu.X, in.DB[res.Index], 2) {
			ok++
		}
	}
	if ok < len(in.Queries)*3/4 {
		t.Errorf("clustered success %d/%d", ok, len(in.Queries))
	}
}

// TestAlgo2ProbeBoundHolds sweeps workloads and verifies equation (4)'s
// bound is respected by every query.
func TestAlgo2ProbeBoundHolds(t *testing.T) {
	r := rng.New(404)
	const d, n = 4096, 120
	in := workload.PlantedNN(r, d, n, 15, d/32)
	for _, k := range []int{6, 10, 14} {
		idx := BuildIndex(in.DB, d, Params{Gamma: 2, K: k, Seed: 405})
		a := NewAlgo2(idx, k)
		for _, qu := range in.Queries {
			res := a.Query(qu.X)
			if res.Stats.Probes > a.ProbeBound() {
				t.Errorf("k=%d: %d probes > bound %d", k, res.Stats.Probes, a.ProbeBound())
			}
		}
	}
}

// TestAlgo2AgainstAlgo1Answers cross-checks the two schemes: on the same
// index both must return γ-valid answers for the same queries (they may
// disagree on which point, but both within γ).
func TestAlgo2AgainstAlgo1Answers(t *testing.T) {
	r := rng.New(406)
	const d, n = 4096, 130
	in := workload.PlantedNN(r, d, n, 20, d/32)
	idx := BuildIndex(in.DB, d, Params{Gamma: 2, K: 10, Seed: 407})
	a1 := NewAlgo1(idx, 10)
	a2 := NewAlgo2(idx, 10)
	both := 0
	for _, qu := range in.Queries {
		r1 := a1.Query(qu.X)
		r2 := a2.Query(qu.X)
		if r1.Failed() || r2.Failed() {
			continue
		}
		ok1 := hamming.IsApproxNearest(in.DB, qu.X, in.DB[r1.Index], 2)
		ok2 := hamming.IsApproxNearest(in.DB, qu.X, in.DB[r2.Index], 2)
		if ok1 && ok2 {
			both++
		}
	}
	if both < len(in.Queries)*3/4 {
		t.Errorf("both schemes valid on only %d/%d", both, len(in.Queries))
	}
}

// TestAlgo2DegenerateMember mirrors the Algo1 degenerate tests.
func TestAlgo2DegenerateMember(t *testing.T) {
	r := rng.New(408)
	db := make([]bitvec.Vector, 60)
	for i := range db {
		db[i] = hamming.Random(r, 512)
	}
	idx := BuildIndex(db, 512, Params{Gamma: 2, K: 6, Seed: 409})
	a := NewAlgo2(idx, 6)
	res := a.Query(db[17])
	if res.Failed() || !res.Degenerate {
		t.Fatalf("member query: %+v", res)
	}
	if !bitvec.Equal(db[res.Index], db[17]) {
		t.Error("wrong member returned")
	}
}
