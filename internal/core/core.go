package core
