package core

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

// samePrimedResult pins the full outcome — answer and every accounting
// field — between a primed and an unprimed execution.
func samePrimedResult(t *testing.T, label string, q int, a, b Result) {
	t.Helper()
	if a.Index != b.Index || a.Degenerate != b.Degenerate || a.Violated != b.Violated ||
		(a.Err == nil) != (b.Err == nil) {
		t.Fatalf("%s: query %d answers diverged: %+v vs %+v", label, q, a, b)
	}
	sa, sb := a.Stats, b.Stats
	if sa.Rounds != sb.Rounds || sa.Probes != sb.Probes ||
		sa.BitsRead != sb.BitsRead || sa.AddrBitsSent != sb.AddrBitsSent {
		t.Fatalf("%s: query %d accounting diverged: %+v vs %+v", label, q, sa, sb)
	}
	if len(sa.ProbesPerRound) != len(sb.ProbesPerRound) {
		t.Fatalf("%s: query %d round shapes diverged", label, q)
	}
	for r := range sa.ProbesPerRound {
		if sa.ProbesPerRound[r] != sb.ProbesPerRound[r] {
			t.Fatalf("%s: query %d round %d probes %d vs %d",
				label, q, r, sa.ProbesPerRound[r], sb.ProbesPerRound[r])
		}
	}
}

// TestPrimeBatchIdentity: a primed execution must be bit-identical to an
// unprimed one — same answers, same probe/round/bit accounting — for
// budgets that take the shrinking path and the completion-only path.
func TestPrimeBatchIdentity(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		idx, db := buildTestIndex(t, 160, 60, Params{K: k})
		a := NewAlgo1(idx, k)
		r := rng.New(uint64(4000 + k))
		xs := make([]bitvec.Vector, 13) // deliberately not the chunk width
		for i := range xs {
			if i%2 == 0 {
				xs[i] = hamming.AtDistance(r, db[i], 160, 1+i*5)
			} else {
				xs[i] = hamming.Random(r, 160)
			}
		}
		ctxs := make([]*QueryCtx, len(xs))
		for i := range ctxs {
			ctxs[i] = NewQueryCtx()
		}
		dsts := make([]bitvec.Vector, len(xs))
		a.PrimeBatch(ctxs, xs, dsts)
		for q, x := range xs {
			primed := a.QueryWithCtx(x, ctxs[q])
			primed.Stats = primed.Stats.Clone()
			plain := a.Query(x)
			samePrimedResult(t, "primed-vs-plain", q, primed, plain)
		}
	}
}

// TestPrimeBatchOneShot: priming must not leak into later queries on the
// same context — neither for a different query on the primed context nor
// for a reuse of the context after the primed query ran.
func TestPrimeBatchOneShot(t *testing.T) {
	idx, db := buildTestIndex(t, 128, 48, Params{K: 2})
	a := NewAlgo1(idx, 2)
	r := rng.New(4100)
	x1 := hamming.AtDistance(r, db[0], 128, 7)
	x2 := hamming.AtDistance(r, db[1], 128, 9)

	// Prime for x1, then run x2 on the primed context: the stale priming
	// must be discarded, answering exactly like a fresh context.
	c := NewQueryCtx()
	a.PrimeBatch([]*QueryCtx{c}, []bitvec.Vector{x1}, make([]bitvec.Vector, 1))
	got := a.QueryWithCtx(x2, c)
	got.Stats = got.Stats.Clone()
	samePrimedResult(t, "stale-prime", 0, got, a.Query(x2))

	// Prime for x1, run it, then run x1 again on the same context: the
	// second execution is unprimed (bind cleared the mark) and must agree.
	a.PrimeBatch([]*QueryCtx{c}, []bitvec.Vector{x1}, make([]bitvec.Vector, 1))
	first := a.QueryWithCtx(x1, c)
	first.Stats = first.Stats.Clone()
	second := a.QueryWithCtx(x1, c)
	second.Stats = second.Stats.Clone()
	samePrimedResult(t, "reuse-after-prime", 0, first, second)
}
