package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/table"
)

// CaseCounters tallies which branch each shrinking phase took, across all
// queries of one Algo2 instance. Purely observational (tests and the
// ablation benches read it); counted atomically so concurrent queries are
// safe.
type CaseCounters struct {
	Case1       int64 // r* = 1: upper threshold collapses, no second round
	Case2       int64 // probe EMPTY: both thresholds move
	Case3       int64 // probe non-EMPTY: |C_u| shrinks by ~n^{-1/s}
	Completions int64
}

// Algo2 is the sophisticated scheme of Theorem 10 (Algorithm 2 in the
// paper). Each shrinking *phase* spends at most two rounds: the first
// probes T_u[M_u x] plus ⌈(τ−1)/s⌉ auxiliary cells, each of which batches
// up to s coarse set-size tests |D_{u,ρ(r)}| ≷ n^{−1/s}|C_u|; depending on
// the smallest "large" grid position r*, the second round probes a single
// ball cell to decide between CASE 2 (both thresholds move) and CASE 3
// (the upper set shrinks: |C_{u'}| ≤ 2n^{−1/s}|C_u|). The completion round
// fires once the gap drops below max(3τ, k).
type Algo2 struct {
	idx  *Index
	k    int
	tau  int
	s    float64 // the real-valued s of §3.2 (exponent in n^{−1/s})
	sCap int     // group capacity: coarse tests per auxiliary probe

	cases CaseCounters
}

// NewAlgo2 builds the scheme with round budget k ≥ 2 on an index whose
// family includes the coarse matrices (Params.S > 0 at build time).
func NewAlgo2(idx *Index, k int) *Algo2 {
	if k < 2 {
		panic("core: Algo2 needs k >= 2")
	}
	if idx.Fam.Coarse == nil {
		panic("core: Algo2 needs an index built with Params.S > 0")
	}
	s := idx.P.S
	sCap := int(math.Floor(s))
	if sCap < 1 {
		sCap = 1
	}
	return &Algo2{idx: idx, k: k, s: s, sCap: sCap, tau: algo2Tau(idx.Fam.L, k, idx.P.CExp, s)}
}

// algo2Tau returns the smallest integer τ ≥ 2 with
// (τ/2)^{(k−1)/2−2s} ≥ ⌈L/k⌉, the condition in §3.2 that bounds the number
// of gap-shrinking phases by (k−1)/2 − 2s. With s set by the defaulting
// rule, the exponent equals k/c and τ = Θ(((log d)/k)^{c/k}).
func algo2Tau(levels, k int, c, s float64) int {
	exp := (float64(k)-1)/2 - 2*s
	if exp < 1 {
		exp = 1
	}
	target := math.Ceil(float64(levels) / float64(k))
	if target < 1 {
		target = 1
	}
	tau := int(math.Ceil(2 * math.Pow(target, 1/exp)))
	if tau < 2 {
		tau = 2
	}
	_ = c // c enters through s; kept as a parameter for the ablation bench
	return tau
}

// Name implements Scheme.
func (a *Algo2) Name() string { return fmt.Sprintf("algo2(k=%d)", a.k) }

// Rounds implements Scheme.
func (a *Algo2) Rounds() int { return a.k }

// Tau exposes the grid width for the tradeoff experiments.
func (a *Algo2) Tau() int { return a.tau }

// S exposes the group parameter.
func (a *Algo2) S() float64 { return a.s }

// Cases returns a snapshot of the phase-branch counters.
func (a *Algo2) Cases() CaseCounters {
	return CaseCounters{
		Case1:       atomic.LoadInt64(&a.cases.Case1),
		Case2:       atomic.LoadInt64(&a.cases.Case2),
		Case3:       atomic.LoadInt64(&a.cases.Case3),
		Completions: atomic.LoadInt64(&a.cases.Completions),
	}
}

// ProbeBound returns the worst-case probe count of §3.2 equation (4):
// (k−1)/2 · (⌈(τ−1)/s⌉ + 2) + max(3τ, k).
func (a *Algo2) ProbeBound() int {
	perPhase := (a.tau-2)/a.sCap + 1 + 2
	completion := 3 * a.tau
	if a.k > completion {
		completion = a.k
	}
	return (a.k-1)/2*perPhase + completion + 2
}

// Query implements Scheme via a pooled execution context.
func (a *Algo2) Query(x bitvec.Vector) Result {
	return queryPooled(func(c *QueryCtx) Result { return a.QueryWithCtx(x, c) })
}

// QueryWithCtx runs the algorithm on a caller-supplied execution context.
// The Result's Stats alias context-owned memory.
func (a *Algo2) QueryWithCtx(x bitvec.Vector, c *QueryCtx) Result {
	idx := a.idx
	c.begin(idx, x, a.k)
	cp := c.cp
	l, u := 0, idx.Fam.L
	first := true
	violated := false

	completionGap := 3 * a.tau
	if a.k > completionGap {
		completionGap = a.k
	}

	for {
		if u-l < completionGap || cp.RoundsLeft() <= 2 {
			return a.completion(x, c, l, u, first, violated)
		}
		// ---- Shrinking phase, first round -------------------------------
		grid := appendShrinkGrid(c.grid[:0], l, u, a.tau) // ρ(1) .. ρ(τ−1)
		c.grid = grid
		if first {
			stageDegenerate(cp, idx, x)
		}
		topBall := idx.Tables.Ball[u]
		cp.Stage(topBall.Table(), topBall.AddressOfSketch(c.sk.accurate(u)))
		// Algorithm 2's packing of the τ−1 coarse tests into ⌈(τ−1)/s⌉
		// auxiliary probes: consecutive groups of at most sCap grid levels.
		aux := idx.Tables.Aux[u]
		for g := 0; g < len(grid); g += a.sCap {
			end := g + a.sCap
			if end > len(grid) {
				end = len(grid)
			}
			levels := grid[g:end]
			coarse := c.coarse[:0]
			for _, lv := range levels {
				coarse = append(coarse, c.sk.coarseAt(lv))
			}
			c.coarse = coarse
			q := table.AuxQuery{SketchX: c.sk.accurate(u), Levels: levels, Coarse: coarse}
			cp.Stage(aux.Table(), aux.Address(q))
		}
		words, err := cp.Flush()
		if err != nil {
			return Result{Index: -1, Stats: cp.Stats(), Err: err}
		}
		if first {
			if ans, ok := degenerateAnswer(words[0], words[1]); ok {
				return Result{Index: ans, Stats: cp.Stats(), Degenerate: true}
			}
			words = words[2:]
			first = false
		}
		topWord := words[0]
		if topWord.Kind == cellprobe.Empty {
			// C_u = ∅ contradicts the loop invariant: Assumption 2 failed.
			violated = true
		}
		auxWords := words[1:]
		// r* = smallest grid position (1-based over [1, τ−1]) whose D set is
		// large; τ when none is.
		rStar := a.tau
		for gi, w := range auxWords {
			if w.Kind == cellprobe.Int && w.Value > 0 {
				rStar = gi*a.sCap + w.Value
				break
			}
		}
		// ---- Case analysis ----------------------------------------------
		rho := func(r int) int { // ρ(r) over the full grid, ρ(0)=l, ρ(τ)=u
			if r <= 0 {
				return l
			}
			if r >= a.tau {
				return u
			}
			return grid[r-1]
		}
		var newL, newU int
		switch {
		case rStar == 1: // CASE 1: no second round in this phase
			atomic.AddInt64(&a.cases.Case1, 1)
			newL, newU = l, rho(1)+1
		default:
			probe := rho(rStar-1) - 1
			if probe < 0 {
				probe = 0
			}
			bt := idx.Tables.Ball[probe]
			cp.Stage(bt.Table(), bt.AddressOfSketch(c.sk.accurate(probe)))
			bw, err := cp.Flush()
			if err != nil {
				return Result{Index: -1, Stats: cp.Stats(), Err: err}
			}
			if bw[0].Kind == cellprobe.Empty { // CASE 2
				atomic.AddInt64(&a.cases.Case2, 1)
				newL = probe
				newU = u
				if rStar < a.tau {
					newU = rho(rStar) + 1
				}
			} else { // CASE 3: C_{ρ(r*−1)−1} nonempty; upper set shrinks
				atomic.AddInt64(&a.cases.Case3, 1)
				newL, newU = l, probe
			}
		}
		if newU > u {
			newU = u
		}
		if newL >= newU || newL < l {
			// Possible only under assumption failure; salvage via completion.
			violated = true
			return a.completion(x, c, l, u, first, violated)
		}
		l, u = newL, newU
	}
}

// completion runs the final round: scan levels (l, u] and return the first
// nonempty one. It also carries the degenerate probes if no round ran yet.
func (a *Algo2) completion(x bitvec.Vector, c *QueryCtx, l, u int, first, violated bool) Result {
	atomic.AddInt64(&a.cases.Completions, 1)
	idx := a.idx
	cp := c.cp
	if first {
		stageDegenerate(cp, idx, x)
	}
	for i := l + 1; i <= u; i++ {
		bt := idx.Tables.Ball[i]
		cp.Stage(bt.Table(), bt.AddressOfSketch(c.sk.accurate(i)))
	}
	words, err := cp.Flush()
	if err != nil {
		return Result{Index: -1, Stats: cp.Stats(), Err: err, Violated: violated}
	}
	if first {
		if ans, ok := degenerateAnswer(words[0], words[1]); ok {
			return Result{Index: ans, Stats: cp.Stats(), Degenerate: true}
		}
		words = words[2:]
	}
	for _, w := range words {
		if w.Kind == cellprobe.Point {
			return Result{Index: w.Index, Stats: cp.Stats(), Violated: violated}
		}
	}
	return Result{Index: -1, Stats: cp.Stats(), Violated: true, Err: errNoAnswer(l, u)}
}
