package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/workload"
)

// TestAlgo1Smoke is the first end-to-end check: Algorithm 1 returns
// γ-approximate nearest neighbors on a planted workload, within its round
// and probe budgets.
func TestAlgo1Smoke(t *testing.T) {
	r := rng.New(1)
	const d, n, q = 512, 200, 20
	in := workload.PlantedNN(r, d, n, q, 24)
	idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, Seed: 7})
	for _, k := range []int{1, 2, 3, 4} {
		a := core.NewAlgo1(idx, k)
		ok := 0
		for _, qu := range in.Queries {
			res := a.Query(qu.X)
			if res.Failed() {
				t.Logf("k=%d query failed: %v", k, res.Err)
				continue
			}
			if res.Stats.Rounds > k {
				t.Fatalf("k=%d used %d rounds", k, res.Stats.Rounds)
			}
			if res.Stats.Probes > a.ProbeBound() {
				t.Fatalf("k=%d used %d probes > bound %d", k, res.Stats.Probes, a.ProbeBound())
			}
			if hamming.IsApproxNearest(in.DB, qu.X, in.DB[res.Index], 2) {
				ok++
			}
		}
		if ok < q*3/4 {
			t.Errorf("k=%d: only %d/%d queries gamma-approximate", k, ok, q)
		}
	}
}

func TestAlgo2Smoke(t *testing.T) {
	r := rng.New(2)
	const d, n, q = 512, 200, 20
	in := workload.PlantedNN(r, d, n, q, 24)
	idx := core.BuildIndex(in.DB, d, core.Params{Gamma: 2, K: 6, Seed: 7})
	a := core.NewAlgo2(idx, 6)
	ok := 0
	for _, qu := range in.Queries {
		res := a.Query(qu.X)
		if res.Failed() {
			t.Logf("query failed: %v", res.Err)
			continue
		}
		if res.Stats.Rounds > 6 {
			t.Fatalf("used %d rounds", res.Stats.Rounds)
		}
		if hamming.IsApproxNearest(in.DB, qu.X, in.DB[res.Index], 2) {
			ok++
		}
	}
	if ok < q*3/4 {
		t.Errorf("only %d/%d queries gamma-approximate", ok, q)
	}
}
