package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

// sharedQuickIndex is built once: property tests draw random queries
// against it.
var quickIdx *Index

func getQuickIndex() *Index {
	if quickIdx == nil {
		r := rng.New(321)
		db := make([]bitvec.Vector, 70)
		for i := range db {
			db[i] = hamming.Random(r, 256)
		}
		quickIdx = BuildIndex(db, 256, Params{Gamma: 2, K: 6, Seed: 22})
	}
	return quickIdx
}

// quickQuery generates a random query point: either near a database point
// or uniform, exercising both regimes.
type quickQuery struct {
	X bitvec.Vector
	K int
}

func (quickQuery) Generate(r *rand.Rand, _ int) reflect.Value {
	idx := getQuickIndex()
	src := rng.New(r.Uint64())
	var x bitvec.Vector
	if r.Intn(2) == 0 {
		base := idx.DB[r.Intn(len(idx.DB))]
		x = hamming.AtDistance(src, base, 256, r.Intn(120))
	} else {
		x = hamming.Random(src, 256)
	}
	return reflect.ValueOf(quickQuery{X: x, K: 1 + r.Intn(5)})
}

// TestQuickAlgo1Budget: for every random query and round budget, Algorithm
// 1 never exceeds its round budget, never exceeds its probe bound, and per
// round issues at most τ+2 parallel probes.
func TestQuickAlgo1Budget(t *testing.T) {
	f := func(q quickQuery) bool {
		a := NewAlgo1(getQuickIndex(), q.K)
		res := a.Query(q.X)
		return res.Stats.Rounds <= q.K &&
			res.Stats.Probes <= a.ProbeBound() &&
			res.Stats.MaxProbesInRound() <= a.Tau()+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickAlgo2Budget: same discipline for Algorithm 2 (k ≥ 2).
func TestQuickAlgo2Budget(t *testing.T) {
	f := func(q quickQuery) bool {
		k := q.K
		if k < 2 {
			k = 2
		}
		a := NewAlgo2(getQuickIndex(), k)
		res := a.Query(q.X)
		return res.Stats.Rounds <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickAnswerIsDatabasePoint: any non-failed answer indexes a real
// database point, and a degenerate answer is within distance 1.
func TestQuickAnswerValid(t *testing.T) {
	f := func(q quickQuery) bool {
		idx := getQuickIndex()
		a := NewAlgo1(idx, q.K)
		res := a.Query(q.X)
		if res.Failed() {
			return true
		}
		if res.Index < 0 || res.Index >= len(idx.DB) {
			return false
		}
		if res.Degenerate && bitvec.Distance(idx.DB[res.Index], q.X) > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterministicInSeed: the same query against the same index
// yields the same answer and accounting (all randomness is in the family).
func TestQuickDeterministic(t *testing.T) {
	f := func(q quickQuery) bool {
		a := NewAlgo1(getQuickIndex(), q.K)
		r1 := a.Query(q.X)
		r2 := a.Query(q.X)
		return r1.Index == r2.Index && r1.Stats.Probes == r2.Stats.Probes &&
			r1.Stats.Rounds == r2.Stats.Rounds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
