package core

import (
	"fmt"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func benchIndex(b *testing.B, d, n int, k int) (*Index, []bitvec.Vector) {
	b.Helper()
	r := rng.New(777)
	db := make([]bitvec.Vector, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	return BuildIndex(db, d, Params{Gamma: 2, K: k, Seed: 778}), db
}

// BenchmarkAlgo1ByK sweeps the round budget: the per-op time tracks the
// probe count's k(log d)^{1/k} shape (each probe is one lazy cell eval on
// first touch, then a memo hit).
func BenchmarkAlgo1ByK(b *testing.B) {
	idx, db := benchIndex(b, 1024, 250, 4)
	r := rng.New(900)
	queries := make([]bitvec.Vector, 32)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, db[i], 1024, 40)
	}
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			a := NewAlgo1(idx, k)
			a.Query(queries[0]) // warm lazy sketches
			b.ReportAllocs()
			b.ResetTimer()
			probes := 0
			for i := 0; i < b.N; i++ {
				probes += a.Query(queries[i%len(queries)]).Stats.Probes
			}
			b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
		})
	}
}

func BenchmarkAlgo2Query(b *testing.B) {
	idx, db := benchIndex(b, 1024, 250, 10)
	r := rng.New(901)
	queries := make([]bitvec.Vector, 32)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, db[i], 1024, 40)
	}
	a := NewAlgo2(idx, 10)
	a.Query(queries[0])
	b.ReportAllocs()
	b.ResetTimer()
	probes := 0
	for i := 0; i < b.N; i++ {
		probes += a.Query(queries[i%len(queries)]).Stats.Probes
	}
	b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
}

func BenchmarkLambdaQuery(b *testing.B) {
	idx, db := benchIndex(b, 1024, 250, 2)
	r := rng.New(902)
	queries := make([]bitvec.Vector, 32)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, db[i], 1024, 8)
	}
	s := NewLambda(idx)
	s.QueryNear(queries[0], 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.QueryNear(queries[i%len(queries)], 8)
	}
}

// BenchmarkQueryAlgo1K2 is the acceptance path of the zero-allocation
// query engine: Algorithm 1 at the default round budget k=2, warmed.
func BenchmarkQueryAlgo1K2(b *testing.B) {
	idx, db := benchIndex(b, 1024, 250, 2)
	r := rng.New(904)
	queries := make([]bitvec.Vector, 32)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, db[i], 1024, 40)
	}
	a := NewAlgo1(idx, 2)
	for _, q := range queries {
		a.Query(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	probes := 0
	for i := 0; i < b.N; i++ {
		probes += a.Query(queries[i%len(queries)]).Stats.Probes
	}
	b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
}

// BenchmarkQueryAlgo2K8 is the Algorithm 2 counterpart at k=8 (auxiliary
// tables on the probe path).
func BenchmarkQueryAlgo2K8(b *testing.B) {
	idx, db := benchIndex(b, 1024, 250, 8)
	r := rng.New(905)
	queries := make([]bitvec.Vector, 32)
	for i := range queries {
		queries[i] = hamming.AtDistance(r, db[i], 1024, 40)
	}
	a := NewAlgo2(idx, 8)
	for _, q := range queries {
		a.Query(q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	probes := 0
	for i := 0; i < b.N; i++ {
		probes += a.Query(queries[i%len(queries)]).Stats.Probes
	}
	b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
}

// BenchmarkColdQuery includes the lazy cell evaluations a fresh address
// stream triggers, the realistic "first query of its kind" cost.
func BenchmarkColdQuery(b *testing.B) {
	idx, _ := benchIndex(b, 1024, 250, 3)
	r := rng.New(903)
	a := NewAlgo1(idx, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Query(hamming.Random(r, 1024))
	}
}
