package core

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

// buildTestIndex creates a small index over a random database with one
// point planted near a reference query.
func buildTestIndex(t *testing.T, d, n int, p Params) (*Index, []bitvec.Vector) {
	t.Helper()
	r := rng.New(100)
	db := make([]bitvec.Vector, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	return BuildIndex(db, d, p), db
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Gamma != 2 || p.CExp != 3 || p.K != 2 {
		t.Errorf("defaults: %+v", p)
	}
	if p.S < 1 {
		t.Errorf("defaulted S = %v below clamp", p.S)
	}
	// Large K gives the formula value (1/4 − 1/(2c))k − 1/4.
	q := Params{K: 60, CExp: 3}.withDefaults()
	want := (0.25-1.0/6.0)*60 - 0.25
	if math.Abs(q.S-want) > 1e-9 {
		t.Errorf("S = %v, want %v", q.S, want)
	}
}

func TestBuildIndexPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty database did not panic")
		}
	}()
	BuildIndex(nil, 16, Params{})
}

func TestAlgo1TauCondition(t *testing.T) {
	// τ must satisfy τ·(τ/2)^{k−1} ≥ levels and be minimal.
	for _, levels := range []int{5, 20, 40, 100} {
		for k := 2; k <= 8; k++ {
			tau := algo1Tau(levels, k)
			check := func(tt int) float64 {
				prod := float64(tt)
				for i := 1; i < k; i++ {
					prod *= float64(tt) / 2
				}
				return prod
			}
			if check(tau) < float64(levels) {
				t.Errorf("levels=%d k=%d: tau=%d too small", levels, k, tau)
			}
			if tau > 2 && check(tau-1) >= float64(levels) {
				t.Errorf("levels=%d k=%d: tau=%d not minimal", levels, k, tau)
			}
		}
	}
	if got := algo1Tau(30, 1); got != 31 {
		t.Errorf("k=1 tau = %d, want levels+1", got)
	}
}

func TestAlgo1RespectsRoundBudget(t *testing.T) {
	idx, _ := buildTestIndex(t, 512, 100, Params{Gamma: 2, Seed: 1})
	r := rng.New(5)
	for k := 1; k <= 6; k++ {
		a := NewAlgo1(idx, k)
		for trial := 0; trial < 10; trial++ {
			x := hamming.AtDistance(r, idx.DB[trial], 512, 5+trial*10)
			res := a.Query(x)
			if res.Stats.Rounds > k {
				t.Fatalf("k=%d: %d rounds", k, res.Stats.Rounds)
			}
			if res.Stats.Probes > a.ProbeBound() {
				t.Fatalf("k=%d: %d probes > bound %d", k, res.Stats.Probes, a.ProbeBound())
			}
		}
	}
}

func TestAlgo1PerRoundParallelism(t *testing.T) {
	// Every round issues at most τ+2 parallel probes (τ−1 grid + 2
	// degenerate in round one; ≤ τ in the completion round).
	idx, _ := buildTestIndex(t, 1024, 120, Params{Gamma: 2, Seed: 2})
	r := rng.New(6)
	for _, k := range []int{2, 3, 4} {
		a := NewAlgo1(idx, k)
		for trial := 0; trial < 8; trial++ {
			x := hamming.AtDistance(r, idx.DB[trial], 1024, 30)
			res := a.Query(x)
			if m := res.Stats.MaxProbesInRound(); m > a.Tau()+2 {
				t.Errorf("k=%d: round with %d probes, tau=%d", k, m, a.Tau())
			}
		}
	}
}

func TestAlgo1DegenerateExactMember(t *testing.T) {
	idx, db := buildTestIndex(t, 256, 60, Params{Gamma: 2, Seed: 3})
	a := NewAlgo1(idx, 3)
	res := a.Query(db[11])
	if res.Failed() {
		t.Fatalf("member query failed: %v", res.Err)
	}
	if !res.Degenerate {
		t.Error("member query not answered by degenerate probe")
	}
	if !bitvec.Equal(db[res.Index], db[11]) {
		t.Error("member query returned wrong point")
	}
	if res.Stats.Rounds != 1 {
		t.Errorf("member query used %d rounds", res.Stats.Rounds)
	}
}

func TestAlgo1DegenerateDistanceOne(t *testing.T) {
	idx, db := buildTestIndex(t, 256, 60, Params{Gamma: 2, Seed: 4})
	a := NewAlgo1(idx, 2)
	x := db[5].Clone()
	x.Flip(123)
	res := a.Query(x)
	if res.Failed() || !res.Degenerate {
		t.Fatalf("distance-1 query: %+v", res)
	}
	if d := bitvec.Distance(db[res.Index], x); d > 1 {
		t.Errorf("degenerate answer at distance %d", d)
	}
}

func TestAlgo1AnswerIsFirstNonemptyLevel(t *testing.T) {
	// Post-hoc invariant: the returned point must belong to a level i with
	// C_{i-1} empty... verified indirectly: its distance is within
	// γ·(exact NN distance) whenever no violation was flagged.
	idx, db := buildTestIndex(t, 512, 100, Params{Gamma: 2, Seed: 5})
	r := rng.New(7)
	a := NewAlgo1(idx, 3)
	okCount, total := 0, 0
	for trial := 0; trial < 25; trial++ {
		x := hamming.AtDistance(r, db[trial%len(db)], 512, 10+3*trial)
		res := a.Query(x)
		if res.Failed() || res.Violated {
			continue
		}
		total++
		if hamming.IsApproxNearest(db, x, db[res.Index], 2) {
			okCount++
		}
	}
	if total == 0 {
		t.Fatal("no clean queries")
	}
	if okCount < total*3/4 {
		t.Errorf("only %d/%d clean queries gamma-approximate", okCount, total)
	}
}

func TestShrinkGrid(t *testing.T) {
	grid := appendShrinkGrid(nil, 0, 100, 5)
	want := []int{20, 40, 60, 80}
	if len(grid) != len(want) {
		t.Fatalf("grid %v", grid)
	}
	for i := range want {
		if grid[i] != want[i] {
			t.Fatalf("grid %v, want %v", grid, want)
		}
	}
	// Strictly increasing when u−l ≥ τ.
	grid = appendShrinkGrid(grid[:0], 3, 11, 8)
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Fatalf("grid not increasing: %v", grid)
		}
	}
}

func TestAlgo2Guards(t *testing.T) {
	idx, _ := buildTestIndex(t, 256, 60, Params{Gamma: 2, K: 4, Seed: 6})
	defer func() {
		if recover() == nil {
			t.Fatal("Algo2 with k=1 did not panic")
		}
	}()
	NewAlgo2(idx, 1)
}

func TestAlgo2NeedsCoarseFamily(t *testing.T) {
	// S defaults to >= 1 via withDefaults, so build explicitly without it.
	r := rng.New(8)
	db := make([]bitvec.Vector, 40)
	for i := range db {
		db[i] = hamming.Random(r, 256)
	}
	famOnly := BuildIndex(db, 256, Params{Gamma: 2, S: -1, Seed: 1})
	if famOnly.Fam.Coarse != nil {
		t.Skip("negative S still built coarse family")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Algo2 without coarse family did not panic")
		}
	}()
	NewAlgo2(famOnly, 4)
}

func TestAlgo2RespectsRoundBudget(t *testing.T) {
	idx, db := buildTestIndex(t, 1024, 120, Params{Gamma: 2, K: 8, Seed: 9})
	r := rng.New(10)
	a := NewAlgo2(idx, 8)
	for trial := 0; trial < 10; trial++ {
		x := hamming.AtDistance(r, db[trial], 1024, 25)
		res := a.Query(x)
		if res.Stats.Rounds > 8 {
			t.Fatalf("%d rounds used", res.Stats.Rounds)
		}
	}
}

func TestAlgo2Tau(t *testing.T) {
	// Exponent with derived s equals k/c; τ must satisfy
	// (τ/2)^{exp} ≥ ⌈L/k⌉.
	for _, k := range []int{8, 16, 32} {
		s := (0.25-1.0/6.0)*float64(k) - 0.25
		if s < 1 {
			s = 1
		}
		tau := algo2Tau(40, k, 3, s)
		exp := (float64(k)-1)/2 - 2*s
		if exp < 1 {
			exp = 1
		}
		if math.Pow(float64(tau)/2, exp) < math.Ceil(40.0/float64(k))-1e-9 {
			t.Errorf("k=%d: tau=%d violates phase-count condition", k, tau)
		}
	}
}

func TestQueryCtxReuseAcrossSchemes(t *testing.T) {
	// One context must serve different schemes and indexes back to back
	// (the serving layers hold one per worker) with identical results.
	idxA, db := buildTestIndex(t, 512, 60, Params{Gamma: 2, Seed: 21})
	idxB, _ := buildTestIndex(t, 512, 60, Params{Gamma: 2, K: 4, Seed: 22})
	a1 := NewAlgo1(idxA, 2)
	a2 := NewAlgo2(idxB, 4)
	c := NewQueryCtx()
	r := rng.New(23)
	for trial := 0; trial < 10; trial++ {
		x := hamming.AtDistance(r, db[trial], 512, 15)
		gotA := a1.QueryWithCtx(x, c)
		wantA := a1.Query(x)
		if gotA.Index != wantA.Index || gotA.Stats.Probes != wantA.Stats.Probes ||
			gotA.Stats.Rounds != wantA.Stats.Rounds {
			t.Fatalf("ctx reuse diverged on algo1: %+v vs %+v", gotA, wantA)
		}
		gotB := a2.QueryWithCtx(x, c)
		wantB := a2.Query(x)
		if gotB.Index != wantB.Index || gotB.Stats.Probes != wantB.Stats.Probes {
			t.Fatalf("ctx reuse diverged on algo2: %+v vs %+v", gotB, wantB)
		}
	}
}

func TestLambdaLevelSelection(t *testing.T) {
	idx, _ := buildTestIndex(t, 1024, 80, Params{Gamma: 2, Seed: 11})
	s := NewLambda(idx)
	alpha := math.Sqrt2
	for _, lambda := range []float64{1, 2, 8, 64, 1024} {
		i := s.Level(lambda)
		if i < 0 || i > idx.Fam.L {
			t.Fatalf("level %d out of range", i)
		}
		if lambda > 1 && math.Pow(alpha, float64(i)) < lambda-1e-9 {
			t.Errorf("lambda=%v: level radius %v below lambda", lambda, math.Pow(alpha, float64(i)))
		}
	}
	// Tiny and huge lambdas clamp.
	if s.Level(0.5) != 0 {
		t.Error("small lambda not clamped to 0")
	}
	if s.Level(1e9) != idx.Fam.L {
		t.Error("huge lambda not clamped to L")
	}
}

func TestLambdaYesInstance(t *testing.T) {
	idx, db := buildTestIndex(t, 1024, 100, Params{Gamma: 2, Seed: 12})
	s := NewLambda(idx)
	r := rng.New(13)
	hits := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		x := hamming.AtDistance(r, db[trial], 1024, 8)
		res := s.QueryNear(x, 8)
		if res.Stats.Probes != 1 || res.Stats.Rounds != 1 {
			t.Fatalf("lambda probes=%d rounds=%d", res.Stats.Probes, res.Stats.Rounds)
		}
		if res.Index >= 0 && float64(bitvec.Distance(db[res.Index], x)) <= 2*8 {
			hits++
		}
	}
	if hits < trials*3/4 {
		t.Errorf("YES instances answered %d/%d", hits, trials)
	}
}

func TestLambdaNoInstance(t *testing.T) {
	idx, db := buildTestIndex(t, 1024, 100, Params{Gamma: 2, Seed: 14})
	s := NewLambda(idx)
	r := rng.New(15)
	correct := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		// Uniform random x sits at distance ≈ d/2 = 512 ≫ γλ = 16.
		x := hamming.Random(r, 1024)
		if hamming.MinDistance(db, x) <= 16 {
			continue
		}
		res := s.QueryNear(x, 8)
		if res.Index < 0 && res.Err == nil {
			correct++
		}
	}
	if correct < trials*3/4 {
		t.Errorf("NO instances answered %d/%d", correct, trials)
	}
}

func TestBoostedImprovesOrMatches(t *testing.T) {
	d, n := 512, 90
	r := rng.New(16)
	db := make([]bitvec.Vector, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	factory := func(seed uint64) (Scheme, *Index) {
		idx := BuildIndex(db, d, Params{Gamma: 2, Seed: seed})
		return NewAlgo1(idx, 2), idx
	}
	single, _ := factory(500)
	boosted := NewBoosted(3, 500, factory)
	if boosted.Rounds() != single.Rounds() {
		t.Errorf("boosting changed rounds: %d vs %d", boosted.Rounds(), single.Rounds())
	}
	okSingle, okBoost := 0, 0
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		x := hamming.AtDistance(r, db[trial], d, 20)
		if res := single.Query(x); !res.Failed() && hamming.IsApproxNearest(db, x, db[res.Index], 2) {
			okSingle++
		}
		res := boosted.Query(x)
		if !res.Failed() && hamming.IsApproxNearest(db, x, db[res.Index], 2) {
			okBoost++
		}
		if res.Stats.Rounds > 2 {
			t.Fatalf("boosted used %d rounds", res.Stats.Rounds)
		}
	}
	if okBoost < okSingle {
		t.Errorf("boosting hurt success: %d vs %d", okBoost, okSingle)
	}
}

func TestBoostedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBoosted(0) did not panic")
		}
	}()
	NewBoosted(0, 1, nil)
}

func TestQueryWithRecordingCtx(t *testing.T) {
	idx, db := buildTestIndex(t, 512, 80, Params{Gamma: 2, Seed: 17})
	a := NewAlgo1(idx, 3)
	r := rng.New(18)
	x := hamming.AtDistance(r, db[0], 512, 30)
	c := NewRecordingQueryCtx()
	res := a.QueryWithCtx(x, c)
	tr := c.Probe().Transcript()
	if len(tr) != res.Stats.Probes {
		t.Errorf("transcript %d entries, %d probes", len(tr), res.Stats.Probes)
	}
	// Round tags must be non-decreasing and within budget.
	last := 0
	for _, e := range tr {
		if e.Round < last || e.Round >= 3 {
			t.Fatalf("bad round tag %d", e.Round)
		}
		last = e.Round
	}
}

func TestSchemeNamesAndRounds(t *testing.T) {
	idx, _ := buildTestIndex(t, 256, 50, Params{Gamma: 2, K: 4, Seed: 19})
	if NewAlgo1(idx, 3).Name() != "algo1(k=3)" {
		t.Error(NewAlgo1(idx, 3).Name())
	}
	if NewAlgo2(idx, 4).Name() != "algo2(k=4)" {
		t.Error(NewAlgo2(idx, 4).Name())
	}
	if NewAlgo1(idx, 3).Rounds() != 3 || NewAlgo2(idx, 4).Rounds() != 4 {
		t.Error("rounds accessor wrong")
	}
	if NewLambda(idx).Rounds() != 1 {
		t.Error("lambda rounds")
	}
}
