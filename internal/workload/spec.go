package workload

import (
	"flag"
	"fmt"

	"repro/internal/rng"
)

// Spec is a flag-friendly description of a generated instance. Two
// processes holding the same Spec generate bit-identical instances (the
// generators are deterministic in the seed), which is how cmd/annsd and
// cmd/annsload agree on ground truth without shipping it over the wire.
type Spec struct {
	Kind     string // uniform | planted | clustered | annulus | graded
	D, N, Q  int
	Dist     int     // planted NN distance (planted)
	Clusters int     // cluster count (clustered)
	Rad      int     // cluster radius (clustered)
	Lambda   int     // near threshold (annulus)
	Gamma    float64 // separation ratio (annulus)
	Base     int     // first rung (graded)
	Step     float64 // rung ratio (graded)
	Rungs    int     // rung count (graded)
	Seed     uint64
}

// Generate materializes the instance the spec describes. Parameter
// combinations the generators reject (they panic, as library misuse)
// surface here as errors, since a Spec usually arrives from flags.
func (s Spec) Generate() (in *Instance, err error) {
	if s.D < 2 || s.N < 2 || s.Q < 1 {
		return nil, fmt.Errorf("workload: spec needs d >= 2, n >= 2, q >= 1 (got d=%d n=%d q=%d)",
			s.D, s.N, s.Q)
	}
	defer func() {
		if r := recover(); r != nil {
			in, err = nil, fmt.Errorf("workload: invalid spec: %v", r)
		}
	}()
	r := rng.New(s.Seed)
	switch s.Kind {
	case "uniform":
		return Uniform(r, s.D, s.N, s.Q), nil
	case "planted":
		return PlantedNN(r, s.D, s.N, s.Q, s.Dist), nil
	case "clustered":
		return Clustered(r, s.D, s.N, s.Q, s.Clusters, s.Rad), nil
	case "annulus":
		return Annulus(r, s.D, s.N, s.Q, s.Lambda, s.Gamma), nil
	case "graded":
		return Graded(r, s.D, s.N, s.Q, s.Base, s.Step, s.Rungs), nil
	default:
		return nil, fmt.Errorf("workload: unknown kind %q", s.Kind)
	}
}

// RegisterFlags exposes every Spec field on fs, with the receiver's
// current values as defaults. cmd/annsd and cmd/annsload both call this,
// which is what keeps their generator flag sets (and hence their view of
// the instance) in lockstep.
func (s *Spec) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&s.Kind, "kind", s.Kind, "workload kind: uniform | planted | clustered | annulus | graded")
	fs.IntVar(&s.D, "d", s.D, "dimension")
	fs.IntVar(&s.N, "n", s.N, "database size")
	fs.IntVar(&s.Q, "q", s.Q, "distinct query points (the load harness cycles through them)")
	fs.IntVar(&s.Dist, "dist", s.Dist, "planted NN distance (kind=planted)")
	fs.IntVar(&s.Clusters, "clusters", s.Clusters, "cluster count (kind=clustered)")
	fs.IntVar(&s.Rad, "rad", s.Rad, "cluster radius (kind=clustered)")
	fs.IntVar(&s.Lambda, "lambda", s.Lambda, "near threshold (kind=annulus)")
	fs.Float64Var(&s.Gamma, "wgamma", s.Gamma, "separation ratio (kind=annulus)")
	fs.IntVar(&s.Base, "base", s.Base, "first rung distance (kind=graded)")
	fs.Float64Var(&s.Step, "step", s.Step, "rung ratio (kind=graded)")
	fs.IntVar(&s.Rungs, "rungs", s.Rungs, "rung count (kind=graded)")
	fs.Uint64Var(&s.Seed, "wseed", s.Seed, "workload generator seed")
}

// DefaultSpec is the starting point both serving CLIs register flags
// over: a planted-NN instance big enough to be non-degenerate yet quick
// to index.
func DefaultSpec() Spec {
	return Spec{
		Kind: "planted", D: 512, N: 4096, Q: 512,
		Dist: 40, Clusters: 8, Rad: 30, Lambda: 8, Gamma: 2,
		Base: 8, Step: 2, Rungs: 3, Seed: 1,
	}
}
