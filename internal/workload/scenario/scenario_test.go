package scenario

import (
	"math"
	"testing"
)

// Same seed must compile to an identical schedule; this is what lets two
// harness processes replay the same stream against different servers.
func TestOpsDeterministic(t *testing.T) {
	for _, name := range Names() {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Seed: 7, Theta: 0.99, QueryKeys: 128, WriteKeys: 256}
		a := s.Ops(500, cfg)
		b := s.Ops(500, cfg)
		if len(a) != len(b) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: op %d differs: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
}

func TestOpsSeedSensitivity(t *testing.T) {
	s := HotKeyReads
	cfg1 := Config{Seed: 1, Theta: 0.99, QueryKeys: 128}
	cfg2 := Config{Seed: 2, Theta: 0.99, QueryKeys: 128}
	a, b := s.Ops(200, cfg1), s.Ops(200, cfg2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// The mix ratios must be respected to within sampling noise, and key
// indices must stay in their declared ranges.
func TestOpsMixAndRanges(t *testing.T) {
	cfg := Config{Seed: 42, Theta: 0.99, QueryKeys: 64, WriteKeys: 200}
	const total = 20000
	for _, name := range Names() {
		s, _ := Get(name)
		ops := s.Ops(total, cfg)
		var reads, ins, dels int
		for _, op := range ops {
			switch op.Kind {
			case OpRead:
				reads++
				if op.Key < 0 || op.Key >= cfg.QueryKeys {
					t.Fatalf("%s: read key %d out of range", name, op.Key)
				}
			case OpInsert:
				ins++
				if op.Key < 0 || op.Key >= cfg.WriteKeys {
					t.Fatalf("%s: insert key %d out of range", name, op.Key)
				}
			case OpDelete:
				dels++
				if op.Key < 0 || op.Key >= cfg.WriteKeys {
					t.Fatalf("%s: delete key %d out of range", name, op.Key)
				}
			}
		}
		tol := 0.02
		if got := float64(ins) / total; math.Abs(got-s.InsertRatio) > tol {
			t.Errorf("%s: insert ratio %.3f, want %.3f", name, got, s.InsertRatio)
		}
		if got := float64(dels) / total; math.Abs(got-s.DeleteRatio) > tol {
			t.Errorf("%s: delete ratio %.3f, want %.3f", name, got, s.DeleteRatio)
		}
		if got := float64(reads) / total; math.Abs(got-s.ReadRatio()) > tol {
			t.Errorf("%s: read ratio %.3f, want %.3f", name, got, s.ReadRatio())
		}
	}
}

// Zipfian with θ=0.99 must be visibly skewed (top key far above uniform
// share) and with θ=0 must degenerate to uniform.
func TestZipfianSkew(t *testing.T) {
	const n, draws = 100, 50000
	counts := func(theta float64) []int {
		g := NewGen(DistZipfian, n, theta, 9)
		c := make([]int, n)
		for i := 0; i < draws; i++ {
			c[g.Next()]++
		}
		return c
	}
	maxOf := func(c []int) int {
		m := 0
		for _, v := range c {
			if v > m {
				m = v
			}
		}
		return m
	}
	skewed := counts(0.99)
	// Under zipf(0.99) over 100 keys the top key carries ~19% of mass;
	// uniform would carry 1%. Require a wide margin past uniform.
	if top := float64(maxOf(skewed)) / draws; top < 0.10 {
		t.Errorf("zipf(0.99) top-key share %.3f, want >= 0.10", top)
	}
	flat := counts(0)
	if top := float64(maxOf(flat)) / draws; top > 0.03 {
		t.Errorf("zipf(0) top-key share %.3f, want <= 0.03 (uniform)", top)
	}
}

func TestZipfianScramble(t *testing.T) {
	g := NewGen(DistZipfian, 1000, 1.2, 11).(*zipfian)
	// The hottest rank should not sit at key 0 for this seed; the scramble
	// is what spreads popular keys across the keyspace.
	if g.perm[0] == 0 && g.perm[1] == 1 && g.perm[2] == 2 {
		t.Error("zipfian ranks appear unscrambled")
	}
}

func TestHotspotConcentration(t *testing.T) {
	const n, draws = 640, 20000
	g := NewGen(DistHotspot, n, 0.99, 5).(*hotspot)
	hot := make(map[int]bool, g.hotN)
	for _, k := range g.perm[:g.hotN] {
		hot[k] = true
	}
	inHot := 0
	for i := 0; i < draws; i++ {
		if hot[g.Next()] {
			inHot++
		}
	}
	share := float64(inHot) / draws
	if math.Abs(share-g.hotProb) > 0.03 {
		t.Errorf("hot-set share %.3f, want ~%.3f", share, g.hotProb)
	}
}

func TestSequentialCycles(t *testing.T) {
	g := NewGen(DistSequential, 3, 0, 1)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("draw %d: got %d want %d", i, got, w)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
	if len(Names()) < 5 {
		t.Fatalf("expected >= 5 registered scenarios, got %v", Names())
	}
}
