// Package scenario is a registry of named operation-mix workload scenarios
// in the YCSB tradition: each scenario fixes an operation mix (read /
// insert / delete ratios) and a key-popularity distribution for each
// operation class, and compiles — deterministically from a single seed —
// into a concrete per-operation schedule that load harnesses replay.
//
// Real user traffic is skewed, not uniform; the scenarios here exist so the
// serving stack is measured under the zipfian and hotspot streams it will
// actually see, and so that the query-result cache (internal/qcache) can be
// exercised honestly: a hit-rate number is only meaningful relative to a
// named, reproducible skew.
//
// Determinism follows the same discipline as internal/chaos: one root seed,
// split into labelled child streams (operation mix, read keys, write keys,
// key scramble) via the splitmix64-style rng.Source.Split, so two harness
// processes given the same seed issue byte-identical operation streams —
// which is what lets `annsload -compare` prove a cached server answers
// identically to an uncached one under churn.
package scenario

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// OpKind discriminates schedule entries.
type OpKind int

const (
	// OpRead issues a query for key index Key in [0, QueryKeys).
	OpRead OpKind = iota
	// OpInsert inserts the point derived from key index Key in [0, WriteKeys).
	OpInsert
	// OpDelete deletes the id previously inserted for key index Key.
	OpDelete
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one scheduled operation.
type Op struct {
	Kind OpKind
	// Key is a key index whose meaning depends on Kind: for reads it picks
	// a query from the instance's query set; for inserts it picks a source
	// point; for deletes it picks among previously inserted ids.
	Key int
}

// Dist names a key-popularity distribution.
type Dist string

const (
	// DistUniform draws keys uniformly.
	DistUniform Dist = "uniform"
	// DistZipfian draws keys zipf(θ)-distributed with a seeded scramble so
	// popular ranks scatter across the keyspace.
	DistZipfian Dist = "zipfian"
	// DistHotspot draws from a small hot set with high probability and the
	// cold remainder otherwise.
	DistHotspot Dist = "hotspot"
	// DistSequential cycles keys in order 0,1,...,n-1,0,... (scan-shaped).
	DistSequential Dist = "sequential"
)

// Scenario is a named operation mix. Ratios must sum to at most 1; the
// remainder (1 - insert - delete) is the read ratio.
type Scenario struct {
	Name        string
	Description string

	InsertRatio float64
	DeleteRatio float64

	// ReadDist picks query keys; WriteDist picks insert sources and delete
	// victims.
	ReadDist  Dist
	WriteDist Dist
}

// ReadRatio is the fraction of operations that are queries.
func (s *Scenario) ReadRatio() float64 { return 1 - s.InsertRatio - s.DeleteRatio }

// Config parameterizes schedule compilation.
type Config struct {
	// Seed is the root seed; every random choice derives from it.
	Seed uint64
	// Theta is the zipfian skew exponent (θ=0 is uniform, θ=0.99 is the
	// classic YCSB default, θ>1 is extreme skew). Also sets hotspot
	// concentration: see newGen.
	Theta float64
	// QueryKeys and WriteKeys bound the read / write key index spaces.
	QueryKeys int
	WriteKeys int
}

// Labels for Split so child streams decorrelate; values are arbitrary but
// frozen — changing them changes every compiled schedule.
const (
	tagOpMix    = 0x6f706d6978 // "opmix"
	tagReadKey  = 0x7265616473 // "reads"
	tagWriteKey = 0x7772697465 // "write"
	tagScramble = 0x7363726d62 // "scrmb"
)

// Ops compiles the scenario into a concrete schedule of total operations.
// Identical (scenario, total, cfg) always yields an identical schedule.
func (s *Scenario) Ops(total int, cfg Config) []Op {
	if cfg.QueryKeys <= 0 {
		panic("scenario: Config.QueryKeys must be positive")
	}
	if cfg.WriteKeys <= 0 {
		cfg.WriteKeys = cfg.QueryKeys
	}
	root := rng.New(cfg.Seed)
	mix := root.Split(tagOpMix)
	readGen := newGen(s.ReadDist, cfg.QueryKeys, cfg.Theta, root.Split(tagReadKey), root.Split(tagScramble))
	writeGen := newGen(s.WriteDist, cfg.WriteKeys, cfg.Theta, root.Split(tagWriteKey), root.Split(tagScramble+1))

	ops := make([]Op, total)
	insCut := s.InsertRatio
	delCut := s.InsertRatio + s.DeleteRatio
	for i := range ops {
		u := mix.Float64()
		switch {
		case u < insCut:
			ops[i] = Op{Kind: OpInsert, Key: writeGen.Next()}
		case u < delCut:
			ops[i] = Op{Kind: OpDelete, Key: writeGen.Next()}
		default:
			ops[i] = Op{Kind: OpRead, Key: readGen.Next()}
		}
	}
	return ops
}

// KeyGen yields a deterministic stream of key indices in [0, n).
type KeyGen interface {
	Next() int
}

// NewGen builds a standalone generator for dist over [0, n); exported for
// harnesses (annsctl bench) that drive key streams without a full scenario.
func NewGen(dist Dist, n int, theta float64, seed uint64) KeyGen {
	root := rng.New(seed)
	return newGen(dist, n, theta, root.Split(tagReadKey), root.Split(tagScramble))
}

func newGen(dist Dist, n int, theta float64, src, scrambleSrc *rng.Source) KeyGen {
	switch dist {
	case DistZipfian:
		return newZipfian(n, theta, src, scrambleSrc)
	case DistHotspot:
		return newHotspot(n, theta, src, scrambleSrc)
	case DistSequential:
		return &sequential{n: n}
	case DistUniform, "":
		return &uniform{n: n, src: src}
	default:
		panic(fmt.Sprintf("scenario: unknown distribution %q", dist))
	}
}

type uniform struct {
	n   int
	src *rng.Source
}

func (u *uniform) Next() int { return u.src.Intn(u.n) }

type sequential struct {
	n, i int
}

func (s *sequential) Next() int {
	k := s.i
	s.i++
	if s.i == s.n {
		s.i = 0
	}
	return k
}

// zipfian samples rank r with probability ∝ 1/r^θ via a cumulative table
// and binary search. The table costs O(n) to build and O(log n) per draw,
// works for every θ ≥ 0 (including θ=1, where the YCSB closed form needs a
// special case), and its ranks are scrambled through a seeded permutation
// so the hottest keys scatter across the keyspace instead of clustering at
// index zero.
type zipfian struct {
	cdf  []float64
	perm []int
	src  *rng.Source
}

func newZipfian(n int, theta float64, src, scrambleSrc *rng.Source) *zipfian {
	if theta < 0 {
		panic("scenario: zipfian theta must be >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfian{cdf: cdf, perm: scrambleSrc.Perm(n), src: src}
}

func (z *zipfian) Next() int {
	u := z.src.Float64()
	r := sort.SearchFloat64s(z.cdf, u)
	if r == len(z.cdf) {
		r = len(z.cdf) - 1
	}
	return z.perm[r]
}

// hotspot draws from a hot set of max(1, n/64) keys with probability
// min(0.9, 0.5+θ/4) and uniformly from the cold remainder otherwise; θ
// reuses the skew knob so one flag shapes both distributions.
type hotspot struct {
	perm    []int
	hotN    int
	hotProb float64
	src     *rng.Source
}

func newHotspot(n int, theta float64, src, scrambleSrc *rng.Source) *hotspot {
	hotN := n / 64
	if hotN < 1 {
		hotN = 1
	}
	p := 0.5 + theta/4
	if p > 0.9 {
		p = 0.9
	}
	return &hotspot{perm: scrambleSrc.Perm(n), hotN: hotN, hotProb: p, src: src}
}

func (h *hotspot) Next() int {
	if h.src.Bernoulli(h.hotProb) {
		return h.perm[h.src.Intn(h.hotN)]
	}
	if h.hotN == len(h.perm) {
		return h.perm[h.src.Intn(h.hotN)]
	}
	return h.perm[h.hotN+h.src.Intn(len(h.perm)-h.hotN)]
}

// registry of named scenarios.
var registry = map[string]*Scenario{}

func register(s *Scenario) *Scenario {
	registry[s.Name] = s
	return s
}

var (
	// Uniform is the pre-scenario annsload behaviour: a pure read stream
	// with uniformly popular queries.
	Uniform = register(&Scenario{
		Name:        "uniform",
		Description: "100% reads, uniform key popularity (legacy default)",
		ReadDist:    DistUniform,
	})
	// HotKeyReads is the cache showcase: a pure read stream whose
	// popularity is zipf(θ).
	HotKeyReads = register(&Scenario{
		Name:        "hot-key-reads",
		Description: "100% reads, zipfian key popularity",
		ReadDist:    DistZipfian,
	})
	// HotspotDeletes keeps a mostly-read stream but aims its deletes at a
	// small hot set, stressing cache invalidation on popular keys.
	HotspotDeletes = register(&Scenario{
		Name:        "hotspot-deletes",
		Description: "80% zipfian reads, 10% inserts, 10% hotspot deletes",
		InsertRatio: 0.10,
		DeleteRatio: 0.10,
		ReadDist:    DistZipfian,
		WriteDist:   DistHotspot,
	})
	// ScanInsertChurn interleaves sequential scan-shaped reads with a
	// write-heavy churn, the worst case for a popularity cache.
	ScanInsertChurn = register(&Scenario{
		Name:        "scan-insert-churn",
		Description: "70% sequential-scan reads, 20% inserts, 10% deletes",
		InsertRatio: 0.20,
		DeleteRatio: 0.10,
		ReadDist:    DistSequential,
		WriteDist:   DistUniform,
	})
	// ConstantOccupancy matches insert and delete rates so the mutable
	// tier's live count stays flat while generations keep advancing.
	ConstantOccupancy = register(&Scenario{
		Name:        "constant-occupancy",
		Description: "70% zipfian reads, 15% inserts, 15% deletes (flat live count)",
		InsertRatio: 0.15,
		DeleteRatio: 0.15,
		ReadDist:    DistZipfian,
		WriteDist:   DistUniform,
	})
)

// Get returns the named scenario or an error listing valid names.
func Get(name string) (*Scenario, error) {
	if s, ok := registry[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
}

// Names lists registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
