package workload

import (
	"flag"
	"testing"

	"repro/internal/bitvec"
)

// TestSpecDeterminism is the property cmd/annsd and cmd/annsload lean on:
// the same spec generates bit-identical instances in separate processes.
func TestSpecDeterminism(t *testing.T) {
	spec := Spec{Kind: "planted", D: 192, N: 60, Q: 10, Dist: 12, Seed: 7}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.DB) != len(b.DB) || len(a.Queries) != len(b.Queries) {
		t.Fatal("sizes differ across generations")
	}
	for i := range a.DB {
		if !bitvec.Equal(a.DB[i], b.DB[i]) {
			t.Fatalf("db point %d differs", i)
		}
	}
	for i := range a.Queries {
		if !bitvec.Equal(a.Queries[i].X, b.Queries[i].X) ||
			a.Queries[i].NNDist != b.Queries[i].NNDist {
			t.Fatalf("query %d differs", i)
		}
	}
}

// TestSpecDeterminismAllKinds extends the two-process contract to every
// generator kind: the shard-split path (annsctl) and the serving path
// (annsd, annsload) each call Generate independently, and the
// distributed smoke's byte-identical comparison is only sound if every
// kind is bit-deterministic in the seed — DB points, query points, and
// ground truth alike.
func TestSpecDeterminismAllKinds(t *testing.T) {
	base := DefaultSpec()
	base.D, base.N, base.Q, base.Seed = 128, 64, 8, 99
	for _, kind := range []string{"uniform", "planted", "clustered", "annulus", "graded"} {
		spec := base
		spec.Kind = kind
		a, err := spec.Generate()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		b, err := spec.Generate()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(a.DB) != len(b.DB) || len(a.Queries) != len(b.Queries) {
			t.Fatalf("%s: sizes differ across generations", kind)
		}
		for i := range a.DB {
			if !bitvec.Equal(a.DB[i], b.DB[i]) {
				t.Fatalf("%s: db point %d differs", kind, i)
			}
		}
		for i := range a.Queries {
			if !bitvec.Equal(a.Queries[i].X, b.Queries[i].X) ||
				a.Queries[i].NNIndex != b.Queries[i].NNIndex ||
				a.Queries[i].NNDist != b.Queries[i].NNDist {
				t.Fatalf("%s: query %d differs", kind, i)
			}
		}

		// A different seed must actually change the corpus, or the
		// determinism above is vacuous.
		shifted := spec
		shifted.Seed++
		c, err := shifted.Generate()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		same := true
		for i := range a.DB {
			if !bitvec.Equal(a.DB[i], c.DB[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: seed change left the database identical", kind)
		}
	}
}

func TestSpecKinds(t *testing.T) {
	base := DefaultSpec()
	base.D, base.N, base.Q = 128, 48, 6
	base.Dist, base.Lambda, base.Rad = 10, 6, 10
	for _, kind := range []string{"uniform", "planted", "clustered", "annulus", "graded"} {
		s := base
		s.Kind = kind
		in, err := s.Generate()
		if err != nil {
			t.Errorf("%s: %v", kind, err)
			continue
		}
		if len(in.Queries) != s.Q {
			t.Errorf("%s: %d queries, want %d", kind, len(in.Queries), s.Q)
		}
	}
}

func TestSpecErrors(t *testing.T) {
	if _, err := (Spec{Kind: "nope", D: 64, N: 10, Q: 2}).Generate(); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := (Spec{Kind: "uniform", D: 1, N: 10, Q: 2}).Generate(); err == nil {
		t.Error("d=1 accepted")
	}
	// Generator panics must surface as errors (planted needs n > q).
	if _, err := (Spec{Kind: "planted", D: 64, N: 4, Q: 8, Dist: 5}).Generate(); err == nil {
		t.Error("planted with n <= q accepted")
	}
}

func TestSpecRegisterFlags(t *testing.T) {
	s := DefaultSpec()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s.RegisterFlags(fs)
	if err := fs.Parse([]string{"-kind", "uniform", "-d", "256", "-n", "99", "-wseed", "5"}); err != nil {
		t.Fatal(err)
	}
	if s.Kind != "uniform" || s.D != 256 || s.N != 99 || s.Seed != 5 {
		t.Errorf("flags did not land: %+v", s)
	}
	if s.Q != DefaultSpec().Q {
		t.Errorf("untouched field lost its default: %+v", s)
	}
}
