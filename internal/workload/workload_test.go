package workload

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func TestUniformShape(t *testing.T) {
	r := rng.New(1)
	in := Uniform(r, 128, 40, 10)
	if len(in.DB) != 40 || len(in.Queries) != 10 || in.D != 128 {
		t.Fatalf("shape: %s", in)
	}
	for _, q := range in.Queries {
		wantIdx, wantDist := hamming.Nearest(in.DB, q.X)
		if q.NNDist != wantDist {
			t.Errorf("ground truth dist %d, want %d (idx %d)", q.NNDist, wantDist, wantIdx)
		}
	}
}

func TestPlantedNNControlsDistance(t *testing.T) {
	r := rng.New(2)
	in := PlantedNN(r, 512, 100, 20, 11)
	if len(in.DB) != 100 {
		t.Fatalf("db size %d", len(in.DB))
	}
	for _, q := range in.Queries {
		if q.NNDist > 11 {
			t.Errorf("planted query has NN at %d > 11", q.NNDist)
		}
	}
}

func TestPlantedNNPanics(t *testing.T) {
	r := rng.New(3)
	for _, fn := range []func(){
		func() { PlantedNN(r, 64, 10, 10, 5) },  // n == q: no chaff
		func() { PlantedNN(r, 64, 20, 5, 100) }, // distance > d
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid PlantedNN did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestClustered(t *testing.T) {
	r := rng.New(4)
	in := Clustered(r, 256, 60, 10, 4, 10)
	if len(in.DB) != 60 || len(in.Queries) != 10 {
		t.Fatalf("shape: %s", in)
	}
	if !strings.Contains(in.Name, "clustered") {
		t.Error(in.Name)
	}
	// Points in the same cluster (i ≡ j mod 4) are within 2·rad of each
	// other; cross-cluster points are ≈ d/2 apart.
	same := bitvec.Distance(in.DB[0], in.DB[4])
	if same > 20 {
		t.Errorf("same-cluster distance %d", same)
	}
	cross := bitvec.Distance(in.DB[0], in.DB[1])
	if cross < 60 {
		t.Errorf("cross-cluster distance %d suspiciously small", cross)
	}
}

func TestAnnulus(t *testing.T) {
	r := rng.New(5)
	in := Annulus(r, 512, 100, 40, 6, 2)
	yes, no := 0, 0
	for _, q := range in.Queries {
		if q.NNDist <= 6 {
			yes++
		}
		if float64(q.NNDist) > 12 {
			no++
		}
	}
	if yes < 15 {
		t.Errorf("only %d YES queries", yes)
	}
	if no < 15 {
		t.Errorf("only %d NO queries", no)
	}
}

func TestAnnulusPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("annulus with gamma*lambda ~ d/2 did not panic")
		}
	}()
	Annulus(rng.New(6), 64, 30, 10, 20, 2)
}

func TestGraded(t *testing.T) {
	r := rng.New(8)
	in := Graded(r, 1024, 150, 10, 10, 2, 4)
	if len(in.DB) != 150 || len(in.Queries) != 10 {
		t.Fatalf("shape: %s", in)
	}
	for qi, q := range in.Queries {
		// Nearest planted rung is at distance 10.
		if q.NNDist > 10 {
			t.Errorf("query %d: NN at %d, want <= 10", qi, q.NNDist)
		}
		// Each rung distance must be realized by some db point.
		for _, want := range []int{10, 20, 40, 80} {
			found := false
			for _, z := range in.DB {
				if bitvec.Distance(z, q.X) == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("query %d: no point at rung distance %d", qi, want)
			}
		}
	}
}

func TestGradedPanics(t *testing.T) {
	r := rng.New(9)
	for _, fn := range []func(){
		func() { Graded(r, 128, 10, 5, 4, 2, 3) }, // n <= q*rungs
		func() { Graded(r, 128, 50, 5, 0, 2, 3) }, // base < 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid Graded did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBitFlipQueries(t *testing.T) {
	r := rng.New(7)
	in := Uniform(r, 128, 30, 0)
	BitFlipQueries(r, in, 12, 3)
	if len(in.Queries) != 12 {
		t.Fatalf("got %d queries", len(in.Queries))
	}
	for _, q := range in.Queries {
		if q.NNDist > 3 {
			t.Errorf("bit-flip query NN at %d > 3", q.NNDist)
		}
	}
}
