// Package workload generates the synthetic databases and query streams the
// experiments run on. The paper has no datasets (it is a cell-probe theory
// paper); these generators produce the structured instances its theorems
// quantify over: databases in {0,1}^d with a planted nearest neighbor at a
// controlled distance, annulus-separated instances for the λ-ANN decision
// problem, and clustered databases that stress the sketch approximations.
package workload

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
)

// Instance is one database plus a stream of queries with ground truth.
type Instance struct {
	Name    string
	D       int
	DB      []bitvec.Vector
	Queries []Query
}

// Query is a query point with precomputed ground truth.
type Query struct {
	X       bitvec.Vector
	NNIndex int // exact nearest neighbor index in DB
	NNDist  int // exact nearest distance
}

func (in *Instance) String() string {
	return fmt.Sprintf("%s(d=%d, n=%d, q=%d)", in.Name, in.D, len(in.DB), len(in.Queries))
}

// Uniform returns n i.i.d. uniform database points and q uniform queries.
// In high dimension uniform queries sit at distance ≈ d/2 from everything,
// so this exercises the outermost levels.
func Uniform(r *rng.Source, d, n, q int) *Instance {
	in := &Instance{Name: "uniform", D: d}
	for i := 0; i < n; i++ {
		in.DB = append(in.DB, hamming.Random(r, d))
	}
	for i := 0; i < q; i++ {
		x := hamming.Random(r, d)
		nn, dist := hamming.Nearest(in.DB, x)
		in.Queries = append(in.Queries, Query{X: x, NNIndex: nn, NNDist: dist})
	}
	return in
}

// PlantedNN returns a database of uniform points plus, for each query, a
// planted point at exact distance dist from the query. Uniform chaff sits
// at ≈ d/2, so for dist ≪ d/2 the planted point is the unique nearest
// neighbor and the search is non-degenerate at a controlled scale.
// Queries reuse one shared database; each query plants its own point.
func PlantedNN(r *rng.Source, d, n, q, dist int) *Instance {
	if dist < 0 || dist > d {
		panic("workload: planted distance out of range")
	}
	in := &Instance{Name: fmt.Sprintf("planted(r=%d)", dist), D: d}
	chaff := n - q
	if chaff < 1 {
		panic("workload: need n > q to hold planted points")
	}
	for i := 0; i < chaff; i++ {
		in.DB = append(in.DB, hamming.Random(r, d))
	}
	for i := 0; i < q; i++ {
		x := hamming.Random(r, d)
		in.DB = append(in.DB, hamming.AtDistance(r, x, d, dist))
		in.Queries = append(in.Queries, Query{X: x})
	}
	for qi := range in.Queries {
		nn, nd := hamming.Nearest(in.DB, in.Queries[qi].X)
		in.Queries[qi].NNIndex = nn
		in.Queries[qi].NNDist = nd
	}
	return in
}

// Clustered returns a database of k clusters of radius rad around random
// centers, with queries placed near cluster boundaries. Clusters create
// level sets |B_i| that jump by large factors — the regime Algorithm 2's
// |C_u| shrinking case exploits.
func Clustered(r *rng.Source, d, n, q, clusters, rad int) *Instance {
	if clusters < 1 {
		panic("workload: need at least one cluster")
	}
	in := &Instance{Name: fmt.Sprintf("clustered(c=%d,rad=%d)", clusters, rad), D: d}
	centers := make([]bitvec.Vector, clusters)
	for i := range centers {
		centers[i] = hamming.Random(r, d)
	}
	for i := 0; i < n; i++ {
		c := centers[i%clusters]
		in.DB = append(in.DB, hamming.WithinDistance(r, c, d, rad))
	}
	for i := 0; i < q; i++ {
		c := centers[r.Intn(clusters)]
		x := hamming.AtDistance(r, c, d, min(2*rad, d))
		nn, nd := hamming.Nearest(in.DB, x)
		in.Queries = append(in.Queries, Query{X: x, NNIndex: nn, NNDist: nd})
	}
	return in
}

// Annulus returns an instance for the λ-ANN decision problem: half the
// queries have a planted point at distance ≤ lambda ("YES"), the other
// half have every database point at distance > gamma·lambda ("NO").
// The Query.NNDist field carries the ground truth for the decision.
func Annulus(r *rng.Source, d, n, q int, lambda int, gamma float64) *Instance {
	in := &Instance{Name: fmt.Sprintf("annulus(λ=%d,γ=%v)", lambda, gamma), D: d}
	// Chaff far from everything: uniform points sit near d/2, which must
	// exceed gamma*lambda for clean NO instances.
	if float64(lambda)*gamma >= float64(d)/4 {
		panic("workload: annulus needs gamma*lambda << d/2")
	}
	chaff := n - (q+1)/2
	if chaff < 1 {
		panic("workload: need n large enough for annulus chaff")
	}
	for i := 0; i < chaff; i++ {
		in.DB = append(in.DB, hamming.Random(r, d))
	}
	for i := 0; i < q; i++ {
		x := hamming.Random(r, d)
		if i%2 == 0 { // YES: plant within lambda
			in.DB = append(in.DB, hamming.WithinDistance(r, x, d, lambda))
		}
		in.Queries = append(in.Queries, Query{X: x})
	}
	for qi := range in.Queries {
		nn, nd := hamming.Nearest(in.DB, in.Queries[qi].X)
		in.Queries[qi].NNIndex = nn
		in.Queries[qi].NNDist = nd
	}
	return in
}

// Graded returns an instance where each query has planted points at a
// geometric ladder of distances base, base·step, base·step², … — the
// workload that exposes approximation-quality differences: returning a
// point one rung too high shows up as an approximation ratio of ≈ step.
func Graded(r *rng.Source, d, n, q int, base int, step float64, rungs int) *Instance {
	if rungs < 1 || base < 1 {
		panic("workload: graded needs base >= 1, rungs >= 1")
	}
	in := &Instance{Name: fmt.Sprintf("graded(base=%d,step=%v,rungs=%d)", base, step, rungs), D: d}
	chaff := n - q*rungs
	if chaff < 1 {
		panic("workload: need n > q*rungs for graded instance")
	}
	for i := 0; i < chaff; i++ {
		in.DB = append(in.DB, hamming.Random(r, d))
	}
	for i := 0; i < q; i++ {
		x := hamming.Random(r, d)
		dist := float64(base)
		for rung := 0; rung < rungs; rung++ {
			di := int(dist)
			if di > d {
				di = d
			}
			in.DB = append(in.DB, hamming.AtDistance(r, x, d, di))
			dist *= step
		}
		in.Queries = append(in.Queries, Query{X: x})
	}
	for qi := range in.Queries {
		nn, nd := hamming.Nearest(in.DB, in.Queries[qi].X)
		in.Queries[qi].NNIndex = nn
		in.Queries[qi].NNDist = nd
	}
	return in
}

// BitFlipQueries derives q queries by flipping flips random bits of random
// database points — the classic "perturbed member" query model.
func BitFlipQueries(r *rng.Source, in *Instance, q, flips int) {
	for i := 0; i < q; i++ {
		base := in.DB[r.Intn(len(in.DB))]
		x := hamming.AtDistance(r, base, in.D, flips)
		nn, nd := hamming.Nearest(in.DB, x)
		in.Queries = append(in.Queries, Query{X: x, NNIndex: nn, NNDist: nd})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
