// Package par is the worker-pool primitive of the parallel index build
// path: a bounded fan-out over an integer range. It exists so the build
// layers (sketch family drawing, per-level database sketching, boosted
// repetitions, shards) share one scheduling idiom instead of each growing
// its own goroutine plumbing.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: n <= 0 selects GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(i) for every i in [0, n), using up to workers goroutines.
// workers <= 1 (or n <= 1) degenerates to a plain sequential loop on the
// calling goroutine, which is the comparison baseline the build benchmark
// records. Tasks are claimed from a shared atomic counter, so uneven task
// costs (levels with different sketch widths) balance automatically.
func Do(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
