// Package hamming provides Hamming-space utilities shared by the schemes,
// workload generators, and the LPM reduction: random point generation,
// sampling at exact or bounded distance, log-domain ball volumes, and an
// exact nearest-neighbor scan used as ground truth.
package hamming

import (
	"math"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// Random returns a uniform point of {0,1}^d.
func Random(r *rng.Source, d int) bitvec.Vector {
	v := bitvec.New(d)
	for i := range v {
		v[i] = r.Uint64()
	}
	return v.TruncateToDim(d)
}

// AtDistance returns a uniform point at exact Hamming distance dist from x.
// Panics if dist < 0 or dist > d.
func AtDistance(r *rng.Source, x bitvec.Vector, d, dist int) bitvec.Vector {
	if dist < 0 || dist > d {
		panic("hamming: distance out of range")
	}
	y := x.Clone()
	for _, i := range r.Sample(d, dist) {
		y.Flip(i)
	}
	return y
}

// WithinDistance returns a uniform point of the ball of radius rad around x
// (uniform over the ball, using log-volume weights per shell).
func WithinDistance(r *rng.Source, x bitvec.Vector, d, rad int) bitvec.Vector {
	if rad < 0 {
		panic("hamming: negative radius")
	}
	if rad > d {
		rad = d
	}
	// Choose the shell proportionally to C(d, k) using Gumbel-max on
	// log-weights to avoid overflow.
	best, bestScore := 0, math.Inf(-1)
	for k := 0; k <= rad; k++ {
		score := LogBinomial(d, k) - math.Log(-math.Log(r.Float64()))
		if score > bestScore {
			best, bestScore = k, score
		}
	}
	return AtDistance(r, x, d, best)
}

// LogBinomial returns ln C(n, k). Returns -Inf for k < 0 or k > n.
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// LogBallVolume returns ln |Ball(radius)| in {0,1}^d, i.e.
// ln Σ_{k=0..radius} C(d, k), computed stably in the log domain.
func LogBallVolume(d, radius int) float64 {
	if radius < 0 {
		return math.Inf(-1)
	}
	if radius >= d {
		return float64(d) * math.Ln2
	}
	acc := math.Inf(-1)
	for k := 0; k <= radius; k++ {
		acc = logAdd(acc, LogBinomial(d, k))
	}
	return acc
}

func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// Nearest returns the index of a database point nearest to x, together
// with the distance, by exact linear scan. Panics on an empty database.
func Nearest(db []bitvec.Vector, x bitvec.Vector) (idx, dist int) {
	if len(db) == 0 {
		panic("hamming: empty database")
	}
	idx, dist = 0, bitvec.Distance(db[0], x)
	for i := 1; i < len(db); i++ {
		if d := bitvec.Distance(db[i], x); d < dist {
			idx, dist = i, d
		}
	}
	return idx, dist
}

// MinDistance returns min_z dist(x, z) over the database.
func MinDistance(db []bitvec.Vector, x bitvec.Vector) int {
	_, d := Nearest(db, x)
	return d
}

// IsApproxNearest reports whether y is a γ-approximate nearest neighbor of
// x in db: dist(x, y) <= gamma * min_z dist(x, z).
func IsApproxNearest(db []bitvec.Vector, x, y bitvec.Vector, gamma float64) bool {
	return float64(bitvec.Distance(x, y)) <= gamma*float64(MinDistance(db, x))
}

// CountWithin returns |{z in db : dist(x, z) <= radius}|, the exact |B_i|
// used when validating the sketch approximations (Lemma 8 checks).
func CountWithin(db []bitvec.Vector, x bitvec.Vector, radius int) int {
	n := 0
	for _, z := range db {
		if bitvec.DistanceAtMost(z, x, radius) {
			n++
		}
	}
	return n
}
