package hamming

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

func TestRandomDimension(t *testing.T) {
	r := rng.New(1)
	v := Random(r, 100)
	if len(v) != bitvec.Words(100) {
		t.Fatalf("wrong word count %d", len(v))
	}
	// Trailing bits beyond d must be zero.
	for i := 100; i < 128; i++ {
		if v.Get(i) {
			t.Errorf("bit %d beyond dimension set", i)
		}
	}
}

func TestRandomIsBalanced(t *testing.T) {
	r := rng.New(2)
	total := 0
	for i := 0; i < 200; i++ {
		total += Random(r, 256).PopCount()
	}
	mean := float64(total) / 200
	if mean < 118 || mean > 138 {
		t.Errorf("mean popcount %v far from 128", mean)
	}
}

func TestAtDistanceExact(t *testing.T) {
	r := rng.New(3)
	x := Random(r, 300)
	for _, dist := range []int{0, 1, 5, 150, 300} {
		y := AtDistance(r, x, 300, dist)
		if got := bitvec.Distance(x, y); got != dist {
			t.Errorf("AtDistance(%d) produced distance %d", dist, got)
		}
	}
}

func TestAtDistancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AtDistance out of range did not panic")
		}
	}()
	r := rng.New(4)
	AtDistance(r, Random(r, 10), 10, 11)
}

func TestWithinDistance(t *testing.T) {
	r := rng.New(5)
	x := Random(r, 200)
	for i := 0; i < 100; i++ {
		y := WithinDistance(r, x, 200, 7)
		if d := bitvec.Distance(x, y); d > 7 {
			t.Fatalf("WithinDistance(7) produced distance %d", d)
		}
	}
	// Radius above d clamps.
	y := WithinDistance(r, x, 200, 500)
	if d := bitvec.Distance(x, y); d > 200 {
		t.Fatalf("clamped radius violated: %d", d)
	}
}

func TestWithinDistanceWeightsShells(t *testing.T) {
	// With rad = d the distribution should concentrate near d/2 (volume),
	// not near 0.
	r := rng.New(6)
	x := Random(r, 128)
	sum := 0
	for i := 0; i < 200; i++ {
		sum += bitvec.Distance(x, WithinDistance(r, x, 128, 128))
	}
	mean := float64(sum) / 200
	if mean < 55 || mean > 73 {
		t.Errorf("ball sampling mean distance %v, want ≈ 64", mean)
	}
}

func TestLogBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120}, {20, 10, 184756},
	}
	for _, c := range cases {
		got := math.Exp(LogBinomial(c.n, c.k))
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogBinomial(5, 6), -1) || !math.IsInf(LogBinomial(5, -1), -1) {
		t.Error("out-of-range binomial not -Inf")
	}
}

func TestLogBallVolume(t *testing.T) {
	// |Ball(1)| in {0,1}^10 = 1 + 10 = 11.
	got := math.Exp(LogBallVolume(10, 1))
	if math.Abs(got-11) > 1e-9 {
		t.Errorf("ball volume = %v, want 11", got)
	}
	// Radius >= d: whole cube.
	if math.Abs(LogBallVolume(16, 16)-16*math.Ln2) > 1e-9 {
		t.Error("full ball volume wrong")
	}
	if !math.IsInf(LogBallVolume(10, -1), -1) {
		t.Error("negative radius not -Inf")
	}
	// Monotone in radius.
	prev := math.Inf(-1)
	for rad := 0; rad <= 12; rad++ {
		v := LogBallVolume(12, rad)
		if v < prev {
			t.Fatalf("volume decreased at radius %d", rad)
		}
		prev = v
	}
}

func TestNearestAndHelpers(t *testing.T) {
	r := rng.New(7)
	db := []bitvec.Vector{}
	for i := 0; i < 50; i++ {
		db = append(db, Random(r, 128))
	}
	x := AtDistance(r, db[17], 128, 4)
	idx, dist := Nearest(db, x)
	// db[17] is at distance 4; random others are ≈ 64 away.
	if idx != 17 || dist != 4 {
		t.Errorf("Nearest = (%d, %d), want (17, 4)", idx, dist)
	}
	if MinDistance(db, x) != 4 {
		t.Error("MinDistance disagrees")
	}
	if !IsApproxNearest(db, x, db[17], 1) {
		t.Error("exact NN not 1-approximate")
	}
	if IsApproxNearest(db, x, db[(17+1)%50], 2) {
		t.Error("far point accepted as 2-approximate")
	}
	if got := CountWithin(db, x, 4); got != 1 {
		t.Errorf("CountWithin = %d, want 1", got)
	}
	if got := CountWithin(db, x, 128); got != 50 {
		t.Errorf("CountWithin(d) = %d, want 50", got)
	}
}

func TestNearestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Nearest on empty db did not panic")
		}
	}()
	Nearest(nil, bitvec.New(8))
}
