package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/anns"
	"repro/internal/server"
	"repro/internal/workload"
)

// mutableTestConfig is the MutableConfig every replica AND the oracle
// use: synchronous so the structure evolves deterministically with the
// op sequence, a tiny memtable so the stream crosses seal boundaries.
func mutableTestConfig(walPath string) anns.MutableConfig {
	return anns.MutableConfig{Synchronous: true, MemtableCap: 8, WALPath: walPath}
}

// buildWriteCluster builds a shards×replicas mutable cluster: replica r
// of shard s is an independent NewMutable over an independent build of
// the shared spec's shard s (same spec ⇒ same corpus, the two-process
// contract). Every replica gets its own WAL so any of them can serve
// /v1/frames catch-up after a promotion. mw(s, r) may wrap a replica's
// handler (nil for none).
func buildWriteCluster(t *testing.T, shards, replicas int, mw func(s, r int) func(http.Handler) http.Handler) (urls [][]string, mxs [][]*anns.MutableIndex, servers [][]*httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	urls = make([][]string, shards)
	mxs = make([][]*anns.MutableIndex, shards)
	servers = make([][]*httptest.Server, shards)
	for r := 0; r < replicas; r++ {
		sx, _ := buildShards(t, shards)
		for s := 0; s < shards; s++ {
			mx, err := anns.NewMutable(sx.Shard(s), mutableTestConfig(filepath.Join(dir, fmt.Sprintf("wal-%d-%d", s, r))))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { mx.Close() })
			var m func(http.Handler) http.Handler
			if mw != nil {
				m = mw(s, r)
			}
			ts := serveShard(t, mx, m)
			urls[s] = append(urls[s], ts.URL)
			mxs[s] = append(mxs[s], mx)
			servers[s] = append(servers[s], ts)
		}
	}
	return urls, mxs, servers
}

// newOracle builds the single-process reference: a MutableSharded over
// the same spec, same shard count, same mutable config (WAL-less — the
// oracle is in-process, byte-identity is structural).
func newOracle(t *testing.T, shards int) (*anns.MutableSharded, *workload.Instance) {
	t.Helper()
	inst, err := testSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]anns.Point, len(inst.DB))
	copy(pts, inst.DB)
	ms, err := anns.BuildMutableSharded(pts, shards, anns.Options{Dimension: testDim, Rounds: 2, Seed: 5}, mutableTestConfig(""))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	return ms, inst
}

// insertStream generates the mutation stream's fresh points from a spec
// the base corpus never saw.
func insertStream(t *testing.T, n int) []anns.Point {
	t.Helper()
	inst, err := workload.Spec{Kind: "planted", D: testDim, N: n, Q: 1, Dist: 6, Seed: 77}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return inst.DB
}

func routerInsert(t *testing.T, base string, x []uint64) (int, server.InsertResponse) {
	t.Helper()
	resp, raw := postJSON(t, base+"/v1/insert", server.InsertRequest{Point: server.EncodePoint(x)})
	var ins server.InsertResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ins); err != nil {
			t.Fatalf("insert answer %s: %v", raw, err)
		}
	}
	return resp.StatusCode, ins
}

func routerDelete(t *testing.T, base string, id uint64) (int, server.DeleteResponse) {
	t.Helper()
	resp, raw := postJSON(t, base+"/v1/delete", server.DeleteRequest{ID: &id})
	var del server.DeleteResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &del); err != nil {
			t.Fatalf("delete answer %s: %v", raw, err)
		}
	}
	return resp.StatusCode, del
}

// queryMatchesOracle requires the routed answer for x to be
// byte-identical to the oracle's — twice, so with two replicas per
// shard the round-robin cursor lands the comparison on both.
func queryMatchesOracle(t *testing.T, base string, ms *anns.MutableSharded, x []uint64, tag string) {
	t.Helper()
	want, err := ms.Query(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, raw := postJSON(t, base+"/v1/query", server.QueryRequest{Point: server.EncodePoint(x)})
		var qr server.QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Error != "" || qr.Index != want.Index || qr.Distance != want.Distance ||
			qr.Rounds != want.Rounds || qr.Probes != want.Probes || qr.MaxParallel != want.MaxParallel {
			t.Fatalf("%s: routed answer %+v != oracle %+v", tag, qr, want)
		}
	}
}

// TestRouterWritesMatchMutableSharded is the replicated-write
// acceptance property (DESIGN.md §11): a routed 2-shard × 2-replica
// mutable cluster fed a fixed mutation stream — inserts and deletes of
// both base and fresh points — assigns the same global IDs and answers
// every query byte-identically to one MutableSharded process fed the
// same stream, with quorum durability keeping both replicas of each
// shard at converged offsets throughout.
func TestRouterWritesMatchMutableSharded(t *testing.T) {
	const shards = 2
	urls, mxs, _ := buildWriteCluster(t, shards, 2, nil)
	ms, inst := newOracle(t, shards)
	stream := insertStream(t, 20)

	rt := newRouter(t, Config{
		Dimension: testDim, N: ms.Len(), Replicas: urls,
		Durability:    DurabilityQuorum,
		HedgeCold:     time.Second,
		ProbeInterval: time.Hour,
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	var writes int64
	var inserted []uint64
	for i, p := range stream {
		code, ins := routerInsert(t, rts.URL, p)
		if code != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, code)
		}
		g, err := ms.Insert(p)
		if err != nil {
			t.Fatal(err)
		}
		if ins.ID != g {
			t.Fatalf("insert %d: router assigned global %d, oracle %d", i, ins.ID, g)
		}
		inserted = append(inserted, g)
		writes++

		if i%4 == 3 {
			// Alternate deleting a base point and a fresh one.
			target := uint64(i)
			if i%8 == 7 {
				target = inserted[len(inserted)/2]
			}
			code, del := routerDelete(t, rts.URL, target)
			if code != http.StatusOK {
				t.Fatalf("delete %d of %d: status %d", i, target, code)
			}
			wantDel, err := ms.Delete(target)
			if err != nil {
				t.Fatal(err)
			}
			if del.Deleted != wantDel {
				t.Fatalf("delete of %d: router deleted=%v, oracle %v", target, del.Deleted, wantDel)
			}
			if del.Deleted {
				writes++
			}
		}
	}
	// A double delete is a no-op on both sides: no frame, no write counted.
	code, del := routerDelete(t, rts.URL, 3)
	if code != http.StatusOK || del.Deleted {
		t.Fatalf("repeat delete: status %d deleted=%v, want 200 and a no-op", code, del.Deleted)
	}
	if wantDel, _ := ms.Delete(3); wantDel {
		t.Fatal("oracle still had id 3 live after the stream deleted it")
	}

	for qi, q := range inst.Queries {
		queryMatchesOracle(t, rts.URL, ms, q.X, fmt.Sprintf("query %d", qi))
	}
	for _, p := range stream[:4] {
		queryMatchesOracle(t, rts.URL, ms, p, "query at inserted point")
	}

	// Quorum with R=2 means every acked write is on both replicas: the
	// shard's two offsets agree, both in the engine and in /statsz.
	st := rt.Stats()
	if st.Writes != writes {
		t.Errorf("stats writes = %d, routed %d", st.Writes, writes)
	}
	if st.WriteErrors != 0 || st.Promotions != 0 || st.Epoch != 0 {
		t.Errorf("clean run reported write_errors=%d promotions=%d epoch=%d", st.WriteErrors, st.Promotions, st.Epoch)
	}
	if st.Durability != DurabilityQuorum {
		t.Errorf("stats durability %q", st.Durability)
	}
	if st.ReplicatedFrames != writes {
		t.Errorf("replicated_frames = %d, want %d (one relay per write)", st.ReplicatedFrames, writes)
	}
	for s := 0; s < shards; s++ {
		if a, b := mxs[s][0].ReplicationOffset(), mxs[s][1].ReplicationOffset(); a != b {
			t.Errorf("shard %d replica offsets diverged: %d vs %d", s, a, b)
		}
		ss := st.ShardStats[s]
		if ss.Primary != urls[s][0] {
			t.Errorf("shard %d primary = %q, want the configured position-0 replica", s, ss.Primary)
		}
		primaries := 0
		for _, rs := range ss.ReplicaStats {
			if rs.Primary {
				primaries++
			}
			if rs.ReplicationOffset != mxs[s][0].ReplicationOffset() {
				t.Errorf("shard %d replica %s statsz offset %d, engine at %d", s, rs.URL, rs.ReplicationOffset, mxs[s][0].ReplicationOffset())
			}
		}
		if primaries != 1 {
			t.Errorf("shard %d marks %d primaries in statsz", s, primaries)
		}
	}
}

// TestRouterRelayCatchUp pins the 409-gap path: a replica that missed
// five relayed frames (injected outage on its /v1/replicate) reports a
// gap on the sixth, and the router streams the backlog out of the
// primary's WAL before completing the relay — converged offsets,
// byte-identical answers, no write ever failed (primary durability).
func TestRouterRelayCatchUp(t *testing.T) {
	var blocking atomic.Bool
	blocking.Store(true)
	mw := func(s, r int) func(http.Handler) http.Handler {
		if s != 0 || r != 1 {
			return nil
		}
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				if blocking.Load() && req.URL.Path == "/v1/replicate" {
					http.Error(w, `{"error":"injected outage"}`, http.StatusInternalServerError)
					return
				}
				next.ServeHTTP(w, req)
			})
		}
	}
	urls, mxs, _ := buildWriteCluster(t, 1, 2, mw)
	stream := insertStream(t, 6)

	rt := newRouter(t, Config{
		Dimension: testDim, N: mxs[0][0].Len(), Replicas: urls,
		Durability:    DurabilityPrimary,
		EvictAfter:    100, // keep the lagging replica in rotation
		HedgeCold:     time.Second,
		ProbeInterval: time.Hour,
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	for i, p := range stream[:5] {
		if code, _ := routerInsert(t, rts.URL, p); code != http.StatusOK {
			t.Fatalf("insert %d during replica outage: status %d (primary durability must ack)", i, code)
		}
	}
	if off := mxs[0][1].ReplicationOffset(); off != 0 {
		t.Fatalf("blocked replica applied %d frames", off)
	}
	st := rt.Stats()
	if st.ReplicationErrs < 5 {
		t.Errorf("replication_errors = %d after 5 blocked relays", st.ReplicationErrs)
	}

	blocking.Store(false)
	if code, ins := routerInsert(t, rts.URL, stream[5]); code != http.StatusOK || ins.Offset != 6 {
		t.Fatalf("post-outage insert: status %d offset %d", code, ins.Offset)
	}
	if off := mxs[0][1].ReplicationOffset(); off != 6 {
		t.Fatalf("replica offset %d after catch-up, want 6", off)
	}
	for i, p := range stream {
		a, err := mxs[0][0].Query(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mxs[0][1].Query(p)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("point %d: primary %+v != caught-up replica %+v", i, a, b)
		}
	}
	for _, rs := range rt.Stats().ShardStats[0].ReplicaStats {
		if rs.ReplicationOffset != 6 {
			t.Errorf("replica %s statsz offset %d, want 6", rs.URL, rs.ReplicationOffset)
		}
	}
}

// TestRouterPromotionOnPrimaryKill pins failover for writes: killing a
// shard's primary fails the in-flight write (502, never auto-retried),
// and the client's retry lands on the max-offset surviving replica —
// promoted, epoch bumped, manifest rewritten — after which the stream
// keeps matching the single-process oracle.
func TestRouterPromotionOnPrimaryKill(t *testing.T) {
	const shards = 2
	urls, _, servers := buildWriteCluster(t, shards, 2, nil)
	ms, inst := newOracle(t, shards)
	stream := insertStream(t, 8)

	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "manifest.json")
	m := &Manifest{
		FormatVersion: ManifestVersion,
		Placement:     PlacementRoundRobin,
		Shards:        shards,
		N:             ms.Len(),
		Dimension:     testDim,
		Seed:          21,
		Files: []ManifestShard{
			{Shard: 0, Path: "shard-0.snap", N: 24, Seed: 1},
			{Shard: 1, Path: "shard-1.snap", N: 24, Seed: 2},
		},
	}

	rt := newRouter(t, Config{
		Dimension: testDim, N: ms.Len(), Replicas: urls,
		Durability:    DurabilityPrimary,
		EvictAfter:    1,
		BackoffBase:   time.Minute,
		HedgeCold:     time.Second,
		ProbeInterval: time.Hour,
		Manifest:      m,
		ManifestPath:  manifestPath,
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	apply := func(i int) {
		t.Helper()
		code, ins := routerInsert(t, rts.URL, stream[i])
		if code != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, code)
		}
		g, err := ms.Insert(stream[i])
		if err != nil {
			t.Fatal(err)
		}
		if ins.ID != g {
			t.Fatalf("insert %d: router global %d, oracle %d", i, ins.ID, g)
		}
	}
	for i := 0; i < 4; i++ {
		apply(i)
	}

	// Kill shard 0's primary. The next shard-0 write fails without a
	// retry (it may have applied); the one after that promotes.
	servers[0][0].Close()
	if code, _ := routerInsert(t, rts.URL, stream[4]); code != http.StatusBadGateway {
		t.Fatalf("write to a dead primary: status %d, want 502", code)
	}
	apply(4) // the client's retry: promotion happens here
	for i := 5; i < len(stream); i++ {
		apply(i)
	}

	st := rt.Stats()
	if st.Promotions != 1 || st.Epoch != 1 {
		t.Fatalf("promotions=%d epoch=%d after one primary kill", st.Promotions, st.Epoch)
	}
	if st.WriteErrors == 0 {
		t.Error("the failed write was not counted")
	}
	ss := st.ShardStats[0]
	if ss.Primary != urls[0][1] {
		t.Errorf("shard 0 primary = %q, want promoted survivor %q", ss.Primary, urls[0][1])
	}
	if !ss.ReplicaStats[1].Primary || ss.ReplicaStats[0].Primary {
		t.Errorf("primary flags wrong after promotion: %+v", ss.ReplicaStats)
	}
	if ss.ReplicaStats[0].State != StateEvicted {
		t.Errorf("dead ex-primary state %q, want evicted", ss.ReplicaStats[0].State)
	}

	// The promoted topology survives a router restart via the manifest.
	got, err := LoadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.FormatVersion != ManifestVersion || got.Epoch != 1 || got.Files[0].Primary != 1 || got.Files[1].Primary != 0 {
		t.Fatalf("persisted manifest version=%d epoch=%d primaries=%d,%d",
			got.FormatVersion, got.Epoch, got.Files[0].Primary, got.Files[1].Primary)
	}

	// A delete routed to the degraded shard, then full query equivalence
	// served by the promoted replica alone.
	target := uint64(0) // shard 0, base point
	code, del := routerDelete(t, rts.URL, target)
	wantDel, err := ms.Delete(target)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || del.Deleted != wantDel {
		t.Fatalf("post-promotion delete: status %d deleted=%v, oracle %v", code, del.Deleted, wantDel)
	}
	for qi, q := range inst.Queries {
		queryMatchesOracle(t, rts.URL, ms, q.X, fmt.Sprintf("post-promotion query %d", qi))
	}
}

// TestRouterWriteInvalidatesCache pins the write-generation contract
// carried over from the query cache: a routed write bumps the
// generation, so a repeated query re-asks the shards instead of serving
// the pre-write answer.
func TestRouterWriteInvalidatesCache(t *testing.T) {
	urls, mxs, _ := buildWriteCluster(t, 1, 1, nil)
	stream := insertStream(t, 2)

	rt := newRouter(t, Config{
		Dimension: testDim, N: mxs[0][0].Len(), Replicas: urls,
		CacheEntries:  64,
		HedgeCold:     time.Second,
		ProbeInterval: time.Hour,
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	inst, err := testSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	req := server.QueryRequest{Point: server.EncodePoint(inst.Queries[0].X)}
	postJSON(t, rts.URL+"/v1/query", req) // miss, fills
	postJSON(t, rts.URL+"/v1/query", req) // hit
	if cs := rt.Stats().Cache; cs == nil || cs.Hits != 1 || cs.Misses != 1 {
		t.Fatalf("pre-write cache stats %+v, want 1 hit / 1 miss", cs)
	}
	if code, _ := routerInsert(t, rts.URL, stream[0]); code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}
	postJSON(t, rts.URL+"/v1/query", req) // stale generation: miss again
	if cs := rt.Stats().Cache; cs.Hits != 1 || cs.Misses != 2 {
		t.Fatalf("post-write cache stats %+v, want the repeat query to miss", cs)
	}
}

// TestManifestV2 pins the version-2 manifest fields: epoch and primary
// designations round-trip, version-1 manifests still validate (with
// epoch 0 and primaries at position 0), and a negative primary is
// rejected.
func TestManifestV2(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		FormatVersion: ManifestVersion,
		Placement:     PlacementRoundRobin,
		Shards:        2,
		N:             7,
		Dimension:     64,
		Seed:          42,
		Epoch:         3,
		Files: []ManifestShard{
			{Shard: 0, Path: "shard-0.snap", N: 4, Seed: 1, Primary: 1},
			{Shard: 1, Path: "shard-1.snap", N: 3, Seed: 2},
		},
	}
	path := filepath.Join(dir, "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != 3 || got.Files[0].Primary != 1 || got.Files[1].Primary != 0 {
		t.Fatalf("v2 round-trip lost fields: %+v", got)
	}

	v1 := *m
	v1.FormatVersion = 1
	v1.Epoch = 0
	v1.Files = []ManifestShard{
		{Shard: 0, Path: "shard-0.snap", N: 4, Seed: 1},
		{Shard: 1, Path: "shard-1.snap", N: 3, Seed: 2},
	}
	if err := v1.Validate(); err != nil {
		t.Errorf("version-1 manifest rejected: %v", err)
	}

	bad := *m
	bad.Files = []ManifestShard{
		{Shard: 0, Path: "shard-0.snap", N: 4, Seed: 1, Primary: -1},
		{Shard: 1, Path: "shard-1.snap", N: 3, Seed: 2},
	}
	if err := bad.Validate(); err == nil {
		t.Error("negative primary position validated")
	}
}
