package router

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
)

// stubReplica is a hand-scripted shard replica for trace tests: healthz
// always green, query behavior fixed per stub, and every received
// X-Anns-Trace header recorded so propagation is assertable.
type stubReplica struct {
	ts *httptest.Server

	mu       sync.Mutex
	traceIDs []string
}

func (s *stubReplica) noteTrace(r *http.Request) {
	if id := r.Header.Get(obs.TraceHeader); id != "" {
		s.mu.Lock()
		s.traceIDs = append(s.traceIDs, id)
		s.mu.Unlock()
	}
}

func (s *stubReplica) sawTrace(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, got := range s.traceIDs {
		if got == id {
			return true
		}
	}
	return false
}

// newStubReplica serves healthz green and delegates /v1/query to query.
func newStubReplica(t *testing.T, query http.HandlerFunc) *stubReplica {
	t.Helper()
	s := &stubReplica{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		server.WriteJSON(w, http.StatusOK, server.Health{Status: "ok", N: 48, Shards: 1, Dim: testDim})
	})
	mux.HandleFunc("POST /v1/query", func(w http.ResponseWriter, r *http.Request) {
		s.noteTrace(r)
		query(w, r)
	})
	s.ts = httptest.NewServer(mux)
	t.Cleanup(s.ts.Close)
	return s
}

// liveWaiters reports how many unexpired virtual timers/tickers exist —
// the test's synchronization point for "the hedge timer is armed".
func liveWaiters(vc *VirtualClock) int {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	n := 0
	for _, w := range vc.waiters {
		if !w.stopped {
			n++
		}
	}
	return n
}

func awaitWaiters(t *testing.T, vc *VirtualClock, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for liveWaiters(vc) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d virtual timers (have %d)", n, liveWaiters(vc))
		}
		time.Sleep(time.Millisecond)
	}
}

// runTracedFailover stands up one shard with three scripted replicas —
// A hangs (gray failure: green healthz, queries never answer), B
// answers 500, C answers correctly with its own stage spans — drives
// one traced query through hedge and failover on a virtual clock, and
// returns the finished trace record plus the stubs.
func runTracedFailover(t *testing.T, traceID string) (obs.TraceRecord, []*stubReplica) {
	t.Helper()
	// stop releases the hanging handler at teardown: with its request body
	// unread, the server cannot see the router abandon the attempt, so
	// r.Context() alone would wedge the stub's Close.
	stop := make(chan struct{})
	hang := newStubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-stop:
		}
	})
	bad := newStubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "scripted failure", http.StatusInternalServerError)
	})
	good := newStubReplica(t, func(w http.ResponseWriter, r *http.Request) {
		// A replica's own stage timeline rides back on the spans header
		// (only for traced requests — this stub asserts the header came).
		if r.Header.Get(obs.TraceHeader) == "" {
			http.Error(w, "no trace header", http.StatusInternalServerError)
			return
		}
		w.Header().Set(obs.SpansHeader, obs.EncodeSpans([]obs.Span{
			{Stage: "execute", StartUS: 7, DurUS: 21, Outcome: "ok"},
		}))
		server.WriteJSON(w, http.StatusOK, server.QueryResponse{Index: 3, Distance: 4, Rounds: 1, Probes: 2})
	})

	// Registered after the stub servers, so it runs before their Close.
	t.Cleanup(func() { close(stop) })

	vc := NewVirtualClock(time.Unix(0, 0))
	recc := make(chan obs.TraceRecord, 1)
	rt := newRouter(t, Config{
		Dimension:      testDim,
		N:              48,
		Replicas:       [][]string{{hang.ts.URL, bad.ts.URL, good.ts.URL}},
		RequestTimeout: 30 * time.Second, // the hang must lose the hedge, not time out
		HedgeCold:      10 * time.Millisecond,
		HedgeMin:       time.Millisecond,
		EvictAfter:     1, // first failure evicts: spans carry the pressure
		ProbeInterval:  time.Hour,
		Clock:          vc,
		Trace:          obs.TracerConfig{OnTrace: func(r obs.TraceRecord) { recc <- r }},
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	point := server.EncodePoint(make([]uint64, testDim/64))
	body := []byte(`{"point":"` + point + `"}`)
	done := make(chan *http.Response, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, rts.URL+"/v1/query", strings.NewReader(string(body)))
		if err != nil {
			panic(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(obs.TraceHeader, traceID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			panic(err)
		}
		resp.Body.Close()
		done <- resp
	}()

	// The router holds one live waiter (the prober's ticker). The hedge
	// timer is the second: once it exists the primary attempt against the
	// hanging replica is in flight, and advancing 10ms virtual fires the
	// hedge deterministically.
	awaitWaiters(t, vc, 2)
	vc.Advance(10 * time.Millisecond)

	resp := <-done
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced query answered %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != traceID {
		t.Fatalf("response trace header = %q, want %q", got, traceID)
	}
	if resp.Header.Get(obs.SpansHeader) == "" {
		t.Fatal("client supplied a trace header but got no spans back")
	}

	select {
	case rec := <-recc:
		return rec, []*stubReplica{hang, bad, good}
	case <-time.After(5 * time.Second):
		t.Fatal("OnTrace never fired")
		return obs.TraceRecord{}, nil
	}
}

// normalizeSpans maps the stubs' random-port URLs to stable role names
// and re-sorts under the trace's own (start, stage, replica) order. The
// raw timeline's only run-to-run variance is the tie-break between the
// two same-instant rpc spans, whose order follows the ephemeral port
// numbers; with roles substituted the order is canonical.
func normalizeSpans(spans []obs.Span, stubs []*stubReplica) []obs.Span {
	names := map[string]string{
		stubs[0].ts.URL: "replica-hang",
		stubs[1].ts.URL: "replica-500",
		stubs[2].ts.URL: "replica-good",
	}
	out := make([]obs.Span, len(spans))
	copy(out, spans)
	for i := range out {
		if n, ok := names[out[i].Replica]; ok {
			out[i].Replica = n
		}
	}
	tr := obs.NewTrace("", time.Unix(0, 0))
	for _, s := range out {
		tr.AddSpan(s)
	}
	return tr.Spans()
}

// TestTracePropagationHedgeFailover drives one query through the full
// incident the observability layer exists for — primary hangs, hedge
// answers 500, failover wins — and requires the span tree to name the
// loser, the winner, and the eviction pressure, with the trace ID
// propagated to every replica attempt.
func TestTracePropagationHedgeFailover(t *testing.T) {
	const traceID = "00000000feedbeef"
	rec, stubs := runTracedFailover(t, traceID)

	if rec.ID != traceID {
		t.Fatalf("trace ID = %q, want %q", rec.ID, traceID)
	}
	if rec.Route != "/v1/query" {
		t.Fatalf("route = %q", rec.Route)
	}
	// Propagation: every replica that saw the query saw the trace ID.
	for i, s := range stubs {
		if !s.sawTrace(traceID) {
			t.Errorf("replica %d never received the trace header", i)
		}
	}

	// The span timeline, exactly: the primary loses the hedge race after
	// 10 virtual ms and its loss carries the eviction (EvictAfter=1); the
	// hedge's 500 evicts it too; the failover wins; the winner's own
	// execute span is rebased into the router's timeline at the attempt
	// launch offset and stamped with the winner's URL.
	want := []obs.Span{
		{Stage: "rpc", Replica: "replica-hang", StartUS: 0, DurUS: 10000, Outcome: "lost-hedge-evicted"},
		{Stage: "merge", Replica: "", StartUS: 10000, DurUS: 0, Outcome: "ok"},
		{Stage: "rpc", Replica: "replica-500", StartUS: 10000, DurUS: 0, Outcome: "error-evicted"},
		{Stage: "rpc", Replica: "replica-good", StartUS: 10000, DurUS: 0, Outcome: "ok"},
		{Stage: "execute", Replica: "replica-good", StartUS: 10007, DurUS: 21, Outcome: "ok"},
	}
	got := normalizeSpans(rec.Spans, stubs)
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d:\n%s", len(got), len(want), obs.EncodeSpans(got))
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("span %d = %+v, want %+v", i, got[i], w)
		}
	}
	if rec.Dur != 10*time.Millisecond {
		t.Errorf("trace dur = %v, want 10ms of virtual time", rec.Dur)
	}
}

// TestTracePropagationByteStable runs the same scripted incident twice —
// fresh router, fresh virtual clock, same injected trace ID — and
// requires the serialized span timelines to be byte-identical. Replica
// URLs differ between runs (fresh listeners), so the comparison
// normalizes them by role; everything else must match exactly.
func TestTracePropagationByteStable(t *testing.T) {
	const traceID = "00000000feedbeef"
	serialize := func(rec obs.TraceRecord, stubs []*stubReplica) string {
		return rec.ID + "|" + rec.Dur.String() + "|" + obs.EncodeSpans(normalizeSpans(rec.Spans, stubs))
	}
	recA, stubsA := runTracedFailover(t, traceID)
	recB, stubsB := runTracedFailover(t, traceID)
	a, b := serialize(recA, stubsA), serialize(recB, stubsB)
	if a != b {
		t.Fatalf("two runs of the same scripted incident diverged:\n%s\n---\n%s", a, b)
	}
}
