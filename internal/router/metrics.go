package router

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/server"
)

// buildRegistry wires the router's /metricsz: every /statsz field as a
// func-backed series over the same atomics, per-shard request counters
// and exact RPC latency histograms, and the merge/cache stage
// histograms. Naming follows DESIGN.md §12 with an anns_router_ prefix
// so a combined scrape of router + shards never collides.
func (rt *Router) buildRegistry() {
	reg := obs.NewRegistry()
	rt.reg = reg

	counter := func(name, help string, v func() int64) {
		reg.CounterFunc(name, help, nil, func() float64 { return float64(v()) })
	}
	counter("anns_router_queries_total", "Merged point queries served (including cache hits).", rt.m.queries.Load)
	counter("anns_router_near_total", "Merged near (lambda) queries served.", rt.m.near.Load)
	counter("anns_router_batches_total", "Batch requests served.", rt.m.batches.Load)
	counter("anns_router_errors_total", "Merged queries that failed on every shard.", rt.m.errors.Load)
	counter("anns_router_rejected_total", "Requests rejected at max in-flight.", rt.m.rejected.Load)
	counter("anns_router_deadline_exceeded_total", "Requests that hit their end-to-end deadline.", rt.m.deadline.Load)
	counter("anns_router_probes_total", "Cells probed across merged answers.", rt.m.probes.Load)
	counter("anns_router_rounds_total", "Probing rounds across merged answers.", rt.m.rounds.Load)
	counter("anns_router_writes_total", "Acked mutations.", rt.m.writes.Load)
	counter("anns_router_write_errors_total", "Failed mutations.", rt.m.writeErrors.Load)
	counter("anns_router_replicated_frames_total", "WAL frames relayed to replicas.", rt.m.replications.Load)
	counter("anns_router_replication_errors_total", "WAL relay failures.", rt.m.replicationErrs.Load)
	counter("anns_router_promotions_total", "Primary promotions.", rt.m.promotions.Load)

	reg.GaugeFunc("anns_router_uptime_seconds", "Router uptime (on the router's clock).", nil,
		func() float64 { return rt.clock.Since(rt.start).Seconds() })
	reg.GaugeFunc("anns_router_in_flight", "Admitted requests currently in flight.", nil,
		func() float64 { return float64(len(rt.sem)) })
	reg.GaugeFunc("anns_router_max_rounds", "Max probing rounds seen on one merged query.", nil,
		func() float64 { return float64(rt.m.maxRounds.Load()) })
	reg.GaugeFunc("anns_router_max_parallel", "Max intra-query parallelism seen.", nil,
		func() float64 { return float64(rt.m.maxParallel.Load()) })
	reg.GaugeFunc("anns_router_epoch", "Placement epoch (bumped on promotion).", nil,
		func() float64 { return float64(rt.epoch.Load()) })
	reg.GaugeFunc("anns_router_shards", "Shard positions routed.", nil,
		func() float64 { return float64(len(rt.shards)) })

	for _, sh := range rt.shards {
		sh := sh
		lbl := obs.Labels{"shard": strconv.Itoa(sh.pos)}
		shardCounter := func(name, help string, v func() int64) {
			reg.CounterFunc(name, help, lbl, func() float64 { return float64(v()) })
		}
		shardCounter("anns_router_shard_requests_total", "Requests routed to this shard.", sh.requests.Load)
		shardCounter("anns_router_shard_errors_total", "Shard requests that failed on every replica.", sh.errors.Load)
		shardCounter("anns_router_shard_hedges_total", "Hedged second attempts launched.", sh.hedges.Load)
		shardCounter("anns_router_shard_hedge_wins_total", "Hedged attempts that won.", sh.hedgeWins.Load)
		shardCounter("anns_router_shard_failovers_total", "Failover attempts launched.", sh.failovers.Load)
		reg.GaugeFunc("anns_router_shard_healthy_replicas", "Healthy replicas in this shard's set.", lbl,
			func() float64 {
				n := 0
				for _, rep := range sh.replicas {
					if rep.healthy() {
						n++
					}
				}
				return float64(n)
			})
		reg.RegisterHistogram("anns_router_shard_rpc_seconds",
			"Winning shard RPC latency (exact LogHistogram).", lbl, sh.rpc)
	}

	if rt.cache != nil {
		cacheVal := func(v func(server.CacheStats) float64) func() float64 {
			return func() float64 {
				if cs := server.CacheStatsOf(rt.cache); cs != nil {
					return v(*cs)
				}
				return 0
			}
		}
		reg.CounterFunc("anns_router_cache_hits_total", "Result-cache hits.", nil,
			cacheVal(func(c server.CacheStats) float64 { return float64(c.Hits) }))
		reg.CounterFunc("anns_router_cache_misses_total", "Result-cache misses.", nil,
			cacheVal(func(c server.CacheStats) float64 { return float64(c.Misses) }))
		reg.CounterFunc("anns_router_cache_evictions_total", "Result-cache LRU evictions.", nil,
			cacheVal(func(c server.CacheStats) float64 { return float64(c.Evictions) }))
		reg.CounterFunc("anns_router_cache_invalidations_total", "Result-cache generation invalidations.", nil,
			cacheVal(func(c server.CacheStats) float64 { return float64(c.Invalidations) }))
		reg.GaugeFunc("anns_router_cache_entries", "Live result-cache entries.", nil,
			cacheVal(func(c server.CacheStats) float64 { return float64(c.Entries) }))
	}

	rt.hMerge = reg.Histogram("anns_router_stage_seconds", "Per-stage router latency.", obs.Labels{"stage": "merge"})
	rt.hCache = reg.Histogram("anns_router_stage_seconds", "Per-stage router latency.", obs.Labels{"stage": "cache_lookup"})
}
