package router

import (
	"sort"
	"sync"
	"time"
)

// Clock is the router's time source. The probe/backoff/latency state
// machine, the hedge timer, and the prober ticker all read time through
// it, so the chaos harness and unit tests can drive the whole failure
// state machine on virtual time — backoff expiry, probe cadence, hedge
// arming — without real sleeps. Production routers use the wall clock
// (Config.Clock == nil).
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	NewTimer(d time.Duration) Timer
	NewTicker(d time.Duration) Ticker
}

// Timer is a clock-owned one-shot timer (time.Timer behind an
// interface so a VirtualClock can fire it on Advance).
type Timer interface {
	C() <-chan time.Time
	Stop() bool
}

// Ticker is a clock-owned repeating timer.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// wallClock is the default Clock: the real time package.
type wallClock struct{}

func (wallClock) Now() time.Time                  { return time.Now() }
func (wallClock) Since(t time.Time) time.Duration { return time.Since(t) }
func (wallClock) NewTimer(d time.Duration) Timer  { return wallTimer{time.NewTimer(d)} }
func (wallClock) NewTicker(d time.Duration) Ticker {
	return wallTicker{time.NewTicker(d)}
}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) C() <-chan time.Time { return w.t.C }
func (w wallTimer) Stop() bool          { return w.t.Stop() }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()               { w.t.Stop() }

// VirtualClock is a manually advanced Clock for deterministic tests:
// Now is frozen between Advance calls, and Advance fires every timer
// and ticker that comes due, in chronological order, with Now set to
// each expiry instant while it fires. Sends never block — like the time
// package, a receiver that is not listening misses the tick rather than
// wedging the clock.
type VirtualClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*virtualWaiter
}

type virtualWaiter struct {
	clock   *VirtualClock
	ch      chan time.Time
	at      time.Time
	period  time.Duration // 0 = one-shot timer
	stopped bool
}

// NewVirtualClock returns a VirtualClock frozen at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *VirtualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

func (c *VirtualClock) newWaiter(d, period time.Duration) *virtualWaiter {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := &virtualWaiter{clock: c, ch: make(chan time.Time, 1), at: c.now.Add(d), period: period}
	c.waiters = append(c.waiters, w)
	return w
}

func (c *VirtualClock) NewTimer(d time.Duration) Timer { return c.newWaiter(d, 0) }
func (c *VirtualClock) NewTicker(d time.Duration) Ticker {
	return virtualTicker{c.newWaiter(d, d)}
}

// virtualTicker adapts virtualWaiter's Stop() bool to Ticker's Stop().
type virtualTicker struct{ *virtualWaiter }

func (t virtualTicker) Stop() { t.virtualWaiter.Stop() }

// Advance moves the clock forward by d, firing due timers and tickers
// in order of expiry.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		var next *virtualWaiter
		for _, w := range c.waiters {
			if w.stopped || w.at.After(target) {
				continue
			}
			if next == nil || w.at.Before(next.at) {
				next = w
			}
		}
		if next == nil {
			break
		}
		c.now = next.at
		select {
		case next.ch <- next.at:
		default: // receiver not listening: drop the tick, like time.Ticker
		}
		if next.period > 0 {
			next.at = next.at.Add(next.period)
		} else {
			next.stopped = true
		}
	}
	c.now = target
	// Compact out dead one-shot waiters so long-lived clocks don't leak.
	live := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.stopped {
			live = append(live, w)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].at.Before(live[j].at) })
	c.waiters = live
	c.mu.Unlock()
}

func (w *virtualWaiter) C() <-chan time.Time { return w.ch }

func (w *virtualWaiter) Stop() bool {
	w.clock.mu.Lock()
	defer w.clock.mu.Unlock()
	wasLive := !w.stopped
	w.stopped = true
	return wasLive
}
