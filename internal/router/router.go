// Package router is the multi-node serving tier: a coordinator that
// serves the same /v1/query, /v1/batch, /v1/near API as internal/server
// by scatter-gathering over N remote annsd shard servers, each holding
// one shard of the logical index (produced by `annsctl shard-split`).
//
// Per-shard answers are folded with anns.MergeShardReplies — the exact
// fold anns.ShardedIndex uses in-process (rounds = max over shards,
// probes and max_parallel = sum) — so distributed answers are
// byte-identical to a single-process server over the same corpus.
//
// Each shard position maps to a replica set with health-probe-driven
// membership (periodic /healthz polling, consecutive-failure eviction
// with exponential backoff, probe-driven readmission), per-shard hedged
// requests after a latency quantile, bounded in-flight admission, and
// /statsz rollups (per-shard p50/p95/p99, hedge rate, replica state).
// See README.md and DESIGN.md §6.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/anns"
	"repro/internal/cellprobe"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/server"
)

// Config tunes the router. Zero values select the defaults noted on each
// field.
type Config struct {
	// Dimension is the Hamming dimension every shard serves. Required.
	Dimension int
	// N is the logical database size (for /healthz; from the manifest).
	N int
	// Replicas lists each shard position's replica base URLs
	// (e.g. "http://10.0.0.3:7080"), in shard order. Required.
	Replicas [][]string
	// ShardSizes and ShardSeeds are each shard's expected point count
	// and derived build seed from the placement manifest. When set (len
	// must equal len(Replicas)), the health prober cross-checks every
	// replica's /healthz report against them and treats a mismatch as
	// unhealthy — a replica booted from the wrong shard's snapshot (or a
	// swapped -shard flag) is evicted with a "misrouted" reason instead
	// of silently returning answers that merge into wrong results.
	ShardSizes []int
	ShardSeeds []uint64

	// MaxInFlight bounds concurrently admitted requests; overflow is
	// rejected with 503. Default 512.
	MaxInFlight int
	// MaxBatch caps len(points) of one /v1/batch request. Default 4096.
	MaxBatch int
	// DefaultTimeout is the end-to-end deadline when the request does not
	// set timeout_ms. Default 2s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines. Default 30s.
	MaxTimeout time.Duration
	// RequestTimeout floors the per-attempt deadline against one replica.
	// An attempt may use up to half the request's remaining end-to-end
	// budget when that is larger (a legitimately slow request — a large
	// batch under a generous timeout_ms — must be able to finish while
	// still leaving failover headroom), and never more than the full
	// remaining budget. Sitting below the 2s default end-to-end deadline
	// is what lets an attempt against a query-hanging replica time out,
	// count against its health, and fail over. Default 1s.
	RequestTimeout time.Duration

	// HedgeQuantile is the latency quantile of a shard's recent window
	// after which a hedged request goes to a second replica. Default 0.95.
	HedgeQuantile float64
	// HedgeCold is the hedge delay while a shard's window is cold.
	// Default 50ms.
	HedgeCold time.Duration
	// HedgeMin floors the hedge delay so a fast shard does not hedge
	// every request on scheduling jitter. Default 1ms.
	HedgeMin time.Duration

	// ProbeInterval is the health-poll period. Default 500ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz probe. Default 1s.
	ProbeTimeout time.Duration
	// EvictAfter is the consecutive-failure count that evicts a replica.
	// Default 2.
	EvictAfter int
	// BackoffBase/BackoffMax bound the eviction backoff (doubles on every
	// failed readmission probe). Defaults 500ms / 8s.
	BackoffBase time.Duration
	BackoffMax  time.Duration

	// CacheEntries bounds the router's query-result cache; 0 (the
	// default) disables it. Entries live at the router's write generation
	// (bumped on every acked mutation), so over immutable snapshots they
	// never invalidate and over a replicated mutable cluster every write
	// invalidates the whole cache — enabling it never changes an answer.
	// Keys are the same fingerprints the shard servers use
	// (server.QueryCacheKey / server.NearCacheKey).
	CacheEntries int

	// Durability selects the write-ack policy (DESIGN.md §11.3):
	// DurabilityPrimary (the default) acks when the primary's WAL append
	// returns — replica relay failures are counted but do not fail the
	// request; DurabilityQuorum acks only when ⌊R/2⌋+1 replicas (counting
	// the primary) hold the frame.
	Durability string
	// Manifest, when set, carries the cluster's placement manifest: the
	// initial epoch and per-shard primary designations are read from it,
	// and a promotion rewrites it (epoch bumped) at ManifestPath so a
	// router restart keeps the promoted topology.
	Manifest     *Manifest
	ManifestPath string

	// Client overrides the HTTP client (tests). Default: pooled transport.
	Client *http.Client

	// Clock overrides the time source for the probe/backoff/hedge state
	// machine (virtual-time tests, the chaos harness). Default: wall clock.
	// Context deadlines still run on wall time — the Clock governs the
	// router's own timers, not the kernel's.
	Clock Clock

	// OnReplicaState, when set, is called on every replica state
	// transition: state is StateEvicted or StateHealthy, reason the
	// failure that tipped the eviction ("" on readmission). Called
	// synchronously from the probe and request paths — keep it fast and
	// never call back into the Router from it.
	OnReplicaState func(shard int, url, state, reason string)

	// Trace configures request tracing and the slow-query log (obs). The
	// zero value disables emission; requests arriving with an
	// X-Anns-Trace header are still traced under that ID so a test or
	// upstream tier can force a timeline.
	Trace obs.TracerConfig
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 512
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeCold <= 0 {
		c.HedgeCold = 50 * time.Millisecond
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 500 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 8 * time.Second
	}
	if c.Durability == "" {
		c.Durability = DurabilityPrimary
	}
	return c
}

// metrics is the router's merged-query counter block (same accounting as
// internal/server's, over merged logical answers).
type metrics struct {
	queries, near, batches atomic.Int64
	errors, rejected       atomic.Int64
	deadline               atomic.Int64
	probes, rounds         atomic.Int64
	maxRounds, maxParallel atomic.Int64

	writes, writeErrors           atomic.Int64
	replications, replicationErrs atomic.Int64
	promotions                    atomic.Int64
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (m *metrics) record(res anns.Result, failed bool) {
	m.probes.Add(int64(res.Probes))
	m.rounds.Add(int64(res.Rounds))
	atomicMax(&m.maxRounds, int64(res.Rounds))
	atomicMax(&m.maxParallel, int64(res.MaxParallel))
	if failed {
		m.errors.Add(1)
	}
}

// Router is the shard-scatter coordinator. Construct with New, expose
// with Handler or ListenAndServe, stop with Close.
type Router struct {
	cfg    Config
	client *http.Client
	clock  Clock
	shards []*shard
	global func(shard, local int) int
	mux    *http.ServeMux
	sem    chan struct{}
	quit   chan struct{}
	done   chan struct{}
	once   sync.Once
	start  time.Time
	m      metrics
	cache  *qcache.Cache // nil when Config.CacheEntries == 0

	reg    *obs.Registry
	tracer *obs.Tracer
	// Stage histograms: shard-reply merge and cache lookup. Per-shard
	// RPC histograms live on each shard (replica.go).
	hMerge, hCache *obs.Histogram

	// Write-path state (writes.go). Mutations are serialized under
	// writeMu — global ID assignment is an order, and sequential
	// assignment is what keeps a routed cluster byte-identical to a
	// single MutableSharded oracle. wgen is the cache's invalidation
	// generation (bumped on every acked write); epoch is the placement
	// epoch (bumped on every promotion).
	writeMu       sync.Mutex
	nextGlobal    uint64 // guarded by writeMu
	nextInit      bool   // guarded by writeMu
	writesStarted atomic.Bool
	wgen          atomic.Uint64
	epoch         atomic.Uint64

	httpMu sync.Mutex
	httpS  *http.Server
}

// New builds a Router over cfg.Replicas and starts the health prober.
// The local→global answer translation follows the round-robin placement
// of BuildSharded / shard-split.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Dimension < 2 {
		return nil, errors.New("router: Config.Dimension must be at least 2")
	}
	if len(cfg.Replicas) < 1 {
		return nil, errors.New("router: need at least 1 shard")
	}
	if cfg.ShardSizes != nil && len(cfg.ShardSizes) != len(cfg.Replicas) {
		return nil, fmt.Errorf("router: %d shard sizes for %d shards", len(cfg.ShardSizes), len(cfg.Replicas))
	}
	if cfg.ShardSeeds != nil && len(cfg.ShardSeeds) != len(cfg.Replicas) {
		return nil, fmt.Errorf("router: %d shard seeds for %d shards", len(cfg.ShardSeeds), len(cfg.Replicas))
	}
	if cfg.Durability != DurabilityPrimary && cfg.Durability != DurabilityQuorum {
		return nil, fmt.Errorf("router: unknown durability %q (want %q or %q)",
			cfg.Durability, DurabilityPrimary, DurabilityQuorum)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = wallClock{}
	}
	rt := &Router{
		cfg:    cfg,
		client: cfg.Client,
		clock:  clock,
		shards: make([]*shard, len(cfg.Replicas)),
		global: anns.RoundRobinGlobal(len(cfg.Replicas)),
		mux:    http.NewServeMux(),
		sem:    make(chan struct{}, cfg.MaxInFlight),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		start:  clock.Now(),
		cache:  qcache.New(cfg.CacheEntries),
	}
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * cfg.MaxInFlight,
			MaxIdleConnsPerHost: cfg.MaxInFlight,
		}}
	}
	for s, urls := range cfg.Replicas {
		if len(urls) == 0 {
			return nil, fmt.Errorf("router: shard %d has no replicas", s)
		}
		sh := &shard{pos: s, lat: newLatWindow(cfg.HedgeQuantile), rpc: obs.NewHistogram()}
		for _, u := range urls {
			sh.replicas = append(sh.replicas, &replica{url: u})
		}
		// The primary designation comes from the manifest when it carries
		// one (v2); position 0 otherwise.
		if cfg.Manifest != nil && s < len(cfg.Manifest.Files) {
			if p := cfg.Manifest.Files[s].Primary; p > 0 && p < len(urls) {
				sh.primary.Store(int32(p))
			}
		}
		rt.shards[s] = sh
	}
	if cfg.Manifest != nil {
		rt.epoch.Store(cfg.Manifest.Epoch)
	}
	rt.mux.HandleFunc("POST /v1/query", rt.handleQuery)
	rt.mux.HandleFunc("POST /v1/near", rt.handleNear)
	rt.mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("POST /v1/insert", rt.handleInsert)
	rt.mux.HandleFunc("POST /v1/delete", rt.handleDelete)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /statsz", rt.handleStats)
	rt.tracer = obs.NewTracer(cfg.Trace)
	rt.buildRegistry()
	rt.mux.Handle("GET /metricsz", rt.reg)
	// One synchronous sweep before serving: without it, every replica
	// starts healthy and a misrouted one (swapped -shard flag) would
	// merge wrong answers until the ticker's first firing. Replicas that
	// are merely not up yet survive the sweep (one transport failure is
	// below EvictAfter); manifest mismatches evict immediately.
	rt.probeSweep(rt.clock.Now())
	go rt.prober()
	return rt, nil
}

// Handler returns the HTTP handler (for httptest and custom servers).
func (rt *Router) Handler() http.Handler { return rt.mux }

// ListenAndServe serves on addr until Close or a listener error.
func (rt *Router) ListenAndServe(addr string) error {
	hs := &http.Server{Addr: addr, Handler: rt.mux}
	rt.httpMu.Lock()
	rt.httpS = hs
	rt.httpMu.Unlock()
	err := hs.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown gracefully drains the HTTP listener, then stops the prober.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.httpMu.Lock()
	hs := rt.httpS
	rt.httpMu.Unlock()
	var err error
	if hs != nil {
		err = hs.Shutdown(ctx)
	}
	rt.Close()
	return err
}

// Close stops the health prober. Safe to call more than once.
func (rt *Router) Close() {
	rt.once.Do(func() { close(rt.quit) })
	<-rt.done
}

// ---- health probing ----

func (rt *Router) prober() {
	defer close(rt.done)
	t := rt.clock.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-t.C():
			rt.probeSweep(rt.clock.Now())
		}
	}
}

// probeSweep launches one probe per eligible replica. Probes run
// concurrently so one dead host cannot stall the sweep past the next
// tick; beginProbe guarantees at most one probe per replica in flight.
func (rt *Router) probeSweep(now time.Time) {
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		for _, rep := range sh.replicas {
			if rep.beginProbe(now) {
				wg.Add(1)
				go func(rep *replica, pos int) {
					defer wg.Done()
					rt.probe(rep, pos)
				}(rep, sh.pos)
			}
		}
	}
	wg.Wait()
	// A dead primary is promoted away between writes too, so failover is
	// visible to read-only clients (and /statsz) without waiting for the
	// next mutation to trip over it. Gated on writesStarted: an immutable
	// cluster has no meaningful primary and must not churn the epoch.
	if rt.writesStarted.Load() {
		for _, sh := range rt.shards {
			if sh.replicas[sh.primary.Load()].healthy() {
				continue
			}
			rt.writeMu.Lock()
			if !sh.replicas[sh.primary.Load()].healthy() {
				rt.promoteLocked(sh)
			}
			rt.writeMu.Unlock()
		}
	}
}

// probe polls one replica's /healthz and validates the report against
// the placement manifest: a reachable replica that serves the wrong
// dimension, the wrong point count, or — decisive for same-size shards —
// the wrong derived seed is a *misrouted* replica whose answers would
// merge into silently wrong results. Transport failures count toward the
// usual EvictAfter threshold; a manifest mismatch is a deterministic
// configuration error and evicts immediately.
func (rt *Router) probe(rep *replica, shardPos int) {
	defer rep.endProbe()
	reason, mismatch, err := rt.checkHealth(rep, shardPos)
	if err != nil {
		reason = err.Error()
	}
	if reason == "" {
		rt.replicaSuccess(shardPos, rep, true)
		return
	}
	rep.setLastErr(reason)
	evictAfter := rt.cfg.EvictAfter
	if mismatch {
		evictAfter = 1
	}
	rt.replicaFailure(shardPos, rep, evictAfter, reason)
}

// replicaSuccess records a success (probe-path when probe is true,
// request-path otherwise) and fires the OnReplicaState hook when the
// call readmitted an evicted replica.
func (rt *Router) replicaSuccess(shardPos int, rep *replica, probe bool) {
	now := rt.clock.Now()
	var readmitted bool
	if probe {
		readmitted = rep.probeSuccess(now)
	} else {
		readmitted = rep.reportSuccess(now)
	}
	if readmitted && rt.cfg.OnReplicaState != nil {
		rt.cfg.OnReplicaState(shardPos, rep.url, StateHealthy, "")
	}
}

// replicaFailure records a failure and fires the OnReplicaState hook
// when the call crossed the eviction threshold. It reports whether this
// failure evicted the replica, so the request path can stamp eviction
// pressure onto trace spans.
func (rt *Router) replicaFailure(shardPos int, rep *replica, evictAfter int, reason string) bool {
	evicted := rep.reportFailure(rt.clock.Now(), evictAfter, rt.cfg.BackoffBase, rt.cfg.BackoffMax)
	if evicted && rt.cfg.OnReplicaState != nil {
		rt.cfg.OnReplicaState(shardPos, rep.url, StateEvicted, reason)
	}
	return evicted
}

// checkHealth fetches and validates one /healthz report. It returns a
// non-empty reason for unhealthy-but-reachable replicas (mismatch marks
// a deterministic manifest violation) and an error for transport
// failures.
func (rt *Router) checkHealth(rep *replica, shardPos int) (reason string, mismatch bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		return "", false, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return "", false, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if err != nil {
		return "", false, err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Sprintf("healthz answered %d", resp.StatusCode), false, nil
	}
	var h server.Health
	if err := json.Unmarshal(body, &h); err != nil {
		return fmt.Sprintf("bad healthz body: %v", err), false, nil
	}
	if h.Dim != rt.cfg.Dimension {
		return fmt.Sprintf("serves dimension %d, cluster dimension is %d", h.Dim, rt.cfg.Dimension), true, nil
	}
	// A mutable replica reports its write progress; harvest it for
	// promotion ranking and skip the N-equality check — a replicating
	// shard grows past its snapshot size by design, so only the derived
	// seed still distinguishes same-shaped shards.
	mutable := h.ReplicationOffset != nil
	if mutable {
		rep.noteReplication(*h.ReplicationOffset)
	}
	if !mutable && rt.cfg.ShardSizes != nil && h.N != rt.cfg.ShardSizes[shardPos] {
		return fmt.Sprintf("misrouted: serves n=%d, shard %d's snapshot holds n=%d",
			h.N, shardPos, rt.cfg.ShardSizes[shardPos]), true, nil
	}
	if rt.cfg.ShardSeeds != nil && h.Seed != 0 && h.Seed != rt.cfg.ShardSeeds[shardPos] {
		return fmt.Sprintf("misrouted: serves seed %d, shard %d built with seed %d",
			h.Seed, shardPos, rt.cfg.ShardSeeds[shardPos]), true, nil
	}
	return "", false, nil
}

// ---- one shard request with failover + hedging ----

var errNoReplica = errors.New("router: no replica available")

// errCorruptReply marks a 200 answer whose body does not decode as the
// expected response type. It counts against the replica's health and
// triggers failover exactly like a 5xx: a replica emitting corrupt
// frames must never silently vanish from the merge (dropping its shard
// from the fold would produce a well-formed wrong answer).
var errCorruptReply = errors.New("router: replica answered 200 with an undecodable body")

// httpError is a non-200 answer from a replica. 5xx counts against the
// replica's health and triggers failover; 4xx means the router's own
// request is bad and fails fast (every replica would reject it the same
// way).
type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("replica answered %d: %s", e.status, e.body)
}

type attemptResult struct {
	body    []byte
	spans   string // X-Anns-Spans echoed by the replica (traced requests)
	err     error
	rep     *replica
	hedge   bool
	start   time.Time
	latency time.Duration
}

// shardDo runs one request against shard sh: a primary attempt on the
// picked replica, a hedged second attempt on a different replica once
// the shard's latency-quantile delay expires, and failover to untried
// replicas on failure. First success wins. Attempts are bounded by the
// replica-set size. valid, when non-nil, vets a 200 body before it can
// win: an undecodable body is converted to errCorruptReply and handled
// like any replica failure (health pressure + failover) instead of
// being dropped from the merge upstream.
func (rt *Router) shardDo(ctx context.Context, sh *shard, path string, body []byte, valid func([]byte) bool, tr *obs.Trace) ([]byte, error) {
	sh.requests.Add(1)
	primary := sh.pick(rt.clock.Now(), nil, true)
	if primary == nil {
		sh.errors.Add(1)
		tr.Add("rpc", "", "no-replica", rt.clock.Now(), 0)
		return nil, errNoReplica
	}
	// All attempts run under a derived context so the losing side of a
	// hedge (or a straggler behind a failover) is torn down as soon as a
	// winner lands, instead of burning a second replica's time on an
	// answer nobody will read.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	tried := []*replica{primary}
	resc := make(chan attemptResult, len(sh.replicas)+1)
	traceID := tr.ID()
	// launch is only called from this goroutine, so the attempt start it
	// captures is also readable here without synchronization (used for
	// the lost-hedge span below).
	var primaryStart time.Time
	launch := func(rep *replica, hedge bool) {
		t0 := rt.clock.Now()
		if rep == primary {
			primaryStart = t0
		}
		go func() {
			b, spans, err := rt.postTraced(ctx, rep.url+path, body, traceID)
			resc <- attemptResult{body: b, spans: spans, err: err, rep: rep, hedge: hedge, start: t0, latency: rt.clock.Since(t0)}
		}()
	}
	launch(primary, false)
	inflight := 1

	delay := sh.lat.hedgeDelay()
	if delay <= 0 {
		delay = rt.cfg.HedgeCold
	}
	if delay < rt.cfg.HedgeMin {
		delay = rt.cfg.HedgeMin
	}
	timer := rt.clock.NewTimer(delay)
	defer timer.Stop()
	timerC := timer.C()

	var lastErr error
	primaryDone := false
	for {
		select {
		case <-ctx.Done():
			sh.errors.Add(1)
			return nil, ctx.Err()
		case <-timerC:
			timerC = nil
			if rep := sh.pick(rt.clock.Now(), tried, false); rep != nil {
				tried = append(tried, rep)
				sh.hedges.Add(1)
				launch(rep, true)
				inflight++
			}
		case res := <-resc:
			inflight--
			if res.rep == primary {
				primaryDone = true
			}
			if res.err == nil && valid != nil && !valid(res.body) {
				res.err = errCorruptReply
			}
			if res.err == nil {
				// The primary losing to an attempt that started a full
				// hedge delay later is the gray-failure signal: a replica
				// that hangs on queries but answers health probes would
				// otherwise never accrue eviction pressure (its abandoned
				// attempt is canceled, not reported). Jitter is safe: one
				// success resets the consecutive-failure count.
				if !primaryDone {
					outcome := "lost-hedge"
					if rt.replicaFailure(sh.pos, primary, rt.cfg.EvictAfter, "lost hedge race") {
						outcome = "lost-hedge-evicted"
					}
					tr.Add("rpc", primary.url, outcome, primaryStart, rt.clock.Since(primaryStart))
				}
				rt.replicaSuccess(sh.pos, res.rep, false)
				sh.lat.record(res.latency)
				sh.rpc.Observe(res.latency)
				tr.Add("rpc", res.rep.url, "ok", res.start, res.latency)
				rt.rebaseRemoteSpans(tr, res)
				if res.hedge {
					sh.hedgeWins.Add(1)
				}
				return res.body, nil
			}
			lastErr = res.err
			var he *httpError
			if errors.As(res.err, &he) && he.status < 500 {
				sh.errors.Add(1)
				tr.Add("rpc", res.rep.url, "client-error", res.start, res.latency)
				return nil, res.err
			}
			{
				outcome := "error"
				if rt.replicaFailure(sh.pos, res.rep, rt.cfg.EvictAfter, res.err.Error()) {
					outcome = "error-evicted"
				}
				tr.Add("rpc", res.rep.url, outcome, res.start, res.latency)
			}
			if next := sh.pick(rt.clock.Now(), tried, true); next != nil {
				tried = append(tried, next)
				sh.failovers.Add(1)
				launch(next, false)
				inflight++
			} else if inflight == 0 {
				sh.errors.Add(1)
				return nil, lastErr
			}
		}
	}
}

// attemptTimeout resolves one attempt's deadline: RequestTimeout as the
// floor, up to half the remaining end-to-end budget (so one slow replica
// cannot consume the whole budget and leave failover nothing), capped by
// the remaining budget itself.
func (rt *Router) attemptTimeout(ctx context.Context) time.Duration {
	d := rt.cfg.RequestTimeout
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if half := remaining / 2; half > d {
			d = half
		}
		if remaining < d {
			d = remaining
		}
	}
	return d
}

// post runs one attempt against one replica URL under the per-attempt
// timeout, returning the 200 body or an error.
func (rt *Router) post(ctx context.Context, url string, body []byte) ([]byte, error) {
	b, _, err := rt.postTraced(ctx, url, body, "")
	return b, err
}

// postTraced is post with trace propagation: a non-empty traceID rides
// out on X-Anns-Trace and the replica's X-Anns-Spans answer rides back.
func (rt *Router) postTraced(ctx context.Context, url string, body []byte, traceID string) ([]byte, string, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.attemptTimeout(ctx))
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	spans := resp.Header.Get(obs.SpansHeader)
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		msg := string(b)
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return nil, spans, &httpError{status: resp.StatusCode, body: msg}
	}
	return b, spans, nil
}

// rebaseRemoteSpans folds a replica's own stage spans into the router's
// timeline: the replica reported offsets relative to its request arrival,
// which the router approximates with the attempt's launch instant. The
// replica column is stamped so a remote "execute" is attributable to the
// host that ran it.
func (rt *Router) rebaseRemoteSpans(tr *obs.Trace, res attemptResult) {
	if tr == nil || res.spans == "" {
		return
	}
	base := res.start.Sub(tr.Start()).Microseconds()
	for _, sp := range obs.DecodeSpans(res.spans) {
		sp.StartUS += base
		if sp.Replica == "" {
			sp.Replica = res.rep.url
		}
		tr.AddSpan(sp)
	}
}

// ---- scatter-gather ----

// fromWire converts a shard's wire answer back into the anns accounting.
func fromWire(qr server.QueryResponse) anns.Result {
	return anns.Result{
		Index:       qr.Index,
		Distance:    qr.Distance,
		Rounds:      qr.Rounds,
		Probes:      qr.Probes,
		MaxParallel: qr.MaxParallel,
	}
}

func toWire(res anns.Result, errMsg string) server.QueryResponse {
	return server.QueryResponse{
		Index:       res.Index,
		Distance:    res.Distance,
		Rounds:      res.Rounds,
		Probes:      res.Probes,
		MaxParallel: res.MaxParallel,
		Error:       errMsg,
	}
}

// scatterOne fans one raw /v1/query or /v1/near body out to every shard
// and merges. near selects the λ-decision OK semantics (YES answers
// only). answered reports whether at least one shard produced an answer
// (for near, a NO from a shard counts as answered).
func (rt *Router) scatterOne(ctx context.Context, path string, body []byte, near bool, tr *obs.Trace) (merged anns.Result, answered bool) {
	replies := make([]anns.ShardReply, len(rt.shards))
	wireOK := make([]bool, len(rt.shards)) // shard answered at all (Error == "")
	valid := func(raw []byte) bool {
		var qr server.QueryResponse
		return json.Unmarshal(raw, &qr) == nil
	}
	var wg sync.WaitGroup
	for s := range rt.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			raw, err := rt.shardDo(ctx, rt.shards[s], path, body, valid, tr)
			if err != nil {
				return // transport-level failure: no accounting, not OK
			}
			var qr server.QueryResponse
			if err := json.Unmarshal(raw, &qr); err != nil {
				return
			}
			res := fromWire(qr)
			wireOK[s] = qr.Error == ""
			ok := qr.Error == ""
			if near {
				ok = ok && qr.Index >= 0 // YES answers carry the witness
			}
			replies[s] = anns.ShardReply{Result: res, OK: ok}
		}(s)
	}
	wg.Wait()
	mStart := rt.clock.Now()
	merged = anns.MergeShardReplies(replies, rt.global)
	mDur := rt.clock.Since(mStart)
	rt.hMerge.Observe(mDur)
	tr.Add("merge", "", "ok", mStart, mDur)
	for _, ok := range wireOK {
		if ok {
			answered = true
			break
		}
	}
	return merged, answered
}

// ---- HTTP handlers ----

// writeJSON and the body/deadline limits are internal/server's own
// (WriteJSON, MaxBodyBytes, ClampTimeout), so the two tiers cannot
// drift apart on schema, caps, or clamp semantics.
var writeJSON = server.WriteJSON

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, server.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return nil, false
	}
	return body, true
}

// admit reserves one in-flight slot, or writes the 503 and reports false.
func (rt *Router) admit(w http.ResponseWriter) bool {
	select {
	case rt.sem <- struct{}{}:
		return true
	default:
		rt.m.rejected.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, server.ErrorResponse{Error: "router at max in-flight"})
		return false
	}
}

func (rt *Router) release() { <-rt.sem }

// timeout resolves the end-to-end deadline from the optional timeout_ms.
func (rt *Router) timeout(ms int) time.Duration {
	return server.ClampTimeout(ms, rt.cfg.DefaultTimeout, rt.cfg.MaxTimeout)
}

// beginTrace starts a trace for one router request: a client- or
// test-supplied X-Anns-Trace is adopted verbatim (deterministic IDs for
// the propagation test), otherwise the router mints one when its tracer
// is on. The root instant comes from the router's Clock so span offsets
// are exact under VirtualClock.
func (rt *Router) beginTrace(r *http.Request, start time.Time) *obs.Trace {
	if id := r.Header.Get(obs.TraceHeader); id != "" {
		return obs.NewTrace(id, start)
	}
	return rt.tracer.Begin("", start)
}

// finishTrace stamps the trace ID on the response, echoes the assembled
// span timeline when the request carried its own trace header, and emits
// through the tracer. Must run before the response body is written.
func (rt *Router) finishTrace(w http.ResponseWriter, r *http.Request, tr *obs.Trace, start time.Time) {
	if tr == nil {
		return
	}
	w.Header().Set(obs.TraceHeader, tr.ID())
	if r.Header.Get(obs.TraceHeader) != "" {
		if enc := obs.EncodeSpans(tr.Spans()); enc != "" {
			w.Header().Set(obs.SpansHeader, enc)
		}
	}
	rt.tracer.Finish(tr, r.URL.Path, rt.clock.Since(start))
}

// lookupCache is the router cache read plus stage accounting.
func (rt *Router) lookupCache(key cellprobe.Addr, gen uint64, tr *obs.Trace) (server.QueryResponse, bool) {
	if rt.cache == nil {
		return server.QueryResponse{}, false
	}
	cStart := rt.clock.Now()
	v, ok := rt.cache.Get(key, gen)
	d := rt.clock.Since(cStart)
	rt.hCache.Observe(d)
	outcome := "miss"
	if ok {
		outcome = "hit"
	}
	tr.Add("cache_lookup", "", outcome, cStart, d)
	if !ok {
		return server.QueryResponse{}, false
	}
	return v.(server.QueryResponse), true
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := rt.clock.Now()
	tr := rt.beginTrace(r, start)
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req server.QueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	x, err := server.DecodePoint(req.Point, rt.cfg.Dimension)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: err.Error()})
		return
	}
	// Cached replies live at the router's write generation: constant over
	// immutable snapshots (every entry stays valid forever), bumped on
	// every acked mutation over a replicated cluster (every entry from
	// before the write misses). The generation is read *before* the
	// scatter — the §10.4 safe direction: a write landing mid-scatter
	// advances the generation past the one this entry is stored at, so a
	// stale answer can be cached but never served.
	gen := rt.wgen.Load()
	key := server.QueryCacheKey(x)
	if v, ok := rt.lookupCache(key, gen, tr); ok {
		rt.m.queries.Add(1)
		rt.finishTrace(w, r, tr, start)
		writeJSON(w, http.StatusOK, v)
		return
	}
	if !rt.admit(w) {
		return
	}
	defer rt.release()
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout(req.TimeoutMS))
	defer cancel()
	// The shard request body is the router request body: both ends speak
	// internal/server's wire schema, so the point is forwarded verbatim.
	merged, _ := rt.scatterOne(ctx, "/v1/query", body, false, tr)
	if rt.deadlineExpired(w, ctx) {
		return
	}
	rt.m.queries.Add(1)
	failed := merged.Index < 0
	rt.m.record(merged, failed)
	msg := ""
	if failed {
		msg = "router: query failed on every shard"
	}
	resp := toWire(merged, msg)
	if !failed {
		rt.cache.Put(key, gen, resp)
	}
	rt.finishTrace(w, r, tr, start)
	writeJSON(w, http.StatusOK, resp)
}

// deadlineExpired mirrors internal/server's admit path: a request whose
// end-to-end deadline passed gets 504, not a 200 with an error body, so
// clients and load balancers see identical status semantics from both
// tiers.
func (rt *Router) deadlineExpired(w http.ResponseWriter, ctx context.Context) bool {
	if err := ctx.Err(); err != nil {
		rt.m.deadline.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, server.ErrorResponse{Error: err.Error()})
		return true
	}
	return false
}

func (rt *Router) handleNear(w http.ResponseWriter, r *http.Request) {
	start := rt.clock.Now()
	tr := rt.beginTrace(r, start)
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req server.NearRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.Lambda <= 0 {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: "lambda must be positive"})
		return
	}
	x, err := server.DecodePoint(req.Point, rt.cfg.Dimension)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: err.Error()})
		return
	}
	gen := rt.wgen.Load()
	key := server.NearCacheKey(x, req.Lambda)
	if v, ok := rt.lookupCache(key, gen, tr); ok {
		rt.m.near.Add(1)
		rt.finishTrace(w, r, tr, start)
		writeJSON(w, http.StatusOK, v)
		return
	}
	if !rt.admit(w) {
		return
	}
	defer rt.release()
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout(req.TimeoutMS))
	defer cancel()
	merged, answered := rt.scatterOne(ctx, "/v1/near", body, true, tr)
	if rt.deadlineExpired(w, ctx) {
		return
	}
	rt.m.near.Add(1)
	// Mirror ShardedIndex.QueryNear: NO is an answer (all shards answered
	// NO), an error is not (no shard answered at all).
	failed := merged.Index < 0 && !answered
	rt.m.record(merged, failed)
	msg := ""
	if failed {
		msg = "router: near query failed on every shard"
	}
	resp := toWire(merged, msg)
	if !failed {
		rt.cache.Put(key, gen, resp)
	}
	rt.finishTrace(w, r, tr, start)
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := rt.clock.Now()
	tr := rt.beginTrace(r, start)
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req server.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if len(req.Points) == 0 {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: "empty points"})
		return
	}
	if len(req.Points) > rt.cfg.MaxBatch {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			server.ErrorResponse{Error: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Points), rt.cfg.MaxBatch)})
		return
	}
	for i, enc := range req.Points {
		if _, err := server.DecodePoint(enc, rt.cfg.Dimension); err != nil {
			writeJSON(w, http.StatusBadRequest,
				server.ErrorResponse{Error: fmt.Sprintf("point %d: %v", i, err)})
			return
		}
	}
	if !rt.admit(w) {
		return
	}
	defer rt.release()
	ctx, cancel := context.WithTimeout(r.Context(), rt.timeout(req.TimeoutMS))
	defer cancel()

	// One batch request per shard (the whole batch is each shard's
	// fan-out unit), merged point-wise afterwards. The validator also
	// checks the result count, so a truncated-but-parseable frame fails
	// over instead of dropping the shard from every slot's merge.
	valid := func(raw []byte) bool {
		var br server.BatchResponse
		return json.Unmarshal(raw, &br) == nil && len(br.Results) == len(req.Points)
	}
	shardResults := make([][]server.QueryResponse, len(rt.shards))
	var wg sync.WaitGroup
	for s := range rt.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			raw, err := rt.shardDo(ctx, rt.shards[s], "/v1/batch", body, valid, tr)
			if err != nil {
				return
			}
			var br server.BatchResponse
			if err := json.Unmarshal(raw, &br); err != nil || len(br.Results) != len(req.Points) {
				return
			}
			shardResults[s] = br.Results
		}(s)
	}
	wg.Wait()
	if rt.deadlineExpired(w, ctx) {
		return
	}

	rt.m.batches.Add(1)
	resp := server.BatchResponse{Results: make([]server.QueryResponse, len(req.Points))}
	replies := make([]anns.ShardReply, len(rt.shards))
	for i := range req.Points {
		shed := false
		for s := range rt.shards {
			replies[s] = anns.ShardReply{}
			if rs := shardResults[s]; rs != nil {
				qr := rs[i]
				replies[s] = anns.ShardReply{Result: fromWire(qr), OK: qr.Error == ""}
				if isCancelMsg(qr.Error) {
					shed = true
				}
			}
		}
		merged := anns.MergeShardReplies(replies, rt.global)
		failed := merged.Index < 0
		// Mirror internal/server's batch accounting: slots a shard's
		// deadline cancelled before dispatch were shed, not executed —
		// charging them to errors would corrupt error_rate (the scheme's
		// failure probability, not load shedding).
		if failed && shed {
			resp.Results[i] = toWire(merged, "router: query shed by shard deadline")
			continue
		}
		rt.m.queries.Add(1)
		rt.m.record(merged, failed)
		msg := ""
		if failed {
			msg = "router: query failed on every shard"
		}
		resp.Results[i] = toWire(merged, msg)
	}
	rt.finishTrace(w, r, tr, start)
	writeJSON(w, http.StatusOK, resp)
}

// isCancelMsg recognizes a shard slot whose error is context
// cancellation (load shedding), which travels as text over the wire.
func isCancelMsg(msg string) bool {
	if msg == "" {
		return false
	}
	return strings.Contains(msg, context.Canceled.Error()) ||
		strings.Contains(msg, context.DeadlineExceeded.Error())
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, server.Health{
		Status:   "ok",
		N:        rt.cfg.N,
		Shards:   len(rt.shards),
		Dim:      rt.cfg.Dimension,
		UptimeMS: rt.clock.Since(rt.start).Milliseconds(),
	})
}

// Stats returns the current rollup (also served at /statsz).
func (rt *Router) Stats() Stats {
	up := rt.clock.Since(rt.start)
	out := Stats{
		UptimeMS:         up.Milliseconds(),
		Queries:          rt.m.queries.Load(),
		Near:             rt.m.near.Load(),
		Batches:          rt.m.batches.Load(),
		Errors:           rt.m.errors.Load(),
		Rejected:         rt.m.rejected.Load(),
		DeadlineExceeded: rt.m.deadline.Load(),
		Probes:           rt.m.probes.Load(),
		Rounds:           rt.m.rounds.Load(),
		MaxRounds:        rt.m.maxRounds.Load(),
		MaxParallel:      rt.m.maxParallel.Load(),
		InFlight:         len(rt.sem),
		Writes:           rt.m.writes.Load(),
		WriteErrors:      rt.m.writeErrors.Load(),
		ReplicatedFrames: rt.m.replications.Load(),
		ReplicationErrs:  rt.m.replicationErrs.Load(),
		Promotions:       rt.m.promotions.Load(),
		Epoch:            rt.epoch.Load(),
		Durability:       rt.cfg.Durability,
	}
	if sec := up.Seconds(); sec > 0 {
		out.QPS = float64(out.Queries+out.Near) / sec
	}
	if total := out.Queries + out.Near; total > 0 {
		out.ErrorRate = float64(out.Errors) / float64(total)
	}
	var shardReqs int64
	for _, sh := range rt.shards {
		// Quantiles come from the shard's exact LogHistogram over every
		// successful RPC, not the 512-sample latWindow (which survives
		// only to drive the hedge-delay policy).
		ss := ShardStats{
			Shard:        sh.pos,
			Replicas:     len(sh.replicas),
			Requests:     sh.requests.Load(),
			Errors:       sh.errors.Load(),
			Hedges:       sh.hedges.Load(),
			HedgeWins:    sh.hedgeWins.Load(),
			Failovers:    sh.failovers.Load(),
			P50MS:        sh.rpc.QuantileMS(0.50),
			P95MS:        sh.rpc.QuantileMS(0.95),
			P99MS:        sh.rpc.QuantileMS(0.99),
			HedgeDelayMS: float64(sh.lat.hedgeDelay().Microseconds()) / 1000,
		}
		primary := int(sh.primary.Load())
		ss.Primary = sh.replicas[primary].url
		for i, rep := range sh.replicas {
			rs := rep.snapshot()
			rs.Primary = i == primary
			if rs.State == StateHealthy {
				ss.Healthy++
			}
			ss.ReplicaStats = append(ss.ReplicaStats, rs)
		}
		out.Hedges += ss.Hedges
		out.HedgeWins += ss.HedgeWins
		out.Failovers += ss.Failovers
		shardReqs += ss.Requests
		out.ShardStats = append(out.ShardStats, ss)
	}
	if shardReqs > 0 {
		out.HedgeRate = float64(out.Hedges) / float64(shardReqs)
	}
	out.Cache = server.CacheStatsOf(rt.cache)
	return out
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.Stats())
}
