package router

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// TestVirtualClockAdvance pins the virtual clock's contract: Now is
// frozen between Advance calls, timers and tickers fire in expiry
// order, a ticker fires once per elapsed period, and Stop silences a
// waiter.
func TestVirtualClockAdvance(t *testing.T) {
	start := time.Unix(5000, 0)
	c := NewVirtualClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}

	timer := c.NewTimer(30 * time.Millisecond)
	ticker := c.NewTicker(10 * time.Millisecond)

	c.Advance(25 * time.Millisecond)
	if got := len(drain(ticker.C())); got != 1 {
		// The channel has capacity 1: ticks at 10ms and 20ms both came
		// due, but the second found the buffer full and was dropped,
		// exactly like time.Ticker under a slow receiver.
		t.Fatalf("ticker fired %d buffered ticks, want 1 (capacity-1 drop)", got)
	}
	select {
	case <-timer.C():
		t.Fatal("timer fired before its deadline")
	default:
	}
	if want := start.Add(25 * time.Millisecond); !c.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}

	c.Advance(10 * time.Millisecond)
	select {
	case at := <-timer.C():
		if want := start.Add(30 * time.Millisecond); !at.Equal(want) {
			t.Fatalf("timer fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire after its deadline passed")
	}

	drain(ticker.C()) // clear the tick buffered at t=30ms before stopping
	ticker.Stop()
	if timer.Stop() {
		t.Fatal("Stop on an already-fired timer reported it live")
	}
	c.Advance(time.Second)
	if got := len(drain(ticker.C())); got != 0 {
		t.Fatalf("stopped ticker fired %d ticks", got)
	}
}

func drain(ch <-chan time.Time) []time.Time {
	var out []time.Time
	for {
		select {
		case at := <-ch:
			out = append(out, at)
		default:
			return out
		}
	}
}

// TestProberRunsOnVirtualTime pins the satellite contract: a router
// built with a VirtualClock drives its probe cadence (and uptime) from
// that clock, so tests advance virtual time instead of sleeping through
// real ProbeIntervals.
func TestProberRunsOnVirtualTime(t *testing.T) {
	sx, _ := buildShards(t, 1)
	var probes atomic.Int64
	counting := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				probes.Add(1)
			}
			next.ServeHTTP(w, r)
		})
	}
	ts := serveShard(t, sx.Shard(0), counting)

	vc := NewVirtualClock(time.Unix(0, 0))
	rt := newRouter(t, Config{
		Dimension:     testDim,
		N:             sx.Len(),
		Replicas:      [][]string{{ts.URL}},
		ProbeInterval: time.Hour, // would never fire inside a real-time test
		Clock:         vc,
	})

	base := probes.Load() // the synchronous boot sweep
	if base == 0 {
		t.Fatal("no boot probe sweep")
	}
	// The prober goroutine registers its ticker asynchronously after New
	// returns; advancing before that registration would fire nothing.
	waitFor(t, func() bool {
		vc.mu.Lock()
		defer vc.mu.Unlock()
		return len(vc.waiters) > 0
	}, "prober ticker registration")
	for i := 0; i < 3; i++ {
		vc.Advance(time.Hour)
		waitFor(t, func() bool { return probes.Load() >= base+int64(i+1) },
			"probe sweep after virtual ProbeInterval")
	}
	vc.Advance(30 * time.Minute)
	if got := rt.Stats().UptimeMS; got != (3*time.Hour + 30*time.Minute).Milliseconds() {
		t.Fatalf("uptime = %dms, want virtual elapsed", got)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRouterFailsOverOnCorruptBody pins the corrupt-frame contract: a
// replica that answers 200 with an undecodable body must be treated as
// failed — health pressure plus failover to a clean replica — never
// silently dropped from the merge (which would yield a well-formed
// wrong answer).
func TestRouterFailsOverOnCorruptBody(t *testing.T) {
	sx, inst := buildShards(t, 1)
	corrupting := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !strings.HasPrefix(r.URL.Path, "/v1/") {
				next.ServeHTTP(w, r) // healthz stays clean: a gray corruptor
				return
			}
			rec := httptest.NewRecorder()
			next.ServeHTTP(rec, r)
			body := rec.Body.Bytes()
			if len(body) > 1 {
				body[0] ^= 0xFF
				body = body[:len(body)-1]
			}
			w.WriteHeader(rec.Code)
			w.Write(body)
		})
	}
	bad := serveShard(t, sx.Shard(0), corrupting)
	good := serveShard(t, sx.Shard(0), nil)
	rt := newRouter(t, Config{
		Dimension:  testDim,
		N:          sx.Len(),
		Replicas:   [][]string{{bad.URL, good.URL}},
		EvictAfter: 1,
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	ref := serveShard(t, sx, nil)
	for qi, q := range inst.Queries {
		req := server.QueryRequest{Point: server.EncodePoint(q.X)}
		_, rawA := postJSON(t, rts.URL+"/v1/query", req)
		_, rawB := postJSON(t, ref.URL+"/v1/query", req)
		if string(rawA) != string(rawB) {
			t.Fatalf("query %d: corrupt-replica cluster answered %s, reference %s", qi, rawA, rawB)
		}
	}
	var badStats ReplicaStats
	for _, rs := range rt.Stats().ShardStats[0].ReplicaStats {
		if rs.URL == bad.URL {
			badStats = rs
		}
	}
	if badStats.Evictions == 0 {
		t.Fatalf("corrupting replica accrued no evictions: %+v", badStats)
	}
}
