package router

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"repro/internal/server"
)

// TestRouterCache pins the router-level result cache: a repeated query is
// served byte-identically without a second scatter, and the /statsz cache
// block reports the traffic.
func TestRouterCache(t *testing.T) {
	const shards = 2
	sx, inst := buildShards(t, shards)
	var urls [][]string
	for s := 0; s < shards; s++ {
		ts := serveShard(t, sx.Shard(s), nil)
		urls = append(urls, []string{ts.URL})
	}
	rt := newRouter(t, Config{Dimension: testDim, N: sx.Len(), Replicas: urls, CacheEntries: 64})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	req := server.QueryRequest{Point: server.EncodePoint(inst.Queries[0].X)}
	_, first := postJSON(t, rts.URL+"/v1/query", req)
	shardReqs := rt.shards[0].requests.Load() + rt.shards[1].requests.Load()
	_, second := postJSON(t, rts.URL+"/v1/query", req)
	if !bytes.Equal(first, second) {
		t.Fatalf("cached router reply differs:\n%s\n%s", first, second)
	}
	if after := rt.shards[0].requests.Load() + rt.shards[1].requests.Load(); after != shardReqs {
		t.Fatalf("cache hit still scattered to shards: %d -> %d requests", shardReqs, after)
	}
	st := rt.Stats()
	if st.Cache == nil || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("router cache block: %+v", st.Cache)
	}
	if st.Queries != 2 {
		t.Fatalf("queries = %d, want 2", st.Queries)
	}

	// Near replies (including the NO answer) cache under a distinct key.
	near := server.NearRequest{Point: server.EncodePoint(inst.Queries[0].X), Lambda: 1}
	_, n1 := postJSON(t, rts.URL+"/v1/near", near)
	_, n2 := postJSON(t, rts.URL+"/v1/near", near)
	if !bytes.Equal(n1, n2) {
		t.Fatalf("cached near reply differs:\n%s\n%s", n1, n2)
	}
	if st := rt.Stats(); st.Cache.Hits != 2 {
		t.Fatalf("near hit not counted: %+v", st.Cache)
	}
}

// TestRouterCacheDisabledByDefault: no cache block without CacheEntries.
func TestRouterCacheDisabledByDefault(t *testing.T) {
	sx, inst := buildShards(t, 1)
	ts := serveShard(t, sx.Shard(0), nil)
	rt := newRouter(t, Config{Dimension: testDim, N: sx.Len(), Replicas: [][]string{{ts.URL}}})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	req := server.QueryRequest{Point: server.EncodePoint(inst.Queries[0].X)}
	postJSON(t, rts.URL+"/v1/query", req)
	if st := rt.Stats(); st.Cache != nil {
		t.Fatalf("cache block present without CacheEntries: %+v", st.Cache)
	}
}
