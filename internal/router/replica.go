package router

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Replica health states. The state machine (DESIGN.md §6.2):
//
//	Healthy --EvictAfter consecutive failures--> Evicted(backoff = base)
//	Evicted --backoff expires--> probe-eligible
//	probe-eligible --probe/request succeeds--> Healthy (backoff reset)
//	probe-eligible --probe fails--> Evicted(backoff = min(2·backoff, max))
//
// Failures are counted from both the request path (transport errors,
// 5xx, attempt timeouts, losing a hedge) and the background /healthz
// prober; successes from either path readmit immediately — but only a
// request-path success clears the consecutive-failure streak. A probe
// success leaves the streak, so a replica that answers probes while
// failing queries re-evicts on its next request failure rather than
// having its eviction pressure zeroed every probe interval. 4xx answers
// are the request's fault, not the replica's, and never count.
const (
	StateHealthy = "healthy"
	StateEvicted = "evicted"
	// StatePromoted is reported through OnReplicaState when a replica is
	// promoted to write primary (it is a role change, not a health
	// transition — the replica is healthy before and after).
	StatePromoted = "promoted"
)

// replica is one backend server of a shard's replica set.
type replica struct {
	url string

	// Replication progress, harvested from /healthz probes and relay
	// answers. mutable flips once the replica first reports an offset;
	// offset is its last known applied replication offset — the ranking
	// key for promotion (the max-offset replica has lost nothing).
	mutable atomic.Bool
	offset  atomic.Uint64

	mu           sync.Mutex
	evicted      bool
	probing      bool          // one health probe in flight
	fails        int           // consecutive failures
	backoff      time.Duration // current eviction backoff (0 when healthy)
	retryAt      time.Time     // evicted: earliest next probe/last-resort use
	evictions    int64
	readmissions int64
	lastTrans    time.Time // when the replica last changed state
	lastErr      string    // most recent probe failure reason ("" when healthy)
}

// reportSuccess records a *request-path* success: readmission plus a
// full reset of the failure streak and backoff. Returns true when this
// call readmitted an evicted replica (a state transition).
func (r *replica) reportSuccess(now time.Time) bool {
	r.mu.Lock()
	readmitted := r.evicted
	if readmitted {
		r.readmissions++
		r.lastTrans = now
	}
	r.evicted = false
	r.fails = 0
	r.backoff = 0
	r.lastErr = ""
	r.mu.Unlock()
	return readmitted
}

// probeSuccess records a successful health probe: it readmits an
// evicted replica but deliberately leaves the request-path failure
// streak in place. A replica that answers /healthz while failing (or
// hanging on) queries must not have its eviction pressure zeroed every
// ProbeInterval — with the streak preserved, such a replica re-evicts
// after a single further request failure instead of oscillating in
// rotation forever. Returns true when this call readmitted the replica.
func (r *replica) probeSuccess(now time.Time) bool {
	r.mu.Lock()
	readmitted := r.evicted
	if readmitted {
		r.readmissions++
		r.lastTrans = now
	}
	r.evicted = false
	r.backoff = 0
	r.lastErr = ""
	r.mu.Unlock()
	return readmitted
}

// noteReplication records the replica's reported applied offset.
// Monotonic: a stale probe result racing a fresher relay answer must not
// move the known offset backwards.
func (r *replica) noteReplication(off uint64) {
	r.mutable.Store(true)
	for {
		cur := r.offset.Load()
		if off <= cur || r.offset.CompareAndSwap(cur, off) {
			return
		}
	}
}

// setLastErr records why the most recent probe rejected the replica
// (unreachable, unhealthy status, or a manifest mismatch), for /statsz.
func (r *replica) setLastErr(reason string) {
	r.mu.Lock()
	r.lastErr = reason
	r.mu.Unlock()
}

// reportFailure counts one failure; crossing evictAfter evicts the
// replica, and failing while evicted doubles the backoff up to max.
// Returns true when this call evicted a healthy replica (a state
// transition).
func (r *replica) reportFailure(now time.Time, evictAfter int, base, max time.Duration) bool {
	r.mu.Lock()
	evictedNow := false
	r.fails++
	switch {
	case !r.evicted && r.fails >= evictAfter:
		r.evicted = true
		r.evictions++
		r.lastTrans = now
		r.backoff = base
		r.retryAt = now.Add(base)
		evictedNow = true
	case r.evicted:
		r.backoff *= 2
		if r.backoff > max {
			r.backoff = max
		}
		r.retryAt = now.Add(r.backoff)
	}
	r.mu.Unlock()
	return evictedNow
}

// healthy reports whether the replica is in the Healthy state.
func (r *replica) healthy() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.evicted
}

// probeEligible reports whether the replica may receive traffic or a
// probe now: always when healthy, and after the backoff expires when
// evicted.
func (r *replica) probeEligible(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return !r.evicted || !now.Before(r.retryAt)
}

// beginProbe claims the replica's single in-flight probe slot if it is
// probe-eligible. At most one probe runs per replica at a time: with
// ProbeTimeout > ProbeInterval, overlapping probes of one dead replica
// would otherwise report several failures — and double the backoff more
// than once — per logical readmission attempt. endProbe releases the
// slot.
func (r *replica) beginProbe(now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.probing || (r.evicted && now.Before(r.retryAt)) {
		return false
	}
	r.probing = true
	return true
}

func (r *replica) endProbe() {
	r.mu.Lock()
	r.probing = false
	r.mu.Unlock()
}

// snapshot returns the replica's state for /statsz.
func (r *replica) snapshot() ReplicaStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := StateHealthy
	if r.evicted {
		st = StateEvicted
	}
	var lastMS int64
	if !r.lastTrans.IsZero() {
		lastMS = r.lastTrans.UnixMilli()
	}
	return ReplicaStats{
		URL:                  r.url,
		State:                st,
		Fails:                r.fails,
		Evictions:            r.evictions,
		Readmissions:         r.readmissions,
		LastTransitionUnixMS: lastMS,
		BackoffMS:            r.backoff.Milliseconds(),
		LastError:            r.lastErr,
		ReplicationOffset:    r.offset.Load(),
	}
}

// shard is one shard position: its replica set, counters, the latency
// window that drives the hedge delay, and the exact RPC latency
// histogram behind /statsz quantiles and /metricsz.
type shard struct {
	pos      int
	replicas []*replica
	rr       atomic.Uint64 // round-robin cursor over healthy replicas
	primary  atomic.Int32  // index of the designated write primary

	requests  atomic.Int64
	errors    atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	failovers atomic.Int64

	lat *latWindow     // sampled window: hedge-delay policy only
	rpc *obs.Histogram // exact distribution: reporting
}

// pick selects a replica for the next attempt, skipping any in tried.
// Preference order: healthy replicas (round-robin), then evicted ones
// whose backoff expired (a readmission chance), then — only when
// desperate — any untried replica, because with no result yet a
// desperate attempt beats a guaranteed failure. Primary selection and
// failover are desperate; hedging is not (a hedge aimed at a replica
// known to be evicted and still in backoff can never rescue latency —
// it only inflates the hedge counters and, by failing, re-extends the
// dead replica's backoff under the prober's feet). Returns nil when no
// acceptable replica remains.
func (sh *shard) pick(now time.Time, tried []*replica, desperate bool) *replica {
	isTried := func(r *replica) bool {
		for _, t := range tried {
			if t == r {
				return true
			}
		}
		return false
	}
	n := len(sh.replicas)
	start := int(sh.rr.Add(1) - 1)
	var expired, any *replica
	for i := 0; i < n; i++ {
		r := sh.replicas[(start+i)%n]
		if isTried(r) {
			continue
		}
		if r.healthy() {
			return r
		}
		if expired == nil && r.probeEligible(now) {
			expired = r
		}
		if any == nil {
			any = r
		}
	}
	if expired != nil {
		return expired
	}
	if desperate {
		return any
	}
	return nil
}

// latWindow is a bounded ring of recent request latencies (milliseconds)
// with on-demand quantiles. It also caches the configured hedge-delay
// quantile, refreshed every refreshEvery records, so the request path
// reads the hedge delay with one atomic load.
type latWindow struct {
	q float64 // hedge quantile this window caches

	mu      sync.Mutex
	buf     []float64
	next    int
	count   int   // samples currently in the window (saturates at len(buf))
	total   int64 // samples ever recorded (drives the cache refresh cadence)
	scratch []float64

	cachedNanos atomic.Int64 // cached q-quantile as duration nanos; 0 = cold
}

const latWindowSize = 512
const refreshEvery = 32

func newLatWindow(q float64) *latWindow {
	return &latWindow{q: q, buf: make([]float64, latWindowSize)}
}

// record adds one successful request's latency.
func (w *latWindow) record(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000
	w.mu.Lock()
	w.buf[w.next] = ms
	w.next = (w.next + 1) % len(w.buf)
	if w.count < len(w.buf) {
		w.count++
	}
	w.total++
	// total, not the saturating count: once the ring fills, count stays
	// at len(buf) and a count-based test would refresh (copy + sort)
	// on every record of the steady state.
	refresh := w.total%refreshEvery == 0
	w.mu.Unlock()
	if refresh {
		q := w.quantiles(w.q)
		w.cachedNanos.Store(int64(q[0] * float64(time.Millisecond)))
	}
}

// hedgeDelay returns the cached hedge-delay quantile, or 0 while the
// window is cold (caller falls back to the configured cold delay).
func (w *latWindow) hedgeDelay() time.Duration {
	return time.Duration(w.cachedNanos.Load())
}

// quantiles computes the requested quantiles over the current window
// (nearest-rank on a sorted copy). Returns zeros while empty.
func (w *latWindow) quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.count == 0 {
		return out
	}
	if cap(w.scratch) < w.count {
		w.scratch = make([]float64, w.count)
	}
	s := w.scratch[:w.count]
	if w.count < len(w.buf) {
		copy(s, w.buf[:w.count])
	} else {
		copy(s, w.buf)
	}
	sort.Float64s(s)
	for i, q := range qs {
		idx := int(q * float64(len(s)-1))
		out[i] = s[idx]
	}
	return out
}
