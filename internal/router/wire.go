package router

import "repro/internal/server"

// Stats is the router's /statsz body. The merged-query counters share
// field names with internal/server's StatsSnapshot (queries, errors,
// probes, qps, …) so dashboards and cmd/annsload read one schema; the
// router adds the distribution-layer rollups: hedging, failover,
// admission, and per-shard/per-replica state.
type Stats struct {
	UptimeMS         int64   `json:"uptime_ms"`
	Queries          int64   `json:"queries"`
	Near             int64   `json:"near"`
	Batches          int64   `json:"batches"`
	Errors           int64   `json:"errors"`
	Rejected         int64   `json:"rejected"`
	DeadlineExceeded int64   `json:"deadline_exceeded"`
	Probes           int64   `json:"probes"`
	Rounds           int64   `json:"rounds"`
	MaxRounds        int64   `json:"max_rounds"`
	MaxParallel      int64   `json:"max_parallel"`
	QPS              float64 `json:"qps"`
	ErrorRate        float64 `json:"error_rate"`

	InFlight  int     `json:"in_flight"`
	Hedges    int64   `json:"hedges"`
	HedgeWins int64   `json:"hedge_wins"`
	HedgeRate float64 `json:"hedge_rate"` // hedges / shard requests
	Failovers int64   `json:"failovers"`

	// Write-path rollups (zero on read-only clusters): routed mutations,
	// frames relayed to replicas, promotion count, the current placement
	// epoch (bumped on every promotion), and the configured durability
	// level. See DESIGN.md §11.
	Writes           int64  `json:"writes,omitempty"`
	WriteErrors      int64  `json:"write_errors,omitempty"`
	ReplicatedFrames int64  `json:"replicated_frames,omitempty"`
	ReplicationErrs  int64  `json:"replication_errors,omitempty"`
	Promotions       int64  `json:"promotions,omitempty"`
	Epoch            uint64 `json:"epoch"`
	Durability       string `json:"durability,omitempty"`

	ShardStats []ShardStats `json:"shard_stats"`

	// Cache is the router-level result-cache block (present only when
	// Config.CacheEntries enabled one); same schema as the shard servers'.
	Cache *server.CacheStats `json:"cache,omitempty"`
}

// ShardStats is one shard position's rollup: request counters, hedge
// accounting, and latency quantiles over the recent window.
type ShardStats struct {
	Shard     int     `json:"shard"`
	Replicas  int     `json:"replicas"`
	Healthy   int     `json:"healthy"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Hedges    int64   `json:"hedges"`
	HedgeWins int64   `json:"hedge_wins"`
	Failovers int64   `json:"failovers"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	// HedgeDelayMS is the delay the next hedged request would wait
	// (0 while the latency window is cold).
	HedgeDelayMS float64 `json:"hedge_delay_ms"`
	// Primary is the URL of the shard's current write primary.
	Primary string `json:"primary,omitempty"`

	ReplicaStats []ReplicaStats `json:"replica_stats"`
}

// ReplicaStats is one replica's health-state snapshot. LastError is the
// most recent probe rejection reason — "misrouted: …" identifies a
// replica serving the wrong shard's snapshot. Evictions/Readmissions
// are lifetime transition counters and LastTransitionUnixMS stamps the
// most recent one (0 until the first transition), so external harnesses
// — the chaos runner, dashboards — can measure detection latency and
// false evictions from /statsz alone.
type ReplicaStats struct {
	URL                  string `json:"url"`
	State                string `json:"state"`
	Fails                int    `json:"fails"`
	Evictions            int64  `json:"evictions"`
	Readmissions         int64  `json:"readmissions"`
	LastTransitionUnixMS int64  `json:"last_transition_unix_ms,omitempty"`
	BackoffMS            int64  `json:"backoff_ms"`
	LastError            string `json:"last_error,omitempty"`
	// ReplicationOffset is the replica's last known applied offset (0 for
	// immutable replicas); Primary marks the shard's current write
	// primary. Converged replicas show equal offsets — the operator's
	// one-glance replication health check (OPERATIONS.md).
	ReplicationOffset uint64 `json:"replication_offset,omitempty"`
	Primary           bool   `json:"primary,omitempty"`
}
