package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/anns"
	"repro/internal/server"
	"repro/internal/workload"
)

const testDim = 64

// testSpec is the corpus both sides of every equivalence test
// regenerate independently — the same contract annsctl shard-split and
// a single-process annsd rely on: same spec ⇒ same corpus.
func testSpec() workload.Spec {
	return workload.Spec{Kind: "planted", D: testDim, N: 48, Q: 12, Dist: 6, Seed: 21}
}

func buildShards(t *testing.T, shards int) (*anns.ShardedIndex, *workload.Instance) {
	t.Helper()
	inst, err := testSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]anns.Point, len(inst.DB))
	copy(pts, inst.DB)
	sx, err := anns.BuildSharded(pts, shards, anns.Options{Dimension: testDim, Rounds: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return sx, inst
}

// serveShard exposes one shard index over HTTP exactly as a replica
// annsd would, optionally behind a middleware (delays, failures).
func serveShard(t *testing.T, ix server.Searcher, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	srv, err := server.New(ix, server.Config{Dimension: testDim, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	h := http.Handler(srv.Handler())
	if mw != nil {
		h = mw(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

func newRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestRouterMatchesSingleProcess is the distributed-equivalence
// acceptance property: a router scatter-gathering over per-shard
// servers answers /v1/query, /v1/near, and /v1/batch byte-identically —
// results and rounds/probes accounting — to a single process serving
// the equivalent ShardedIndex, with the two sides building their
// corpora from independent Spec.Generate calls (the two-process path).
func TestRouterMatchesSingleProcess(t *testing.T) {
	const shards = 2
	// Side A: the "split" path — per-shard servers + router.
	sxA, inst := buildShards(t, shards)
	var urls [][]string
	for s := 0; s < shards; s++ {
		ts := serveShard(t, sxA.Shard(s), nil)
		urls = append(urls, []string{ts.URL})
	}
	rt := newRouter(t, Config{Dimension: testDim, N: sxA.Len(), Replicas: urls})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	// Side B: one process serving the whole sharded index.
	sxB, _ := buildShards(t, shards)
	single := serveShard(t, sxB, nil)

	for qi, q := range inst.Queries {
		req := server.QueryRequest{Point: server.EncodePoint(q.X)}
		_, rawA := postJSON(t, rts.URL+"/v1/query", req)
		_, rawB := postJSON(t, single.URL+"/v1/query", req)
		var a, b server.QueryResponse
		if err := json.Unmarshal(rawA, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(rawB, &b); err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("query %d: router %+v != single-process %+v", qi, a, b)
		}

		near := server.NearRequest{Point: server.EncodePoint(q.X), Lambda: float64(q.NNDist + 1)}
		_, rawA = postJSON(t, rts.URL+"/v1/near", near)
		_, rawB = postJSON(t, single.URL+"/v1/near", near)
		if err := json.Unmarshal(rawA, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(rawB, &b); err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("near %d: router %+v != single-process %+v", qi, a, b)
		}
	}

	// The whole query stream as one batch.
	batch := server.BatchRequest{}
	for _, q := range inst.Queries {
		batch.Points = append(batch.Points, server.EncodePoint(q.X))
	}
	_, rawA := postJSON(t, rts.URL+"/v1/batch", batch)
	_, rawB := postJSON(t, single.URL+"/v1/batch", batch)
	var ba, bb server.BatchResponse
	if err := json.Unmarshal(rawA, &ba); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rawB, &bb); err != nil {
		t.Fatal(err)
	}
	if len(ba.Results) != len(bb.Results) {
		t.Fatalf("batch sizes differ: %d vs %d", len(ba.Results), len(bb.Results))
	}
	for i := range ba.Results {
		if ba.Results[i] != bb.Results[i] {
			t.Fatalf("batch point %d: router %+v != single-process %+v", i, ba.Results[i], bb.Results[i])
		}
	}
}

// TestRouterShuffledReplyOrder injects random per-request delays into
// every shard server so shard replies land in a different order on
// every attempt, and requires the merged answer to stay identical: the
// fold depends on shard position, never on arrival order.
func TestRouterShuffledReplyOrder(t *testing.T) {
	const shards = 3
	inst, err := testSpec().Generate()
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]anns.Point, len(inst.DB))
	copy(pts, inst.DB)
	sx, err := anns.BuildSharded(pts, shards, anns.Options{Dimension: testDim, Rounds: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	rnd := rand.New(rand.NewSource(99))
	jitter := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			d := time.Duration(rnd.Intn(12)) * time.Millisecond
			mu.Unlock()
			time.Sleep(d)
			next.ServeHTTP(w, r)
		})
	}
	var urls [][]string
	for s := 0; s < shards; s++ {
		ts := serveShard(t, sx.Shard(s), jitter)
		urls = append(urls, []string{ts.URL})
	}
	// Hedging off (cold delay far beyond the jitter) so the only moving
	// part is reply order.
	rt := newRouter(t, Config{
		Dimension: testDim, N: sx.Len(), Replicas: urls,
		HedgeCold: time.Second,
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	q := inst.Queries[0]
	req := server.QueryRequest{Point: server.EncodePoint(q.X)}
	var first server.QueryResponse
	for i := 0; i < 20; i++ {
		_, raw := postJSON(t, rts.URL+"/v1/query", req)
		var qr server.QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = qr
			want, err := sx.Query(q.X)
			if err != nil {
				t.Fatal(err)
			}
			if qr.Index != want.Index || qr.Distance != want.Distance ||
				qr.Rounds != want.Rounds || qr.Probes != want.Probes {
				t.Fatalf("router %+v != in-process %+v", qr, want)
			}
			continue
		}
		if qr != first {
			t.Fatalf("attempt %d: %+v differs from first %+v (reply order leaked into the merge)", i, qr, first)
		}
	}
}

// TestRouterFailoverAndEviction kills one replica of a two-replica
// shard and requires: every query still answered correctly, the dead
// replica evicted, and the failure visible in the /statsz rollup
// (failovers or hedge wins — whichever path rescued each request).
func TestRouterFailoverAndEviction(t *testing.T) {
	const shards = 2
	sx, inst := buildShards(t, shards)

	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on

	var urls [][]string
	for s := 0; s < shards; s++ {
		live := serveShard(t, sx.Shard(s), nil)
		if s == 0 {
			// Dead replica first so the round-robin cursor keeps landing on it.
			urls = append(urls, []string{dead.URL, live.URL})
		} else {
			urls = append(urls, []string{live.URL})
		}
	}
	// EvictAfter 2 with an hour-long probe interval: the startup sweep's
	// single failure leaves the dead replica healthy-looking (fails=1),
	// so eviction must come from the request path — the failover branch
	// this test exists to exercise.
	rt := newRouter(t, Config{
		Dimension: testDim, N: sx.Len(), Replicas: urls,
		EvictAfter:    2,
		ProbeInterval: time.Hour,
		BackoffBase:   time.Minute, // stay evicted for the whole test
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	for qi, q := range inst.Queries {
		want, err := sx.Query(q.X)
		if err != nil {
			t.Fatal(err)
		}
		_, raw := postJSON(t, rts.URL+"/v1/query", server.QueryRequest{Point: server.EncodePoint(q.X)})
		var qr server.QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Error != "" || qr.Index != want.Index || qr.Distance != want.Distance {
			t.Fatalf("query %d through degraded shard: got %+v, want %+v", qi, qr, want)
		}
	}

	stats := rt.Stats()
	sh0 := stats.ShardStats[0]
	if sh0.Failovers+sh0.HedgeWins == 0 {
		t.Errorf("no failovers or hedge wins recorded on the degraded shard: %+v", sh0)
	}
	if sh0.Errors != 0 {
		t.Errorf("%d shard-level errors surfaced despite a live replica", sh0.Errors)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := rt.Stats().ShardStats[0]
		evicted := 0
		for _, rep := range st.ReplicaStats {
			if rep.State == StateEvicted {
				evicted++
			}
		}
		if evicted == 1 && st.Healthy == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dead replica never evicted: %+v", st.ReplicaStats)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterHedging pins the tail-tolerance path: with one replica
// answering slowly and a fast sibling, the hedge fires after the cold
// delay and the fast replica's answer wins — correctly and with the
// hedge counted.
func TestRouterHedging(t *testing.T) {
	const shards = 2
	sx, inst := buildShards(t, shards)
	slow := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/healthz" {
				time.Sleep(300 * time.Millisecond)
			}
			next.ServeHTTP(w, r)
		})
	}
	var urls [][]string
	for s := 0; s < shards; s++ {
		if s == 0 {
			slowTS := serveShard(t, sx.Shard(s), slow)
			fastTS := serveShard(t, sx.Shard(s), nil)
			urls = append(urls, []string{slowTS.URL, fastTS.URL})
		} else {
			ts := serveShard(t, sx.Shard(s), nil)
			urls = append(urls, []string{ts.URL})
		}
	}
	rt := newRouter(t, Config{
		Dimension: testDim, N: sx.Len(), Replicas: urls,
		HedgeCold: 15 * time.Millisecond,
		HedgeMin:  time.Millisecond,
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	hits := 0
	for _, q := range inst.Queries[:4] {
		want, err := sx.Query(q.X)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		_, raw := postJSON(t, rts.URL+"/v1/query", server.QueryRequest{Point: server.EncodePoint(q.X)})
		elapsed := time.Since(start)
		var qr server.QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Error != "" || qr.Index != want.Index {
			t.Fatalf("hedged query wrong: got %+v, want %+v", qr, want)
		}
		if elapsed < 250*time.Millisecond {
			hits++ // beat the slow replica: the hedge must have won
		}
	}
	st := rt.Stats().ShardStats[0]
	if st.Hedges == 0 {
		t.Errorf("no hedges issued against a 300ms replica with a 15ms hedge delay")
	}
	if hits > 0 && st.HedgeWins == 0 {
		t.Errorf("%d fast answers but no hedge wins counted: %+v", hits, st)
	}
}

// TestRouterAdmission pins the bounded in-flight admission: with one
// slot and a slow shard, concurrent requests are rejected with 503 and
// counted, not queued without bound.
func TestRouterAdmission(t *testing.T) {
	sx, inst := buildShards(t, 2)
	slow := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/healthz" {
				time.Sleep(200 * time.Millisecond)
			}
			next.ServeHTTP(w, r)
		})
	}
	var urls [][]string
	for s := 0; s < 2; s++ {
		ts := serveShard(t, sx.Shard(s), slow)
		urls = append(urls, []string{ts.URL})
	}
	rt := newRouter(t, Config{
		Dimension: testDim, N: sx.Len(), Replicas: urls,
		MaxInFlight: 1,
		HedgeCold:   time.Second,
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	req := server.QueryRequest{Point: server.EncodePoint(inst.Queries[0].X)}
	codes := make(chan int, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, rts.URL+"/v1/query", req)
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	ok, rejected := 0, 0
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			rejected++
		default:
			t.Errorf("unexpected status %d", c)
		}
	}
	if ok == 0 || rejected == 0 {
		t.Errorf("ok=%d rejected=%d, want both paths exercised", ok, rejected)
	}
	if got := rt.Stats().Rejected; got != int64(rejected) {
		t.Errorf("stats.rejected = %d, %d requests saw 503", got, rejected)
	}
}

// TestReplicaStateMachine pins the eviction/readmission transitions and
// the exponential backoff clamp.
func TestReplicaStateMachine(t *testing.T) {
	rep := &replica{url: "http://x"}
	const evictAfter = 2
	base, max := 100*time.Millisecond, 350*time.Millisecond
	// The state machine runs on whatever instants the caller feeds it,
	// so the whole transition sequence is pinned on virtual time.
	now := time.Unix(1000, 0)

	if rep.reportFailure(now, evictAfter, base, max) {
		t.Fatal("one failure below the threshold reported an eviction transition")
	}
	if !rep.healthy() {
		t.Fatal("one failure evicted below the threshold")
	}
	if !rep.reportFailure(now, evictAfter, base, max) {
		t.Fatal("crossing evictAfter did not report an eviction transition")
	}
	if rep.healthy() {
		t.Fatal("still healthy after evictAfter consecutive failures")
	}
	if s := rep.snapshot(); s.Evictions != 1 || s.BackoffMS != 100 ||
		s.LastTransitionUnixMS != now.UnixMilli() {
		t.Fatalf("post-eviction snapshot %+v", s)
	}
	rep.reportFailure(now, evictAfter, base, max) // failed readmission probe: 200ms
	rep.reportFailure(now, evictAfter, base, max) // 350ms (clamped from 400ms)
	if s := rep.snapshot(); s.BackoffMS != 350 {
		t.Fatalf("backoff = %dms, want clamp at 350ms", s.BackoffMS)
	}
	if rep.probeEligible(now) {
		t.Fatal("probe-eligible immediately after a fresh backoff")
	}
	if !rep.probeEligible(now.Add(time.Second)) {
		t.Fatal("not probe-eligible after the backoff expires")
	}
	readmitAt := now.Add(time.Second)
	if !rep.reportSuccess(readmitAt) {
		t.Fatal("success on an evicted replica did not report a readmission transition")
	}
	if !rep.healthy() {
		t.Fatal("success did not readmit")
	}
	if s := rep.snapshot(); s.Fails != 0 || s.BackoffMS != 0 ||
		s.Readmissions != 1 || s.LastTransitionUnixMS != readmitAt.UnixMilli() {
		t.Fatalf("readmitted snapshot %+v, want reset fails/backoff and readmissions=1", s)
	}
	if rep.reportSuccess(readmitAt) {
		t.Fatal("success on a healthy replica reported a transition")
	}

	// A probe success readmits but must preserve the request-path failure
	// streak: the next request failure re-evicts immediately instead of
	// restarting the EvictAfter count from zero.
	rep.reportFailure(now, evictAfter, base, max)
	rep.reportFailure(now, evictAfter, base, max)
	if rep.healthy() {
		t.Fatal("not evicted before probe readmission check")
	}
	if !rep.probeSuccess(now) {
		t.Fatal("probe success on an evicted replica did not report a readmission")
	}
	if !rep.healthy() {
		t.Fatal("probe success did not readmit")
	}
	if s := rep.snapshot(); s.Fails == 0 {
		t.Fatal("probe success cleared the request-path failure streak")
	}
	if s := rep.snapshot(); s.Readmissions != 2 {
		t.Fatalf("readmissions = %d after a second readmission, want 2", s.Readmissions)
	}
	rep.reportFailure(now, evictAfter, base, max)
	if rep.healthy() {
		t.Fatal("query-failing prober-pleasing replica not re-evicted after one further failure")
	}
}

// TestLatWindowQuantiles pins the hedge-delay source: quantiles over
// the recent window and the cached refresh.
func TestLatWindowQuantiles(t *testing.T) {
	w := newLatWindow(0.90)
	if d := w.hedgeDelay(); d != 0 {
		t.Fatalf("cold window hedge delay = %v, want 0", d)
	}
	for i := 1; i <= 100; i++ {
		w.record(time.Duration(i) * time.Millisecond)
	}
	qs := w.quantiles(0.50, 0.95)
	if qs[0] < 45 || qs[0] > 55 {
		t.Errorf("p50 = %v, want ≈50", qs[0])
	}
	if qs[1] < 90 || qs[1] > 100 {
		t.Errorf("p95 = %v, want ≈95", qs[1])
	}
	if d := w.hedgeDelay(); d < 80*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("cached hedge delay = %v, want ≈90ms", d)
	}
}

// TestManifest pins the placement-manifest contract: round-trip,
// validation failures, and path resolution.
func TestManifest(t *testing.T) {
	dir := t.TempDir()
	m := &Manifest{
		FormatVersion: ManifestVersion,
		Placement:     PlacementRoundRobin,
		Shards:        2,
		N:             7,
		Dimension:     64,
		Seed:          42,
		Files: []ManifestShard{
			{Shard: 0, Path: "shard-0.snap", N: 4, Seed: 1},
			{Shard: 1, Path: "shard-1.snap", N: 3, Seed: 2},
		},
	}
	path := filepath.Join(dir, "manifest.json")
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 2 || got.N != 7 || got.Files[1].Seed != 2 {
		t.Fatalf("round-trip lost fields: %+v", got)
	}
	if p := got.ShardPath(path, 1); p != filepath.Join(dir, "shard-1.snap") {
		t.Errorf("ShardPath = %q", p)
	}

	bad := *m
	bad.N = 99 // sizes no longer sum
	if err := bad.Validate(); err == nil {
		t.Error("size-mismatched manifest validated")
	}
	bad = *m
	bad.Placement = "hash"
	if err := bad.Validate(); err == nil {
		t.Error("unknown placement validated")
	}
	bad = *m
	bad.FormatVersion = 99
	if err := bad.Validate(); err == nil {
		t.Error("future format version validated")
	}
	swapped := *m
	swapped.Files = []ManifestShard{m.Files[1], m.Files[0]}
	if err := swapped.Validate(); err == nil {
		t.Error("out-of-order shard files validated")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadManifest(path); err == nil {
		t.Error("truncated manifest loaded")
	}
}

// TestRouterEvictsMisroutedReplica pins the manifest cross-check: a
// replica that is alive but serves the *other* shard's snapshot (same
// size, different derived seed — undetectable by n alone) must be
// evicted by the health prober with a "misrouted" reason, and queries
// must keep merging only correct replicas' answers.
func TestRouterEvictsMisroutedReplica(t *testing.T) {
	const shards = 2
	sx, inst := buildShards(t, shards)
	sizes := make([]int, shards)
	seeds := make([]uint64, shards)
	servers := make([]*httptest.Server, shards)
	for s := 0; s < shards; s++ {
		sizes[s] = sx.Shard(s).Len()
		seeds[s] = sx.Shard(s).Options().Seed
		servers[s] = serveShard(t, sx.Shard(s), nil)
	}
	urls := [][]string{
		// Shard 0's set wrongly includes shard 1's server (a swapped
		// -shard flag), listed first so round-robin would hit it.
		{servers[1].URL, servers[0].URL},
		{servers[1].URL},
	}
	rt := newRouter(t, Config{
		Dimension: testDim, N: sx.Len(), Replicas: urls,
		ShardSizes: sizes, ShardSeeds: seeds,
		EvictAfter:    1,
		ProbeInterval: 10 * time.Millisecond,
		BackoffBase:   time.Minute,
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		reps := rt.Stats().ShardStats[0].ReplicaStats
		if reps[0].State == StateEvicted && strings.Contains(reps[0].LastError, "misrouted") &&
			reps[1].State == StateHealthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("misrouted replica never evicted: %+v", reps)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	for qi, q := range inst.Queries[:4] {
		want, err := sx.Query(q.X)
		if err != nil {
			t.Fatal(err)
		}
		_, raw := postJSON(t, rts.URL+"/v1/query", server.QueryRequest{Point: server.EncodePoint(q.X)})
		var qr server.QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Error != "" || qr.Index != want.Index || qr.Distance != want.Distance {
			t.Fatalf("query %d with misrouted replica present: got %+v, want %+v", qi, qr, want)
		}
	}
}

// TestRouterRejectsBadRequests pins the 400 paths: wrong-dimension
// points and malformed bodies fail at the router without fanning out.
func TestRouterRejectsBadRequests(t *testing.T) {
	sx, _ := buildShards(t, 2)
	var urls [][]string
	for s := 0; s < 2; s++ {
		ts := serveShard(t, sx.Shard(s), nil)
		urls = append(urls, []string{ts.URL})
	}
	rt := newRouter(t, Config{Dimension: testDim, N: sx.Len(), Replicas: urls})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	resp, err := http.Post(rts.URL+"/v1/query", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
	_, raw := postJSON(t, rts.URL+"/v1/query", server.QueryRequest{Point: "AAAA"})
	var er server.ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
		t.Errorf("wrong-dimension point accepted: %s", raw)
	}
	if got := rt.Stats().ShardStats[0].Requests; got != 0 {
		t.Errorf("%d shard requests fanned out for rejected inputs", got)
	}
	_, raw = postJSON(t, rts.URL+"/v1/near", server.NearRequest{Point: "AAAA", Lambda: -1})
	if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
		t.Errorf("negative lambda accepted: %s", raw)
	}
}

// TestRouterSnapshotPath runs the real file-based flow in-process: split
// the sharded index into per-shard snapshots (as annsctl shard-split
// does), reload each file, serve the loaded shards, and require
// router answers to match the original in-memory index.
func TestRouterSnapshotPath(t *testing.T) {
	const shards = 2
	sx, inst := buildShards(t, shards)
	dir := t.TempDir()
	var urls [][]string
	for s := 0; s < shards; s++ {
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.snap", s))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := anns.SaveIndex(f, sx.Shard(s)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		rf, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := anns.LoadIndex(rf)
		rf.Close()
		if err != nil {
			t.Fatal(err)
		}
		ts := serveShard(t, loaded, nil)
		urls = append(urls, []string{ts.URL})
	}
	rt := newRouter(t, Config{Dimension: testDim, N: sx.Len(), Replicas: urls})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	for qi, q := range inst.Queries {
		want, err := sx.Query(q.X)
		if err != nil {
			t.Fatal(err)
		}
		_, raw := postJSON(t, rts.URL+"/v1/query", server.QueryRequest{Point: server.EncodePoint(q.X)})
		var qr server.QueryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			t.Fatal(err)
		}
		if qr.Index != want.Index || qr.Distance != want.Distance ||
			qr.Rounds != want.Rounds || qr.Probes != want.Probes || qr.MaxParallel != want.MaxParallel {
			t.Fatalf("query %d over snapshot-loaded shards: got %+v, want %+v", qi, qr, want)
		}
	}
}
