package router

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ManifestVersion is the placement-manifest schema version. It versions
// the JSON layout only; the snapshot files it points at carry their own
// format version (internal/snapshot.FormatVersion). Version 2 added the
// placement epoch and per-shard primary designations for replicated
// writes (DESIGN.md §11); version-1 manifests still load, with epoch 0
// and every primary at replica position 0.
const ManifestVersion = 2

// Durability levels for replicated writes (Config.Durability /
// `annsrouter -durability`). See DESIGN.md §11.3.
const (
	// DurabilityPrimary acks a write when the primary's WAL append (and
	// fsync, in synchronous WAL mode) returns; replica relay failures are
	// counted but do not fail the request.
	DurabilityPrimary = "primary"
	// DurabilityQuorum acks only when ⌊R/2⌋+1 replicas of the shard,
	// counting the primary, hold the frame. With R=2 that is both — every
	// acked write is immediately readable on either replica.
	DurabilityQuorum = "quorum"
)

// PlacementRoundRobin is the only placement strategy today: point i of
// the logical database lives in shard i%S as that shard's (i/S)-th
// point, so the router translates shard-local answers back to logical
// indices with anns.RoundRobinGlobal — no per-point mapping table needs
// to travel from the splitter to the router.
const PlacementRoundRobin = "round-robin"

// Manifest is the placement manifest `annsctl shard-split` writes next
// to the per-shard snapshot files. It is the contract between the
// splitter, the shard servers (each boots `annsd -snapshot` on one
// file), and the router (which needs the topology and the local→global
// translation but never the index payload itself).
type Manifest struct {
	FormatVersion int    `json:"format_version"`
	Placement     string `json:"placement"`
	// Shards is the shard count S of the logical index.
	Shards int `json:"shards"`
	// N is the logical database size (sum of the per-shard sizes).
	N int `json:"n"`
	// Dimension is the Hamming dimension every shard serves.
	Dimension int `json:"dimension"`
	// Seed is the user seed of the logical index; each shard's derived
	// seed is recorded on its file entry.
	Seed uint64 `json:"seed"`
	// Epoch is the placement epoch: 0 as written by the splitter, bumped
	// by the router on every primary promotion (and persisted back, so a
	// router restart keeps the promoted topology). Readers treat the
	// manifest with the highest epoch as current.
	Epoch uint64 `json:"epoch,omitempty"`
	// Files describes the per-shard snapshots, in shard order.
	Files []ManifestShard `json:"files"`
}

// ManifestShard is one shard's snapshot file in the manifest.
type ManifestShard struct {
	Shard int    `json:"shard"`
	Path  string `json:"path"` // relative to the manifest's directory
	N     int    `json:"n"`
	Seed  uint64 `json:"seed"` // the shard's derived build seed
	// Primary is the replica-set position of the shard's write primary
	// (an index into the router's replica URL list for this shard, not a
	// property of the snapshot file). 0 as written by the splitter;
	// rewritten by the router on promotion.
	Primary int `json:"primary,omitempty"`
}

// WriteManifest writes m as indented JSON to path.
func WriteManifest(path string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadManifest reads and validates a placement manifest. Relative file
// paths stay relative; resolve them against filepath.Dir(path).
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("router: manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("router: manifest %s: %w", path, err)
	}
	return &m, nil
}

// Validate checks the manifest's internal consistency.
func (m *Manifest) Validate() error {
	if m.FormatVersion < 1 || m.FormatVersion > ManifestVersion {
		return fmt.Errorf("format_version %d, this build understands 1..%d", m.FormatVersion, ManifestVersion)
	}
	if m.Placement != PlacementRoundRobin {
		return fmt.Errorf("unknown placement %q", m.Placement)
	}
	if m.Shards < 1 || len(m.Files) != m.Shards {
		return fmt.Errorf("%d files for %d shards", len(m.Files), m.Shards)
	}
	if m.Dimension < 2 {
		return fmt.Errorf("implausible dimension %d", m.Dimension)
	}
	total := 0
	for i, f := range m.Files {
		if f.Shard != i {
			return fmt.Errorf("file %d is labeled shard %d (files must be in shard order)", i, f.Shard)
		}
		if f.Path == "" {
			return fmt.Errorf("shard %d has no snapshot path", i)
		}
		if f.N < 2 {
			return fmt.Errorf("shard %d claims %d points", i, f.N)
		}
		if f.Primary < 0 {
			return fmt.Errorf("shard %d has negative primary position %d", i, f.Primary)
		}
		total += f.N
	}
	if total != m.N {
		return fmt.Errorf("shard sizes sum to %d, header says %d", total, m.N)
	}
	return nil
}

// ShardPath resolves shard s's snapshot path against the manifest's
// directory.
func (m *Manifest) ShardPath(manifestPath string, s int) string {
	p := m.Files[s].Path
	if filepath.IsAbs(p) {
		return p
	}
	return filepath.Join(filepath.Dir(manifestPath), p)
}
