package router

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/bitvec"
	"repro/internal/segment"
	"repro/internal/server"
)

// Replicated writes (DESIGN.md §11). The router routes /v1/insert and
// /v1/delete by shard with the same round-robin formula queries fold
// with: global g lives in shard g%S as that shard's local ID g/S, and
// the next insert's global ID is assigned sequentially under a single
// write mutex (global ID assignment is an order — sequential assignment
// is what keeps a routed cluster byte-identical to one MutableSharded
// process over the same mutation stream).
//
// The primary applies the mutation to its own WAL; the router then
// re-encodes the op as a WAL frame (segment.EncodeFrame produces the
// exact bytes the primary's WAL.Append wrote — pinned by test) and
// relays it to the shard's other replicas via POST /v1/replicate, so the
// primary needs no replica topology: frames stream *through* the router.
// A lagging replica answers 409 with its applied offset and is caught up
// from the primary's /v1/frames before the relay resumes.
//
// A write to the primary is NEVER auto-retried: a timed-out insert may
// have applied, and a blind retry would assign the point twice. The
// client gets a 502 and decides; the next successful write re-seeds the
// global counter from the primaries' own NextID reports, so the order
// stays consistent either way.

// handleInsert serves POST /v1/insert at the router: route to the
// shard's primary, relay the frame, answer with the *global* ID.
func (rt *Router) handleInsert(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req server.InsertRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	x, err := server.DecodePoint(req.Point, rt.cfg.Dimension)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: err.Error()})
		return
	}
	if !rt.admit(w) {
		return
	}
	defer rt.release()
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.DefaultTimeout)
	defer cancel()

	rt.writeMu.Lock()
	defer rt.writeMu.Unlock()
	if err := rt.initNextGlobalLocked(ctx); err != nil {
		rt.writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	g := rt.nextGlobal
	S := uint64(len(rt.shards))
	sh := rt.shards[g%S]
	local := g / S

	pr := rt.primaryLocked(sh)
	if pr == nil {
		rt.writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("router: shard %d has no replica eligible for primary", g%S))
		return
	}
	raw, err := rt.post(ctx, pr.url+"/v1/insert", body)
	if err != nil {
		rt.replicaFailure(sh.pos, pr, rt.cfg.EvictAfter, err.Error())
		rt.writeError(w, http.StatusBadGateway,
			fmt.Sprintf("router: insert on shard %d primary %s failed and is not retried (it may have applied): %v", g%S, pr.url, err))
		return
	}
	var ins server.InsertResponse
	if err := json.Unmarshal(raw, &ins); err != nil {
		rt.writeError(w, http.StatusBadGateway, fmt.Sprintf("router: primary answered 200 with an undecodable body: %v", err))
		return
	}
	if ins.Offset == 0 {
		rt.writeError(w, http.StatusBadGateway,
			fmt.Sprintf("router: shard %d primary %s does not report a replication offset (serving without a replicating tier?)", g%S, pr.url))
		return
	}
	if ins.ID != local {
		rt.writeError(w, http.StatusBadGateway,
			fmt.Sprintf("router: shard %d primary assigned local id %d to global %d, want %d — streams diverged", g%S, ins.ID, g, local))
		return
	}
	// The primary applied: the global order advanced and every cached
	// answer predates this write, whatever the relays do next.
	rt.nextGlobal = g + 1
	rt.wgen.Add(1)
	pr.noteReplication(ins.Offset)

	op := segment.Op{Kind: segment.OpInsert, ID: local, Point: bitvec.Vector(x)}
	acks, relayErr := rt.relayAll(ctx, sh, pr, op, ins.Offset)
	rt.m.writes.Add(1)
	if !rt.quorumMet(sh, acks) {
		rt.writeError(w, http.StatusBadGateway,
			fmt.Sprintf("router: insert applied on shard %d primary but reached %d/%d replicas (quorum %d): %v",
				g%S, acks, len(sh.replicas), len(sh.replicas)/2+1, relayErr))
		return
	}
	writeJSON(w, http.StatusOK, server.InsertResponse{ID: g, Offset: ins.Offset})
}

// handleDelete serves POST /v1/delete at the router. The client's ID is
// global; the primary sees the shard-local translation.
func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req server.DeleteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	if req.ID == nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: "missing id"})
		return
	}
	if !rt.admit(w) {
		return
	}
	defer rt.release()
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.DefaultTimeout)
	defer cancel()

	g := *req.ID
	S := uint64(len(rt.shards))
	sh := rt.shards[g%S]
	local := g / S
	shardBody, err := json.Marshal(server.DeleteRequest{ID: &local})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, server.ErrorResponse{Error: err.Error()})
		return
	}

	rt.writeMu.Lock()
	defer rt.writeMu.Unlock()
	if err := rt.initNextGlobalLocked(ctx); err != nil {
		rt.writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	pr := rt.primaryLocked(sh)
	if pr == nil {
		rt.writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("router: shard %d has no replica eligible for primary", g%S))
		return
	}
	raw, err := rt.post(ctx, pr.url+"/v1/delete", shardBody)
	if err != nil {
		rt.replicaFailure(sh.pos, pr, rt.cfg.EvictAfter, err.Error())
		rt.writeError(w, http.StatusBadGateway,
			fmt.Sprintf("router: delete on shard %d primary %s failed and is not retried (it may have applied): %v", g%S, pr.url, err))
		return
	}
	var del server.DeleteResponse
	if err := json.Unmarshal(raw, &del); err != nil {
		rt.writeError(w, http.StatusBadGateway, fmt.Sprintf("router: primary answered 200 with an undecodable body: %v", err))
		return
	}
	if !del.Deleted {
		// A dead target changed nothing: no WAL record, no frame, no
		// generation bump — answer straight through.
		writeJSON(w, http.StatusOK, server.DeleteResponse{Deleted: false, Offset: del.Offset})
		return
	}
	if del.Offset == 0 {
		rt.writeError(w, http.StatusBadGateway,
			fmt.Sprintf("router: shard %d primary %s does not report a replication offset (serving without a replicating tier?)", g%S, pr.url))
		return
	}
	rt.wgen.Add(1)
	pr.noteReplication(del.Offset)

	op := segment.Op{Kind: segment.OpDelete, ID: local}
	acks, relayErr := rt.relayAll(ctx, sh, pr, op, del.Offset)
	rt.m.writes.Add(1)
	if !rt.quorumMet(sh, acks) {
		rt.writeError(w, http.StatusBadGateway,
			fmt.Sprintf("router: delete applied on shard %d primary but reached %d/%d replicas (quorum %d): %v",
				g%S, acks, len(sh.replicas), len(sh.replicas)/2+1, relayErr))
		return
	}
	writeJSON(w, http.StatusOK, server.DeleteResponse{Deleted: true, Offset: del.Offset})
}

// writeError counts and writes one write-path failure.
func (rt *Router) writeError(w http.ResponseWriter, code int, msg string) {
	rt.m.writeErrors.Add(1)
	writeJSON(w, code, server.ErrorResponse{Error: msg})
}

// quorumMet applies the configured durability level to an ack count
// (which always includes the primary's own).
func (rt *Router) quorumMet(sh *shard, acks int) bool {
	if rt.cfg.Durability != DurabilityQuorum {
		return true
	}
	return acks >= len(sh.replicas)/2+1
}

// initNextGlobalLocked seeds the global ID counter from the primaries'
// own NextID reports: the next global ID is the smallest global landing
// on any shard's next local slot, min over s of NextID_s·S + s. Caller
// holds writeMu. Requires every shard's primary reachable — a partial
// view could assign an ID some shard has already used.
func (rt *Router) initNextGlobalLocked(ctx context.Context) error {
	if rt.nextInit {
		return nil
	}
	S := uint64(len(rt.shards))
	var min uint64
	for s, sh := range rt.shards {
		pr := rt.primaryLocked(sh)
		if pr == nil {
			return fmt.Errorf("router: shard %d has no replica eligible for primary", s)
		}
		n, err := rt.fetchNextID(ctx, pr)
		if err != nil {
			return fmt.Errorf("router: shard %d primary %s: %w", s, pr.url, err)
		}
		if c := n*S + uint64(s); s == 0 || c < min {
			min = c
		}
	}
	rt.nextGlobal = min
	rt.nextInit = true
	rt.writesStarted.Store(true)
	return nil
}

// fetchNextID reads one replica's /healthz NextID report.
func (rt *Router) fetchNextID(ctx context.Context, rep *replica) (uint64, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h server.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	if h.NextID == nil {
		return 0, errors.New("replica is not mutable (start annsd with -mutable)")
	}
	return *h.NextID, nil
}

// primaryLocked returns sh's current primary, promoting away from an
// evicted one. Caller holds writeMu.
func (rt *Router) primaryLocked(sh *shard) *replica {
	cur := sh.replicas[sh.primary.Load()]
	if cur.healthy() {
		return cur
	}
	return rt.promoteLocked(sh)
}

// promoteLocked promotes the healthy replica with the highest known
// replication offset to primary (it has lost nothing any other candidate
// holds), bumps the placement epoch, and persists the new designation to
// the manifest when one is configured. Returns nil when no healthy
// candidate exists — the shard is write-unavailable, not repaired by
// guesswork. Caller holds writeMu.
func (rt *Router) promoteLocked(sh *shard) *replica {
	cur := int(sh.primary.Load())
	best := -1
	var bestOff uint64
	for i, rep := range sh.replicas {
		if i == cur || !rep.healthy() {
			continue
		}
		if off := rep.offset.Load(); best < 0 || off > bestOff {
			best, bestOff = i, off
		}
	}
	if best < 0 {
		return nil
	}
	sh.primary.Store(int32(best))
	rt.m.promotions.Add(1)
	epoch := rt.epoch.Add(1)
	rt.persistManifestLocked(epoch)
	if rt.cfg.OnReplicaState != nil {
		rt.cfg.OnReplicaState(sh.pos, sh.replicas[best].url, StatePromoted,
			fmt.Sprintf("promoted at offset %d (epoch %d)", bestOff, epoch))
	}
	return sh.replicas[best]
}

// persistManifestLocked rewrites the configured manifest with the
// current epoch and primary designations. Best effort: the in-memory
// topology is authoritative for this router's lifetime; the rewrite
// exists so a *restarted* router resumes from the promoted topology
// instead of the dead pre-failover primary. Caller holds writeMu.
func (rt *Router) persistManifestLocked(epoch uint64) {
	m := rt.cfg.Manifest
	if m == nil || rt.cfg.ManifestPath == "" {
		return
	}
	m.FormatVersion = ManifestVersion
	m.Epoch = epoch
	for s, sh := range rt.shards {
		if s < len(m.Files) {
			m.Files[s].Primary = int(sh.primary.Load())
		}
	}
	_ = WriteManifest(rt.cfg.ManifestPath, m)
}

// relayAll ships the frame for op (applied on the primary at sequence
// number seq) to every other replica of sh, catching lagging replicas up
// from the primary's WAL on a 409 gap. Returns the number of replicas
// holding the frame (counting the primary) and the last relay error.
// Relay failures press on the failing replica's health but never unwind
// the primary's apply — the frame is durable there and any replica that
// missed it catches up from the primary's WAL later.
func (rt *Router) relayAll(ctx context.Context, sh *shard, pr *replica, op segment.Op, seq uint64) (int, error) {
	frame, err := segment.EncodeFrame(op, rt.cfg.Dimension)
	if err != nil {
		// Cannot happen for an op the primary just accepted; surface as a
		// zero-extra-acks relay failure rather than a panic.
		rt.m.replicationErrs.Add(1)
		return 1, err
	}
	acks := 1
	var lastErr error
	for _, rep := range sh.replicas {
		if rep == pr {
			continue
		}
		if err := rt.relayOne(ctx, pr, rep, frame, seq); err != nil {
			lastErr = err
			rt.m.replicationErrs.Add(1)
			rt.replicaFailure(sh.pos, rep, rt.cfg.EvictAfter, "replication: "+err.Error())
			continue
		}
		rt.m.replications.Add(1)
		rt.replicaSuccess(sh.pos, rep, false)
		acks++
	}
	return acks, lastErr
}

// gapError is a replica's 409 answer: it is at offset Offset and cannot
// apply the relayed frame yet.
type gapError struct{ offset uint64 }

func (e *gapError) Error() string {
	return fmt.Sprintf("replica at offset %d reported a replication gap", e.offset)
}

// relayOne delivers one frame at seq to rep. A duplicate delivery is a
// 200 no-op on the replica (idempotent by offset); a 409 gap triggers a
// catch-up stream from the primary's WAL, which includes the frame
// itself, so catching up to seq completes the delivery.
func (rt *Router) relayOne(ctx context.Context, pr, rep *replica, frame []byte, seq uint64) error {
	off, err := rt.pushFrames(ctx, rep, seq-1, frame)
	if err == nil {
		rep.noteReplication(off)
		return nil
	}
	var gap *gapError
	if !errors.As(err, &gap) {
		return err
	}
	from := gap.offset
	for from < seq {
		blob, count, _, err := rt.fetchFrames(ctx, pr, from)
		if err != nil {
			return fmt.Errorf("catch-up read from primary at offset %d: %w", from, err)
		}
		if count == 0 {
			return fmt.Errorf("primary has no frames past offset %d but the relay is at %d — streams diverged", from, seq)
		}
		next, err := rt.pushFrames(ctx, rep, from, blob)
		if err != nil {
			return fmt.Errorf("catch-up push at offset %d: %w", from, err)
		}
		if next <= from {
			return fmt.Errorf("catch-up made no progress at offset %d", from)
		}
		from = next
	}
	rep.noteReplication(from)
	return nil
}

// catchUpCap bounds one catch-up read so a far-behind replica streams
// the backlog in bounded memory.
const catchUpCap = 4 << 20

// pushFrames posts raw frame bytes to rep's /v1/replicate and returns
// the replica's resulting offset; a 409 comes back as *gapError.
func (rt *Router) pushFrames(ctx context.Context, rep *replica, from uint64, frames []byte) (uint64, error) {
	body, err := json.Marshal(server.ReplicateRequest{
		From:   from,
		Frames: base64.StdEncoding.EncodeToString(frames),
	})
	if err != nil {
		return 0, err
	}
	raw, err := rt.post(ctx, rep.url+"/v1/replicate", body)
	if err != nil {
		var he *httpError
		if errors.As(err, &he) && he.status == http.StatusConflict {
			var rr server.ReplicateResponse
			if jerr := json.Unmarshal([]byte(he.body), &rr); jerr == nil {
				return 0, &gapError{offset: rr.Offset}
			}
		}
		return 0, err
	}
	var rr server.ReplicateResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		return 0, err
	}
	return rr.Offset, nil
}

// fetchFrames reads a bounded run of WAL frames after offset from out of
// the primary's /v1/frames.
func (rt *Router) fetchFrames(ctx context.Context, pr *replica, from uint64) (blob []byte, count int, primaryOffset uint64, err error) {
	body, err := json.Marshal(server.FramesRequest{From: from, MaxBytes: catchUpCap})
	if err != nil {
		return nil, 0, 0, err
	}
	raw, err := rt.post(ctx, pr.url+"/v1/frames", body)
	if err != nil {
		return nil, 0, 0, err
	}
	var fr server.FramesResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		return nil, 0, 0, err
	}
	blob, err = base64.StdEncoding.DecodeString(fr.Frames)
	if err != nil {
		return nil, 0, 0, err
	}
	return blob, fr.Count, fr.Offset, nil
}
