// Package baseline implements the comparison data structures the paper's
// introduction measures itself against:
//
//   - LSH: classic bit-sampling locality-sensitive hashing (Indyk–Motwani)
//     for Hamming space, with the standard radius-level reduction from
//     nearest-neighbor search to (λ, γλ)-near neighbor. Non-adaptive: all
//     probes depend only on the query (1 round), and the probe count grows
//     as n^ρ — the O~(d·n^ρ) regime discussed in §1.
//   - LinearScan: the exact 1-round scan (n probes), the ground-truth
//     comparator.
//   - BinarySearch: the fully adaptive scheme probing one ball table per
//     round via binary search over the ⌈log_α d⌉ levels, giving
//     Θ(log log d) probes — the Chakrabarti–Regev regime Algorithm 2
//     approaches as k grows.
package baseline

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/rng"
)

// LSH is a bit-sampling LSH structure for one radius (lambda, gamma*lambda).
type LSH struct {
	D      int
	Lambda float64
	Gamma  float64
	Kappa  int                // sampled bits per hash
	L      int                // number of hash tables
	coords [][]int            // per-table sampled coordinates
	tables []map[string][]int // bucket key -> database point indices
	db     []bitvec.Vector
}

// LSHParams returns the textbook parameter choice for n points at radius
// lambda with approximation gamma: κ = ⌈ln n / ln(1/p₂)⌉ with
// p₂ = 1 − γλ/d, and L = ⌈n^ρ⌉ with ρ = ln p₁ / ln p₂, p₁ = 1 − λ/d.
func LSHParams(d, n int, lambda, gamma float64) (kappa, l int, rho float64) {
	p1 := 1 - lambda/float64(d)
	p2 := 1 - gamma*lambda/float64(d)
	if p2 <= 0 {
		p2 = 1 / float64(d)
	}
	if p1 >= 1 {
		p1 = 1 - 1/float64(2*d)
	}
	rho = math.Log(p1) / math.Log(p2)
	kappa = int(math.Ceil(math.Log(float64(n)) / math.Log(1/p2)))
	if kappa < 1 {
		kappa = 1
	}
	if kappa > d {
		kappa = d
	}
	l = int(math.Ceil(math.Pow(float64(n), rho)))
	if l < 1 {
		l = 1
	}
	return kappa, l, rho
}

// NewLSH builds the structure for the database at one radius.
func NewLSH(r *rng.Source, db []bitvec.Vector, d int, lambda, gamma float64) *LSH {
	kappa, l, _ := LSHParams(d, len(db), lambda, gamma)
	s := &LSH{D: d, Lambda: lambda, Gamma: gamma, Kappa: kappa, L: l, db: db}
	for j := 0; j < l; j++ {
		coords := r.Sample(d, kappa)
		s.coords = append(s.coords, coords)
		tab := make(map[string][]int)
		for i, z := range db {
			key := projectKey(z, coords)
			tab[key] = append(tab[key], i)
		}
		s.tables = append(s.tables, tab)
	}
	return s
}

func projectKey(x bitvec.Vector, coords []int) string {
	key := make([]byte, (len(coords)+7)/8)
	for i, c := range coords {
		if x.Get(c) {
			key[i/8] |= 1 << uint(i%8)
		}
	}
	return string(key)
}

// QueryNear probes the L buckets for x and returns a point within
// gamma*lambda if one is found. Probe accounting: one probe per bucket
// head plus one probe per candidate point read (the cell-probe model's
// word holds one point); all probes depend only on x, hence 1 round.
func (s *LSH) QueryNear(x bitvec.Vector) (idx int, stats cellprobe.Stats) {
	stats.Rounds = 1
	limit := 3 * s.L // the standard 3L-candidate cutoff keeps cost O(L)
	scanned := 0
	best, bestDist := -1, -1
	thr := int(math.Floor(s.Gamma * s.Lambda))
	for j := 0; j < s.L; j++ {
		stats.Probes++ // bucket head
		bucket := s.tables[j][projectKey(x, s.coords[j])]
		for _, cand := range bucket {
			if scanned >= limit {
				break
			}
			scanned++
			stats.Probes++ // candidate read
			d := bitvec.Distance(s.db[cand], x)
			if d <= thr && (best < 0 || d < bestDist) {
				best, bestDist = cand, d
			}
		}
	}
	stats.ProbesPerRound = []int{stats.Probes}
	return best, stats
}

// NearestLSH reduces nearest-neighbor search to near-neighbor structures
// at radii αⁱ (α = √γ), all probed in parallel: the whole query is one
// round, as the paper's §1 describes LSH ("each cell-probe relies only on
// the query").
type NearestLSH struct {
	Alpha  float64
	levels []*LSH
	db     []bitvec.Vector
}

// NewNearestLSH builds near-neighbor structures for every level radius.
func NewNearestLSH(r *rng.Source, db []bitvec.Vector, d int, gamma float64) *NearestLSH {
	alpha := math.Sqrt(gamma)
	n := &NearestLSH{Alpha: alpha, db: db}
	L := int(math.Ceil(math.Log(float64(d)) / math.Log(alpha)))
	for i := 0; i <= L; i++ {
		lambda := math.Pow(alpha, float64(i))
		if lambda > float64(d) {
			lambda = float64(d)
		}
		n.levels = append(n.levels, NewLSH(r.Split(uint64(i)), db, d, lambda, gamma))
	}
	return n
}

// Query returns an approximate nearest neighbor and the probe accounting.
// The answer is the hit at the smallest radius level.
func (s *NearestLSH) Query(x bitvec.Vector) (int, cellprobe.Stats) {
	var stats cellprobe.Stats
	stats.Rounds = 1
	best, bestDist := -1, -1
	for _, lv := range s.levels {
		idx, st := lv.QueryNear(x)
		stats.Probes += st.Probes
		if idx >= 0 {
			d := bitvec.Distance(s.db[idx], x)
			if best < 0 || d < bestDist {
				best, bestDist = idx, d
			}
		}
	}
	stats.ProbesPerRound = []int{stats.Probes}
	return best, stats
}

// Describe reports the parameterization for the E6 table.
func (s *NearestLSH) Describe() string {
	if len(s.levels) == 0 {
		return "lsh(empty)"
	}
	mid := s.levels[len(s.levels)/2]
	return fmt.Sprintf("lsh(levels=%d, mid: kappa=%d L=%d)", len(s.levels), mid.Kappa, mid.L)
}
