package baseline

import (
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func testDB(t *testing.T, d, n int) []bitvec.Vector {
	t.Helper()
	r := rng.New(55)
	db := make([]bitvec.Vector, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	return db
}

func TestLSHParams(t *testing.T) {
	kappa, l, rho := LSHParams(1024, 256, 16, 2)
	if rho <= 0 || rho >= 1 {
		t.Errorf("rho = %v", rho)
	}
	// Bit-sampling rho is close to 1/gamma for lambda << d.
	if math.Abs(rho-0.5) > 0.05 {
		t.Errorf("rho = %v, want ≈ 0.5", rho)
	}
	if kappa < 1 || kappa > 1024 || l < 1 {
		t.Errorf("kappa=%d l=%d", kappa, l)
	}
	// L ≈ n^rho.
	if float64(l) < math.Pow(256, rho)-1 || float64(l) > math.Pow(256, rho)+2 {
		t.Errorf("l = %d, want ≈ %v", l, math.Pow(256, rho))
	}
}

func TestLSHFindsPlantedNeighbor(t *testing.T) {
	d := 1024
	db := testDB(t, d, 200)
	r := rng.New(56)
	s := NewLSH(r, db, d, 16, 2)
	hits := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		x := hamming.AtDistance(r, db[trial], d, 12)
		idx, st := s.QueryNear(x)
		if st.Rounds != 1 {
			t.Fatalf("LSH used %d rounds", st.Rounds)
		}
		if st.Probes < s.L {
			t.Fatalf("LSH probed %d < L=%d buckets", st.Probes, s.L)
		}
		if idx >= 0 && float64(bitvec.Distance(db[idx], x)) <= 32 {
			hits++
		}
	}
	if hits < trials*2/3 {
		t.Errorf("LSH found planted neighbor %d/%d", hits, trials)
	}
}

func TestLSHRejectsFarQueries(t *testing.T) {
	d := 1024
	db := testDB(t, d, 100)
	r := rng.New(57)
	s := NewLSH(r, db, d, 8, 2)
	for trial := 0; trial < 10; trial++ {
		x := hamming.Random(r, d) // distance ≈ 512 from everything
		if idx, _ := s.QueryNear(x); idx >= 0 {
			t.Errorf("far query matched point %d", idx)
		}
	}
}

func TestNearestLSHQuality(t *testing.T) {
	d := 512
	db := testDB(t, d, 150)
	r := rng.New(58)
	s := NewNearestLSH(r, db, d, 2)
	ok := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		x := hamming.AtDistance(r, db[trial], d, 20)
		idx, st := s.Query(x)
		if st.Rounds != 1 {
			t.Fatalf("NearestLSH used %d rounds", st.Rounds)
		}
		if idx >= 0 && hamming.IsApproxNearest(db, x, db[idx], 2) {
			ok++
		}
	}
	if ok < trials*2/3 {
		t.Errorf("NearestLSH approx-correct on %d/%d", ok, trials)
	}
	if s.Describe() == "" {
		t.Error("empty description")
	}
}

func TestNearestLSHProbesGrowWithN(t *testing.T) {
	d := 512
	r := rng.New(59)
	var prev float64
	for _, n := range []int{50, 200, 800} {
		db := testDB(t, d, n)
		s := NewNearestLSH(r.Split(uint64(n)), db, d, 2)
		x := hamming.AtDistance(r, db[0], d, 15)
		_, st := s.Query(x)
		if float64(st.Probes) < prev {
			t.Errorf("probes decreased with n: %d at n=%d (prev %v)", st.Probes, n, prev)
		}
		prev = float64(st.Probes)
	}
}

func TestLinearScanExact(t *testing.T) {
	d := 256
	db := testDB(t, d, 80)
	s := NewLinearScan(db)
	r := rng.New(60)
	for trial := 0; trial < 15; trial++ {
		x := hamming.AtDistance(r, db[trial], d, 9)
		idx, st := s.Query(x)
		wantIdx, wantDist := hamming.Nearest(db, x)
		if bitvec.Distance(db[idx], x) != wantDist {
			t.Errorf("linear scan found distance %d, want %d (idx %d vs %d)",
				bitvec.Distance(db[idx], x), wantDist, idx, wantIdx)
		}
		if st.Probes != len(db) || st.Rounds != 1 {
			t.Errorf("linear scan stats %+v", st)
		}
	}
}

func TestBinarySearchCorrectAndLogarithmic(t *testing.T) {
	d := 1024
	db := testDB(t, d, 150)
	idx := core.BuildIndex(db, d, core.Params{Gamma: 2, Seed: 61})
	b := NewBinarySearch(idx)
	r := rng.New(62)
	ok := 0
	maxProbes := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		x := hamming.AtDistance(r, db[trial], d, 30)
		res := b.Query(x)
		if res.Failed() {
			continue
		}
		if res.Stats.Probes > maxProbes {
			maxProbes = res.Stats.Probes
		}
		if hamming.IsApproxNearest(db, x, db[res.Index], 2) {
			ok++
		}
	}
	if ok < trials*3/4 {
		t.Errorf("binary search correct on %d/%d", ok, trials)
	}
	// Probes ≈ log2(L) + 3: degenerate pair + top probe + search.
	bound := int(math.Ceil(math.Log2(float64(idx.Fam.L+1)))) + 4
	if maxProbes > bound {
		t.Errorf("binary search used %d probes, want ≤ %d", maxProbes, bound)
	}
	if b.Rounds() < 3 {
		t.Error("rounds accessor too small")
	}
	if b.Name() == "" {
		t.Error("empty name")
	}
}

func TestBinarySearchDegenerate(t *testing.T) {
	d := 256
	db := testDB(t, d, 50)
	idx := core.BuildIndex(db, d, core.Params{Gamma: 2, Seed: 63})
	b := NewBinarySearch(idx)
	res := b.Query(db[9])
	if res.Failed() || !res.Degenerate {
		t.Fatalf("member query: %+v", res)
	}
}
