package baseline

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/cellprobe"
	"repro/internal/core"
)

// BinarySearch is the fully adaptive comparator over the same ball tables
// the paper's schemes use: because nonemptiness of C_i is monotone in i
// (C_i ≠ ∅ ⇒ B_{i+1} ≠ ∅ ⇒ C_{i+1} ≠ ∅ under Assumption 2), the smallest
// nonempty level can be found by binary search with one probe per round —
// Θ(log log_α d) probes and as many rounds. This realizes the fully
// adaptive Θ(log log d) regime of Chakrabarti–Regev that Theorem 1 cites
// and that Algorithm 2 approaches with O(1) probes per round.
type BinarySearch struct {
	idx *core.Index
}

// NewBinarySearch reuses an existing index's tables.
func NewBinarySearch(idx *core.Index) *BinarySearch { return &BinarySearch{idx: idx} }

// Name implements core.Scheme.
func (b *BinarySearch) Name() string { return "binsearch(fully-adaptive)" }

// Rounds implements core.Scheme: ⌈log₂(L+1)⌉ search rounds + first + last.
func (b *BinarySearch) Rounds() int {
	L := b.idx.Fam.L
	r := 2
	for span := L + 1; span > 1; span = (span + 1) / 2 {
		r++
	}
	return r
}

// Query implements core.Scheme.
func (b *BinarySearch) Query(x bitvec.Vector) core.Result {
	idx := b.idx
	p := cellprobe.NewQueryCtx(0) // unlimited rounds; we only count
	sk := make([]bitvec.Vector, idx.Fam.L+1)
	probe := func(i int) (cellprobe.Word, error) {
		if sk[i] == nil {
			sk[i] = idx.Fam.Accurate[i].Apply(x)
		}
		p.Stage(idx.Tables.Ball[i].Table(), idx.Tables.Ball[i].AddressOfSketch(sk[i]))
		w, err := p.Flush()
		if err != nil {
			return cellprobe.EmptyWord, err
		}
		return w[0], nil
	}

	// Degenerate membership round (kept separate: this scheme is a round
	// comparator, not a round-budget scheme).
	p.Stage(idx.Tables.Exact.Table(), idx.Tables.Exact.Address(x))
	p.Stage(idx.Tables.Near.Table(), idx.Tables.Near.Address(x))
	dw, err := p.Flush()
	if err != nil {
		return core.Result{Index: -1, Stats: p.Stats(), Err: err}
	}
	if dw[0].Kind == cellprobe.Point {
		return core.Result{Index: dw[0].Index, Stats: p.Stats(), Degenerate: true}
	}
	if dw[1].Kind == cellprobe.Point {
		return core.Result{Index: dw[1].Index, Stats: p.Stats(), Degenerate: true}
	}

	// Invariant: C_lo = ∅ (lo = -1 encodes "below level 0"), C_hi ≠ ∅.
	lo, hi := -1, idx.Fam.L
	var hiWord cellprobe.Word
	hiWord, err = probe(hi)
	if err != nil {
		return core.Result{Index: -1, Stats: p.Stats(), Err: err}
	}
	if hiWord.Kind == cellprobe.Empty {
		return core.Result{Index: -1, Stats: p.Stats(), Violated: true,
			Err: fmt.Errorf("baseline: top level empty (assumption violation)")}
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		w, err := probe(mid)
		if err != nil {
			return core.Result{Index: -1, Stats: p.Stats(), Err: err}
		}
		if w.Kind == cellprobe.Point {
			hi, hiWord = mid, w
		} else {
			lo = mid
		}
	}
	return core.Result{Index: hiWord.Index, Stats: p.Stats()}
}

var _ core.Scheme = (*BinarySearch)(nil)
