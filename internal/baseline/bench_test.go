package baseline

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/hamming"
	"repro/internal/rng"
)

func benchSetup(b *testing.B, d, n int) ([]bitvec.Vector, []bitvec.Vector) {
	b.Helper()
	r := rng.New(42)
	db := make([]bitvec.Vector, n)
	for i := range db {
		db[i] = hamming.Random(r, d)
	}
	qs := make([]bitvec.Vector, 16)
	for i := range qs {
		qs[i] = hamming.AtDistance(r, db[i], d, 20)
	}
	return db, qs
}

func BenchmarkLSHQuery(b *testing.B) {
	db, qs := benchSetup(b, 1024, 400)
	s := NewNearestLSH(rng.New(43), db, 1024, 2)
	b.ReportAllocs()
	b.ResetTimer()
	probes := 0
	for i := 0; i < b.N; i++ {
		_, st := s.Query(qs[i%len(qs)])
		probes += st.Probes
	}
	b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
}

func BenchmarkLinearScanQuery(b *testing.B) {
	db, qs := benchSetup(b, 1024, 400)
	s := NewLinearScan(db)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Query(qs[i%len(qs)])
	}
}

func BenchmarkBinarySearchQuery(b *testing.B) {
	db, qs := benchSetup(b, 1024, 400)
	idx := core.BuildIndex(db, 1024, core.Params{Gamma: 2, Seed: 44})
	s := NewBinarySearch(idx)
	s.Query(qs[0]) // warm lazy sketches
	b.ReportAllocs()
	b.ResetTimer()
	probes := 0
	for i := 0; i < b.N; i++ {
		probes += s.Query(qs[i%len(qs)]).Stats.Probes
	}
	b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
}
