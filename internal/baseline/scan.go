package baseline

import (
	"repro/internal/bitvec"
	"repro/internal/cellprobe"
)

// LinearScan is the exact comparator: read every database point (n probes,
// all address-independent, hence one round) and return the true nearest
// neighbor. In the cell-probe model this is the trivial non-adaptive
// scheme with a linear-size table.
type LinearScan struct {
	db []bitvec.Vector
}

// NewLinearScan wraps the database.
func NewLinearScan(db []bitvec.Vector) *LinearScan { return &LinearScan{db: db} }

// Query returns the exact nearest neighbor with n probes in 1 round.
func (s *LinearScan) Query(x bitvec.Vector) (int, cellprobe.Stats) {
	best, bestDist := 0, bitvec.Distance(s.db[0], x)
	for i := 1; i < len(s.db); i++ {
		if d := bitvec.Distance(s.db[i], x); d < bestDist {
			best, bestDist = i, d
		}
	}
	st := cellprobe.Stats{Rounds: 1, Probes: len(s.db), ProbesPerRound: []int{len(s.db)}}
	return best, st
}
