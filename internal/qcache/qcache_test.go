package qcache

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cellprobe"
)

func key(i int) cellprobe.Addr {
	return cellprobe.VecAddr(cellprobe.GenericTag(0), []uint64{uint64(i), uint64(i) * 31})
}

func TestHitMiss(t *testing.T) {
	c := New(16)
	if _, ok := c.Get(key(1), 0); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key(1), 0, "a")
	v, ok := c.Get(key(1), 0)
	if !ok || v.(string) != "a" {
		t.Fatalf("want hit a, got %v %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := New(16)
	c.Put(key(1), 5, "epoch5")
	// Same epoch: hit.
	if _, ok := c.Get(key(1), 5); !ok {
		t.Fatal("same-generation read missed")
	}
	// Bumped epoch: the entry must be unreachable and counted invalidated.
	if _, ok := c.Get(key(1), 6); ok {
		t.Fatal("stale entry served after generation bump")
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", st.Invalidations)
	}
	// The stale entry was reclaimed: even the old epoch misses now.
	if _, ok := c.Get(key(1), 5); ok {
		t.Fatal("invalidated entry still present")
	}
	// Re-populate at the new epoch works.
	c.Put(key(1), 6, "epoch6")
	if v, ok := c.Get(key(1), 6); !ok || v.(string) != "epoch6" {
		t.Fatal("re-populated entry missed")
	}
}

func TestBoundedEviction(t *testing.T) {
	const cap = 32
	c := New(cap)
	for i := 0; i < 10*cap; i++ {
		c.Put(key(i), 0, i)
	}
	if n := c.Len(); n > cap {
		t.Fatalf("cache holds %d entries, capacity %d", n, cap)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions after overfill")
	}
}

func TestLRUOrder(t *testing.T) {
	// Single shard (capacity < defaultShards forces shard collapse) so LRU
	// order is observable deterministically.
	c := New(2)
	if len(c.shards) != 1 {
		t.Fatalf("expected 1 shard for capacity 2, got %d", len(c.shards))
	}
	c.Put(key(1), 0, 1)
	c.Put(key(2), 0, 2)
	c.Get(key(1), 0) // 1 is now MRU; 2 is LRU
	c.Put(key(3), 0, 3)
	if _, ok := c.Get(key(2), 0); ok {
		t.Fatal("LRU entry 2 should have been evicted")
	}
	if _, ok := c.Get(key(1), 0); !ok {
		t.Fatal("recently-used entry 1 was evicted")
	}
	if _, ok := c.Get(key(3), 0); !ok {
		t.Fatal("new entry 3 missing")
	}
}

func TestPutOverwrite(t *testing.T) {
	c := New(4)
	c.Put(key(1), 0, "old")
	c.Put(key(1), 1, "new")
	if c.Len() != 1 {
		t.Fatalf("len = %d after overwrite", c.Len())
	}
	if v, ok := c.Get(key(1), 1); !ok || v.(string) != "new" {
		t.Fatal("overwrite lost")
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache = New(0)
	if c != nil {
		t.Fatal("capacity 0 must yield nil cache")
	}
	if _, ok := c.Get(key(1), 0); ok {
		t.Fatal("nil cache hit")
	}
	c.Put(key(1), 0, 1)
	if c.Len() != 0 || c.Capacity() != 0 {
		t.Fatal("nil cache must be empty")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestKeysDoNotCollide(t *testing.T) {
	// Distinct addresses must be distinct entries even when words overlap.
	c := New(64)
	a := cellprobe.VecAddr(cellprobe.GenericTag(0), []uint64{1, 2})
	b := cellprobe.VecAddr(cellprobe.GenericTag(0), []uint64{1, 2, 0})
	tagged := cellprobe.VecAddr(cellprobe.GenericTag(1), []uint64{1, 2})
	c.Put(a, 0, "a")
	c.Put(b, 0, "b")
	c.Put(tagged, 0, "t")
	for want, k := range map[string]cellprobe.Addr{"a": a, "b": b, "t": tagged} {
		if v, ok := c.Get(k, 0); !ok || v.(string) != want {
			t.Fatalf("key %v: got %v %v, want %q", k, v, ok, want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key(i % 200)
				gen := uint64(i / 500) // generations advance during the run
				if v, ok := c.Get(k, gen); ok {
					if v.(string) != fmt.Sprintf("g%d", gen) {
						t.Errorf("stale value %v at gen %d", v, gen)
					}
				} else {
					c.Put(k, gen, fmt.Sprintf("g%d", gen))
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 128 {
		t.Fatalf("len %d exceeds capacity", n)
	}
}
