// Package qcache is a sharded, bounded, generation-invalidated LRU cache
// for query results, sitting in front of the serving hot path.
//
// Keys are binary cell addresses (cellprobe.Addr): comparable, collision-
// free encodings of the query point plus a request-kind tag, so two
// requests share a cache line exactly when the serving layer would compute
// byte-identical answers for them. Values are opaque to the cache.
//
// Invalidation is by epoch, not by sweep: every entry is stamped with the
// index generation observed when its result was computed, and a reader
// presents the current generation to Get. A mutation bumps the generation
// counter (one atomic increment — O(1)), which makes every older entry
// unreachable; stale entries are reclaimed lazily on access or by LRU
// eviction. The stamp a writer stores MUST be the generation read BEFORE
// the query executed: if a mutation lands mid-query the result is then
// tagged with the pre-mutation epoch and post-mutation readers miss — the
// safe direction. Stamping after execution would let a result computed
// against the old index masquerade as current forever.
package qcache

import (
	"sync"
	"sync/atomic"

	"repro/internal/cellprobe"
)

// Stats is a point-in-time snapshot of cache counters.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
	Entries       int
	Capacity      int
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key        cellprobe.Addr
	gen        uint64
	val        any
	prev, next *entry // intrusive LRU list links; next points toward LRU
}

// shard is one lock domain: a map plus an intrusive LRU list whose head is
// most-recently-used.
type shard struct {
	mu   sync.Mutex
	m    map[cellprobe.Addr]*entry
	head *entry // MRU
	tail *entry // LRU
	cap  int
}

// Cache is the sharded LRU. Construct with New.
type Cache struct {
	shards []shard
	mask   uint64

	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64
	capacity      int
}

const defaultShards = 8

// New builds a cache bounded at capacity entries in total. Returns nil if
// capacity <= 0 — and every method on a nil *Cache is a safe no-op miss, so
// callers can thread an optional cache without nil checks.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	// Collapse shards for small caches so each keeps a meaningful LRU
	// window (at least 8 entries per shard).
	n := defaultShards
	for n > 1 && capacity < 8*n {
		n /= 2
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1), capacity: capacity}
	for i := range c.shards {
		per := capacity / n
		if i < capacity%n {
			per++
		}
		c.shards[i] = shard{m: make(map[cellprobe.Addr]*entry, per), cap: per}
	}
	return c
}

// shardFor hashes the address payload (FNV-1a over tag and words) to pick a
// lock domain.
func (c *Cache) shardFor(key *cellprobe.Addr) *shard {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	tag := key.Tag()
	h = (h ^ uint64(tag.Class)) * prime
	h = (h ^ uint64(uint32(tag.Level))) * prime
	for i := 0; i < key.Len(); i++ {
		w := key.Word(i)
		h = (h ^ (w & 0xffffffff)) * prime
		h = (h ^ (w >> 32)) * prime
	}
	return &c.shards[h&c.mask]
}

// Get returns the cached value for key if present AND stamped with gen.
// An entry from an older epoch counts as an invalidation and is removed.
func (c *Cache) Get(key cellprobe.Addr, gen uint64) (any, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(&key)
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	if e.gen != gen {
		s.remove(e)
		delete(s.m, key)
		s.mu.Unlock()
		c.invalidations.Add(1)
		c.misses.Add(1)
		return nil, false
	}
	s.touch(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores val for key stamped with gen (the generation observed BEFORE
// computing val — see the package comment). Evicts the shard's LRU entry
// when full.
func (c *Cache) Put(key cellprobe.Addr, gen uint64, val any) {
	if c == nil {
		return
	}
	s := c.shardFor(&key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		e.gen, e.val = gen, val
		s.touch(e)
		s.mu.Unlock()
		return
	}
	if len(s.m) >= s.cap {
		lru := s.tail
		s.remove(lru)
		delete(s.m, lru.key)
		c.evictions.Add(1)
	}
	e := &entry{key: key, gen: gen, val: val}
	s.m[key] = e
	s.pushFront(e)
	s.mu.Unlock()
}

// Len returns the current number of entries across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
		Capacity:      c.capacity,
	}
}

// Capacity returns the configured bound (0 for a nil cache).
func (c *Cache) Capacity() int {
	if c == nil {
		return 0
	}
	return c.capacity
}

// pushFront links e as the shard's MRU.
func (s *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// remove unlinks e from the LRU list.
func (s *shard) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// touch moves e to the MRU position.
func (s *shard) touch(e *entry) {
	if s.head == e {
		return
	}
	s.remove(e)
	s.pushFront(e)
}
