// Command annschaos runs the deterministic chaos harness against the
// distributed tier: it stands up in-process clusters (real shard
// servers booted from shard-split snapshots behind a real router, every
// replica fronted by a fault-injecting proxy), runs the configured
// strategy × shape × trial matrix with every random decision derived
// from one root seed, and gates on the hard invariants — zero wrong
// answers (byte-identical to an unfaulted reference), zero acked-write
// loss across injected WAL-tail crashes, and a bounded false-eviction
// rate. See DESIGN.md §8.
//
// Usage:
//
//	annschaos -seed 42 -trials 3 -o CHAOS_RESULTS.json
//	annschaos -strategies gray-hang,corrupt,partition,wal-tear -shapes 2x2,3x2
//	annschaos -seed 42 -replay-check        # run twice, require byte-identical invariants
//	annschaos -list                         # print the strategy catalog
//
// Exit status is non-zero on any gate violation or replay divergence,
// so the CI chaos job fails loudly.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/chaos"
)

func main() {
	seed := flag.Uint64("seed", 42, "root seed: the experiment's only entropy source")
	trials := flag.Int("trials", 3, "trials per (shape, strategy)")
	strategies := flag.String("strategies", "", "comma-separated strategy names (default: full catalog)")
	shapes := flag.String("shapes", "2x2", "comma-separated cluster shapes, SxR")
	dim := flag.Int("dim", 64, "corpus dimension")
	n := flag.Int("n", 48, "corpus size")
	queries := flag.Int("queries", 24, "compared queries per trial")
	warmup := flag.Int("warmup", 8, "pre-fault compared queries per trial")
	maxFalseEvict := flag.Float64("max-false-eviction-rate", 0.5, "gate threshold: false evictions per trial")
	cacheEntries := flag.Int("cache", 0, "result-cache capacity on every faulted-side server (0 = off); the reference oracle stays uncached, so the compare also proves the cache never serves a stale reply")
	out := flag.String("o", "CHAOS_RESULTS.json", "result matrix output path (empty to skip)")
	replayCheck := flag.Bool("replay-check", false, "run the matrix twice and require byte-identical invariants")
	list := flag.Bool("list", false, "print the strategy catalog and exit")
	flag.Parse()

	if *list {
		for _, s := range chaos.Strategies() {
			fmt.Println(s)
		}
		return
	}

	cfg := chaos.ExperimentConfig{
		RootSeed:             *seed,
		Trials:               *trials,
		Dim:                  *dim,
		N:                    *n,
		Queries:              *queries,
		Warmup:               *warmup,
		MaxFalseEvictionRate: *maxFalseEvict,
		CacheEntries:         *cacheEntries,
	}
	if *strategies != "" {
		for _, s := range strings.Split(*strategies, ",") {
			cfg.Strategies = append(cfg.Strategies, strings.TrimSpace(s))
		}
	}
	for _, s := range strings.Split(*shapes, ",") {
		sh, err := chaos.ParseShape(s)
		if err != nil {
			log.Fatalf("annschaos: %v", err)
		}
		cfg.Shapes = append(cfg.Shapes, sh)
	}

	m, err := chaos.Run(cfg, log.Printf)
	if err != nil {
		log.Fatalf("annschaos: %v", err)
	}

	if *replayCheck {
		log.Printf("replay check: re-running the full matrix from root seed %d", *seed)
		again, err := chaos.Run(cfg, nil)
		if err != nil {
			log.Fatalf("annschaos: replay run: %v", err)
		}
		a, b := m.InvariantsJSON(), again.InvariantsJSON()
		if !bytes.Equal(a, b) {
			log.Printf("first run invariants:\n%s", a)
			log.Printf("replay invariants:\n%s", b)
			log.Fatalf("annschaos: REPLAY DIVERGENCE: same root seed %d did not reproduce the invariant matrix byte-identically", *seed)
		}
		log.Printf("replay check: %d trials reproduced byte-identically", len(m.Results))
	}

	s := m.Summary
	fmt.Printf("chaos: %d trials (%d strategies × %d shapes × %d each), root seed %d\n",
		s.Trials, len(m.Config.Strategies), len(m.Config.Shapes), m.Config.Trials, m.RootSeed)
	fmt.Printf("  wrong answers:     %d\n", s.WrongAnswers)
	fmt.Printf("  acked writes:      %d lost of %d\n", s.AckedWritesLost, s.AckedWrites)
	fmt.Printf("  evictions:         %d (%d false, rate %.3f/trial), readmissions %d\n",
		s.Evictions, s.FalseEvictions, s.FalseEvictionRate, s.Readmissions)
	fmt.Printf("  hedges:            %d (%d wins, rate %.3f)\n", s.Hedges, s.HedgeWins, s.HedgeWinRate)
	fmt.Printf("  mean detection:    %.1f ms\n", s.MeanDetectionMS)

	if *out != "" {
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			log.Fatalf("annschaos: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("annschaos: %v", err)
		}
		log.Printf("wrote %s", *out)
	}

	if v := m.Gate(); len(v) != 0 {
		for _, viol := range v {
			fmt.Printf("GATE VIOLATION: %s\n", viol)
		}
		os.Exit(1)
	}
	fmt.Println("gate: PASS")
}
