// Command annsd is the query-serving daemon. It serves a cell-probe
// index over HTTP via internal/server; the index either comes from a
// snapshot file (load on boot, no preprocessing) or is built in-process
// over a generated workload (or an annsgen dataset) — and a fresh build
// can be saved for the next boot.
//
// Usage:
//
//	annsd -addr :7080 -shards 4 -k 3 -kind planted -d 512 -n 4096 -q 512
//	annsd -addr :7080 -in data.bin -shards 8 -algo soph -k 4
//	annsd -addr :7080 -kind planted -d 512 -n 4096 -save-snapshot idx.snap
//	annsd -addr :7080 -snapshot idx.snap
//	annsd -addr :7080 -mutable -wal wal.log -kind planted -d 512 -n 4096
//	annsd -addr :7080 -mutable -snapshot state.snap -wal wal.log
//	annsd -addr :7080 -mutable -cache 4096 -kind planted -d 512 -n 4096
//	annsd -addr :7080 -mutable -shards 2 -kind planted -d 512 -n 4096
//	annsd -addr :7080 -mutable -base-snapshot shard-0.snap -wal wal.log
//
// -cache N puts an N-entry query-result cache (internal/qcache) in front
// of the worker pool: repeated queries under skewed traffic answer from
// memory, and every mutation advances the index generation so a cached
// reply is never served stale — answers stay byte-identical to an
// uncached server (DESIGN.md §10).
//
// With -mutable the process serves the mutable tier (DESIGN.md §7): the
// base index (built from the workload flags, or loaded from -snapshot,
// which then also receives compaction snapshots) accepts online
// /v1/insert and /v1/delete; -wal makes mutations durable across
// restarts (replayed on boot, truncated when a compaction persists).
//
// Two mutable variants serve the replicated write tier (DESIGN.md §11):
// -mutable with an explicit -shards S serves one MutableSharded process
// — the single-process reference a routed replicated cluster must match
// byte for byte (`annsload -compare`); -mutable -base-snapshot boots a
// *replica*: the base index loads from an `annsctl shard-split` shard
// file that is never rewritten, mutations arrive via /v1/insert,
// /v1/delete, and /v1/replicate, and only the -wal accumulates state —
// so the replication offset (mutations since base) survives restarts by
// WAL replay. -snapshot's compaction persistence is deliberately
// unavailable in this mode: persisting would truncate the WAL and
// desynchronize offsets across the replica set.
//
// Endpoints: POST /v1/query, /v1/batch, /v1/near, /v1/insert,
// /v1/delete; GET /healthz, /statsz (which reports the index source —
// built vs snapshot — load time, and the mutable tier's counters).
// Drive it with cmd/annsload; build snapshots offline with cmd/annsctl
// (and fold a WAL back into one with `annsctl compact`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/anns"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

// Structured logging (log/slog JSON on stderr) replaces the scattered
// log.Printf: boot lines, slow queries, and sampled traces all land in
// one greppable stream.
var logger = obs.NewLogger(os.Stderr)

func infof(format string, args ...any) { logger.Info(fmt.Sprintf(format, args...)) }

func fatalf(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":7080", "listen address")
	in := flag.String("in", "", "dataset file from cmd/annsgen (overrides generator flags)")
	spec := workload.DefaultSpec()
	spec.RegisterFlags(flag.CommandLine)

	k := flag.Int("k", 3, "adaptivity budget (rounds)")
	algo := flag.String("algo", "simple", "simple (Algorithm 1) | soph (Algorithm 2)")
	gamma := flag.Float64("gamma", 2, "approximation ratio")
	reps := flag.Int("reps", 1, "independent repetitions (success boosting)")
	seed := flag.Uint64("seed", 42, "public randomness seed (shards derive their own)")
	shards := flag.Int("shards", 4, "shard count")
	buildWorkers := flag.Int("build-workers", 0, "index build worker pool (0 = GOMAXPROCS)")
	snapPath := flag.String("snapshot", "", "serve the index from this snapshot file instead of building")
	mmapServe := flag.Bool("mmap", false, "serve the -snapshot zero-copy via mmap (falls back to the heap loader with a logged reason if the file cannot be mapped)")
	savePath := flag.String("save-snapshot", "", "after building, save the index snapshot here")

	mutable := flag.Bool("mutable", false, "serve the mutable tier: online /v1/insert and /v1/delete over the base index")
	baseSnap := flag.String("base-snapshot", "", "mutable replica boot: immutable base index (an `annsctl shard-split` shard file) that is never rewritten; pair with -wal so the replication offset survives restarts")
	walPath := flag.String("wal", "", "mutable tier write-ahead log (durable mutations, replayed on boot)")
	walSync := flag.Int("wal-sync", 1, "fsync the WAL every n records (0 = never, let the OS decide)")
	memtableCap := flag.Int("memtable", 1024, "mutable memtable seal threshold")
	compactEvery := flag.Int("compact-every", 4, "sealed segments that trigger background compaction (0 = manual)")
	mutableSync := flag.Bool("mutable-sync", false, "run seals/compactions inline on the mutating request (deterministic; for compare harnesses)")

	cacheEntries := flag.Int("cache", 0, "query-result cache capacity in entries (0 = disabled); invalidated by index generation, so cached answers are always byte-identical to fresh ones")
	workers := flag.Int("workers", 0, "request worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "admission queue depth")
	batchWorkers := flag.Int("batch-workers", 0, "per-batch worker pool (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 4096, "max points per /v1/batch request")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline")
	traceSample := flag.Float64("trace-sample", 0, "fraction of requests whose trace is logged (0..1)")
	slowQueryMS := flag.Int("slow-query-ms", 0, "log any request at or above this duration in full (0 = disabled)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	flag.Parse()

	if *mmapServe {
		if *snapPath == "" {
			fatalf("annsd: -mmap requires -snapshot")
		}
		if *mutable {
			fatalf("annsd: -mmap applies to the immutable serving tiers; the mutable tier owns its memory (see DESIGN.md §9)")
		}
	}

	var idx server.Searcher
	var dim int
	var mclose interface{ Close() error } // the mutable tier, whichever shape
	info := server.IndexInfo{Source: "built"}

	queryOpts := func(d int) anns.Options {
		opts := anns.Options{
			Dimension:    d,
			Gamma:        *gamma,
			Rounds:       *k,
			Repetitions:  *reps,
			Seed:         *seed,
			BuildWorkers: *buildWorkers,
		}
		switch *algo {
		case "simple":
		case "soph":
			opts.Algorithm = anns.Sophisticated
		default:
			fatalf("annsd: unknown -algo %q", *algo)
		}
		return opts
	}

	loadInstance := func() *workload.Instance {
		var inst *workload.Instance
		var err error
		if *in != "" {
			inst, err = dataset.Load(*in)
		} else {
			inst, err = spec.Generate()
		}
		if err != nil {
			fatalf("annsd: %v", err)
		}
		infof("workload: %s", inst)
		return inst
	}

	shardsSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "shards" {
			shardsSet = true
		}
	})

	if *mutable {
		if *savePath != "" {
			fatalf("annsd: -mutable persists through -snapshot; -save-snapshot is not supported")
		}
		walSyncEvery := *walSync
		if walSyncEvery == 0 {
			// CLI contract: 0 = never fsync. The config's zero value means
			// "default" (every record), so translate.
			walSyncEvery = -1
		}
		mcfg := anns.MutableConfig{
			MemtableCap:  *memtableCap,
			CompactEvery: *compactEvery,
			Synchronous:  *mutableSync,
			WALPath:      *walPath,
			WALSyncEvery: walSyncEvery,
			SnapshotPath: *snapPath,
		}
		switch {
		case shardsSet && *shards > 1:
			// Single-process sharded mutable reference (DESIGN.md §11): the
			// oracle a routed replicated cluster must match byte for byte.
			if *snapPath != "" || *baseSnap != "" {
				fatalf("annsd: -mutable -shards builds from the workload flags; snapshots are not supported")
			}
			mcfg.SnapshotPath = ""
			start := time.Now()
			inst := loadInstance()
			points := make([]anns.Point, len(inst.DB))
			copy(points, inst.DB)
			msx, err := anns.BuildMutableSharded(points, *shards, queryOpts(inst.D), mcfg)
			if err != nil {
				fatalf("annsd: %v", err)
			}
			info.LoadDuration = time.Since(start)
			st := msx.MutableStats()
			dim, idx, mclose = inst.D, msx, msx
			infof("mutable sharded tier: %d shards over n=%d in %v; wal=%q (per-shard suffixes)",
				msx.Shards(), st.LiveN, info.LoadDuration.Round(time.Millisecond), *walPath)
		case *baseSnap != "":
			// Replica boot: immutable base + WAL only. No SnapshotPath — a
			// compaction persist would truncate the WAL and desync this
			// replica's offset from its peers.
			if *snapPath != "" {
				fatalf("annsd: -base-snapshot and -snapshot are mutually exclusive (a replica never rewrites its base; see DESIGN.md §11)")
			}
			mcfg.SnapshotPath = ""
			start := time.Now()
			f, err := os.Open(*baseSnap)
			if err != nil {
				fatalf("annsd: %v", err)
			}
			base, err := anns.LoadIndex(f)
			f.Close()
			if err != nil {
				fatalf("annsd: loading base snapshot %s: %v", *baseSnap, err)
			}
			mx, err := anns.NewMutable(base, mcfg)
			if err != nil {
				fatalf("annsd: %v", err)
			}
			info = server.IndexInfo{
				Source:          "snapshot",
				SnapshotVersion: snapshotFileVersion(*baseSnap),
				LoadDuration:    time.Since(start),
				Path:            *baseSnap,
			}
			st := mx.MutableStats()
			dim, idx, mclose = mx.Options().Dimension, mx, mx
			infof("mutable replica: base %s (n=%d) + wal=%q replayed=%d, offset=%d in %v",
				*baseSnap, st.LiveN, *walPath, st.WALReplayed, st.ReplicationOffset,
				info.LoadDuration.Round(time.Millisecond))
		default:
			mx := bootMutableSingle(&mcfg, *snapPath, loadInstance, queryOpts, &info)
			st := mx.MutableStats()
			dim, idx, mclose = mx.Options().Dimension, mx, mx
			infof("mutable tier: n=%d (memtable %d, %d sealed, %d tombstones) in %v; wal=%q replayed=%d",
				st.LiveN, st.Memtable, st.Sealed, st.Tombstones,
				info.LoadDuration.Round(time.Millisecond), *walPath, st.WALReplayed)
		}
	} else if *snapPath != "" {
		if *savePath != "" {
			fatalf("annsd: -snapshot and -save-snapshot are mutually exclusive")
		}
		start := time.Now()
		mode := anns.LoadHeap
		if *mmapServe {
			mode = anns.LoadAuto
		}
		loaded, err := anns.OpenSnapshot(*snapPath, mode)
		if err != nil {
			fatalf("annsd: loading snapshot %s: %v", *snapPath, err)
		}
		// The mapping (when mmap-backed) stays open for the life of the
		// process: the served index borrows its storage from it.
		single, sharded := loaded.Index, loaded.Sharded
		source := "snapshot"
		if loaded.Source == "mmap" {
			source = "mmap"
		}
		if loaded.FallbackReason != "" {
			infof("snapshot: mmap unavailable (%s); serving from the heap loader", loaded.FallbackReason)
		}
		info = server.IndexInfo{
			Source:          source,
			SnapshotVersion: snapshotFileVersion(*snapPath),
			LoadDuration:    time.Since(start),
			Path:            *snapPath,
			MappedBytes:     loaded.MappedBytes,
		}
		if loaded.Source == "mmap" {
			// The zero-copy open validates structure only; run the full
			// CRC sweep in the background so boot stays O(headers) but a
			// corrupt file is still fatal, just asynchronously.
			go func() {
				if err := loaded.VerifyChecksum(); err != nil {
					fatalf("annsd: snapshot %s failed post-boot checksum verification: %v", *snapPath, err)
				}
				infof("snapshot: background checksum verified (%d mapped bytes)", loaded.MappedBytes)
			}()
		}
		if sharded != nil {
			idx, dim = sharded, sharded.Options().Dimension
			infof("index: loaded from snapshot %s in %v (source %s, format v%d, %d shards over n=%d, k=%d)",
				*snapPath, info.LoadDuration.Round(time.Millisecond), source, info.SnapshotVersion,
				sharded.Shards(), sharded.Len(), sharded.Options().Rounds)
		} else {
			idx, dim = single, single.Options().Dimension
			infof("index: loaded from snapshot %s in %v (source %s, format v%d, n=%d, k=%d)",
				*snapPath, info.LoadDuration.Round(time.Millisecond), source, info.SnapshotVersion,
				single.Len(), single.Options().Rounds)
		}
	} else {
		inst := loadInstance()
		opts := queryOpts(inst.D)
		start := time.Now()
		points := make([]anns.Point, len(inst.DB))
		copy(points, inst.DB)
		built, err := anns.BuildSharded(points, *shards, opts)
		if err != nil {
			fatalf("annsd: %v", err)
		}
		info.LoadDuration = time.Since(start)
		sp := built.Space()
		infof("index: built %d shards over n=%d in %v (k=%d, γ=%v, algo=%s); nominal log₂ cells %.1f",
			built.Shards(), built.Len(), info.LoadDuration.Round(time.Millisecond), *k, *gamma, *algo,
			sp.NominalLog2Cells)
		if *savePath != "" {
			t0 := time.Now()
			if err := saveSharded(*savePath, built); err != nil {
				fatalf("annsd: %v", err)
			}
			size := int64(-1)
			if st, err := os.Stat(*savePath); err == nil {
				size = st.Size()
			}
			infof("snapshot: saved %s (%d bytes) in %v", *savePath, size,
				time.Since(t0).Round(time.Millisecond))
		}
		idx, dim = built, inst.D
	}

	srv, err := server.New(idx, server.Config{
		Dimension:      dim,
		Workers:        *workers,
		QueueDepth:     *queue,
		BatchWorkers:   *batchWorkers,
		MaxBatch:       *maxBatch,
		DefaultTimeout: *timeout,
		CacheEntries:   *cacheEntries,
		Index:          info,
		Trace: obs.TracerConfig{
			Seed:      *seed,
			Sample:    *traceSample,
			SlowQuery: time.Duration(*slowQueryMS) * time.Millisecond,
			Logger:    logger,
		},
	})
	if err != nil {
		fatalf("annsd: %v", err)
	}
	if *debugAddr != "" {
		go func() {
			infof("debug/pprof on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.PprofMux()); err != nil {
				infof("annsd: debug listener: %v", err)
			}
		}()
	}
	if *cacheEntries > 0 {
		infof("result cache: %d entries (epoch-invalidated)", *cacheEntries)
	} else {
		infof("result cache: disabled")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	infof("serving on %s", *addr)

	select {
	case err := <-errc:
		if err != nil {
			fatalf("annsd: %v", err)
		}
	case <-ctx.Done():
		// SIGTERM/SIGINT: stop accepting, answer every in-flight and
		// queued request, then exit. CI teardown (`kill` + `wait`) relies
		// on this being deterministic.
		infof("shutting down: draining in-flight requests and admission queue")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			infof("annsd: shutdown: %v", err)
		}
		if mclose != nil {
			// Flush and close the WAL after the last mutation has been
			// answered; the log alone can rebuild this state.
			if err := mclose.Close(); err != nil {
				infof("annsd: closing mutable tier: %v", err)
			}
		}
		snap := srv.Stats()
		fmt.Printf("served %d queries (%d near, %d batches), %d errors, %d probes total\n",
			snap.Queries, snap.Near, snap.Batches, snap.Errors, snap.Probes)
	}
}

// bootMutableSingle brings up the classic single-shard mutable tier:
// resume from a mutable snapshot when one exists at snapPath (which then
// also receives compaction persists), otherwise build the base from the
// workload flags.
func bootMutableSingle(mcfg *anns.MutableConfig, snapPath string, loadInstance func() *workload.Instance, queryOpts func(int) anns.Options, info *server.IndexInfo) *anns.MutableIndex {
	start := time.Now()
	snapExists := false
	if snapPath != "" {
		switch _, err := os.Stat(snapPath); {
		case err == nil:
			snapExists = true
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start: build from the workload flags; compactions
			// will create the snapshot here.
		default:
			// Any other failure must not silently shadow (and later
			// overwrite) an existing snapshot with a fresh build.
			fatalf("annsd: stat %s: %v", snapPath, err)
		}
	}
	if snapExists {
		f, err := os.Open(snapPath)
		if err != nil {
			fatalf("annsd: %v", err)
		}
		mx, err := anns.LoadMutable(f, *mcfg)
		f.Close()
		if err != nil {
			fatalf("annsd: loading mutable snapshot %s: %v", snapPath, err)
		}
		*info = server.IndexInfo{
			Source:          "snapshot",
			SnapshotVersion: snapshotFileVersion(snapPath),
			LoadDuration:    time.Since(start),
			Path:            snapPath,
		}
		return mx
	}
	// The mutable tier layers over one single-shard base; the -shards
	// flag selects the sharded mutable reference instead.
	inst := loadInstance()
	points := make([]anns.Point, len(inst.DB))
	copy(points, inst.DB)
	opts := queryOpts(inst.D)
	base, err := anns.Build(points, opts)
	if err != nil {
		fatalf("annsd: %v", err)
	}
	mcfg.Options = opts
	mx, err := anns.NewMutable(base, *mcfg)
	if err != nil {
		fatalf("annsd: %v", err)
	}
	info.LoadDuration = time.Since(start)
	return mx
}

// snapshotFileVersion reports the format version a snapshot file
// declares (readers accept a range since v2, so the build's
// FormatVersion is not necessarily what this process is serving).
// Best-effort: the file already loaded once when this is called.
func snapshotFileVersion(path string) uint32 {
	f, err := os.Open(path)
	if err != nil {
		return snapshot.FormatVersion
	}
	defer f.Close()
	d, err := snapshot.NewDecoder(f)
	if err != nil {
		return snapshot.FormatVersion
	}
	return d.Version()
}

func saveSharded(path string, sx *anns.ShardedIndex) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := anns.SaveSharded(f, sx); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
