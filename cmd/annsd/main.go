// Command annsd is the query-serving daemon: it builds a sharded
// cell-probe index over a generated workload (or an annsgen dataset) and
// serves it over HTTP via internal/server.
//
// Usage:
//
//	annsd -addr :7080 -shards 4 -k 3 -kind planted -d 512 -n 4096 -q 512
//	annsd -addr :7080 -in data.bin -shards 8 -algo soph -k 4
//
// Endpoints: POST /v1/query, /v1/batch, /v1/near; GET /healthz, /statsz.
// Drive it with cmd/annsload.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/anns"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7080", "listen address")
	in := flag.String("in", "", "dataset file from cmd/annsgen (overrides generator flags)")
	spec := workload.DefaultSpec()
	spec.RegisterFlags(flag.CommandLine)

	k := flag.Int("k", 3, "adaptivity budget (rounds)")
	algo := flag.String("algo", "simple", "simple (Algorithm 1) | soph (Algorithm 2)")
	gamma := flag.Float64("gamma", 2, "approximation ratio")
	reps := flag.Int("reps", 1, "independent repetitions (success boosting)")
	seed := flag.Uint64("seed", 42, "public randomness seed (shards derive their own)")
	shards := flag.Int("shards", 4, "shard count")

	workers := flag.Int("workers", 0, "request worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "admission queue depth")
	batchWorkers := flag.Int("batch-workers", 0, "per-batch worker pool (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 4096, "max points per /v1/batch request")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline")
	flag.Parse()

	var inst *workload.Instance
	var err error
	if *in != "" {
		inst, err = dataset.Load(*in)
	} else {
		inst, err = spec.Generate()
	}
	if err != nil {
		log.Fatalf("annsd: %v", err)
	}
	log.Printf("workload: %s", inst)

	opts := anns.Options{
		Dimension:   inst.D,
		Gamma:       *gamma,
		Rounds:      *k,
		Repetitions: *reps,
		Seed:        *seed,
	}
	switch *algo {
	case "simple":
	case "soph":
		opts.Algorithm = anns.Sophisticated
	default:
		log.Fatalf("annsd: unknown -algo %q", *algo)
	}

	start := time.Now()
	points := make([]anns.Point, len(inst.DB))
	copy(points, inst.DB)
	idx, err := anns.BuildSharded(points, *shards, opts)
	if err != nil {
		log.Fatalf("annsd: %v", err)
	}
	sp := idx.Space()
	log.Printf("index: %d shards over n=%d built in %v (k=%d, γ=%v, algo=%s); nominal log₂ cells %.1f",
		idx.Shards(), idx.Len(), time.Since(start).Round(time.Millisecond), *k, *gamma, *algo,
		sp.NominalLog2Cells)

	srv, err := server.New(idx, server.Config{
		Dimension:      inst.D,
		Workers:        *workers,
		QueueDepth:     *queue,
		BatchWorkers:   *batchWorkers,
		MaxBatch:       *maxBatch,
		DefaultTimeout: *timeout,
	})
	if err != nil {
		log.Fatalf("annsd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	log.Printf("serving on %s", *addr)

	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("annsd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("shutting down")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			log.Printf("annsd: shutdown: %v", err)
		}
		snap := srv.Stats()
		fmt.Printf("served %d queries (%d near, %d batches), %d errors, %d probes total\n",
			snap.Queries, snap.Near, snap.Batches, snap.Errors, snap.Probes)
	}
}
