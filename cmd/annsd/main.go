// Command annsd is the query-serving daemon. It serves a cell-probe
// index over HTTP via internal/server; the index either comes from a
// snapshot file (load on boot, no preprocessing) or is built in-process
// over a generated workload (or an annsgen dataset) — and a fresh build
// can be saved for the next boot.
//
// Usage:
//
//	annsd -addr :7080 -shards 4 -k 3 -kind planted -d 512 -n 4096 -q 512
//	annsd -addr :7080 -in data.bin -shards 8 -algo soph -k 4
//	annsd -addr :7080 -kind planted -d 512 -n 4096 -save-snapshot idx.snap
//	annsd -addr :7080 -snapshot idx.snap
//
// Endpoints: POST /v1/query, /v1/batch, /v1/near; GET /healthz, /statsz
// (which reports the index source — built vs snapshot — and load time).
// Drive it with cmd/annsload; build snapshots offline with cmd/annsctl.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/anns"
	"repro/internal/dataset"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":7080", "listen address")
	in := flag.String("in", "", "dataset file from cmd/annsgen (overrides generator flags)")
	spec := workload.DefaultSpec()
	spec.RegisterFlags(flag.CommandLine)

	k := flag.Int("k", 3, "adaptivity budget (rounds)")
	algo := flag.String("algo", "simple", "simple (Algorithm 1) | soph (Algorithm 2)")
	gamma := flag.Float64("gamma", 2, "approximation ratio")
	reps := flag.Int("reps", 1, "independent repetitions (success boosting)")
	seed := flag.Uint64("seed", 42, "public randomness seed (shards derive their own)")
	shards := flag.Int("shards", 4, "shard count")
	buildWorkers := flag.Int("build-workers", 0, "index build worker pool (0 = GOMAXPROCS)")
	snapPath := flag.String("snapshot", "", "serve the index from this snapshot file instead of building")
	savePath := flag.String("save-snapshot", "", "after building, save the index snapshot here")

	workers := flag.Int("workers", 0, "request worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 1024, "admission queue depth")
	batchWorkers := flag.Int("batch-workers", 0, "per-batch worker pool (0 = GOMAXPROCS)")
	maxBatch := flag.Int("max-batch", 4096, "max points per /v1/batch request")
	timeout := flag.Duration("timeout", 2*time.Second, "default per-request deadline")
	flag.Parse()

	var idx server.Searcher
	var dim int
	info := server.IndexInfo{Source: "built"}

	if *snapPath != "" {
		if *savePath != "" {
			log.Fatalf("annsd: -snapshot and -save-snapshot are mutually exclusive")
		}
		start := time.Now()
		f, err := os.Open(*snapPath)
		if err != nil {
			log.Fatalf("annsd: %v", err)
		}
		single, sharded, err := anns.LoadAny(f)
		f.Close()
		if err != nil {
			log.Fatalf("annsd: loading snapshot %s: %v", *snapPath, err)
		}
		info = server.IndexInfo{
			Source:          "snapshot",
			SnapshotVersion: snapshot.FormatVersion,
			LoadDuration:    time.Since(start),
			Path:            *snapPath,
		}
		if sharded != nil {
			idx, dim = sharded, sharded.Options().Dimension
			log.Printf("index: loaded from snapshot %s in %v (format v%d, %d shards over n=%d, k=%d)",
				*snapPath, info.LoadDuration.Round(time.Millisecond), snapshot.FormatVersion,
				sharded.Shards(), sharded.Len(), sharded.Options().Rounds)
		} else {
			idx, dim = single, single.Options().Dimension
			log.Printf("index: loaded from snapshot %s in %v (format v%d, n=%d, k=%d)",
				*snapPath, info.LoadDuration.Round(time.Millisecond), snapshot.FormatVersion,
				single.Len(), single.Options().Rounds)
		}
	} else {
		var inst *workload.Instance
		var err error
		if *in != "" {
			inst, err = dataset.Load(*in)
		} else {
			inst, err = spec.Generate()
		}
		if err != nil {
			log.Fatalf("annsd: %v", err)
		}
		log.Printf("workload: %s", inst)

		opts := anns.Options{
			Dimension:    inst.D,
			Gamma:        *gamma,
			Rounds:       *k,
			Repetitions:  *reps,
			Seed:         *seed,
			BuildWorkers: *buildWorkers,
		}
		switch *algo {
		case "simple":
		case "soph":
			opts.Algorithm = anns.Sophisticated
		default:
			log.Fatalf("annsd: unknown -algo %q", *algo)
		}

		start := time.Now()
		points := make([]anns.Point, len(inst.DB))
		copy(points, inst.DB)
		built, err := anns.BuildSharded(points, *shards, opts)
		if err != nil {
			log.Fatalf("annsd: %v", err)
		}
		info.LoadDuration = time.Since(start)
		sp := built.Space()
		log.Printf("index: built %d shards over n=%d in %v (k=%d, γ=%v, algo=%s); nominal log₂ cells %.1f",
			built.Shards(), built.Len(), info.LoadDuration.Round(time.Millisecond), *k, *gamma, *algo,
			sp.NominalLog2Cells)
		if *savePath != "" {
			t0 := time.Now()
			if err := saveSharded(*savePath, built); err != nil {
				log.Fatalf("annsd: %v", err)
			}
			size := int64(-1)
			if st, err := os.Stat(*savePath); err == nil {
				size = st.Size()
			}
			log.Printf("snapshot: saved %s (%d bytes) in %v", *savePath, size,
				time.Since(t0).Round(time.Millisecond))
		}
		idx, dim = built, inst.D
	}

	srv, err := server.New(idx, server.Config{
		Dimension:      dim,
		Workers:        *workers,
		QueueDepth:     *queue,
		BatchWorkers:   *batchWorkers,
		MaxBatch:       *maxBatch,
		DefaultTimeout: *timeout,
		Index:          info,
	})
	if err != nil {
		log.Fatalf("annsd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	log.Printf("serving on %s", *addr)

	select {
	case err := <-errc:
		if err != nil {
			log.Fatalf("annsd: %v", err)
		}
	case <-ctx.Done():
		// SIGTERM/SIGINT: stop accepting, answer every in-flight and
		// queued request, then exit. CI teardown (`kill` + `wait`) relies
		// on this being deterministic.
		log.Printf("shutting down: draining in-flight requests and admission queue")
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shctx); err != nil {
			log.Printf("annsd: shutdown: %v", err)
		}
		snap := srv.Stats()
		fmt.Printf("served %d queries (%d near, %d batches), %d errors, %d probes total\n",
			snap.Queries, snap.Near, snap.Batches, snap.Errors, snap.Probes)
	}
}

func saveSharded(path string, sx *anns.ShardedIndex) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := anns.SaveSharded(f, sx); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
