// Command annsbench runs the experiment suite E1–E10 (DESIGN.md §4) and
// prints the regenerated tables.
//
// Usage:
//
//	annsbench [-run E1,E3] [-seed 42] [-quick] [-format text|markdown|csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/eval"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	seed := flag.Uint64("seed", 42, "base random seed")
	quick := flag.Bool("quick", false, "reduced sweeps")
	format := flag.String("format", "text", "output format: text, markdown, or csv")
	list := flag.Bool("list", false, "list experiments and exit")
	outDir := flag.String("out", "", "also write one <id>.md and <id>.csv per experiment into this directory")
	flag.Parse()

	if *list {
		for _, e := range eval.All() {
			fmt.Printf("%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	cfg := eval.Config{Seed: *seed, Quick: *quick}
	var selected []eval.Experiment
	if *runIDs == "" {
		selected = eval.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := eval.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "annsbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "annsbench: %v\n", err)
			os.Exit(1)
		}
	}
	for _, e := range selected {
		start := time.Now()
		tables := e.Run(cfg)
		for ti, t := range tables {
			switch *format {
			case "markdown":
				fmt.Println(t.Markdown())
			case "csv":
				fmt.Println(t.CSV())
			default:
				fmt.Println(t.Text())
			}
			if *outDir != "" {
				base := e.ID
				if ti > 0 {
					base = fmt.Sprintf("%s-%d", e.ID, ti)
				}
				if err := writeFile(*outDir, base+".md", t.Markdown()); err != nil {
					fmt.Fprintf(os.Stderr, "annsbench: %v\n", err)
					os.Exit(1)
				}
				if err := writeFile(*outDir, base+".csv", t.CSV()); err != nil {
					fmt.Fprintf(os.Stderr, "annsbench: %v\n", err)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func writeFile(dir, name, content string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
}
