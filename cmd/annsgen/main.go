// Command annsgen generates synthetic Hamming-space datasets and writes
// them in the repro dataset format for cmd/annsquery and external tooling.
//
// Usage:
//
//	annsgen -out data.bin -kind planted -d 1024 -n 500 -q 50 -dist 40
//	annsgen -out data.bin -kind uniform -d 1024 -n 500 -q 50
//	annsgen -out data.bin -kind clustered -d 1024 -n 500 -q 50 -clusters 8 -rad 30
//	annsgen -out data.bin -kind annulus -d 1024 -n 500 -q 50 -lambda 8
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", "dataset.bin", "output path")
	kind := flag.String("kind", "planted", "uniform | planted | clustered | annulus")
	d := flag.Int("d", 1024, "dimension")
	n := flag.Int("n", 500, "database size")
	q := flag.Int("q", 50, "query count")
	dist := flag.Int("dist", 40, "planted NN distance (kind=planted)")
	clusters := flag.Int("clusters", 8, "cluster count (kind=clustered)")
	rad := flag.Int("rad", 30, "cluster radius (kind=clustered)")
	lambda := flag.Int("lambda", 8, "near threshold (kind=annulus)")
	gamma := flag.Float64("gamma", 2, "approximation ratio (kind=annulus)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	r := rng.New(*seed)
	var in *workload.Instance
	switch *kind {
	case "uniform":
		in = workload.Uniform(r, *d, *n, *q)
	case "planted":
		in = workload.PlantedNN(r, *d, *n, *q, *dist)
	case "clustered":
		in = workload.Clustered(r, *d, *n, *q, *clusters, *rad)
	case "annulus":
		in = workload.Annulus(r, *d, *n, *q, *lambda, *gamma)
	default:
		log.Fatalf("annsgen: unknown kind %q", *kind)
	}
	if err := dataset.Save(*out, in); err != nil {
		log.Fatalf("annsgen: %v", err)
	}
	fmt.Printf("wrote %s: %s\n", *out, in)
}
