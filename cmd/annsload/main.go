// Command annsload is the load harness for cmd/annsd: it regenerates the
// same workload the server indexed (same generator flags + seed, or the
// same annsgen dataset), drives /v1/query under closed-loop or open-loop
// (Poisson) arrivals with an optional target-QPS ramp, and reports
// client-side latency quantiles, achieved QPS, recall against the ground
// truth, and the aggregate cell-probe accounting — finishing with the
// server's own /statsz counters.
//
// Usage:
//
//	annsload -addr http://127.0.0.1:7080 -mode closed -conc 16 -queries 10000
//	annsload -addr http://127.0.0.1:7080 -mode open -qps 800 -ramp 4 -queries 20000
//	annsload -addr http://127.0.0.1:7120 -compare http://127.0.0.1:7080 -queries 256
//
// The target may be an annsd shard server or an annsrouter coordinator —
// both speak the same wire schema, and /statsz router rollups (hedge
// rate, per-shard quantiles, replica state) are printed when present.
// With -compare, every query goes to both servers and the answers must
// be byte-identical (index, distance, rounds, probes, max_parallel) —
// the distributed-equivalence check CI runs against a router and a
// single-process server over the same corpus.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7080", "annsd base URL")
	in := flag.String("in", "", "dataset file the server was started with (overrides generator flags)")
	spec := workload.DefaultSpec()
	spec.RegisterFlags(flag.CommandLine)

	mode := flag.String("mode", "closed", "closed (fixed concurrency) | open (Poisson arrivals)")
	conc := flag.Int("conc", 16, "closed-loop concurrency")
	qps := flag.Float64("qps", 500, "open-loop target arrival rate (final ramp step)")
	ramp := flag.Int("ramp", 1, "open-loop ramp steps up to -qps (1 = constant rate)")
	total := flag.Int("queries", 10000, "total queries to issue")
	gamma := flag.Float64("gamma", 2, "approximation ratio for the recall criterion")
	timeoutMS := flag.Int("timeout-ms", 0, "per-request timeout_ms sent to the server (0 = server default)")
	outstanding := flag.Int("max-outstanding", 1024, "open-loop cap on in-flight requests")
	lseed := flag.Int64("lseed", 1, "load generator seed (Poisson arrivals)")
	compare := flag.String("compare", "", "second server URL: issue every query to both and require byte-identical answers")
	flag.Parse()

	var inst *workload.Instance
	var err error
	if *in != "" {
		inst, err = dataset.Load(*in)
	} else {
		inst, err = spec.Generate()
	}
	if err != nil {
		log.Fatalf("annsload: %v", err)
	}
	if len(inst.Queries) == 0 {
		log.Fatalf("annsload: workload has no queries")
	}
	log.Printf("workload: %s", inst)

	// Size the connection pool for whichever mode bounds concurrency, or
	// open-loop bursts past the pool churn TCP handshakes into the very
	// latencies being measured.
	pool := 2 * *conc
	if *mode == "open" && *outstanding > pool {
		pool = *outstanding
	}
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        pool,
			MaxIdleConnsPerHost: pool,
		},
	}
	checkHealth(client, *addr, inst)

	// Pre-encode the query stream once; the run cycles through it.
	encoded := make([][]byte, len(inst.Queries))
	for i, q := range inst.Queries {
		body, err := json.Marshal(server.QueryRequest{
			Point:     server.EncodePoint(q.X),
			TimeoutMS: *timeoutMS,
		})
		if err != nil {
			log.Fatalf("annsload: %v", err)
		}
		encoded[i] = body
	}

	if *compare != "" {
		checkHealth(client, *compare, inst)
		runCompare(client, *addr, *compare, encoded, *total)
		return
	}

	run := &runner{
		client:  client,
		url:     *addr + "/v1/query",
		inst:    inst,
		encoded: encoded,
		gamma:   *gamma,
	}

	start := time.Now()
	switch *mode {
	case "closed":
		run.closedLoop(*conc, *total)
	case "open":
		run.openLoop(*qps, *ramp, *total, *outstanding, *lseed)
	default:
		log.Fatalf("annsload: unknown -mode %q", *mode)
	}
	wall := time.Since(start)

	fmt.Printf("\n=== aggregate (%s loop, %d queries in %v) ===\n", *mode, *total, wall.Round(time.Millisecond))
	run.report(run.all(), wall)
	if n, h, a := atomic.LoadInt64(&run.netErrs), atomic.LoadInt64(&run.httpErrs), atomic.LoadInt64(&run.appErrs); n+h+a > 0 {
		fmt.Printf("failures: net=%d http=%d app=%d\n", n, h, a)
	}
	printServerStats(client, *addr)
}

// checkHealth verifies the server is up and serving the same instance.
func checkHealth(client *http.Client, addr string, inst *workload.Instance) {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		log.Fatalf("annsload: server unreachable: %v", err)
	}
	defer resp.Body.Close()
	var h server.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		log.Fatalf("annsload: bad /healthz body: %v", err)
	}
	log.Printf("server: status=%s n=%d shards=%d dim=%d", h.Status, h.N, h.Shards, h.Dim)
	if h.Dim != inst.D || h.N != len(inst.DB) {
		log.Printf("WARNING: server instance (n=%d, d=%d) differs from local workload (n=%d, d=%d); recall will be meaningless",
			h.N, h.Dim, len(inst.DB), inst.D)
	}
}

// sample is one completed request, as the reporter consumes it.
type sample struct {
	latency time.Duration
	ok      bool // transport + HTTP + query all succeeded
	good    bool // γ-approximate vs ground truth
	probes  int
	rounds  int
	maxPar  int
}

type runner struct {
	client  *http.Client
	url     string
	inst    *workload.Instance
	encoded [][]byte
	gamma   float64

	mu       sync.Mutex
	samples  []sample
	netErrs  int64
	httpErrs int64
	appErrs  int64
}

// issue sends query i (mod the stream length) and records the outcome.
func (r *runner) issue(i int) {
	qi := i % len(r.encoded)
	t0 := time.Now()
	resp, err := r.client.Post(r.url, "application/json", bytes.NewReader(r.encoded[qi]))
	lat := time.Since(t0)
	s := sample{latency: lat}
	if err != nil {
		atomic.AddInt64(&r.netErrs, 1)
		r.record(s)
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		atomic.AddInt64(&r.httpErrs, 1)
		r.record(s)
		return
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		atomic.AddInt64(&r.httpErrs, 1)
		r.record(s)
		return
	}
	s.probes, s.rounds, s.maxPar = qr.Probes, qr.Rounds, qr.MaxParallel
	if qr.Error != "" {
		atomic.AddInt64(&r.appErrs, 1)
		r.record(s)
		return
	}
	s.ok = true
	truth := r.inst.Queries[qi]
	s.good = qr.Index >= 0 && float64(qr.Distance) <= r.gamma*float64(truth.NNDist)
	r.record(s)
}

func (r *runner) record(s sample) {
	r.mu.Lock()
	r.samples = append(r.samples, s)
	r.mu.Unlock()
}

func (r *runner) all() []sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]sample(nil), r.samples...)
}

func (r *runner) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// closedLoop keeps conc requests in flight until total have been issued.
func (r *runner) closedLoop(conc, total int) {
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= total {
					return
				}
				r.issue(i)
			}
		}()
	}
	wg.Wait()
}

// openLoop issues total queries with Poisson arrivals, ramping the target
// rate over steps equal slices up to qps. Arrivals beyond the in-flight
// cap block the arrival process (and show up as a QPS shortfall in the
// report rather than as client-side meltdown).
func (r *runner) openLoop(qps float64, steps, total, maxOutstanding int, seed int64) {
	if steps < 1 {
		steps = 1
	}
	if qps <= 0 {
		log.Fatalf("annsload: open loop needs -qps > 0")
	}
	rnd := rand.New(rand.NewSource(seed))
	sem := make(chan struct{}, maxOutstanding)
	var wg sync.WaitGroup
	issued := 0
	for s := 0; s < steps; s++ {
		rate := qps * float64(s+1) / float64(steps)
		stepTotal := total / steps
		if s == steps-1 {
			stepTotal = total - issued
		}
		stepStart := time.Now()
		before := r.count()
		next := time.Now()
		for i := 0; i < stepTotal; i++ {
			next = next.Add(time.Duration(rnd.ExpFloat64() / rate * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.issue(i)
				<-sem
			}(issued + i)
		}
		issued += stepTotal
		wg.Wait()
		stepWall := time.Since(stepStart)
		fmt.Printf("\n--- ramp step %d/%d: target %.0f qps, %d queries ---\n", s+1, steps, rate, stepTotal)
		r.report(r.all()[before:], stepWall)
	}
}

// report prints the latency/recall/accounting summary for one sample set.
func (r *runner) report(ss []sample, wall time.Duration) {
	if len(ss) == 0 {
		fmt.Println("no samples")
		return
	}
	// Quantiles cover successful requests only: a 503 rejection returns
	// near-instantly and a transport error can take the full client
	// timeout, and either would distort the latency admitted queries saw.
	lats := make([]float64, 0, len(ss))
	probes := make([]int, 0, len(ss))
	recall := stats.Proportion{}
	totalProbes, maxRounds, maxPar, okCount := 0, 0, 0, 0
	for _, s := range ss {
		if s.ok {
			okCount++
			lats = append(lats, float64(s.latency.Microseconds())/1000)
			probes = append(probes, s.probes)
			totalProbes += s.probes
			if s.rounds > maxRounds {
				maxRounds = s.rounds
			}
			if s.maxPar > maxPar {
				maxPar = s.maxPar
			}
			recall.Trials++
			if s.good {
				recall.Successes++
			}
		}
	}
	sort.Float64s(lats)
	fmt.Printf("queries: %d ok, %d failed   achieved QPS: %.1f\n",
		okCount, len(ss)-okCount, float64(len(ss))/wall.Seconds())
	if len(lats) > 0 {
		fmt.Printf("latency ms (ok only): p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
			stats.Quantile(lats, 0.50), stats.Quantile(lats, 0.95),
			stats.Quantile(lats, 0.99), lats[len(lats)-1])
	}
	fmt.Printf("recall (γ=%v): %v\n", r.gamma, recall)
	if okCount > 0 {
		fmt.Printf("probes/query: %v   total probes: %d   max rounds: %d   max parallel: %d\n",
			stats.SummarizeInts(probes), totalProbes, maxRounds, maxPar)
	}
}

// runCompare issues each query to both servers and requires the decoded
// answers to match field for field — the distributed-equivalence check:
// a router over shard-split snapshots must answer exactly like a
// single-process server over the same corpus, including the cell-probe
// accounting. Exits non-zero on the first mismatch.
func runCompare(client *http.Client, addrA, addrB string, encoded [][]byte, total int) {
	ask := func(addr string, body []byte) (server.QueryResponse, error) {
		var qr server.QueryResponse
		resp, err := client.Post(addr+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return qr, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return qr, err
		}
		if resp.StatusCode != http.StatusOK {
			return qr, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
		}
		err = json.Unmarshal(raw, &qr)
		return qr, err
	}
	mismatches := 0
	for i := 0; i < total; i++ {
		body := encoded[i%len(encoded)]
		a, err := ask(addrA, body)
		if err != nil {
			log.Fatalf("annsload: compare: %s query %d: %v", addrA, i, err)
		}
		b, err := ask(addrB, body)
		if err != nil {
			log.Fatalf("annsload: compare: %s query %d: %v", addrB, i, err)
		}
		if a != b {
			mismatches++
			log.Printf("MISMATCH query %d:\n  %s → %+v\n  %s → %+v", i, addrA, a, addrB, b)
			if mismatches >= 10 {
				log.Fatalf("annsload: compare: giving up after %d mismatches", mismatches)
			}
		}
	}
	if mismatches > 0 {
		log.Fatalf("annsload: compare: %d/%d answers differ", mismatches, total)
	}
	fmt.Printf("compare: %d queries, answers byte-identical (results + rounds/probes accounting)\n", total)
	printServerStats(client, addrA)
}

// printServerStats fetches /statsz so the report ends with the server's
// own view in the shared stats schema. A router target is detected by
// its shard_stats rollup and gets the distribution-layer report too.
func printServerStats(client *http.Client, addr string) {
	resp, err := client.Get(addr + "/statsz")
	if err != nil {
		log.Printf("annsload: /statsz unreachable: %v", err)
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Printf("annsload: /statsz read: %v", err)
		return
	}
	if bytes.Contains(raw, []byte(`"shard_stats"`)) {
		var rs router.Stats
		if err := json.Unmarshal(raw, &rs); err != nil {
			log.Printf("annsload: bad router /statsz body: %v", err)
			return
		}
		fmt.Printf("\n=== router /statsz ===\n")
		fmt.Printf("queries=%d near=%d batches=%d errors=%d rejected=%d in_flight=%d qps=%.1f\n",
			rs.Queries, rs.Near, rs.Batches, rs.Errors, rs.Rejected, rs.InFlight, rs.QPS)
		fmt.Printf("probes=%d rounds=%d max_rounds=%d max_parallel=%d\n",
			rs.Probes, rs.Rounds, rs.MaxRounds, rs.MaxParallel)
		fmt.Printf("hedges=%d wins=%d rate=%.4f failovers=%d\n",
			rs.Hedges, rs.HedgeWins, rs.HedgeRate, rs.Failovers)
		for _, sh := range rs.ShardStats {
			fmt.Printf("shard %d: %d/%d replicas healthy, %d reqs (%d errors, %d hedges, %d failovers), p50=%.2fms p95=%.2fms p99=%.2fms\n",
				sh.Shard, sh.Healthy, sh.Replicas, sh.Requests, sh.Errors, sh.Hedges, sh.Failovers,
				sh.P50MS, sh.P95MS, sh.P99MS)
			for _, rep := range sh.ReplicaStats {
				fmt.Printf("  %s: %s (fails=%d evictions=%d backoff=%dms)", rep.URL, rep.State, rep.Fails, rep.Evictions, rep.BackoffMS)
				if rep.LastError != "" {
					fmt.Printf("  %s", rep.LastError)
				}
				fmt.Println()
			}
		}
		return
	}
	var snap server.StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		log.Printf("annsload: bad /statsz body: %v", err)
		return
	}
	fmt.Printf("\n=== server /statsz ===\n")
	fmt.Printf("queries=%d near=%d batches=%d errors=%d rejected=%d deadline_exceeded=%d\n",
		snap.Queries, snap.Near, snap.Batches, snap.Errors, snap.Rejected, snap.DeadlineExceeded)
	fmt.Printf("probes=%d rounds=%d max_rounds=%d max_parallel=%d qps=%.1f error_rate=%.4f workers=%d\n",
		snap.Probes, snap.Rounds, snap.MaxRounds, snap.MaxParallel, snap.QPS, snap.ErrorRate, snap.Workers)
	if snap.IndexSource == "snapshot" {
		fmt.Printf("index: loaded from snapshot (format v%d) in %dms\n", snap.SnapshotVersion, snap.IndexLoadMS)
	} else {
		fmt.Printf("index: %s in %dms\n", snap.IndexSource, snap.IndexLoadMS)
	}
}
