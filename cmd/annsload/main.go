// Command annsload is the load harness for cmd/annsd: it regenerates the
// same workload the server indexed (same generator flags + seed, or the
// same annsgen dataset), drives /v1/query under closed-loop or open-loop
// (Poisson) arrivals with an optional target-QPS ramp, and reports
// client-side latency quantiles, achieved QPS, recall against the ground
// truth, and the aggregate cell-probe accounting — finishing with the
// server's own /statsz counters.
//
// Usage:
//
//	annsload -addr http://127.0.0.1:7080 -mode closed -conc 16 -queries 10000
//	annsload -addr http://127.0.0.1:7080 -mode open -qps 800 -ramp 4 -queries 20000
//	annsload -addr http://127.0.0.1:7080 -scenario hot-key-reads -skew 0.99 -queries 20000
//	annsload -addr http://127.0.0.1:7080 -write-ratio 0.2 -delete-ratio 0.05 -queries 20000
//	annsload -addr http://127.0.0.1:7120 -compare http://127.0.0.1:7080 -queries 256
//
// The target may be an annsd shard server or an annsrouter coordinator —
// both speak the same wire schema, and /statsz router rollups (hedge
// rate, per-shard quantiles, replica state) are printed when present.
//
// With -write-ratio (and optionally -delete-ratio) the operation stream
// mixes mutations into the load — inserts of perturbed database points
// via /v1/insert, deletes of previously inserted points via /v1/delete
// (the target must be an `annsd -mutable` server) — and the report adds
// write-latency quantiles plus recall measured against a ground truth
// that tracks the churn (every acknowledged insert joins the oracle's
// candidate set, every acknowledged delete leaves it).
//
// -scenario selects a named operation mix from internal/workload/scenario
// (hot-key-reads, hotspot-deletes, scan-insert-churn, constant-occupancy,
// uniform), with -skew setting the zipfian θ of its skewed key
// generators. The whole schedule — op kinds AND key choices — derives
// deterministically from -lseed, so two runs (or the two sides of a
// -compare) replay the identical stream. -write-ratio / -delete-ratio,
// when set, override the scenario's mix; the default scenario "uniform"
// with no overrides reproduces the classic uniform read-only stream.
//
// Latency is reported from log-bucketed histograms (internal/stats): every
// observation is recorded, so p50/p95/p99 come from the full distribution
// (≤ 4.4% relative bucket error, exact min/max) and the report prints the
// histogram itself — the tail shape, not just three numbers.
//
// With -compare, every operation goes to both servers and the answers
// must be byte-identical — queries field for field (index, distance,
// rounds, probes, max_parallel), inserts by assigned ID, deletes by
// outcome. For mutation streams both servers should run -mutable-sync
// so the segment state evolves deterministically with the stream. The
// first diverging operation is printed with both sides' replication
// state from /statsz (per-replica applied offsets on a router, the
// single applied offset on a mutable shard server), which separates a
// lagging replica (offsets differ) from a real engine divergence
// (offsets converged but answers don't).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitvec"
	"repro/internal/dataset"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/scenario"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:7080", "annsd base URL")
	in := flag.String("in", "", "dataset file the server was started with (overrides generator flags)")
	spec := workload.DefaultSpec()
	spec.RegisterFlags(flag.CommandLine)

	mode := flag.String("mode", "closed", "closed (fixed concurrency) | open (Poisson arrivals)")
	conc := flag.Int("conc", 16, "closed-loop concurrency")
	qps := flag.Float64("qps", 500, "open-loop target arrival rate (final ramp step)")
	ramp := flag.Int("ramp", 1, "open-loop ramp steps up to -qps (1 = constant rate)")
	total := flag.Int("queries", 10000, "total queries to issue")
	gamma := flag.Float64("gamma", 2, "approximation ratio for the recall criterion")
	timeoutMS := flag.Int("timeout-ms", 0, "per-request timeout_ms sent to the server (0 = server default)")
	outstanding := flag.Int("max-outstanding", 1024, "open-loop cap on in-flight requests")
	lseed := flag.Int64("lseed", 1, "load generator seed (Poisson arrivals, op mix, key choices)")
	scenarioName := flag.String("scenario", "uniform", "named operation-mix scenario from internal/workload/scenario")
	skew := flag.Float64("skew", 0.99, "zipfian θ for the scenario's skewed key generators (0 = uniform)")
	compare := flag.String("compare", "", "second server URL: issue every operation to both and require byte-identical answers")
	writeRatio := flag.Float64("write-ratio", 0, "fraction of operations that are /v1/insert (mutable servers)")
	deleteRatio := flag.Float64("delete-ratio", 0, "fraction of operations that are /v1/delete of previously inserted points")
	writeDist := flag.Int("write-dist", 0, "Hamming distance of inserted perturbations (0 = the workload's -dist)")
	flag.Parse()

	var inst *workload.Instance
	var err error
	if *in != "" {
		inst, err = dataset.Load(*in)
	} else {
		inst, err = spec.Generate()
	}
	if err != nil {
		log.Fatalf("annsload: %v", err)
	}
	if len(inst.Queries) == 0 {
		log.Fatalf("annsload: workload has no queries")
	}
	log.Printf("workload: %s", inst)

	// Size the connection pool for whichever mode bounds concurrency, or
	// open-loop bursts past the pool churn TCP handshakes into the very
	// latencies being measured.
	pool := 2 * *conc
	if *mode == "open" && *outstanding > pool {
		pool = *outstanding
	}
	client := &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        pool,
			MaxIdleConnsPerHost: pool,
		},
	}
	checkHealth(client, *addr, inst)

	// Pre-encode the query stream once; the run cycles through it.
	encoded := make([][]byte, len(inst.Queries))
	for i, q := range inst.Queries {
		body, err := json.Marshal(server.QueryRequest{
			Point:     server.EncodePoint(q.X),
			TimeoutMS: *timeoutMS,
		})
		if err != nil {
			log.Fatalf("annsload: %v", err)
		}
		encoded[i] = body
	}

	sc, err := scenario.Get(*scenarioName)
	if err != nil {
		log.Fatalf("annsload: %v", err)
	}
	mix := *sc
	if *writeRatio != 0 || *deleteRatio != 0 {
		if *writeRatio < 0 || *deleteRatio < 0 || *writeRatio+*deleteRatio > 1 {
			log.Fatalf("annsload: -write-ratio %v and -delete-ratio %v must be non-negative and sum to at most 1", *writeRatio, *deleteRatio)
		}
		mix.InsertRatio, mix.DeleteRatio = *writeRatio, *deleteRatio
	}
	plan, err := buildPlan(inst, &mix, *total, *writeDist, *skew, *lseed)
	if err != nil {
		log.Fatalf("annsload: %v", err)
	}

	if *compare != "" {
		checkHealth(client, *compare, inst)
		runCompare(client, *addr, *compare, encoded, *total, plan)
		return
	}

	run := &runner{
		client:  client,
		base:    *addr,
		url:     *addr + "/v1/query",
		inst:    inst,
		encoded: encoded,
		gamma:   *gamma,
		plan:    plan,
	}

	start := time.Now()
	switch *mode {
	case "closed":
		run.closedLoop(*conc, *total)
	case "open":
		run.openLoop(*qps, *ramp, *total, *outstanding, *lseed)
	default:
		log.Fatalf("annsload: unknown -mode %q", *mode)
	}
	wall := time.Since(start)

	fmt.Printf("\n=== aggregate (%s loop, scenario %q, %d operations in %v) ===\n",
		*mode, plan.scenario, *total, wall.Round(time.Millisecond))
	run.report(run.all(), wall)
	run.reportWrites()
	if n, h, a, w := atomic.LoadInt64(&run.netErrs), atomic.LoadInt64(&run.httpErrs), atomic.LoadInt64(&run.appErrs), atomic.LoadInt64(&run.writeFails); n+h+a+w > 0 {
		fmt.Printf("failures: net=%d http=%d app=%d write=%d\n", n, h, a, w)
	}
	printServerStats(client, *addr)
}

// checkHealth verifies the server is up and serving the same instance.
func checkHealth(client *http.Client, addr string, inst *workload.Instance) {
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		log.Fatalf("annsload: server unreachable: %v", err)
	}
	defer resp.Body.Close()
	var h server.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		log.Fatalf("annsload: bad /healthz body: %v", err)
	}
	log.Printf("server: status=%s n=%d shards=%d dim=%d", h.Status, h.N, h.Shards, h.Dim)
	if h.Dim != inst.D || h.N != len(inst.DB) {
		log.Printf("WARNING: server instance (n=%d, d=%d) differs from local workload (n=%d, d=%d); recall will be meaningless",
			h.N, h.Dim, len(inst.DB), inst.D)
	}
}

// mixedPlan is the deterministic operation schedule of a run, expanded
// from a workload scenario: ops[i] decides operation i's kind and key,
// queryOf[i] maps a read to its query ordinal, and insertPts/insertBodies
// hold one pre-generated perturbed point (and its encoded /v1/insert
// body) per insert op, in op order. Both load-run and compare modes
// consume the same plan, which is what lets -compare drive an identical
// stream into two servers.
type mixedPlan struct {
	scenario     string
	ops          []scenario.Op
	queryOf      []int // op index -> query ordinal (-1 for non-reads)
	insertOf     []int // op index -> insert ordinal (-1 for non-inserts)
	insertPts    []bitvec.Vector
	insertBodies [][]byte
	inserts      int
	deletes      int
}

// buildPlan expands the scenario into a concrete schedule: read keys
// index the query stream, insert keys pick the database point to perturb
// (so skewed write generators concentrate churn on hot regions).
// Everything derives from -lseed.
func buildPlan(inst *workload.Instance, sc *scenario.Scenario, total, writeDist int, theta float64, lseed int64) (*mixedPlan, error) {
	if writeDist <= 0 {
		writeDist = 16
	}
	if writeDist > inst.D {
		writeDist = inst.D
	}
	ops := sc.Ops(total, scenario.Config{
		Seed:      uint64(lseed),
		Theta:     theta,
		QueryKeys: len(inst.Queries),
		WriteKeys: len(inst.DB),
	})
	p := &mixedPlan{
		scenario: sc.Name,
		ops:      ops,
		queryOf:  make([]int, total),
		insertOf: make([]int, total),
	}
	src := rng.New(uint64(lseed) + 0x10ad)
	for i, op := range ops {
		p.queryOf[i], p.insertOf[i] = -1, -1
		switch op.Kind {
		case scenario.OpInsert:
			p.insertOf[i] = len(p.insertPts)
			pt := hamming.AtDistance(src, inst.DB[op.Key], inst.D, writeDist)
			body, err := json.Marshal(server.InsertRequest{Point: server.EncodePoint(pt)})
			if err != nil {
				return nil, err
			}
			p.insertPts = append(p.insertPts, pt)
			p.insertBodies = append(p.insertBodies, body)
			p.inserts++
		case scenario.OpDelete:
			p.deletes++
		default:
			p.queryOf[i] = op.Key
		}
	}
	log.Printf("plan: scenario %q (θ=%g, seed %d): %d reads, %d inserts, %d deletes (write-dist %d)",
		sc.Name, theta, lseed, total-p.inserts-p.deletes, p.inserts, p.deletes, writeDist)
	return p, nil
}

// sample is one completed request, as the reporter consumes it.
type sample struct {
	latency time.Duration
	ok      bool // transport + HTTP + query all succeeded
	good    bool // γ-approximate vs ground truth
	probes  int
	rounds  int
	maxPar  int
}

// liveInsert is an acknowledged insert: part of the recall oracle's
// candidate set and a potential delete target.
type liveInsert struct {
	id uint64
	pt bitvec.Vector
}

type runner struct {
	client  *http.Client
	base    string
	url     string
	inst    *workload.Instance
	encoded [][]byte
	gamma   float64
	plan    *mixedPlan

	mu       sync.Mutex
	samples  []sample
	netErrs  int64
	httpErrs int64
	appErrs  int64

	wmu          sync.Mutex
	writeSamples []sample
	live         []liveInsert
	writeFails   int64
}

// issue runs operation i of the stream and records the outcome.
func (r *runner) issue(i int) {
	switch r.plan.ops[i].Kind {
	case scenario.OpInsert:
		r.issueInsert(i)
		return
	case scenario.OpDelete:
		if r.issueDelete() {
			return
		}
		// Nothing live to delete yet: degrade to a query so the op
		// count stays honest.
	}
	r.issueQuery(i)
}

// issueInsert posts one planned insert and, on success, adds the point
// to the live set (recall oracle + delete pool).
func (r *runner) issueInsert(i int) {
	ins := r.plan.insertOf[i]
	t0 := time.Now()
	resp, err := r.client.Post(r.base+"/v1/insert", "application/json",
		bytes.NewReader(r.plan.insertBodies[ins]))
	lat := time.Since(t0)
	s := sample{latency: lat}
	if err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		var ack server.InsertResponse
		if rerr == nil && resp.StatusCode == http.StatusOK && json.Unmarshal(body, &ack) == nil {
			s.ok = true
			r.wmu.Lock()
			r.live = append(r.live, liveInsert{id: ack.ID, pt: r.plan.insertPts[ins]})
			r.wmu.Unlock()
		}
	}
	if !s.ok {
		atomic.AddInt64(&r.writeFails, 1)
	}
	r.recordWrite(s)
}

// issueDelete pops a live insert and deletes it, reporting false when
// none is available.
func (r *runner) issueDelete() bool {
	r.wmu.Lock()
	if len(r.live) == 0 {
		r.wmu.Unlock()
		return false
	}
	target := r.live[0]
	r.live = r.live[1:]
	r.wmu.Unlock()
	body, err := json.Marshal(server.DeleteRequest{ID: &target.id})
	if err != nil {
		atomic.AddInt64(&r.writeFails, 1)
		return true
	}
	t0 := time.Now()
	resp, err := r.client.Post(r.base+"/v1/delete", "application/json", bytes.NewReader(body))
	lat := time.Since(t0)
	s := sample{latency: lat}
	if err == nil {
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		var ack server.DeleteResponse
		s.ok = rerr == nil && resp.StatusCode == http.StatusOK &&
			json.Unmarshal(raw, &ack) == nil && ack.Deleted
	}
	if !s.ok {
		atomic.AddInt64(&r.writeFails, 1)
	}
	r.recordWrite(s)
	return true
}

func (r *runner) recordWrite(s sample) {
	r.wmu.Lock()
	r.writeSamples = append(r.writeSamples, s)
	r.wmu.Unlock()
}

// truthDist returns the oracle nearest-neighbor distance for query qi
// at this moment: the precomputed base ground truth, tightened by every
// acknowledged insert still live. (Churn makes this a snapshot, not a
// certainty — an insert acked after the snapshot can only shrink the
// server's answer, which passes the γ bound a fortiori; deletes only
// loosen the bound.)
func (r *runner) truthDist(qi int) float64 {
	truth := float64(r.inst.Queries[qi].NNDist)
	if r.plan.inserts == 0 {
		return truth
	}
	x := r.inst.Queries[qi].X
	r.wmu.Lock()
	for _, li := range r.live {
		if d := float64(bitvec.Distance(li.pt, x)); d < truth {
			truth = d
		}
	}
	r.wmu.Unlock()
	return truth
}

// issueQuery sends the scenario-chosen query for op i and records the
// outcome.
func (r *runner) issueQuery(i int) {
	qi := r.plan.queryOf[i]
	if qi < 0 {
		// A delete degraded to a read: derive a stable query index from
		// the op's key so the schedule stays deterministic.
		qi = r.plan.ops[i].Key % len(r.encoded)
	}
	// Snapshot the oracle bound before sending: acked mutations racing the
	// query can only move the server's answer inside the bound.
	truth := r.truthDist(qi)
	t0 := time.Now()
	resp, err := r.client.Post(r.url, "application/json", bytes.NewReader(r.encoded[qi]))
	lat := time.Since(t0)
	s := sample{latency: lat}
	if err != nil {
		atomic.AddInt64(&r.netErrs, 1)
		r.record(s)
		return
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		atomic.AddInt64(&r.httpErrs, 1)
		r.record(s)
		return
	}
	var qr server.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		atomic.AddInt64(&r.httpErrs, 1)
		r.record(s)
		return
	}
	s.probes, s.rounds, s.maxPar = qr.Probes, qr.Rounds, qr.MaxParallel
	if qr.Error != "" {
		atomic.AddInt64(&r.appErrs, 1)
		r.record(s)
		return
	}
	s.ok = true
	s.good = qr.Index >= 0 && float64(qr.Distance) <= r.gamma*truth
	r.record(s)
}

func (r *runner) record(s sample) {
	r.mu.Lock()
	r.samples = append(r.samples, s)
	r.mu.Unlock()
}

func (r *runner) all() []sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]sample(nil), r.samples...)
}

func (r *runner) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// closedLoop keeps conc requests in flight until total have been issued.
func (r *runner) closedLoop(conc, total int) {
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= total {
					return
				}
				r.issue(i)
			}
		}()
	}
	wg.Wait()
}

// openLoop issues total queries with Poisson arrivals, ramping the target
// rate over steps equal slices up to qps. Arrivals beyond the in-flight
// cap block the arrival process (and show up as a QPS shortfall in the
// report rather than as client-side meltdown).
func (r *runner) openLoop(qps float64, steps, total, maxOutstanding int, seed int64) {
	if steps < 1 {
		steps = 1
	}
	if qps <= 0 {
		log.Fatalf("annsload: open loop needs -qps > 0")
	}
	rnd := rand.New(rand.NewSource(seed))
	sem := make(chan struct{}, maxOutstanding)
	var wg sync.WaitGroup
	issued := 0
	for s := 0; s < steps; s++ {
		rate := qps * float64(s+1) / float64(steps)
		stepTotal := total / steps
		if s == steps-1 {
			stepTotal = total - issued
		}
		stepStart := time.Now()
		before := r.count()
		next := time.Now()
		for i := 0; i < stepTotal; i++ {
			next = next.Add(time.Duration(rnd.ExpFloat64() / rate * float64(time.Second)))
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				r.issue(i)
				<-sem
			}(issued + i)
		}
		issued += stepTotal
		wg.Wait()
		stepWall := time.Since(stepStart)
		fmt.Printf("\n--- ramp step %d/%d: target %.0f qps, %d queries ---\n", s+1, steps, rate, stepTotal)
		r.report(r.all()[before:], stepWall)
	}
}

// report prints the latency/recall/accounting summary for one sample set.
func (r *runner) report(ss []sample, wall time.Duration) {
	if len(ss) == 0 {
		fmt.Println("no samples")
		return
	}
	// Quantiles cover successful requests only: a 503 rejection returns
	// near-instantly and a transport error can take the full client
	// timeout, and either would distort the latency admitted queries saw.
	// Every successful observation lands in a log-bucketed histogram, so
	// the quantiles are computed over the full distribution (within the
	// ≤4.4% bucket resolution), not a sample.
	hist := stats.NewLatencyHistogram()
	probes := make([]int, 0, len(ss))
	recall := stats.Proportion{}
	totalProbes, maxRounds, maxPar, okCount := 0, 0, 0, 0
	for _, s := range ss {
		if s.ok {
			okCount++
			hist.Record(float64(s.latency.Nanoseconds()))
			probes = append(probes, s.probes)
			totalProbes += s.probes
			if s.rounds > maxRounds {
				maxRounds = s.rounds
			}
			if s.maxPar > maxPar {
				maxPar = s.maxPar
			}
			recall.Trials++
			if s.good {
				recall.Successes++
			}
		}
	}
	fmt.Printf("queries: %d ok, %d failed   achieved QPS: %.1f\n",
		okCount, len(ss)-okCount, float64(len(ss))/wall.Seconds())
	if hist.Count() > 0 {
		fmt.Printf("latency ms (ok only): p50=%.2f p95=%.2f p99=%.2f mean=%.2f max=%.2f\n",
			hist.Quantile(0.50)/1e6, hist.Quantile(0.95)/1e6,
			hist.Quantile(0.99)/1e6, hist.Mean()/1e6, hist.Max()/1e6)
		fmt.Print(hist.FormatNanos(12))
	}
	fmt.Printf("recall (γ=%v): %v\n", r.gamma, recall)
	if okCount > 0 {
		fmt.Printf("probes/query: %v   total probes: %d   max rounds: %d   max parallel: %d\n",
			stats.SummarizeInts(probes), totalProbes, maxRounds, maxPar)
	}
}

// reportWrites prints the mutation half of a mixed run: acknowledged
// counts and write-latency quantiles (successful writes only, same rule
// as the read quantiles).
func (r *runner) reportWrites() {
	r.wmu.Lock()
	ws := append([]sample(nil), r.writeSamples...)
	liveLeft := len(r.live)
	r.wmu.Unlock()
	if len(ws) == 0 {
		return
	}
	hist := stats.NewLatencyHistogram()
	okCount := 0
	for _, s := range ws {
		if s.ok {
			okCount++
			hist.Record(float64(s.latency.Nanoseconds()))
		}
	}
	fmt.Printf("writes: %d ok, %d failed (%d inserts, %d deletes planned; %d inserted points still live)\n",
		okCount, len(ws)-okCount, r.plan.inserts, r.plan.deletes, liveLeft)
	if hist.Count() > 0 {
		fmt.Printf("write latency ms (ok only): p50=%.2f p99=%.2f max=%.2f\n",
			hist.Quantile(0.50)/1e6, hist.Quantile(0.99)/1e6, hist.Max()/1e6)
	}
}

// runCompare issues each query to both servers and requires the decoded
// answers to match field for field — the distributed-equivalence check:
// a router over shard-split snapshots must answer exactly like a
// single-process server over the same corpus, including the cell-probe
// accounting. Exits non-zero on the first mismatch.
func runCompare(client *http.Client, addrA, addrB string, encoded [][]byte, total int, plan *mixedPlan) {
	post := func(addr, path string, body []byte, out any) error {
		resp, err := client.Post(addr+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
		}
		return json.Unmarshal(raw, out)
	}
	mismatches := 0
	mismatch := func(i int, what string, body []byte, a, b any) {
		mismatches++
		label := "MISMATCH"
		if mismatches == 1 {
			// The first diverging request is the repro: op index, the exact
			// request payload, and both decoded answers.
			label = "FIRST DIVERGENCE"
		}
		log.Printf("%s: %s op %d\n  request: %s\n  %s → %+v\n  %s → %+v",
			label, what, i, bytes.TrimSpace(body), addrA, a, addrB, b)
		if mismatches == 1 {
			// Both sides' replication state narrows the repro: offsets
			// that differ point at a lagging replica, offsets that agree
			// while answers don't point at the engines.
			for _, addr := range []string{addrA, addrB} {
				if ro := replicationOffsets(client, addr); ro != "" {
					log.Printf("  %s replication: %s", addr, ro)
				}
			}
		}
		if mismatches >= 10 {
			log.Fatalf("annsload: compare: giving up after %d mismatches", mismatches)
		}
	}
	queries, inserts, deletes := 0, 0, 0
	var live []uint64
	for i := 0; i < total; i++ {
		switch plan.ops[i].Kind {
		case scenario.OpInsert:
			var a, b server.InsertResponse
			body := plan.insertBodies[plan.insertOf[i]]
			if err := post(addrA, "/v1/insert", body, &a); err != nil {
				log.Fatalf("annsload: compare: %s insert %d: %v", addrA, i, err)
			}
			if err := post(addrB, "/v1/insert", body, &b); err != nil {
				log.Fatalf("annsload: compare: %s insert %d: %v", addrB, i, err)
			}
			if a.ID != b.ID {
				mismatch(i, "insert", body, a, b)
			}
			live = append(live, a.ID)
			inserts++
		case scenario.OpDelete:
			if len(live) == 0 {
				continue
			}
			id := live[0]
			live = live[1:]
			body, err := json.Marshal(server.DeleteRequest{ID: &id})
			if err != nil {
				log.Fatalf("annsload: compare: %v", err)
			}
			var a, b server.DeleteResponse
			if err := post(addrA, "/v1/delete", body, &a); err != nil {
				log.Fatalf("annsload: compare: %s delete %d: %v", addrA, i, err)
			}
			if err := post(addrB, "/v1/delete", body, &b); err != nil {
				log.Fatalf("annsload: compare: %s delete %d: %v", addrB, i, err)
			}
			// Compare the answer (deleted or not), never the offset: that
			// is a server-local WAL position, legitimately different
			// between a replicated cluster and a WAL-less reference.
			if a.Deleted != b.Deleted {
				mismatch(i, "delete", body, a, b)
			}
			deletes++
		default:
			var a, b server.QueryResponse
			qi := plan.queryOf[i]
			if qi < 0 {
				qi = plan.ops[i].Key % len(encoded)
			}
			body := encoded[qi]
			if err := post(addrA, "/v1/query", body, &a); err != nil {
				log.Fatalf("annsload: compare: %s query %d: %v", addrA, i, err)
			}
			if err := post(addrB, "/v1/query", body, &b); err != nil {
				log.Fatalf("annsload: compare: %s query %d: %v", addrB, i, err)
			}
			if a != b {
				mismatch(i, "query", body, a, b)
			}
			queries++
		}
	}
	if mismatches > 0 {
		log.Fatalf("annsload: compare: %d/%d answers differ", mismatches, total)
	}
	if inserts+deletes > 0 {
		fmt.Printf("compare: scenario %q: %d queries + %d inserts + %d deletes, answers byte-identical (results, accounting, assigned IDs)\n",
			plan.scenario, queries, inserts, deletes)
	} else {
		fmt.Printf("compare: scenario %q: %d queries, answers byte-identical (results + rounds/probes accounting)\n",
			plan.scenario, queries)
	}
	printServerStats(client, addrA)
}

// replicationOffsets summarizes one side's /statsz replication state for
// the divergence repro: the placement epoch and per-replica applied
// offsets (primary starred) on a router, the single applied offset on a
// mutable shard server. Empty when the target has no replication state
// (immutable snapshots).
func replicationOffsets(client *http.Client, addr string) string {
	resp, err := client.Get(addr + "/statsz")
	if err != nil {
		return fmt.Sprintf("statsz unreachable: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Sprintf("statsz read: %v", err)
	}
	if bytes.Contains(raw, []byte(`"shard_stats"`)) {
		var rs router.Stats
		if err := json.Unmarshal(raw, &rs); err != nil {
			return fmt.Sprintf("bad router statsz: %v", err)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "epoch=%d writes=%d replicated_frames=%d replication_errors=%d promotions=%d",
			rs.Epoch, rs.Writes, rs.ReplicatedFrames, rs.ReplicationErrs, rs.Promotions)
		for _, sh := range rs.ShardStats {
			fmt.Fprintf(&b, "; shard %d:", sh.Shard)
			for _, rep := range sh.ReplicaStats {
				star := ""
				if rep.Primary {
					star = "*"
				}
				fmt.Fprintf(&b, " %s%s@%d", rep.URL, star, rep.ReplicationOffset)
			}
		}
		return b.String()
	}
	var snap server.StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return fmt.Sprintf("bad statsz: %v", err)
	}
	if snap.Mutable == nil {
		return ""
	}
	return fmt.Sprintf("replication_offset=%d generation=%d",
		snap.Mutable.ReplicationOffset, snap.Mutable.Generation)
}

// printServerStats fetches /statsz so the report ends with the server's
// own view in the shared stats schema. A router target is detected by
// its shard_stats rollup and gets the distribution-layer report too.
func printServerStats(client *http.Client, addr string) {
	resp, err := client.Get(addr + "/statsz")
	if err != nil {
		log.Printf("annsload: /statsz unreachable: %v", err)
		return
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Printf("annsload: /statsz read: %v", err)
		return
	}
	if bytes.Contains(raw, []byte(`"shard_stats"`)) {
		var rs router.Stats
		if err := json.Unmarshal(raw, &rs); err != nil {
			log.Printf("annsload: bad router /statsz body: %v", err)
			return
		}
		fmt.Printf("\n=== router /statsz ===\n")
		fmt.Printf("queries=%d near=%d batches=%d errors=%d rejected=%d in_flight=%d qps=%.1f\n",
			rs.Queries, rs.Near, rs.Batches, rs.Errors, rs.Rejected, rs.InFlight, rs.QPS)
		fmt.Printf("probes=%d rounds=%d max_rounds=%d max_parallel=%d\n",
			rs.Probes, rs.Rounds, rs.MaxRounds, rs.MaxParallel)
		fmt.Printf("hedges=%d wins=%d rate=%.4f failovers=%d\n",
			rs.Hedges, rs.HedgeWins, rs.HedgeRate, rs.Failovers)
		if rs.Writes+rs.WriteErrors+rs.Promotions > 0 {
			fmt.Printf("writes=%d write_errors=%d replicated_frames=%d replication_errors=%d promotions=%d epoch=%d durability=%s\n",
				rs.Writes, rs.WriteErrors, rs.ReplicatedFrames, rs.ReplicationErrs, rs.Promotions, rs.Epoch, rs.Durability)
		}
		printCacheStats(rs.Cache)
		for _, sh := range rs.ShardStats {
			fmt.Printf("shard %d: %d/%d replicas healthy, %d reqs (%d errors, %d hedges, %d failovers), p50=%.2fms p95=%.2fms p99=%.2fms\n",
				sh.Shard, sh.Healthy, sh.Replicas, sh.Requests, sh.Errors, sh.Hedges, sh.Failovers,
				sh.P50MS, sh.P95MS, sh.P99MS)
			for _, rep := range sh.ReplicaStats {
				fmt.Printf("  %s: %s (fails=%d evictions=%d backoff=%dms)", rep.URL, rep.State, rep.Fails, rep.Evictions, rep.BackoffMS)
				if rep.Primary {
					fmt.Printf("  primary offset=%d", rep.ReplicationOffset)
				} else if rep.ReplicationOffset > 0 {
					fmt.Printf("  offset=%d", rep.ReplicationOffset)
				}
				if rep.LastError != "" {
					fmt.Printf("  %s", rep.LastError)
				}
				fmt.Println()
			}
		}
		return
	}
	var snap server.StatsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		log.Printf("annsload: bad /statsz body: %v", err)
		return
	}
	fmt.Printf("\n=== server /statsz ===\n")
	fmt.Printf("queries=%d near=%d batches=%d errors=%d rejected=%d deadline_exceeded=%d\n",
		snap.Queries, snap.Near, snap.Batches, snap.Errors, snap.Rejected, snap.DeadlineExceeded)
	fmt.Printf("probes=%d rounds=%d max_rounds=%d max_parallel=%d qps=%.1f error_rate=%.4f workers=%d\n",
		snap.Probes, snap.Rounds, snap.MaxRounds, snap.MaxParallel, snap.QPS, snap.ErrorRate, snap.Workers)
	if snap.IndexSource == "snapshot" {
		fmt.Printf("index: loaded from snapshot (format v%d) in %dms\n", snap.SnapshotVersion, snap.IndexLoadMS)
	} else {
		fmt.Printf("index: %s in %dms\n", snap.IndexSource, snap.IndexLoadMS)
	}
	if snap.Mutable != nil {
		fmt.Printf("mutable: live_n=%d memtable=%d segments=%d generation=%d replication_offset=%d\n",
			snap.Mutable.LiveN, snap.Mutable.Memtable, snap.Mutable.SealedSegments, snap.Mutable.Generation,
			snap.Mutable.ReplicationOffset)
	}
	printCacheStats(snap.Cache)
}

// printCacheStats prints the /statsz result-cache block shared by shard
// servers and routers (silent when caching is disabled).
func printCacheStats(c *server.CacheStats) {
	if c == nil {
		return
	}
	fmt.Printf("cache: hits=%d misses=%d hit_rate=%.4f evictions=%d invalidations=%d entries=%d/%d\n",
		c.Hits, c.Misses, c.HitRate, c.Evictions, c.Invalidations, c.Entries, c.Capacity)
}
