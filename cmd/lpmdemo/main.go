// Command lpmdemo walks through the lower-bound machinery of §4 at
// simulable scale: it builds the γ-separated ball tree of Lemma 16, embeds
// a longest-prefix-match instance into Hamming space (Lemma 14), solves it
// through the ANNS schemes, and prints the Proposition 18 communication
// accounting of the probe transcript.
//
// Usage:
//
//	lpmdemo [-sigma 4] [-m 3] [-n 40] [-q 20] [-d 16384]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cellprobe"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/lpm"
	"repro/internal/rng"
)

func main() {
	sigma := flag.Int("sigma", 4, "alphabet size (paper: 2^{d^0.99})")
	m := flag.Int("m", 3, "string length (paper: (log d)^{ηβ})")
	n := flag.Int("n", 40, "database strings")
	q := flag.Int("q", 20, "queries")
	d := flag.Int("d", 16384, "embedding dimension")
	seed := flag.Uint64("seed", 5, "random seed")
	flag.Parse()

	r := rng.New(*seed)
	in := &lpm.Instance{Sigma: *sigma, M: *m}
	for i := 0; i < *n; i++ {
		s := make([]int, *m)
		for j := range s {
			s[j] = r.Intn(*sigma)
		}
		in.DB = append(in.DB, s)
	}

	fmt.Printf("LPM instance: %d strings of length %d over Σ (|Σ|=%d)\n", *n, *m, *sigma)
	rd, err := lpm.NewReduction(r.Split(1), in, *d, 2)
	if err != nil {
		log.Fatalf("lpmdemo: %v", err)
	}
	if err := rd.Tree.CheckSeparation(); err != nil {
		log.Fatalf("lpmdemo: separation: %v", err)
	}
	fmt.Printf("ball tree: depth %d, branching %d, radius shrink ×%.0f per level — γ-separated ✓\n",
		rd.Tree.Depth, rd.Tree.Sigma, rd.Tree.Shrink)

	idx := core.BuildIndex(rd.Points, *d, core.Params{Gamma: 2, Seed: *seed + 9})
	scheme := core.NewAlgo1(idx, 2)
	trie := lpm.NewTrie(in)

	correct, probesTotal := 0, 0
	var lastTranscript []cellprobe.TranscriptEntry
	for i := 0; i < *q; i++ {
		x := make([]int, *m)
		for j := range x {
			x[j] = r.Intn(*sigma)
		}
		c := core.NewRecordingQueryCtx()
		res := scheme.QueryWithCtx(rd.QueryPoint(x), c)
		lastTranscript = c.Probe().Transcript()
		probesTotal += res.Stats.Probes
		_, wantLCP := trie.Query(x)
		got := -1
		if res.Index >= 0 {
			got = lpm.LCP(in.DB[res.Index], x)
		}
		ok := got == wantLCP
		if ok {
			correct++
		}
		fmt.Printf("query %2d %v: LCP %d (want %d) via point #%d, %d probes %v\n",
			i, x, got, wantLCP, res.Index, res.Stats.Probes, check(ok))
	}
	fmt.Printf("\n%d/%d queries answered with a maximal-LCP string; %.1f probes/query\n",
		correct, *q, float64(probesTotal)/float64(*q))

	// Proposition 18 on the final query's transcript.
	tr := comm.Translate(lastTranscript)
	fmt.Printf("\nProposition 18 view of the last query: %d probe rounds → %d communication rounds\n",
		tr.ProbeRounds, tr.CommRounds)
	for i := range tr.A {
		fmt.Printf("  round %d: Alice %d address bits → Bob %d content bits\n", i+1, tr.A[i], tr.B[i])
	}
}

func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗"
}
