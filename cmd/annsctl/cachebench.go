package main

import (
	"bytes"
	"encoding/json"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/anns"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/scenario"
)

// cacheSweepPoint is one skew setting of the result-cache sweep
// (BENCH_cache.json): the same zipfian key stream replayed against a
// cache-enabled and a cache-disabled server, through the full in-process
// handler path (JSON decode → admission → worker pool → index query).
// The key pool is larger than the cache, so the hit rate — and therefore
// the speedup — is earned by the skew, not by a cache that trivially
// holds every key.
type cacheSweepPoint struct {
	Theta   float64 `json:"theta"`
	HitRate float64 `json:"hit_rate"`
	// QPS are best-of-runs closed-loop throughputs over identical streams.
	CacheOffQPS float64 `json:"cache_off_qps"`
	CacheOnQPS  float64 `json:"cache_on_qps"`
	// Speedup is the gated number: cache-on vs cache-off throughput.
	Speedup      float64 `json:"speedup"`
	CacheOffP50U float64 `json:"cache_off_p50_us"`
	CacheOnP50U  float64 `json:"cache_on_p50_us"`
}

// cacheBench is the JSON document of `annsctl bench -cache`.
type cacheBench struct {
	Config struct {
		HostCPUs     int       `json:"host_cpus"`
		Runs         int       `json:"runs"`
		N            int       `json:"n"`
		D            int       `json:"d"`
		QueryPool    int       `json:"query_pool"`
		CacheEntries int       `json:"cache_entries"`
		Conc         int       `json:"conc"`
		Ops          int       `json:"ops"`
		Thetas       []float64 `json:"thetas"`
	} `json:"config"`
	Sweep []cacheSweepPoint `json:"sweep"`
	// SpeedupAtTheta99 is the acceptance headline: throughput ratio at
	// θ=0.99, the canonical YCSB skew.
	SpeedupAtTheta99 float64 `json:"speedup_at_theta_0_99"`
}

// runCacheBench is `annsctl bench -cache`: sweep zipfian skew
// θ ∈ {0, 0.8, 0.99, 1.2} × {cache on, cache off} over one reference
// shape and write BENCH_cache.json, the fixture cmd/benchdiff gates.
func runCacheBench(out string, runs int) {
	const (
		n            = 16384
		d            = 512
		pool         = 4096 // distinct query points: 2× the cache
		cacheEntries = 2048
		conc         = 8
		ops          = 12000
		seed         = 1
	)
	thetas := []float64{0, 0.8, 0.99, 1.2}

	spec := workload.DefaultSpec()
	spec.Kind, spec.N, spec.D, spec.Q = "planted", n, d, 1
	inst, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	ix, err := anns.Build(inst.DB, anns.Options{Dimension: d, Gamma: 2, Rounds: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// The query pool: perturbations of database points, pre-encoded to
	// wire bodies once so the measured loop is handler + index only.
	r := rng.New(seed)
	bodies := make([][]byte, pool)
	for i := range bodies {
		pt := hamming.AtDistance(r, inst.DB[r.Intn(n)], d, 8)
		body, err := json.Marshal(server.QueryRequest{Point: server.EncodePoint(pt)})
		if err != nil {
			log.Fatal(err)
		}
		bodies[i] = body
	}

	var rec cacheBench
	rec.Config.HostCPUs = runtime.NumCPU()
	rec.Config.Runs = runs
	rec.Config.N = n
	rec.Config.D = d
	rec.Config.QueryPool = pool
	rec.Config.CacheEntries = cacheEntries
	rec.Config.Conc = conc
	rec.Config.Ops = ops
	rec.Config.Thetas = thetas

	for _, theta := range thetas {
		// One key stream per θ, replayed identically by both servers.
		gen := scenario.NewGen(scenario.DistZipfian, pool, theta, seed)
		keys := make([]int, ops)
		for i := range keys {
			keys[i] = gen.Next()
		}
		pt := cacheSweepPoint{Theta: theta}
		pt.CacheOffQPS, pt.CacheOffP50U, _ = cacheCell(ix, d, bodies, keys, 0, conc, runs)
		pt.CacheOnQPS, pt.CacheOnP50U, pt.HitRate = cacheCell(ix, d, bodies, keys, cacheEntries, conc, runs)
		pt.Speedup = ratio(pt.CacheOnQPS, pt.CacheOffQPS)
		rec.Sweep = append(rec.Sweep, pt)
		if theta == 0.99 {
			rec.SpeedupAtTheta99 = pt.Speedup
		}
		log.Printf("cache θ=%-4g off %8.0f qps (p50 %6.0fµs)  on %8.0f qps (p50 %6.0fµs)  hit %.3f  %.2fx",
			theta, pt.CacheOffQPS, pt.CacheOffP50U, pt.CacheOnQPS, pt.CacheOnP50U, pt.HitRate, pt.Speedup)
	}

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: %d skew points, %.2fx at θ=0.99", out, len(rec.Sweep), rec.SpeedupAtTheta99)
}

// cacheCell drives one (cache capacity × key stream) cell through the
// in-process handler with a closed loop of conc workers, best-of-runs.
// Each run replays the stream once untimed to reach the cache's steady
// state, then times a second replay — the bench measures steady-state
// serving, not the cold fill, and the warm pass absorbs most run-to-run
// scheduling noise. The hit rate is the timed pass's (deterministic
// stream, so every run matches).
func cacheCell(ix *anns.Index, dim int, bodies [][]byte, keys []int, cacheEntries, conc, runs int) (qps, p50us, hitRate float64) {
	bestQPS := 0.0
	bestP50 := math.NaN()
	for run := 0; run < runs; run++ {
		srv, err := server.New(ix, server.Config{Dimension: dim, CacheEntries: cacheEntries})
		if err != nil {
			log.Fatal(err)
		}
		h := srv.Handler()
		driveStream(h, bodies, keys, conc, nil) // warm to steady state
		before := srv.Stats()
		hists := make([]*stats.LogHistogram, conc)
		t0 := time.Now()
		driveStream(h, bodies, keys, conc, hists)
		wall := time.Since(t0)
		after := srv.Stats()
		if c := after.Cache; c != nil && before.Cache != nil {
			lookups := (c.Hits + c.Misses) - (before.Cache.Hits + before.Cache.Misses)
			if lookups > 0 {
				hitRate = float64(c.Hits-before.Cache.Hits) / float64(lookups)
			}
		}
		srv.Close()
		if q := float64(len(keys)) / wall.Seconds(); q > bestQPS {
			bestQPS = q
			merged := hists[0]
			for _, hh := range hists[1:] {
				merged.Merge(hh)
			}
			bestP50 = merged.Quantile(0.50) / 1e3
		}
	}
	return bestQPS, bestP50, hitRate
}

// driveStream replays the key stream closed-loop with conc workers,
// recording per-request latency into hists[w] when hists is non-nil.
func driveStream(h http.Handler, bodies [][]byte, keys []int, conc int, hists []*stats.LogHistogram) {
	var next int64 = -1
	var fails int64
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var hist *stats.LogHistogram
			if hists != nil {
				hist = stats.NewLatencyHistogram()
				hists[w] = hist
			}
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(keys) {
					return
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(bodies[keys[i]]))
				rw := httptest.NewRecorder()
				q0 := time.Now()
				h.ServeHTTP(rw, req)
				if hist != nil {
					hist.Record(float64(time.Since(q0).Nanoseconds()))
				}
				if rw.Code != http.StatusOK {
					atomic.AddInt64(&fails, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	if fails > 0 {
		log.Fatalf("cache bench: %d/%d requests failed", fails, len(keys))
	}
}
