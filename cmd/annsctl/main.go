// Command annsctl is the offline index-lifecycle tool: it builds index
// snapshots ("build once"), inspects them, and benchmarks the build and
// load paths.
//
//	annsctl build -o idx.snap -kind planted -d 512 -n 4096 -shards 4 -k 3
//	annsctl shard-split -o shards/ -kind planted -d 512 -n 4096 -shards 4 -k 3
//	annsctl inspect idx.snap
//	annsctl compact -snapshot base.snap -wal wal.log -o merged.snap
//	annsctl bench -kind planted -d 512 -n 4096 -shards 4 -o BENCH_index_build.json
//
// A snapshot built here is served by `annsd -snapshot idx.snap` on any
// host ("serve anywhere"): the file embeds the format version, the paper
// parameters (d, k, γ, s, repetitions), per-section lengths, and a
// checksum over the flat index arrays.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/anns"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annsctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		runBuild(os.Args[2:])
	case "shard-split":
		runShardSplit(os.Args[2:])
	case "inspect":
		runInspect(os.Args[2:])
	case "compact":
		runCompact(os.Args[2:])
	case "bench":
		runBench(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: annsctl <command> [flags]

commands:
  build        build an index over a generated workload and save its snapshot
  shard-split  build a sharded index and emit one snapshot per shard plus a
               placement manifest for cmd/annsrouter
  inspect      print a snapshot's header, parameters, and section summary —
               or, given an http:// URL, a live server's serving provenance
               (index source, cache capacity and hit rate, generation)
  compact      offline-merge a base snapshot and a WAL into one fresh snapshot
  bench        measure sequential vs parallel build, save, and load timings
               (-kernels: sketch-kernel sweep → BENCH_kernels.json;
                -cache: result-cache zipfian skew sweep → BENCH_cache.json)

run "annsctl <command> -h" for the command's flags
`)
	os.Exit(2)
}

// indexFlags registers the index-shape flags shared by build and bench.
type indexFlags struct {
	k, reps, shards, buildWorkers int
	algo                          string
	gamma                         float64
	seed                          uint64
}

func (f *indexFlags) register(fs *flag.FlagSet) {
	fs.IntVar(&f.k, "k", 3, "adaptivity budget (rounds)")
	fs.StringVar(&f.algo, "algo", "simple", "simple (Algorithm 1) | soph (Algorithm 2)")
	fs.Float64Var(&f.gamma, "gamma", 2, "approximation ratio")
	fs.IntVar(&f.reps, "reps", 1, "independent repetitions (success boosting)")
	fs.Uint64Var(&f.seed, "seed", 42, "public randomness seed")
	fs.IntVar(&f.shards, "shards", 4, "shard count (1 = single unsharded index)")
	fs.IntVar(&f.buildWorkers, "build-workers", 0, "build worker pool (0 = GOMAXPROCS)")
}

func (f *indexFlags) options(d int) anns.Options {
	opts := anns.Options{
		Dimension:    d,
		Gamma:        f.gamma,
		Rounds:       f.k,
		Repetitions:  f.reps,
		Seed:         f.seed,
		BuildWorkers: f.buildWorkers,
	}
	switch f.algo {
	case "simple":
	case "soph":
		opts.Algorithm = anns.Sophisticated
	default:
		log.Fatalf("unknown -algo %q", f.algo)
	}
	return opts
}

// buildIndex generates the workload and builds the configured index,
// returning exactly one non-nil index.
func buildIndex(spec workload.Spec, idxf *indexFlags) (*anns.Index, *anns.ShardedIndex, time.Duration) {
	inst, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("workload: %s", inst)
	opts := idxf.options(inst.D)
	start := time.Now()
	if idxf.shards <= 1 {
		ix, err := anns.Build(inst.DB, opts)
		if err != nil {
			log.Fatal(err)
		}
		return ix, nil, time.Since(start)
	}
	sx, err := anns.BuildSharded(inst.DB, idxf.shards, opts)
	if err != nil {
		log.Fatal(err)
	}
	return nil, sx, time.Since(start)
}

func save(path string, ix *anns.Index, sx *anns.ShardedIndex) (int64, time.Duration) {
	start := time.Now()
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if ix != nil {
		err = anns.SaveIndex(f, ix)
	} else {
		err = anns.SaveSharded(f, sx)
	}
	if err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	return st.Size(), time.Since(start)
}

func runBuild(args []string) {
	fs := flag.NewFlagSet("annsctl build", flag.ExitOnError)
	out := fs.String("o", "index.snap", "output snapshot path")
	spec := workload.DefaultSpec()
	spec.RegisterFlags(fs)
	var idxf indexFlags
	idxf.register(fs)
	fs.Parse(args)

	ix, sx, buildDur := buildIndex(spec, &idxf)
	n := 0
	if ix != nil {
		n = ix.Len()
	} else {
		n = sx.Len()
	}
	log.Printf("built index over n=%d in %v (shards=%d, k=%d, workers=%d)",
		n, buildDur.Round(time.Millisecond), idxf.shards, idxf.k, idxf.buildWorkers)
	bytes, saveDur := save(*out, ix, sx)
	log.Printf("saved %s (%d bytes, format v%d) in %v", *out, bytes,
		snapshot.FormatVersion, saveDur.Round(time.Millisecond))
}

// runShardSplit builds a sharded index and writes each shard's *Index as
// its own single-index snapshot (bootable by `annsd -snapshot`) plus a
// placement manifest (router.Manifest) tying the files back into one
// logical index. The per-shard indexes are the exact shards BuildSharded
// produces — same round-robin partition, same derived seeds — so a
// router over these files answers byte-identically to one process
// serving the equivalent ShardedIndex.
func runShardSplit(args []string) {
	fs := flag.NewFlagSet("annsctl shard-split", flag.ExitOnError)
	out := fs.String("o", "shards", "output directory (created if missing)")
	spec := workload.DefaultSpec()
	spec.RegisterFlags(fs)
	var idxf indexFlags
	idxf.register(fs)
	fs.Parse(args)
	if idxf.shards < 2 {
		log.Fatal("shard-split needs -shards >= 2")
	}

	ix, sx, buildDur := buildIndex(spec, &idxf)
	if ix != nil {
		log.Fatal("shard-split built a single index; this is a bug")
	}
	log.Printf("built %d shards over n=%d in %v (k=%d, workers=%d)",
		sx.Shards(), sx.Len(), buildDur.Round(time.Millisecond), idxf.k, idxf.buildWorkers)

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	m := &router.Manifest{
		FormatVersion: router.ManifestVersion,
		Placement:     router.PlacementRoundRobin,
		Shards:        sx.Shards(),
		N:             sx.Len(),
		Dimension:     sx.Options().Dimension,
		Seed:          sx.Options().Seed,
	}
	for s := 0; s < sx.Shards(); s++ {
		shard := sx.Shard(s)
		name := fmt.Sprintf("shard-%d.snap", s)
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := anns.SaveIndex(f, shard); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("shard %d: %s (%d bytes, n=%d, seed=%d)", s, path, st.Size(),
			shard.Len(), shard.Options().Seed)
		m.Files = append(m.Files, router.ManifestShard{
			Shard: s,
			Path:  name,
			N:     shard.Len(),
			Seed:  shard.Options().Seed,
		})
	}
	mpath := filepath.Join(*out, "manifest.json")
	if err := router.WriteManifest(mpath, m); err != nil {
		log.Fatal(err)
	}
	log.Printf("manifest: %s (placement %s, %d shards, n=%d, d=%d)",
		mpath, m.Placement, m.Shards, m.N, m.Dimension)
}

func runInspect(args []string) {
	fs := flag.NewFlagSet("annsctl inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("usage: annsctl inspect <snapshot | http://server>")
	}
	path := fs.Arg(0)
	if strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://") {
		inspectServer(strings.TrimSuffix(path, "/"))
		return
	}
	info, err := snapshot.InspectFile(path)
	if err != nil {
		log.Fatalf("inspecting %s: %v", path, err)
	}
	fmt.Printf("%s: %s snapshot, format v%d, %d bytes, checksum ok\n",
		path, snapshot.KindName(info.Kind), info.Version, info.Bytes)
	if info.Source == "mmap" {
		fmt.Printf("index_source: mmap (%d bytes mapped, zero-copy walk)\n", info.MappedBytes)
	} else {
		fmt.Printf("index_source: stream")
		if info.FallbackReason != "" {
			fmt.Printf(" (mmap fallback: %s)", info.FallbackReason)
		}
		fmt.Println()
	}
	if o := info.Options; o != nil {
		algo := "simple"
		if o.Algorithm != 0 {
			algo = "soph"
		}
		fmt.Printf("options: d=%d γ=%v k=%d algo=%s reps=%d seed=%d\n",
			o.Dimension, o.Gamma, o.Rounds, algo, o.Repetitions, o.Seed)
	}
	if info.Shards > 0 {
		fmt.Printf("shards: %d over n=%d\n", info.Shards, info.N)
	} else {
		fmt.Printf("n: %d\n", info.N)
	}
	if m := info.Mutable; m != nil {
		fmt.Printf("mutable tier: base=%d segments=%d (%d raw, %d points) memtable=%d tombstones=%d next-id=%d\n",
			m.Base, m.Segments, m.RawSegments, m.SegmentPoints, m.Memtable, m.Tombstones, m.NextID)
	}
	for i, c := range info.Cores {
		fmt.Printf("core %d: d=%d n=%d k=%d γ=%v s=%v seed=%d L=%d rows=%d/%d (%d words)\n",
			i, c.D, c.N, c.K, c.Gamma, c.S, c.Seed, c.L, c.AccRows, c.CoarseRows, c.Words())
		for _, s := range c.Sections {
			fmt.Printf("  section %-16s %12d words\n", snapshot.SectionName(s.Tag), s.Words)
		}
	}
}

// inspectServer prints a live annsd's serving provenance from /healthz +
// /statsz: index source, corpus shape, the result-cache configuration
// (capacity and observed hit rate), and the mutable tier's generation —
// so the configuration a load run measured against lands in the
// trajectory artifacts next to the numbers.
func inspectServer(base string) {
	client := &http.Client{Timeout: 5 * time.Second}
	var health server.Health
	if err := getJSON(client, base+"/healthz", &health); err != nil {
		log.Fatalf("inspecting %s: %v", base, err)
	}
	var snap server.StatsSnapshot
	if err := getJSON(client, base+"/statsz", &snap); err != nil {
		log.Fatalf("inspecting %s: %v", base, err)
	}
	fmt.Printf("%s: live server, n=%d shards=%d d=%d uptime=%.1fs\n",
		base, health.N, health.Shards, health.Dim, float64(health.UptimeMS)/1e3)
	fmt.Printf("index_source: %s", snap.IndexSource)
	if snap.SnapshotVersion != 0 {
		fmt.Printf(" (format v%d)", snap.SnapshotVersion)
	}
	fmt.Println()
	if c := snap.Cache; c != nil {
		fmt.Printf("result cache: %d entries configured, %d live, hits=%d misses=%d hit_rate=%.4f evictions=%d invalidations=%d\n",
			c.Capacity, c.Entries, c.Hits, c.Misses, c.HitRate, c.Evictions, c.Invalidations)
	} else {
		fmt.Printf("result cache: disabled\n")
	}
	if m := snap.Mutable; m != nil {
		fmt.Printf("mutable tier: live_n=%d memtable=%d segments=%d generation=%d\n",
			m.LiveN, m.Memtable, m.SealedSegments, m.Generation)
	}
	fmt.Printf("served: %d queries (%d near, %d batches), %d errors\n",
		snap.Queries, snap.Near, snap.Batches, snap.Errors)
	inspectMetrics(client, base)
}

// inspectMetrics summarizes the server's /metricsz exposition: scrape
// freshness and the top-N series by value, so one inspection entry point
// covers both the JSON rollup and the Prometheus surface. A server built
// before /metricsz existed just reports the endpoint as absent.
func inspectMetrics(client *http.Client, base string) {
	const topN = 10
	t0 := time.Now()
	resp, err := client.Get(base + "/metricsz")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		fmt.Printf("metricsz: unavailable\n")
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		fmt.Printf("metricsz: %v\n", err)
		return
	}
	elapsed := time.Since(t0)
	type sample struct {
		name  string
		value float64
	}
	var samples []sample
	series := 0
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		series++
		// Histogram expansion lines (cumulative buckets, _sum) would
		// drown the counters in the top-N; rank only plain series and
		// histogram _count totals.
		name := line[:sp]
		if strings.Contains(name, "_bucket") || strings.Contains(name, "_sum") {
			continue
		}
		samples = append(samples, sample{name: name, value: v})
	}
	sort.Slice(samples, func(i, j int) bool {
		if samples[i].value != samples[j].value {
			return samples[i].value > samples[j].value
		}
		return samples[i].name < samples[j].name
	})
	fmt.Printf("metricsz: %d series, scraped in %v\n", series, elapsed.Round(time.Millisecond))
	for i, s := range samples {
		if i >= topN {
			break
		}
		fmt.Printf("  %-60s %g\n", s.name, s.value)
	}
}

// getJSON fetches url and decodes the body into v.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// runCompact is the offline compactor: load a base snapshot (a plain
// index or a full mutable-tier state), replay a WAL over it, fold
// everything — base, sealed segments, memtable, tombstones — into one
// fresh from-scratch rebuild, and save a single snapshot. By default the
// output is a mutable-tier snapshot (stable IDs preserved, bootable by
// `annsd -mutable -snapshot`); -flatten emits a plain index snapshot
// servable by any annsd, renumbering points to 0..n-1 in ID order.
func runCompact(args []string) {
	fs := flag.NewFlagSet("annsctl compact", flag.ExitOnError)
	snapPath := fs.String("snapshot", "", "base snapshot (plain index or mutable kind); required")
	walPath := fs.String("wal", "", "write-ahead log to replay over the base (optional)")
	out := fs.String("o", "compacted.snap", "output snapshot path")
	flatten := fs.Bool("flatten", false, "emit a plain index snapshot (renumbers IDs) instead of a mutable-tier one")
	truncWAL := fs.Bool("truncate-wal", false, "after a successful save, reset the WAL (its state now lives in the output; required before serving the output with the same -wal)")
	fs.Parse(args)
	if *snapPath == "" {
		log.Fatal("usage: annsctl compact -snapshot base.snap [-wal wal.log] -o out.snap")
	}

	f, err := os.Open(*snapPath)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	mx, err := anns.LoadMutable(f, anns.MutableConfig{
		Synchronous: true,
		WALPath:     *walPath,
	})
	f.Close()
	if err != nil {
		log.Fatalf("loading %s: %v", *snapPath, err)
	}
	defer mx.Close()
	st := mx.MutableStats()
	log.Printf("loaded %s + %d WAL records: n=%d (memtable %d, %d sealed, %d tombstones)",
		*snapPath, st.WALReplayed, st.LiveN, st.Memtable, st.Sealed, st.Tombstones)

	mx.Flush() // capture the memtable in the compaction
	if err := mx.Compact(); err != nil {
		log.Fatalf("compacting: %v", err)
	}
	base, ids, ok := mx.Base()
	if !ok {
		log.Fatalf("compaction left no base: %d live points cannot fill a static index", mx.Len())
	}
	after := mx.MutableStats()
	log.Printf("compacted in %v: n=%d, tombstones applied, segments folded",
		time.Since(start).Round(time.Millisecond), after.LiveN)

	of, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if *flatten {
		err = anns.SaveIndex(of, base)
	} else {
		err = anns.SaveMutable(of, mx)
	}
	if err != nil {
		of.Close()
		log.Fatal(err)
	}
	if err := of.Close(); err != nil {
		log.Fatal(err)
	}
	stat, err := os.Stat(*out)
	if err != nil {
		log.Fatal(err)
	}
	if *flatten {
		renumbered := 0
		for j, id := range ids {
			if id != uint64(j) {
				renumbered++
			}
		}
		log.Printf("saved %s (%d bytes, plain index, format v%d); %d of %d points renumbered",
			*out, stat.Size(), snapshot.FormatVersion, renumbered, base.Len())
	} else {
		log.Printf("saved %s (%d bytes, mutable kind, format v%d); stable IDs preserved",
			*out, stat.Size(), snapshot.FormatVersion)
	}
	if *truncWAL && *walPath != "" {
		if err := mx.TruncateWAL(); err != nil {
			log.Fatalf("truncating WAL: %v", err)
		}
		log.Printf("WAL %s reset (state captured by %s)", *walPath, *out)
	}
}

// buildBench is the JSON record of one build/load measurement
// (BENCH_index_build.json), following the reproducible-measurement
// practice of keeping before/after perf numbers in the repository.
type buildBench struct {
	Config struct {
		Kind    string `json:"kind"`
		N       int    `json:"n"`
		D       int    `json:"d"`
		K       int    `json:"k"`
		Shards  int    `json:"shards"`
		Reps    int    `json:"reps"`
		Workers int    `json:"workers"`
		// HostCPUs records the machine the numbers came from: on a
		// single-CPU host the parallel build degenerates to the
		// sequential baseline and BuildSpeedup is ~1 by construction.
		HostCPUs int `json:"host_cpus"`
	} `json:"config"`
	SeqBuildMS     float64 `json:"seq_build_ms"`
	ParBuildMS     float64 `json:"par_build_ms"`
	BuildSpeedup   float64 `json:"build_speedup"`
	SaveMS         float64 `json:"save_ms"`
	SnapshotBytes  int64   `json:"snapshot_bytes"`
	LoadMS         float64 `json:"load_ms"`
	LoadVsSeqBuild float64 `json:"load_vs_seq_build"`
	LoadVsParBuild float64 `json:"load_vs_par_build"`
	// MmapOpenMS is the zero-copy open of the same snapshot (structural
	// decode over the mapping; no section copies, no checksum sweep), and
	// MmapVsLoad its speedup over the heap load. Both are 0 when the
	// platform has no mmap.
	MmapOpenMS      float64 `json:"mmap_open_ms"`
	MmapVsLoad      float64 `json:"mmap_vs_load"`
	MappedBytes     int64   `json:"mapped_bytes"`
	SnapshotVersion uint32  `json:"snapshot_version"`
}

func runBench(args []string) {
	fs := flag.NewFlagSet("annsctl bench", flag.ExitOnError)
	out := fs.String("o", "BENCH_index_build.json", "output JSON path (-kernels defaults to BENCH_kernels.json, -cache to BENCH_cache.json)")
	snapPath := fs.String("snap", "", "snapshot scratch path (default: temp file, removed)")
	kernels := fs.Bool("kernels", false, "sweep the sketch kernels over a d × rows × batch matrix instead of the build/load path")
	kernelRuns := fs.Int("kernel-runs", 3, "timed repetitions per kernel or cache cell (best-of)")
	cacheSweep := fs.Bool("cache", false, "sweep the query-result cache over a zipfian θ × on/off matrix instead of the build/load path")
	spec := workload.DefaultSpec()
	spec.RegisterFlags(fs)
	var idxf indexFlags
	idxf.register(fs)
	fs.Parse(args)

	if *kernels || *cacheSweep {
		path := *out
		oSet := false
		fs.Visit(func(f *flag.Flag) { oSet = oSet || f.Name == "o" })
		if !oSet {
			if *cacheSweep {
				path = "BENCH_cache.json"
			} else {
				path = "BENCH_kernels.json"
			}
		}
		if *cacheSweep {
			runCacheBench(path, *kernelRuns)
		} else {
			runKernels(path, *kernelRuns)
		}
		return
	}

	workers := idxf.buildWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Every timing is best-of-3: the gate in cmd/benchdiff compares the
	// load-vs-rebuild speedup across machines and commits, and single
	// runs of a sub-second build are too noisy (GC, CPU steal on shared
	// runners) to hold a 25% regression threshold.
	const runs = 3

	// Sequential baseline: the same eager build on one worker.
	seq := idxf
	seq.buildWorkers = 1
	var seqDur time.Duration
	for i := 0; i < runs; i++ {
		_, _, d := buildIndex(spec, &seq)
		if i == 0 || d < seqDur {
			seqDur = d
		}
	}
	log.Printf("sequential build: %v (best of %d)", seqDur.Round(time.Millisecond), runs)

	parf := idxf
	parf.buildWorkers = workers
	var ix *anns.Index
	var sx *anns.ShardedIndex
	var parDur time.Duration
	for i := 0; i < runs; i++ {
		a, b, d := buildIndex(spec, &parf)
		if i == 0 || d < parDur {
			ix, sx, parDur = a, b, d
		}
	}
	log.Printf("parallel build (%d workers): %v (best of %d)", workers, parDur.Round(time.Millisecond), runs)

	path := *snapPath
	if path == "" {
		tmp, err := os.CreateTemp("", "annsctl-bench-*.snap")
		if err != nil {
			log.Fatal(err)
		}
		tmp.Close()
		path = tmp.Name()
		defer os.Remove(path)
	}
	bytes, saveDur := save(path, ix, sx)
	log.Printf("save: %v (%d bytes)", saveDur.Round(time.Millisecond), bytes)

	loadDur := time.Duration(1<<62 - 1)
	for i := 0; i < 5; i++ { // best of 5: load is a few ms, so noise dominates one run
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		_, _, err = anns.LoadAny(f)
		d := time.Since(t0)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if d < loadDur {
			loadDur = d
		}
	}
	log.Printf("load: %v", loadDur.Round(time.Millisecond))

	// Zero-copy open: decode the same snapshot through the mmap path
	// (structural validation only — the page cache is already warm from
	// the loads above, so this times the open, not the disk).
	mmapDur := time.Duration(0)
	var mappedBytes int64
	for i := 0; i < 5; i++ {
		t0 := time.Now()
		l, err := anns.OpenSnapshot(path, anns.LoadMmap)
		d := time.Since(t0)
		if err != nil {
			if errors.Is(err, snapshot.ErrMmapUnavailable) {
				log.Printf("mmap open: unavailable on this platform, skipping")
				break
			}
			log.Fatal(err)
		}
		mappedBytes = l.MappedBytes
		l.Close()
		if mmapDur == 0 || d < mmapDur {
			mmapDur = d
		}
	}
	if mmapDur > 0 {
		log.Printf("mmap open: %v (%d bytes mapped)", mmapDur.Round(time.Microsecond), mappedBytes)
	}

	var rec buildBench
	rec.Config.Kind = spec.Kind
	rec.Config.N = spec.N
	rec.Config.D = spec.D
	rec.Config.K = idxf.k
	rec.Config.Shards = idxf.shards
	rec.Config.Reps = idxf.reps
	rec.Config.Workers = workers
	rec.Config.HostCPUs = runtime.NumCPU()
	rec.SeqBuildMS = ms(seqDur)
	rec.ParBuildMS = ms(parDur)
	rec.BuildSpeedup = ratio(ms(seqDur), ms(parDur))
	rec.SaveMS = ms(saveDur)
	rec.SnapshotBytes = bytes
	rec.LoadMS = ms(loadDur)
	rec.LoadVsSeqBuild = ratio(ms(seqDur), ms(loadDur))
	rec.LoadVsParBuild = ratio(ms(parDur), ms(loadDur))
	if mmapDur > 0 {
		rec.MmapOpenMS = ms(mmapDur)
		rec.MmapVsLoad = ratio(ms(loadDur), ms(mmapDur))
		rec.MappedBytes = mappedBytes
	}
	rec.SnapshotVersion = snapshot.FormatVersion

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: build %0.0fms → %0.0fms (%.2fx), load %0.1fms (%.0fx faster than rebuild), mmap open %0.3fms (%.0fx faster than load)",
		*out, rec.SeqBuildMS, rec.ParBuildMS, rec.BuildSpeedup, rec.LoadMS, rec.LoadVsParBuild,
		rec.MmapOpenMS, rec.MmapVsLoad)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
