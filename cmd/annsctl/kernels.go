package main

import (
	"encoding/json"
	"log"
	"math"
	"math/bits"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/bitvec"
	"repro/internal/hamming"
	"repro/internal/rng"
	"repro/internal/sketch"
)

// kernelShape is one (dimension × sketch rows × batch size) cell of the
// sketch-kernel sweep (BENCH_kernels.json). Times are ns per query —
// batch kernels are normalized by the batch size, so cells are
// comparable across the batch axis.
type kernelShape struct {
	D     int `json:"d"`
	Rows  int `json:"rows"`
	Batch int `json:"batch"`

	// ScalarNsPerQuery is the pre-optimization reference kernel: per-row
	// popcount-sum parity with bit-at-a-time stores into a pre-zeroed
	// destination (the ApplyInto this PR replaced).
	ScalarNsPerQuery float64 `json:"scalar_ns_per_query"`
	// SingleNsPerQuery is the rewritten word-accumulating ApplyInto,
	// applied once per query.
	SingleNsPerQuery float64 `json:"single_ns_per_query"`
	// BatchNsPerQuery is ApplyBatchInto over the whole batch.
	BatchNsPerQuery  float64 `json:"batch_ns_per_query"`
	BatchAllocsPerOp float64 `json:"batch_allocs_per_op"`
	// SpeedupVsScalar is the batch path's improvement over the scalar
	// reference — the gated "what this PR bought" number.
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
	// SpeedupVsSingle isolates the batching win over the (already
	// rewritten) single-query kernel.
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
}

// kernelBench is the JSON document of `annsctl bench -kernels`.
type kernelBench struct {
	Config struct {
		HostCPUs int   `json:"host_cpus"`
		Runs     int   `json:"runs"`
		Ds       []int `json:"ds"`
		Rows     []int `json:"rows"`
		Batches  []int `json:"batches"`
	} `json:"config"`
	Shapes                 []kernelShape `json:"shapes"`
	MinSpeedupVsScalar     float64       `json:"min_speedup_vs_scalar"`
	GeomeanSpeedupVsScalar float64       `json:"geomean_speedup_vs_scalar"`
}

// scalarApplyInto is the frozen pre-optimization ApplyInto, kept here as
// the sweep's reference so the committed speedups keep meaning "vs the
// kernel this PR replaced" even as the library version evolves: zero the
// destination, then for each row sum the AND popcounts and store the
// parity bit read-modify-write.
func scalarApplyInto(m *sketch.Matrix, dst, x bitvec.Vector) {
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.NumRows; i++ {
		row := m.Row(i)
		n := 0
		for j := range row {
			n += bits.OnesCount64(row[j] & x[j])
		}
		if n&1 == 1 {
			dst[i>>6] |= 1 << uint(i&63)
		}
	}
}

// timedKernel is one contender in a shape's measurement: competing
// kernels are timed in interleaved rounds (scalar, single, batch, scalar,
// …) so CPU steal or frequency drift on a shared runner hits all of them
// rather than whichever happened to run during the stall; per-kernel
// minima across rounds are then comparable.
type timedKernel struct {
	fn    func()
	iters int
	best  float64
}

// calibrate picks an iteration count whose timed block swamps timer
// resolution and scheduling jitter.
func (k *timedKernel) calibrate() {
	k.iters = 1
	k.best = math.Inf(1)
	for {
		t0 := time.Now()
		for i := 0; i < k.iters; i++ {
			k.fn()
		}
		if time.Since(t0) >= 10*time.Millisecond || k.iters >= 1<<22 {
			return
		}
		k.iters *= 2
	}
}

func (k *timedKernel) round() {
	t0 := time.Now()
	for i := 0; i < k.iters; i++ {
		k.fn()
	}
	if ns := float64(time.Since(t0).Nanoseconds()) / float64(k.iters); ns < k.best {
		k.best = ns
	}
}

// raceKernels runs the contenders through runs interleaved rounds and
// leaves each kernel's best per-call nanoseconds in k.best.
func raceKernels(runs int, ks ...*timedKernel) {
	for _, k := range ks {
		k.calibrate()
	}
	for r := 0; r < runs; r++ {
		for _, k := range ks {
			k.round()
		}
	}
}

// runKernels is `annsctl bench -kernels`: sweep the sketch kernels over a
// (d × rows × batch) matrix and write BENCH_kernels.json, the fixture
// cmd/benchdiff gates per shape.
func runKernels(out string, runs int) {
	ds := []int{256, 1024, 4096}
	rowCounts := []int{128, 256}
	batches := []int{8, 32}

	var rec kernelBench
	rec.Config.HostCPUs = runtime.NumCPU()
	rec.Config.Runs = runs
	rec.Config.Ds = ds
	rec.Config.Rows = rowCounts
	rec.Config.Batches = batches

	r := rng.New(1)
	minSpeedup := math.Inf(1)
	logSum := 0.0
	for _, d := range ds {
		for _, rows := range rowCounts {
			m := sketch.NewBernoulli(r, rows, d, 0.1)
			for _, batch := range batches {
				xs := make([]bitvec.Vector, batch)
				dsts := make([]bitvec.Vector, batch)
				for q := range xs {
					xs[q] = hamming.Random(r, d)
					dsts[q] = bitvec.New(rows)
				}
				sh := kernelShape{D: d, Rows: rows, Batch: batch}
				scalar := &timedKernel{fn: func() {
					for q := range xs {
						scalarApplyInto(m, dsts[q], xs[q])
					}
				}}
				single := &timedKernel{fn: func() {
					for q := range xs {
						m.ApplyInto(dsts[q], xs[q])
					}
				}}
				batched := &timedKernel{fn: func() {
					m.ApplyBatchInto(dsts, xs)
				}}
				raceKernels(runs, scalar, single, batched)
				sh.ScalarNsPerQuery = scalar.best / float64(batch)
				sh.SingleNsPerQuery = single.best / float64(batch)
				sh.BatchNsPerQuery = batched.best / float64(batch)
				sh.BatchAllocsPerOp = testing.AllocsPerRun(16, func() {
					m.ApplyBatchInto(dsts, xs)
				})
				sh.SpeedupVsScalar = ratio(sh.ScalarNsPerQuery, sh.BatchNsPerQuery)
				sh.SpeedupVsSingle = ratio(sh.SingleNsPerQuery, sh.BatchNsPerQuery)
				rec.Shapes = append(rec.Shapes, sh)
				if sh.SpeedupVsScalar < minSpeedup {
					minSpeedup = sh.SpeedupVsScalar
				}
				logSum += math.Log(sh.SpeedupVsScalar)
				log.Printf("kernels d=%-5d rows=%-4d batch=%-3d scalar %8.0fns single %8.0fns batch %8.0fns  (%.2fx vs scalar, %.2fx vs single)",
					d, rows, batch, sh.ScalarNsPerQuery, sh.SingleNsPerQuery, sh.BatchNsPerQuery,
					sh.SpeedupVsScalar, sh.SpeedupVsSingle)
			}
		}
	}
	rec.MinSpeedupVsScalar = minSpeedup
	rec.GeomeanSpeedupVsScalar = math.Exp(logSum / float64(len(rec.Shapes)))

	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s: %d shapes, min %.2fx / geomean %.2fx vs scalar reference",
		out, len(rec.Shapes), rec.MinSpeedupVsScalar, rec.GeomeanSpeedupVsScalar)
}
