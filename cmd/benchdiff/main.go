// Command benchdiff is the CI bench-regression gate: it compares freshly
// measured performance against the numbers committed in the repository
// and fails (exit 1) on regression, so perf claims in BENCH_*.json stay
// honest as the code evolves.
//
// Two independent checks, each enabled by supplying its flag pair:
//
//	benchdiff -build-fresh /tmp/bench.json -build-committed BENCH_index_build.json
//	benchdiff -alloc-fresh /tmp/bench.txt  -alloc-committed BENCH_query_engine.json
//
// The build check validates the schema of a fresh `annsctl bench` record
// and fails when the load-vs-rebuild speedup regressed by more than
// -max-regression (default 0.25) relative to the committed record — the
// snapshot subsystem's headline number. Absolute ms are not compared
// (runners differ); the speedup is a same-machine ratio.
//
// The alloc check parses `go test -bench -benchmem` output and fails
// when any benchmark named in the committed BENCH_query_engine.json
// allocates more per op than its committed "after" ceiling. allocs/op is
// deterministic on a given code path, which makes it the stable
// regression signal across runner hardware.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	buildFresh := flag.String("build-fresh", "", "fresh annsctl bench JSON")
	buildCommitted := flag.String("build-committed", "", "committed BENCH_index_build.json")
	allocFresh := flag.String("alloc-fresh", "", "fresh `go test -bench -benchmem` output")
	allocCommitted := flag.String("alloc-committed", "", "committed BENCH_query_engine.json")
	maxRegression := flag.Float64("max-regression", 0.25, "tolerated fractional speedup regression")
	flag.Parse()

	ran := false
	failed := false
	if *buildFresh != "" || *buildCommitted != "" {
		if *buildFresh == "" || *buildCommitted == "" {
			log.Fatal("-build-fresh and -build-committed go together")
		}
		ran = true
		if !checkBuild(*buildFresh, *buildCommitted, *maxRegression) {
			failed = true
		}
	}
	if *allocFresh != "" || *allocCommitted != "" {
		if *allocFresh == "" || *allocCommitted == "" {
			log.Fatal("-alloc-fresh and -alloc-committed go together")
		}
		ran = true
		if !checkAllocs(*allocFresh, *allocCommitted) {
			failed = true
		}
	}
	if !ran {
		log.Fatal("nothing to do; see -h")
	}
	if failed {
		os.Exit(1)
	}
}

// buildRecord mirrors the fields of annsctl bench's JSON that the gate
// reads; unknown fields are ignored so the record can grow. Config
// covers every workload- and index-shape parameter that moves the
// speedup (machine-dependent fields like workers/host_cpus stay out),
// so a drifted CI flag fails the config check instead of comparing
// incomparable ratios.
type buildRecord struct {
	Config struct {
		Kind   string `json:"kind"`
		N      int    `json:"n"`
		D      int    `json:"d"`
		K      int    `json:"k"`
		Shards int    `json:"shards"`
		Reps   int    `json:"reps"`
	} `json:"config"`
	SeqBuildMS     float64 `json:"seq_build_ms"`
	ParBuildMS     float64 `json:"par_build_ms"`
	SaveMS         float64 `json:"save_ms"`
	SnapshotBytes  int64   `json:"snapshot_bytes"`
	LoadMS         float64 `json:"load_ms"`
	LoadVsSeqBuild float64 `json:"load_vs_seq_build"`
	LoadVsParBuild float64 `json:"load_vs_par_build"`
	Version        uint32  `json:"snapshot_version"`
}

func readBuild(path string) (buildRecord, error) {
	var rec buildRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	// Schema gate: a record with missing or zero measurements means the
	// bench did not actually run, and comparing against it would pass
	// vacuously.
	switch {
	case rec.Config.N <= 0 || rec.Config.D <= 0:
		return rec, fmt.Errorf("%s: missing config.n/config.d", path)
	case rec.SeqBuildMS <= 0 || rec.ParBuildMS <= 0:
		return rec, fmt.Errorf("%s: missing build timings", path)
	case rec.LoadMS <= 0 || rec.SaveMS <= 0 || rec.SnapshotBytes <= 0:
		return rec, fmt.Errorf("%s: missing snapshot timings", path)
	case rec.LoadVsSeqBuild <= 0:
		return rec, fmt.Errorf("%s: missing load_vs_seq_build speedup", path)
	case rec.Version == 0:
		return rec, fmt.Errorf("%s: missing snapshot_version", path)
	}
	return rec, nil
}

func checkBuild(freshPath, committedPath string, maxReg float64) bool {
	fresh, err := readBuild(freshPath)
	if err != nil {
		log.Printf("FAIL build: fresh record invalid: %v", err)
		return false
	}
	committed, err := readBuild(committedPath)
	if err != nil {
		log.Printf("FAIL build: committed record invalid: %v", err)
		return false
	}
	if fresh.Version != committed.Version {
		log.Printf("FAIL build: snapshot format v%d, committed record measured v%d",
			fresh.Version, committed.Version)
		return false
	}
	// The speedup scales with corpus size, so comparing different bench
	// configs would measure the workload, not the code. Fail loudly.
	if fresh.Config != committed.Config {
		log.Printf("FAIL build: fresh config %+v differs from committed %+v; rerun the bench with the committed parameters",
			fresh.Config, committed.Config)
		return false
	}
	floor := committed.LoadVsSeqBuild * (1 - maxReg)
	ok := fresh.LoadVsSeqBuild >= floor
	verdict := "ok"
	if !ok {
		verdict = "FAIL"
	}
	log.Printf("%s build: load-vs-rebuild speedup %.1fx (committed %.1fx, floor %.1fx at -max-regression %.2f)",
		verdict, fresh.LoadVsSeqBuild, committed.LoadVsSeqBuild, floor, maxReg)
	return ok
}

// allocCeilings extracts per-benchmark allocs/op ceilings from the
// committed BENCH_query_engine.json: each entry's "after" measurement is
// the ceiling for the benchmark it names ("anns/BenchmarkQuery").
type queryEngineRecord struct {
	Benchmarks []struct {
		Name  string `json:"name"`
		After struct {
			AllocsOp float64 `json:"allocs_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

func allocCeilings(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec queryEngineRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	out := make(map[string]float64, len(rec.Benchmarks))
	for _, b := range rec.Benchmarks {
		if b.Name == "" {
			return nil, fmt.Errorf("%s: benchmark with no name", path)
		}
		out[b.Name] = b.After.AllocsOp
	}
	return out, nil
}

// parseBenchOutput reads `go test -bench -benchmem` output and returns
// allocs/op keyed the way the committed record names benchmarks:
// "<module-relative-pkg>/<BenchName>" (e.g. "anns/BenchmarkQuery" for
// pkg repro/anns). Sub-benchmarks keep their slash-separated name.
func parseBenchOutput(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	pkg := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			if i := strings.Index(pkg, "/"); i >= 0 {
				pkg = pkg[i+1:] // strip the module name ("repro/")
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-P  N  x ns/op  y B/op  z allocs/op
		var allocs float64 = -1
		for i := 2; i < len(fields); i++ {
			if fields[i] == "allocs/op" && i > 0 {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err == nil {
					allocs = v
				}
			}
		}
		if allocs < 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the -GOMAXPROCS suffix
			}
		}
		if pkg != "" {
			name = pkg + "/" + name
		}
		out[name] = allocs
	}
	return out, sc.Err()
}

func checkAllocs(freshPath, committedPath string) bool {
	ceilings, err := allocCeilings(committedPath)
	if err != nil {
		log.Printf("FAIL allocs: committed record invalid: %v", err)
		return false
	}
	fresh, err := parseBenchOutput(freshPath)
	if err != nil {
		log.Printf("FAIL allocs: cannot read bench output: %v", err)
		return false
	}
	ok := true
	checked := 0
	for name, ceiling := range ceilings {
		got, found := fresh[name]
		if !found {
			// Only gate benchmarks the fresh run measured; the CI step
			// chooses which packages to bench.
			continue
		}
		checked++
		if got > ceiling {
			log.Printf("FAIL allocs: %s: %.0f allocs/op exceeds committed ceiling %.0f", name, got, ceiling)
			ok = false
		} else {
			log.Printf("ok allocs: %s: %.0f <= %.0f", name, got, ceiling)
		}
	}
	if checked == 0 {
		log.Printf("FAIL allocs: fresh output matched none of the %d committed benchmarks", len(ceilings))
		return false
	}
	return ok
}
